#include "common/stats.hpp"

#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace flov {

void StatAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StatAccumulator::merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StatAccumulator::reset() { *this = StatAccumulator{}; }

StatAccumulator StatAccumulator::restore(std::uint64_t count, double sum,
                                         double min, double max,
                                         double welford_mean, double m2) {
  StatAccumulator a;
  a.count_ = count;
  a.sum_ = sum;
  a.min_ = min;
  a.max_ = max;
  a.mean_ = welford_mean;
  a.m2_ = m2;
  return a;
}

double StatAccumulator::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), bins_(bins, 0) {
  FLOV_CHECK(hi > lo && bins > 0, "bad histogram bounds");
}

void Histogram::add(double x) {
  int idx = static_cast<int>((x - lo_) / width_);
  if (idx < 0) {
    idx = 0;
    ++clamped_low_;
  } else if (idx >= static_cast<int>(bins_.size())) {
    idx = static_cast<int>(bins_.size()) - 1;
    ++clamped_high_;
  }
  ++bins_[idx];
  ++total_;
}

void Histogram::reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  total_ = 0;
  clamped_low_ = 0;
  clamped_high_ = 0;
}

void Histogram::merge(const Histogram& other) {
  FLOV_CHECK(bins_.size() == other.bins_.size() && lo_ == other.lo_ &&
                 hi_ == other.hi_,
             "merging histograms with different bounds");
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  total_ += other.total_;
  clamped_low_ += other.clamped_low_;
  clamped_high_ += other.clamped_high_;
}

Histogram Histogram::restore(double lo, double hi,
                             std::vector<std::uint64_t> bins,
                             std::uint64_t total, std::uint64_t clamped_low,
                             std::uint64_t clamped_high) {
  Histogram h(lo, hi, static_cast<int>(bins.size()));
  h.bins_ = std::move(bins);
  h.total_ = total;
  h.clamped_low_ = clamped_low;
  h.clamped_high_ = clamped_high;
  return h;
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (next >= target) {
      const double frac =
          bins_[i] ? (target - cum) / static_cast<double>(bins_[i]) : 0.0;
      return bin_low(static_cast<int>(i)) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

void TimeSeries::add(Cycle when, double value) {
  const std::uint64_t idx = when / window_;
  if (buckets_.empty() || buckets_.back().first < idx) {
    buckets_.emplace_back(idx, StatAccumulator{});
  }
  // Simulation time is monotone, but merged streams may insert into earlier
  // windows; search backward for the right bucket (usually the last one).
  for (auto it = buckets_.rbegin(); it != buckets_.rend(); ++it) {
    if (it->first == idx) {
      it->second.add(value);
      return;
    }
    if (it->first < idx) break;
  }
  // Rare out-of-order insert: create and keep sorted.
  auto pos = std::lower_bound(
      buckets_.begin(), buckets_.end(), idx,
      [](const auto& b, std::uint64_t i) { return b.first < i; });
  pos = buckets_.insert(pos, {idx, StatAccumulator{}});
  pos->second.add(value);
}

void TimeSeries::merge(const TimeSeries& other) {
  FLOV_CHECK(window_ == other.window_,
             "merging time series with different windows");
  for (const auto& [idx, acc] : other.buckets_) {
    auto pos = std::lower_bound(
        buckets_.begin(), buckets_.end(), idx,
        [](const auto& b, std::uint64_t i) { return b.first < i; });
    if (pos == buckets_.end() || pos->first != idx) {
      pos = buckets_.insert(pos, {idx, StatAccumulator{}});
    }
    pos->second.merge(acc);
  }
}

void TimeSeries::restore_bucket(std::uint64_t window_index,
                                const StatAccumulator& acc) {
  FLOV_CHECK(buckets_.empty() || buckets_.back().first < window_index,
             "time-series buckets must restore in increasing order");
  buckets_.emplace_back(window_index, acc);
}

std::vector<TimeSeries::Point> TimeSeries::points() const {
  std::vector<Point> out;
  out.reserve(buckets_.size());
  for (const auto& [idx, acc] : buckets_) {
    out.push_back(Point{idx * window_, acc.mean(), acc.count()});
  }
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

// --- binomial confidence intervals & sequential testing ---

namespace {

/// Standard normal CDF via the complementary error function.
double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

/// Log-gamma (Lanczos, g=7, n=9): |rel error| < 1e-13 for x > 0.
double log_gamma(double x) {
  static const double kCoef[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x).
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

/// Continued fraction for the incomplete beta function (Lentz's method,
/// fixed 200-iteration cap; converges in a handful of steps for the
/// argument ranges confidence bounds produce).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-16;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Inverts p = I_x(a, b) by bisection with a fixed iteration count: 100
/// halvings pin x to ~1e-30, far past double resolution, and the fixed
/// count keeps the result schedule- and platform-iteration independent.
double regularized_beta_inv(double a, double b, double p) {
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (regularized_beta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double regularized_beta(double a, double b, double x) {
  FLOV_CHECK(a > 0.0 && b > 0.0, "regularized_beta needs a, b > 0");
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  // Symmetry: use the continued fraction on whichever tail converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(ln_front) * betacf(a, b, x) / a;
  }
  return 1.0 - std::exp(ln_front) * betacf(b, a, 1.0 - x) / b;
}

double normal_quantile(double p) {
  FLOV_CHECK(p > 0.0 && p < 1.0, "normal_quantile needs p in (0, 1)");
  // Acklam's rational approximation (central + tail regions)...
  static const double A[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double B[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double C[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double D[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  double x;
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5]) /
        ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0);
  } else if (p <= 1.0 - kLow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) *
        q /
        (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q +
          C[5]) /
        ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0);
  }
  // ...refined with one Halley step against the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  return x - u / (1.0 + x * u / 2.0);
}

BinomialInterval wilson_interval(std::uint64_t successes,
                                 std::uint64_t trials, double confidence) {
  FLOV_CHECK(confidence > 0.0 && confidence < 1.0,
             "confidence must be in (0, 1)");
  FLOV_CHECK(successes <= trials, "more successes than trials");
  if (trials == 0) return {};
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double hw =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  BinomialInterval ci;
  ci.lower = std::max(0.0, center - hw);
  ci.upper = std::min(1.0, center + hw);
  // Pin the degenerate ends exactly: at s == 0 / s == n the true bound is
  // 0 / 1, and float residue there would leak into byte-diffed
  // certificates.
  if (successes == 0) ci.lower = 0.0;
  if (successes == trials) ci.upper = 1.0;
  return ci;
}

BinomialInterval clopper_pearson_interval(std::uint64_t successes,
                                          std::uint64_t trials,
                                          double confidence) {
  FLOV_CHECK(confidence > 0.0 && confidence < 1.0,
             "confidence must be in (0, 1)");
  FLOV_CHECK(successes <= trials, "more successes than trials");
  if (trials == 0) return {};
  const double alpha = 1.0 - confidence;
  const double s = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  BinomialInterval ci;
  ci.lower = successes == 0
                 ? 0.0
                 : regularized_beta_inv(s, n - s + 1.0, alpha / 2.0);
  ci.upper = successes == trials
                 ? 1.0
                 : regularized_beta_inv(s + 1.0, n - s, 1.0 - alpha / 2.0);
  return ci;
}

SprtTest::SprtTest(double p0, double p1, double alpha, double beta)
    : p0_(p0), p1_(p1) {
  FLOV_CHECK(p0 > 0.0 && p1 < 1.0 && p0 < p1,
             "SPRT needs 0 < p0 < p1 < 1");
  FLOV_CHECK(alpha > 0.0 && alpha < 1.0 && beta > 0.0 && beta < 1.0,
             "SPRT error rates must be in (0, 1)");
  log_success_ = std::log(p1 / p0);
  log_failure_ = std::log((1.0 - p1) / (1.0 - p0));
  accept_ = std::log((1.0 - beta) / alpha);
  reject_ = std::log(beta / (1.0 - alpha));
}

double SprtTest::llr(std::uint64_t successes, std::uint64_t trials) const {
  FLOV_CHECK(successes <= trials, "more successes than trials");
  const double s = static_cast<double>(successes);
  const double f = static_cast<double>(trials - successes);
  return s * log_success_ + f * log_failure_;
}

SprtTest::Decision SprtTest::decide(std::uint64_t successes,
                                    std::uint64_t trials) const {
  const double l = llr(successes, trials);
  if (l >= accept_) return Decision::kAcceptH1;
  if (l <= reject_) return Decision::kAcceptH0;
  return Decision::kContinue;
}

}  // namespace flov
