#include "common/stats.hpp"

#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace flov {

void StatAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StatAccumulator::merge(const StatAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StatAccumulator::reset() { *this = StatAccumulator{}; }

StatAccumulator StatAccumulator::restore(std::uint64_t count, double sum,
                                         double min, double max,
                                         double welford_mean, double m2) {
  StatAccumulator a;
  a.count_ = count;
  a.sum_ = sum;
  a.min_ = min;
  a.max_ = max;
  a.mean_ = welford_mean;
  a.m2_ = m2;
  return a;
}

double StatAccumulator::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), bins_(bins, 0) {
  FLOV_CHECK(hi > lo && bins > 0, "bad histogram bounds");
}

void Histogram::add(double x) {
  int idx = static_cast<int>((x - lo_) / width_);
  if (idx < 0) {
    idx = 0;
    ++clamped_low_;
  } else if (idx >= static_cast<int>(bins_.size())) {
    idx = static_cast<int>(bins_.size()) - 1;
    ++clamped_high_;
  }
  ++bins_[idx];
  ++total_;
}

void Histogram::reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  total_ = 0;
  clamped_low_ = 0;
  clamped_high_ = 0;
}

void Histogram::merge(const Histogram& other) {
  FLOV_CHECK(bins_.size() == other.bins_.size() && lo_ == other.lo_ &&
                 hi_ == other.hi_,
             "merging histograms with different bounds");
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  total_ += other.total_;
  clamped_low_ += other.clamped_low_;
  clamped_high_ += other.clamped_high_;
}

Histogram Histogram::restore(double lo, double hi,
                             std::vector<std::uint64_t> bins,
                             std::uint64_t total, std::uint64_t clamped_low,
                             std::uint64_t clamped_high) {
  Histogram h(lo, hi, static_cast<int>(bins.size()));
  h.bins_ = std::move(bins);
  h.total_ = total;
  h.clamped_low_ = clamped_low;
  h.clamped_high_ = clamped_high;
  return h;
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (next >= target) {
      const double frac =
          bins_[i] ? (target - cum) / static_cast<double>(bins_[i]) : 0.0;
      return bin_low(static_cast<int>(i)) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

void TimeSeries::add(Cycle when, double value) {
  const std::uint64_t idx = when / window_;
  if (buckets_.empty() || buckets_.back().first < idx) {
    buckets_.emplace_back(idx, StatAccumulator{});
  }
  // Simulation time is monotone, but merged streams may insert into earlier
  // windows; search backward for the right bucket (usually the last one).
  for (auto it = buckets_.rbegin(); it != buckets_.rend(); ++it) {
    if (it->first == idx) {
      it->second.add(value);
      return;
    }
    if (it->first < idx) break;
  }
  // Rare out-of-order insert: create and keep sorted.
  auto pos = std::lower_bound(
      buckets_.begin(), buckets_.end(), idx,
      [](const auto& b, std::uint64_t i) { return b.first < i; });
  pos = buckets_.insert(pos, {idx, StatAccumulator{}});
  pos->second.add(value);
}

void TimeSeries::merge(const TimeSeries& other) {
  FLOV_CHECK(window_ == other.window_,
             "merging time series with different windows");
  for (const auto& [idx, acc] : other.buckets_) {
    auto pos = std::lower_bound(
        buckets_.begin(), buckets_.end(), idx,
        [](const auto& b, std::uint64_t i) { return b.first < i; });
    if (pos == buckets_.end() || pos->first != idx) {
      pos = buckets_.insert(pos, {idx, StatAccumulator{}});
    }
    pos->second.merge(acc);
  }
}

void TimeSeries::restore_bucket(std::uint64_t window_index,
                                const StatAccumulator& acc) {
  FLOV_CHECK(buckets_.empty() || buckets_.back().first < window_index,
             "time-series buckets must restore in increasing order");
  buckets_.emplace_back(window_index, acc);
}

std::vector<TimeSeries::Point> TimeSeries::points() const {
  std::vector<Point> out;
  out.reserve(buckets_.size());
  for (const auto& [idx, acc] : buckets_) {
    out.push_back(Point{idx * window_, acc.mean(), acc.count()});
  }
  return out;
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace flov
