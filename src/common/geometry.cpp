#include "common/geometry.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace flov {

const char* to_string(Direction d) {
  switch (d) {
    case Direction::North: return "N";
    case Direction::East: return "E";
    case Direction::South: return "S";
    case Direction::West: return "W";
    case Direction::Local: return "L";
  }
  return "?";
}

MeshGeometry::MeshGeometry(int width, int height)
    : width_(width), height_(height) {
  FLOV_CHECK(width >= 2 && height >= 2, "mesh must be at least 2x2");
}

NodeId MeshGeometry::neighbor(NodeId id, Direction d) const {
  FLOV_CHECK(valid(id), "invalid node id");
  const Coord c = coord(id);
  switch (d) {
    case Direction::North:
      return c.y > 0 ? this->id(c.x, c.y - 1) : kInvalidNode;
    case Direction::South:
      return c.y < height_ - 1 ? this->id(c.x, c.y + 1) : kInvalidNode;
    case Direction::West:
      return c.x > 0 ? this->id(c.x - 1, c.y) : kInvalidNode;
    case Direction::East:
      return c.x < width_ - 1 ? this->id(c.x + 1, c.y) : kInvalidNode;
    case Direction::Local:
      return id;
  }
  return kInvalidNode;
}

bool MeshGeometry::has_both_horizontal_neighbors(NodeId id) const {
  const Coord c = coord(id);
  return c.x > 0 && c.x < width_ - 1;
}

bool MeshGeometry::has_both_vertical_neighbors(NodeId id) const {
  const Coord c = coord(id);
  return c.y > 0 && c.y < height_ - 1;
}

bool MeshGeometry::is_corner(NodeId id) const {
  return !has_both_horizontal_neighbors(id) && !has_both_vertical_neighbors(id);
}

int MeshGeometry::hops(NodeId a, NodeId b) const {
  const Coord ca = coord(a);
  const Coord cb = coord(b);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

std::string to_string(Coord c) {
  return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + ")";
}

}  // namespace flov
