#include "common/config.hpp"

#include <cstdlib>
#include <sstream>

#include "common/log.hpp"

namespace flov {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Config::set(const std::string& key, long long value) {
  values_[key] = std::to_string(value);
}

void Config::set(const std::string& key, double value) {
  std::ostringstream os;
  os << value;
  values_[key] = os.str();
}

void Config::set(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  auto v = find(key);
  FLOV_CHECK(v.has_value(), "missing config key: " + key);
  return *v;
}

std::string Config::get_string(const std::string& key,
                               const std::string& dflt) const {
  return find(key).value_or(dflt);
}

long long Config::get_int(const std::string& key) const {
  const std::string v = get_string(key);
  char* end = nullptr;
  const long long r = std::strtoll(v.c_str(), &end, 10);
  FLOV_CHECK(end && *end == '\0', "config key " + key + " is not an int: " + v);
  return r;
}

long long Config::get_int(const std::string& key, long long dflt) const {
  return has(key) ? get_int(key) : dflt;
}

double Config::get_double(const std::string& key) const {
  const std::string v = get_string(key);
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  FLOV_CHECK(end && *end == '\0',
             "config key " + key + " is not a double: " + v);
  return r;
}

double Config::get_double(const std::string& key, double dflt) const {
  return has(key) ? get_double(key) : dflt;
}

bool Config::get_bool(const std::string& key) const {
  const std::string v = get_string(key);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  FLOV_CHECK(false, "config key " + key + " is not a bool: " + v);
  return false;
}

bool Config::get_bool(const std::string& key, bool dflt) const {
  return has(key) ? get_bool(key) : dflt;
}

void Config::parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    const auto eq = tok.find('=');
    if (eq == std::string::npos) continue;
    set(trim(tok.substr(0, eq)), trim(tok.substr(eq + 1)));
  }
}

void Config::parse_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    FLOV_CHECK(eq != std::string::npos, "config line missing '=': " + line);
    set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : values_) os << k << " = " << v << "\n";
  return os.str();
}

}  // namespace flov
