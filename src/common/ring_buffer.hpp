// Grow-only ring buffer used on the simulator's hot path (channel queues,
// input-VC buffers) in place of std::deque.
//
// std::deque allocates/frees map blocks as elements churn through it, which
// shows up as allocator traffic in BM_GFlovCycle once everything else is
// cheap. This ring instead keeps a power-of-two storage vector that only
// ever grows: steady state does zero allocations regardless of how many
// elements pass through. pop_front leaves the vacated slot constructed (the
// payloads here are trivially-copyable flit/credit PODs), so elements must
// be default-constructible and cheap to leave alive.
#pragma once

#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

namespace flov {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  T& front() { return store_[head_]; }
  const T& front() const { return store_[head_]; }
  T& back() { return store_[wrap(head_ + size_ - 1)]; }
  const T& back() const { return store_[wrap(head_ + size_ - 1)]; }

  T& operator[](std::size_t i) { return store_[wrap(head_ + i)]; }
  const T& operator[](std::size_t i) const { return store_[wrap(head_ + i)]; }

  void push_back(const T& v) { *slot_for_push() = v; }
  void push_back(T&& v) { *slot_for_push() = std::move(v); }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    *slot_for_push() = T(std::forward<Args>(args)...);
  }

  void pop_front() {
    head_ = wrap(head_ + 1);
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Forward iterator over [front, back] in queue order; enough for
  /// range-for (including structured bindings over pair elements).
  template <typename Ring, typename Value>
  class Iter {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Value;
    using difference_type = std::ptrdiff_t;
    using pointer = Value*;
    using reference = Value&;

    Iter(Ring* ring, std::size_t pos) : ring_(ring), pos_(pos) {}
    reference operator*() const { return (*ring_)[pos_]; }
    pointer operator->() const { return &(*ring_)[pos_]; }
    Iter& operator++() {
      ++pos_;
      return *this;
    }
    bool operator==(const Iter& o) const { return pos_ == o.pos_; }
    bool operator!=(const Iter& o) const { return pos_ != o.pos_; }

   private:
    Ring* ring_;
    std::size_t pos_;
  };

  using iterator = Iter<RingBuffer, T>;
  using const_iterator = Iter<const RingBuffer, const T>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, size_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  std::size_t wrap(std::size_t i) const { return i & (store_.size() - 1); }

  T* slot_for_push() {
    if (size_ == store_.size()) grow();
    T* slot = &store_[wrap(head_ + size_)];
    ++size_;
    return slot;
  }

  void grow() {
    const std::size_t cap = store_.empty() ? 8 : store_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(store_[wrap(head_ + i)]);
    }
    store_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> store_;  ///< power-of-two capacity (or empty)
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace flov
