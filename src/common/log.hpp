// Assertion and diagnostic helpers.
//
// FLOV_CHECK is an always-on invariant check (simulator correctness depends
// on protocol invariants holding; silently corrupt state is worse than an
// abort). FLOV_DCHECK compiles out in release builds for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace flov {

[[noreturn]] void fatal(const char* file, int line, const std::string& msg);

}  // namespace flov

#define FLOV_CHECK(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::flov::fatal(__FILE__, __LINE__,                             \
                    std::string("check failed: " #cond " — ") + (msg)); \
    }                                                               \
  } while (0)

#ifndef NDEBUG
#define FLOV_DCHECK(cond, msg) FLOV_CHECK(cond, msg)
#else
#define FLOV_DCHECK(cond, msg) \
  do {                         \
  } while (0)
#endif
