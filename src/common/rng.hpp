// Deterministic pseudo-random number generation.
//
// A self-contained xoshiro256** implementation: fast, high quality, and —
// unlike std::mt19937 + distributions — bit-identical across standard
// libraries, which keeps every experiment reproducible from its seed.
#pragma once

#include <array>
#include <cstdint>

#include "common/log.hpp"

namespace flov {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p);

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent stream (for per-node generators).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace flov
