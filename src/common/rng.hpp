// Deterministic pseudo-random number generation.
//
// A self-contained xoshiro256** implementation: fast, high quality, and —
// unlike std::mt19937 + distributions — bit-identical across standard
// libraries, which keeps every experiment reproducible from its seed.
#pragma once

#include <array>
#include <cstdint>

#include "common/log.hpp"

namespace flov {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p);

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent stream (for per-node generators).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// splitmix64 finalizer: a stateless avalanche mix. Used to derive
/// schedule-independent pseudo-random values from identifying tuples
/// (seed, packet id, link, ...) where a sequential generator would make
/// the outcome depend on global event order.
constexpr std::uint64_t mix_u64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Mixes an additional word into a running hash (order-sensitive).
constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  return mix_u64(h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2)));
}

/// Stateless Bernoulli trial: true with probability p, decided purely by
/// the hash h (uses the top 53 bits, matching Rng::next_double's mapping).
constexpr bool hash_bool(std::uint64_t h, double p) {
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

}  // namespace flov
