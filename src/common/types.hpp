// Fundamental scalar types and enumerations shared across the simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace flov {

/// Simulation time in router clock cycles (2 GHz in the paper's testbed).
using Cycle = std::uint64_t;

/// Identifies a node (router/core tile) in the mesh, row-major with row 0 at
/// the top of the layout (matches the paper's Fig. 5 numbering).
using NodeId = std::int32_t;

/// Identifies a virtual channel within an input port.
using VcId = std::int32_t;

/// Identifies a virtual network (message class). The full-system
/// configuration uses 3 vnets (request / forward / response).
using VnetId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// Sentinel cycle value meaning "never" / "unset".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Non-owning view over `n` contiguous elements. The struct-of-arrays hot
/// state (noc/hot_state.hpp) stores every router's per-VC records in one
/// mesh-wide slab; ports hold a Span into their slice so call sites keep
/// the familiar `port.vcs[v]` / range-for shape while the storage itself
/// stays linear in router id. Shallow-const like a pointer: a const Span
/// still yields mutable elements.
template <typename T>
struct Span {
  T* ptr = nullptr;
  std::int32_t count = 0;

  Span() = default;
  Span(T* p, std::int32_t n) : ptr(p), count(n) {}

  T& operator[](std::int32_t i) const { return ptr[i]; }
  T* begin() const { return ptr; }
  T* end() const { return ptr + count; }
  std::int32_t size() const { return count; }
  bool empty() const { return count == 0; }
};

}  // namespace flov
