// Fundamental scalar types and enumerations shared across the simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace flov {

/// Simulation time in router clock cycles (2 GHz in the paper's testbed).
using Cycle = std::uint64_t;

/// Identifies a node (router/core tile) in the mesh, row-major with row 0 at
/// the top of the layout (matches the paper's Fig. 5 numbering).
using NodeId = std::int32_t;

/// Identifies a virtual channel within an input port.
using VcId = std::int32_t;

/// Identifies a virtual network (message class). The full-system
/// configuration uses 3 vnets (request / forward / response).
using VnetId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// Sentinel cycle value meaning "never" / "unset".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

}  // namespace flov
