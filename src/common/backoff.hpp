// Capped exponential backoff, shared by every retry loop in the tree
// (NI retransmission deadlines in src/noc, sweep retry sleeps in
// src/sim/sweep.cpp). One definition so the overflow handling is written —
// and tested — once: a plain `base << shift` with an unchecked shift count
// is UB at >= 64 and silently wraps below that.
#pragma once

#include <cstdint>
#include <limits>

namespace flov {

/// base * 2^min(attempt, cap), saturating at UINT64_MAX instead of
/// overflowing. attempt < 0 is treated as 0; cap < 0 means "uncapped"
/// (still saturating).
constexpr std::uint64_t backoff_shift(std::uint64_t base, int attempt,
                                      int cap) {
  int shift = attempt < 0 ? 0 : attempt;
  if (cap >= 0 && shift > cap) shift = cap;
  if (base == 0) return 0;
  if (shift >= 64) return std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t shifted = base << shift;
  // A shift that lost bits cannot round-trip back to base.
  if ((shifted >> shift) != base) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return shifted;
}

}  // namespace flov
