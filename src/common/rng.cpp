#include "common/rng.hpp"

namespace flov {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  FLOV_DCHECK(bound > 0, "next_below(0)");
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

int Rng::next_int(int lo, int hi) {
  FLOV_DCHECK(lo <= hi, "next_int range");
  return lo + static_cast<int>(next_below(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5Aull); }

}  // namespace flov
