// Statistics primitives used by the experiment harness: running accumulators,
// fixed-bin histograms and time-series samplers (for the Fig. 10 latency
// timeline).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace flov {

/// Streaming mean/min/max/variance accumulator (Welford's algorithm).
class StatAccumulator {
 public:
  void add(double x);
  void merge(const StatAccumulator& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Population variance.
  double variance() const;
  double stddev() const;

  // --- lossless persistence (sweep checkpoints) ---
  /// The raw Welford running mean — NOT mean() (which is sum/count). Both
  /// fields must round-trip bit-exactly for a restored accumulator to
  /// merge identically to the original.
  double welford_mean() const { return mean_; }
  double m2() const { return m2_; }
  /// Rebuilds an accumulator from previously captured raw fields.
  static StatAccumulator restore(std::uint64_t count, double sum, double min,
                                 double max, double welford_mean, double m2);

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Histogram with uniform bins over [lo, hi); out-of-range samples are
/// clamped into the first/last bin AND counted (clamped_low/clamped_high),
/// so saturation is visible instead of silent — a p99 read off a histogram
/// with a non-zero clamped_high() is a lower bound, not an estimate.
/// Percentiles are linear within a bin.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);
  void reset();
  /// Folds `other` (which must have identical bounds/bin count) into this.
  void merge(const Histogram& other);

  std::uint64_t count() const { return total_; }
  double percentile(double p) const;  // p in [0, 100]
  const std::vector<std::uint64_t>& bins() const { return bins_; }
  double bin_low(int i) const { return lo_ + i * width_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int num_bins() const { return static_cast<int>(bins_.size()); }
  /// Samples clamped into the first/last bin because they fell outside
  /// [lo, hi).
  std::uint64_t clamped_low() const { return clamped_low_; }
  std::uint64_t clamped_high() const { return clamped_high_; }

  /// Rebuilds a histogram from previously captured state (sweep
  /// checkpoints). `bins` sets the bin count; bounds must match what the
  /// original was constructed with.
  static Histogram restore(double lo, double hi,
                           std::vector<std::uint64_t> bins,
                           std::uint64_t total, std::uint64_t clamped_low,
                           std::uint64_t clamped_high);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t clamped_low_ = 0;
  std::uint64_t clamped_high_ = 0;
};

/// Buckets samples by time window; used to plot metric-vs-cycle curves
/// (e.g. average packet latency per 1000-cycle window in Fig. 10).
class TimeSeries {
 public:
  explicit TimeSeries(Cycle window) : window_(window) {}

  void add(Cycle when, double value);

  /// Folds `other` (same window width) into this series, merging
  /// overlapping windows via StatAccumulator::merge. Used when combining
  /// per-run metric series across sweep points.
  void merge(const TimeSeries& other);

  struct Point {
    Cycle window_start = 0;
    double mean = 0.0;
    std::uint64_t count = 0;
  };

  /// Windows in increasing time order (empty windows omitted).
  std::vector<Point> points() const;
  Cycle window() const { return window_; }

  /// Lossless persistence (sweep checkpoints): appends one raw bucket.
  /// Callers must restore buckets in increasing window-index order — the
  /// series keeps its buckets sorted by construction.
  void restore_bucket(std::uint64_t window_index, const StatAccumulator& acc);
  /// Raw bucket view for the checkpoint writer.
  const std::vector<std::pair<std::uint64_t, StatAccumulator>>& buckets()
      const {
    return buckets_;
  }

 private:
  Cycle window_;
  // Sparse: (window index -> accumulator), kept sorted by construction since
  // simulation time is monotone.
  std::vector<std::pair<std::uint64_t, StatAccumulator>> buckets_;
};

/// Formats a double with fixed precision (helper for table printers).
std::string fmt(double v, int precision = 3);

// --- binomial confidence intervals & sequential testing (certification) ---
//
// The reliability-certification harness (src/sim/certify) treats each
// outcome — a packet delivered, a run surviving — as a Bernoulli trial and
// turns Monte-Carlo counts into statistically certified bounds. Everything
// here is closed-form or fixed-iteration numerics: no RNG, no platform-
// dependent iteration counts, so a certificate computed from identical
// counts is byte-identical everywhere the libm is.

/// Standard normal quantile Phi^-1(p), p in (0, 1). Acklam's rational
/// approximation refined with one Halley step (|error| < 1e-15 — far below
/// anything a confidence bound can resolve).
double normal_quantile(double p);

/// Two-sided confidence interval on a binomial proportion.
struct BinomialInterval {
  double lower = 0.0;
  double upper = 1.0;
  double half_width() const { return (upper - lower) / 2.0; }
};

/// Wilson score interval: the default certification bound. Behaves sanely
/// at the extremes (successes == 0 or == trials) where the normal
/// approximation collapses. trials == 0 yields the vacuous [0, 1].
BinomialInterval wilson_interval(std::uint64_t successes,
                                 std::uint64_t trials, double confidence);

/// Clopper-Pearson ("exact") interval: conservative — guaranteed coverage
/// at the cost of width. Computed from the regularized incomplete beta
/// function inverted by fixed-count bisection. trials == 0 yields [0, 1].
BinomialInterval clopper_pearson_interval(std::uint64_t successes,
                                          std::uint64_t trials,
                                          double confidence);

/// Regularized incomplete beta function I_x(a, b) (continued-fraction
/// evaluation); exposed for tests.
double regularized_beta(double a, double b, double x);

/// Wald sequential probability ratio test on a Bernoulli success rate:
/// H1 "p >= p1" (certify) against H0 "p <= p0" (refute), p0 < p1 with an
/// indifference region between. Error rates: alpha = P(accept H1 | H0),
/// beta = P(accept H0 | H1).
class SprtTest {
 public:
  SprtTest(double p0, double p1, double alpha, double beta);

  enum class Decision {
    kContinue = 0,  ///< keep sampling
    kAcceptH1,      ///< certified: p >= p1 at the requested error rates
    kAcceptH0,      ///< refuted: p <= p0 at the requested error rates
  };

  /// Log-likelihood ratio after `successes` of `trials`.
  double llr(std::uint64_t successes, std::uint64_t trials) const;
  Decision decide(std::uint64_t successes, std::uint64_t trials) const;

  double p0() const { return p0_; }
  double p1() const { return p1_; }
  /// Accept H1 once llr >= this (ln((1-beta)/alpha)).
  double accept_threshold() const { return accept_; }
  /// Accept H0 once llr <= this (ln(beta/(1-alpha))).
  double reject_threshold() const { return reject_; }

 private:
  double p0_;
  double p1_;
  double log_success_;  ///< ln(p1/p0)
  double log_failure_;  ///< ln((1-p1)/(1-p0))
  double accept_;
  double reject_;
};

}  // namespace flov
