// Generic typed key-value configuration store.
//
// Experiments are parameterized by flat key=value pairs (BookSim style).
// Values are stored as strings and converted on access; unknown keys and
// type errors fail loudly. `parse_args` accepts "key=value" tokens so every
// bench/example binary can be overridden from the command line.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flov {

class Config {
 public:
  Config() = default;

  /// Sets (or overwrites) a key.
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, long long value);
  void set(const std::string& key, double value);
  void set(const std::string& key, bool value);

  bool has(const std::string& key) const;

  /// Typed getters; the non-defaulted forms abort on a missing key.
  std::string get_string(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& dflt) const;
  long long get_int(const std::string& key) const;
  long long get_int(const std::string& key, long long dflt) const;
  double get_double(const std::string& key) const;
  double get_double(const std::string& key, double dflt) const;
  bool get_bool(const std::string& key) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// Parses "key=value" tokens (argv style); ignores tokens without '='.
  void parse_args(int argc, char** argv);

  /// Parses a multi-line "key = value" text block ('#' starts a comment).
  void parse_text(const std::string& text);

  /// All keys in sorted order (for reproducibility logging).
  std::vector<std::string> keys() const;

  /// Renders "key = value" lines sorted by key.
  std::string to_string() const;

 private:
  std::optional<std::string> find(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace flov
