// Mesh geometry: coordinates, port directions and id <-> coordinate maps.
//
// Coordinate convention (fixed by the paper's Fig. 5 worked examples):
// router ids are row-major with row 0 at the TOP of the floorplan, so for a
// k-wide mesh   North = id - k, South = id + k, West = id - 1, East = id + 1.
// A Coord holds (x = column, y = row-from-top).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace flov {

/// Physical port direction on a mesh router. `Local` is the
/// injection/ejection port attached to the core/NI.
enum class Direction : std::uint8_t {
  North = 0,
  East = 1,
  South = 2,
  West = 3,
  Local = 4,
};

/// Number of ports on a mesh router (4 mesh directions + local).
inline constexpr int kNumPorts = 5;
/// Number of mesh (non-local) directions.
inline constexpr int kNumMeshDirs = 4;

/// All mesh directions in a fixed iteration order.
inline constexpr std::array<Direction, 4> kMeshDirections = {
    Direction::North, Direction::East, Direction::South, Direction::West};

/// Opposite mesh direction (North<->South, East<->West).
constexpr Direction opposite(Direction d) {
  switch (d) {
    case Direction::North: return Direction::South;
    case Direction::East: return Direction::West;
    case Direction::South: return Direction::North;
    case Direction::West: return Direction::East;
    case Direction::Local: return Direction::Local;
  }
  return Direction::Local;
}

/// True for North/South.
constexpr bool is_vertical(Direction d) {
  return d == Direction::North || d == Direction::South;
}

/// True for East/West.
constexpr bool is_horizontal(Direction d) {
  return d == Direction::East || d == Direction::West;
}

/// Human-readable direction name ("N", "E", "S", "W", "L").
const char* to_string(Direction d);

/// Integer index of a direction, usable as an array subscript.
constexpr int dir_index(Direction d) { return static_cast<int>(d); }

/// Direction from an array subscript.
constexpr Direction dir_from_index(int i) { return static_cast<Direction>(i); }

/// A 2-D mesh coordinate: x = column (0 at the West edge), y = row counted
/// from the North (top) edge.
struct Coord {
  int x = 0;
  int y = 0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Geometry of a width x height mesh. Stateless utility: maps ids to
/// coordinates and neighbors, and answers edge/corner queries used by the
/// FLOV link-activation rules.
class MeshGeometry {
 public:
  MeshGeometry(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  int num_nodes() const { return width_ * height_; }

  bool valid(NodeId id) const { return id >= 0 && id < num_nodes(); }

  Coord coord(NodeId id) const {
    return Coord{static_cast<int>(id % width_), static_cast<int>(id / width_)};
  }

  NodeId id(Coord c) const { return c.y * width_ + c.x; }
  NodeId id(int x, int y) const { return y * width_ + x; }

  /// Neighbor of `id` in direction `d`, or kInvalidNode off the mesh edge.
  NodeId neighbor(NodeId id, Direction d) const;

  /// True if `id` has neighbors on BOTH sides of the given axis; this is the
  /// paper's condition for activating FLOV links in that dimension.
  bool has_both_horizontal_neighbors(NodeId id) const;
  bool has_both_vertical_neighbors(NodeId id) const;

  /// Corner routers have no FLOV links at all.
  bool is_corner(NodeId id) const;

  /// True if the router is in the always-on (AON) column: the LAST column
  /// (largest x), per Section V of the paper.
  bool is_aon_column(NodeId id) const { return coord(id).x == width_ - 1; }

  /// Manhattan hop distance.
  int hops(NodeId a, NodeId b) const;

 private:
  int width_;
  int height_;
};

/// Formats "(x,y)" for diagnostics.
std::string to_string(Coord c);

}  // namespace flov
