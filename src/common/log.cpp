#include "common/log.hpp"

#include <cstdio>
#include <stdexcept>

namespace flov {

void fatal(const char* file, int line, const std::string& msg) {
  // Throwing (rather than abort) lets gtest death-style tests and callers
  // that embed the simulator handle violations; uncaught it still terminates
  // with the message visible.
  std::fprintf(stderr, "[flov fatal] %s:%d: %s\n", file, line, msg.c_str());
  throw std::logic_error(std::string(file) + ":" + std::to_string(line) +
                         ": " + msg);
}

}  // namespace flov
