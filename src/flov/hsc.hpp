// HandShake Control logic (HSC) — one per router (paper Sections III/IV).
//
// Implements the power-state FSM (Active -> Draining -> Sleep -> Wakeup ->
// Active, Fig. 2) and the rFLOV/gFLOV handshake protocols:
//   * drain request/abort/done signalling with smaller-id arbitration for
//     simultaneous drains;
//   * rFLOV: handshakes with physical neighbors only, and refuses to drain
//     unless all physical neighbors are Active (no two adjacent routers
//     gated);
//   * gFLOV: handshakes with logical neighbors (nearest powered-on, relayed
//     across sleeping runs), forbids Draining–Draining and Draining–Wakeup
//     logical pairs (Wakeup priority), and defers wakeup while a logical
//     neighbor drains;
//   * wakeup with the Table-I 10-cycle power-on latency, triggered by the
//     core waking or by a WakeupTrigger for an incoming packet.
//
// Engineering addition (documented in DESIGN.md): a draining router aborts
// back to Active after `drain_abort_timeout` cycles. This breaks a corner
// case the paper does not address, where a draining router holds a packet
// whose sleeping destination defers its own wakeup *because of* the drain.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "flov/handshake_signals.hpp"
#include "noc/noc_params.hpp"
#include "noc/power_state.hpp"

namespace flov {

class Router;
class SignalFabric;
class FlovNetwork;

enum class FlovMode : std::uint8_t {
  kRestricted = 0,  ///< rFLOV
  kGeneralized,     ///< gFLOV
};

class HandshakeController {
 public:
  HandshakeController(NodeId id, FlovMode mode, const NocParams& params,
                      Router* router, SignalFabric* fabric,
                      FlovNetwork* owner);

  NodeId id() const { return id_; }
  PowerState state() const { return state_; }
  bool core_gated() const { return core_gated_; }
  bool wakeup_pending() const { return wakeup_pending_; }

  void set_core_gated(bool gated, Cycle now);

  /// Per-cycle FSM evaluation (after routers and signal deliveries).
  void step(Cycle now);

  /// Signal arrival; returns true if this router absorbs it.
  bool on_signal(const HsMessage& msg, Cycle now);

  /// A neighbor holds a packet for this router's core (hold-for-wakeup).
  void trigger_wakeup(Cycle now);

  // Stats for tests/benches.
  std::uint64_t sleep_entries() const { return sleep_entries_; }
  std::uint64_t wake_completions() const { return wake_completions_; }
  std::uint64_t drain_aborts() const { return drain_aborts_; }
  /// Cycles spent power-gated (Sleep state) up to `now`.
  Cycle sleep_cycles(Cycle now) const {
    Cycle t = total_sleep_cycles_;
    if (state_ == PowerState::kSleep) t += now - state_since_;
    return t;
  }

  /// How long a drain may stall before aborting back to Active.
  static constexpr Cycle kDrainAbortTimeout = 2048;

 private:
  struct Expected {
    Direction dir;
    NodeId partner;
    bool done = false;
  };
  struct Obligation {
    Direction dir;
    NodeId requester;
  };

  bool can_start_drain(Cycle now) const;
  bool can_start_wakeup() const;
  void enter_draining(Cycle now);
  void abort_drain(Cycle now);
  void enter_sleep(Cycle now);
  void enter_wakeup(Cycle now);
  void enter_active(Cycle now);
  void service_obligations(Cycle now);
  void update_psr(Direction from_dir, const HsMessage& msg);
  /// Handshake partner in direction `d` (physical for rFLOV, logical for
  /// gFLOV); kInvalidNode if none.
  NodeId partner(Direction d) const;
  void send(Cycle now, HsType type, Direction travel, NodeId target,
            NodeId logical_beyond = kInvalidNode);

  NodeId id_;
  FlovMode mode_;
  NocParams params_;
  Router* router_;
  SignalFabric* fabric_;
  FlovNetwork* owner_;

  PowerState state_ = PowerState::kActive;
  bool core_gated_ = false;
  Cycle state_since_ = 0;
  Cycle drain_deadline_ = kNeverCycle;

  std::vector<Expected> expected_;
  std::vector<Obligation> owed_;

  bool wakeup_pending_ = false;
  bool wake_drained_ = false;
  Cycle power_on_ready_ = kNeverCycle;

  std::uint64_t sleep_entries_ = 0;
  std::uint64_t wake_completions_ = 0;
  std::uint64_t drain_aborts_ = 0;
  Cycle total_sleep_cycles_ = 0;
};

}  // namespace flov
