// HandShake Control logic (HSC) — one per router (paper Sections III/IV).
//
// Implements the power-state FSM (Active -> Draining -> Sleep -> Wakeup ->
// Active, Fig. 2) and the rFLOV/gFLOV handshake protocols:
//   * drain request/abort/done signalling with smaller-id arbitration for
//     simultaneous drains;
//   * rFLOV: handshakes with physical neighbors only, and refuses to drain
//     unless all physical neighbors are Active (no two adjacent routers
//     gated);
//   * gFLOV: handshakes with logical neighbors (nearest powered-on, relayed
//     across sleeping runs), forbids Draining–Draining and Draining–Wakeup
//     logical pairs (Wakeup priority), and defers wakeup while a logical
//     neighbor drains;
//   * wakeup with the Table-I 10-cycle power-on latency, triggered by the
//     core waking or by a WakeupTrigger for an incoming packet.
//
// Engineering addition (documented in DESIGN.md): a draining router aborts
// back to Active after `drain_abort_timeout` cycles. This breaks a corner
// case the paper does not address, where a draining router holds a packet
// whose sleeping destination defers its own wakeup *because of* the drain.
//
// Signal-loss tolerance (PROTOCOL.md §7, all [impl]): when the fault model
// is armed, handshake signals can be lost. The HSC recovers distributedly:
// overdue DrainDones cause bounded DrainReq/WakeupNotify retries, sleeping
// routers can periodically re-announce themselves, stale output-blocked
// PSR flags time out, and a powered absorber of a WakeupTrigger replies
// ActiveNotify so the requester's stale view heals. All of this is
// quiescent in a fault-free run: retries only fire when something is
// overdue, and the optional behaviours default off.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "flov/handshake_signals.hpp"
#include "noc/noc_params.hpp"
#include "noc/power_state.hpp"

namespace flov {

class Router;
class SignalFabric;
class FlovNetwork;

enum class FlovMode : std::uint8_t {
  kRestricted = 0,  ///< rFLOV
  kGeneralized,     ///< gFLOV
};

class HandshakeController {
 public:
  HandshakeController(NodeId id, FlovMode mode, const NocParams& params,
                      Router* router, SignalFabric* fabric,
                      FlovNetwork* owner);

  NodeId id() const { return id_; }
  PowerState state() const { return state_; }
  bool core_gated() const { return core_gated_; }
  bool wakeup_pending() const { return wakeup_pending_; }

  void set_core_gated(bool gated, Cycle now);

  /// Hard fault (PROTOCOL.md §8): this router is permanently dead. Forces a
  /// drain to Sleep that can never abort, time out, or wake again; the
  /// FLOV bypass latches are assumed to survive (they are always-on
  /// circuitry separate from the gated pipeline), so traffic flies over the
  /// corpse and self-destined flits sink into the killed NI. Idempotent.
  void kill(Cycle now);
  bool dead() const { return dead_; }

  /// Per-cycle FSM evaluation (after routers and signal deliveries).
  void step(Cycle now);

  /// Signal arrival; returns true if this router absorbs it.
  bool on_signal(const HsMessage& msg, Cycle now);

  /// A neighbor holds a packet for this router's core (hold-for-wakeup).
  void trigger_wakeup(Cycle now);

  /// Watchdog recovery: re-arm and immediately re-send every outstanding
  /// DrainReq/WakeupNotify whose DrainDone never arrived. No-op unless the
  /// FSM is mid-transition with unanswered obligations.
  void recovery_kick(Cycle now);

  /// Writes the FSM state and outstanding handshake obligations to stderr
  /// (stall diagnostics).
  void dump(Cycle now) const;

  // Stats for tests/benches.
  std::uint64_t sleep_entries() const { return sleep_entries_; }
  std::uint64_t wake_completions() const { return wake_completions_; }
  std::uint64_t drain_aborts() const { return drain_aborts_; }
  std::uint64_t hs_resends() const { return hs_resends_; }
  std::uint64_t psr_block_clears() const { return psr_block_clears_; }
  /// Cycles spent power-gated (Sleep state) up to `now`.
  Cycle sleep_cycles(Cycle now) const {
    Cycle t = total_sleep_cycles_;
    if (state_ == PowerState::kSleep) t += now - state_since_;
    return t;
  }

 private:
  struct Expected {
    Direction dir;
    NodeId partner;
    bool done = false;
    Cycle last_sent = 0;  ///< last DrainReq/WakeupNotify toward partner
    int resends = 0;
  };
  struct Obligation {
    Direction dir;
    NodeId requester;
    std::uint32_t epoch = 0;  ///< echoed back in the DrainDone
  };

  bool can_start_drain(Cycle now) const;
  bool can_start_wakeup() const;
  void enter_draining(Cycle now);
  void abort_drain(Cycle now);
  void enter_sleep(Cycle now);
  void enter_wakeup(Cycle now);
  void enter_active(Cycle now);
  void service_obligations(Cycle now);
  /// Re-sends the drain/wakeup request to partners whose DrainDone is
  /// overdue (bounded by hs_retry_limit; disabled when hs_retry_timeout=0).
  void retry_expected(Cycle now, HsType type);
  /// Records/merges a DrainDone obligation toward `requester` (idempotent,
  /// so retried and duplicated requests do not stack).
  void add_obligation(Direction dir, NodeId requester, std::uint32_t epoch);
  void heartbeat_sleep_announce(Cycle now);
  void expire_stale_blocks(Cycle now);
  /// On a SleepNotify from a current handshake partner: pass the pending
  /// drain/wakeup leg on to the powered router beyond it.
  void retarget_expected(const HsMessage& msg, Cycle now);
  /// On an ActiveNotify from a router nearer than an un-done leg's partner:
  /// adopt it as the new partner (it now absorbs our retries).
  void adopt_nearer_partner(const HsMessage& msg, Direction from_dir,
                            Cycle now);
  /// True when `msg` is a state-bearing signal from a previous episode of
  /// the sender (per-direction epoch regression) and must be ignored.
  bool stale_signal(const HsMessage& msg, Direction from_dir);
  void update_psr(Direction from_dir, const HsMessage& msg, Cycle now);
  /// Handshake partner in direction `d` (physical for rFLOV, logical for
  /// gFLOV); kInvalidNode if none.
  NodeId partner(Direction d) const;
  void send(Cycle now, HsType type, Direction travel, NodeId target,
            NodeId logical_beyond = kInvalidNode);
  /// DrainDone variant: echoes the obligation's epoch, not epoch_.
  void send_done(Cycle now, Direction travel, NodeId target,
                 std::uint32_t epoch);

  NodeId id_;
  FlovMode mode_;
  NocParams params_;
  Router* router_;
  SignalFabric* fabric_;
  FlovNetwork* owner_;

  PowerState state_ = PowerState::kActive;
  bool core_gated_ = false;
  bool dead_ = false;  ///< hard-faulted; terminal (see kill())
  Cycle state_since_ = 0;
  Cycle drain_deadline_ = kNeverCycle;
  /// Bumped on every Draining/Wakeup entry; stamped into requests so stale
  /// DrainDones (replies to an aborted episode) cannot complete this one.
  std::uint32_t epoch_ = 0;

  std::vector<Expected> expected_;
  std::vector<Obligation> owed_;

  bool wakeup_pending_ = false;
  bool wake_drained_ = false;
  Cycle power_on_ready_ = kNeverCycle;

  /// Cycle each direction's output_blocked flag was last (re)asserted.
  std::array<Cycle, kNumMeshDirs> blocked_since_{};
  /// Per-direction sender/epoch of the newest state-bearing signal seen:
  /// a delayed or duplicated signal from an EARLIER episode of the same
  /// router must not rewrite the PSRs (e.g. a stale SleepNotify unblocking
  /// a router that is mid-Wakeup lets a worm launch into its latches).
  std::array<NodeId, kNumMeshDirs> psr_owner_{};
  std::array<std::uint32_t, kNumMeshDirs> psr_epoch_{};

  std::uint64_t sleep_entries_ = 0;
  std::uint64_t wake_completions_ = 0;
  std::uint64_t drain_aborts_ = 0;
  std::uint64_t hs_resends_ = 0;
  std::uint64_t psr_block_clears_ = 0;
  Cycle total_sleep_cycles_ = 0;
};

}  // namespace flov
