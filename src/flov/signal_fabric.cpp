#include "flov/signal_fabric.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "fault/fault_injector.hpp"
#include "telemetry/trace.hpp"

namespace flov {

const char* to_string(HsType t) {
  switch (t) {
    case HsType::kDrainReq: return "DrainReq";
    case HsType::kDrainAbort: return "DrainAbort";
    case HsType::kDrainDone: return "DrainDone";
    case HsType::kSleepNotify: return "SleepNotify";
    case HsType::kWakeupNotify: return "WakeupNotify";
    case HsType::kActiveNotify: return "ActiveNotify";
    case HsType::kWakeupTrigger: return "WakeupTrigger";
  }
  return "?";
}

void SignalFabric::enqueue_hop(Cycle now, NodeId next, const HsMessage& msg) {
  if (power_) power_->count(EnergyEvent::kHandshakeSignal);
  if (fault_) {
    if (fault_->drop_signal(msg)) {
      FLOV_TRACE(telemetry::kTraceFault,
                 telemetry::TraceEventType::kFaultSignalDrop, now, msg.from,
                 static_cast<std::uint64_t>(msg.type), msg.target);
      return;
    }
    // Soft error on this wire segment: the PSR payload that arrives is not
    // the one that was sent. The hop still delivers (drop is a separate
    // fault class); duplicates carry the same corrupted copy — they model
    // one glitched transmission echoing, not two independent sends.
    HsMessage hop = msg;
    if (fault_->corrupt_signal(hop, now)) {
      FLOV_TRACE(telemetry::kTraceFault,
                 telemetry::TraceEventType::kFaultPsrFlip, now, hop.from,
                 static_cast<std::uint64_t>(hop.type),
                 hop.type == HsType::kWakeupTrigger
                     ? static_cast<std::uint64_t>(hop.target)
                     : static_cast<std::uint64_t>(hop.logical_beyond));
    }
    const Cycle delay = fault_->signal_extra_delay();
    if (delay > 0) {
      FLOV_TRACE(telemetry::kTraceFault,
                 telemetry::TraceEventType::kFaultSignalDelay, now, hop.from,
                 delay, static_cast<std::uint64_t>(hop.type));
    }
    queue_.push_back(InFlight{now + 1 + delay, next, hop});
    if (fault_->duplicate_signal(hop)) {
      FLOV_TRACE(telemetry::kTraceFault,
                 telemetry::TraceEventType::kFaultSignalDup, now, hop.from,
                 static_cast<std::uint64_t>(hop.type), hop.target);
      queue_.push_back(InFlight{now + 1, next, hop});
    }
    return;
  }
  queue_.push_back(InFlight{now + 1, next, msg});
}

void SignalFabric::send(Cycle now, const HsMessage& msg) {
  const NodeId next = geom_.neighbor(msg.from, msg.travel);
  if (next == kInvalidNode) return;  // signaling off the mesh edge is a no-op
  enqueue_hop(now, next, msg);
}

void SignalFabric::step(Cycle now) {
  FLOV_CHECK(handler_ != nullptr, "signal fabric without handler");
  // Deliveries may enqueue forwarded copies (deliver_at = now + 1), which
  // must not be processed this cycle.
  std::deque<InFlight> due;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deliver_at <= now) {
      due.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  for (const InFlight& f : due) {
    const bool absorbed = handler_(f.next, f.msg);
    if (absorbed) continue;
    const NodeId next = geom_.neighbor(f.next, f.msg.travel);
    if (next == kInvalidNode) continue;  // ran off the edge: signal dies
    enqueue_hop(now, next, f.msg);
  }
}

}  // namespace flov
