// FLOV system: mesh network + per-router HSCs + signal fabric + the
// credit-handover transactions performed at Sleep/Active transitions.
//
// The handover models the paper's credit copy ("the credit counts of its
// downstream router are copied to the upstream router"): at the cycle a
// router finishes gating, the nearest powered-on upstream router's credit
// counters for each flow direction are reloaded with the nearest powered-on
// downstream router's free-buffer counts, minus flits still in flight on
// the wire, and stale relay credits on the segment are voided. From then
// on credits relay hop-by-hop through the sleeping run with real 1-cycle
// latency — the "round-trip credit loop" cost the paper discusses is fully
// modeled; only the instantaneous copy at the transition edge is idealized.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "fault/fault_injector.hpp"
#include "flov/hsc.hpp"
#include "flov/signal_fabric.hpp"
#include "noc/network.hpp"
#include "noc/system_iface.hpp"
#include "power/power_tracker.hpp"
#include "routing/flov_routing.hpp"

namespace flov {

class FlovNetwork final : public NocSystem {
 public:
  /// `faults`: optional fault model; all-zero (the default) injects nothing
  /// and installs no hooks (fault support is then zero-cost).
  FlovNetwork(const NocParams& params, FlovMode mode,
              const EnergyParams& energy, const FaultParams& faults = {});

  // --- NocSystem ---
  void step(Cycle now) override;
  bool attempt_recovery(Cycle now) override;
  void set_core_gated(NodeId core, bool gated, Cycle now) override;
  bool core_gated(NodeId core) const override {
    return hscs_[core]->core_gated();
  }
  bool injection_allowed(NodeId src) const override {
    return !hscs_[src]->core_gated();
  }
  Network& network() override { return *net_; }
  const Network& network() const override { return *net_; }
  std::uint8_t power_state_code(NodeId node) const override {
    return static_cast<std::uint8_t>(hscs_[node]->state());
  }
  const char* name() const override {
    return mode_ == FlovMode::kRestricted ? "rFLOV" : "gFLOV";
  }

  PowerTracker& power() { return *power_; }
  const PowerTracker& power() const { return *power_; }
  FlovMode mode() const { return mode_; }

  HandshakeController& hsc(NodeId id) { return *hscs_[id]; }
  const HandshakeController& hsc(NodeId id) const { return *hscs_[id]; }

  // --- hooks used by the HSCs ---
  /// Routers in the AON column never power-gate (Section V).
  bool gating_forbidden(NodeId id) const {
    return net_->geom().is_aon_column(id);
  }
  bool ni_idle(NodeId id) const { return net_->ni(id).idle(); }
  /// Gate the NI while the router datapath is unavailable: a re-activated
  /// core's packets queue (wakeup latency shows up as queuing delay) and
  /// are injected once the router is Active again.
  void set_ni_stalled(NodeId id, bool stalled) {
    net_->ni(id).set_injection_stalled(stalled);
  }
  /// No flits on the wire/latches between `from` (exclusive) and `to`
  /// (exclusive) along `dir`.
  bool path_clear(NodeId from, Direction dir, NodeId to) const;
  /// Credit-handover at Sleep entry of router `b`.
  void sleep_handover(NodeId b, Cycle now);
  /// Credit-handover + view refresh when router `w` turns Active.
  void wake_handover(NodeId w, Cycle now);
  /// Sends a WakeupTrigger from `requester` toward sleeping `target`
  /// (deduplicated: no-op if the target is already waking or triggered,
  /// until `trigger_retry_timeout` declares the trigger lost and re-arms).
  /// `requester == target` is the gated router's own self-capture path and
  /// flags the wakeup directly.
  void request_wakeup(NodeId requester, NodeId target, Cycle now);

  /// The armed fault injector, or null when running fault-free.
  FaultInjector* fault_injector() { return fault_.get(); }
  const FaultInjector* fault_injector() const { return fault_.get(); }

  // --- hard-fault introspection (PROTOCOL.md §8) ---
  /// Per-node hard-fault flags (flipped once at fault.hard_at_cycle; shared
  /// with every router's hold-for-wakeup test via Router::set_dead_mask).
  const std::vector<char>& dead_mask() const { return dead_mask_; }
  bool router_dead(NodeId id) const { return dead_mask_[id] != 0; }
  int dead_router_count() const;
  int dead_link_count() const { return dead_links_; }
  /// WakeupTriggers swallowed because the target is dead (each is a packet
  /// waiting on a corpse; the sender's retransmit/dead-declaration path is
  /// what eventually resolves it).
  std::uint64_t wake_requests_dropped() const { return wake_requests_dropped_; }

  /// Stall diagnostics: HSC + occupancy dump of every non-quiescent router.
  void dump_state(Cycle now) const;

  // Aggregate stats.
  int gated_router_count() const;

  struct ProtocolStats {
    std::uint64_t sleeps = 0;         ///< completed Sleep entries
    std::uint64_t wakeups = 0;        ///< completed wakeups
    std::uint64_t drain_aborts = 0;
    Cycle sleep_cycles = 0;           ///< total router-cycles spent gated
    double avg_gated_routers = 0.0;   ///< sleep_cycles / elapsed cycles
    std::uint64_t hs_resends = 0;     ///< recovery re-sends (HSC retries)
    std::uint64_t trigger_resends = 0;
    std::uint64_t psr_block_clears = 0;
    std::uint64_t self_captures = 0;  ///< bypass self-destined captures
    std::uint64_t recoveries = 0;     ///< watchdog attempt_recovery calls
  };
  ProtocolStats protocol_stats(Cycle now) const;

  /// Registers/updates the handshake-protocol and fault-injection metrics
  /// ("flov.*" / "fault.*") in `reg`.
  void publish_metrics(telemetry::MetricsRegistry& reg, Cycle now) const;

 private:
  /// Nearest router in `dir` from `b` (exclusive) whose datapath is
  /// kPipeline; kInvalidNode if the line ends first.
  NodeId nearest_pipeline(NodeId b, Direction dir) const;
  /// In-flight flits per absolute VC on the path from `from` (exclusive
  /// latches, inclusive of `from`'s outgoing channel) up to `to`.
  std::vector<int> inflight_per_vc(NodeId from, Direction dir,
                                   NodeId to) const;
  /// Voids stale credits on every credit back-channel of the path
  /// `from` -> `to` along `dir`.
  void clear_credit_path(NodeId from, Direction dir, NodeId to);
  /// Recomputes `w`'s NeighborhoodView from current global state (models
  /// the state refresh a router receives upon wakeup).
  void refresh_view(NodeId w);
  void handover_flow(NodeId b, Direction flow, bool waking, Cycle now);
  /// Applies the armed hard faults once, at fault.hard_at_cycle: fate-hashed
  /// routers (AON column exempt) are killed (HSC forced-drain + NI sink),
  /// fate-hashed links get their poisoned-edge marks (the channel fault
  /// hooks do the actual flit killing). Serial — called before net_->step.
  void apply_hard_faults(Cycle now);

  NocParams params_;
  FlovMode mode_;
  MeshGeometry geom_;  ///< shared by routing/power (Network keeps its own copy)
  std::unique_ptr<PowerTracker> power_;
  std::unique_ptr<FlovRouting> routing_;
  std::unique_ptr<Network> net_;
  SignalFabric fabric_;
  std::unique_ptr<FaultInjector> fault_;
  std::vector<std::unique_ptr<HandshakeController>> hscs_;
  /// One outstanding WakeupTrigger per sleeping target (reset at each
  /// Sleep entry); packet holders re-request every cycle otherwise. The
  /// timestamp re-arms the trigger after `trigger_retry_timeout` (loss
  /// recovery).
  std::vector<bool> trigger_sent_;
  std::vector<Cycle> trigger_sent_at_;
  /// Per-domain staging for wakeup requests raised inside Network::step when
  /// stepping domain-parallel: request_wakeup mutates HSC/fabric state shared
  /// across domains, so workers only record (requester, target) here and
  /// step() replays the requests between barriers through a k-way min-front
  /// merge by requester id: each stage is id-ascending (routers step in id
  /// order within a domain) and domains own disjoint id sets, so the replay
  /// equals serial callback order and the schedule stays bit-identical —
  /// for row bands AND for 2D tile grids, where domain order alone is not
  /// id order.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> staged_wakeups_;
  std::vector<std::size_t> wakeup_merge_pos_;  ///< merge scratch (no alloc)
  /// Scratch for Router::input_free_slots during handovers (control-plane
  /// serial code; reused to keep handovers allocation-free).
  std::vector<int> free_slots_scratch_;
  std::uint64_t trigger_resends_ = 0;
  std::uint64_t recoveries_ = 0;
  Cycle current_cycle_ = 0;
  /// Hard-fault state (all zero unless faults.hard_faults_armed()).
  std::vector<char> dead_mask_;
  int dead_links_ = 0;
  bool hard_applied_ = false;
  std::uint64_t wake_requests_dropped_ = 0;
};

}  // namespace flov
