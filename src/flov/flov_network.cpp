#include "flov/flov_network.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "fault/fault_wiring.hpp"
#include "noc/router.hpp"
#include "routing/partition.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace flov {

FlovNetwork::FlovNetwork(const NocParams& params, FlovMode mode,
                         const EnergyParams& energy, const FaultParams& faults)
    : params_(params),
      mode_(mode),
      geom_(params.width, params.height),
      power_(std::make_unique<PowerTracker>(geom_, energy,
                                            /*flov_hardware=*/true)),
      routing_(std::make_unique<FlovRouting>(geom_)),
      net_(std::make_unique<Network>(params_, routing_.get(), power_.get())),
      fabric_(geom_, power_.get()) {
  fabric_.set_handler([this](NodeId at, const HsMessage& m) {
    return hscs_[at]->on_signal(m, current_cycle_);
  });
  trigger_sent_.assign(net_->num_nodes(), false);
  trigger_sent_at_.assign(net_->num_nodes(), 0);
  dead_mask_.assign(net_->num_nodes(), 0);
  hscs_.reserve(net_->num_nodes());
  const bool parallel = net_->num_domains() > 1;
  if (parallel) staged_wakeups_.resize(net_->num_domains());
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    hscs_.push_back(std::make_unique<HandshakeController>(
        id, mode_, params_, &net_->router(id), &fabric_, this));
    net_->router(id).set_dead_mask(&dead_mask_);
    if (parallel) {
      // Workers may not touch HSC/fabric state: stage the request and let
      // step() replay it between barriers (same order as serial, see
      // staged_wakeups_).
      const int dom = net_->domain_of(id);
      net_->router(id).set_wakeup_callback([this, id, dom](NodeId target) {
        staged_wakeups_[dom].emplace_back(id, target);
      });
    } else {
      net_->router(id).set_wakeup_callback([this, id](NodeId target) {
        request_wakeup(id, target, current_cycle_);
      });
    }
  }
  if (faults.any()) {
    fault_ = std::make_unique<FaultInjector>(faults, net_->num_nodes());
    fabric_.set_fault_injector(fault_.get());
    arm_link_faults(*net_, *fault_);
  }
}

void FlovNetwork::step(Cycle now) {
  current_cycle_ = now;
  if (fault_ && !hard_applied_ && fault_->hard_at() > 0 &&
      now >= fault_->hard_at()) {
    hard_applied_ = true;
    apply_hard_faults(now);
  }
  net_->step(now);
  // Replay wakeup requests the domain workers staged during net_->step.
  // Each stage is ascending by requester id (routers step in id order
  // within a domain) and domains own disjoint id sets, so a k-way
  // min-front merge reproduces the exact order the serial schedule would
  // have issued them in. (Tile domains are not globally id-ordered, so
  // plain domain-order concatenation would reorder the trigger dedup.)
  FLOV_PROFILE(kPower);  // scheme machinery: wakeup replay, fabric, HSCs
  if (!staged_wakeups_.empty()) {
    auto& pos = wakeup_merge_pos_;
    pos.assign(staged_wakeups_.size(), 0);
    for (;;) {
      int best = -1;
      NodeId best_id = 0;
      for (std::size_t d = 0; d < staged_wakeups_.size(); ++d) {
        if (pos[d] >= staged_wakeups_[d].size()) continue;
        const NodeId id = staged_wakeups_[d][pos[d]].first;
        if (best < 0 || id < best_id) {
          best = static_cast<int>(d);
          best_id = id;
        }
      }
      if (best < 0) break;
      const auto& [requester, target] = staged_wakeups_[best][pos[best]];
      request_wakeup(requester, target, now);
      ++pos[best];
    }
    for (auto& stage : staged_wakeups_) stage.clear();
  }
  fabric_.step(now);
  for (auto& h : hscs_) h->step(now);
  if (fault_) {
    const NodeId t = fault_->spurious_wakeup_target(now);
    if (t != kInvalidNode) {
      FLOV_TRACE(telemetry::kTraceFault,
                 telemetry::TraceEventType::kFaultSpuriousWake, now, t, t, 0);
      hscs_[t]->trigger_wakeup(now);
    }
  }
}

void FlovNetwork::apply_hard_faults(Cycle now) {
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    // The AON column shares the gating exemption: its routers (and their
    // NIs) are the survivability anchor every escape route relies on.
    if (fault_->router_dies(id) && !gating_forbidden(id)) {
      dead_mask_[id] = 1;
      hscs_[id]->kill(now);
      net_->ni(id).kill(now);
      net_->wake_router(id);
    }
    for (Direction d : kMeshDirections) {
      if (net_->geom().neighbor(id, d) == kInvalidNode) continue;
      const std::uint32_t link_key = static_cast<std::uint32_t>(id) * 4u +
                                     static_cast<std::uint32_t>(dir_index(d));
      if (fault_->link_dies(link_key)) {
        // Poisoned-edge mark: routing demotes this turn (flov_routing);
        // the channel's fault hook does the actual killing.
        net_->router(id).view().link_dead[dir_index(d)] = true;
        net_->wake_router(id);
        dead_links_++;
      }
    }
  }
}

bool FlovNetwork::attempt_recovery(Cycle now) {
  // Rebuild every neighborhood view from ground truth (the hardware analog:
  // a slow out-of-band scrub walking the control wires), re-arm the wakeup
  // triggers, and re-send every unanswered handshake request. Idempotent
  // and safe fault-free — it only restates what reliable wires would have
  // delivered already.
  for (NodeId id = 0; id < net_->num_nodes(); ++id) refresh_view(id);
  std::fill(trigger_sent_.begin(), trigger_sent_.end(), false);
  std::fill(trigger_sent_at_.begin(), trigger_sent_at_.end(), Cycle{0});
  for (auto& h : hscs_) h->recovery_kick(now);
  recoveries_++;
  return true;
}

void FlovNetwork::dump_state(Cycle now) const {
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    const Router& r = net_->router(id);
    const bool busy = !r.completely_empty();
    if (busy || hscs_[id]->state() != PowerState::kActive) {
      hscs_[id]->dump(now);
    }
    if (busy) r.dump_occupancy(now);
  }
}

void FlovNetwork::set_core_gated(NodeId core, bool gated, Cycle now) {
  hscs_[core]->set_core_gated(gated, now);
}

bool FlovNetwork::path_clear(NodeId from, Direction dir, NodeId to) const {
  const MeshGeometry& g = net_->geom();
  NodeId cur = from;
  while (true) {
    // `cur`'s outgoing channel toward dir.
    auto* ch = const_cast<Network&>(*net_).flit_channel(cur, dir);
    if (ch && !ch->empty()) return false;
    const NodeId next = g.neighbor(cur, dir);
    if (next == kInvalidNode || next == to) return true;
    const Router& r = net_->router(next);
    if (!r.latch_empty(dir)) return false;
    cur = next;
  }
}

NodeId FlovNetwork::nearest_pipeline(NodeId b, Direction dir) const {
  const MeshGeometry& g = net_->geom();
  NodeId cur = g.neighbor(b, dir);
  while (cur != kInvalidNode) {
    if (net_->router(cur).mode() == RouterMode::kPipeline) return cur;
    cur = g.neighbor(cur, dir);
  }
  return kInvalidNode;
}

std::vector<int> FlovNetwork::inflight_per_vc(NodeId from, Direction dir,
                                              NodeId to) const {
  std::vector<int> counts(params_.total_vcs(), 0);
  const MeshGeometry& g = net_->geom();
  NodeId cur = from;
  while (true) {
    auto* ch = const_cast<Network&>(*net_).flit_channel(cur, dir);
    if (ch) {
      ch->for_each_in_flight([&](const Flit& f) { counts[f.vc]++; });
    }
    const NodeId next = g.neighbor(cur, dir);
    if (next == kInvalidNode || next == to) return counts;
    const auto& latched = net_->router(next).latch_flit(dir);
    if (latched.has_value()) counts[latched->vc]++;
    cur = next;
  }
}

void FlovNetwork::clear_credit_path(NodeId from, Direction dir, NodeId to) {
  // Credit back-channels of the links on the path from -> ... -> to:
  // for each router r on the path (excluding `to`), the credit channel
  // paired with r's outgoing flit link toward dir is r.credit_in(dir).
  const MeshGeometry& g = net_->geom();
  NodeId cur = from;
  while (cur != kInvalidNode && cur != to) {
    if (auto* ch = net_->router(cur).credit_in(dir)) ch->clear();
    cur = g.neighbor(cur, dir);
  }
}

void FlovNetwork::handover_flow(NodeId b, Direction flow, bool waking,
                                Cycle now) {
  (void)now;
  const NodeId up = waking ? nearest_pipeline(b, opposite(flow)) : kInvalidNode;
  const NodeId down = nearest_pipeline(b, flow);

  // The router whose output credits must now track `down` directly:
  // when `b` sleeps it is the nearest powered upstream; when `b` wakes it
  // is `b` itself (and the upstream separately re-tracks `b`).
  const NodeId tracker =
      waking ? b : nearest_pipeline(b, opposite(flow));
  // Handover mutates credit state behind the channels' backs — re-arm every
  // touched router so the active-set scheduler reconsiders it.
  net_->wake_router(b);
  if (down != kInvalidNode) net_->wake_router(down);
  if (up != kInvalidNode) net_->wake_router(up);
  if (tracker != kInvalidNode) {
    net_->wake_router(tracker);
    if (down != kInvalidNode) {
      std::vector<int>& free = free_slots_scratch_;
      net_->router(down).input_free_slots(opposite(flow), free);
      const std::vector<int> inflight = inflight_per_vc(tracker, flow, down);
      for (std::size_t v = 0; v < free.size(); ++v) {
        free[v] -= inflight[v];
        FLOV_CHECK(free[v] >= 0, "negative effective credits at handover");
      }
      net_->router(tracker).reload_output_credits(flow, free);
    } else {
      // No powered router downstream: nothing can be sent that way except
      // to sleeping destinations, which the hold-for-wakeup rule blocks.
      net_->router(tracker).reset_output_credits_full(flow);
    }
    clear_credit_path(tracker, flow, down);
  }

  if (waking && up != kInvalidNode) {
    // The upstream now tracks the freshly woken (empty) router `b`.
    const std::vector<int> inflight = inflight_per_vc(up, flow, b);
    std::vector<int> free(params_.total_vcs(), params_.buffer_depth);
    for (std::size_t v = 0; v < free.size(); ++v) {
      free[v] -= inflight[v];
      FLOV_CHECK(free[v] >= 0, "negative effective credits at wake handover");
    }
    net_->router(up).reload_output_credits(flow, free);
    clear_credit_path(up, flow, b);
  }
}

void FlovNetwork::sleep_handover(NodeId b, Cycle now) {
  trigger_sent_[b] = false;  // fresh sleep: allow a new wakeup trigger
  for (Direction flow : kMeshDirections) {
    handover_flow(b, flow, /*waking=*/false, now);
  }
}

void FlovNetwork::wake_handover(NodeId w, Cycle now) {
  for (Direction flow : kMeshDirections) {
    handover_flow(w, flow, /*waking=*/true, now);
  }
  refresh_view(w);
}

void FlovNetwork::refresh_view(NodeId w) {
  net_->wake_router(w);  // view changes can unblock held allocations
  NeighborhoodView& v = net_->router(w).view();
  const MeshGeometry& g = net_->geom();
  for (Direction d : kMeshDirections) {
    const int i = dir_index(d);
    const NodeId phys = g.neighbor(w, d);
    v.physical[i] =
        phys == kInvalidNode ? PowerState::kActive : hscs_[phys]->state();
    // Nearest non-sleeping router along d.
    NodeId cur = phys;
    while (cur != kInvalidNode && hscs_[cur]->state() == PowerState::kSleep) {
      cur = g.neighbor(cur, d);
    }
    v.logical[i] = cur;
    v.logical_state[i] =
        cur == kInvalidNode ? PowerState::kActive : hscs_[cur]->state();
    v.output_blocked[i] = v.logical_state[i] == PowerState::kDraining ||
                          v.logical_state[i] == PowerState::kWakeup;
  }
}

void FlovNetwork::request_wakeup(NodeId requester, NodeId target, Cycle now) {
  if (dead_mask_[target]) {
    // Wake requests to the dead are swallowed (counted, not forwarded):
    // the packet's own fly-over + NI-sink path consumes it, and the
    // sender's reliable-delivery timeout is what ultimately resolves it.
    wake_requests_dropped_++;
    return;
  }
  if (requester == target) {
    // Self-capture: the gated router itself found a flit addressed to it on
    // its bypass datapath; no trigger needs to travel anywhere.
    hscs_[target]->trigger_wakeup(now);
    return;
  }
  auto& h = *hscs_[target];
  if (h.state() != PowerState::kSleep) return;
  if (h.wakeup_pending()) return;
  if (trigger_sent_[target]) {
    // Re-arm a trigger that was apparently lost on the control wires.
    if (params_.trigger_retry_timeout == 0 ||
        now - trigger_sent_at_[target] < params_.trigger_retry_timeout) {
      return;
    }
    trigger_resends_++;
  }
  trigger_sent_[target] = true;
  trigger_sent_at_[target] = now;
  // Direction from requester toward target (they share a row or column).
  const Coord a = net_->geom().coord(requester);
  const Coord b = net_->geom().coord(target);
  Direction d;
  if (a.x == b.x) {
    d = b.y < a.y ? Direction::North : Direction::South;
  } else {
    FLOV_CHECK(a.y == b.y, "wakeup target not in line with requester");
    d = b.x < a.x ? Direction::West : Direction::East;
  }
  HsMessage m;
  m.type = HsType::kWakeupTrigger;
  m.from = requester;
  m.travel = d;
  m.target = target;
  fabric_.send(now, m);
}

FlovNetwork::ProtocolStats FlovNetwork::protocol_stats(Cycle now) const {
  ProtocolStats s;
  for (const auto& h : hscs_) {
    s.sleeps += h->sleep_entries();
    s.wakeups += h->wake_completions();
    s.drain_aborts += h->drain_aborts();
    s.sleep_cycles += h->sleep_cycles(now);
    s.hs_resends += h->hs_resends();
    s.psr_block_clears += h->psr_block_clears();
  }
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    s.self_captures += net_->router(id).self_captures();
  }
  s.trigger_resends = trigger_resends_;
  s.recoveries = recoveries_;
  if (now > 0) {
    s.avg_gated_routers =
        static_cast<double>(s.sleep_cycles) / static_cast<double>(now);
  }
  return s;
}

int FlovNetwork::dead_router_count() const {
  int n = 0;
  for (char c : dead_mask_) n += c != 0;
  return n;
}

int FlovNetwork::gated_router_count() const {
  int n = 0;
  for (const auto& h : hscs_) {
    if (h->state() == PowerState::kSleep || h->state() == PowerState::kWakeup) {
      ++n;
    }
  }
  return n;
}

void FlovNetwork::publish_metrics(telemetry::MetricsRegistry& reg,
                                  Cycle now) const {
  const ProtocolStats s = protocol_stats(now);
  reg.counter("flov.sleeps") += s.sleeps;
  reg.counter("flov.wakeups") += s.wakeups;
  reg.counter("flov.drain_aborts") += s.drain_aborts;
  reg.counter("flov.sleep_cycles") += s.sleep_cycles;
  reg.counter("flov.hs_resends") += s.hs_resends;
  reg.counter("flov.trigger_resends") += s.trigger_resends;
  reg.counter("flov.psr_block_clears") += s.psr_block_clears;
  reg.counter("flov.self_captures") += s.self_captures;
  reg.counter("flov.recoveries") += s.recoveries;
  reg.gauge("flov.avg_gated_routers") = s.avg_gated_routers;
  reg.gauge("flov.gated_routers_end") =
      static_cast<double>(gated_router_count());
  if (fault_) {
    const FaultInjector::Counters& f = fault_->counters();
    reg.counter("fault.signals_dropped") += f.signals_dropped;
    reg.counter("fault.signals_delayed") += f.signals_delayed;
    reg.counter("fault.signals_duplicated") += f.signals_duplicated;
    reg.counter("fault.flits_dropped") += f.flits_dropped;
    reg.counter("fault.flits_delayed") += f.flits_delayed;
    reg.counter("fault.spurious_wakeups") += f.spurious_wakeups;
    if (fault_->hard_at() > 0) {
      // Hard-fault keys only exist when the hard knobs are armed, so
      // transient-only manifests stay byte-stable across this change.
      reg.counter("fault.hard_killed_flits") += f.hard_killed;
      reg.gauge("fault.dead_routers") = static_cast<double>(dead_router_count());
      reg.gauge("fault.dead_links") = static_cast<double>(dead_links_);
      reg.counter("flov.wake_requests_dropped") += wake_requests_dropped_;
    }
  }
}

}  // namespace flov
