// Hop-by-hop delivery of out-of-band handshake signals.
//
// A signal injected at router A traveling direction d reaches A's neighbor
// one cycle later. Each receiver decides (via its handler) whether it
// absorbs the signal (powered routers do) or forwards it to the next router
// along d (sleeping routers do, after updating their PSRs). This reproduces
// both the 1-cycle-per-hop control-wire timing and the gFLOV relay
// behaviour without any router seeing non-local state.
#pragma once

#include <deque>
#include <functional>

#include "common/geometry.hpp"
#include "flov/handshake_signals.hpp"
#include "power/power_tracker.hpp"

namespace flov {

class SignalFabric {
 public:
  /// Handler: invoked at `at` when a message arrives; returns true if the
  /// router absorbs the signal (stops propagation).
  using Handler = std::function<bool(NodeId at, const HsMessage&)>;

  SignalFabric(const MeshGeometry& geom, PowerTracker* power)
      : geom_(geom), power_(power) {}

  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Injects a signal at `msg.from`, traveling `msg.travel`; first delivery
  /// happens next cycle at the adjacent router.
  void send(Cycle now, const HsMessage& msg);

  /// Delivers everything due at `now` (called once per cycle, after the
  /// routers have stepped).
  void step(Cycle now);

  bool idle() const { return queue_.empty(); }

 private:
  struct InFlight {
    Cycle deliver_at;
    NodeId next;  ///< router about to receive it
    HsMessage msg;
  };

  const MeshGeometry& geom_;
  PowerTracker* power_;
  Handler handler_;
  std::deque<InFlight> queue_;  ///< kept sorted by deliver_at (FIFO sends)
};

}  // namespace flov
