// Hop-by-hop delivery of out-of-band handshake signals.
//
// A signal injected at router A traveling direction d reaches A's neighbor
// one cycle later. Each receiver decides (via its handler) whether it
// absorbs the signal (powered routers do) or forwards it to the next router
// along d (sleeping routers do, after updating their PSRs). This reproduces
// both the 1-cycle-per-hop control-wire timing and the gFLOV relay
// behaviour without any router seeing non-local state.
#pragma once

#include <deque>
#include <functional>

#include "common/geometry.hpp"
#include "flov/handshake_signals.hpp"
#include "power/power_tracker.hpp"

namespace flov {

class FaultInjector;

class SignalFabric {
 public:
  /// Handler: invoked at `at` when a message arrives; returns true if the
  /// router absorbs the signal (stops propagation).
  using Handler = std::function<bool(NodeId at, const HsMessage&)>;

  SignalFabric(const MeshGeometry& geom, PowerTracker* power)
      : geom_(geom), power_(power) {}

  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Arms the fault model (non-owning; null = reliable wires). Every hop —
  /// initial send and each sleeping-router relay — rolls its own fate.
  void set_fault_injector(FaultInjector* f) { fault_ = f; }

  /// Injects a signal at `msg.from`, traveling `msg.travel`; first delivery
  /// happens next cycle at the adjacent router.
  void send(Cycle now, const HsMessage& msg);

  /// Delivers everything due at `now` (called once per cycle, after the
  /// routers have stepped).
  void step(Cycle now);

  bool idle() const { return queue_.empty(); }

 private:
  struct InFlight {
    Cycle deliver_at;
    NodeId next;  ///< router about to receive it
    HsMessage msg;
  };

  /// One hop toward `next`, subject to the fault model (drop/delay/dup).
  void enqueue_hop(Cycle now, NodeId next, const HsMessage& msg);

  const MeshGeometry& geom_;
  PowerTracker* power_;
  Handler handler_;
  FaultInjector* fault_ = nullptr;
  /// Unsorted when delay faults are armed; step() scans the whole queue.
  std::deque<InFlight> queue_;
};

}  // namespace flov
