// Out-of-band handshake signal vocabulary (paper Section IV).
//
// Signals travel on dedicated control wires, one hop per cycle; sleeping
// routers forward them (updating their own PSRs as they pass) and the
// first powered-on router in the direction of travel absorbs them.
#pragma once

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace flov {

enum class HsType : std::uint8_t {
  kDrainReq = 0,   ///< sender entered Draining; stop new transmissions to it
  kDrainAbort,     ///< sender aborted Draining (lost arbitration / core woke)
  kDrainDone,      ///< sender finished in-flight deliveries to the addressee
  kSleepNotify,    ///< sender is power-gated; FLOV links live; payload =
                   ///<   sender's logical neighbor beyond (for PSR update)
  kWakeupNotify,   ///< sender entered Wakeup; stop new transmissions to it
  kActiveNotify,   ///< sender completed wakeup and is Active
  kWakeupTrigger,  ///< wake the addressed router (packet destined to it)
};

const char* to_string(HsType t);

struct HsMessage {
  HsType type = HsType::kDrainReq;
  NodeId from = kInvalidNode;
  /// Direction of travel (from sender outward).
  Direction travel = Direction::North;
  /// kWakeupTrigger: the router that must wake. Other types: unused.
  NodeId target = kInvalidNode;
  /// kSleepNotify: the sender's logical neighbor on the *opposite* side of
  /// the travel direction (the receiver's new logical neighbor beyond the
  /// sender). kInvalidNode if none.
  NodeId logical_beyond = kInvalidNode;
  /// Handshake episode tag: DrainReq/WakeupNotify carry the sender's FSM
  /// epoch; DrainDone echoes the request's. A drainer ignores DrainDones
  /// from a previous episode — without this, a leftover reply to an
  /// aborted drain (the DrainAbort was lost) can falsely complete the NEXT
  /// drain while a worm is still in flight. [impl]
  std::uint32_t epoch = 0;
};

}  // namespace flov
