#include "flov/hsc.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "flov/flov_network.hpp"
#include "flov/signal_fabric.hpp"
#include "noc/router.hpp"

namespace flov {

HandshakeController::HandshakeController(NodeId id, FlovMode mode,
                                         const NocParams& params,
                                         Router* router, SignalFabric* fabric,
                                         FlovNetwork* owner)
    : id_(id), mode_(mode), params_(params), router_(router),
      fabric_(fabric), owner_(owner) {
  FLOV_CHECK(router_ && fabric_ && owner_, "HSC missing collaborators");
}

void HandshakeController::set_core_gated(bool gated, Cycle now) {
  core_gated_ = gated;
  if (!gated && state_ == PowerState::kSleep) {
    // The FSM wakes on its next step; nothing else to do here.
    (void)now;
  }
}

NodeId HandshakeController::partner(Direction d) const {
  if (mode_ == FlovMode::kRestricted) {
    // Physical neighbor: under rFLOV's adjacency restriction the physical
    // neighbor is powered whenever a handshake is needed.
    return owner_->network().geom().neighbor(id_, d);
  }
  return router_->view().logical[dir_index(d)];
}

void HandshakeController::send(Cycle now, HsType type, Direction travel,
                               NodeId target, NodeId logical_beyond) {
  HsMessage m;
  m.type = type;
  m.from = id_;
  m.travel = travel;
  m.target = target;
  m.logical_beyond = logical_beyond;
  fabric_->send(now, m);
}

bool HandshakeController::can_start_drain(Cycle now) const {
  if (owner_->gating_forbidden(id_)) return false;
  if (!owner_->ni_idle(id_)) return false;
  const Cycle quiet_since =
      std::max(router_->last_local_activity(), state_since_);
  if (now - quiet_since < params_.drain_idle_threshold) return false;
  const NeighborhoodView& v = router_->view();
  for (Direction d : kMeshDirections) {
    if (mode_ == FlovMode::kRestricted) {
      // No adjacent router may be anything but Active (and alive).
      if (owner_->network().geom().neighbor(id_, d) == kInvalidNode) continue;
      if (v.physical[dir_index(d)] != PowerState::kActive) return false;
    } else {
      // gFLOV: no logical neighbor may be Draining or Wakeup.
      if (v.logical[dir_index(d)] == kInvalidNode) continue;
      const PowerState s = v.logical_state[dir_index(d)];
      if (s == PowerState::kDraining || s == PowerState::kWakeup) {
        return false;
      }
    }
  }
  return true;
}

bool HandshakeController::can_start_wakeup() const {
  // A power-gated router defers wakeup while any logical neighbor drains.
  const NeighborhoodView& v = router_->view();
  for (Direction d : kMeshDirections) {
    if (v.logical[dir_index(d)] == kInvalidNode) continue;
    if (v.logical_state[dir_index(d)] == PowerState::kDraining) return false;
  }
  return true;
}

void HandshakeController::enter_draining(Cycle now) {
  owner_->set_ni_stalled(id_, true);
  state_ = PowerState::kDraining;
  state_since_ = now;
  drain_deadline_ = now + kDrainAbortTimeout;
  expected_.clear();
  for (Direction d : kMeshDirections) {
    const NodeId p = partner(d);
    if (p == kInvalidNode) continue;
    expected_.push_back(Expected{d, p, false});
    send(now, HsType::kDrainReq, d, p);
  }
}

void HandshakeController::abort_drain(Cycle now) {
  for (const Expected& e : expected_) {
    send(now, HsType::kDrainAbort, e.dir, e.partner);
  }
  expected_.clear();
  state_ = PowerState::kActive;
  state_since_ = now;
  drain_aborts_++;
  owner_->set_ni_stalled(id_, false);
}

void HandshakeController::enter_sleep(Cycle now) {
  router_->set_mode(RouterMode::kBypass, now);
  state_ = PowerState::kSleep;
  state_since_ = now;
  expected_.clear();
  wakeup_pending_ = false;
  sleep_entries_++;
  const NeighborhoodView& v = router_->view();
  for (Direction d : kMeshDirections) {
    // Tell each side who their new logical neighbor beyond me is.
    const NodeId beyond = v.logical[dir_index(opposite(d))];
    send(now, HsType::kSleepNotify, d, partner(d), beyond);
  }
  owner_->sleep_handover(id_, now);
}

void HandshakeController::enter_wakeup(Cycle now) {
  total_sleep_cycles_ += now - state_since_;
  state_ = PowerState::kWakeup;
  state_since_ = now;
  wake_drained_ = false;
  power_on_ready_ = kNeverCycle;
  expected_.clear();
  const NeighborhoodView& v = router_->view();
  for (Direction d : kMeshDirections) {
    const NodeId p = v.logical[dir_index(d)];
    if (p == kInvalidNode) continue;
    expected_.push_back(Expected{d, p, false});
    send(now, HsType::kWakeupNotify, d, p);
  }
}

void HandshakeController::enter_active(Cycle now) {
  router_->set_mode(RouterMode::kPipeline, now);
  owner_->wake_handover(id_, now);
  state_ = PowerState::kActive;
  state_since_ = now;
  wakeup_pending_ = false;
  wake_completions_++;
  owner_->set_ni_stalled(id_, false);
  for (Direction d : kMeshDirections) {
    const NodeId p = router_->view().logical[dir_index(d)];
    send(now, HsType::kActiveNotify, d, p);
  }
  expected_.clear();
}

void HandshakeController::service_obligations(Cycle now) {
  for (auto it = owed_.begin(); it != owed_.end();) {
    const bool pipeline_idle = router_->mode() != RouterMode::kPipeline ||
                               router_->output_port_idle(it->dir);
    const bool latch_idle = router_->latch_empty(it->dir);
    if (pipeline_idle && latch_idle &&
        owner_->path_clear(id_, it->dir, it->requester)) {
      send(now, HsType::kDrainDone, it->dir, it->requester);
      it = owed_.erase(it);
    } else {
      ++it;
    }
  }
}

void HandshakeController::step(Cycle now) {
  service_obligations(now);
  switch (state_) {
    case PowerState::kActive:
      if (core_gated_ && can_start_drain(now)) enter_draining(now);
      break;
    case PowerState::kDraining: {
      if (!core_gated_) {
        abort_drain(now);
        break;
      }
      if (now >= drain_deadline_) {
        abort_drain(now);
        break;
      }
      bool all_done = true;
      for (const Expected& e : expected_) all_done &= e.done;
      if (all_done && router_->completely_empty()) enter_sleep(now);
      break;
    }
    case PowerState::kSleep:
      if ((!core_gated_ || wakeup_pending_) && can_start_wakeup()) {
        enter_wakeup(now);
      }
      break;
    case PowerState::kWakeup: {
      if (!wake_drained_) {
        bool all_done = true;
        for (const Expected& e : expected_) all_done &= e.done;
        if (all_done && router_->latches_empty()) {
          wake_drained_ = true;
          power_on_ready_ = now + params_.wakeup_latency;
        }
      }
      if (wake_drained_ && now >= power_on_ready_) enter_active(now);
      break;
    }
  }
}

void HandshakeController::trigger_wakeup(Cycle now) {
  (void)now;
  if (state_ == PowerState::kSleep) wakeup_pending_ = true;
}

void HandshakeController::update_psr(Direction from_dir,
                                     const HsMessage& msg) {
  NeighborhoodView& v = router_->view();
  const int d = dir_index(from_dir);
  const MeshGeometry& geom = owner_->network().geom();
  const bool adjacent = geom.neighbor(id_, from_dir) == msg.from;

  // Nearest-wins rule: while the recorded logical neighbor is mid-
  // transition (Draining/Wakeup), signals from FARTHER routers in the same
  // direction — which only reach us because the transitioning router still
  // relays — must not re-point the PSR or lift the output mask. The nearer
  // router's own completion signal will arrive and supersede them.
  const NodeId cur = v.logical[d];
  if (cur != kInvalidNode && cur != msg.from &&
      (v.logical_state[d] == PowerState::kDraining ||
       v.logical_state[d] == PowerState::kWakeup) &&
      geom.hops(id_, msg.from) > geom.hops(id_, cur)) {
    return;
  }
  switch (msg.type) {
    case HsType::kDrainReq:
      if (adjacent) v.physical[d] = PowerState::kDraining;
      if (v.logical[d] == msg.from) v.logical_state[d] = PowerState::kDraining;
      v.output_blocked[d] = true;
      break;
    case HsType::kDrainAbort:
      if (adjacent) v.physical[d] = PowerState::kActive;
      if (v.logical[d] == msg.from) v.logical_state[d] = PowerState::kActive;
      v.output_blocked[d] = false;
      break;
    case HsType::kDrainDone:
      break;
    case HsType::kSleepNotify:
      if (adjacent) v.physical[d] = PowerState::kSleep;
      v.logical[d] = msg.logical_beyond;
      v.logical_state[d] = PowerState::kActive;
      v.output_blocked[d] = false;
      break;
    case HsType::kWakeupNotify:
      if (adjacent) v.physical[d] = PowerState::kWakeup;
      v.logical[d] = msg.from;
      v.logical_state[d] = PowerState::kWakeup;
      v.output_blocked[d] = true;
      break;
    case HsType::kActiveNotify:
      if (adjacent) v.physical[d] = PowerState::kActive;
      v.logical[d] = msg.from;
      v.logical_state[d] = PowerState::kActive;
      v.output_blocked[d] = false;
      break;
    case HsType::kWakeupTrigger:
      break;
  }
}

bool HandshakeController::on_signal(const HsMessage& msg, Cycle now) {
  const Direction from_dir = opposite(msg.travel);
  update_psr(from_dir, msg);

  const bool is_target = msg.target == id_;
  const bool powered =
      state_ == PowerState::kActive || state_ == PowerState::kDraining;
  if (!is_target && !powered) return false;  // sleeping/waking: forward

  switch (msg.type) {
    case HsType::kDrainReq:
      if (state_ == PowerState::kDraining) {
        // Simultaneous drains: the smaller id proceeds (Section IV-A).
        if (msg.from < id_) abort_drain(now);
        owed_.push_back(Obligation{from_dir, msg.from});
      } else if (state_ == PowerState::kWakeup) {
        // Draining–Wakeup conflict: Wakeup has priority; make the drain
        // requester abort by announcing the wakeup to it directly.
        send(now, HsType::kWakeupNotify, from_dir, msg.from);
      } else if (state_ == PowerState::kSleep) {
        // Stale addressing: the requester thought this router was powered.
        // Re-announce the sleep so it re-points its PSRs.
        send(now, HsType::kSleepNotify, from_dir, msg.from,
             router_->view().logical[dir_index(opposite(from_dir))]);
      } else {
        owed_.push_back(Obligation{from_dir, msg.from});
      }
      break;
    case HsType::kDrainAbort:
      // The aborting router no longer needs our drain_done.
      owed_.erase(std::remove_if(owed_.begin(), owed_.end(),
                                 [&](const Obligation& o) {
                                   return o.requester == msg.from;
                                 }),
                  owed_.end());
      break;
    case HsType::kDrainDone:
      for (Expected& e : expected_) {
        if (e.partner == msg.from) e.done = true;
      }
      break;
    case HsType::kWakeupNotify:
      if (state_ == PowerState::kDraining) abort_drain(now);
      // We are (one of) the waking router's logical partners: we owe it a
      // drain_done once our in-flight deliveries toward it finish. Two
      // concurrently waking routers owe each other the same.
      if (state_ != PowerState::kSleep) {
        owed_.push_back(Obligation{from_dir, msg.from});
      }
      break;
    case HsType::kSleepNotify:
    case HsType::kActiveNotify:
      break;  // PSR update already applied
    case HsType::kWakeupTrigger:
      if (is_target) {
        trigger_wakeup(now);
        return true;
      }
      // A powered router between requester and target absorbs and drops
      // the trigger: the requester's view was stale and will self-correct.
      break;
  }
  return true;
}

}  // namespace flov
