#include "flov/hsc.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "flov/flov_network.hpp"
#include "flov/signal_fabric.hpp"
#include "noc/router.hpp"
#include "telemetry/trace.hpp"

namespace flov {

HandshakeController::HandshakeController(NodeId id, FlovMode mode,
                                         const NocParams& params,
                                         Router* router, SignalFabric* fabric,
                                         FlovNetwork* owner)
    : id_(id), mode_(mode), params_(params), router_(router),
      fabric_(fabric), owner_(owner) {
  FLOV_CHECK(router_ && fabric_ && owner_, "HSC missing collaborators");
  psr_owner_.fill(kInvalidNode);
}

void HandshakeController::set_core_gated(bool gated, Cycle now) {
  if (dead_) return;  // a corpse's core never comes back
  core_gated_ = gated;
  if (!gated && state_ == PowerState::kSleep) {
    // The FSM wakes on its next step; nothing else to do here.
    (void)now;
  }
}

void HandshakeController::kill(Cycle now) {
  if (dead_) return;
  dead_ = true;
  core_gated_ = true;  // directly: set_core_gated now refuses changes
  // A drain already in progress must run to completion, never abort.
  if (state_ == PowerState::kDraining) drain_deadline_ = kNeverCycle;
  (void)now;
}

NodeId HandshakeController::partner(Direction d) const {
  if (mode_ == FlovMode::kRestricted) {
    // Physical neighbor: under rFLOV's adjacency restriction the physical
    // neighbor is powered whenever a handshake is needed.
    return owner_->network().geom().neighbor(id_, d);
  }
  return router_->view().logical[dir_index(d)];
}

void HandshakeController::send(Cycle now, HsType type, Direction travel,
                               NodeId target, NodeId logical_beyond) {
  HsMessage m;
  m.type = type;
  m.from = id_;
  m.travel = travel;
  m.target = target;
  m.logical_beyond = logical_beyond;
  m.epoch = epoch_;
  fabric_->send(now, m);
}

void HandshakeController::send_done(Cycle now, Direction travel,
                                    NodeId target, std::uint32_t epoch) {
  HsMessage m;
  m.type = HsType::kDrainDone;
  m.from = id_;
  m.travel = travel;
  m.target = target;
  m.epoch = epoch;
  fabric_->send(now, m);
}

bool HandshakeController::can_start_drain(Cycle now) const {
  if (owner_->gating_forbidden(id_)) return false;
  if (!owner_->ni_idle(id_)) return false;
  const Cycle quiet_since =
      std::max(router_->last_local_activity(), state_since_);
  if (now - quiet_since < params_.drain_idle_threshold) return false;
  const NeighborhoodView& v = router_->view();
  for (Direction d : kMeshDirections) {
    if (mode_ == FlovMode::kRestricted) {
      // No adjacent router may be anything but Active (and alive).
      if (owner_->network().geom().neighbor(id_, d) == kInvalidNode) continue;
      if (v.physical[dir_index(d)] != PowerState::kActive) return false;
    } else {
      // gFLOV: no logical neighbor may be Draining or Wakeup.
      if (v.logical[dir_index(d)] == kInvalidNode) continue;
      const PowerState s = v.logical_state[dir_index(d)];
      if (s == PowerState::kDraining || s == PowerState::kWakeup) {
        return false;
      }
    }
  }
  return true;
}

bool HandshakeController::can_start_wakeup() const {
  // A power-gated router defers wakeup while any logical neighbor drains.
  const NeighborhoodView& v = router_->view();
  for (Direction d : kMeshDirections) {
    if (v.logical[dir_index(d)] == kInvalidNode) continue;
    if (v.logical_state[dir_index(d)] == PowerState::kDraining) return false;
  }
  return true;
}

void HandshakeController::enter_draining(Cycle now) {
  owner_->set_ni_stalled(id_, true);
  state_ = PowerState::kDraining;
  state_since_ = now;
  ++epoch_;
  drain_deadline_ = now + params_.drain_abort_timeout;
  expected_.clear();
  for (Direction d : kMeshDirections) {
    const NodeId p = partner(d);
    if (p == kInvalidNode) continue;
    expected_.push_back(Expected{d, p, false, now, 0});
    send(now, HsType::kDrainReq, d, p);
  }
  FLOV_TRACE(telemetry::kTraceHandshake,
             telemetry::TraceEventType::kHsDrainBegin, now, id_, epoch_,
             expected_.size());
}

void HandshakeController::abort_drain(Cycle now) {
  for (const Expected& e : expected_) {
    send(now, HsType::kDrainAbort, e.dir, e.partner);
  }
  expected_.clear();
  state_ = PowerState::kActive;
  state_since_ = now;
  drain_aborts_++;
  owner_->set_ni_stalled(id_, false);
  FLOV_TRACE(telemetry::kTraceHandshake,
             telemetry::TraceEventType::kHsDrainAbort, now, id_, epoch_,
             drain_aborts_);
}

void HandshakeController::enter_sleep(Cycle now) {
  FLOV_TRACE(telemetry::kTraceHandshake,
             telemetry::TraceEventType::kHsSleepEnter, now, id_, epoch_,
             now - state_since_);
  router_->set_mode(RouterMode::kBypass, now);
  state_ = PowerState::kSleep;
  state_since_ = now;
  expected_.clear();
  wakeup_pending_ = false;
  sleep_entries_++;
  const NeighborhoodView& v = router_->view();
  for (Direction d : kMeshDirections) {
    // Tell each side who their new logical neighbor beyond me is.
    const NodeId beyond = v.logical[dir_index(opposite(d))];
    send(now, HsType::kSleepNotify, d, partner(d), beyond);
  }
  owner_->sleep_handover(id_, now);
}

void HandshakeController::enter_wakeup(Cycle now) {
  total_sleep_cycles_ += now - state_since_;
  state_ = PowerState::kWakeup;
  state_since_ = now;
  ++epoch_;
  wake_drained_ = false;
  power_on_ready_ = kNeverCycle;
  expected_.clear();
  const NeighborhoodView& v = router_->view();
  for (Direction d : kMeshDirections) {
    const NodeId p = v.logical[dir_index(d)];
    if (p == kInvalidNode) continue;
    expected_.push_back(Expected{d, p, false, now, 0});
    send(now, HsType::kWakeupNotify, d, p);
  }
  FLOV_TRACE(telemetry::kTraceHandshake,
             telemetry::TraceEventType::kHsWakeBegin, now, id_, epoch_,
             expected_.size());
}

void HandshakeController::enter_active(Cycle now) {
  FLOV_TRACE(telemetry::kTraceHandshake,
             telemetry::TraceEventType::kHsWakeComplete, now, id_, epoch_,
             now - state_since_);
  router_->set_mode(RouterMode::kPipeline, now);
  owner_->wake_handover(id_, now);
  state_ = PowerState::kActive;
  state_since_ = now;
  wakeup_pending_ = false;
  wake_completions_++;
  owner_->set_ni_stalled(id_, false);
  for (Direction d : kMeshDirections) {
    const NodeId p = router_->view().logical[dir_index(d)];
    send(now, HsType::kActiveNotify, d, p);
  }
  expected_.clear();
}

void HandshakeController::retry_expected(Cycle now, HsType type) {
  if (params_.hs_retry_timeout == 0) return;
  for (Expected& e : expected_) {
    if (e.done || e.resends >= params_.hs_retry_limit) continue;
    if (now - e.last_sent < params_.hs_retry_timeout) continue;
    // The DrainDone (or the request itself) is overdue: assume a lost
    // signal and re-send. Receivers deduplicate obligations, so a merely
    // slow reply costs one redundant DrainDone at worst.
    send(now, type, e.dir, e.partner);
    e.last_sent = now;
    e.resends++;
    hs_resends_++;
    FLOV_TRACE(telemetry::kTraceHandshake, telemetry::TraceEventType::kHsRetry,
               now, id_, e.partner, e.resends);
  }
}

void HandshakeController::add_obligation(Direction dir, NodeId requester,
                                         std::uint32_t epoch) {
  for (Obligation& o : owed_) {
    if (o.requester == requester) {
      o.dir = dir;
      o.epoch = epoch;
      return;
    }
  }
  owed_.push_back(Obligation{dir, requester, epoch});
}

void HandshakeController::heartbeat_sleep_announce(Cycle now) {
  if (params_.sleep_reannounce_interval == 0 || now <= state_since_) return;
  if ((now - state_since_) % params_.sleep_reannounce_interval != 0) return;
  const NeighborhoodView& v = router_->view();
  for (Direction d : kMeshDirections) {
    const NodeId beyond = v.logical[dir_index(opposite(d))];
    send(now, HsType::kSleepNotify, d, partner(d), beyond);
  }
}

void HandshakeController::expire_stale_blocks(Cycle now) {
  if (params_.psr_block_timeout == 0) return;
  NeighborhoodView& v = router_->view();
  for (int d = 0; d < kNumMeshDirs; ++d) {
    if (!v.output_blocked[d]) continue;
    // A waking logical neighbor re-blocks via WakeupNotify retries; only a
    // block whose owner went silent (lost DrainAbort / stale drain) may be
    // cleared optimistically. A live drainer's retried DrainReq re-asserts.
    if (v.logical_state[d] == PowerState::kWakeup) continue;
    if (now - blocked_since_[d] < params_.psr_block_timeout) continue;
    v.output_blocked[d] = false;
    if (v.logical_state[d] == PowerState::kDraining) {
      v.logical_state[d] = PowerState::kActive;
    }
    psr_block_clears_++;
  }
}

void HandshakeController::service_obligations(Cycle now) {
  for (auto it = owed_.begin(); it != owed_.end();) {
    const bool pipeline_idle = router_->mode() != RouterMode::kPipeline ||
                               router_->output_port_idle(it->dir);
    const bool latch_idle = router_->latch_empty(it->dir);
    if (pipeline_idle && latch_idle &&
        owner_->path_clear(id_, it->dir, it->requester)) {
      send_done(now, it->dir, it->requester, it->epoch);
      it = owed_.erase(it);
    } else {
      ++it;
    }
  }
}

void HandshakeController::step(Cycle now) {
  service_obligations(now);
  expire_stale_blocks(now);
  switch (state_) {
    case PowerState::kActive:
      if (dead_) {
        // Hard fault: drain unconditionally (the NI is already a sink, and
        // waiting for idleness thresholds would only delay the inevitable).
        enter_draining(now);
        drain_deadline_ = kNeverCycle;  // a corpse never aborts
        break;
      }
      if (core_gated_ && can_start_drain(now)) enter_draining(now);
      break;
    case PowerState::kDraining: {
      if (!core_gated_) {
        abort_drain(now);
        break;
      }
      if (now >= drain_deadline_) {
        abort_drain(now);  // unreachable when dead_ (deadline = kNeverCycle)
        break;
      }
      retry_expected(now, HsType::kDrainReq);
      if (dead_) {
        // A corpse cannot abort back to Active, so an unanswerable leg must
        // not wedge the drain forever. When a leg's retries are exhausted
        // (or disabled) and its reply stays overdue past the abort horizon,
        // the partner is unreachable — possibly dead itself — and the leg
        // is forcibly marked done (PROTOCOL.md §8).
        for (Expected& e : expected_) {
          if (e.done) continue;
          const bool exhausted = params_.hs_retry_timeout == 0 ||
                                 e.resends >= params_.hs_retry_limit;
          if (exhausted && now - e.last_sent >= params_.drain_abort_timeout) {
            e.done = true;
          }
        }
      }
      bool all_done = true;
      for (const Expected& e : expected_) all_done &= e.done;
      // all_outputs_idle: a local backstop behind the epoch check — an
      // allocated output VC means part of a worm through us is still
      // upstream, so the drain is not actually finished whatever the
      // handshake replies claim.
      if (all_done && router_->completely_empty() &&
          router_->all_outputs_idle()) {
        enter_sleep(now);
      }
      break;
    }
    case PowerState::kSleep:
      heartbeat_sleep_announce(now);
      if (dead_) break;  // permanent: nothing wakes a corpse
      // Third wake reason (reliable delivery only): a retransmit timer can
      // repopulate a gated NI's queue while the core itself stays gated;
      // the router must power on to flush it or the flow wedges forever.
      if ((!core_gated_ || wakeup_pending_ ||
           (params_.reliable && !owner_->ni_idle(id_))) &&
          can_start_wakeup()) {
        enter_wakeup(now);
      }
      break;
    case PowerState::kWakeup: {
      if (!wake_drained_) {
        retry_expected(now, HsType::kWakeupNotify);
        bool all_done = true;
        for (const Expected& e : expected_) all_done &= e.done;
        if (all_done && router_->latches_empty()) {
          wake_drained_ = true;
          power_on_ready_ = now + params_.wakeup_latency;
        }
      }
      // bypass_quiet: an upstream that missed the WakeupNotify (lost
      // signal) may still be streaming a worm through our latches; defer
      // power-on until the fly-over traffic stops rather than stranding
      // half a worm in the pipeline buffers. Vacuous in a fault-free run
      // (every partner blocked its output before sending DrainDone). [impl]
      if (wake_drained_ && now >= power_on_ready_ && router_->bypass_quiet()) {
        enter_active(now);
      }
      break;
    }
  }
}

void HandshakeController::trigger_wakeup(Cycle now) {
  (void)now;
  if (dead_) return;  // the dead do not answer
  if (state_ == PowerState::kSleep) wakeup_pending_ = true;
}

void HandshakeController::recovery_kick(Cycle now) {
  if (state_ != PowerState::kDraining && state_ != PowerState::kWakeup) return;
  const HsType type = state_ == PowerState::kDraining
                          ? HsType::kDrainReq
                          : HsType::kWakeupNotify;
  for (Expected& e : expected_) {
    if (e.done) continue;
    e.resends = 0;  // re-arm the bounded retry budget
    e.last_sent = now;
    send(now, type, e.dir, e.partner);
    hs_resends_++;
  }
}

void HandshakeController::dump(Cycle now) const {
  std::fprintf(stderr,
               "  hsc %d: state=%s since=%llu core_gated=%d "
               "wakeup_pending=%d wake_drained=%d owed=%zu resends=%llu\n",
               id_, to_string(state_),
               static_cast<unsigned long long>(now - state_since_),
               static_cast<int>(core_gated_), static_cast<int>(wakeup_pending_),
               static_cast<int>(wake_drained_), owed_.size(),
               static_cast<unsigned long long>(hs_resends_));
  for (const Expected& e : expected_) {
    std::fprintf(stderr,
                 "    expects DrainDone from %d (dir=%s done=%d resends=%d)\n",
                 e.partner, to_string(e.dir), static_cast<int>(e.done),
                 e.resends);
  }
  for (const Obligation& o : owed_) {
    std::fprintf(stderr, "    owes DrainDone to %d (dir=%s)\n", o.requester,
                 to_string(o.dir));
  }
}

void HandshakeController::update_psr(Direction from_dir, const HsMessage& msg,
                                     Cycle now) {
  NeighborhoodView& v = router_->view();
  const int d = dir_index(from_dir);
  const auto set_blocked = [&](bool blocked) {
    if (blocked) blocked_since_[d] = now;  // (re)assertion refreshes the TTL
    v.output_blocked[d] = blocked;
  };
  const MeshGeometry& geom = owner_->network().geom();
  const bool adjacent = geom.neighbor(id_, from_dir) == msg.from;

  // Nearest-wins rule: while the recorded logical neighbor is mid-
  // transition (Draining/Wakeup), signals from FARTHER routers in the same
  // direction — which only reach us because the transitioning router still
  // relays — must not re-point the PSR or lift the output mask. The nearer
  // router's own completion signal will arrive and supersede them.
  const NodeId cur = v.logical[d];
  if (cur != kInvalidNode && cur != msg.from &&
      (v.logical_state[d] == PowerState::kDraining ||
       v.logical_state[d] == PowerState::kWakeup) &&
      geom.hops(id_, msg.from) > geom.hops(id_, cur)) {
    return;
  }
  switch (msg.type) {
    case HsType::kDrainReq:
      if (adjacent) v.physical[d] = PowerState::kDraining;
      if (v.logical[d] == msg.from) v.logical_state[d] = PowerState::kDraining;
      set_blocked(true);
      break;
    case HsType::kDrainAbort:
      if (adjacent) v.physical[d] = PowerState::kActive;
      if (v.logical[d] == msg.from) v.logical_state[d] = PowerState::kActive;
      set_blocked(false);
      break;
    case HsType::kDrainDone:
      break;
    case HsType::kSleepNotify:
      if (adjacent) v.physical[d] = PowerState::kSleep;
      v.logical[d] = msg.logical_beyond;
      v.logical_state[d] = PowerState::kActive;
      set_blocked(false);
      break;
    case HsType::kWakeupNotify:
      if (adjacent) v.physical[d] = PowerState::kWakeup;
      v.logical[d] = msg.from;
      v.logical_state[d] = PowerState::kWakeup;
      set_blocked(true);
      break;
    case HsType::kActiveNotify:
      if (adjacent) v.physical[d] = PowerState::kActive;
      v.logical[d] = msg.from;
      v.logical_state[d] = PowerState::kActive;
      set_blocked(false);
      break;
    case HsType::kWakeupTrigger:
      break;
  }
}

void HandshakeController::retarget_expected(const HsMessage& msg, Cycle now) {
  // A SleepNotify from a router we are mid-handshake with means our partner
  // is gone: the drain/wakeup duty passes to the next powered router beyond
  // it (no router at all on that side completes the leg trivially). Without
  // this, a drainer burns its abort deadline and a waker retries into
  // silence forever. [impl]
  if (state_ != PowerState::kDraining && state_ != PowerState::kWakeup) return;
  const HsType req = state_ == PowerState::kDraining ? HsType::kDrainReq
                                                     : HsType::kWakeupNotify;
  for (Expected& e : expected_) {
    if (e.done || e.partner != msg.from) continue;
    e.partner = msg.logical_beyond;
    e.resends = 0;
    e.last_sent = now;
    if (e.partner == kInvalidNode) {
      e.done = true;
    } else {
      send(now, req, e.dir, e.partner);
    }
  }
}

void HandshakeController::adopt_nearer_partner(const HsMessage& msg,
                                               Direction from_dir, Cycle now) {
  // An ActiveNotify from a router that sits BETWEEN us and an un-done leg's
  // partner means that partner is no longer our logical neighbor: the newly
  // powered router absorbs our retries from now on, and any DrainDone will
  // carry its id, not the old partner's. Re-point the leg (and re-send) or
  // the handshake matches against a ghost forever. [impl]
  if (state_ != PowerState::kDraining && state_ != PowerState::kWakeup) return;
  const HsType req = state_ == PowerState::kDraining ? HsType::kDrainReq
                                                     : HsType::kWakeupNotify;
  const MeshGeometry& geom = owner_->network().geom();
  for (Expected& e : expected_) {
    if (e.done || e.dir != from_dir || e.partner == msg.from) continue;
    if (geom.hops(id_, msg.from) >= geom.hops(id_, e.partner)) continue;
    e.partner = msg.from;
    e.resends = 0;
    e.last_sent = now;
    send(now, req, e.dir, e.partner);
  }
}

bool HandshakeController::stale_signal(const HsMessage& msg,
                                       Direction from_dir) {
  switch (msg.type) {
    case HsType::kDrainReq:
    case HsType::kDrainAbort:
    case HsType::kSleepNotify:
    case HsType::kWakeupNotify:
    case HsType::kActiveNotify:
      break;
    default:
      return false;  // DrainDone has its own epoch check; triggers are
                     // idempotent
  }
  const int d = dir_index(from_dir);
  if (psr_owner_[d] == msg.from && msg.epoch < psr_epoch_[d]) return true;
  psr_owner_[d] = msg.from;
  psr_epoch_[d] = msg.epoch;
  return false;
}

bool HandshakeController::on_signal(const HsMessage& msg, Cycle now) {
  const Direction from_dir = opposite(msg.travel);
  if (stale_signal(msg, from_dir)) {
    // A straggler from a previous power episode of the sender (delayed or
    // duplicated on a faulty fabric). Acting on it here would corrupt the
    // PSRs — e.g. a stale SleepNotify un-blocks a router that is actually
    // mid-Wakeup and a worm launches into its bypass latches. Swallow or
    // forward exactly as a fresh signal would be, but change nothing;
    // every hop applies its own staleness test. [impl]
    return msg.target == id_ || state_ == PowerState::kActive ||
           state_ == PowerState::kDraining;
  }
  update_psr(from_dir, msg, now);
  // Partner replacement must also run on signals this (gated) router merely
  // relays — a waking router is not "powered" but still owns Expecteds.
  if (msg.type == HsType::kSleepNotify) retarget_expected(msg, now);
  if (msg.type == HsType::kActiveNotify) {
    adopt_nearer_partner(msg, from_dir, now);
  }

  const bool is_target = msg.target == id_;
  const bool powered =
      state_ == PowerState::kActive || state_ == PowerState::kDraining;
  if (!is_target && !powered) return false;  // sleeping/waking: forward

  switch (msg.type) {
    case HsType::kDrainReq:
      if (state_ == PowerState::kDraining) {
        // Simultaneous drains: the smaller id proceeds (Section IV-A).
        // A dead router never yields — its drain is mandatory.
        if (msg.from < id_ && !dead_) abort_drain(now);
        add_obligation(from_dir, msg.from, msg.epoch);
      } else if (state_ == PowerState::kWakeup) {
        // Draining–Wakeup conflict: Wakeup has priority; make the drain
        // requester abort by announcing the wakeup to it directly.
        send(now, HsType::kWakeupNotify, from_dir, msg.from);
      } else if (state_ == PowerState::kSleep) {
        // Stale addressing: the requester thought this router was powered.
        // Re-announce the sleep so it re-points its PSRs.
        send(now, HsType::kSleepNotify, from_dir, msg.from,
             router_->view().logical[dir_index(opposite(from_dir))]);
      } else {
        add_obligation(from_dir, msg.from, msg.epoch);
        if (!is_target && !dead_) {
          // We absorbed a request aimed beyond us: the sender's leg still
          // names the old partner, so our DrainDone would never match it.
          // Announce ourselves so the sender adopts us as the new partner.
          // [impl]
          send(now, HsType::kActiveNotify, from_dir, msg.from);
        }
      }
      break;
    case HsType::kDrainAbort:
      // The aborting router no longer needs our drain_done.
      owed_.erase(std::remove_if(owed_.begin(), owed_.end(),
                                 [&](const Obligation& o) {
                                   return o.requester == msg.from;
                                 }),
                  owed_.end());
      break;
    case HsType::kDrainDone:
      // Epoch mismatch = a reply to an ABORTED episode (the DrainAbort was
      // lost): honoring it would let this drain complete while the partner
      // is mid-worm toward us. Drop it; the current episode's retries will
      // earn a fresh one. [impl]
      if (msg.epoch != epoch_) break;
      for (Expected& e : expected_) {
        if (e.partner == msg.from) e.done = true;
      }
      break;
    case HsType::kWakeupNotify:
      // Wakeup priority — except over a dead router's mandatory drain (the
      // waker still gets its DrainDone through the obligation below).
      if (state_ == PowerState::kDraining && !dead_) abort_drain(now);
      // We are (one of) the waking router's logical partners: we owe it a
      // drain_done once our in-flight deliveries toward it finish. Two
      // concurrently waking routers owe each other the same.
      if (state_ != PowerState::kSleep) {
        add_obligation(from_dir, msg.from, msg.epoch);
        if (!is_target && state_ == PowerState::kActive && !dead_) {
          // Same stale-leg heal as for DrainReq: tell the waker its true
          // nearest powered partner is us, not whoever it addressed. [impl]
          send(now, HsType::kActiveNotify, from_dir, msg.from);
        }
      } else if (is_target) {
        // Stale addressing (the waker missed our SleepNotify): re-announce
        // so it re-targets its handshake at whoever is powered beyond us.
        // Without this reply the waker would retry into silence forever.
        // [impl]
        send(now, HsType::kSleepNotify, from_dir, msg.from,
             router_->view().logical[dir_index(opposite(from_dir))]);
      }
      break;
    case HsType::kSleepNotify:
    case HsType::kActiveNotify:
      break;  // PSR update already applied
    case HsType::kWakeupTrigger:
      if (is_target) {
        trigger_wakeup(now);
        if (state_ == PowerState::kActive && !dead_) {
          // Already awake (e.g. our earlier ActiveNotify was lost): answer
          // so the requester's stale PSRs re-point here and the held packet
          // releases. [impl]
          send(now, HsType::kActiveNotify, from_dir, msg.from);
        }
        return true;
      }
      // A powered router between requester and target absorbs the trigger:
      // the requester's view was stale. Announce our own liveness toward it
      // so the view heals rather than waiting for self-correction. [impl]
      if (state_ == PowerState::kActive && !dead_) {
        send(now, HsType::kActiveNotify, from_dir, msg.from);
      }
      break;
  }
  return true;
}

}  // namespace flov
