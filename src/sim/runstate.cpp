#include "sim/runstate.hpp"

#include <cstdio>
#include <cstring>

#include "common/log.hpp"
#include "telemetry/json.hpp"

namespace flov {

namespace {

constexpr char kSlotMagic[8] = {'F', 'L', 'O', 'V', 'R', 'U', 'N', '1'};

std::uint64_t fnv1a(const unsigned char* p, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

std::string hex16(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

RunstateKeeper::RunstateKeeper(ipc::ShmArena* arena, Options opts)
    : arena_(arena) {
  FLOV_CHECK(arena_ != nullptr,
             "RunstateKeeper needs the shared stepping arena");
  // Every allocation the keeper makes must be parent-private malloc: the
  // snapshot's whole job is to survive the arena being torn and rewritten.
  ipc::ShmArenaScope unbound(nullptr);
  opts_ = std::move(opts);
}

void RunstateKeeper::add_region(void* ptr, std::size_t bytes) {
  FLOV_CHECK(!have_, "register keeper regions before the first capture");
  ipc::ShmArenaScope unbound(nullptr);
  regions_.push_back(Region{ptr, bytes});
}

void RunstateKeeper::capture(Cycle now) {
  if (have_ && cycle_ == now) return;  // resume re-crossing its boundary
  ipc::ShmArenaScope unbound(nullptr);
  frontier_ = arena_->image_frontier();
  arena_image_.resize(frontier_);
  std::memcpy(arena_image_.data(), arena_->image_base(), frontier_);
  std::size_t total = 0;
  for (const Region& r : regions_) total += r.bytes;
  region_image_.resize(total);
  std::size_t off = 0;
  for (const Region& r : regions_) {
    std::memcpy(region_image_.data() + off, r.ptr, r.bytes);
    off += r.bytes;
  }
  cycle_ = now;
  have_ = true;
  ++seq_;
  if (!opts_.path.empty()) write_slot();
}

Cycle RunstateKeeper::restore() {
  FLOV_CHECK(have_, "no snapshot to restore");
  // In-place over the same mapping: every absolute pointer inside the
  // image stays valid. The bump rollback inside the restored ArenaHeader
  // makes post-capture blocks unreachable (bounded garbage, unmapped
  // wholesale at teardown), and the restored header is clean — lock free,
  // poison flag clear.
  std::memcpy(arena_->image_base(), arena_image_.data(), frontier_);
  std::size_t off = 0;
  for (const Region& r : regions_) {
    std::memcpy(r.ptr, region_image_.data() + off, r.bytes);
    off += r.bytes;
  }
  return cycle_;
}

void RunstateKeeper::write_slot() {
  // Double-buffered: alternate slot files so a crash mid-write leaves the
  // previous slot intact; the index line is appended only after the slot
  // is fully written and closed.
  const int slot = static_cast<int>(seq_ % 2);
  const std::string slot_path = opts_.path + "." + std::to_string(slot);
  std::FILE* f = std::fopen(slot_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[runstate] cannot open %s; disk snapshots off\n",
                 slot_path.c_str());
    opts_.path.clear();
    return;
  }
  std::uint64_t checksum = fnv1a(arena_image_.data(), arena_image_.size(),
                                 kFnvSeed);
  checksum = fnv1a(region_image_.data(), region_image_.size(), checksum);
  const std::uint64_t hdr[6] = {
      seq_,
      static_cast<std::uint64_t>(cycle_),
      opts_.fingerprint,
      static_cast<std::uint64_t>(arena_image_.size()),
      static_cast<std::uint64_t>(region_image_.size()),
      checksum,
  };
  bool ok = std::fwrite(kSlotMagic, 1, sizeof(kSlotMagic), f) ==
            sizeof(kSlotMagic);
  ok = ok && std::fwrite(hdr, 1, sizeof(hdr), f) == sizeof(hdr);
  ok = ok && std::fwrite(arena_image_.data(), 1, arena_image_.size(), f) ==
                 arena_image_.size();
  ok = ok && std::fwrite(region_image_.data(), 1, region_image_.size(), f) ==
                 region_image_.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::fprintf(stderr, "[runstate] short write to %s; disk snapshots off\n",
                 slot_path.c_str());
    opts_.path.clear();
    return;
  }
  std::FILE* idx = std::fopen(opts_.path.c_str(), seq_ == 1 ? "w" : "a");
  if (idx == nullptr) return;
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("schema", "flyover-runstate-v1");
  w.kv("seq", seq_);
  w.kv("cycle", static_cast<std::uint64_t>(cycle_));
  w.kv("fingerprint", hex16(opts_.fingerprint));
  w.kv("slot", slot);
  w.kv("bytes",
       static_cast<std::uint64_t>(arena_image_.size() + region_image_.size()));
  w.kv("checksum", hex16(checksum));
  w.end_object();
  const std::string line = w.take();
  std::fwrite(line.data(), 1, line.size(), idx);
  std::fputc('\n', idx);
  std::fclose(idx);
}

}  // namespace flov
