#include "sim/latency_stats.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace flov {

LatencyStats::LatencyStats(int router_pipeline_cycles, Cycle timeline_window,
                           Cycle hist_max)
    : pipeline_(router_pipeline_cycles),
      hist_(0, static_cast<double>(hist_max), static_cast<int>(hist_max)),
      timeline_window_(timeline_window),
      timeline_(timeline_window ? timeline_window : 1) {}

void LatencyStats::record(const PacketRecord& rec) {
  if (rec.gen_cycle < measure_from_) return;
  const double total = static_cast<double>(rec.total_latency());
  const double router = pipeline_ * static_cast<double>(rec.router_hops);
  // +2: the injection and ejection NI<->router channel traversals.
  const double link = static_cast<double>(rec.link_hops) + 2.0;
  const double serial = static_cast<double>(rec.size_flits - 1);
  const double flov = static_cast<double>(rec.flov_hops);
  const double contention =
      std::max(0.0, total - router - link - serial - flov);

  latency_.add(total);
  hist_.add(total);
  router_c_.add(router);
  link_c_.add(link);
  serial_c_.add(serial);
  flov_c_.add(flov);
  contention_c_.add(contention);
  hops_.add(static_cast<double>(rec.link_hops));
  flov_hops_.add(static_cast<double>(rec.flov_hops));
  if (rec.used_escape) ++escape_packets_;
  if (timeline_window_) timeline_.add(rec.gen_cycle, total);
}

void LatencyStats::publish_metrics(telemetry::MetricsRegistry& reg) const {
  reg.stat("latency.total").merge(latency_);
  reg.stat("latency.router_component").merge(router_c_);
  reg.stat("latency.link_component").merge(link_c_);
  reg.stat("latency.serialization_component").merge(serial_c_);
  reg.stat("latency.flov_component").merge(flov_c_);
  reg.stat("latency.contention_component").merge(contention_c_);
  reg.stat("latency.link_hops").merge(hops_);
  reg.stat("latency.flov_hops").merge(flov_hops_);
  reg.histogram("latency.histogram", hist_.lo(), hist_.hi(), hist_.num_bins())
      .merge(hist_);
  reg.counter("latency.packets_measured") += latency_.count();
  reg.counter("latency.escape_packets") += escape_packets_;
  reg.counter("latency.hist_overflow") += hist_.clamped_high();
}

LatencyBreakdown LatencyStats::avg_breakdown() const {
  LatencyBreakdown b;
  b.router = router_c_.mean();
  b.link = link_c_.mean();
  b.serialization = serial_c_.mean();
  b.flov = flov_c_.mean();
  b.contention = contention_c_.mean();
  return b;
}

}  // namespace flov
