// Statistical reliability certification (ROADMAP "Statistical reliability
// certification"; cf. "Probabilistic Verification for Reliability of a 2x2
// NoC", arXiv 2108.13148).
//
// A certification campaign replicates ONE experiment configuration across
// many derived seeds (via run_sweep, so replications parallelize and
// checkpoint like any sweep), folds each run's delivered/dead/purged packet
// accounting and incident counters into per-metric Bernoulli estimators,
// and turns the counts into confidence intervals (Wilson + Clopper-Pearson)
// with a sequential stopping rule: stop as soon as the CI is tight enough
// or an SPRT against a target reliability resolves, bounded by a hard
// replication cap.
//
// Determinism contract: stopping decisions are made ONLY at batch
// boundaries, and batch results fold in submission order — so the folded
// counts, the stopping cycle and hence the emitted certificate are
// byte-identical across jobs=1 vs jobs=N and across kill-and-resume
// (modulo the volatile jobs/wall_seconds manifest fields).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/experiment.hpp"

namespace flov {

/// Metrics a campaign can certify. All are Bernoulli proportions:
///   delivery        per-packet: acked / (acked + dead + purged +
///                   killed_at_source) — every settled reliable flow.
///   clean_delivery  delivery AND payload intact (soft-error axis):
///                   corrupted deliveries count as failures.
///   run_survival    per-run: the replication finished without aborting
///                   and with zero invariant violations.
struct CertifyOptions {
  std::string metric = "delivery";  ///< drives the stopping rule
  double confidence = 0.95;

  // --- sequential stopping (evaluated at batch boundaries only) ---
  /// SPRT reliability target (0 = disarmed): certify "p >= target +
  /// indifference" against "p <= target - indifference" with
  /// alpha = beta = 1 - confidence.
  double target = 0.0;
  double indifference = 0.01;
  /// CI half-width stop (0 = disarmed): stop once the chosen interval's
  /// half-width drops to this or below.
  double half_width_stop = 0.0;
  /// Interval family for the half-width rule: "wilson" or
  /// "clopper-pearson". The certificate always carries both.
  std::string interval = "wilson";
  /// No stopping decision before this many replications have folded
  /// (guards against a lucky first batch certifying from nothing).
  std::uint64_t min_replications = 64;
  /// Hard cap: the campaign never runs more replications than this.
  std::uint64_t max_replications = 1024;
  /// Replications per run_sweep batch. Decisions happen only after a full
  /// batch folds, so `batch` trades early-stopping granularity against
  /// sweep-level parallelism.
  std::uint64_t batch = 32;

  // --- seed derivation ---
  std::uint64_t seed_base = 1;
  /// Also vary faults.seed per replication (the usual Monte-Carlo mode).
  /// false pins the fault fates — e.g. "THESE two routers die" — while
  /// traffic seeds still vary.
  bool vary_faults = true;

  // --- sweep plumbing ---
  int jobs = 1;
  /// Shared JSONL checkpoint for the whole campaign ("" = none). Batches
  /// append to one file; per-replication config fingerprints keep lines
  /// from other batches inert on restore.
  std::string checkpoint_path;
  /// Resume from checkpoint_path (a fresh campaign deletes it first).
  bool resume = false;
  int retries = 0;
  int retry_backoff_ms = 0;
  /// Overall progress: (replications_folded, max_replications).
  std::function<void(std::uint64_t done, std::uint64_t cap)> progress;
  /// Called after every folded batch with the replication count so far and
  /// the target metric's running estimate — the bench convergence hook.
  std::function<void(std::uint64_t reps, const struct CertifyEstimate& e)>
      batch_hook;
};

/// One metric's folded counts and intervals.
struct CertifyEstimate {
  std::string metric;
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;
  double point = 0.0;  ///< successes / trials (0 when trials == 0)
  BinomialInterval wilson;           ///< at CertifyOptions::confidence
  BinomialInterval clopper_pearson;  ///< at CertifyOptions::confidence
};

struct CertifyResult {
  /// Replications actually folded (== the certified seed range
  /// [seed_base..) length; < max_replications iff stopped early).
  std::uint64_t replications = 0;
  /// "target_certified" | "target_refuted" | "half_width" |
  /// "max_replications".
  std::string stop_reason;
  bool stopped_early = false;
  /// Estimates in fixed order: delivery, clean_delivery, run_survival.
  std::vector<CertifyEstimate> estimates;
  /// The target metric's estimate (also present in `estimates`).
  CertifyEstimate target_estimate;

  const CertifyEstimate* find(const std::string& metric) const {
    for (const CertifyEstimate& e : estimates) {
      if (e.metric == metric) return &e;
    }
    return nullptr;
  }
};

/// Seed for replication `rep` of a campaign rooted at `seed_base`:
/// a splitmix-style hash, so adjacent replications are statistically
/// independent and replication i's seed never depends on how many
/// replications ran before it (checkpoint keys stay stable).
std::uint64_t derive_replication_seed(std::uint64_t seed_base,
                                      std::uint64_t rep);

/// The exact config replication `rep` runs: base with the traffic seed
/// (and, when opts.vary_faults, the fault seed) rederived. Exposed so
/// tests and the checkpoint layer agree on fingerprints.
SyntheticExperimentConfig replication_config(
    const SyntheticExperimentConfig& base, const CertifyOptions& opts,
    std::uint64_t rep);

/// Runs the campaign. The base config's per-run verifier must not be fatal
/// if run_survival is to mean anything (a fatal verifier aborts the
/// process, not the replication).
CertifyResult run_certification(const SyntheticExperimentConfig& base,
                                const CertifyOptions& opts);

}  // namespace flov
