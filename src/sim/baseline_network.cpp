#include "sim/baseline_network.hpp"

#include "fault/fault_wiring.hpp"
#include "noc/router.hpp"
#include "telemetry/metrics.hpp"

namespace flov {

BaselineNetwork::BaselineNetwork(NocParams params, const EnergyParams& energy,
                                 const FaultParams& faults)
    : params_(params), geom_(params.width, params.height) {
  params_.enable_escape_diversion = false;  // YX is deadlock-free
  power_ = std::make_unique<PowerTracker>(geom_, energy,
                                          /*flov_hardware=*/false);
  routing_ = std::make_unique<YxRouting>(geom_);
  net_ = std::make_unique<Network>(params_, routing_.get(), power_.get());
  gated_.assign(geom_.num_nodes(), false);
  dead_mask_.assign(geom_.num_nodes(), 0);
  if (faults.any()) {
    fault_ = std::make_unique<FaultInjector>(faults, net_->num_nodes());
    arm_link_faults(*net_, *fault_);
    for (NodeId id = 0; id < net_->num_nodes(); ++id) {
      net_->router(id).set_kill_callback(
          [f = fault_.get(), n = net_.get(), id](const Flit& fl) {
            f->note_hard_killed(fl);
            n->note_flit_dropped(id);
          });
    }
  }
}

void BaselineNetwork::step(Cycle now) {
  if (fault_ && !hard_applied_ && fault_->hard_at() > 0 &&
      now >= fault_->hard_at()) {
    hard_applied_ = true;
    apply_hard_faults(now);
  }
  net_->step(now);
}

void BaselineNetwork::apply_hard_faults(Cycle now) {
  std::vector<char> dead_links;
  dead_links_ = mark_dead_links(*net_, *fault_, dead_links);
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    if (!fault_->router_dies(id)) continue;
    dead_mask_[id] = 1;
    gated_[id] = true;  // the attached core is gone with its router
    // Worm-coherent death: finish worms in progress, eat new ones whole,
    // then go dark (see Router::begin_death).
    net_->router(id).begin_death(now);
    net_->ni(id).kill(now);
    net_->wake_router(id);
  }
}

int BaselineNetwork::dead_router_count() const {
  int n = 0;
  for (char c : dead_mask_) n += c != 0;
  return n;
}

void BaselineNetwork::publish_metrics(telemetry::MetricsRegistry& reg) const {
  if (!fault_) return;
  const FaultInjector::Counters& f = fault_->counters();
  reg.counter("fault.flits_dropped") += f.flits_dropped;
  reg.counter("fault.flits_delayed") += f.flits_delayed;
  if (fault_->hard_at() > 0) {
    reg.counter("fault.hard_killed_flits") += f.hard_killed;
    reg.gauge("fault.dead_routers") = static_cast<double>(dead_router_count());
    reg.gauge("fault.dead_links") = static_cast<double>(dead_links_);
  }
}

}  // namespace flov
