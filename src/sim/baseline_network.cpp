#include "sim/baseline_network.hpp"

namespace flov {

BaselineNetwork::BaselineNetwork(NocParams params, const EnergyParams& energy)
    : params_(params), geom_(params.width, params.height) {
  params_.enable_escape_diversion = false;  // YX is deadlock-free
  power_ = std::make_unique<PowerTracker>(geom_, energy,
                                          /*flov_hardware=*/false);
  routing_ = std::make_unique<YxRouting>(geom_);
  net_ = std::make_unique<Network>(params_, routing_.get(), power_.get());
  gated_.assign(geom_.num_nodes(), false);
}

}  // namespace flov
