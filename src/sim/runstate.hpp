// In-run checkpoints for the self-healing multi-process runtime
// (sim.snapshot_period > 0; docs/RELIABILITY.md, "Runtime self-healing").
//
// The multi-process design makes checkpointing almost free of format code:
// the ENTIRE stepping state — hot-state slab, channels (with staged
// cross-domain sends), routers, NIs, RNG cursors inside traffic/fault
// objects, telemetry fold state — already lives either in the shared arena
// (everything allocated under the run's ShmArenaScope) or in a handful of
// parent-stack objects (LatencyStats, SyntheticTraffic, GatingScenario,
// loop scalars). So a checkpoint is:
//
//   1. a raw byte image of the arena's used prefix [base, bump), and
//   2. a raw byte copy of each registered stack region.
//
// Restore memcpys both back IN PLACE over the same mapping, so every
// absolute pointer in the image stays valid — no relocation, no
// serialization schema drift, and the restored run is bit-exact by
// construction (the same argument as fork() itself). Captures happen only
// at cycle boundaries while all workers are parked at the barrier, so the
// image is a quiescent point of the deterministic schedule.
//
// Durability: when a path is configured, each capture is also written to a
// versioned `flyover-runstate-v1` blob — two alternating slot files
// (path.0 / path.1) so a crash mid-write can never corrupt the last good
// snapshot, plus an append-only JSONL index at `path` carrying schema,
// config fingerprint, cycle and checksum (validated by
// scripts/validate_telemetry.py --runstate). In-run recovery always
// restores from the in-memory copy; the disk blob is the operator-facing
// audit trail of what the run could have recovered from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "noc/ipc/shm_arena.hpp"

namespace flov {

class RunstateKeeper {
 public:
  struct Options {
    /// Disk blob path ("" = in-memory only; recovery never needs disk).
    std::string path;
    /// sweep_point_fingerprint(cfg) — stamped into every index line so a
    /// validator (or a future cross-process resume) can reject snapshots
    /// from a different configuration.
    std::uint64_t fingerprint = 0;
  };

  /// `arena` is borrowed and must outlive the keeper. All internal buffers
  /// are parent-private malloc memory (the keeper unbinds the arena scope
  /// around its own allocations) — a snapshot must survive the arena being
  /// quarantined and rewritten.
  RunstateKeeper(ipc::ShmArena* arena, Options opts);

  RunstateKeeper(const RunstateKeeper&) = delete;
  RunstateKeeper& operator=(const RunstateKeeper&) = delete;

  /// Registers a raw region (a parent-stack object whose heap members live
  /// in the arena) to be captured/restored byte-wise alongside the arena
  /// image. Register everything BEFORE the first capture.
  void add_region(void* ptr, std::size_t bytes);

  /// Captures the complete stepping state at cycle `now`. Must be called
  /// between cycles with no worker mid-step (the run loop's snapshot
  /// boundary). Re-capturing the cycle already held is a no-op (the resume
  /// path passes through its own capture boundary again).
  void capture(Cycle now);

  /// Restores the last capture in place over the same mapping. Caller must
  /// have quarantined the fabric first (Network::prepare_for_restore — no
  /// worker processes left). Returns the captured cycle, which is the next
  /// cycle to execute.
  Cycle restore();

  bool has_snapshot() const { return have_; }
  Cycle cycle() const { return cycle_; }
  std::uint64_t captures() const { return seq_; }

 private:
  struct Region {
    void* ptr;
    std::size_t bytes;
  };

  void write_slot();

  ipc::ShmArena* arena_;
  Options opts_;
  std::vector<Region> regions_;
  std::vector<unsigned char> arena_image_;
  std::vector<unsigned char> region_image_;
  std::size_t frontier_ = 0;  ///< arena bytes captured ([base, bump))
  Cycle cycle_ = 0;
  bool have_ = false;
  std::uint64_t seq_ = 0;  ///< capture sequence number (slot = seq % 2)
};

}  // namespace flov
