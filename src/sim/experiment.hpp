// Synthetic-workload experiment harness shared by benches, examples and
// integration tests. Reproduces the paper's methodology: Table-I network,
// seeded gating scenario, Bernoulli traffic, 10k-cycle warm-up, 100k-cycle
// total run, measurement over the post-warm-up window.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fault/fault_model.hpp"
#include "noc/noc_params.hpp"
#include "power/power_tracker.hpp"
#include "sim/builder.hpp"
#include "sim/latency_stats.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/structured_sink.hpp"
#include "telemetry/telemetry_options.hpp"
#include "telemetry/trace.hpp"
#include "verify/invariant_verifier.hpp"

namespace flov::ops {
class OpsPlane;
}

namespace flov {

struct SyntheticExperimentConfig {
  NocParams noc;         ///< Table-I defaults
  EnergyParams energy;   ///< 32 nm / 2 GHz defaults
  Scheme scheme = Scheme::kBaseline;
  std::string pattern = "uniform";
  double inj_rate_flits = 0.02;  ///< flits/cycle/node
  double gated_fraction = 0.0;
  Cycle warmup = 10000;
  Cycle measure = 90000;  ///< total run = warmup + measure (paper: 100k)
  std::uint64_t seed = 1;
  /// Extra gating-set changes mid-run (Fig. 10); empty for the sweeps.
  std::vector<Cycle> gating_changes;
  /// Latency-vs-time bucket width (0 = no timeline).
  Cycle timeline_window = 0;
  /// Watchdog: if no packet makes progress for this long, dump state and
  /// try one scheme-level recovery; abort only if the stall persists
  /// (0 = disabled).
  Cycle watchdog = 50000;
  /// Post-measurement drain budget (0 = none): traffic generation stops at
  /// warmup+measure and the system keeps stepping — at most this many extra
  /// cycles — until the fabric is empty and every reliable NI has settled
  /// all of its flows (acked or declared dead). Running out of budget is
  /// recorded as a structured incident, not an abort.
  Cycle drain_max = 0;
  /// Hard cycle cap (sim.max_cycles_hard; 0 = off): the absolute upper
  /// bound on simulated cycles. Exceeding it — or a watchdog stall that
  /// recovery cannot heal while the cap is set — aborts the run with a
  /// structured incident and partial stats instead of FLOV_CHECK-aborting
  /// the process.
  Cycle max_cycles_hard = 0;
  /// In-run checkpoint period in cycles (sim.snapshot_period; 0 = off).
  /// When set, the complete stepping state is captured at every period
  /// boundary (RunstateKeeper), and a lost worker process or poisoned
  /// arena is healed by restoring the last snapshot and respawning the
  /// pools instead of aborting — with a byte-identical manifest to an
  /// undisturbed run. Volatile: never part of the config fingerprint, and
  /// zero hot-path cost when 0 (one null check per cycle).
  Cycle snapshot_period = 0;
  /// Disk path for the flyover-runstate-v1 blob (runstate=; "" = snapshots
  /// stay in memory only). Volatile.
  std::string runstate_path;
  /// Self-healing budget (sim.max_recoveries): in-run recoveries beyond
  /// this abort the run on the classic worker_lost path. Volatile.
  int max_recoveries = 3;
  /// Fault-injection model (all-zero = reliable fabric).
  FaultParams faults;
  /// Run the invariant verifier alongside the simulation.
  bool verify = true;
  VerifierOptions verifier;
  /// Telemetry: event-trace mask/capacity and metric-sampling window.
  telemetry::TelemetryOptions telemetry;
  /// Live ops plane (borrowed; null = disabled, which costs one pointer
  /// check per cycle). When set, run_synthetic publishes periodic
  /// flyover-snapshot-v1 folds through it; nothing the ops plane does can
  /// affect the run's results or its manifest.
  ops::OpsPlane* ops = nullptr;
};

struct RunResult {
  /// Keepalive for the shared stepping arena (noc.step_procs > 1; null
  /// otherwise). Everything below — metrics, incidents, the latency stats
  /// folded into the scalars — was allocated while the arena scope was
  /// bound, so the mapping must outlive every copy of this result. FIRST
  /// member on purpose: members are destroyed in reverse declaration
  /// order, so the arena is unmapped last.
  std::shared_ptr<void> arena;
  std::string scheme;
  double avg_latency = 0.0;
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  LatencyBreakdown breakdown;
  PowerTracker::Report power;
  std::uint64_t packets_measured = 0;
  std::uint64_t packets_generated = 0;
  std::uint64_t injected_flits = 0;
  std::uint64_t ejected_flits = 0;
  std::uint64_t escape_packets = 0;
  int gated_routers_end = 0;  ///< routers asleep/parked when the run ended
  /// Time-average number of gated routers (FLOV schemes; for RP equals the
  /// end-of-run parked count, which is steady between reconfigurations).
  double avg_gated_routers = 0.0;
  std::uint64_t protocol_sleeps = 0;   ///< FLOV Sleep entries
  std::uint64_t protocol_wakeups = 0;  ///< FLOV completed wakeups
  // --- robustness counters ---
  std::uint64_t watchdog_recoveries = 0;  ///< stalls healed by recovery
  std::uint64_t verifier_violations = 0;  ///< 0 unless verifier.fatal=false
  std::uint64_t verifier_checks = 0;
  std::uint64_t hs_resends = 0;        ///< handshake retries (signal loss)
  std::uint64_t trigger_resends = 0;   ///< re-armed WakeupTriggers
  std::uint64_t self_captures = 0;     ///< bypass self-destined captures
  std::uint64_t flits_dropped_by_faults = 0;
  // --- reliable delivery (noc.reliable; PROTOCOL.md §8) ---
  std::uint64_t packets_acked = 0;     ///< flows confirmed end-to-end
  std::uint64_t packets_dead = 0;      ///< flows declared dead (retries out)
  std::uint64_t packets_purged = 0;    ///< unsequenced queue purges (RP)
  std::uint64_t killed_at_source = 0;  ///< queued at an NI when it died
  std::uint64_t retransmits = 0;
  std::uint64_t dup_packets = 0;       ///< duplicate deliveries suppressed
  // --- soft errors ---
  /// Measured packets DELIVERED with a flipped payload bit (subset of
  /// packets_measured; the certify harness's clean-delivery metric
  /// subtracts these from the delivered count).
  std::uint64_t packets_corrupted = 0;
  std::uint64_t payload_flips = 0;     ///< payload bit flips on the wire
  std::uint64_t psr_flips = 0;         ///< corrupted handshake payloads
  // --- hard faults ---
  int dead_routers = 0;
  int dead_links = 0;                  ///< dead directed links
  std::uint64_t wake_requests_dropped = 0;
  /// True when sim.max_cycles_hard aborted the run (stats are partial).
  bool aborted = false;
  /// True when a stepping worker process died mid-run (noc.step_procs > 1;
  /// implies aborted — a `worker_lost` incident carries the details, and
  /// flov_sim_cli exits 3). With sim.snapshot_period > 0 this is only set
  /// when self-healing also failed (recovery budget exhausted or no
  /// snapshot yet).
  bool worker_lost = false;
  /// Self-healing recoveries performed (checkpoint restore + respawn).
  /// Deliberately NOT a manifest metric: a disturbed-and-recovered run
  /// must stay byte-identical to an undisturbed one, so recovery telemetry
  /// lives only here, on stderr, and on /healthz.
  std::uint64_t recoveries = 0;
  /// Wall time spent inside recovery (restore + respawn), nanoseconds.
  std::uint64_t recovery_wall_ns = 0;
  /// Cycles actually simulated (warmup + measure + any drain tail; less
  /// when aborted).
  Cycle cycles_run = 0;
  std::vector<TimeSeries::Point> timeline;
  // --- telemetry (always populated; shared so RunResult stays copyable) ---
  /// Full metrics registry for this run (merged across runs by sweeps).
  std::shared_ptr<telemetry::MetricsRegistry> metrics;
  /// Event tracer; null unless cfg.telemetry.trace_mask was non-zero AND
  /// the build compiled the hook points in (FLYOVER_TRACING).
  std::shared_ptr<telemetry::Tracer> trace;
  /// Structured incident records (verifier violations, watchdog stalls).
  std::shared_ptr<telemetry::StructuredSink> incidents;
};

RunResult run_synthetic(const SyntheticExperimentConfig& cfg);

}  // namespace flov
