#include "sim/certify.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "sim/sweep.hpp"

namespace flov {

namespace {

/// Raw Bernoulli counts for every certifiable metric, folded across
/// replications in submission order.
struct Counts {
  std::uint64_t delivery_s = 0, delivery_t = 0;
  std::uint64_t clean_s = 0, clean_t = 0;
  std::uint64_t survival_s = 0, survival_t = 0;

  void fold(const RunResult& r) {
    const std::uint64_t settled = r.packets_acked + r.packets_dead +
                                  r.packets_purged + r.killed_at_source;
    delivery_s += r.packets_acked;
    delivery_t += settled;
    // Corrupted packets delivered — subtract them from the clean
    // successes. packets_corrupted counts measured deliveries, so it can
    // never exceed acked on a drained run; clamp anyway so a truncated
    // (aborted) run cannot underflow.
    clean_s += r.packets_acked - std::min(r.packets_corrupted, r.packets_acked);
    clean_t += settled;
    survival_s += (!r.aborted && r.verifier_violations == 0) ? 1u : 0u;
    survival_t += 1;
  }
};

CertifyEstimate make_estimate(const std::string& metric, std::uint64_t s,
                              std::uint64_t t, double confidence) {
  CertifyEstimate e;
  e.metric = metric;
  e.successes = s;
  e.trials = t;
  e.point = t == 0 ? 0.0 : static_cast<double>(s) / static_cast<double>(t);
  e.wilson = wilson_interval(s, t, confidence);
  e.clopper_pearson = clopper_pearson_interval(s, t, confidence);
  return e;
}

std::vector<CertifyEstimate> make_estimates(const Counts& c,
                                            double confidence) {
  return {make_estimate("delivery", c.delivery_s, c.delivery_t, confidence),
          make_estimate("clean_delivery", c.clean_s, c.clean_t, confidence),
          make_estimate("run_survival", c.survival_s, c.survival_t,
                        confidence)};
}

bool known_metric(const std::string& m) {
  return m == "delivery" || m == "clean_delivery" || m == "run_survival";
}

}  // namespace

std::uint64_t derive_replication_seed(std::uint64_t seed_base,
                                      std::uint64_t rep) {
  // Never 0: a zero seed collapses some subsystem RNG streams.
  const std::uint64_t s =
      mix_u64(hash_mix(seed_base * 0x9E3779B97F4A7C15ull + 0x43455254ull,
                       rep));  // "CERT"
  return s == 0 ? 1 : s;
}

SyntheticExperimentConfig replication_config(
    const SyntheticExperimentConfig& base, const CertifyOptions& opts,
    std::uint64_t rep) {
  SyntheticExperimentConfig cfg = base;
  cfg.seed = derive_replication_seed(opts.seed_base, rep);
  if (opts.vary_faults) {
    cfg.faults.seed =
        derive_replication_seed(opts.seed_base ^ 0xFA17FA17FA17FA17ull, rep);
  }
  return cfg;
}

CertifyResult run_certification(const SyntheticExperimentConfig& base,
                                const CertifyOptions& opts) {
  FLOV_CHECK(known_metric(opts.metric),
             "unknown certify metric '" + opts.metric +
                 "' (delivery | clean_delivery | run_survival)");
  FLOV_CHECK(opts.confidence > 0.0 && opts.confidence < 1.0,
             "confidence must be in (0, 1)");
  FLOV_CHECK(opts.batch >= 1, "certify batch must be >= 1");
  FLOV_CHECK(opts.max_replications >= 1, "max_replications must be >= 1");
  FLOV_CHECK(opts.min_replications <= opts.max_replications,
             "min_replications exceeds max_replications");
  FLOV_CHECK(opts.interval == "wilson" || opts.interval == "clopper-pearson",
             "interval must be wilson or clopper-pearson");
  FLOV_CHECK(opts.target == 0.0 ||
                 (opts.target > 0.0 && opts.target < 1.0),
             "SPRT target must be in (0, 1), or 0 to disarm");
  if (opts.metric != "run_survival") {
    FLOV_CHECK(base.noc.reliable,
               "delivery metrics need noc.reliable=1 (packet accounting)");
  }

  // SPRT against the target, indifference region clamped into (0, 1).
  // alpha = beta = 1 - confidence: the certify and refute error rates both
  // match the campaign's confidence level.
  std::unique_ptr<SprtTest> sprt;
  if (opts.target > 0.0) {
    const double eps = 1e-9;
    const double p0 = std::max(eps, opts.target - opts.indifference);
    const double p1 = std::min(1.0 - eps, opts.target + opts.indifference);
    FLOV_CHECK(p0 < p1, "SPRT indifference region collapsed");
    sprt = std::make_unique<SprtTest>(p0, p1, 1.0 - opts.confidence,
                                      1.0 - opts.confidence);
  }

  // A fresh campaign owns its checkpoint file: stale lines from an
  // unrelated (or configuration-drifted) campaign would be skipped by the
  // fingerprint check anyway, but deleting keeps the file from growing
  // without bound across campaigns.
  if (!opts.checkpoint_path.empty() && !opts.resume) {
    std::remove(opts.checkpoint_path.c_str());
  }

  Counts counts;
  CertifyResult out;
  std::uint64_t completed = 0;
  while (completed < opts.max_replications) {
    const std::uint64_t batch_n =
        std::min(opts.batch, opts.max_replications - completed);
    std::vector<SyntheticExperimentConfig> points;
    points.reserve(static_cast<std::size_t>(batch_n));
    for (std::uint64_t i = 0; i < batch_n; ++i) {
      points.push_back(replication_config(base, opts, completed + i));
    }

    SweepOptions so;
    so.jobs = opts.jobs;
    so.retries = opts.retries;
    so.retry_backoff_ms = opts.retry_backoff_ms;
    so.checkpoint_path = opts.checkpoint_path;
    // Every batch resumes against the shared campaign checkpoint: lines
    // written by OTHER batches carry different per-replication seeds, so
    // their fingerprints never match this batch's points — they are
    // skipped, not corrupted. append keeps the file from being truncated
    // when a batch restores nothing.
    so.resume = !opts.checkpoint_path.empty();
    so.checkpoint_append = true;
    const std::vector<RunResult> results = run_sweep(points, so);

    // Fold in submission order: the estimator state after this batch is a
    // pure function of (base, opts, completed + batch_n).
    for (const RunResult& r : results) counts.fold(r);
    completed += batch_n;
    if (opts.progress) opts.progress(completed, opts.max_replications);

    // --- sequential stopping, batch boundary only ---
    out.estimates = make_estimates(counts, opts.confidence);
    const CertifyEstimate* target = nullptr;
    for (const CertifyEstimate& e : out.estimates) {
      if (e.metric == opts.metric) target = &e;
    }
    FLOV_CHECK(target != nullptr, "target metric estimate missing");
    if (opts.batch_hook) opts.batch_hook(completed, *target);
    if (completed < opts.min_replications) continue;
    if (sprt && target->trials > 0) {
      const SprtTest::Decision d =
          sprt->decide(target->successes, target->trials);
      if (d == SprtTest::Decision::kAcceptH1) {
        out.stop_reason = "target_certified";
        break;
      }
      if (d == SprtTest::Decision::kAcceptH0) {
        out.stop_reason = "target_refuted";
        break;
      }
    }
    if (opts.half_width_stop > 0.0 && target->trials > 0) {
      const BinomialInterval& ci = opts.interval == "wilson"
                                       ? target->wilson
                                       : target->clopper_pearson;
      if (ci.half_width() <= opts.half_width_stop) {
        out.stop_reason = "half_width";
        break;
      }
    }
  }

  if (out.stop_reason.empty()) {
    out.stop_reason = "max_replications";
  } else {
    out.stopped_early = true;
  }
  out.replications = completed;
  if (out.estimates.empty()) out.estimates = make_estimates(counts, opts.confidence);
  for (const CertifyEstimate& e : out.estimates) {
    if (e.metric == opts.metric) out.target_estimate = e;
  }
  return out;
}

}  // namespace flov
