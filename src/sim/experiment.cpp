#include "sim/experiment.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>

#include "common/backoff.hpp"
#include "common/log.hpp"
#include "flov/flov_network.hpp"
#include "noc/ipc/proc_pool.hpp"
#include "noc/ipc/shm_arena.hpp"
#include "rp/rp_network.hpp"
#include "sim/baseline_network.hpp"
#include "sim/checkpoint.hpp"
#include "sim/runstate.hpp"
#include "telemetry/json.hpp"
#include "telemetry/ops/ops_plane.hpp"
#include "traffic/gating_scenario.hpp"
#include "traffic/synthetic_traffic.hpp"
#include "traffic/traffic_pattern.hpp"
#include "verify/invariant_verifier.hpp"

namespace flov {

namespace {

/// Diagnostic dump on a watchdog stall: every non-quiescent router's
/// occupancy, plus the full handshake FSM picture for FLOV schemes.
void dump_stall_state(NocSystem& sys, Cycle now) {
  std::fprintf(stderr, "[watchdog] --- %s stalled, state at cycle %llu ---\n",
               sys.name(), static_cast<unsigned long long>(now));
  if (auto* f = dynamic_cast<FlovNetwork*>(&sys)) {
    f->dump_state(now);
    return;
  }
  Network& net = sys.network();
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Router& r = net.router(id);
    if (!r.completely_empty()) r.dump_occupancy(now);
  }
}

const char* router_mode_name(RouterMode m) {
  switch (m) {
    case RouterMode::kPipeline: return "pipeline";
    case RouterMode::kBypass: return "bypass";
    case RouterMode::kParked: return "parked";
    case RouterMode::kDead: return "dead";
  }
  return "?";
}

/// Machine-parseable twin of dump_stall_state: one incident object with
/// every router that holds flits or is not plainly powered (coordinates,
/// datapath mode, protocol state, occupancy).
void record_stall_incident(NocSystem& sys, telemetry::StructuredSink& sink,
                           Cycle now, Cycle stalled_for, bool recovered) {
  Network& net = sys.network();
  auto* f = dynamic_cast<FlovNetwork*>(&sys);
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("kind", "watchdog_stall");
  w.kv("scheme", sys.name());
  w.kv("cycle", static_cast<std::uint64_t>(now));
  w.kv("stalled_cycles", static_cast<std::uint64_t>(stalled_for));
  w.kv("recovery_attempted", recovered);
  w.key("routers");
  w.begin_array();
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Router& r = net.router(id);
    const int flits = r.buffered_flits();
    const RouterMode m = r.mode();
    const PowerState ps = f ? f->hsc(id).state() : PowerState::kActive;
    if (flits == 0 && m == RouterMode::kPipeline &&
        ps == PowerState::kActive) {
      continue;
    }
    const Coord c = net.geom().coord(id);
    w.begin_object();
    w.kv("router", id);
    w.kv("x", c.x);
    w.kv("y", c.y);
    w.kv("mode", router_mode_name(m));
    if (f) w.kv("power_state", to_string(ps));
    w.kv("buffered_flits", flits);
    w.end_object();
  }
  w.end_array();
  w.kv("queued_packets", net.total_queued_packets());
  w.kv("in_network_flits", net.in_network_flits());
  w.end_object();
  sink.add(w.take());
}

/// Cycle-budget incident ("hard_cycle_cap" when sim.max_cycles_hard fires,
/// "drain_exhausted" when the post-run drain budget runs out): where the
/// run stood when the budget died, so partial stats can be interpreted.
void record_budget_incident(NocSystem& sys, telemetry::StructuredSink& sink,
                            const char* kind, Cycle now, Cycle budget) {
  Network& net = sys.network();
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("kind", kind);
  w.kv("scheme", sys.name());
  w.kv("cycle", static_cast<std::uint64_t>(now));
  w.kv("budget", static_cast<std::uint64_t>(budget));
  w.kv("queued_packets", net.total_queued_packets());
  w.kv("in_network_flits", net.in_network_flits());
  w.end_object();
  sink.add(w.take());
}

/// One "packet_dead" incident per flow that exhausted its retries, in
/// node-id order (deterministic across thread counts), capped so a run
/// where a hot node's whole neighborhood died cannot bloat the manifest.
/// The aggregate count always lands in run.packets_dead.
void record_dead_packets(Network& net, telemetry::StructuredSink& sink) {
  constexpr std::size_t kMaxDeadIncidents = 200;
  std::size_t emitted = 0;
  std::uint64_t suppressed = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    for (const DeadPacket& d : net.ni(id).dead_log()) {
      if (emitted >= kMaxDeadIncidents) {
        suppressed++;
        continue;
      }
      telemetry::JsonWriter w;
      w.begin_object();
      w.kv("kind", "packet_dead");
      w.kv("src", d.pkt.src);
      w.kv("dest", d.pkt.dest);
      w.kv("seq", static_cast<std::uint64_t>(d.seq));
      w.kv("size_flits", d.pkt.size_flits);
      w.kv("retries", d.retries);
      w.kv("declared_at", static_cast<std::uint64_t>(d.declared_at));
      w.end_object();
      sink.add(w.take());
      emitted++;
    }
  }
  if (suppressed > 0) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("kind", "packet_dead_overflow");
    w.kv("suppressed", suppressed);
    w.end_object();
    sink.add(w.take());
  }
}

/// Post-mortem of the hard-fault wave: which routers died (with
/// coordinates), how many directed links died, and how many wake requests
/// were addressed to a corpse.
void record_hard_fault_summary(NocSystem& sys,
                               const std::vector<char>& dead_mask,
                               int dead_links, std::uint64_t wake_dropped,
                               telemetry::StructuredSink& sink) {
  Network& net = sys.network();
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("kind", "hard_fault_summary");
  w.kv("scheme", sys.name());
  w.key("dead_routers");
  w.begin_array();
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (id >= static_cast<NodeId>(dead_mask.size()) || !dead_mask[id]) {
      continue;
    }
    const Coord c = net.geom().coord(id);
    w.begin_object();
    w.kv("router", id);
    w.kv("x", c.x);
    w.kv("y", c.y);
    w.end_object();
  }
  w.end_array();
  w.kv("dead_links", dead_links);
  w.kv("wake_requests_dropped", wake_dropped);
  w.end_object();
  sink.add(w.take());
}

/// Drain completion: fabric empty, every NI's queue and open streams gone,
/// and (reliable mode) every flow settled — acked or declared dead.
bool fully_drained(Network& net) {
  if (!net.in_flight_empty()) return false;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const NetworkInterface& ni = net.ni(id);
    if (!ni.idle() || !ni.reliable_quiescent()) return false;
  }
  return true;
}

}  // namespace

RunResult run_synthetic(const SyntheticExperimentConfig& cfg) {
  // Multi-process stepping: map the shared arena and route THIS thread's
  // allocations through it for the whole run, BEFORE anything is built —
  // the forked workers must be able to follow every pointer the stepping
  // loop can reach. The arena shared_ptr rides on the RunResult as a
  // keepalive (see RunResult::arena) because run-scoped telemetry
  // (metrics, incidents) is arena-backed too.
  std::shared_ptr<ipc::ShmArena> arena;
  std::optional<ipc::ShmArenaScope> arena_scope;
  if (cfg.noc.step_procs > 1 || cfg.snapshot_period > 0) {
    // snapshot_period > 0 also forces arena mode at procs=1: the
    // checkpoint layer is a raw arena image, and where bytes are allocated
    // from cannot change simulated results — so single-process runs get
    // testable runstate blobs (and recovery from arena poisoning) too.
    arena = ipc::ShmArena::create();
    arena_scope.emplace(arena.get());
  }

  BuiltSystem built = build_system(cfg.scheme, cfg.noc, cfg.energy,
                                   /*always_on=*/{}, cfg.faults);
  NocSystem& sys = *built.system;
  Network& net = sys.network();
  auto* flov_sys = dynamic_cast<FlovNetwork*>(&sys);

  auto metrics =
      std::make_shared<telemetry::MetricsRegistry>(cfg.telemetry.metrics_window);
  auto incidents = std::make_shared<telemetry::StructuredSink>();
  std::shared_ptr<telemetry::Tracer> tracer;
#if defined(FLYOVER_TRACING) && FLYOVER_TRACING
  if (cfg.telemetry.trace_mask != 0) {
    tracer = std::make_shared<telemetry::Tracer>(cfg.telemetry.trace_mask,
                                                 cfg.telemetry.trace_capacity);
  }
#endif
  // Binds the tracer to this thread for the whole run; every FLOV_TRACE
  // hook in the subsystems below lands in this ring (or costs one branch
  // when `tracer` is null).
  telemetry::TraceScope trace_scope(tracer.get());

  auto pattern = TrafficPattern::create(cfg.pattern, net.geom());
  SyntheticTraffic traffic(&sys, pattern.get(), cfg.inj_rate_flits,
                           cfg.noc.packet_size, cfg.seed * 7919 + 13);

  GatingScenario scenario =
      cfg.gating_changes.empty()
          ? GatingScenario::uniform_fraction(net.geom(), cfg.gated_fraction,
                                             cfg.seed)
          : GatingScenario::epochs(net.geom(), cfg.gated_fraction,
                                   cfg.gating_changes, cfg.seed);

  // The scheme's armed fault injector (null on a fault-free build): needed
  // before the run loop so the ejection callback can ask about soft-error
  // corruption per delivered packet.
  const FaultInjector* fault = nullptr;
  if (flov_sys) {
    fault = flov_sys->fault_injector();
  } else if (auto* p = dynamic_cast<const RpNetwork*>(&sys)) {
    fault = p->fault_injector();
  } else if (auto* b = dynamic_cast<const BaselineNetwork*>(&sys)) {
    fault = b->fault_injector();
  }

  LatencyStats stats(/*router_pipeline_cycles=*/3, cfg.timeline_window,
                     cfg.noc.latency_hist_max);
  stats.set_measure_from(cfg.warmup);
  // Corruption probe mirrors LatencyStats' measurement filter (packets
  // generated before warmup are ignored). Ejection callbacks run between
  // step barriers, which publish the domain workers' corrupted-set inserts.
  std::uint64_t packets_corrupted = 0;
  const bool soft_armed = fault && cfg.faults.soft_errors_armed();
  net.set_eject_callback([&stats, &packets_corrupted, fault, soft_armed,
                          measure_from = cfg.warmup](const PacketRecord& r) {
    stats.record(r);
    if (soft_armed && r.gen_cycle >= measure_from &&
        fault->packet_corrupted(r.packet_id)) {
      packets_corrupted++;
    }
  });

  std::unique_ptr<InvariantVerifier> verifier;
  if (cfg.verify) {
    VerifierOptions vopts = cfg.verifier;
    vopts.sink = incidents.get();  // violations also land as JSON incidents
    if (flov_sys) {
      verifier = std::make_unique<InvariantVerifier>(*flov_sys, vopts);
    } else {
      // Conservation-only form needs the scheme's armed injector so faulted
      // flit drops (and hard-killed flits) balance the equation.
      const FaultInjector* fi = nullptr;
      if (auto* p = dynamic_cast<const RpNetwork*>(&sys)) {
        fi = p->fault_injector();
      } else if (auto* b = dynamic_cast<const BaselineNetwork*>(&sys)) {
        fi = b->fault_injector();
      }
      verifier = std::make_unique<InvariantVerifier>(net, vopts, fi);
    }
  }

  const Cycle total = cfg.warmup + cfg.measure;
  const Cycle hard_cap = cfg.max_cycles_hard;
  if (cfg.ops != nullptr) {
    // Ops plane: read-only periodic snapshot folds. Registered last so its
    // passive ejection observer cannot perturb any primary callback, and
    // fed only accessors — it has no way to mutate the run.
    ops::OpsPlane::RunContext octx;
    octx.sys = &sys;
    octx.scheme = sys.name();
    octx.total_cycles = total;
    octx.hist_overflow = [&stats] { return stats.hist_overflow(); };
    octx.incidents = incidents.get();
    if (net.step_procs() > 1) {
      // procs= tuning signal for /healthz; reads ProcPool atomics, so it
      // is safe from the HTTP thread mid-run (cleared again at end_run —
      // `net` dies with this function).
      octx.proc_imbalance = [&net] { return net.proc_busy_imbalance(); };
    }
    cfg.ops->begin_run(octx);
  }
  std::uint64_t last_ejected = 0;
  Cycle last_progress = 0;
  std::uint64_t recoveries = 0;
  bool recovery_armed = true;  ///< one recovery attempt per stall episode
  bool aborted = false;
  bool worker_lost = false;

  // --- self-healing checkpoint layer (sim.snapshot_period > 0) ---
  // A capture is pure reads at a cycle boundary: everything the schedule
  // can reach is either in the arena image or one of the parent-stack
  // regions registered below. The watchdog scalars are registered so a
  // rollback also rewinds stall bookkeeping (run.watchdog_recoveries is a
  // manifest metric and must replay identically); the RUNTIME recovery
  // counters are deliberately not registered — they count real-world
  // events and live outside the deterministic state.
  std::optional<RunstateKeeper> keeper;
  if (cfg.snapshot_period > 0 && arena) {
    ipc::ShmArenaScope unbound(nullptr);
    RunstateKeeper::Options kopts;
    kopts.path = cfg.runstate_path;
    kopts.fingerprint = sweep_point_fingerprint(cfg);
    keeper.emplace(arena.get(), std::move(kopts));
    keeper->add_region(static_cast<void*>(&stats), sizeof(stats));
    keeper->add_region(static_cast<void*>(&traffic), sizeof(traffic));
    keeper->add_region(static_cast<void*>(&scenario), sizeof(scenario));
    keeper->add_region(&packets_corrupted, sizeof(packets_corrupted));
    keeper->add_region(&last_ejected, sizeof(last_ejected));
    keeper->add_region(&last_progress, sizeof(last_progress));
    keeper->add_region(&recoveries, sizeof(recoveries));
    keeper->add_region(&recovery_armed, sizeof(recovery_armed));
  }
  std::uint64_t recoveries_rt = 0;     ///< RunResult::recoveries
  std::uint64_t recovery_wall_ns = 0;  ///< RunResult::recovery_wall_ns
  int cur_procs = net.step_procs();
  std::optional<ipc::ShmArenaScope> unpoison_scope;

  // Rolls back to the last checkpoint and respawns the stepping pools.
  // False = self-healing is off, has no snapshot yet, or the recovery
  // budget is spent — the caller takes the classic abort path.
  auto attempt_self_heal = [&](Cycle at, const char* why) -> bool {
    if (!keeper || !keeper->has_snapshot()) return false;
    if (recoveries_rt >=
        static_cast<std::uint64_t>(std::max(0, cfg.max_recoveries))) {
      return false;
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::fprintf(
        stderr,
        "[selfheal] %s at cycle %llu; rolling back to snapshot @%llu "
        "(recovery %llu/%d)\n",
        why, static_cast<unsigned long long>(at),
        static_cast<unsigned long long>(keeper->cycle()),
        static_cast<unsigned long long>(recoveries_rt + 1),
        cfg.max_recoveries);
    bool resumed = false;
    for (int attempt = 0; attempt < 4 && !resumed; ++attempt) {
      // Quarantine (no writers left), restore the image in place, rebuild
      // pools. On a failed respawn the restore is redone: the failed build
      // may have advanced the arena bump, and re-restoring rewinds it.
      net.prepare_for_restore();
      keeper->restore();
      try {
        net.resume_after_restore(cur_procs);
        resumed = true;
      } catch (const std::exception& e) {
        // Respawn failed (fork pressure): capped backoff, then downshift
        // the process count — manifests are procs-independent, so halving
        // is invisible to results.
        const std::uint64_t ms = backoff_shift(50, attempt, 4);
        cur_procs = std::max(1, cur_procs / 2);
        std::fprintf(stderr,
                     "[selfheal] respawn failed (%s); retrying with "
                     "procs=%d after %llu ms\n",
                     e.what(), cur_procs,
                     static_cast<unsigned long long>(ms));
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
    }
    if (!resumed) return false;
    recoveries_rt++;
    recovery_wall_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (cfg.ops != nullptr) {
      cfg.ops->note_recovery(recoveries_rt, recovery_wall_ns);
    }
    return true;
  };

  // Records the terminal loss incident. Deliberately the ONLY place
  // recovery-adjacent data touches the incident sink: successful
  // recoveries leave no manifest trace (byte-identity with undisturbed
  // runs), so incidents appear only when the run actually dies.
  auto record_loss = [&](Cycle at, const char* kind, int worker,
                         const char* detail) {
    if (arena && arena->poisoned() && !unpoison_scope) {
      // The arena allocator is quarantined; route the remaining telemetry
      // (incident strings, manifest assembly) to plain malloc. Mixed
      // storage is fine — deletes route by address.
      unpoison_scope.emplace(nullptr);
    }
    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("kind", kind);
    w.kv("scheme", sys.name());
    w.kv("cycle", static_cast<std::uint64_t>(at));
    if (worker >= 0) w.kv("worker", worker);
    w.kv("detail", detail);
    w.end_object();
    incidents->add(w.take());
    worker_lost = true;
  };

  enum class StepOutcome { kOk, kRecovered, kLost };
  // Steps the system one cycle. kLost means a stepping worker process died
  // (or the arena was poisoned) and self-healing was unavailable — the
  // cycle never completed its barrier, fabric state is torn mid-merge, and
  // the caller must abort. kRecovered means the state was rolled back to
  // the last snapshot: `now` has been rewound in place and the caller
  // re-enters the loop from there.
  auto step_system = [&](Cycle& now) -> StepOutcome {
    // Failure details are deep-copied to malloc-side storage and the
    // exception destroyed BEFORE any recovery work: WorkerLost's message
    // string was allocated while the arena scope was bound, so restoring
    // the image first would rewind the allocator out from under the
    // exception's own destructor.
    std::string why;
    const char* kind = nullptr;
    int lost_worker = -1;
    try {
      sys.step(now);
      return StepOutcome::kOk;
    } catch (const ipc::WorkerLost& e) {
      ipc::ShmArenaScope unbound(nullptr);
      why = e.what();
      kind = "worker_lost";
      lost_worker = e.worker();
    } catch (const ipc::ArenaPoisoned& e) {
      ipc::ShmArenaScope unbound(nullptr);
      why = e.what();
      kind = "arena_poisoned";
    }
    if (attempt_self_heal(now, why.c_str())) {
      now = keeper->cycle();
      return StepOutcome::kRecovered;
    }
    record_loss(now, kind, lost_worker, why.c_str());
    return StepOutcome::kLost;
  };
  Cycle end_cycle = total;  ///< first cycle NOT simulated
  Cycle now = 0;
  while (now < total) {
    if (hard_cap != 0 && now >= hard_cap) {
      record_budget_incident(sys, *incidents, "hard_cycle_cap", now, hard_cap);
      aborted = true;
      end_cycle = now;
      break;
    }
    // Snapshot BEFORE this cycle's traffic/stepping: a restore resumes
    // with scenario.apply/traffic.step for the captured cycle not yet run,
    // exactly like the first pass. (capture() no-ops when the resume path
    // re-crosses the boundary it was restored from.)
    if (keeper && (now % cfg.snapshot_period) == 0) keeper->capture(now);
    scenario.apply(sys, now);
    traffic.step(now);
    {
      const StepOutcome so = step_system(now);
      if (so == StepOutcome::kLost) {
        aborted = true;
        end_cycle = now;
        break;
      }
      if (so == StepOutcome::kRecovered) continue;  // now was rewound
    }
    if (verifier) verifier->step(now);
    if (cfg.ops != nullptr && cfg.ops->wants_tick(now)) cfg.ops->tick(now);
    if (now == cfg.warmup) built.power->begin_window(now);
    if (cfg.telemetry.metrics_window != 0 &&
        (now % cfg.telemetry.metrics_window) == 0) {
      metrics->series("series.in_network_flits")
          .add(now, static_cast<double>(net.in_network_flits()));
      metrics->series("series.queued_packets")
          .add(now, static_cast<double>(net.total_queued_packets()));
      if (flov_sys) {
        metrics->series("series.gated_routers")
            .add(now, static_cast<double>(flov_sys->gated_router_count()));
      }
    }
    // Progress probe: total_ejected_flits()/in_flight_empty() are O(1)
    // cached counters, so the probe itself is free; the %1024 throttle is
    // kept anyway so the progress-sampling points (and hence recovery
    // timing) stay identical to earlier builds.
    if (cfg.watchdog && (now % 1024) == 0) {
      const std::uint64_t ej = net.total_ejected_flits();
      if (ej != last_ejected || net.in_flight_empty()) {
        last_ejected = ej;
        last_progress = now;
        recovery_armed = true;
      } else if (now - last_progress >= cfg.watchdog) {
        FLOV_TRACE(telemetry::kTraceRecovery,
                   telemetry::TraceEventType::kWatchdogStall, now, -1,
                   now - last_progress, last_ejected);
        dump_stall_state(sys, now);
        const bool recovered = recovery_armed && sys.attempt_recovery(now);
        record_stall_incident(sys, *incidents, now, now - last_progress,
                              recovered);
        FLOV_TRACE(telemetry::kTraceRecovery,
                   telemetry::TraceEventType::kRecoveryAttempt, now, -1,
                   recovered ? 1 : 0, recoveries + 1);
        if (!recovered && hard_cap != 0) {
          // With a hard cycle cap armed the caller opted into
          // partial-results-over-abort: surface the unrecoverable stall as
          // an incident and stop the run instead of FLOV_CHECK-aborting.
          aborted = true;
          end_cycle = now;
          break;
        }
        FLOV_CHECK(recovered,
                   std::string("no forward progress (possible deadlock) in ") +
                       to_string(cfg.scheme));
        recovery_armed = false;  // a second stall in this episode aborts
        recoveries++;
        last_progress = now;  // fresh window for the recovery to act
      }
    }
    ++now;
  }

  // Post-measurement drain: traffic generation and gating changes stop;
  // the system keeps stepping so in-flight worms land, retransmit timers
  // fire, and every reliable flow resolves to acked-or-dead. Bounded by
  // drain_max (and the hard cap); running out is an incident, not an
  // abort — the verifier's final sweep still runs on whatever remains.
  if (!aborted && cfg.drain_max != 0) {
    const Cycle drain_end = total + cfg.drain_max;
    // Anchor a snapshot at drain entry: the drain loop does not replay
    // scenario/traffic steps, so a recovery during the drain must never
    // rewind below `total` (it would skip the traffic window's replay).
    if (keeper) keeper->capture(total);
    Cycle dnow = total;
    while (dnow < drain_end) {
      if (hard_cap != 0 && dnow >= hard_cap) {
        record_budget_incident(sys, *incidents, "hard_cycle_cap", dnow,
                               hard_cap);
        aborted = true;
        break;
      }
      if (fully_drained(net)) break;
      if (keeper && (dnow % cfg.snapshot_period) == 0) keeper->capture(dnow);
      {
        const StepOutcome so = step_system(dnow);
        if (so == StepOutcome::kLost) {
          aborted = true;
          break;
        }
        if (so == StepOutcome::kRecovered) continue;  // dnow was rewound
      }
      if (verifier) verifier->step(dnow);
      if (cfg.ops != nullptr && cfg.ops->wants_tick(dnow)) cfg.ops->tick(dnow);
      ++dnow;
    }
    end_cycle = dnow;
    if (!aborted && dnow == drain_end && !fully_drained(net)) {
      record_budget_incident(sys, *incidents, "drain_exhausted", dnow,
                             cfg.drain_max);
    }
  }

  RunResult r;
  r.arena = arena;  // keepalive: see RunResult::arena
  r.scheme = to_string(cfg.scheme);
  r.aborted = aborted;
  r.worker_lost = worker_lost;
  r.recoveries = recoveries_rt;
  r.recovery_wall_ns = recovery_wall_ns;
  r.cycles_run = end_cycle;
  r.avg_latency = stats.avg_latency();
  r.p50_latency = stats.latency_percentile(50);
  r.p99_latency = stats.latency_percentile(99);
  r.breakdown = stats.avg_breakdown();
  r.power = built.power->report(end_cycle);
  r.packets_measured = stats.packets();
  r.packets_generated = traffic.generated_packets();
  r.injected_flits = net.total_injected_flits();
  r.ejected_flits = net.total_ejected_flits();
  r.escape_packets = stats.escape_packets();
  r.watchdog_recoveries = recoveries;
  if (FlovNetwork* f = flov_sys) {
    r.gated_routers_end = f->gated_router_count();
    const auto ps = f->protocol_stats(end_cycle);
    r.avg_gated_routers = ps.avg_gated_routers;
    r.protocol_sleeps = ps.sleeps;
    r.protocol_wakeups = ps.wakeups;
    r.hs_resends = ps.hs_resends;
    r.trigger_resends = ps.trigger_resends;
    r.self_captures = ps.self_captures;
    r.dead_routers = f->dead_router_count();
    r.dead_links = f->dead_link_count();
    r.wake_requests_dropped = f->wake_requests_dropped();
    if (r.dead_routers > 0 || r.dead_links > 0) {
      record_hard_fault_summary(sys, f->dead_mask(), r.dead_links,
                                r.wake_requests_dropped, *incidents);
    }
  } else if (auto* p = dynamic_cast<RpNetwork*>(&sys)) {
    r.gated_routers_end = p->parked_router_count();
    r.avg_gated_routers = r.gated_routers_end;
    r.dead_routers = p->dead_router_count();
    r.dead_links = p->dead_link_count();
    if (r.dead_routers > 0 || r.dead_links > 0) {
      record_hard_fault_summary(sys, p->dead_mask(), r.dead_links, 0,
                                *incidents);
    }
  } else if (auto* b = dynamic_cast<BaselineNetwork*>(&sys)) {
    r.dead_routers = b->dead_router_count();
    r.dead_links = b->dead_link_count();
    if (r.dead_routers > 0 || r.dead_links > 0) {
      record_hard_fault_summary(sys, b->dead_mask(), r.dead_links, 0,
                                *incidents);
    }
  }
  if (fault) {
    r.flits_dropped_by_faults = fault->counters().flits_dropped;
    r.payload_flips = fault->counters().payload_flips;
    r.psr_flips = fault->counters().psr_flips;
  }
  r.packets_corrupted = packets_corrupted;
  if (cfg.noc.reliable) {
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      const NetworkInterface& ni = net.ni(id);
      r.packets_acked += ni.packets_acked();
      r.packets_dead += ni.packets_dead();
      r.packets_purged += ni.packets_purged();
      r.killed_at_source += ni.killed_at_source();
      r.retransmits += ni.retransmits();
      r.dup_packets += ni.dup_packets();
    }
    record_dead_packets(net, *incidents);
  }
  if (verifier) {
    // No final sweep after a lost worker: the last cycle never finished
    // its barrier, so conservation is torn mid-merge by construction.
    if (!worker_lost) verifier->final_check(end_cycle);
    r.verifier_violations = verifier->violations();
    r.verifier_checks = verifier->checks_run();
  }
  if (const TimeSeries* ts = stats.timeline()) r.timeline = ts->points();

  // Final ops fold AFTER every end-of-run incident (hard_fault_summary,
  // packet_dead, verifier final sweep) has been recorded, so the last
  // published snapshot carries the complete incident counts.
  if (cfg.ops != nullptr) {
    // Bridge the per-process busy split into the profile report (children
    // cannot bind the profiler — it is parent-private memory — so their
    // busy time arrives through the ProcPool status rings instead).
    if (net.step_procs() > 1 && cfg.ops->profiler() != nullptr) {
      cfg.ops->profiler()->set_proc_busy(net.proc_busy_ns());
    }
    cfg.ops->end_run(end_cycle);
  }

  // Every subsystem registers its metrics under its own prefix; the
  // registry rides on the RunResult so sweeps can fold per-point
  // registries deterministically.
  net.publish_metrics(*metrics);
  stats.publish_metrics(*metrics);
  built.power->publish_metrics(*metrics, end_cycle);
  if (flov_sys) {
    flov_sys->publish_metrics(*metrics, end_cycle);
  } else if (auto* p = dynamic_cast<RpNetwork*>(&sys)) {
    p->publish_metrics(*metrics);
  } else if (auto* b = dynamic_cast<BaselineNetwork*>(&sys)) {
    b->publish_metrics(*metrics);
  }
  metrics->counter("run.packets_generated") += traffic.generated_packets();
  metrics->counter("run.watchdog_recoveries") += recoveries;
  metrics->counter("run.cycles") += end_cycle;
  if (aborted) metrics->counter("run.aborted") += 1;
  // Only touched on loss, so healthy procs= manifests stay byte-identical
  // to single-process ones (registries serialize only keys that exist).
  if (worker_lost) metrics->counter("run.worker_lost") += 1;
  if (cfg.noc.reliable) {
    metrics->counter("run.packets_acked") += r.packets_acked;
    metrics->counter("run.packets_dead") += r.packets_dead;
    metrics->counter("run.packets_purged") += r.packets_purged;
    metrics->counter("run.killed_at_source") += r.killed_at_source;
    metrics->counter("run.retransmits") += r.retransmits;
    metrics->counter("run.dup_packets") += r.dup_packets;
  }
  if (soft_armed) {
    metrics->counter("fault.payload_flips") += r.payload_flips;
    metrics->counter("fault.psr_flips") += r.psr_flips;
    metrics->counter("run.packets_corrupted") += r.packets_corrupted;
  }
  if (verifier) {
    metrics->counter("verify.violations") += verifier->violations();
    metrics->counter("verify.checks") += verifier->checks_run();
  }
  r.metrics = std::move(metrics);
  r.trace = std::move(tracer);
  r.incidents = std::move(incidents);
  return r;
}

}  // namespace flov
