#include "sim/experiment.hpp"

#include "common/log.hpp"
#include "flov/flov_network.hpp"
#include "rp/rp_network.hpp"
#include "traffic/gating_scenario.hpp"
#include "traffic/synthetic_traffic.hpp"
#include "traffic/traffic_pattern.hpp"

namespace flov {

RunResult run_synthetic(const SyntheticExperimentConfig& cfg) {
  BuiltSystem built = build_system(cfg.scheme, cfg.noc, cfg.energy);
  NocSystem& sys = *built.system;
  Network& net = sys.network();

  auto pattern = TrafficPattern::create(cfg.pattern, net.geom());
  SyntheticTraffic traffic(&sys, pattern.get(), cfg.inj_rate_flits,
                           cfg.noc.packet_size, cfg.seed * 7919 + 13);

  GatingScenario scenario =
      cfg.gating_changes.empty()
          ? GatingScenario::uniform_fraction(net.geom(), cfg.gated_fraction,
                                             cfg.seed)
          : GatingScenario::epochs(net.geom(), cfg.gated_fraction,
                                   cfg.gating_changes, cfg.seed);

  LatencyStats stats(/*router_pipeline_cycles=*/3, cfg.timeline_window);
  stats.set_measure_from(cfg.warmup);
  net.set_eject_callback(
      [&stats](const PacketRecord& r) { stats.record(r); });

  const Cycle total = cfg.warmup + cfg.measure;
  std::uint64_t last_ejected = 0;
  Cycle last_progress = 0;
  for (Cycle now = 0; now < total; ++now) {
    scenario.apply(sys, now);
    traffic.step(now);
    sys.step(now);
    if (now == cfg.warmup) built.power->begin_window(now);
    if (cfg.watchdog && (now % 1024) == 0) {
      const std::uint64_t ej = net.total_ejected_flits();
      if (ej != last_ejected || net.in_flight_empty()) {
        last_ejected = ej;
        last_progress = now;
      } else {
        FLOV_CHECK(now - last_progress < cfg.watchdog,
                   std::string("no forward progress (possible deadlock) in ") +
                       to_string(cfg.scheme));
      }
    }
  }

  RunResult r;
  r.scheme = to_string(cfg.scheme);
  r.avg_latency = stats.avg_latency();
  r.p50_latency = stats.latency_percentile(50);
  r.p99_latency = stats.latency_percentile(99);
  r.breakdown = stats.avg_breakdown();
  r.power = built.power->report(total);
  r.packets_measured = stats.packets();
  r.packets_generated = traffic.generated_packets();
  r.injected_flits = net.total_injected_flits();
  r.ejected_flits = net.total_ejected_flits();
  r.escape_packets = stats.escape_packets();
  if (auto* f = dynamic_cast<FlovNetwork*>(&sys)) {
    r.gated_routers_end = f->gated_router_count();
    const auto ps = f->protocol_stats(total);
    r.avg_gated_routers = ps.avg_gated_routers;
    r.protocol_sleeps = ps.sleeps;
    r.protocol_wakeups = ps.wakeups;
  } else if (auto* p = dynamic_cast<RpNetwork*>(&sys)) {
    r.gated_routers_end = p->parked_router_count();
    r.avg_gated_routers = r.gated_routers_end;
  }
  if (const TimeSeries* ts = stats.timeline()) r.timeline = ts->points();
  return r;
}

}  // namespace flov
