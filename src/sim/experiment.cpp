#include "sim/experiment.hpp"

#include <cstdio>
#include <memory>

#include "common/log.hpp"
#include "flov/flov_network.hpp"
#include "rp/rp_network.hpp"
#include "traffic/gating_scenario.hpp"
#include "traffic/synthetic_traffic.hpp"
#include "traffic/traffic_pattern.hpp"
#include "verify/invariant_verifier.hpp"

namespace flov {

namespace {

/// Diagnostic dump on a watchdog stall: every non-quiescent router's
/// occupancy, plus the full handshake FSM picture for FLOV schemes.
void dump_stall_state(NocSystem& sys, Cycle now) {
  std::fprintf(stderr, "[watchdog] --- %s stalled, state at cycle %llu ---\n",
               sys.name(), static_cast<unsigned long long>(now));
  if (auto* f = dynamic_cast<FlovNetwork*>(&sys)) {
    f->dump_state(now);
    return;
  }
  Network& net = sys.network();
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Router& r = net.router(id);
    if (!r.completely_empty()) r.dump_occupancy(now);
  }
}

}  // namespace

RunResult run_synthetic(const SyntheticExperimentConfig& cfg) {
  BuiltSystem built = build_system(cfg.scheme, cfg.noc, cfg.energy,
                                   /*always_on=*/{}, cfg.faults);
  NocSystem& sys = *built.system;
  Network& net = sys.network();

  auto pattern = TrafficPattern::create(cfg.pattern, net.geom());
  SyntheticTraffic traffic(&sys, pattern.get(), cfg.inj_rate_flits,
                           cfg.noc.packet_size, cfg.seed * 7919 + 13);

  GatingScenario scenario =
      cfg.gating_changes.empty()
          ? GatingScenario::uniform_fraction(net.geom(), cfg.gated_fraction,
                                             cfg.seed)
          : GatingScenario::epochs(net.geom(), cfg.gated_fraction,
                                   cfg.gating_changes, cfg.seed);

  LatencyStats stats(/*router_pipeline_cycles=*/3, cfg.timeline_window);
  stats.set_measure_from(cfg.warmup);
  net.set_eject_callback(
      [&stats](const PacketRecord& r) { stats.record(r); });

  std::unique_ptr<InvariantVerifier> verifier;
  if (cfg.verify) {
    if (auto* f = dynamic_cast<FlovNetwork*>(&sys)) {
      verifier = std::make_unique<InvariantVerifier>(*f, cfg.verifier);
    } else {
      verifier = std::make_unique<InvariantVerifier>(net, cfg.verifier);
    }
  }

  const Cycle total = cfg.warmup + cfg.measure;
  std::uint64_t last_ejected = 0;
  Cycle last_progress = 0;
  std::uint64_t recoveries = 0;
  bool recovery_armed = true;  ///< one recovery attempt per stall episode
  for (Cycle now = 0; now < total; ++now) {
    scenario.apply(sys, now);
    traffic.step(now);
    sys.step(now);
    if (verifier) verifier->step(now);
    if (now == cfg.warmup) built.power->begin_window(now);
    // Progress probe: total_ejected_flits()/in_flight_empty() are O(1)
    // cached counters, so the probe itself is free; the %1024 throttle is
    // kept anyway so the progress-sampling points (and hence recovery
    // timing) stay identical to earlier builds.
    if (cfg.watchdog && (now % 1024) == 0) {
      const std::uint64_t ej = net.total_ejected_flits();
      if (ej != last_ejected || net.in_flight_empty()) {
        last_ejected = ej;
        last_progress = now;
        recovery_armed = true;
      } else if (now - last_progress >= cfg.watchdog) {
        dump_stall_state(sys, now);
        const bool recovered = recovery_armed && sys.attempt_recovery(now);
        FLOV_CHECK(recovered,
                   std::string("no forward progress (possible deadlock) in ") +
                       to_string(cfg.scheme));
        recovery_armed = false;  // a second stall in this episode aborts
        recoveries++;
        last_progress = now;  // fresh window for the recovery to act
      }
    }
  }

  RunResult r;
  r.scheme = to_string(cfg.scheme);
  r.avg_latency = stats.avg_latency();
  r.p50_latency = stats.latency_percentile(50);
  r.p99_latency = stats.latency_percentile(99);
  r.breakdown = stats.avg_breakdown();
  r.power = built.power->report(total);
  r.packets_measured = stats.packets();
  r.packets_generated = traffic.generated_packets();
  r.injected_flits = net.total_injected_flits();
  r.ejected_flits = net.total_ejected_flits();
  r.escape_packets = stats.escape_packets();
  r.watchdog_recoveries = recoveries;
  if (auto* f = dynamic_cast<FlovNetwork*>(&sys)) {
    r.gated_routers_end = f->gated_router_count();
    const auto ps = f->protocol_stats(total);
    r.avg_gated_routers = ps.avg_gated_routers;
    r.protocol_sleeps = ps.sleeps;
    r.protocol_wakeups = ps.wakeups;
    r.hs_resends = ps.hs_resends;
    r.trigger_resends = ps.trigger_resends;
    r.self_captures = ps.self_captures;
    if (const FaultInjector* fi = f->fault_injector()) {
      r.flits_dropped_by_faults = fi->counters().flits_dropped;
    }
  } else if (auto* p = dynamic_cast<RpNetwork*>(&sys)) {
    r.gated_routers_end = p->parked_router_count();
    r.avg_gated_routers = r.gated_routers_end;
  }
  if (verifier) {
    verifier->final_check(total);
    r.verifier_violations = verifier->violations();
    r.verifier_checks = verifier->checks_run();
  }
  if (const TimeSeries* ts = stats.timeline()) r.timeline = ts->points();
  return r;
}

}  // namespace flov
