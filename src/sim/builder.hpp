// Constructs a NocSystem for any of the four evaluated schemes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_model.hpp"
#include "noc/system_iface.hpp"
#include "power/energy_model.hpp"
#include "power/power_tracker.hpp"

namespace flov {

enum class Scheme {
  kBaseline = 0,  ///< no router power-gating, YX routing
  kRFlov,         ///< restricted FLOV
  kGFlov,         ///< generalized FLOV
  kRp,            ///< Router Parking (aggressive FM policy)
};

const char* to_string(Scheme s);
Scheme scheme_from_string(const std::string& name);

/// All four schemes, in presentation order.
inline constexpr Scheme kAllSchemes[] = {Scheme::kBaseline, Scheme::kRp,
                                         Scheme::kRFlov, Scheme::kGFlov};

struct BuiltSystem {
  std::unique_ptr<NocSystem> system;
  PowerTracker* power = nullptr;  ///< owned by the system
};

/// `always_on`: routers RP must never park (MCs); ignored by other schemes
/// (FLOV keeps its AON column on regardless).
/// `faults`: fault-injection model, honored by every scheme. FLOV arms both
/// the handshake fabric and the flit links; RP and Baseline have no
/// handshake fabric, so only the flit-link fates (transient drop/delay and
/// the hard router/link deaths of PROTOCOL.md §8) apply there.
BuiltSystem build_system(Scheme scheme, const NocParams& params,
                         const EnergyParams& energy,
                         std::vector<bool> always_on = {},
                         const FaultParams& faults = {});

}  // namespace flov
