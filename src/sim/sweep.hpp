// Parallel sweep runner: executes independent sweep points (full
// simulations) on a fixed-size thread pool.
//
// Every figure reproduction is an embarrassingly parallel grid — schemes x
// injection rates x gated fractions — of completely independent runs (no
// global mutable state anywhere in the simulator; each run owns its
// network, RNGs and verifier). The runner exploits exactly that: results
// land in SUBMISSION order regardless of completion order, every run
// derives its seed from its own config, and jobs=1 degenerates to the
// plain serial loop — so a parallel sweep is bit-identical to a serial
// one, merely faster.
#pragma once

#include <functional>
#include <vector>

#include "sim/experiment.hpp"

namespace flov {

struct SweepOptions {
  /// Worker threads. 0 = auto (hardware concurrency); 1 = serial in the
  /// calling thread (no pool, the bit-exact reference path).
  int jobs = 0;
  /// Called on the submitting thread granularity-free: progress(done, total)
  /// after each point completes (any worker; serialized). May be null.
  std::function<void(int done, int total)> progress;

  // --- self-healing (sim/checkpoint.hpp) ---
  /// Extra attempts for a point whose run threw a std::exception, with
  /// capped exponential backoff (retry_backoff_ms << attempt, attempt
  /// capped at 10) between attempts. 0 = fail fast (the historic
  /// behaviour). Aborts (FLOV_CHECK) are process-fatal and NOT retried —
  /// those are what the checkpoint file is for.
  int retries = 0;
  int retry_backoff_ms = 0;
  /// JSONL checkpoint: one lossless line appended (and flushed) per
  /// completed point, so a killed sweep can resume. "" = no checkpointing.
  std::string checkpoint_path;
  /// Load checkpoint_path first and skip every intact point whose config
  /// fingerprint still matches; the file keeps growing from there. The
  /// merged metrics of a resumed sweep are byte-identical to an
  /// uninterrupted one.
  bool resume = false;
  /// Always open the checkpoint file in append mode, even when resume
  /// restored nothing. Callers that share one checkpoint file across
  /// several run_sweep invocations over DIFFERENT point slices (the
  /// certification harness's sequential batches) need this: the default
  /// truncates when no line matched, which would erase the other batches'
  /// lines. Fingerprints keep foreign lines harmless — they simply don't
  /// match and are skipped.
  bool checkpoint_append = false;
};

/// `jobs` resolved against the machine: 0 -> hardware_concurrency (>= 1).
int resolve_jobs(int jobs);

/// Jobs x threads budgeting: when each sweep point itself steps its mesh on
/// `threads_per_job` domain workers, auto (jobs=0) resolves to
/// hardware_concurrency / threads_per_job (>= 1) so the total thread count
/// stays near the core count. An explicit jobs > 0 is always respected.
int resolve_jobs(int jobs, int threads_per_job);

/// Jobs x procs x threads budgeting: a point running step_procs processes
/// of step_threads threads each occupies procs x threads cores, so auto
/// divides by the product and the oversubscription warning names all three
/// knobs. procs_per_job/threads_per_job < 1 are treated as 1.
int resolve_jobs(int jobs, int threads_per_job, int procs_per_job);

/// Runs `fn(i)` for i in [0, n) on `jobs` threads. fn must be safe to call
/// concurrently for distinct i. If any call throws, the exception from the
/// LOWEST index is rethrown on the caller after all workers drained (later
/// points still run; deterministic error reporting).
void parallel_run(int n, int jobs, const std::function<void(int)>& fn);

/// Runs every config and returns results in submission order.
std::vector<RunResult> run_sweep(
    const std::vector<SyntheticExperimentConfig>& points,
    const SweepOptions& opts = {});

/// Folds every point's metrics registry into one merged registry, in
/// SUBMISSION order. Because run_sweep's results vector is ordered by
/// submission index (not completion), the fold — and hence any manifest
/// serialized from it — is byte-identical between jobs=1 and jobs=N.
telemetry::MetricsRegistry merge_sweep_metrics(
    const std::vector<RunResult>& results);

}  // namespace flov
