// Lossless sweep checkpoints (self-healing sweeps, PROTOCOL.md §8).
//
// The manifest serialization (MetricsRegistry::write_json) is intentionally
// lossy — stats render as count/mean/min/max/stddev and time-series as
// bucket means — so it cannot reconstruct a registry that merges
// bit-identically to the original. This codec persists the RAW state
// instead: Welford accumulators as (count, sum, min, max, running-mean,
// m2), histograms with their full bin vectors, time-series as raw buckets.
// Doubles render with %.17g and parse back with strtod, which round-trips
// every finite double exactly; counters are exact up to 2^53 (far above
// anything a run produces). A sweep resumed from a checkpoint therefore
// reproduces the uninterrupted sweep's merged metrics — and its manifest —
// byte for byte.
//
// File format: JSON Lines, one object per COMPLETED sweep point:
//   {"schema":"flyover-sweep-checkpoint-v1","index":i,"fp":"<16 hex>",
//    "result":{...scalars, lossless metrics, incidents...}}
// Lines are appended under a mutex and flushed, so a killed sweep loses at
// most the points that were still in flight. The loader is tolerant: a
// truncated or garbled line (crash mid-write, disk hiccup) is skipped, not
// fatal — the point simply re-runs. The fingerprint ties each line to the
// exact point configuration, so a checkpoint from an edited sweep can never
// leak stale results into the wrong point.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace flov {

/// Order- and thread-independent hash of every config field that can
/// influence a point's results (noc/energy/fault/traffic/verifier knobs;
/// noc.step_threads and trace options are volatile and excluded).
std::uint64_t sweep_point_fingerprint(const SyntheticExperimentConfig& cfg);

/// Raw-state registry serialization (see header comment). Restoring the
/// output into a fresh registry yields one that merges and serializes
/// identically to the original.
void write_registry_lossless(telemetry::JsonWriter& w,
                             const telemetry::MetricsRegistry& reg);
/// Inverse of write_registry_lossless; false on malformed input.
bool restore_registry_lossless(const telemetry::JsonValue& v,
                               telemetry::MetricsRegistry* out);

/// One complete checkpoint line (no trailing newline) for point `index`.
std::string encode_sweep_checkpoint_line(int index,
                                         const SyntheticExperimentConfig& cfg,
                                         const RunResult& r);

/// Decodes one line. Returns false (and touches nothing) on any damage:
/// truncation, garbage, wrong schema, missing fields.
bool decode_sweep_checkpoint_line(const std::string& line, int* index,
                                  std::uint64_t* fingerprint, RunResult* out);

/// Loads `path` (missing file = 0 restored) and fills `results[i]` /
/// `have[i]=1` for every intact line whose index is in range and whose
/// fingerprint matches points[i]. Returns the number of points restored.
int load_sweep_checkpoint(const std::string& path,
                          const std::vector<SyntheticExperimentConfig>& points,
                          std::vector<RunResult>* results,
                          std::vector<char>* have);

}  // namespace flov
