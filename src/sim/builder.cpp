#include "sim/builder.hpp"

#include "common/log.hpp"
#include "flov/flov_network.hpp"
#include "noc/ipc/shm_arena.hpp"
#include "rp/rp_network.hpp"
#include "sim/baseline_network.hpp"

namespace flov {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kBaseline: return "Baseline";
    case Scheme::kRFlov: return "rFLOV";
    case Scheme::kGFlov: return "gFLOV";
    case Scheme::kRp: return "RP";
  }
  return "?";
}

Scheme scheme_from_string(const std::string& name) {
  if (name == "baseline" || name == "Baseline") return Scheme::kBaseline;
  if (name == "rflov" || name == "rFLOV") return Scheme::kRFlov;
  if (name == "gflov" || name == "gFLOV") return Scheme::kGFlov;
  if (name == "rp" || name == "RP") return Scheme::kRp;
  FLOV_CHECK(false, "unknown scheme: " + name);
  return Scheme::kBaseline;
}

BuiltSystem build_system(Scheme scheme, const NocParams& params,
                         const EnergyParams& energy,
                         std::vector<bool> always_on,
                         const FaultParams& faults) {
  // Multi-process stepping needs the whole system object graph in the
  // shared arena; the caller (run_synthetic) is responsible for installing
  // the ShmArenaScope BEFORE building, so catch a missing one here rather
  // than letting Network's fork die on private heap pointers.
  FLOV_CHECK(params.step_procs <= 1 || ipc::thread_arena() != nullptr,
             "step_procs > 1 requires building under a ShmArenaScope");
  BuiltSystem out;
  switch (scheme) {
    case Scheme::kBaseline: {
      auto sys = std::make_unique<BaselineNetwork>(params, energy, faults);
      out.power = &sys->power();
      out.system = std::move(sys);
      break;
    }
    case Scheme::kRFlov: {
      auto sys = std::make_unique<FlovNetwork>(params, FlovMode::kRestricted,
                                               energy, faults);
      out.power = &sys->power();
      out.system = std::move(sys);
      break;
    }
    case Scheme::kGFlov: {
      auto sys = std::make_unique<FlovNetwork>(params, FlovMode::kGeneralized,
                                               energy, faults);
      out.power = &sys->power();
      out.system = std::move(sys);
      break;
    }
    case Scheme::kRp: {
      auto sys = std::make_unique<RpNetwork>(params, energy,
                                             FabricManagerConfig{},
                                             std::move(always_on), faults);
      out.power = &sys->power();
      out.system = std::move(sys);
      break;
    }
  }
  return out;
}

}  // namespace flov
