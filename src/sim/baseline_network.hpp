// Baseline system: plain YX mesh, no router power-gating (the paper's
// "Baseline"). Core gating still stops that core's traffic, but every
// router stays powered, so static power is flat.
#pragma once

#include <memory>
#include <vector>

#include "fault/fault_injector.hpp"
#include "noc/network.hpp"
#include "noc/system_iface.hpp"
#include "power/power_tracker.hpp"
#include "routing/yx_routing.hpp"

namespace flov {

class BaselineNetwork final : public NocSystem {
 public:
  /// `faults`: optional fault model (flit-link fates + hard deaths only —
  /// there is no handshake fabric). The baseline has no reconfiguration
  /// mechanism, so a dead router simply eats every YX path through it;
  /// end-to-end recovery (noc.reliable) is what accounts for the loss.
  BaselineNetwork(NocParams params, const EnergyParams& energy,
                  const FaultParams& faults = {});

  void step(Cycle now) override;
  void set_core_gated(NodeId core, bool gated, Cycle now) override {
    (void)now;
    if (dead_mask_[core]) return;  // a dead node's gating is permanent
    gated_[core] = gated;
  }
  bool core_gated(NodeId core) const override { return gated_[core]; }
  bool injection_allowed(NodeId src) const override { return !gated_[src]; }
  Network& network() override { return *net_; }
  const Network& network() const override { return *net_; }
  const char* name() const override { return "Baseline"; }

  PowerTracker& power() { return *power_; }
  const PowerTracker& power() const { return *power_; }

  /// The armed fault injector, or null when running fault-free.
  FaultInjector* fault_injector() { return fault_.get(); }
  const FaultInjector* fault_injector() const { return fault_.get(); }
  const std::vector<char>& dead_mask() const { return dead_mask_; }
  int dead_router_count() const;
  int dead_link_count() const { return dead_links_; }

  /// Registers/updates the fault metrics in `reg` (no-op fault-free).
  void publish_metrics(telemetry::MetricsRegistry& reg) const;

 private:
  void apply_hard_faults(Cycle now);

  NocParams params_;
  MeshGeometry geom_;
  std::unique_ptr<PowerTracker> power_;
  std::unique_ptr<YxRouting> routing_;
  std::unique_ptr<Network> net_;
  std::vector<bool> gated_;
  std::unique_ptr<FaultInjector> fault_;
  std::vector<char> dead_mask_;
  int dead_links_ = 0;
  bool hard_applied_ = false;
};

}  // namespace flov
