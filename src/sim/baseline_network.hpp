// Baseline system: plain YX mesh, no router power-gating (the paper's
// "Baseline"). Core gating still stops that core's traffic, but every
// router stays powered, so static power is flat.
#pragma once

#include <memory>
#include <vector>

#include "noc/network.hpp"
#include "noc/system_iface.hpp"
#include "power/power_tracker.hpp"
#include "routing/yx_routing.hpp"

namespace flov {

class BaselineNetwork final : public NocSystem {
 public:
  BaselineNetwork(NocParams params, const EnergyParams& energy);

  void step(Cycle now) override { net_->step(now); }
  void set_core_gated(NodeId core, bool gated, Cycle now) override {
    (void)now;
    gated_[core] = gated;
  }
  bool core_gated(NodeId core) const override { return gated_[core]; }
  bool injection_allowed(NodeId src) const override { return !gated_[src]; }
  Network& network() override { return *net_; }
  const Network& network() const override { return *net_; }
  const char* name() const override { return "Baseline"; }

  PowerTracker& power() { return *power_; }
  const PowerTracker& power() const { return *power_; }

 private:
  NocParams params_;
  MeshGeometry geom_;
  std::unique_ptr<PowerTracker> power_;
  std::unique_ptr<YxRouting> routing_;
  std::unique_ptr<Network> net_;
  std::vector<bool> gated_;
};

}  // namespace flov
