#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "common/backoff.hpp"
#include "common/log.hpp"
#include "sim/checkpoint.hpp"

namespace flov {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int resolve_jobs(int jobs, int threads_per_job) {
  return resolve_jobs(jobs, threads_per_job, 1);
}

int resolve_jobs(int jobs, int threads_per_job, int procs_per_job) {
  if (threads_per_job < 1) threads_per_job = 1;
  if (procs_per_job < 1) procs_per_job = 1;
  const int workers_per_job = threads_per_job * procs_per_job;
  const int hw = resolve_jobs(0);
  if (jobs > 0) {
    // An explicit jobs= is always respected, but jobs x procs x threads
    // beyond the core count silently serializes the domain barriers —
    // worth a warning, not an override.
    if (jobs * workers_per_job > hw) {
      std::fprintf(stderr,
                   "[sweep] warning: jobs=%d x procs=%d x threads=%d "
                   "oversubscribes hardware_concurrency=%d; expect barrier "
                   "stalls (drop jobs=, procs= or threads=)\n",
                   jobs, procs_per_job, threads_per_job, hw);
    }
    return jobs;
  }
  const int budget = hw / workers_per_job;
  return budget < 1 ? 1 : budget;
}

void parallel_run(int n, int jobs, const std::function<void(int)>& fn) {
  FLOV_CHECK(n >= 0, "parallel_run with negative point count");
  if (n == 0) return;
  jobs = resolve_jobs(jobs);
  if (jobs == 1 || n == 1) {
    // Serial reference path: same thread, same order, no pool machinery.
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  if (jobs > n) jobs = n;

  std::atomic<int> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  int first_error_index = n;

  auto worker = [&] {
    while (true) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        // Keep going (other points are independent) but remember the
        // failure with the smallest index, so which error surfaces does
        // not depend on thread timing.
        std::lock_guard<std::mutex> lock(err_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<RunResult> run_sweep(
    const std::vector<SyntheticExperimentConfig>& points,
    const SweepOptions& opts) {
  std::vector<RunResult> results(points.size());
  std::vector<char> have(points.size(), 0);
  const int n = static_cast<int>(points.size());

  // Resume: restore every intact checkpointed point whose fingerprint still
  // matches its config; only the remainder runs.
  int restored = 0;
  if (opts.resume && !opts.checkpoint_path.empty()) {
    restored =
        load_sweep_checkpoint(opts.checkpoint_path, points, &results, &have);
  }
  std::vector<int> pending;
  pending.reserve(points.size());
  for (int i = 0; i < n; ++i) {
    if (!have[static_cast<std::size_t>(i)]) pending.push_back(i);
  }

  // Checkpoint writer: append (resume keeps the restored lines' file) and
  // flush per line, so a kill -9 loses at most the in-flight points.
  std::FILE* ck = nullptr;
  std::mutex ck_mu;
  if (!opts.checkpoint_path.empty()) {
    ck = std::fopen(
        opts.checkpoint_path.c_str(),
        opts.checkpoint_append || (opts.resume && restored > 0) ? "ab" : "wb");
    FLOV_CHECK(ck != nullptr,
               "cannot open sweep checkpoint " + opts.checkpoint_path);
  }

  // Budget jobs against the intra-run parallelism of the points themselves:
  // a sweep of points that each step on 4 domain workers (threads AND
  // forked processes) should not also spawn hardware_concurrency sweep
  // workers.
  int max_step_threads = 1;
  int max_step_procs = 1;
  for (const auto& p : points) {
    max_step_threads = std::max(max_step_threads, p.noc.step_threads);
    max_step_procs = std::max(max_step_procs, p.noc.step_procs);
    // A worker process would inherit the point's ops plane by reference
    // but could never serve it (one port, parent-private server state):
    // the ops plane always attaches to the parent fold, so per-point ops
    // wiring plus procs>1 is a config error, not a silent misfeature.
    FLOV_CHECK(p.noc.step_procs <= 1 || p.ops == nullptr,
               "sweep points cannot combine noc.step_procs > 1 with a "
               "per-point ops plane (serve=); attach ops to the sweep "
               "parent instead");
  }
  const int jobs = resolve_jobs(opts.jobs, max_step_threads, max_step_procs);
  std::mutex progress_mu;
  std::atomic<int> done{restored};
  auto body = [&](int k) {
    const std::size_t i =
        static_cast<std::size_t>(pending[static_cast<std::size_t>(k)]);
    for (int attempt = 0;; ++attempt) {
      try {
        results[i] = run_synthetic(points[i]);
        break;
      } catch (const std::exception&) {
        if (attempt >= opts.retries) throw;
        if (opts.retry_backoff_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              backoff_shift(static_cast<std::uint64_t>(opts.retry_backoff_ms),
                            attempt, 10)));
        }
      }
    }
    if (ck) {
      const std::string line = encode_sweep_checkpoint_line(
          static_cast<int>(i), points[i], results[i]);
      std::lock_guard<std::mutex> lock(ck_mu);
      std::fwrite(line.data(), 1, line.size(), ck);
      std::fputc('\n', ck);
      std::fflush(ck);
    }
    const int d = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (opts.progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      opts.progress(d, n);
    }
  };
  try {
    parallel_run(static_cast<int>(pending.size()), jobs, body);
  } catch (...) {
    // Completed points are already checkpointed; close the file so the
    // caller can resume past them.
    if (ck) std::fclose(ck);
    throw;
  }
  if (ck) std::fclose(ck);
  return results;
}

telemetry::MetricsRegistry merge_sweep_metrics(
    const std::vector<RunResult>& results) {
  telemetry::MetricsRegistry merged;
  for (const RunResult& r : results) {
    if (r.metrics) merged.merge(*r.metrics);
  }
  return merged;
}

}  // namespace flov
