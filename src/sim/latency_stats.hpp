// Packet-latency collection with the paper's five-way breakdown (Fig. 8):
//   router        = powered-router pipeline traversals x 3 cycles
//   link          = link traversals x 1 cycle (+2 cycles NI<->router)
//   serialization = (flits per packet - 1)
//   FLOV          = FLOV latch traversals x 1 cycle
//   contention    = everything else (queuing + blocking)
// Total latency is generation-to-tail-ejection, so source queuing counts
// as contention (this is what makes the Fig. 10 reconfiguration spikes
// visible).
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "noc/network_interface.hpp"

namespace flov {

struct LatencyBreakdown {
  double router = 0.0;
  double link = 0.0;
  double serialization = 0.0;
  double flov = 0.0;
  double contention = 0.0;

  double total() const {
    return router + link + serialization + flov + contention;
  }
};

namespace telemetry {
class MetricsRegistry;
}

class LatencyStats {
 public:
  /// `router_pipeline_cycles`: per-hop pipeline depth (3 in Table I).
  /// `timeline_window`: bucket width for the latency-vs-time series (0
  /// disables the series).
  /// `hist_max`: upper clamp of the percentile histogram (1-cycle bins;
  /// NocParams::latency_hist_max).
  explicit LatencyStats(int router_pipeline_cycles = 3,
                        Cycle timeline_window = 0, Cycle hist_max = 4096);

  /// Records a completed packet (call from the NI ejection callback).
  /// Packets generated before `measure_from` are ignored.
  void record(const PacketRecord& rec);

  void set_measure_from(Cycle c) { measure_from_ = c; }
  Cycle measure_from() const { return measure_from_; }

  std::uint64_t packets() const { return latency_.count(); }
  double avg_latency() const { return latency_.mean(); }
  double max_latency() const { return latency_.max(); }
  /// Percentile from a 1-cycle-resolution histogram (clamped at hist_max).
  double latency_percentile(double p) const { return hist_.percentile(p); }
  LatencyBreakdown avg_breakdown() const;
  double avg_hops() const { return hops_.mean(); }
  double avg_flov_hops() const { return flov_hops_.mean(); }
  std::uint64_t escape_packets() const { return escape_packets_; }
  /// Packets whose latency met or exceeded the histogram cap (their
  /// percentile contribution saturates at hist_max - 1).
  std::uint64_t hist_overflow() const { return hist_.clamped_high(); }

  /// Registers/updates this collector's metrics ("latency.*") in `reg`.
  void publish_metrics(telemetry::MetricsRegistry& reg) const;

  const TimeSeries* timeline() const {
    return timeline_window_ ? &timeline_ : nullptr;
  }

 private:
  int pipeline_;
  Cycle measure_from_ = 0;
  StatAccumulator latency_;
  StatAccumulator router_c_;
  StatAccumulator link_c_;
  StatAccumulator serial_c_;
  StatAccumulator flov_c_;
  StatAccumulator contention_c_;
  StatAccumulator hops_;
  StatAccumulator flov_hops_;
  std::uint64_t escape_packets_ = 0;
  Histogram hist_;
  Cycle timeline_window_;
  TimeSeries timeline_;
};

}  // namespace flov
