#include "sim/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <cstdint>

#include "common/rng.hpp"

namespace flov {

namespace {

using telemetry::JsonValue;
using telemetry::JsonWriter;

std::uint64_t mix_d(std::uint64_t h, double v) {
  return hash_mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t mix_s(std::uint64_t h, const std::string& s) {
  h = hash_mix(h, s.size());
  for (char c : s) h = hash_mix(h, static_cast<unsigned char>(c));
  return h;
}

std::uint64_t u64_of(const JsonValue& v) {
  return static_cast<std::uint64_t>(v.number_or(0.0));
}

}  // namespace

std::uint64_t sweep_point_fingerprint(const SyntheticExperimentConfig& cfg) {
  std::uint64_t h = 0x464c4f56u;  // "FLOV"
  h = hash_mix(h, static_cast<std::uint64_t>(cfg.scheme));
  h = mix_s(h, cfg.pattern);
  h = mix_d(h, cfg.inj_rate_flits);
  h = mix_d(h, cfg.gated_fraction);
  h = hash_mix(h, cfg.warmup);
  h = hash_mix(h, cfg.measure);
  h = hash_mix(h, cfg.seed);
  h = hash_mix(h, cfg.gating_changes.size());
  for (Cycle c : cfg.gating_changes) h = hash_mix(h, c);
  h = hash_mix(h, cfg.timeline_window);
  h = hash_mix(h, cfg.watchdog);
  h = hash_mix(h, cfg.drain_max);
  h = hash_mix(h, cfg.max_cycles_hard);
  h = hash_mix(h, cfg.verify ? 1 : 0);
  h = hash_mix(h, cfg.verifier.check_interval);
  h = hash_mix(h, cfg.verifier.settle_window);
  h = hash_mix(h, (cfg.verifier.check_conservation ? 1 : 0) |
                      (cfg.verifier.check_credits ? 2 : 0) |
                      (cfg.verifier.check_psr ? 4 : 0) |
                      (cfg.verifier.fatal ? 8 : 0));
  h = hash_mix(h, cfg.telemetry.metrics_window);

  // step_threads, step_procs and step_tiles_x/y excluded: volatile knobs —
  // any tiling, threading or process partition is bit-identical to serial,
  // so a checkpoint taken at procs=4 threads=8 must resume cleanly at
  // threads=1 (and any tiles=/procs=).
  const NocParams& n = cfg.noc;
  h = hash_mix(h, static_cast<std::uint64_t>(n.width));
  h = hash_mix(h, static_cast<std::uint64_t>(n.height));
  h = hash_mix(h, static_cast<std::uint64_t>(n.num_vnets));
  h = hash_mix(h, static_cast<std::uint64_t>(n.vcs_per_vnet));
  h = hash_mix(h, static_cast<std::uint64_t>(n.escape_vc + 1));
  h = hash_mix(h, static_cast<std::uint64_t>(n.buffer_depth));
  h = hash_mix(h, static_cast<std::uint64_t>(n.packet_size));
  h = hash_mix(h, n.link_latency);
  h = hash_mix(h, n.deadlock_timeout);
  h = hash_mix(h, n.enable_escape_diversion ? 1 : 0);
  h = hash_mix(h, n.wakeup_latency);
  h = hash_mix(h, n.drain_idle_threshold);
  h = hash_mix(h, n.drain_abort_timeout);
  h = hash_mix(h, n.hs_retry_timeout);
  h = hash_mix(h, static_cast<std::uint64_t>(n.hs_retry_limit));
  h = hash_mix(h, n.trigger_retry_timeout);
  h = hash_mix(h, n.sleep_reannounce_interval);
  h = hash_mix(h, n.psr_block_timeout);
  h = hash_mix(h, n.latency_hist_max);
  h = hash_mix(h, n.reliable ? 1 : 0);
  h = hash_mix(h, n.retx_timeout);
  h = hash_mix(h, static_cast<std::uint64_t>(n.retx_backoff_cap));
  h = hash_mix(h, static_cast<std::uint64_t>(n.retx_limit));
  h = hash_mix(h, n.ack_delay);

  const FaultParams& f = cfg.faults;
  h = mix_d(h, f.signal_drop_rate);
  h = mix_d(h, f.signal_delay_rate);
  h = hash_mix(h, f.signal_delay_max);
  h = mix_d(h, f.signal_dup_rate);
  h = mix_d(h, f.flit_drop_rate);
  h = mix_d(h, f.flit_delay_rate);
  h = hash_mix(h, f.flit_delay_max);
  h = mix_d(h, f.spurious_wakeup_rate);
  h = mix_d(h, f.soft_flit_flip_rate);
  h = mix_d(h, f.soft_psr_flip_rate);
  h = mix_d(h, f.hard_router_pct);
  h = mix_d(h, f.hard_link_pct);
  h = hash_mix(h, f.hard_at_cycle);
  h = hash_mix(h, f.seed);

  const EnergyParams& e = cfg.energy;
  h = mix_d(h, e.buffer_write_pj);
  h = mix_d(h, e.buffer_read_pj);
  h = mix_d(h, e.vc_arb_pj);
  h = mix_d(h, e.sw_arb_pj);
  h = mix_d(h, e.crossbar_pj);
  h = mix_d(h, e.link_pj);
  h = mix_d(h, e.flov_latch_pj);
  h = mix_d(h, e.credit_relay_pj);
  h = mix_d(h, e.handshake_pj);
  h = mix_d(h, e.pg_transition_pj);
  h = mix_d(h, e.router_leak_mw);
  h = mix_d(h, e.link_leak_mw);
  h = mix_d(h, e.flov_sleep_leak_fraction);
  h = mix_d(h, e.rp_park_leak_fraction);
  h = mix_d(h, e.flov_active_overhead_fraction);
  h = mix_d(h, e.clock_freq_ghz);
  return h;
}

void write_registry_lossless(JsonWriter& w,
                             const telemetry::MetricsRegistry& reg) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : reg.counters()) w.kv(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : reg.gauges()) w.kv(name, v);
  w.end_object();
  // Stats as the raw Welford tuple, NOT the derived mean/stddev the
  // manifest shows: [count, sum, min, max, running_mean, m2].
  w.key("stats");
  w.begin_object();
  for (const auto& [name, a] : reg.stats()) {
    w.key(name);
    w.begin_array();
    w.value(a.count());
    w.value(a.sum());
    w.value(a.min());
    w.value(a.max());
    w.value(a.welford_mean());
    w.value(a.m2());
    w.end_array();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, hist] : reg.histograms()) {
    w.key(name);
    w.begin_object();
    w.kv("lo", hist.lo());
    w.kv("hi", hist.hi());
    w.kv("nbins", hist.num_bins());
    w.kv("total", hist.count());
    w.kv("clamped_low", hist.clamped_low());
    w.kv("clamped_high", hist.clamped_high());
    w.key("bins");
    w.begin_array();
    // Sparse [index, count] pairs; empty bins reconstruct as zero.
    for (std::size_t i = 0; i < hist.bins().size(); ++i) {
      if (hist.bins()[i] == 0) continue;
      w.begin_array();
      w.value(static_cast<std::uint64_t>(i));
      w.value(hist.bins()[i]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("series");
  w.begin_object();
  for (const auto& [name, ts] : reg.all_series()) {
    w.key(name);
    w.begin_object();
    w.kv("window", static_cast<std::uint64_t>(ts.window()));
    w.key("buckets");
    w.begin_array();
    for (const auto& [idx, acc] : ts.buckets()) {
      w.begin_array();
      w.value(idx);
      w.value(acc.count());
      w.value(acc.sum());
      w.value(acc.min());
      w.value(acc.max());
      w.value(acc.welford_mean());
      w.value(acc.m2());
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

namespace {

bool restore_acc(const JsonValue& a, StatAccumulator* out) {
  if (!a.is_array() || a.arr.size() != 6) return false;
  *out = StatAccumulator::restore(u64_of(a.arr[0]), a.arr[1].number_or(0.0),
                                  a.arr[2].number_or(0.0),
                                  a.arr[3].number_or(0.0),
                                  a.arr[4].number_or(0.0),
                                  a.arr[5].number_or(0.0));
  return true;
}

}  // namespace

bool restore_registry_lossless(const JsonValue& v,
                               telemetry::MetricsRegistry* out) {
  if (!v.is_object() || !v.has("counters") || !v.has("gauges") ||
      !v.has("stats") || !v.has("histograms") || !v.has("series")) {
    return false;
  }
  for (const auto& [name, c] : v.at("counters").obj) {
    out->counter(name) = u64_of(c);
  }
  for (const auto& [name, g] : v.at("gauges").obj) {
    out->gauge(name) = g.number_or(0.0);
  }
  for (const auto& [name, a] : v.at("stats").obj) {
    if (!restore_acc(a, &out->stat(name))) return false;
  }
  for (const auto& [name, hv] : v.at("histograms").obj) {
    if (!hv.is_object() || !hv.has("lo") || !hv.has("hi") ||
        !hv.has("nbins") || !hv.has("bins")) {
      return false;
    }
    const int nbins = static_cast<int>(hv.at("nbins").number_or(0.0));
    if (nbins <= 0) return false;
    std::vector<std::uint64_t> bins(static_cast<std::size_t>(nbins), 0);
    for (const JsonValue& pair : hv.at("bins").arr) {
      if (!pair.is_array() || pair.arr.size() != 2) return false;
      const std::uint64_t i = u64_of(pair.arr[0]);
      if (i >= bins.size()) return false;
      bins[i] = u64_of(pair.arr[1]);
    }
    const double lo = hv.at("lo").number_or(0.0);
    const double hi = hv.at("hi").number_or(0.0);
    if (!(hi > lo)) return false;
    out->histogram(name, lo, hi, nbins) = Histogram::restore(
        lo, hi, std::move(bins), u64_of(hv.at("total")),
        u64_of(hv.at("clamped_low")), u64_of(hv.at("clamped_high")));
  }
  for (const auto& [name, sv] : v.at("series").obj) {
    if (!sv.is_object() || !sv.has("window") || !sv.has("buckets")) {
      return false;
    }
    const Cycle window = u64_of(sv.at("window"));
    if (window == 0) return false;
    TimeSeries& ts = out->series(name, window);
    std::uint64_t prev = 0;
    bool first = true;
    for (const JsonValue& b : sv.at("buckets").arr) {
      if (!b.is_array() || b.arr.size() != 7) return false;
      const std::uint64_t idx = u64_of(b.arr[0]);
      if (!first && idx <= prev) return false;  // must be strictly sorted
      StatAccumulator acc = StatAccumulator::restore(
          u64_of(b.arr[1]), b.arr[2].number_or(0.0), b.arr[3].number_or(0.0),
          b.arr[4].number_or(0.0), b.arr[5].number_or(0.0),
          b.arr[6].number_or(0.0));
      ts.restore_bucket(idx, acc);
      prev = idx;
      first = false;
    }
  }
  return true;
}

namespace {

constexpr const char* kCheckpointSchema = "flyover-sweep-checkpoint-v1";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex16(const std::string& s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  *out = v;
  return true;
}

void write_breakdown(JsonWriter& w, const LatencyBreakdown& b) {
  w.begin_array();
  w.value(b.router);
  w.value(b.link);
  w.value(b.serialization);
  w.value(b.flov);
  w.value(b.contention);
  w.end_array();
}

bool read_breakdown(const JsonValue& v, LatencyBreakdown* b) {
  if (!v.is_array() || v.arr.size() != 5) return false;
  b->router = v.arr[0].number_or(0.0);
  b->link = v.arr[1].number_or(0.0);
  b->serialization = v.arr[2].number_or(0.0);
  b->flov = v.arr[3].number_or(0.0);
  b->contention = v.arr[4].number_or(0.0);
  return true;
}

}  // namespace

std::string encode_sweep_checkpoint_line(int index,
                                         const SyntheticExperimentConfig& cfg,
                                         const RunResult& r) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kCheckpointSchema);
  w.kv("index", index);
  w.kv("fp", hex16(sweep_point_fingerprint(cfg)));
  w.key("result");
  w.begin_object();
  w.kv("scheme", r.scheme);
  w.kv("avg_latency", r.avg_latency);
  w.kv("p50_latency", r.p50_latency);
  w.kv("p99_latency", r.p99_latency);
  w.key("breakdown");
  write_breakdown(w, r.breakdown);
  w.key("power");
  w.begin_array();
  w.value(static_cast<std::uint64_t>(r.power.cycles));
  w.value(r.power.static_mw);
  w.value(r.power.dynamic_mw);
  w.value(r.power.total_mw);
  w.value(r.power.static_energy_pj);
  w.value(r.power.dynamic_energy_pj);
  w.value(r.power.total_energy_pj);
  w.end_array();
  w.kv("packets_measured", r.packets_measured);
  w.kv("packets_generated", r.packets_generated);
  w.kv("injected_flits", r.injected_flits);
  w.kv("ejected_flits", r.ejected_flits);
  w.kv("escape_packets", r.escape_packets);
  w.kv("gated_routers_end", r.gated_routers_end);
  w.kv("avg_gated_routers", r.avg_gated_routers);
  w.kv("protocol_sleeps", r.protocol_sleeps);
  w.kv("protocol_wakeups", r.protocol_wakeups);
  w.kv("watchdog_recoveries", r.watchdog_recoveries);
  w.kv("verifier_violations", r.verifier_violations);
  w.kv("verifier_checks", r.verifier_checks);
  w.kv("hs_resends", r.hs_resends);
  w.kv("trigger_resends", r.trigger_resends);
  w.kv("self_captures", r.self_captures);
  w.kv("flits_dropped_by_faults", r.flits_dropped_by_faults);
  w.kv("packets_acked", r.packets_acked);
  w.kv("packets_dead", r.packets_dead);
  w.kv("packets_purged", r.packets_purged);
  w.kv("killed_at_source", r.killed_at_source);
  w.kv("retransmits", r.retransmits);
  w.kv("dup_packets", r.dup_packets);
  w.kv("packets_corrupted", r.packets_corrupted);
  w.kv("payload_flips", r.payload_flips);
  w.kv("psr_flips", r.psr_flips);
  w.kv("dead_routers", r.dead_routers);
  w.kv("dead_links", r.dead_links);
  w.kv("wake_requests_dropped", r.wake_requests_dropped);
  w.kv("aborted", r.aborted);
  w.kv("cycles_run", static_cast<std::uint64_t>(r.cycles_run));
  w.key("timeline");
  w.begin_array();
  for (const TimeSeries::Point& p : r.timeline) {
    w.begin_array();
    w.value(static_cast<std::uint64_t>(p.window_start));
    w.value(p.mean);
    w.value(p.count);
    w.end_array();
  }
  w.end_array();
  w.key("metrics");
  if (r.metrics) {
    write_registry_lossless(w, *r.metrics);
  } else {
    w.null();
  }
  // Incidents ride as STRING values (escaped), not spliced objects: the
  // decode path can then recover each record byte-for-byte from the string
  // instead of re-serializing a parsed tree (which would reorder keys and
  // break the resumed manifest's byte-identity).
  w.key("incidents");
  w.begin_array();
  if (r.incidents) {
    for (const std::string& rec : r.incidents->records()) w.value(rec);
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return w.take();
}

bool decode_sweep_checkpoint_line(const std::string& line, int* index,
                                  std::uint64_t* fingerprint, RunResult* out) {
  JsonValue v;
  if (!JsonValue::try_parse(line, &v)) return false;
  if (!v.is_object() || !v.has("schema") || !v.has("index") ||
      !v.has("fp") || !v.has("result")) {
    return false;
  }
  if (v.at("schema").str != kCheckpointSchema) return false;
  if (!parse_hex16(v.at("fp").str, fingerprint)) return false;
  const JsonValue& res = v.at("result");
  if (!res.is_object()) return false;

  // Every field below must be present: a missing key means the line was
  // written by an incompatible build and the point should just re-run.
  static const char* kRequired[] = {
      "scheme", "avg_latency", "p50_latency", "p99_latency", "breakdown",
      "power", "packets_measured", "packets_generated", "injected_flits",
      "ejected_flits", "escape_packets", "gated_routers_end",
      "avg_gated_routers", "protocol_sleeps", "protocol_wakeups",
      "watchdog_recoveries", "verifier_violations", "verifier_checks",
      "hs_resends", "trigger_resends", "self_captures",
      "flits_dropped_by_faults", "packets_acked", "packets_dead",
      "packets_purged", "killed_at_source", "retransmits", "dup_packets",
      "packets_corrupted", "payload_flips", "psr_flips",
      "dead_routers", "dead_links", "wake_requests_dropped", "aborted",
      "cycles_run", "timeline", "metrics", "incidents"};
  for (const char* k : kRequired) {
    if (!res.has(k)) return false;
  }

  RunResult r;
  r.scheme = res.at("scheme").str;
  r.avg_latency = res.at("avg_latency").number_or(0.0);
  r.p50_latency = res.at("p50_latency").number_or(0.0);
  r.p99_latency = res.at("p99_latency").number_or(0.0);
  if (!read_breakdown(res.at("breakdown"), &r.breakdown)) return false;
  const JsonValue& pw = res.at("power");
  if (!pw.is_array() || pw.arr.size() != 7) return false;
  r.power.cycles = u64_of(pw.arr[0]);
  r.power.static_mw = pw.arr[1].number_or(0.0);
  r.power.dynamic_mw = pw.arr[2].number_or(0.0);
  r.power.total_mw = pw.arr[3].number_or(0.0);
  r.power.static_energy_pj = pw.arr[4].number_or(0.0);
  r.power.dynamic_energy_pj = pw.arr[5].number_or(0.0);
  r.power.total_energy_pj = pw.arr[6].number_or(0.0);
  r.packets_measured = u64_of(res.at("packets_measured"));
  r.packets_generated = u64_of(res.at("packets_generated"));
  r.injected_flits = u64_of(res.at("injected_flits"));
  r.ejected_flits = u64_of(res.at("ejected_flits"));
  r.escape_packets = u64_of(res.at("escape_packets"));
  r.gated_routers_end = static_cast<int>(res.at("gated_routers_end").num);
  r.avg_gated_routers = res.at("avg_gated_routers").number_or(0.0);
  r.protocol_sleeps = u64_of(res.at("protocol_sleeps"));
  r.protocol_wakeups = u64_of(res.at("protocol_wakeups"));
  r.watchdog_recoveries = u64_of(res.at("watchdog_recoveries"));
  r.verifier_violations = u64_of(res.at("verifier_violations"));
  r.verifier_checks = u64_of(res.at("verifier_checks"));
  r.hs_resends = u64_of(res.at("hs_resends"));
  r.trigger_resends = u64_of(res.at("trigger_resends"));
  r.self_captures = u64_of(res.at("self_captures"));
  r.flits_dropped_by_faults = u64_of(res.at("flits_dropped_by_faults"));
  r.packets_acked = u64_of(res.at("packets_acked"));
  r.packets_dead = u64_of(res.at("packets_dead"));
  r.packets_purged = u64_of(res.at("packets_purged"));
  r.killed_at_source = u64_of(res.at("killed_at_source"));
  r.retransmits = u64_of(res.at("retransmits"));
  r.dup_packets = u64_of(res.at("dup_packets"));
  r.packets_corrupted = u64_of(res.at("packets_corrupted"));
  r.payload_flips = u64_of(res.at("payload_flips"));
  r.psr_flips = u64_of(res.at("psr_flips"));
  r.dead_routers = static_cast<int>(res.at("dead_routers").num);
  r.dead_links = static_cast<int>(res.at("dead_links").num);
  r.wake_requests_dropped = u64_of(res.at("wake_requests_dropped"));
  r.aborted = res.at("aborted").b;
  r.cycles_run = u64_of(res.at("cycles_run"));
  for (const JsonValue& p : res.at("timeline").arr) {
    if (!p.is_array() || p.arr.size() != 3) return false;
    TimeSeries::Point pt;
    pt.window_start = u64_of(p.arr[0]);
    pt.mean = p.arr[1].number_or(0.0);
    pt.count = u64_of(p.arr[2]);
    r.timeline.push_back(pt);
  }
  const JsonValue& mv = res.at("metrics");
  if (mv.kind != JsonValue::Kind::kNull) {
    auto reg = std::make_shared<telemetry::MetricsRegistry>();
    if (!restore_registry_lossless(mv, reg.get())) return false;
    r.metrics = std::move(reg);
  }
  auto sink = std::make_shared<telemetry::StructuredSink>();
  for (const JsonValue& inc : res.at("incidents").arr) {
    if (inc.kind != JsonValue::Kind::kString) return false;
    sink->add(inc.str);
  }
  r.incidents = std::move(sink);

  *index = static_cast<int>(v.at("index").num);
  *out = std::move(r);
  return true;
}

int load_sweep_checkpoint(const std::string& path,
                          const std::vector<SyntheticExperimentConfig>& points,
                          std::vector<RunResult>* results,
                          std::vector<char>* have) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return 0;
  std::string content;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);

  int restored = 0;
  std::size_t pos = 0;
  while (pos < content.size()) {
    std::size_t nl = content.find('\n', pos);
    const bool last = nl == std::string::npos;
    const std::string line =
        content.substr(pos, last ? std::string::npos : nl - pos);
    pos = last ? content.size() : nl + 1;
    if (line.empty()) continue;
    int index = -1;
    std::uint64_t fp = 0;
    RunResult r;
    if (!decode_sweep_checkpoint_line(line, &index, &fp, &r)) continue;
    if (index < 0 || index >= static_cast<int>(points.size())) continue;
    const std::size_t i = static_cast<std::size_t>(index);
    if ((*have)[i]) continue;  // first intact line wins
    if (fp != sweep_point_fingerprint(points[i])) continue;  // stale config
    (*results)[i] = std::move(r);
    (*have)[i] = 1;
    restored++;
  }
  return restored;
}

}  // namespace flov
