#include "rp/fabric_manager.hpp"

#include "common/log.hpp"
#include "telemetry/trace.hpp"

namespace flov {

FabricManager::FabricManager(Network* net, TableRouting* routing,
                             FabricManagerConfig cfg,
                             std::vector<bool> always_on)
    : net_(net),
      routing_(routing),
      cfg_(cfg),
      always_on_(std::move(always_on)),
      gated_core_(net->num_nodes(), false),
      powered_(net->num_nodes(), true) {
  FLOV_CHECK(static_cast<int>(always_on_.size()) == net_->num_nodes(),
             "always_on mask size mismatch");
  // Initial tables: everything powered.
  routing_->install(std::make_shared<UpDownRoutes>(
      net_->geom(), std::vector<bool>(net_->num_nodes(), true)));
}

void FabricManager::set_core_gated(NodeId core, bool gated, Cycle now) {
  (void)now;
  if (router_dead(core)) return;  // a dead node's gating is permanent
  if (gated_core_[core] == gated) return;
  gated_core_[core] = gated;
  dirty_ = true;
}

void FabricManager::on_hard_fault(const std::vector<char>& dead_routers,
                                  const std::vector<char>& dead_links,
                                  Cycle now) {
  dead_routers_ = dead_routers;
  dead_links_ = dead_links;
  for (NodeId i = 0; i < net_->num_nodes(); ++i) {
    // A dead node's core generates nothing; fold it into the gating view
    // so the parking policy sees it as a candidate, not a constraint.
    if (router_dead(i)) gated_core_[i] = true;
  }
  dirty_ = true;
  next_allowed_ = now;  // survival reconfigurations bypass the epoch gap
}

void FabricManager::begin_reconfig(Cycle now) {
  phase_ = Phase::kDraining;
  reconfig_start_ = now;
  FLOV_TRACE(telemetry::kTraceEpoch, telemetry::TraceEventType::kEpochBegin,
             now, -1, reconfigs_ + 1, 0);
  for (NodeId i = 0; i < net_->num_nodes(); ++i) {
    net_->ni(i).set_injection_stalled(true);
  }
}

void FabricManager::apply(Cycle now) {
  // Only read by the FLOV_TRACE below, which compiles out without
  // FLYOVER_TRACING.
  [[maybe_unused]] const std::uint64_t purged_before = purged_;
  const bool hard = !dead_routers_.empty();
  powered_ = compute_parked_set(net_->geom(), gated_core_, always_on_,
                                cfg_.policy);
  // Dead routers are excluded unconditionally — always_on cannot save a
  // corpse.
  if (hard) {
    for (NodeId i = 0; i < net_->num_nodes(); ++i) {
      if (router_dead(i)) powered_[i] = false;
    }
  }
  auto routes = std::make_shared<UpDownRoutes>(
      net_->geom(), powered_, hard ? &dead_links_ : nullptr);
  if (!hard) {
    FLOV_CHECK(routes->all_powered_connected(),
               "RP parked set disconnected the powered sub-graph");
  } else if (!routes->all_powered_connected()) {
    // Hard faults can fragment the mesh: quarantine every live router the
    // surviving root component cannot reach (park it, seal its NI, treat
    // its core as gated) and rebuild. Its unfinished traffic is declared
    // dead by the NI kill — fail fast instead of retrying into a wall.
    for (NodeId i = 0; i < net_->num_nodes(); ++i) {
      if (!powered_[i] || routes->bfs_level(i) >= 0) continue;
      powered_[i] = false;
      gated_core_[i] = true;
      net_->ni(i).kill(now);
      quarantined_++;
    }
    routes = std::make_shared<UpDownRoutes>(net_->geom(), powered_,
                                            &dead_links_);
  }
  routing_->install(routes);
  for (NodeId i = 0; i < net_->num_nodes(); ++i) {
    // Dead routers were switched to kDead at the fault instant and can
    // never change mode again; the FM manages only the living.
    if (!router_dead(i)) {
      net_->router(i).set_mode(
          powered_[i] ? RouterMode::kPipeline : RouterMode::kParked, now);
    }
    // Packets generated before the change but aimed at a node that is now
    // parked have no legal route; void them (counted; the OS/coherence
    // layer would never address a parked node in steady state). The same
    // applies to packets still QUEUED at a node whose own router is now
    // parked: its injection port is off, so releasing the stall would feed
    // them into a parked router. Under hard faults this extends to any
    // (src, dest) pair the surviving up*/down* graph cannot connect.
    purged_ += net_->ni(i).purge_queue([&](const PacketDescriptor& p) {
      if (!powered_[i] || !powered_[p.dest]) return true;
      return hard && !routes->reachable(i, p.dest);
    });
  }
  dirty_ = false;
#if defined(FLYOVER_TRACING) && FLYOVER_TRACING
  {
    std::uint64_t parked = 0;
    for (NodeId i = 0; i < net_->num_nodes(); ++i) {
      if (!powered_[i]) parked++;
    }
    FLOV_TRACE(telemetry::kTraceEpoch, telemetry::TraceEventType::kEpochApply,
               now, -1, parked, purged_ - purged_before);
  }
#endif
}

void FabricManager::step(Cycle now) {
  switch (phase_) {
    case Phase::kStable:
      if (dirty_ && now >= next_allowed_) begin_reconfig(now);
      break;
    case Phase::kDraining:
      if (net_->in_flight_empty()) {
        phase_ = Phase::kComputing;
        phase_end_ = now + cfg_.phase1_latency;
      }
      break;
    case Phase::kComputing:
      if (now >= phase_end_) {
        apply(now);
        phase_ = Phase::kWaking;
        phase_end_ = now + cfg_.wakeup_latency;
      }
      break;
    case Phase::kWaking:
      if (now >= phase_end_) {
        phase_ = Phase::kStable;
        last_duration_ = now - reconfig_start_;
        next_allowed_ = now + cfg_.min_epoch_gap;
        reconfigs_++;
        FLOV_TRACE(telemetry::kTraceEpoch,
                   telemetry::TraceEventType::kEpochComplete, now, -1,
                   reconfigs_, last_duration_);
        for (NodeId i = 0; i < net_->num_nodes(); ++i) {
          net_->ni(i).set_injection_stalled(false);
        }
      }
      break;
  }
}

}  // namespace flov
