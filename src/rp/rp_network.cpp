#include "rp/rp_network.hpp"

#include "telemetry/metrics.hpp"

namespace flov {

RpNetwork::RpNetwork(NocParams params, const EnergyParams& energy,
                     FabricManagerConfig fm_cfg, std::vector<bool> always_on)
    : params_(params), geom_(params.width, params.height) {
  params_.enable_escape_diversion = false;  // up*/down* is deadlock-free
  power_ = std::make_unique<PowerTracker>(geom_, energy,
                                          /*flov_hardware=*/false);
  routing_ = std::make_unique<TableRouting>(geom_);
  net_ = std::make_unique<Network>(params_, routing_.get(), power_.get());
  if (always_on.empty()) always_on.assign(geom_.num_nodes(), false);
  fm_cfg.wakeup_latency = params_.wakeup_latency;
  fm_ = std::make_unique<FabricManager>(net_.get(), routing_.get(), fm_cfg,
                                        std::move(always_on));
}

void RpNetwork::step(Cycle now) {
  // The FM steps FIRST: a gating change reported this cycle must assert
  // the injection stall before any NI starts a packet under stale tables
  // (e.g. toward a just-reactivated core whose router is still parked).
  fm_->step(now);
  net_->step(now);
}

int RpNetwork::parked_router_count() const {
  int n = 0;
  for (NodeId i = 0; i < geom_.num_nodes(); ++i) {
    if (!fm_->router_powered(i)) ++n;
  }
  return n;
}

void RpNetwork::publish_metrics(telemetry::MetricsRegistry& reg) const {
  reg.counter("rp.reconfigurations") += fm_->reconfigurations();
  reg.counter("rp.purged_packets") += fm_->purged_packets();
  reg.gauge("rp.parked_routers") = static_cast<double>(parked_router_count());
  reg.gauge("rp.last_reconfig_duration") =
      static_cast<double>(fm_->last_reconfig_duration());
}

}  // namespace flov
