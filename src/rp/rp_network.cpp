#include "rp/rp_network.hpp"

#include "fault/fault_wiring.hpp"
#include "noc/router.hpp"
#include "telemetry/metrics.hpp"

namespace flov {

RpNetwork::RpNetwork(NocParams params, const EnergyParams& energy,
                     FabricManagerConfig fm_cfg, std::vector<bool> always_on,
                     const FaultParams& faults)
    : params_(params), geom_(params.width, params.height) {
  params_.enable_escape_diversion = false;  // up*/down* is deadlock-free
  power_ = std::make_unique<PowerTracker>(geom_, energy,
                                          /*flov_hardware=*/false);
  routing_ = std::make_unique<TableRouting>(geom_);
  net_ = std::make_unique<Network>(params_, routing_.get(), power_.get());
  if (always_on.empty()) always_on.assign(geom_.num_nodes(), false);
  always_on_ = always_on;
  fm_cfg.wakeup_latency = params_.wakeup_latency;
  fm_ = std::make_unique<FabricManager>(net_.get(), routing_.get(), fm_cfg,
                                        std::move(always_on));
  dead_mask_.assign(geom_.num_nodes(), 0);
  if (faults.any()) {
    fault_ = std::make_unique<FaultInjector>(faults, net_->num_nodes());
    arm_link_faults(*net_, *fault_);
    for (NodeId id = 0; id < net_->num_nodes(); ++id) {
      net_->router(id).set_kill_callback(
          [f = fault_.get(), n = net_.get(), id](const Flit& fl) {
            f->note_hard_killed(fl);
            n->note_flit_dropped(id);
          });
    }
  }
}

void RpNetwork::step(Cycle now) {
  if (fault_ && !hard_applied_ && fault_->hard_at() > 0 &&
      now >= fault_->hard_at()) {
    hard_applied_ = true;
    apply_hard_faults(now);
  }
  // The FM steps FIRST: a gating change reported this cycle must assert
  // the injection stall before any NI starts a packet under stale tables
  // (e.g. toward a just-reactivated core whose router is still parked).
  fm_->step(now);
  net_->step(now);
}

void RpNetwork::apply_hard_faults(Cycle now) {
  std::vector<char> dead_links;
  dead_links_ = mark_dead_links(*net_, *fault_, dead_links);
  for (NodeId id = 0; id < net_->num_nodes(); ++id) {
    if (!fault_->router_dies(id) || always_on_[id]) continue;
    dead_mask_[id] = 1;
    // Worm-coherent death: the router finishes worms already in progress
    // (an instant black hole would strand tail-less fragments downstream),
    // eats new ones whole, then goes dark; routing keeps pointing at it
    // until the FM's survival reconfiguration lands.
    net_->router(id).begin_death(now);
    net_->ni(id).kill(now);
    net_->wake_router(id);
  }
  fm_->on_hard_fault(dead_mask_, dead_links, now);
}

int RpNetwork::parked_router_count() const {
  int n = 0;
  for (NodeId i = 0; i < geom_.num_nodes(); ++i) {
    if (!fm_->router_powered(i)) ++n;
  }
  return n;
}

int RpNetwork::dead_router_count() const {
  int n = 0;
  for (char c : dead_mask_) n += c != 0;
  return n;
}

void RpNetwork::publish_metrics(telemetry::MetricsRegistry& reg) const {
  reg.counter("rp.reconfigurations") += fm_->reconfigurations();
  reg.counter("rp.purged_packets") += fm_->purged_packets();
  reg.gauge("rp.parked_routers") = static_cast<double>(parked_router_count());
  reg.gauge("rp.last_reconfig_duration") =
      static_cast<double>(fm_->last_reconfig_duration());
  if (fault_) {
    const FaultInjector::Counters& f = fault_->counters();
    reg.counter("fault.flits_dropped") += f.flits_dropped;
    reg.counter("fault.flits_delayed") += f.flits_delayed;
    if (fault_->hard_at() > 0) {
      reg.counter("fault.hard_killed_flits") += f.hard_killed;
      reg.gauge("fault.dead_routers") =
          static_cast<double>(dead_router_count());
      reg.gauge("fault.dead_links") = static_cast<double>(dead_links_);
      reg.counter("rp.quarantined") += fm_->quarantined();
    }
  }
}

}  // namespace flov
