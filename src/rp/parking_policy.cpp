#include "rp/parking_policy.hpp"

#include <deque>

#include "common/log.hpp"

namespace flov {

bool endpoints_connected(const MeshGeometry& geom,
                         const std::vector<bool>& powered,
                         const std::vector<bool>& endpoints) {
  const int n = geom.num_nodes();
  NodeId start = kInvalidNode;
  int want = 0;
  for (NodeId i = 0; i < n; ++i) {
    if (endpoints[i]) {
      ++want;
      if (start == kInvalidNode) start = i;
    }
  }
  if (want == 0) return true;
  if (!powered[start]) return false;
  std::vector<bool> seen(n, false);
  std::deque<NodeId> q{start};
  seen[start] = true;
  int found = endpoints[start] ? 1 : 0;
  while (!q.empty() && found < want) {
    const NodeId a = q.front();
    q.pop_front();
    for (Direction d : kMeshDirections) {
      const NodeId b = geom.neighbor(a, d);
      if (b == kInvalidNode || seen[b] || !powered[b]) continue;
      seen[b] = true;
      if (endpoints[b]) ++found;
      q.push_back(b);
    }
  }
  return found == want;
}

std::vector<bool> compute_parked_set(const MeshGeometry& geom,
                                     const std::vector<bool>& gated_core,
                                     const std::vector<bool>& always_on,
                                     RpPolicy policy) {
  const int n = geom.num_nodes();
  FLOV_CHECK(static_cast<int>(gated_core.size()) == n &&
                 static_cast<int>(always_on.size()) == n,
             "mask size mismatch");
  std::vector<bool> powered(n, true);
  std::vector<bool> endpoints(n, false);
  bool any_endpoint = false;
  for (NodeId i = 0; i < n; ++i) {
    endpoints[i] = !gated_core[i] || always_on[i];
    any_endpoint = any_endpoint || endpoints[i];
  }
  FLOV_CHECK(any_endpoint, "RP: no active endpoints to connect");

  // Greedy: try candidates in id order; keep a parking only if the active
  // endpoints stay connected in the remaining powered sub-graph.
  for (NodeId c = 0; c < n; ++c) {
    if (!gated_core[c] || always_on[c]) continue;
    if (policy == RpPolicy::kConservative) {
      bool near_active = false;
      for (Direction d : kMeshDirections) {
        const NodeId b = geom.neighbor(c, d);
        if (b != kInvalidNode && !gated_core[b]) near_active = true;
      }
      if (near_active) continue;
    }
    powered[c] = false;
    if (!endpoints_connected(geom, powered, endpoints)) powered[c] = true;
  }
  return powered;
}

}  // namespace flov
