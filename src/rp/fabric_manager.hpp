// Router Parking's centralized Fabric Manager (FM).
//
// Whenever the core power configuration changes, the FM runs the epoch
// reconfiguration protocol the FLOV paper measures in Fig. 10:
//   1. stall every NI (no NEW packet injections network-wide; queued
//      packets keep aging — that queuing delay is the latency spike),
//   2. wait until all in-flight traffic drains under the OLD configuration,
//   3. spend Phase-I latency (>700 cycles on an 8x8: route computation at
//      the FM plus routing-table distribution to every router),
//   4. atomically apply the new parked set and up*/down* tables, then wait
//      the router wakeup latency for newly un-parked routers,
//   5. release the stall.
#pragma once

#include <memory>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/network.hpp"
#include "routing/table_routing.hpp"
#include "rp/parking_policy.hpp"

namespace flov {

struct FabricManagerConfig {
  Cycle phase1_latency = 750;   ///< route compute + table distribution
  Cycle wakeup_latency = 10;    ///< un-parked router power-on time
  RpPolicy policy = RpPolicy::kAggressive;
  /// Minimum spacing between reconfigurations. RP operates in epochs; the
  /// full-system runs use a non-zero gap so per-core sleep events batch
  /// into one reconfiguration instead of stalling the network repeatedly.
  Cycle min_epoch_gap = 0;
};

class FabricManager {
 public:
  FabricManager(Network* net, TableRouting* routing,
                FabricManagerConfig cfg, std::vector<bool> always_on);

  /// OS event: core gating configuration changed.
  void set_core_gated(NodeId core, bool gated, Cycle now);
  bool core_gated(NodeId core) const { return gated_core_[core]; }

  /// Hard-fault notification (PROTOCOL.md §8): the listed routers/links
  /// died permanently. Dead routers are excluded from every future parked
  /// set and up*/down* graph; live routers the deaths disconnect from the
  /// surviving root component are quarantined (NI killed, core treated as
  /// gated, router parked) at the next apply. Schedules an immediate
  /// reconfiguration, bypassing the epoch gap.
  void on_hard_fault(const std::vector<char>& dead_routers,
                     const std::vector<char>& dead_links, Cycle now);
  bool router_dead(NodeId id) const {
    return !dead_routers_.empty() && dead_routers_[id] != 0;
  }

  void step(Cycle now);

  /// Adjusts the epoch batching interval at run time (full-system runs).
  void set_min_epoch_gap(Cycle gap) { cfg_.min_epoch_gap = gap; }

  /// True while the network-wide injection stall is in force.
  bool stalled() const { return phase_ != Phase::kStable; }
  bool router_powered(NodeId id) const { return powered_[id]; }

  // Stats.
  std::uint64_t reconfigurations() const { return reconfigs_; }
  std::uint64_t purged_packets() const { return purged_; }
  Cycle last_reconfig_duration() const { return last_duration_; }
  /// Live routers parked + sealed because hard faults disconnected them.
  std::uint64_t quarantined() const { return quarantined_; }

 private:
  enum class Phase { kStable, kDraining, kComputing, kWaking };

  void begin_reconfig(Cycle now);
  void apply(Cycle now);

  Network* net_;
  TableRouting* routing_;
  FabricManagerConfig cfg_;
  std::vector<bool> always_on_;
  std::vector<bool> gated_core_;
  std::vector<bool> powered_;

  Phase phase_ = Phase::kStable;
  bool dirty_ = false;
  Cycle phase_end_ = 0;
  Cycle reconfig_start_ = 0;
  Cycle next_allowed_ = 0;

  std::uint64_t reconfigs_ = 0;
  std::uint64_t purged_ = 0;
  Cycle last_duration_ = 0;
  /// Hard-fault state (empty until on_hard_fault).
  std::vector<char> dead_routers_;
  std::vector<char> dead_links_;
  std::uint64_t quarantined_ = 0;
};

}  // namespace flov
