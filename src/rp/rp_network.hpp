// Router Parking system: mesh network + table routing + fabric manager.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "fault/fault_injector.hpp"
#include "noc/network.hpp"
#include "noc/system_iface.hpp"
#include "power/power_tracker.hpp"
#include "routing/table_routing.hpp"
#include "rp/fabric_manager.hpp"

namespace flov {

class RpNetwork final : public NocSystem {
 public:
  /// `always_on`: routers that may never park (empty = none). RP hardware
  /// has no FLOV latches, so routers pay no FLOV leakage overhead and the
  /// escape-diversion mechanism is disabled (up*/down* is deadlock-free).
  /// `faults`: optional fault model. RP has no handshake fabric, so only
  /// the flit-link fates apply (transient drop/delay + hard link/router
  /// deaths); always-on routers are exempt from hard router death (they
  /// anchor the surviving up*/down* component, mirroring FLOV's AON-column
  /// exemption).
  RpNetwork(NocParams params, const EnergyParams& energy,
            FabricManagerConfig fm_cfg = {},
            std::vector<bool> always_on = {},
            const FaultParams& faults = {});

  void step(Cycle now) override;
  void set_core_gated(NodeId core, bool gated, Cycle now) override {
    fm_->set_core_gated(core, gated, now);
  }
  bool core_gated(NodeId core) const override {
    return fm_->core_gated(core);
  }
  bool injection_allowed(NodeId src) const override {
    return !fm_->core_gated(src) && !fm_->stalled();
  }
  Network& network() override { return *net_; }
  const Network& network() const override { return *net_; }
  const char* name() const override { return "RP"; }

  PowerTracker& power() { return *power_; }
  const PowerTracker& power() const { return *power_; }
  FabricManager& fabric_manager() { return *fm_; }
  const FabricManager& fabric_manager() const { return *fm_; }

  int parked_router_count() const;

  /// The armed fault injector, or null when running fault-free.
  FaultInjector* fault_injector() { return fault_.get(); }
  const FaultInjector* fault_injector() const { return fault_.get(); }
  const std::vector<char>& dead_mask() const { return dead_mask_; }
  int dead_router_count() const;
  int dead_link_count() const { return dead_links_; }

  /// Registers/updates the fabric-manager metrics ("rp.*") in `reg`.
  void publish_metrics(telemetry::MetricsRegistry& reg) const;

 private:
  /// Applies the armed hard faults once, at fault.hard_at_cycle: fate-hashed
  /// routers turn kDead (flit black holes) with their NIs sealed, and the
  /// FM is notified so its next epoch excludes the corpses and dead links.
  void apply_hard_faults(Cycle now);

  NocParams params_;
  MeshGeometry geom_;
  std::unique_ptr<PowerTracker> power_;
  std::unique_ptr<TableRouting> routing_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<FabricManager> fm_;
  std::unique_ptr<FaultInjector> fault_;
  std::vector<bool> always_on_;
  std::vector<char> dead_mask_;
  int dead_links_ = 0;
  bool hard_applied_ = false;
};

}  // namespace flov
