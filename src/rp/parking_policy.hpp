// Router Parking policies (Samih et al., HPCA'13 — re-implemented).
//
// Given the set of gated cores, decide which routers to park while keeping
// every active endpoint (active cores + always-on nodes such as memory
// controllers) connected through the powered sub-mesh. The paper evaluates
// FLOV against RP's *aggressive* policy (park as many as possible), which
// is also workload-independent — matching the FLOV paper's Fig. 9
// methodology. A conservative policy is provided for ablations: it parks a
// gated router only when none of its mesh neighbors hosts an active core,
// trading static power for shorter detours.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace flov {

enum class RpPolicy {
  kAggressive = 0,
  kConservative,
};

/// Returns powered[id] for every router. `gated_core[id]` marks cores the
/// OS put to sleep; `always_on[id]` marks routers that must stay powered
/// regardless (MCs, or empty). Guarantees the powered sub-graph connects
/// all active endpoints (asserts if the input itself is degenerate).
std::vector<bool> compute_parked_set(const MeshGeometry& geom,
                                     const std::vector<bool>& gated_core,
                                     const std::vector<bool>& always_on,
                                     RpPolicy policy);

/// True when all `endpoints` lie in one connected component of the powered
/// sub-graph.
bool endpoints_connected(const MeshGeometry& geom,
                         const std::vector<bool>& powered,
                         const std::vector<bool>& endpoints);

}  // namespace flov
