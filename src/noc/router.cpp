#include "noc/router.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "telemetry/ops/profile.hpp"
#include "telemetry/trace.hpp"

namespace flov {

const char* to_string(PowerState s) {
  switch (s) {
    case PowerState::kActive: return "Active";
    case PowerState::kDraining: return "Draining";
    case PowerState::kSleep: return "Sleep";
    case PowerState::kWakeup: return "Wakeup";
  }
  return "?";
}

Router::Router(NodeId id, const MeshGeometry& geom, const NocParams& params,
               RoutingFunction* routing, PowerTracker* power,
               MeshHotState* hot)
    : id_(id), geom_(geom), params_(params), routing_(routing),
      power_(power) {
  FLOV_CHECK(routing_ != nullptr, "router needs a routing function");
  const int nvc = params_.total_vcs();
  FLOV_CHECK(nvc <= 64, "mask-based switch allocation supports <= 64 VCs");
  NodeId slot = id_;
  if (hot == nullptr) {
    // Standalone construction (unit tests): private single-slot slab.
    self_hot_ = std::make_unique<MeshHotState>();
    self_hot_->init(1, nvc, params_.buffer_depth);
    hot = self_hot_.get();
    slot = 0;
  }
  mode_ = &hot->mode[slot];
  resident_ = &hot->resident[slot];
  latch_ = hot->latches(slot);
  for (int p = 0; p < kNumPorts; ++p) {
    input_[p].vcs = hot->input_vcs(slot, p);
    output_[p].vcs = hot->output_vcs(slot, p);
    sa_input_arb_.emplace_back(nvc);
    sa_output_arb_.emplace_back(kNumPorts);
  }
  // Until a handshake layer says otherwise, every physical neighbor is the
  // logical neighbor and is Active.
  for (Direction d : kMeshDirections) {
    view_.logical[dir_index(d)] = geom_.neighbor(id_, d);
  }
}

void Router::connect_flit_in(Direction port, Channel<Flit>* ch) {
  in_flit_[dir_index(port)] = ch;
}
void Router::connect_flit_out(Direction port, Channel<Flit>* ch) {
  out_flit_[dir_index(port)] = ch;
}
void Router::connect_credit_out(Direction port, Channel<Credit>* ch) {
  credit_out_[dir_index(port)] = ch;
}
void Router::connect_credit_in(Direction port, Channel<Credit>* ch) {
  credit_in_[dir_index(port)] = ch;
}

void Router::step(Cycle now) {
  if ((*mode_) == RouterMode::kDead) {
    // Black hole: destroy arriving flits but still return their credits,
    // so upstream worms drain through the corpse instead of wedging.
    for (int p = 0; p < kNumPorts; ++p) {
      if (in_flit_[p]) {
        while (auto f = in_flit_[p]->recv(now)) {
          if (kill_cb_) kill_cb_(*f);
          if (credit_out_[p]) credit_out_[p]->send(now, Credit{f->vc});
        }
      }
      if (credit_in_[p]) credit_in_[p]->recv_all(now);
    }
    return;
  }
  if ((*mode_) == RouterMode::kParked) {
    // The fabric manager guarantees no traffic reaches a parked router.
    for (int p = 0; p < kNumPorts; ++p) {
      if (in_flit_[p]) {
        FLOV_CHECK(!in_flit_[p]->recv(now).has_value(),
                   "flit arrived at a parked router " + std::to_string(id_));
      }
      // Stale credits are void — discard everything that has ARRIVED by
      // now. (recv_all, not clear(): a boundary credit channel's staged
      // sends belong to the sending domain's worker during the parallel
      // phase, and draining only arrivals <= now is schedule-independent.)
      if (credit_in_[p]) credit_in_[p]->recv_all(now);
    }
    return;
  }

  accept_credits(now);

  if ((*mode_) == RouterMode::kBypass) {
    forward_latches(now);
    accept_flits_bypass(now);
    return;
  }

  // Replay the VA round-robin ticks of pipeline cycles skipped by the
  // active-set scheduler, so allocation priority is bit-identical to the
  // always-stepped schedule (skipped cycles had nothing in kWaitVc, so the
  // tick was their only observable effect).
  if (now > va_tick_from_) {
    const int total = kNumPorts * params_.total_vcs();
    va_rotate_ = static_cast<int>(
        (va_rotate_ + (now - va_tick_from_)) % static_cast<Cycle>(total));
  }
  va_tick_from_ = now + 1;

  {
    FLOV_PROFILE(kLink);
    accept_flits(now);
    do_switch_traversal(now);
  }
  do_timeout_checks(now);
  {
    FLOV_PROFILE(kVcAlloc);
    do_vc_allocation(now);
  }
  {
    FLOV_PROFILE(kSwitchAlloc);
    do_switch_allocation(now);
  }
  {
    FLOV_PROFILE(kRoute);
    do_route_computation(now);
  }

  // Fail-functional death grace: once every in-progress worm has fully
  // passed (no resident flits, no staged traversals, no allocated output —
  // an allocated output means a worm still has flits upstream), the
  // pipeline goes dark for good.
  if (dying_ && (*resident_) == 0 && pending_st_.empty() &&
      all_outputs_idle()) {
    dying_ = false;
    dying_eat_.fill(0);
    set_mode(RouterMode::kDead, now);
  }
}

void Router::begin_death(Cycle now) {
  if ((*mode_) == RouterMode::kDead || dying_) return;
  if ((*mode_) == RouterMode::kPipeline &&
      !(completely_empty() && all_outputs_idle())) {
    dying_ = true;
    return;
  }
  // Empty pipeline, or a parked router (which sees no traffic at all):
  // nothing mid-flight to orphan, die on the spot.
  set_mode(RouterMode::kDead, now);
}

void Router::accept_credits(Cycle now) {
  for (int p = 0; p < kNumPorts; ++p) {
    if (!credit_in_[p]) continue;
    for (const Credit& c : credit_in_[p]->recv_all(now)) {
      if ((*mode_) == RouterMode::kPipeline) {
        auto& ovc = output_[p].vcs[c.vc];
        ovc.credits++;
        FLOV_DCHECK(ovc.credits <= params_.buffer_depth,
                    "credit overflow at router " + std::to_string(id_));
      } else if (p == dir_index(Direction::Local)) {
        // Gated router: NI ejection credits are meaningless (the output
        // unit is off and reset to full on wakeup).
        continue;
      } else {
        // Sleeping/waking router: relay the credit toward the upstream on
        // the same line (credits flow opposite to flits). At a mesh edge
        // there is no upstream for this flow — the credit acknowledges a
        // flit this router itself sent before gating, and its value died
        // with the gated output unit, so it is dropped.
        const Direction upstream = opposite(dir_from_index(p));
        if (auto* ch = credit_out_[dir_index(upstream)]) {
          ch->send(now, c);
          count(EnergyEvent::kCreditRelay);
        }
      }
    }
  }
}

void Router::refund_output_credit(Direction out_port, VcId vc, Cycle now) {
  const int p = dir_index(out_port);
  if ((*mode_) == RouterMode::kPipeline) {
    auto& ovc = output_[p].vcs[vc];
    ovc.credits++;
    FLOV_DCHECK(ovc.credits <= params_.buffer_depth,
                "credit refund overflow at router " + std::to_string(id_));
  } else if ((*mode_) == RouterMode::kBypass) {
    // The credit belongs to the active router upstream of the bypass
    // chain; relay it there exactly like a received credit (a bypassed
    // flit out `out_port` came in from opposite(out_port), so the
    // upstream line exists).
    if (auto* ch = credit_out_[dir_index(opposite(out_port))]) {
      ch->send(now, Credit{vc});
      count(EnergyEvent::kCreditRelay);
    }
  }
  // kParked/kDead never send, so a refund cannot arise there.
}

void Router::accept_flits(Cycle now) {
  for (int p = 0; p < kNumPorts; ++p) {
    if (!in_flit_[p]) continue;
    while (auto f = in_flit_[p]->recv(now)) {
      auto& vc = input_[p].vcs[f->vc];
      if (dying_) {
        // Worms already admitted finish; every NEW worm (its head arrives
        // after begin_death) is eaten whole with the kDead black-hole
        // contract — destroyed and credited, so the upstream sender streams
        // it out and frees its own VC state.
        const std::uint32_t bit = 1u << f->vc;
        if (f->head || (dying_eat_[p] & bit) != 0) {
          if (f->tail) {
            dying_eat_[p] &= ~bit;
          } else {
            dying_eat_[p] |= bit;
          }
          if (kill_cb_) kill_cb_(*f);
          if (credit_out_[p]) credit_out_[p]->send(now, Credit{f->vc});
          continue;
        }
      }
      FLOV_CHECK(vc.occupancy() < params_.buffer_depth,
                 "input buffer overflow at router " + std::to_string(id_));
      if (f->head && vc.state == VcState::kIdle) {
        FLOV_CHECK(vc.buffer.empty(),
                   "idle VC with buffered flits: router " +
                       std::to_string(id_) + " port " +
                       to_string(dir_from_index(p)) + " vc " +
                       std::to_string(f->vc) + " holds " +
                       std::to_string(vc.occupancy()) + " flits (front pkt " +
                       std::to_string(vc.buffer.front().packet_id) +
                       " head=" + std::to_string(vc.buffer.front().head) +
                       " tail=" + std::to_string(vc.buffer.front().tail) +
                       ") while head of pkt " + std::to_string(f->packet_id) +
                       " arrives");
        vc.state = VcState::kRouting;
        vc.stage_ready = now + 1;  // RC occupies the next cycle
        vc.wait_since = now;
      }
      vc.buffer.push_back(*f);
      (*resident_)++;
      count(EnergyEvent::kBufferWrite);
      if (p == dir_index(Direction::Local)) last_local_activity_ = now;
    }
  }
}

void Router::forward_latches(Cycle now) {
  for (int d = 0; d < kNumMeshDirs; ++d) {
    auto& l = latch_[d];
    if (!l.flit.has_value() || l.write_cycle >= now) continue;
    Flit f = *l.flit;
    l.flit.reset();
    (*resident_)--;
    if (f.head) {
      f.flov_hops++;
      f.link_hops++;
    }
    FLOV_CHECK(out_flit_[d] != nullptr, "FLOV latch without output link");
    out_flit_[d]->send(now, f);
    count(EnergyEvent::kFlovLatch);
    count(EnergyEvent::kLinkTraversal);
    flits_flown_over_++;
    if (f.head) {
      FLOV_TRACE(telemetry::kTraceFlit, telemetry::TraceEventType::kFlovLatch,
                 now, id_, f.packet_id, d);
    }
  }
}

void Router::accept_flits_bypass(Cycle now) {
  for (Direction p : kMeshDirections) {
    auto* ch = in_flit_[dir_index(p)];
    if (!ch) continue;
    while (auto f = ch->recv(now)) {
      if (f->head && !f->tail) ++bypass_worms_open_;
      if (f->tail && !f->head && bypass_worms_open_ > 0) --bypass_worms_open_;
      if (f->dest == id_) {
        // Self-capture [impl]: a flit addressed to this gated router reached
        // its bypass datapath — possible only when an upstream missed the
        // SleepNotify (a fault) and kept transmitting. The always-on NI
        // ejects it, the credit is returned upstream on this router's
        // behalf (exactly as the relay would have done had the flit flown
        // over to the router the upstream's credits track), and a wakeup is
        // triggered so the stale neighborhood views heal.
        auto* local_out = out_flit_[dir_index(Direction::Local)];
        FLOV_CHECK(local_out != nullptr, "bypass self-capture without NI link");
        local_out->send(now, *f);
        if (auto* cr = credit_out_[dir_index(p)]) cr->send(now, Credit{f->vc});
        count(EnergyEvent::kFlovLatch);
        self_captures_++;
        if (wakeup_cb_) wakeup_cb_(id_);
        continue;
      }
      const Direction outd = opposite(p);
      FLOV_CHECK(geom_.neighbor(id_, outd) != kInvalidNode,
                 "fly-over would exit the mesh at router " +
                     std::to_string(id_) + " (flit src=" +
                     std::to_string(f->src) + " dest=" +
                     std::to_string(f->dest) + " escape=" +
                     std::to_string(f->escape) + " vc=" +
                     std::to_string(f->vc) + ")");
      auto& l = latch_[dir_index(outd)];
      FLOV_CHECK(!l.flit.has_value(),
                 "FLOV latch overrun at router " + std::to_string(id_));
      l.flit = *f;
      l.write_cycle = now;
      (*resident_)++;
    }
  }
  auto* local = in_flit_[dir_index(Direction::Local)];
  if (local) {
    FLOV_CHECK(!local->recv(now).has_value(),
               "local injection into a sleeping router");
  }
}

void Router::do_switch_traversal(Cycle now) {
  for (const SwitchGrant& g : pending_st_) {
    auto& vc = input_[g.in_port].vcs[g.in_vc];
    FLOV_CHECK(vc.state == VcState::kActive && !vc.buffer.empty(),
               "stale switch grant");
    Flit f = vc.buffer.front();
    vc.buffer.pop_front();
    (*resident_)--;

    const int outp = dir_index(vc.out_dir);
    auto& ovc = output_[outp].vcs[vc.out_vc];
    FLOV_CHECK(ovc.credits > 0, "switch traversal without credit");
    ovc.credits--;

    f.vc = vc.out_vc;
    f.escape = vc.escape_route;
    if (f.head) {
      // Per-flit routing annotations are stamped when the head actually
      // departs (RP writes its up*/down* phase bit here).
      const RouteContext ctx{id_, dir_from_index(g.in_port), &view_};
      routing_->annotate(ctx, RouteDecision{vc.out_dir, vc.escape_route}, f);
    }
    if (f.head) {
      f.router_hops++;
      if (vc.out_dir != Direction::Local) f.link_hops++;
    }
    FLOV_CHECK(out_flit_[outp] != nullptr, "unwired output port");
    out_flit_[outp]->send(now, f);
    count(EnergyEvent::kBufferRead);
    count(EnergyEvent::kCrossbar);
    if (vc.out_dir != Direction::Local) count(EnergyEvent::kLinkTraversal);
    flits_traversed_++;
    if (f.head) {
      FLOV_TRACE(telemetry::kTraceFlit,
                 telemetry::TraceEventType::kSwitchTraversal, now, id_,
                 f.packet_id, outp);
    }
    if (g.in_port == dir_index(Direction::Local) ||
        outp == dir_index(Direction::Local)) {
      last_local_activity_ = now;
    }

    // Return the freed buffer slot upstream.
    FLOV_CHECK(credit_out_[g.in_port] != nullptr, "unwired credit return");
    credit_out_[g.in_port]->send(now, Credit{g.in_vc});

    vc.wait_since = now;
    vc.sent_any = true;

    if (f.tail) {
      ovc.allocated = false;
      ovc.owner_port = -1;
      ovc.owner_vc = -1;
      vc.reset_to_idle();
      if (!vc.buffer.empty()) {
        // The next packet's head was queued behind the departing tail.
        FLOV_CHECK(vc.buffer.front().head, "non-head after tail");
        vc.state = VcState::kRouting;
        vc.stage_ready = now + 1;
        vc.wait_since = now;
      }
    }
  }
  pending_st_.clear();
}

void Router::do_timeout_checks(Cycle now) {
  if (params_.escape_vc < 0 || !params_.enable_escape_diversion) return;
  for (int p = 0; p < kNumPorts; ++p) {
    for (VcId v = 0; v < static_cast<VcId>(input_[p].vcs.size()); ++v) {
      auto& vc = input_[p].vcs[v];
      const bool eligible =
          (vc.state == VcState::kWaitVc ||
           (vc.state == VcState::kActive && !vc.sent_any)) &&
          !vc.escape_route;
      if (!eligible) continue;
      if (now - vc.wait_since <= params_.deadlock_timeout) continue;
      Flit& head = vc.buffer.front();
      FLOV_CHECK(head.head, "timeout on non-head");
      if (must_hold_for_wakeup(vc, head)) continue;  // waiting on a wakeup
      // Divert to the escape sub-network: release any held output VC and
      // re-route with the escape algorithm (costs one RC cycle).
      if (vc.state == VcState::kActive) {
        auto& ovc = output_[dir_index(vc.out_dir)].vcs[vc.out_vc];
        ovc.allocated = false;
        ovc.owner_port = -1;
        ovc.owner_vc = -1;
        vc.out_vc = -1;
      }
      head.escape = true;
      escape_diversions_++;
      FLOV_TRACE(telemetry::kTraceFlit,
                 telemetry::TraceEventType::kEscapeDivert, now, id_,
                 head.packet_id, now - vc.wait_since);
      const RouteContext ctx{id_, dir_from_index(p), &view_};
      const RouteDecision d = routing_->escape_route(ctx, head);
      vc.out_dir = d.out;
      vc.escape_route = true;
      vc.state = VcState::kWaitVc;
      vc.stage_ready = now + 1;
      vc.wait_since = now;
    }
  }
}

int Router::distance_along(Direction d, NodeId n) const {
  const Coord me = geom_.coord(id_);
  const Coord c = geom_.coord(n);
  switch (d) {
    case Direction::North:
      return (c.x == me.x && c.y < me.y) ? me.y - c.y : -1;
    case Direction::South:
      return (c.x == me.x && c.y > me.y) ? c.y - me.y : -1;
    case Direction::West:
      return (c.y == me.y && c.x < me.x) ? me.x - c.x : -1;
    case Direction::East:
      return (c.y == me.y && c.x > me.x) ? c.x - me.x : -1;
    case Direction::Local:
      return -1;
  }
  return -1;
}

bool Router::must_hold_for_wakeup(const InputVc& vc, const Flit& head) {
  if (vc.out_dir == Direction::Local || head.dest == id_) return false;
  if (dead_mask_ && (*dead_mask_)[head.dest]) {
    // Dead destination: never hold (it cannot wake). Fly over; the dead
    // router's bypass self-captures the flit into its always-on NI sink.
    return false;
  }
  const int dist = distance_along(vc.out_dir, head.dest);
  if (dist <= 0) return false;  // destination is not straight along out_dir
  const NodeId logical = view_.logical_neighbor(vc.out_dir);
  const int logical_dist =
      logical == kInvalidNode ? geom_.num_nodes() : distance_along(vc.out_dir, logical);
  if (dist < logical_dist) {
    // Every router between here and the first powered one is asleep, and
    // the destination is one of them: wake it and hold the packet.
    if (wakeup_cb_) wakeup_cb_(head.dest);
    return true;
  }
  return false;
}

void Router::do_vc_allocation(Cycle now) {
  const int nvc = params_.total_vcs();
  const int total = kNumPorts * nvc;
  va_rotate_ = (va_rotate_ + 1) % total;
  for (int k = 0; k < total; ++k) {
    const int slot = (va_rotate_ + k) % total;
    const int p = slot / nvc;
    const VcId v = slot % nvc;
    auto& vc = input_[p].vcs[v];
    if (vc.state != VcState::kWaitVc || vc.stage_ready > now) continue;
    FLOV_CHECK(!vc.buffer.empty() && vc.buffer.front().head,
               "kWaitVc without head flit");
    Flit& head = vc.buffer.front();
    // Re-evaluate the route against the CURRENT neighborhood view: power
    // states may have changed while the packet waited behind a drain mask,
    // and a turn toward a now-sleeping router must be re-decided (the
    // dynamic routing algorithm is re-armed until the VC is allocated).
    {
      const RouteContext ctx{id_, dir_from_index(p), &view_};
      const RouteDecision d = (head.escape || vc.escape_route)
                                  ? routing_->escape_route(ctx, head)
                                  : routing_->route(ctx, head);
      vc.out_dir = d.out;
      vc.escape_route = d.escape || head.escape;
      head.escape = vc.escape_route;
    }
    const int outp = dir_index(vc.out_dir);
    if (vc.out_dir != Direction::Local) {
      if (view_.blocked(vc.out_dir)) continue;  // neighbor draining/waking
      if (must_hold_for_wakeup(vc, head)) continue;
    }
    // Pick a free output VC of the right class within the packet's vnet.
    const int base = head.vnet * params_.vcs_per_vnet;
    VcId grant = -1;
    for (int w = 0; w < params_.vcs_per_vnet; ++w) {
      const bool is_escape =
          params_.escape_vc >= 0 && w == params_.escape_vc;
      if (vc.escape_route != is_escape) continue;
      const VcId abs = base + w;
      if (!output_[outp].vcs[abs].allocated) {
        grant = abs;
        break;
      }
    }
    if (grant < 0) continue;
    auto& ovc = output_[outp].vcs[grant];
    ovc.allocated = true;
    ovc.owner_port = p;
    ovc.owner_vc = v;
    vc.out_vc = grant;
    vc.state = VcState::kActive;
    vc.wait_since = now;
    count(EnergyEvent::kVcArb);
    FLOV_TRACE(telemetry::kTraceFlit, telemetry::TraceEventType::kVcAlloc,
               now, id_, head.packet_id, grant);
  }
}

void Router::do_switch_allocation(Cycle now) {
  (void)now;
  // Input stage: each input port nominates one ready VC. Request sets are
  // uint64 masks (total_vcs <= 64, checked at construction) so this runs
  // allocation-free — it used to build two std::vector<bool>s per port per
  // cycle, the hot path's last remaining heap traffic.
  std::array<VcId, kNumPorts> nominee;
  nominee.fill(-1);
  const int nvc = params_.total_vcs();
  // Per-output-port masks of input ports whose nominee wants that output,
  // built alongside the input stage so the output stage never re-reads VCs.
  std::array<std::uint64_t, kNumPorts> out_req{};
  for (int p = 0; p < kNumPorts; ++p) {
    std::uint64_t req = 0;
    for (VcId v = 0; v < nvc; ++v) {
      const auto& vc = input_[p].vcs[v];
      if (vc.state != VcState::kActive || vc.buffer.empty()) continue;
      const auto& ovc = output_[dir_index(vc.out_dir)].vcs[vc.out_vc];
      if (ovc.credits <= 0) continue;
      req |= std::uint64_t{1} << v;
    }
    if (req != 0) {
      nominee[p] = sa_input_arb_[p].arbitrate(req);
      out_req[dir_index(input_[p].vcs[nominee[p]].out_dir)] |=
          std::uint64_t{1} << p;
    }
  }
  // Output stage: each output port grants one input port.
  for (int outp = 0; outp < kNumPorts; ++outp) {
    if (out_req[outp] == 0) continue;
    const int winner = sa_output_arb_[outp].arbitrate(out_req[outp]);
    FLOV_CHECK(winner >= 0, "output arbiter returned no winner");
    pending_st_.push_back(SwitchGrant{winner, nominee[winner]});
    count(EnergyEvent::kSwArb);
#if defined(FLYOVER_TRACING) && FLYOVER_TRACING
    {
      const auto& gvc = input_[winner].vcs[nominee[winner]];
      if (!gvc.buffer.empty() && gvc.buffer.front().head) {
        FLOV_TRACE(telemetry::kTraceFlit,
                   telemetry::TraceEventType::kSwitchGrant, now, id_,
                   gvc.buffer.front().packet_id, outp);
      }
    }
#endif
  }
}

void Router::do_route_computation(Cycle now) {
  const int nvc = params_.total_vcs();
  for (int p = 0; p < kNumPorts; ++p) {
    for (VcId v = 0; v < nvc; ++v) {
      auto& vc = input_[p].vcs[v];
      if (vc.state != VcState::kRouting || vc.stage_ready > now) continue;
      FLOV_CHECK(!vc.buffer.empty() && vc.buffer.front().head,
                 "kRouting without head flit");
      Flit& head = vc.buffer.front();
      const RouteContext ctx{id_, dir_from_index(p), &view_};
      const RouteDecision d = head.escape ? routing_->escape_route(ctx, head)
                                          : routing_->route(ctx, head);
      vc.out_dir = d.out;
      vc.escape_route = d.escape || head.escape;
      vc.state = VcState::kWaitVc;
      vc.stage_ready = now + 1;  // VA may run no earlier than next cycle
      vc.wait_since = now;
    }
  }
}

void Router::dump_occupancy(Cycle now) const {
  for (int p = 0; p < kNumPorts; ++p) {
    for (VcId v = 0; v < static_cast<VcId>(input_[p].vcs.size()); ++v) {
      const auto& vc = input_[p].vcs[v];
      if (vc.buffer.empty()) continue;
      const Flit& f = vc.buffer.front();
      int credits = -1;
      if (vc.state == VcState::kActive) {
        credits = output_[dir_index(vc.out_dir)].vcs[vc.out_vc].credits;
      }
      std::fprintf(
          stderr,
          "  router %d port %s vc %d: %d flits, state=%d out=%s out_vc=%d "
          "credits=%d blocked=%d escape=%d front(src=%d dst=%d) wait=%llu\n",
          id_, to_string(dir_from_index(p)), v, vc.occupancy(),
          static_cast<int>(vc.state), to_string(vc.out_dir), vc.out_vc,
          credits, static_cast<int>(view_.blocked(vc.out_dir)),
          static_cast<int>(vc.escape_route), f.src, f.dest,
          static_cast<unsigned long long>(now - vc.wait_since));
    }
  }
  for (int d = 0; d < kNumMeshDirs; ++d) {
    if (latch_[d].flit.has_value()) {
      std::fprintf(stderr, "  router %d latch %s occupied (dst=%d)\n", id_,
                   to_string(dir_from_index(d)), latch_[d].flit->dest);
    }
  }
}

void Router::set_mode(RouterMode m, Cycle now) {
  if (m == (*mode_)) return;
  FLOV_CHECK((*mode_) != RouterMode::kDead, "a dead router cannot change mode");
  if (m == RouterMode::kDead) {
    // Death is instantaneous: resident flits die with the tile. Their
    // buffer slots are surrendered back upstream so senders mid-worm can
    // keep streaming (into the black hole) and free their own VC state.
    for (int p = 0; p < kNumPorts; ++p) {
      for (VcId v = 0; v < static_cast<VcId>(input_[p].vcs.size()); ++v) {
        auto& vc = input_[p].vcs[v];
        while (!vc.buffer.empty()) {
          const Flit f = vc.buffer.front();
          vc.buffer.pop_front();
          (*resident_)--;
          if (kill_cb_) kill_cb_(f);
          if (credit_out_[p]) credit_out_[p]->send(now, Credit{v});
        }
        vc.reset_to_idle();
      }
    }
    for (auto& l : latch_) {
      if (l.flit.has_value()) {
        if (kill_cb_) kill_cb_(*l.flit);
        l.flit.reset();
        (*resident_)--;
      }
    }
    pending_st_.clear();
    (*mode_) = m;
    if (wake_) wake_->mark(wake_index_);
    if (power_) power_->set_mode(id_, RouterPowerMode::kRpParked, now);
    return;
  }
  if (m == RouterMode::kBypass || m == RouterMode::kParked) {
    FLOV_CHECK(input_buffers_empty(),
               "gating a router with buffered flits: " + std::to_string(id_));
    FLOV_CHECK(pending_st_.empty(), "gating a router mid-traversal");
    for (int p = 0; p < kNumPorts; ++p) {
      FLOV_CHECK(!output_[p].any_allocated(),
                 "gating a router with live output VCs");
    }
    count(EnergyEvent::kPgTransition);  // one charge per gate/wake pair
    bypass_worms_open_ = 0;
  }
  if (m == RouterMode::kPipeline) {
    FLOV_CHECK(latches_empty(), "waking a router with occupied FLOV latches");
    // Fresh allocation state; real credit values are installed by the
    // credit-handover transaction right after this call.
    for (int p = 0; p < kNumPorts; ++p) {
      output_[p].init(params_.total_vcs(), params_.buffer_depth);
    }
    last_local_activity_ = now;
    // VA ticks resume at the next step; gated cycles never ticked.
    va_tick_from_ = now + 1;
  }
  (*mode_) = m;
  // Any mode switch re-arms the router: the new datapath must observe its
  // wires at least once (e.g. a parked router voiding stale credits).
  if (wake_) wake_->mark(wake_index_);
  if (power_) {
    const RouterPowerMode pm = m == RouterMode::kPipeline
                                   ? RouterPowerMode::kOn
                                   : (m == RouterMode::kBypass
                                          ? RouterPowerMode::kFlovSleep
                                          : RouterPowerMode::kRpParked);
    power_->set_mode(id_, pm, now);
  }
}

bool Router::input_buffers_empty() const {
  for (int p = 0; p < kNumPorts; ++p) {
    if (!input_[p].all_empty()) return false;
  }
  return true;
}

bool Router::latches_empty() const {
  for (const auto& l : latch_) {
    if (l.flit.has_value()) return false;
  }
  return true;
}

bool Router::output_port_idle(Direction d) const {
  return !output_[dir_index(d)].any_allocated();
}

bool Router::all_outputs_idle() const {
  for (int p = 0; p < kNumPorts; ++p) {
    if (output_[p].any_allocated()) return false;
  }
  return true;
}

bool Router::bypass_quiet() const {
  if (bypass_worms_open_ > 0) return false;
  for (int p = 0; p < kNumPorts; ++p) {
    if (in_flit_[p] && !in_flit_[p]->empty()) return false;
  }
  return true;
}

bool Router::completely_empty() const {
  FLOV_DCHECK((*resident_) == recount_resident_flits(),
              "resident flit counter drifted at router " + std::to_string(id_));
  return (*resident_) == 0 && pending_st_.empty();
}

int Router::buffered_flits() const {
  const int n = recount_resident_flits();
  FLOV_DCHECK((*resident_) == n, "resident flit counter drifted at router " +
                                        std::to_string(id_));
  return n;
}

int Router::recount_resident_flits() const {
  int n = 0;
  for (int p = 0; p < kNumPorts; ++p) {
    for (const auto& vc : input_[p].vcs) n += vc.occupancy();
  }
  for (const auto& l : latch_) n += l.flit.has_value() ? 1 : 0;
  return n;
}

void Router::input_free_slots(Direction in_port,
                              std::vector<int>& out) const {
  input_[dir_index(in_port)].free_slots(params_.buffer_depth, out);
}

void Router::reload_output_credits(Direction out_port,
                                   const std::vector<int>& free_counts) {
  output_[dir_index(out_port)].reload_credits(free_counts);
}

void Router::reset_output_credits_full(Direction out_port) {
  std::vector<int> full(params_.total_vcs(), params_.buffer_depth);
  output_[dir_index(out_port)].reload_credits(full);
}

}  // namespace flov
