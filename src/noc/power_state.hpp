// Protocol-visible router power states (paper Fig. 2) and the Power State
// Register (PSR) view a router keeps of its neighborhood.
#pragma once

#include <array>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace flov {

/// The four states of the FLOV power-state transition diagram (Fig. 2).
enum class PowerState : std::uint8_t {
  kActive = 0,
  kDraining,
  kSleep,
  kWakeup,
};

const char* to_string(PowerState s);

/// True when the router's baseline pipeline is operational (routing
/// decisions may rely on it as a turn point).
constexpr bool is_powered(PowerState s) { return s == PowerState::kActive; }

/// Per-router neighborhood view: two sets of PSRs (physical + logical
/// neighbors, Section III) plus the output masks the handshake protocol
/// maintains. Plain data — mutated by the HSC, read by routing/allocation.
struct NeighborhoodView {
  /// Power state of the immediate (physical) neighbor per direction.
  std::array<PowerState, kNumMeshDirs> physical{
      PowerState::kActive, PowerState::kActive, PowerState::kActive,
      PowerState::kActive};
  /// Nearest powered-on router per direction ("logical neighbor"); equals
  /// the physical neighbor in the baseline, kInvalidNode if the whole
  /// remainder of the row/column is asleep or off the mesh edge.
  std::array<NodeId, kNumMeshDirs> logical{kInvalidNode, kInvalidNode,
                                           kInvalidNode, kInvalidNode};
  /// Power state of the logical neighbor per direction (the second PSR set
  /// of Section III; consulted only by the gFLOV handshake).
  std::array<PowerState, kNumMeshDirs> logical_state{
      PowerState::kActive, PowerState::kActive, PowerState::kActive,
      PowerState::kActive};
  /// When true, no NEW packets may be allocated toward this output (the
  /// neighbor is draining or waking up); in-flight packets finish.
  std::array<bool, kNumMeshDirs> output_blocked{false, false, false, false};
  /// Poisoned-edge marks (PROTOCOL.md §8): the outgoing link in this
  /// direction hard-faulted and eats every flit. Routing treats a poisoned
  /// edge as a last-resort turn; unlike output_blocked it never clears.
  std::array<bool, kNumMeshDirs> link_dead{false, false, false, false};

  PowerState physical_state(Direction d) const {
    return physical[dir_index(d)];
  }
  NodeId logical_neighbor(Direction d) const { return logical[dir_index(d)]; }
  bool blocked(Direction d) const { return output_blocked[dir_index(d)]; }
  bool dead_link(Direction d) const { return link_dead[dir_index(d)]; }

  /// "Powered-on neighbor" test used by the dynamic routing algorithm: the
  /// immediate neighbor exists and is Active.
  bool neighbor_powered(Direction d) const {
    return physical[dir_index(d)] == PowerState::kActive;
  }
};

}  // namespace flov
