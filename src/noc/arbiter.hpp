// Round-robin arbiter: N requestors, one grant per invocation, priority
// rotates past the last winner. Used as the building block of the separable
// VC and switch allocators.
#pragma once

#include <cstdint>
#include <vector>

#include "common/log.hpp"

namespace flov {

class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int num_inputs)
      : num_inputs_(num_inputs) {
    FLOV_CHECK(num_inputs >= 1, "arbiter needs at least one input");
  }

  int num_inputs() const { return num_inputs_; }

  /// Grants the first requesting input at or after the rotating priority
  /// pointer; returns -1 if no input requests. Advances the pointer past
  /// the winner so it has lowest priority next time.
  int arbitrate(const std::vector<bool>& requests) {
    FLOV_DCHECK(static_cast<int>(requests.size()) == num_inputs_,
                "request vector size mismatch");
    for (int k = 0; k < num_inputs_; ++k) {
      const int i = (pointer_ + k) % num_inputs_;
      if (requests[i]) {
        pointer_ = (i + 1) % num_inputs_;
        return i;
      }
    }
    return -1;
  }

  /// Bitmask variant for per-cycle call sites (switch allocation): bit i of
  /// `requests` set means input i requests. Same grant order as the vector
  /// overload — first set bit at or after the rotating pointer — without
  /// materializing a request vector. Requires num_inputs <= 64.
  int arbitrate(std::uint64_t requests) {
    FLOV_DCHECK(num_inputs_ <= 64, "mask arbiter limited to 64 inputs");
    if (requests == 0) return -1;
    // Scan [pointer, N) then wrap to [0, pointer) — identical grant order
    // to the vector overload.
    const std::uint64_t at_or_after = requests >> pointer_;
    const int i = at_or_after != 0 ? pointer_ + __builtin_ctzll(at_or_after)
                                   : __builtin_ctzll(requests);
    pointer_ = (i + 1) % num_inputs_;
    return i;
  }

  void reset() { pointer_ = 0; }

 private:
  int num_inputs_;
  int pointer_ = 0;
};

}  // namespace flov
