// Round-robin arbiter: N requestors, one grant per invocation, priority
// rotates past the last winner. Used as the building block of the separable
// VC and switch allocators.
#pragma once

#include <vector>

#include "common/log.hpp"

namespace flov {

class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int num_inputs)
      : num_inputs_(num_inputs) {
    FLOV_CHECK(num_inputs >= 1, "arbiter needs at least one input");
  }

  int num_inputs() const { return num_inputs_; }

  /// Grants the first requesting input at or after the rotating priority
  /// pointer; returns -1 if no input requests. Advances the pointer past
  /// the winner so it has lowest priority next time.
  int arbitrate(const std::vector<bool>& requests) {
    FLOV_DCHECK(static_cast<int>(requests.size()) == num_inputs_,
                "request vector size mismatch");
    for (int k = 0; k < num_inputs_; ++k) {
      const int i = (pointer_ + k) % num_inputs_;
      if (requests[i]) {
        pointer_ = (i + 1) % num_inputs_;
        return i;
      }
    }
    return -1;
  }

  void reset() { pointer_ = 0; }

 private:
  int num_inputs_;
  int pointer_ = 0;
};

}  // namespace flov
