// Common interface over a mesh network plus a power-gating scheme.
//
// The experiment harness drives Baseline / rFLOV / gFLOV / RP uniformly:
// it reports core (un)gating events from the OS model and steps the system
// one cycle at a time; the scheme decides how routers react.
#pragma once

#include "common/types.hpp"
#include "noc/network.hpp"

namespace flov {

class NocSystem {
 public:
  virtual ~NocSystem() = default;

  /// Advances network + scheme machinery by one cycle.
  virtual void step(Cycle now) = 0;

  /// OS-level core power event (Section I: FLOV reacts to OS core gating).
  virtual void set_core_gated(NodeId core, bool gated, Cycle now) = 0;
  virtual bool core_gated(NodeId core) const = 0;

  /// True when `src` may inject new packets this cycle (false for gated
  /// cores, and for everyone during RP's reconfiguration stall).
  virtual bool injection_allowed(NodeId src) const = 0;

  /// Watchdog escalation hook: try to un-wedge a stalled fabric (e.g. by
  /// re-issuing lost handshake signals). Returns true if the scheme did
  /// anything worth granting a fresh progress window for; the default
  /// scheme has no recovery story.
  virtual bool attempt_recovery(Cycle now) {
    (void)now;
    return false;
  }

  /// Numeric scheme power state of `node`'s router for observability
  /// surfaces (the ops-plane snapshot grids). FLOV schemes report their
  /// HSC PowerState; schemes without one report 0 (== kActive).
  virtual std::uint8_t power_state_code(NodeId node) const {
    (void)node;
    return 0;
  }

  virtual Network& network() = 0;
  virtual const Network& network() const = 0;

  virtual const char* name() const = 0;
};

}  // namespace flov
