#include "noc/network_interface.hpp"

#include "common/backoff.hpp"
#include "common/log.hpp"
#include "telemetry/trace.hpp"

namespace flov {

NetworkInterface::NetworkInterface(NodeId node, const NocParams& params,
                                   MeshHotState* hot)
    : node_(node), params_(params) {
  NodeId slot = node_;
  if (hot == nullptr) {
    // Standalone construction (unit tests): private single-slot slab.
    self_hot_ = std::make_unique<MeshHotState>();
    self_hot_->init(1, params.total_vcs(), params.buffer_depth);
    hot = self_hot_.get();
    slot = 0;
  }
  credits_ = hot->ni_credit_row(slot);
  vc_busy_ = hot->ni_busy_row(slot);
}

void NetworkInterface::step(Cycle now) {
  // Credits returned by the router for previously injected flits.
  if (credit_from_) {
    for (const Credit& c : credit_from_->recv_all(now)) {
      credits_[c.vc]++;
      FLOV_DCHECK(credits_[c.vc] <= params_.buffer_depth, "NI credit overflow");
    }
  }
  eject(now);
  if (params_.reliable && !dead_) step_retx_timers(now);
  inject(now);
}

void NetworkInterface::declare_dead(const TxEntry& e, std::uint32_t seq,
                                    Cycle now) {
  DeadPacket d;
  d.pkt = e.pkt;
  d.seq = seq;
  d.retries = e.retries;
  d.declared_at = now;
  dead_log_.push_back(d);
  dead_declared_++;
}

void NetworkInterface::schedule_ack(NodeId to, std::uint32_t seq, Cycle now) {
  acks_.push_back(PendingAck{to, seq, now + params_.ack_delay});
}

bool NetworkInterface::already_delivered(NodeId src,
                                         std::uint32_t seq) const {
  auto fl = rx_floor_.find(src);
  if (fl != rx_floor_.end() && seq <= fl->second) return true;
  auto ab = rx_above_.find(src);
  return ab != rx_above_.end() && ab->second.count(seq) != 0;
}

void NetworkInterface::mark_delivered(NodeId src, std::uint32_t seq) {
  std::uint32_t& floor = rx_floor_[src];  // default 0; seqs are 1-based
  std::set<std::uint32_t>& above = rx_above_[src];
  if (seq == floor + 1) {
    floor = seq;
    // Absorb any contiguous run already seen above the old floor.
    auto it = above.begin();
    while (it != above.end() && *it == floor + 1) {
      floor = *it;
      it = above.erase(it);
    }
  } else {
    above.insert(seq);
  }
}

void NetworkInterface::kill(Cycle now) {
  if (dead_) return;
  dead_ = true;
  // Every tracked flow dies with its source: nobody is left to retransmit
  // or to process acks, so resolve the bookkeeping here and now.
  for (const auto& [key, e] : tx_) {
    declare_dead(e, static_cast<std::uint32_t>(key & 0xFFFFFFFFull), now);
  }
  tx_.clear();
  acks_.clear();
  // Queued packets die unsent. Fresh ones are killed-at-source; retransmit
  // copies and ctrl packets were accounted above / never count.
  for (const auto& p : queue_) {
    if (!p.ctrl && p.seq == 0) killed_at_source_++;
  }
  if (counters_) counters_->queued_packets -= queue_.size();
  queue_.clear();
  // Half-ejected worms will never see their tail reported; drop the heads.
  pending_heads_.clear();
  // Open injection streams intentionally survive: they keep draining flits
  // into the fabric until the tail, so no headless worm is left behind.
}

std::size_t NetworkInterface::purge_queue(
    const std::function<bool(const PacketDescriptor&)>& pred) {
  std::size_t removed = 0;
  std::deque<PacketDescriptor> kept;
  for (const PacketDescriptor& p : queue_) {
    if (!pred(p)) {
      kept.push_back(p);
      continue;
    }
    removed++;
    if (p.ctrl) continue;  // NI-internal ack packet: no accounting
    if (p.seq != 0) {
      // Queued retransmit copy of a tracked flow: the flow fails fast.
      auto it = tx_.find(flow_key(p.dest, p.seq));
      if (it != tx_.end()) {
        declare_dead(it->second, p.seq, p.gen_cycle);
        tx_.erase(it);
      }
    } else {
      purged_++;
    }
  }
  queue_.swap(kept);
  if (counters_) counters_->queued_packets -= removed;
  if (!params_.reliable) return removed;
  // Fail remaining tracked flows matching the predicate fast: entries
  // awaiting their timer die immediately, mid-injection ones at tail send.
  for (auto it = tx_.begin(); it != tx_.end();) {
    TxEntry& e = it->second;
    if (!pred(e.pkt)) {
      ++it;
      continue;
    }
    if (e.in_flight) {
      e.doomed = true;
      ++it;
    } else {
      declare_dead(e, static_cast<std::uint32_t>(it->first & 0xFFFFFFFFull),
                   e.deadline);
      it = tx_.erase(it);
    }
  }
  // Pending acks toward a purged destination would otherwise become
  // unroutable ctrl packets later.
  acks_.erase(std::remove_if(acks_.begin(), acks_.end(),
                             [&](const PendingAck& a) {
                               PacketDescriptor probe;
                               probe.src = node_;
                               probe.dest = a.to;
                               probe.size_flits = 1;
                               probe.ctrl = true;
                               return pred(probe);
                             }),
              acks_.end());
  return removed;
}

void NetworkInterface::step_retx_timers(Cycle now) {
  if (tx_.empty()) return;
  for (auto it = tx_.begin(); it != tx_.end();) {
    TxEntry& e = it->second;
    if (e.in_flight || now < e.deadline) {
      ++it;
      continue;
    }
    const std::uint32_t seq =
        static_cast<std::uint32_t>(it->first & 0xFFFFFFFFull);
    if (e.retries >= params_.retx_limit) {
      declare_dead(e, seq, now);
      it = tx_.erase(it);
      continue;
    }
    e.retries++;
    e.in_flight = true;  // timer disarmed until the copy's tail is sent
    retransmits_++;
    queue_.push_back(e.pkt);
    if (counters_) counters_->queued_packets++;
    if (wake_) wake_->mark(wake_index_);
    ++it;
  }
}

void NetworkInterface::eject(Cycle now) {
  if (!from_router_) return;
  while (auto f = from_router_->recv(now)) {
    ejected_flits_++;
    if (counters_) counters_->ejected_flits++;
    // The NI consumes instantly, so the slot frees immediately.
    FLOV_CHECK(credit_to_ != nullptr, "unwired ejection credit channel");
    credit_to_->send(now, Credit{f->vc});
    if (dead_) continue;  // sink mode: consume + credit, report nothing
    if (params_.reliable && f->head && f->ack_valid) {
      // The peer acks our (dest = f->src, seq = f->ack_seq) flow.
      auto it = tx_.find(flow_key(f->src, f->ack_seq));
      if (it != tx_.end()) {
        acked_++;
        tx_.erase(it);
      }
    }
    if (f->ctrl) continue;  // 1-flit ack carrier: never reported
    if (f->head) {
      FLOV_CHECK(pending_heads_.count(f->packet_id) == 0,
                 "duplicate head flit");
      pending_heads_[f->packet_id] = *f;
    }
    if (f->tail) {
      auto it = pending_heads_.find(f->packet_id);
      FLOV_CHECK(it != pending_heads_.end(), "tail without head");
      const Flit& head = it->second;
      if (params_.reliable && head.seq != 0) {
        schedule_ack(head.src, head.seq, now);
        if (already_delivered(head.src, head.seq)) {
          // Retransmitted copy of a packet we already reported: re-ack
          // (above) but suppress the duplicate delivery.
          dup_packets_++;
          pending_heads_.erase(it);
          continue;
        }
        mark_delivered(head.src, head.seq);
      }
      PacketRecord rec;
      rec.packet_id = head.packet_id;
      rec.src = head.src;
      rec.dest = head.dest;
      rec.vnet = head.vnet;
      rec.size_flits = head.packet_size;
      rec.gen_cycle = head.gen_cycle;
      rec.inject_cycle = head.inject_cycle;
      rec.eject_cycle = now;
      rec.router_hops = head.router_hops;
      rec.link_hops = head.link_hops;
      rec.flov_hops = head.flov_hops;
      rec.used_escape = head.escape || f->escape;
      rec.payload = head.payload;
      ejected_packets_++;
      pending_heads_.erase(it);
      FLOV_TRACE(telemetry::kTraceFlit,
                 telemetry::TraceEventType::kPacketEject, now, node_,
                 rec.packet_id, rec.total_latency());
      if (eject_cb_) eject_cb_(rec);
      for (const auto& cb : eject_observers_) cb(rec);
    }
  }
}

void NetworkInterface::inject(Cycle now) {
  // Promote one overdue pending ack to a standalone 1-flit control packet
  // (its piggyback window expired without a data packet to ride on).
  if (params_.reliable && !dead_ && !acks_.empty() &&
      acks_.front().due <= now) {
    const PendingAck a = acks_.front();
    acks_.pop_front();
    PacketDescriptor p;
    p.src = node_;
    p.dest = a.to;
    p.vnet = 0;
    p.size_flits = 1;
    p.gen_cycle = now;
    p.ctrl = true;
    p.ack_seq = a.seq;
    p.ack_valid = true;
    queue_.push_front(p);
    if (counters_) counters_->queued_packets++;
    acks_sent_++;
  }

  // Start a new stream if a regular VC of the packet's vnet is idle.
  if (!queue_.empty() && !stalled_ && !dead_) {
    const PacketDescriptor& pkt = queue_.front();
    const int base = pkt.vnet * params_.vcs_per_vnet;
    VcId chosen = -1;
    for (int w = 0; w < params_.vcs_per_vnet; ++w) {
      if (params_.escape_vc >= 0 && w == params_.escape_vc) continue;
      const VcId abs = base + w;
      if (!vc_busy_[abs]) {
        chosen = abs;
        break;
      }
    }
    if (chosen >= 0) {
      Stream s;
      s.pkt = pkt;
      s.packet_id = 1 + static_cast<std::uint64_t>(node_) +
                    next_packet_seq_++ *
                        static_cast<std::uint64_t>(params_.width) *
                        static_cast<std::uint64_t>(params_.height);
      s.next_flit = 0;
      s.inject_cycle = now;
      if (params_.reliable && !s.pkt.ctrl) {
        if (s.pkt.seq == 0) {
          // First transmission: allocate the flow's sequence number and
          // open its retransmit-buffer entry.
          s.pkt.seq = ++tx_next_seq_[s.pkt.dest];
          TxEntry e;
          e.pkt = s.pkt;
          tx_.emplace(flow_key(s.pkt.dest, s.pkt.seq), e);
          seq_allocated_++;
        }
        // else: retransmit copy — its entry exists with in_flight set.
      }
      vc_busy_[chosen] = true;
      streams_.emplace(chosen, s);
      queue_.pop_front();
      if (counters_) {
        counters_->queued_packets--;
        counters_->open_streams++;
      }
      FLOV_TRACE(telemetry::kTraceFlit,
                 telemetry::TraceEventType::kPacketInject, now, node_,
                 s.packet_id, s.pkt.dest);
    }
  }

  // Send one flit this cycle from one stream (round-robin across VCs).
  if (streams_.empty() || !to_router_) return;
  const int nvc = params_.total_vcs();
  for (int k = 0; k < nvc; ++k) {
    const VcId v = (rr_vc_ + k) % nvc;
    auto it = streams_.find(v);
    if (it == streams_.end()) continue;
    if (credits_[v] <= 0) continue;
    Stream& s = it->second;

    Flit f;
    f.packet_id = s.packet_id;
    f.flit_index = s.next_flit;
    f.packet_size = s.pkt.size_flits;
    f.head = (s.next_flit == 0);
    f.tail = (s.next_flit == s.pkt.size_flits - 1);
    f.src = s.pkt.src;
    f.dest = s.pkt.dest;
    f.vnet = s.pkt.vnet;
    f.gen_cycle = s.pkt.gen_cycle;
    f.inject_cycle = s.inject_cycle;
    f.vc = v;
    f.payload = s.pkt.payload;
    if (params_.reliable) {
      f.seq = s.pkt.seq;
      f.ctrl = s.pkt.ctrl;
      if (f.head) {
        if (s.pkt.ctrl) {
          f.ack_seq = s.pkt.ack_seq;
          f.ack_valid = true;
        } else if (!dead_) {
          // Piggyback one pending ack on a data head already going there.
          for (auto a = acks_.begin(); a != acks_.end(); ++a) {
            if (a->to != s.pkt.dest) continue;
            f.ack_seq = a->seq;
            f.ack_valid = true;
            acks_.erase(a);
            break;
          }
        }
      }
    }

    credits_[v]--;
    to_router_->send(now, f);
    injected_flits_++;
    if (counters_) counters_->injected_flits++;
    s.next_flit++;
    if (f.tail) {
      if (params_.reliable && !s.pkt.ctrl && s.pkt.seq != 0) {
        auto tx = tx_.find(flow_key(s.pkt.dest, s.pkt.seq));
        if (tx != tx_.end()) {  // absent after kill(): flow already dead
          if (tx->second.doomed) {
            declare_dead(tx->second, s.pkt.seq, now);
            tx_.erase(tx);
          } else {
            TxEntry& e = tx->second;
            e.in_flight = false;
            e.deadline = now + backoff_shift(params_.retx_timeout, e.retries,
                                             params_.retx_backoff_cap);
          }
        }
      }
      vc_busy_[v] = false;
      streams_.erase(it);
      if (counters_) counters_->open_streams--;
    }
    rr_vc_ = (v + 1) % nvc;
    break;
  }
}

}  // namespace flov
