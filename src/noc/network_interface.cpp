#include "noc/network_interface.hpp"

#include "common/log.hpp"
#include "telemetry/trace.hpp"

namespace flov {

NetworkInterface::NetworkInterface(NodeId node, const NocParams& params)
    : node_(node),
      params_(params),
      credits_(params.total_vcs(), params.buffer_depth),
      vc_busy_(params.total_vcs(), false) {}

void NetworkInterface::step(Cycle now) {
  // Credits returned by the router for previously injected flits.
  if (credit_from_) {
    for (const Credit& c : credit_from_->recv_all(now)) {
      credits_[c.vc]++;
      FLOV_DCHECK(credits_[c.vc] <= params_.buffer_depth, "NI credit overflow");
    }
  }
  eject(now);
  inject(now);
}

void NetworkInterface::eject(Cycle now) {
  if (!from_router_) return;
  while (auto f = from_router_->recv(now)) {
    ejected_flits_++;
    if (counters_) counters_->ejected_flits++;
    // The NI consumes instantly, so the slot frees immediately.
    FLOV_CHECK(credit_to_ != nullptr, "unwired ejection credit channel");
    credit_to_->send(now, Credit{f->vc});
    if (f->head) {
      FLOV_CHECK(pending_heads_.count(f->packet_id) == 0,
                 "duplicate head flit");
      pending_heads_[f->packet_id] = *f;
    }
    if (f->tail) {
      auto it = pending_heads_.find(f->packet_id);
      FLOV_CHECK(it != pending_heads_.end(), "tail without head");
      const Flit& head = it->second;
      PacketRecord rec;
      rec.packet_id = head.packet_id;
      rec.src = head.src;
      rec.dest = head.dest;
      rec.vnet = head.vnet;
      rec.size_flits = head.packet_size;
      rec.gen_cycle = head.gen_cycle;
      rec.inject_cycle = head.inject_cycle;
      rec.eject_cycle = now;
      rec.router_hops = head.router_hops;
      rec.link_hops = head.link_hops;
      rec.flov_hops = head.flov_hops;
      rec.used_escape = head.escape || f->escape;
      rec.payload = head.payload;
      ejected_packets_++;
      pending_heads_.erase(it);
      FLOV_TRACE(telemetry::kTraceFlit,
                 telemetry::TraceEventType::kPacketEject, now, node_,
                 rec.packet_id, rec.total_latency());
      if (eject_cb_) eject_cb_(rec);
      for (const auto& cb : eject_observers_) cb(rec);
    }
  }
}

void NetworkInterface::inject(Cycle now) {
  // Start a new stream if a regular VC of the packet's vnet is idle.
  if (!queue_.empty() && !stalled_) {
    const PacketDescriptor& pkt = queue_.front();
    const int base = pkt.vnet * params_.vcs_per_vnet;
    VcId chosen = -1;
    for (int w = 0; w < params_.vcs_per_vnet; ++w) {
      if (params_.escape_vc >= 0 && w == params_.escape_vc) continue;
      const VcId abs = base + w;
      if (!vc_busy_[abs]) {
        chosen = abs;
        break;
      }
    }
    if (chosen >= 0) {
      Stream s;
      s.pkt = pkt;
      s.packet_id = 1 + static_cast<std::uint64_t>(node_) +
                    next_packet_seq_++ *
                        static_cast<std::uint64_t>(params_.width) *
                        static_cast<std::uint64_t>(params_.height);
      s.next_flit = 0;
      s.inject_cycle = now;
      vc_busy_[chosen] = true;
      streams_.emplace(chosen, s);
      queue_.pop_front();
      if (counters_) {
        counters_->queued_packets--;
        counters_->open_streams++;
      }
      FLOV_TRACE(telemetry::kTraceFlit,
                 telemetry::TraceEventType::kPacketInject, now, node_,
                 s.packet_id, s.pkt.dest);
    }
  }

  // Send one flit this cycle from one stream (round-robin across VCs).
  if (streams_.empty() || !to_router_) return;
  const int nvc = params_.total_vcs();
  for (int k = 0; k < nvc; ++k) {
    const VcId v = (rr_vc_ + k) % nvc;
    auto it = streams_.find(v);
    if (it == streams_.end()) continue;
    if (credits_[v] <= 0) continue;
    Stream& s = it->second;

    Flit f;
    f.packet_id = s.packet_id;
    f.flit_index = s.next_flit;
    f.packet_size = s.pkt.size_flits;
    f.head = (s.next_flit == 0);
    f.tail = (s.next_flit == s.pkt.size_flits - 1);
    f.src = s.pkt.src;
    f.dest = s.pkt.dest;
    f.vnet = s.pkt.vnet;
    f.gen_cycle = s.pkt.gen_cycle;
    f.inject_cycle = s.inject_cycle;
    f.vc = v;
    f.payload = s.pkt.payload;

    credits_[v]--;
    to_router_->send(now, f);
    injected_flits_++;
    if (counters_) counters_->injected_flits++;
    s.next_flit++;
    if (f.tail) {
      vc_busy_[v] = false;
      streams_.erase(it);
      if (counters_) counters_->open_streams--;
    }
    rr_vc_ = (v + 1) % nvc;
    break;
  }
}

}  // namespace flov
