// Network configuration parameters (the paper's Table I defaults).
#pragma once

#include <string>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/types.hpp"

namespace flov {

struct NocParams {
  int width = 8;
  int height = 8;
  int num_vnets = 1;      ///< 1 for synthetic traffic, 3 for the CMP system
  int vcs_per_vnet = 4;   ///< 3 regular + 1 escape (Table I)
  int escape_vc = 3;      ///< per-vnet index of the escape VC; -1 = none
  int buffer_depth = 6;   ///< flits per VC (Table I)
  int packet_size = 4;    ///< flits per synthetic packet (Table I)
  Cycle link_latency = 1; ///< 1 mm, 1 cycle (Table I)
  Cycle deadlock_timeout = 128;  ///< head-of-line wait before escape VC
  /// Whether blocked packets may divert into the escape sub-network.
  /// Enabled for FLOV (Duato-style recovery); disabled for Baseline/RP,
  /// whose routing functions are inherently deadlock-free.
  bool enable_escape_diversion = true;
  Cycle wakeup_latency = 10;     ///< power-on delay (Table I)
  Cycle drain_idle_threshold = 16;  ///< local-port quiet time before drain
  /// How long a drain may stall before aborting back to Active (the
  /// deadlock-breaking engineering addition documented in PROTOCOL.md §2).
  Cycle drain_abort_timeout = 2048;
  /// Handshake-recovery knobs (PROTOCOL.md §7). A drainer/waker re-sends its
  /// DrainReq/WakeupNotify to partners whose DrainDone is overdue by
  /// `hs_retry_timeout` cycles, at most `hs_retry_limit` times (0 disables).
  Cycle hs_retry_timeout = 64;
  int hs_retry_limit = 8;
  /// A holder re-issues an unanswered WakeupTrigger after this many cycles
  /// (0 = single-shot trigger, the pre-recovery behaviour).
  Cycle trigger_retry_timeout = 128;
  /// Sleeping routers re-broadcast SleepNotify every this many cycles so a
  /// lost notification heals (0 = off; enable when injecting faults).
  Cycle sleep_reannounce_interval = 0;
  /// A stale output_blocked PSR flag is optimistically cleared after this
  /// many cycles without reinforcement (0 = off; enable with faults).
  Cycle psr_block_timeout = 0;
  /// Upper clamp of the packet-latency percentile histogram (1-cycle bins;
  /// latencies at or above this land in the top bin and are counted by the
  /// latency.hist_overflow metric). Raise it for congested / faulty runs
  /// where p99 saturates at the cap.
  Cycle latency_hist_max = 4096;
  /// End-to-end reliable delivery in the NI (PROTOCOL.md §8): per-flow
  /// sequence numbers, a retransmit buffer with capped exponential backoff,
  /// and 1-flit ack control packets. Off by default — the fault-free
  /// schemes need none of it and the knob must not perturb existing runs.
  bool reliable = false;
  /// Base retransmit timeout, measured from the cycle the tail flit left
  /// the source queue. The n-th retry waits timeout << min(n,
  /// retx_backoff_cap) cycles.
  Cycle retx_timeout = 512;
  int retx_backoff_cap = 3;
  /// Retries before a packet is declared dead and surfaced as a structured
  /// incident (rather than hanging the drain loop forever).
  int retx_limit = 4;
  /// Grace period before a pending ack is promoted to a standalone 1-flit
  /// control packet; within it the ack may piggyback on a data head flit
  /// already headed to the same node.
  Cycle ack_delay = 8;
  /// Worker threads for intra-run domain-parallel stepping (1 = serial).
  /// The mesh is split into rectangular tile domains stepped under a
  /// per-cycle barrier; results are bit-identical to step_threads=1 by
  /// construction (docs/PERFORMANCE.md, "The lookahead invariant"), so this
  /// is a purely volatile knob — run manifests treat it like `jobs`.
  int step_threads = 1;
  /// Explicit tile-grid decomposition: the mesh splits into
  /// step_tiles_x x step_tiles_y rectangular domains. 0 (both) = auto: row
  /// bands up to `height`, then extra columns when step_threads exceeds the
  /// row count. Like step_threads, purely volatile — any tiling is
  /// bit-identical to serial, so manifests exclude it.
  int step_tiles_x = 0;
  int step_tiles_y = 0;
  /// Worker PROCESSES for multi-process stepping (1 = single process).
  /// The tile domains are partitioned into step_procs contiguous ranges;
  /// the parent steps range 0 and forks a worker per remaining range, all
  /// sharing the system state through a MAP_SHARED arena under a per-cycle
  /// futex barrier (docs/PERFORMANCE.md, "Multi-process stepping"). Each
  /// process still runs its own step_threads pool, so the effective
  /// parallelism is step_procs x step_threads. Volatile like step_threads:
  /// manifests are byte-identical across any procs/threads/tiles choice.
  int step_procs = 1;

  /// Applies the CLI shorthand `tiles=TXxTY` (e.g. "2x4" = 2 tile columns
  /// x 4 tile rows) to step_tiles_x/step_tiles_y. Empty string = no-op, so
  /// callers can pass cfg.get_string("tiles", "") unconditionally.
  void apply_tiles_shorthand(const std::string& s) {
    if (s.empty()) return;
    const std::size_t sep = s.find('x');
    FLOV_CHECK(sep != std::string::npos && sep > 0 && sep + 1 < s.size(),
               "tiles= expects TXxTY, e.g. tiles=2x4");
    step_tiles_x = std::stoi(s.substr(0, sep));
    step_tiles_y = std::stoi(s.substr(sep + 1));
    FLOV_CHECK(step_tiles_x >= 1 && step_tiles_y >= 1,
               "tiles= components must be >= 1");
  }

  int total_vcs() const { return num_vnets * vcs_per_vnet; }
  int vnet_of_vc(VcId vc) const { return vc / vcs_per_vnet; }
  int vc_in_vnet(VcId vc) const { return vc % vcs_per_vnet; }
  bool is_escape_vc(VcId vc) const {
    return escape_vc >= 0 && vc_in_vnet(vc) == escape_vc;
  }

  static NocParams from_config(const Config& cfg) {
    NocParams p;
    p.width = static_cast<int>(cfg.get_int("noc.width", p.width));
    p.height = static_cast<int>(cfg.get_int("noc.height", p.height));
    p.num_vnets = static_cast<int>(cfg.get_int("noc.num_vnets", p.num_vnets));
    p.vcs_per_vnet =
        static_cast<int>(cfg.get_int("noc.vcs_per_vnet", p.vcs_per_vnet));
    p.escape_vc = static_cast<int>(cfg.get_int("noc.escape_vc", p.escape_vc));
    p.buffer_depth =
        static_cast<int>(cfg.get_int("noc.buffer_depth", p.buffer_depth));
    p.packet_size =
        static_cast<int>(cfg.get_int("noc.packet_size", p.packet_size));
    p.link_latency = cfg.get_int("noc.link_latency", p.link_latency);
    p.deadlock_timeout =
        cfg.get_int("noc.deadlock_timeout", p.deadlock_timeout);
    p.enable_escape_diversion = cfg.get_bool("noc.enable_escape_diversion",
                                             p.enable_escape_diversion);
    p.wakeup_latency = cfg.get_int("noc.wakeup_latency", p.wakeup_latency);
    p.drain_idle_threshold =
        cfg.get_int("noc.drain_idle_threshold", p.drain_idle_threshold);
    p.drain_abort_timeout =
        cfg.get_int("noc.drain_abort_timeout", p.drain_abort_timeout);
    p.hs_retry_timeout = cfg.get_int("noc.hs_retry_timeout", p.hs_retry_timeout);
    p.hs_retry_limit =
        static_cast<int>(cfg.get_int("noc.hs_retry_limit", p.hs_retry_limit));
    p.trigger_retry_timeout =
        cfg.get_int("noc.trigger_retry_timeout", p.trigger_retry_timeout);
    p.sleep_reannounce_interval = cfg.get_int("noc.sleep_reannounce_interval",
                                              p.sleep_reannounce_interval);
    p.psr_block_timeout =
        cfg.get_int("noc.psr_block_timeout", p.psr_block_timeout);
    p.latency_hist_max =
        cfg.get_int("noc.latency_hist_max", p.latency_hist_max);
    p.reliable = cfg.get_bool("noc.reliable", p.reliable);
    p.retx_timeout = cfg.get_int("noc.retx_timeout", p.retx_timeout);
    p.retx_backoff_cap =
        static_cast<int>(cfg.get_int("noc.retx_backoff_cap", p.retx_backoff_cap));
    p.retx_limit = static_cast<int>(cfg.get_int("noc.retx_limit", p.retx_limit));
    p.ack_delay = cfg.get_int("noc.ack_delay", p.ack_delay);
    p.step_threads =
        static_cast<int>(cfg.get_int("noc.step_threads", p.step_threads));
    p.step_tiles_x =
        static_cast<int>(cfg.get_int("noc.step_tiles_x", p.step_tiles_x));
    p.step_tiles_y =
        static_cast<int>(cfg.get_int("noc.step_tiles_y", p.step_tiles_y));
    p.step_procs =
        static_cast<int>(cfg.get_int("noc.step_procs", p.step_procs));
    p.validate();
    return p;
  }

  void validate() const {
    FLOV_CHECK(width >= 2 && height >= 2, "mesh must be at least 2x2");
    FLOV_CHECK(num_vnets >= 1, "need at least one vnet");
    FLOV_CHECK(vcs_per_vnet >= 1, "need at least one VC per vnet");
    FLOV_CHECK(escape_vc < vcs_per_vnet, "escape VC out of range");
    FLOV_CHECK(buffer_depth >= 1, "buffer depth must be positive");
    FLOV_CHECK(packet_size >= 1, "packet size must be positive");
    FLOV_CHECK(latency_hist_max >= 1, "latency histogram cap must be >= 1");
    FLOV_CHECK(step_threads >= 1, "step_threads must be >= 1");
    FLOV_CHECK(step_tiles_x >= 0 && step_tiles_y >= 0,
               "step_tiles must be >= 0 (0 = auto)");
    FLOV_CHECK(step_procs >= 1, "step_procs must be >= 1");
    FLOV_CHECK(retx_timeout >= 1, "retransmit timeout must be >= 1 cycle");
    FLOV_CHECK(retx_backoff_cap >= 0 && retx_backoff_cap < 32,
               "retransmit backoff cap out of range");
    FLOV_CHECK(retx_limit >= 0, "retransmit limit must be >= 0");
  }
};

}  // namespace flov
