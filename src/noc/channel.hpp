// Fixed-latency pipelined channel.
//
// Models a wire/link: items sent during cycle t become visible to the
// receiver at t + latency. Because receivers only ever poll items with
// arrival <= current cycle and senders always tag arrival >= current+1,
// the per-cycle component update order does not affect results.
#pragma once

#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace flov {

template <typename T>
class Channel {
 public:
  explicit Channel(Cycle latency = 1) : latency_(latency) {
    FLOV_CHECK(latency >= 1, "channel latency must be >= 1");
  }

  Cycle latency() const { return latency_; }

  /// Enqueues an item during cycle `now`; it arrives at now + latency.
  void send(Cycle now, T item) {
    FLOV_DCHECK(queue_.empty() || queue_.back().first <= now + latency_,
                "channel send out of order");
    queue_.emplace_back(now + latency_, std::move(item));
  }

  /// Pops the single item arriving at or before `now`, if any.
  std::optional<T> recv(Cycle now) {
    if (queue_.empty() || queue_.front().first > now) return std::nullopt;
    T item = std::move(queue_.front().second);
    queue_.pop_front();
    return item;
  }

  /// Pops every item arriving at or before `now` (credit channels can carry
  /// several credits per cycle during relay bursts).
  std::vector<T> recv_all(Cycle now) {
    std::vector<T> out;
    while (!queue_.empty() && queue_.front().first <= now) {
      out.push_back(std::move(queue_.front().second));
      queue_.pop_front();
    }
    return out;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t in_flight() const { return queue_.size(); }

  /// Drops everything in flight (used by the credit-ownership handover at
  /// FLOV power-state transitions; see flov/ documentation).
  void clear() { queue_.clear(); }

  /// Visits every in-flight item (read-only); used by the FLOV credit
  /// handover to account for flits still on the wire.
  template <typename F>
  void for_each_in_flight(F&& f) const {
    for (const auto& [cycle, item] : queue_) f(item);
  }

 private:
  Cycle latency_;
  std::deque<std::pair<Cycle, T>> queue_;
};

}  // namespace flov
