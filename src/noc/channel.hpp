// Fixed-latency pipelined channel.
//
// Models a wire/link: items sent during cycle t become visible to the
// receiver at t + latency. Because receivers only ever poll items with
// arrival <= current cycle and senders always tag arrival >= current+1,
// the per-cycle component update order does not affect results. That same
// >= 1-cycle lookahead is what makes domain-parallel stepping bit-identical
// to serial (docs/PERFORMANCE.md, "The lookahead invariant"): a channel
// crossing a domain boundary runs in staging mode, where sends land in a
// sender-private buffer that the barrier merges into the visible queue
// before any receiver could legally observe them. Under multi-process
// stepping (noc.step_procs, docs/PERFORMANCE.md "Multi-process stepping")
// the exact same staging carries traffic BETWEEN processes: the whole
// network lives in one shared-memory arena, a boundary channel's staging
// buffer is written by whichever process owns the sending domain, and the
// parent performs the identical merge after the cross-process barrier —
// so cross-process transport needs no serialization layer at all.
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "noc/active_set.hpp"

namespace flov {

template <typename T>
class Channel {
 public:
  explicit Channel(Cycle latency = 1) : latency_(latency) {
    FLOV_CHECK(latency >= 1, "channel latency must be >= 1");
  }

  Cycle latency() const { return latency_; }

  /// Fault hook (fault-injection subsystem): consulted once per send with
  /// the send cycle; returns the extra delivery delay, or nullopt to drop
  /// the item on the wire. The item is mutable so soft-error models can
  /// flip payload bits in transit (the channel has already taken its copy —
  /// the sender's original is untouched). Unset on fault-free channels,
  /// keeping send() hook-free and cheap.
  using FaultHook = std::function<std::optional<Cycle>(Cycle, T&)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Active-set hook: every send re-arms the receiving component's liveness
  /// flag so Network::step knows it has (future) work. A single store per
  /// send; unset channels (unit tests) skip it. For boundary channels the
  /// list is the sending domain's private wake stage, so the mark itself
  /// never races.
  void set_wake_target(WakeList* list, int index) {
    wake_list_ = list;
    wake_index_ = index;
  }

  /// Staging mode (domain-parallel stepping): sends append to a
  /// sender-private buffer instead of the receiver-visible queue;
  /// merge_staged() publishes them at the barrier. Only the single sender
  /// touches staged_ during the parallel phase, so no locks are needed.
  void set_staging(bool on) { staging_ = on; }

  /// Moves staged sends into the visible queue (barrier only; single
  /// sender means staged order == serial send order).
  void merge_staged() {
    for (auto& e : staged_) queue_.push_back(std::move(e));
    staged_.clear();
  }

  /// Enqueues an item during cycle `now`; it arrives at now + latency.
  void send(Cycle now, T item) {
    if (wake_list_) wake_list_->mark(wake_index_);
    Cycle arrival = now + latency_;
    if (fault_hook_) {
      const std::optional<Cycle> fate = fault_hook_(now, item);
      if (!fate.has_value()) return;  // dropped on the wire
      arrival += *fate;
      // A delayed item must not reorder the wire or let two items become
      // deliverable on the same cycle (single-recv consumers — the FLOV
      // bypass latches — rely on >= 1-cycle spacing). The clamp keys off
      // the last *sent* arrival, not the queue back: with staging on, the
      // most recent send may still be in staged_, and a consumed item can
      // never clamp anyway (consumers only pop arrivals <= now < arrival).
      if (have_sent_ && arrival <= last_arrival_) {
        arrival = last_arrival_ + 1;
      }
    }
    FLOV_DCHECK(!have_sent_ || last_arrival_ <= arrival,
                "channel send out of order");
    last_arrival_ = arrival;
    have_sent_ = true;
    if (staging_) {
      staged_.emplace_back(arrival, std::move(item));
    } else {
      queue_.emplace_back(arrival, std::move(item));
    }
  }

  /// Pops the single item arriving at or before `now`, if any.
  std::optional<T> recv(Cycle now) {
    if (queue_.empty() || queue_.front().first > now) return std::nullopt;
    T item = std::move(queue_.front().second);
    queue_.pop_front();
    return item;
  }

  /// Pops every item arriving at or before `now` (credit channels can carry
  /// several credits per cycle during relay bursts). Returns a reference to
  /// an internal scratch buffer that is reused across calls — no per-call
  /// allocation on the hot path; the reference is invalidated by the next
  /// recv_all on the same channel.
  const std::vector<T>& recv_all(Cycle now) {
    scratch_.clear();
    while (!queue_.empty() && queue_.front().first <= now) {
      scratch_.push_back(std::move(queue_.front().second));
      queue_.pop_front();
    }
    return scratch_;
  }

  // Receiver-side views: deliberately queue-only. During the parallel
  // phase staged_ belongs to the sender's worker (reading it here would
  // race AND make a receiver's quiescent check depend on worker timing);
  // outside the parallel phase staged_ is always empty (merged at the
  // barrier), so external walks see exactly what serial runs see.
  bool empty() const { return queue_.empty(); }
  std::size_t in_flight() const { return queue_.size(); }

  /// Drops everything in flight (used by the credit-ownership handover at
  /// FLOV power-state transitions; see flov/ documentation). Production
  /// code only clears CREDIT channels: clearing a flit channel would desync
  /// the cached in-network flit counters (tests that simulate unaccounted
  /// loss this way must not touch the cached getters afterwards).
  void clear() {
    queue_.clear();
    staged_.clear();
    have_sent_ = false;
  }

  /// Visits every in-flight item (read-only); used by the FLOV credit
  /// handover to account for flits still on the wire. Control-plane only
  /// (runs between barriers, when staged_ is empty).
  template <typename F>
  void for_each_in_flight(F&& f) const {
    for (const auto& [cycle, item] : queue_) f(item);
  }

 private:
  Cycle latency_;
  RingBuffer<std::pair<Cycle, T>> queue_;
  std::vector<std::pair<Cycle, T>> staged_;  ///< sender-private (parallel)
  std::vector<T> scratch_;  ///< recv_all reuse buffer (keeps its capacity)
  FaultHook fault_hook_;
  WakeList* wake_list_ = nullptr;
  int wake_index_ = -1;
  Cycle last_arrival_ = 0;   ///< arrival tag of the most recent send
  bool have_sent_ = false;
  bool staging_ = false;
};

}  // namespace flov
