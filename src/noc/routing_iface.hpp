// Routing-function interface.
//
// Route computation runs only in powered-on routers (power-gated routers
// forward flits straight through without re-routing). A routing function
// sees the flit, the port it arrived on, and the router's local
// NeighborhoodView — never global network state, matching the paper's
// distributed-information constraint (RP's table routing is the exception:
// its tables are *distributed to* routers by the centralized FM).
#pragma once

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"
#include "noc/power_state.hpp"

namespace flov {

struct RouteContext {
  NodeId current = kInvalidNode;
  Direction in_dir = Direction::Local;  ///< port the flit arrived on
  const NeighborhoodView* view = nullptr;
};

struct RouteDecision {
  Direction out = Direction::Local;
  bool escape = false;  ///< request the escape VC class downstream
};

class RoutingFunction {
 public:
  virtual ~RoutingFunction() = default;

  /// Route a head flit in the regular VCs.
  virtual RouteDecision route(const RouteContext& ctx, const Flit& flit) = 0;

  /// Route a head flit in (or being diverted into) the escape sub-network.
  /// Default: same as the regular function (for inherently deadlock-free
  /// functions that never use the escape network).
  virtual RouteDecision escape_route(const RouteContext& ctx,
                                     const Flit& flit) {
    return route(ctx, flit);
  }

  /// Lets the routing function rewrite per-flit routing state (RP stamps
  /// the up*/down* phase bit here). Called when the decision is applied.
  virtual void annotate(const RouteContext& /*ctx*/,
                        const RouteDecision& /*decision*/, Flit& /*flit*/) {}
};

}  // namespace flov
