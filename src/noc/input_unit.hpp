// Input-side per-VC state of a router port.
//
// Pipeline stages move a VC through: kIdle -> (head arrives) kRouting ->
// (RC) kWaitVc -> (VA) kActive -> ... -> (tail ST) kIdle. `stage_ready`
// enforces at least one cycle per pipeline stage.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"

namespace flov {

enum class VcState : std::uint8_t {
  kIdle = 0,   ///< no packet resident
  kRouting,    ///< head buffered, awaiting route computation
  kWaitVc,     ///< route known, awaiting an output VC (VA stage)
  kActive,     ///< output VC held; flits compete for the switch (SA stage)
};

struct InputVc {
  RingBuffer<Flit> buffer;
  VcState state = VcState::kIdle;

  /// Earliest cycle the next pipeline stage may execute.
  Cycle stage_ready = 0;

  // --- route decision (valid from kWaitVc) ---
  Direction out_dir = Direction::Local;
  bool escape_route = false;  ///< request the escape VC class downstream

  /// Granted output VC (absolute index at out_dir), valid in kActive.
  VcId out_vc = -1;

  /// Cycle of the last forward progress; used for the deadlock-recovery
  /// timeout (Section V).
  Cycle wait_since = 0;

  /// True once any flit of the resident packet has been sent downstream
  /// (the packet can no longer be re-routed to the escape sub-network).
  bool sent_any = false;

  bool empty() const { return buffer.empty(); }
  int occupancy() const { return static_cast<int>(buffer.size()); }

  void reset_to_idle() {
    state = VcState::kIdle;
    out_vc = -1;
    escape_route = false;
    sent_any = false;
  }
};

/// One router input port: `depth`-deep buffers for every VC. The records
/// live in the mesh-wide SoA slab (noc/hot_state.hpp); the port is a view
/// over its slice.
struct InputPort {
  Span<InputVc> vcs;

  bool all_empty() const {
    for (const auto& vc : vcs) {
      if (!vc.buffer.empty()) return false;
    }
    return true;
  }

  /// Free buffer slots per VC (used by the FLOV credit-copy handover).
  /// Fills a caller-provided scratch buffer — callers on per-cycle paths
  /// keep a reusable vector so this never allocates in steady state.
  void free_slots(int depth, std::vector<int>& out) const {
    out.resize(static_cast<std::size_t>(vcs.size()));
    for (std::int32_t v = 0; v < vcs.size(); ++v) {
      out[static_cast<std::size_t>(v)] = depth - vcs[v].occupancy();
    }
  }
};

}  // namespace flov
