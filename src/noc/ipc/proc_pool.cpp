#include "noc/ipc/proc_pool.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__linux__)
#include <poll.h>
#include <sys/prctl.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>
#endif

#include "common/log.hpp"
#include "noc/ipc/futex.hpp"
#include "noc/ipc/shm_arena.hpp"
#include "telemetry/trace.hpp"

namespace flov::ipc {

namespace {

/// Children spin only briefly before parking on the epoch futex. The spin
/// count is deliberately tiny compared to StepPool's: worker PROCESSES
/// compete with the parent for cores (they are not a thread pool the OS
/// can gang-schedule), and on a loaded or single-core host a spinning
/// child starves exactly the process it is waiting for.
constexpr int kChildSpin = 64;
constexpr int kParentSpin = 4096;

std::uint64_t mono_ns() {
#if defined(__linux__)
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

/// Wrap-safe "done has reached epoch" (epochs are 32-bit futex words).
bool reached(std::uint32_t done, std::uint32_t epoch) {
  return static_cast<std::int32_t>(done - epoch) >= 0;
}

}  // namespace

ProcPool::ProcPool(int workers, std::function<void(int, Cycle)> job)
    : job_(std::move(job)), workers_(workers) {
  FLOV_CHECK(workers_ >= 1, "ProcPool needs at least one worker");
  ShmArena* arena = thread_arena();
  FLOV_CHECK(arena != nullptr,
             "ProcPool requires a bound shared arena (noc.step_procs > 1 "
             "must allocate the system inside ShmArenaScope)");
  barrier_timeout_ns_ = 10ull * 1000 * 1000 * 1000;
  if (const char* env = std::getenv("FLYOVER_BARRIER_TIMEOUT_MS")) {
    const unsigned long ms = std::strtoul(env, nullptr, 10);
    if (ms > 0) barrier_timeout_ns_ = static_cast<std::uint64_t>(ms) * 1000000;
  }
  // One arena block: the control header followed by the per-worker cells
  // (Ctl is cache-line sized/aligned, so the cells stay 64-aligned).
  void* mem = arena->allocate(
      sizeof(Ctl) + static_cast<std::size_t>(workers_) * sizeof(WorkerCell),
      64);
  ctl_ = new (mem) Ctl();
  cells_ = reinterpret_cast<WorkerCell*>(static_cast<unsigned char*>(mem) +
                                         sizeof(Ctl));
  for (int i = 0; i < workers_; ++i) new (&cells_[i]) WorkerCell();

  folded_busy_.reset(new std::atomic<std::uint64_t>[workers_ + 1]);
  for (int i = 0; i <= workers_; ++i) {
    folded_busy_[i].store(0, std::memory_order_relaxed);
  }

  if (const char* env = std::getenv("FLYOVER_TEST_KILL_WORKER")) {
    // "index:epoch" — worker `index` exits with code 42 at the start of
    // `epoch` (1-based, matching run_cycle's post-increment value).
    int idx = -1;
    unsigned long ep = 0;
    if (std::sscanf(env, "%d:%lu", &idx, &ep) == 2) {
      kill_worker_ = idx;
      kill_epoch_ = static_cast<std::uint32_t>(ep);
    }
    // One-shot: a pool respawned after recovery restarts its epochs at 0
    // and must not re-arm the same kill, or recovery would loop forever.
#if defined(__linux__)
    ::unsetenv("FLYOVER_TEST_KILL_WORKER");
#endif
  }
  if (const char* env = std::getenv("FLYOVER_TEST_KILL_IN_ALLOC")) {
    // "index:epoch" — worker `index` dies at the start of `epoch` while
    // HOLDING the arena allocator futex, exercising the owner-death seize
    // + audit path in every surviving process.
    int idx = -1;
    unsigned long ep = 0;
    if (std::sscanf(env, "%d:%lu", &idx, &ep) == 2) {
      kill_alloc_worker_ = idx;
      kill_alloc_epoch_ = static_cast<std::uint32_t>(ep);
    }
#if defined(__linux__)
    ::unsetenv("FLYOVER_TEST_KILL_IN_ALLOC");
#endif
  }

#if defined(__linux__)
  const pid_t parent = ::getpid();
  pids_.reserve(static_cast<std::size_t>(workers_));
  reaped_.assign(static_cast<std::size_t>(workers_), false);
  for (int i = 0; i < workers_; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // An exception, not FLOV_CHECK: the recovery path retries with a
      // smaller pool, so running out of processes mid-respawn must be
      // recoverable. Tear down what was already forked first.
      workers_ = i;  // only [0, i) exist
      kill_workers();
      if (ShmArena* a = arena_of(ctl_)) a->deallocate(ctl_);
      ctl_ = nullptr;
      throw std::runtime_error("fork of a stepping worker failed");
    }
    if (pid == 0) child_loop(i, static_cast<long>(parent));
    pids_.push_back(pid);
  }
  start_monitor();
#else
  FLOV_CHECK(false,
             "multi-process stepping (noc.step_procs > 1) is Linux-only");
#endif
}

ProcPool::~ProcPool() {
#if defined(__linux__)
  if (!killed_) {
    ctl_->stop.store(1, std::memory_order_seq_cst);
    ctl_->epoch.fetch_add(1, std::memory_order_seq_cst);
    wake_workers();
    for (int i = 0; i < workers_; ++i) {
      if (reaped_[static_cast<std::size_t>(i)]) continue;
      int st = 0;
      ::waitpid(static_cast<pid_t>(pids_[static_cast<std::size_t>(i)]), &st,
                0);
    }
  }
  stop_monitor();
#endif
  // The Ctl/cells block is arena memory; freeing it is optional (the arena
  // unmaps wholesale) but keeps long sweeps from leaking a block per point.
  if (ctl_ != nullptr) {
    if (ShmArena* a = arena_of(ctl_)) {
      a->deallocate(ctl_);
    }
  }
}

void ProcPool::kill_workers() {
#if defined(__linux__)
  for (int i = 0; i < workers_; ++i) {
    if (reaped_[static_cast<std::size_t>(i)]) continue;
    ::kill(static_cast<pid_t>(pids_[static_cast<std::size_t>(i)]), SIGKILL);
  }
  for (int i = 0; i < workers_; ++i) {
    if (reaped_[static_cast<std::size_t>(i)]) continue;
    int st = 0;
    ::waitpid(static_cast<pid_t>(pids_[static_cast<std::size_t>(i)]), &st, 0);
    reaped_[static_cast<std::size_t>(i)] = true;
  }
  stop_monitor();
#endif
  killed_ = true;
}

void ProcPool::start_monitor() {
#if defined(__linux__) && defined(SYS_pidfd_open)
  pidfds_.reserve(pids_.size());
  for (long pid : pids_) {
    const long fd = ::syscall(SYS_pidfd_open, static_cast<pid_t>(pid), 0);
    if (fd < 0) {
      // ENOSYS (pre-5.3) or fd pressure: fall back to the waitpid sweep.
      for (int f : pidfds_) ::close(f);
      pidfds_.clear();
      return;
    }
    pidfds_.push_back(static_cast<int>(fd));
  }
  if (::pipe(monitor_pipe_) != 0) {
    for (int f : pidfds_) ::close(f);
    pidfds_.clear();
    return;
  }
  monitor_active_ = true;
  monitor_ = std::thread([this] { monitor_loop(); });
#endif
}

void ProcPool::stop_monitor() {
#if defined(__linux__)
  if (monitor_.joinable()) {
    const char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(monitor_pipe_[1], &byte, 1);
    monitor_.join();
  }
  monitor_active_ = false;
  for (int f : pidfds_) ::close(f);
  pidfds_.clear();
  if (monitor_pipe_[0] != -1) ::close(monitor_pipe_[0]);
  if (monitor_pipe_[1] != -1) ::close(monitor_pipe_[1]);
  monitor_pipe_[0] = monitor_pipe_[1] = -1;
#endif
}

void ProcPool::monitor_loop() {
#if defined(__linux__)
  // One pollfd per child pidfd plus the shutdown pipe. A pidfd becomes
  // readable when its process exits — no timer, no signals, no reaping
  // here (the parent's waitpid sweep keeps sole ownership of child
  // status). One death is enough: flag it, kick the parked barrier, and
  // retire; the barrier's own sweep handles any further deaths.
  std::vector<struct pollfd> fds;
  fds.push_back({monitor_pipe_[0], POLLIN, 0});
  for (int f : pidfds_) fds.push_back({f, POLLIN, 0});
  for (;;) {
    const int r = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) return;  // shutdown
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents != 0) {
        child_died_.store(true, std::memory_order_seq_cst);
        for (int w = 0; w < workers_; ++w) futex_wake(&cells_[w].done, 1);
        return;
      }
    }
  }
#endif
}

void ProcPool::wake_workers() {
  futex_wake(&ctl_->epoch, workers_);
}

void ProcPool::check_children(std::uint32_t epoch) {
#if defined(__linux__)
  for (int i = 0; i < workers_; ++i) {
    if (reaped_[static_cast<std::size_t>(i)]) continue;
    int st = 0;
    const pid_t r = ::waitpid(
        static_cast<pid_t>(pids_[static_cast<std::size_t>(i)]), &st, WNOHANG);
    if (r > 0) {
      reaped_[static_cast<std::size_t>(i)] = true;
      std::string what = "stepping worker " + std::to_string(i) +
                         " (proc " + std::to_string(i + 1) + ") ";
      if (WIFSIGNALED(st)) {
        what += "killed by signal " + std::to_string(WTERMSIG(st));
      } else {
        what += "exited with status " + std::to_string(WEXITSTATUS(st));
      }
      what += " before finishing cycle epoch " + std::to_string(epoch);
      throw WorkerLost(i, st, what);
    }
  }
#else
  (void)epoch;
#endif
}

void ProcPool::wait_done(int i, std::uint32_t epoch) {
  WorkerCell& cell = cells_[i];
  const std::uint64_t start = mono_ns();
  for (;;) {
    for (int spin = 0; spin < kParentSpin; ++spin) {
      if (reached(cell.done.load(std::memory_order_acquire), epoch)) return;
    }
    // Park on the done word. The waiting flag tells the child a wake is
    // wanted; the Dekker-shaped store-then-load pair runs seq_cst on both
    // sides, and the bounded wait plus the death checks mean even a lost
    // wake or a dead child costs one timeout, never a hang.
    cell.parent_waiting.store(1, std::memory_order_seq_cst);
    const std::uint32_t d = cell.done.load(std::memory_order_seq_cst);
    if (reached(d, epoch)) {
      cell.parent_waiting.store(0, std::memory_order_relaxed);
      return;
    }
#if defined(__linux__)
    // With the pidfd monitor armed a child death wakes this park directly,
    // so it can be long; without it the short park doubles as the death
    // poll timer.
    const long park_ms = monitor_active_ ? 500 : 20;
    struct timespec ts {0, park_ms * 1000 * 1000};
    futex_wait(&cell.done, d, &ts);
#endif
    cell.parent_waiting.store(0, std::memory_order_relaxed);
    check_children(epoch);
    const std::uint64_t waited = mono_ns() - start;
    if (waited > barrier_timeout_ns_) {
      // Alive but wedged (deadlocked allocator, livelock, SIGSTOP...):
      // treat exactly like death so the run can recover or abort cleanly.
      throw WorkerLost(
          i, 0,
          "stepping worker " + std::to_string(i) + " (proc " +
              std::to_string(i + 1) + ") missed the cycle barrier for " +
              std::to_string(waited / 1000000) +
              " ms at epoch " + std::to_string(epoch) +
              " (wedged); treating as lost");
    }
  }
}

void ProcPool::fold_status() {
  WorkerEvent ev;
  for (int i = 0; i < workers_; ++i) {
    while (cells_[i].ring.try_pop(&ev)) {
      folded_busy_[i + 1].fetch_add(ev.busy_ns, std::memory_order_relaxed);
    }
  }
}

std::vector<std::uint64_t> ProcPool::busy_ns() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(workers_) + 1);
  for (int i = 0; i <= workers_; ++i) {
    out[static_cast<std::size_t>(i)] =
        folded_busy_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double ProcPool::busy_imbalance() const {
  std::uint64_t lo = 0, hi = 0;
  for (int i = 0; i <= workers_; ++i) {
    const std::uint64_t b = folded_busy_[i].load(std::memory_order_relaxed);
    if (b == 0) continue;
    if (lo == 0 || b < lo) lo = b;
    if (b > hi) hi = b;
  }
  if (lo == 0) return 1.0;
  return static_cast<double>(hi) / static_cast<double>(lo);
}

void ProcPool::child_loop(int index, long parent_pid) {
#if defined(__linux__)
  // Die with the parent rather than orphan-spinning on a dead barrier.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  // PDEATHSIG only fires for deaths AFTER it is installed: if the parent
  // died in the fork()-to-prctl() window this child is already reparented
  // (to init or a subreaper) and would orphan-spin forever. Compare the
  // live parent against the pre-fork pid and bail if it changed.
  if (static_cast<long>(::getppid()) != parent_pid) std::_Exit(1);
  // fork() copied the parent thread's TLS, including any bound profiler /
  // tracer — parent-private heap objects this child must never write to
  // (a stale copy-on-write snapshot at best, out-of-range after the
  // parent grows them at worst). Children step silently; their busy time
  // travels through the status ring instead.
  telemetry::thread_profile_state() = telemetry::ThreadProfileState{};
#if defined(FLYOVER_TRACING) && FLYOVER_TRACING
  telemetry::thread_trace_state() = telemetry::ThreadTraceState{};
#endif
  WorkerCell& cell = cells_[index];
  std::uint32_t seen = 0;
  std::uint64_t pending_busy = 0;
  for (;;) {
    std::uint32_t e = ctl_->epoch.load(std::memory_order_acquire);
    while (e == seen) {
      for (int spin = 0; spin < kChildSpin && e == seen; ++spin) {
        e = ctl_->epoch.load(std::memory_order_acquire);
      }
      if (e != seen) break;
      ctl_->sleepers.fetch_add(1, std::memory_order_seq_cst);
      e = ctl_->epoch.load(std::memory_order_seq_cst);
      if (e == seen) {
        // Bounded so a lost wake degrades to a 50ms hiccup, not a hang.
        struct timespec ts {0, 50 * 1000 * 1000};
        futex_wait(&ctl_->epoch, seen, &ts);
        e = ctl_->epoch.load(std::memory_order_acquire);
      }
      ctl_->sleepers.fetch_sub(1, std::memory_order_seq_cst);
    }
    seen = e;
    if (ctl_->stop.load(std::memory_order_seq_cst) != 0) {
      // _Exit: never run destructors on inherited parent state (and leave
      // the child's private StepPool threads to the kernel).
      std::_Exit(0);
    }
    if (index == kill_worker_ && seen == kill_epoch_) std::_Exit(42);
    if (index == kill_alloc_worker_ && seen == kill_alloc_epoch_) {
      // Die HOLDING the allocator futex: the worst-case death. Survivors
      // must seize the lock, audit, and either heal or poison — never hang.
      if (ShmArena* a = thread_arena()) a->lock_for_test();
      std::_Exit(44);
    }
    const std::uint64_t t0 = mono_ns();
    try {
      job_(index, ctl_->now);
    } catch (const ArenaPoisoned&) {
      std::_Exit(43);  // quarantined arena: die fast, parent recovers
    } catch (...) {
      std::_Exit(45);  // never unwind into inherited parent state
    }
    pending_busy += mono_ns() - t0;
    WorkerEvent ev{seen, 0, pending_busy};
    if (cell.ring.try_push(ev)) pending_busy = 0;  // else coalesce next epoch
    cell.done.store(seen, std::memory_order_seq_cst);
    if (cell.parent_waiting.load(std::memory_order_seq_cst) != 0) {
      futex_wake(&cell.done, 1);
    }
  }
#else
  (void)index;
  (void)parent_pid;
  std::_Exit(1);
#endif
}

}  // namespace flov::ipc
