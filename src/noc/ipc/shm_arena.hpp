// Cross-process shared-memory arena: the transport layer of multi-process
// stepping (noc.step_procs > 1; docs/PERFORMANCE.md, "Multi-process
// stepping").
//
// The design inverts the usual message-passing picture. Instead of
// serializing staged channel sends into per-channel rings and copying them
// between address spaces, the ENTIRE simulation state — the SoA hot-state
// slab, channels (including their sender-private staging vectors), routers,
// NIs, wake stages, counter shards, eject stages — is placed in one big
// MAP_SHARED | MAP_ANONYMOUS mapping created BEFORE the system is built.
// fork()ed worker processes inherit the mapping at the same address, so the
// staged cross-domain payloads step_pool already produces are the shared
// transport: a worker's staged_ vector IS the message buffer the parent's
// barrier-side merge reads, zero-copy and in exactly the order the serial
// schedule would have produced. The fixed-slot SPSC rings (spsc_ring.hpp)
// then only need to carry the small worker -> parent status plane
// (busy-time / heartbeat records), not flit payloads.
//
// How state lands here: a ShmArenaScope routes the calling thread's
// operator new/delete through the arena (a thread-local pointer; see the
// replacement operators in shm_arena.cpp). run_synthetic installs the scope
// around the whole run when step_procs > 1, StepPool propagates it into its
// worker threads, and fork() propagates it into worker processes — so every
// allocation the stepping loop can ever touch (vector growth of a staging
// buffer included) is shared and coherent, while unrelated allocations in
// processes without a scope fall back to plain malloc.
//
// Lifetime: anything allocated in the arena dangles once the mapping is
// gone, so the arena is handed out as a shared_ptr and RunResult keeps a
// keepalive reference — telemetry allocated during the run stays valid for
// as long as any RunResult copy lives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

namespace flov::ipc {

/// Thrown (out of operator new, hence the std::bad_alloc base) when the
/// arena lock was seized from a dead owner and the post-mortem integrity
/// audit found torn allocator state, or when a later caller touches an
/// arena already marked poisoned. Callers treat this like WorkerLost: kill
/// the remaining workers and restore the last checkpoint (or abort the run
/// cleanly) — never hang.
class ArenaPoisoned : public std::bad_alloc {
 public:
  const char* what() const noexcept override {
    return "shared stepping arena poisoned (a process died mid-update "
           "inside the allocator)";
  }
};

class ShmArena {
 public:
  /// Maps a fresh arena. `reserve_bytes` = 0 picks the default reservation
  /// (FLYOVER_SHM_BYTES env override, else 8 GiB). The reservation is
  /// address space only (MAP_NORESERVE): physical pages are committed on
  /// first touch, so a small mesh costs megabytes, not the reservation.
  /// Linux-only (futexes + fork); calling this elsewhere is a fatal error.
  static std::shared_ptr<ShmArena> create(std::size_t reserve_bytes = 0);

  ~ShmArena();
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  bool contains(const void* p) const {
    const auto u = reinterpret_cast<std::uintptr_t>(p);
    return u >= reinterpret_cast<std::uintptr_t>(base_) &&
           u < reinterpret_cast<std::uintptr_t>(base_) + capacity_;
  }

  /// Size-class allocator over the mapping, callable from any process /
  /// thread (one cross-process futex lock; the stepping hot path is
  /// allocation-free once staging vectors reach steady-state capacity).
  /// Alignments up to 64 bytes (the cache-line padding the hot structures
  /// use); larger requests are a fatal error.
  void* allocate(std::size_t size, std::size_t align);
  void deallocate(void* p);

  /// High-water mark of bytes handed out (committed pages are <= this
  /// rounded up to page granularity).
  std::size_t bytes_used() const;
  std::size_t capacity() const { return capacity_; }

  /// Walks every block ([header, bump) is a contiguous sequence of
  /// size-class blocks) checking magics, size classes, tail canaries and
  /// freelist structure. Returns true when intact; on failure marks the
  /// arena poisoned so every later allocate() throws ArenaPoisoned instead
  /// of handing out torn state. Takes the arena lock (and may itself seize
  /// it from a dead owner).
  bool audit();

  /// True once an audit failed; the arena is quarantined (allocate throws,
  /// deallocate leaks) until the checkpoint layer restores a good image.
  bool poisoned() const;

  /// Number of times the allocator lock was seized from a dead owner and
  /// the audit passed (healed continuations; diagnostics only).
  std::uint64_t seizures() const;

  /// Raw image access for the in-run checkpoint layer (runstate.cpp): the
  /// mapping base and the current bump frontier. Capture/restore memcpy
  /// [base, base + frontier) while no worker processes are running.
  unsigned char* image_base() const { return base_; }
  std::size_t image_frontier() const;

  /// Test hooks: grab / release the allocator futex from process context.
  /// Used by the chaos tests to die while holding the lock and exercise
  /// the owner-death seize path. Never call these in normal operation.
  void lock_for_test();
  void unlock_for_test();

 private:
  bool audit_locked();
  ShmArena(unsigned char* base, std::size_t capacity);

  unsigned char* base_;     ///< mapping start; the control header lives here
  std::size_t capacity_;    ///< total mapping size (header included)
};

/// The calling thread's active arena (null = allocations go to malloc).
/// Inherited by fork() children and propagated into StepPool workers.
ShmArena* thread_arena();

/// Routes the arena backing `p`, or null if `p` is plain heap memory.
/// Consulted by every operator delete — works regardless of which thread
/// or scope frees the pointer.
ShmArena* arena_of(const void* p);

/// RAII binder: installs `arena` as the calling thread's allocation target
/// for the scope (restores the previous binding on exit).
class ShmArenaScope {
 public:
  explicit ShmArenaScope(ShmArena* arena);
  ~ShmArenaScope();
  ShmArenaScope(const ShmArenaScope&) = delete;
  ShmArenaScope& operator=(const ShmArenaScope&) = delete;

 private:
  ShmArena* prev_;
};

}  // namespace flov::ipc
