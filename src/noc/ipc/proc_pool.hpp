// Fork-based process pool for multi-process cycle stepping.
//
// Mirrors StepPool one level up: Network partitions its tile domains into
// `procs` contiguous ranges, the parent keeps range 0 (stepping it with its
// own StepPool as before) and each forked worker process steps one of the
// remaining ranges with a process-private StepPool of its own. Because the
// whole system lives in the shared arena (shm_arena.hpp), a worker's writes
// are the SAME bytes the parent merges at the barrier — the per-cycle
// protocol is just the StepPool epoch/done handshake re-expressed over
// futexes so it works across address spaces:
//
//   parent: publish now_, epoch.fetch_add (release) ... wake sleepers
//   child : epoch load (acquire) observes the bump and everything the
//           parent merged last cycle; steps its domains; done.store
//           (release) publishes its staged sends back; parent's done load
//           (acquire) completes the chain before it merges.
//
// Worker death (OOM kill, crash, the FLYOVER_TEST_KILL_WORKER test hook)
// surfaces as a thrown WorkerLost instead of a hung barrier: a parent-side
// monitor thread polls one pidfd per child (pidfd_open, kernel >= 5.3) and
// wakes the barrier the moment any child exits; on kernels without pidfd
// the parent falls back to a bounded 20 ms park + waitpid(WNOHANG) sweep.
// A wedged-but-alive worker trips the same path through a total barrier
// deadline (FLYOVER_BARRIER_TIMEOUT_MS, default 10 s). run_synthetic either
// recovers from the last in-run checkpoint (sim.snapshot_period > 0) or
// converts the loss into a `worker_lost` incident and a clean abort.
//
// Children are pure stepping engines: they never touch the tracer,
// profiler, metrics or ops plane (all parent-private malloc memory that is
// stale copy-on-write garbage in the child), and they leave via _Exit so no
// destructor ever runs on inherited parent state. Their only telemetry is
// the per-epoch busy-time record pushed through a lossy-by-coalescing SPSC
// ring, which the parent folds into proc_busy_ns / proc_busy_imbalance.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "noc/ipc/spsc_ring.hpp"
#include "telemetry/ops/profile.hpp"

namespace flov::ipc {

/// Thrown by ProcPool::run_cycle when a worker process exits instead of
/// reaching the barrier. Deliberately an exception, not FLOV_CHECK: losing
/// a worker is a reportable run outcome (worker_lost incident, exit code
/// 3), not a programming error worth aborting the parent over.
class WorkerLost : public std::runtime_error {
 public:
  WorkerLost(int worker, int status, const std::string& what)
      : std::runtime_error(what), worker_(worker), status_(status) {}
  /// 0-based index of the lost worker (proc worker + 1 stepped its range).
  int worker() const { return worker_; }
  /// Raw waitpid status of the dead child.
  int status() const { return status_; }

 private:
  int worker_;
  int status_;
};

class ProcPool {
 public:
  /// Forks `workers` child processes; each epoch, worker i runs
  /// job(i, cycle) in its own process. Must be called with a shared arena
  /// bound (thread_arena() != nullptr) and with `job` plus everything it
  /// touches living in that arena — fork() inherits the calling thread's
  /// arena binding, so children allocate/free coherently too.
  ProcPool(int workers, std::function<void(int, Cycle)> job);
  ~ProcPool();

  ProcPool(const ProcPool&) = delete;
  ProcPool& operator=(const ProcPool&) = delete;

  int workers() const { return workers_; }

  /// Runs one epoch: releases every worker with cycle `now`, runs
  /// `main_work` (the parent's own domain range) on the calling thread,
  /// then waits for all workers. Throws WorkerLost if a child dies before
  /// finishing the epoch.
  template <typename F>
  void run_cycle(Cycle now, F&& main_work) {
    ctl_->now = now;
    const std::uint32_t epoch =
        ctl_->epoch.fetch_add(1, std::memory_order_seq_cst) + 1;
    if (ctl_->sleepers.load(std::memory_order_seq_cst) != 0) {
      wake_workers();
    }
    const auto t0 = std::chrono::steady_clock::now();
    main_work();
    const auto t1 = std::chrono::steady_clock::now();
    folded_busy_[0].fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()),
        std::memory_order_relaxed);
    // The parent-side barrier: the gap between its own range finishing and
    // the slowest worker process — the procs= imbalance signal.
    FLOV_PROFILE(kBarrierIpc);
    for (int i = 0; i < workers_; ++i) wait_done(i, epoch);
    fold_status();
  }

  /// Per-process busy nanoseconds folded so far ([0] = parent's range).
  /// Safe to call from other threads (ops plane) while stepping runs.
  std::vector<std::uint64_t> busy_ns() const;
  /// max/min busy ratio across processes (1.0 when degenerate).
  double busy_imbalance() const;

  /// SIGKILLs and reaps every remaining worker, making the pool inert.
  /// The recovery path calls this before restoring a checkpoint: once it
  /// returns there are provably no writers left in the shared arena, so
  /// the restore memcpy cannot race anything. Idempotent; the destructor
  /// afterwards is a no-op beyond freeing the control block.
  void kill_workers();

 private:
  struct WorkerEvent {
    std::uint32_t epoch;
    std::uint32_t pad;
    std::uint64_t busy_ns;
  };

  /// Per-worker shared-memory cell: the done word the parent parks on plus
  /// the status ring. One cache line apart so workers never false-share.
  struct alignas(64) WorkerCell {
    std::atomic<std::uint32_t> done{0};
    std::atomic<std::uint32_t> parent_waiting{0};
    SpscRing<WorkerEvent, 64> ring;
  };

  /// Shared control block (lives in the arena, one per pool).
  struct alignas(64) Ctl {
    std::atomic<std::uint32_t> epoch{0};
    std::atomic<std::uint32_t> stop{0};
    std::atomic<std::uint32_t> sleepers{0};
    Cycle now = 0;  ///< published by the epoch seq_cst RMW / acquire pair
  };

  [[noreturn]] void child_loop(int index, long parent_pid);
  void wait_done(int i, std::uint32_t epoch);
  void wake_workers();
  /// waitpid(WNOHANG) sweep; throws WorkerLost on a dead child.
  void check_children(std::uint32_t epoch);
  void fold_status();
  /// Arms the pidfd_open/poll death monitor (parent-private thread). Falls
  /// back silently to the bounded-park waitpid sweep when unavailable.
  void start_monitor();
  void stop_monitor();
  void monitor_loop();

  std::function<void(int, Cycle)> job_;
  int workers_;
  Ctl* ctl_ = nullptr;          ///< in the shared arena
  WorkerCell* cells_ = nullptr; ///< in the shared arena, after ctl_
  std::vector<long> pids_;      ///< parent-private
  std::vector<bool> reaped_;    ///< parent-private
  /// Parent-private fold of busy time; atomic because the ops-plane HTTP
  /// thread reads it through Network::proc_busy_imbalance mid-run.
  std::unique_ptr<std::atomic<std::uint64_t>[]> folded_busy_;
  int kill_worker_ = -1;        ///< FLYOVER_TEST_KILL_WORKER hook
  std::uint32_t kill_epoch_ = 0;
  int kill_alloc_worker_ = -1;  ///< FLYOVER_TEST_KILL_IN_ALLOC hook
  std::uint32_t kill_alloc_epoch_ = 0;
  std::uint64_t barrier_timeout_ns_;  ///< wedged-worker deadline (wait_done)
  bool killed_ = false;         ///< kill_workers() ran; pool is inert
  /// pidfd death monitor (parent-private; absent on pre-5.3 kernels).
  std::vector<int> pidfds_;
  std::thread monitor_;
  int monitor_pipe_[2] = {-1, -1};
  bool monitor_active_ = false;
  std::atomic<bool> child_died_{false};
};

}  // namespace flov::ipc
