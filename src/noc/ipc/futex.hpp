// Futex primitives for the multi-process stepping transport.
//
// Everything in src/noc/ipc/ synchronizes across PROCESSES, not threads, so
// the usual std::mutex/condition_variable toolbox is off the table (glibc's
// default pthread objects are process-private). The portable POSIX answer
// is pthread_mutexattr_setpshared, but that drags robust-mutex semantics
// and priority-inheritance baggage into a hot per-cycle path; a raw Linux
// futex on a 32-bit word in the shared mapping is smaller, dependency-free
// and exactly as strong as the memory-model contract StepPool already
// documents (release on publish, acquire on observe).
//
// Deliberately NOT using FUTEX_PRIVATE_FLAG anywhere: the private variant
// skips the cross-process hash, which is precisely the part we need.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>

#if defined(__linux__)
#include <linux/futex.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace flov::ipc {

#if defined(__linux__)

inline long futex_wait(std::atomic<std::uint32_t>* addr, std::uint32_t expect,
                       const struct timespec* timeout = nullptr) {
  return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
                   FUTEX_WAIT, expect, timeout, nullptr, 0);
}

inline long futex_wake(std::atomic<std::uint32_t>* addr, int nwaiters) {
  return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
                   FUTEX_WAKE, nwaiters, nullptr, nullptr, 0);
}

#else

// Non-Linux fallback: compile, but never park. ShmArena::create refuses to
// run on non-Linux hosts (see shm_arena.cpp), so these spins are only ever
// reachable from unit tests of the lock itself.
inline long futex_wait(std::atomic<std::uint32_t>*, std::uint32_t,
                       const void* = nullptr) {
  return 0;
}
inline long futex_wake(std::atomic<std::uint32_t>*, int) { return 0; }

#endif

/// Robust cross-process futex mutex with owner-death detection. The lock
/// word is 0 when free, otherwise the OWNER'S PID with bit 31
/// (`kWaitersBit`) set when someone is parked. Storing the pid in the word
/// itself means acquisition IS ownership publication — there is no window
/// where the lock is held but the holder is anonymous, so a waiter can
/// always ask the kernel whether the owner still exists.
///
/// Guards the arena allocator's free lists — a cold-ish path (the per-cycle
/// stepping loop is allocation-free once staging vectors reach steady-state
/// capacity), so a single lock for the whole arena is plenty.
///
/// A contended waiter parks with a bounded (50 ms) timeout; on timeout it
/// validates the recorded owner with kill(pid, 0). A dead owner's word is
/// seized by CAS, and lock() returns true so the caller knows the critical
/// section may have been abandoned mid-update (the arena responds with an
/// integrity audit; see shm_arena.cpp). Pid-reuse within one 50 ms window
/// is the only way to fool the check, and then we merely keep waiting.
class FutexLock {
 public:
  /// Acquires the lock. Returns true iff the lock was SEIZED from a dead
  /// owner — the protected state may be mid-update and must be audited.
  bool lock() {
#if defined(__linux__)
    const std::uint32_t me = static_cast<std::uint32_t>(::getpid());
#else
    const std::uint32_t me = 1;
#endif
    std::uint32_t c = 0;
    if (v_.compare_exchange_strong(c, me, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
      return false;
    }
    // Short spin first: allocator critical sections are a handful of loads
    // and stores, so the holder is usually gone before we would park.
    for (int spin = 0; spin < 128; ++spin) {
      c = 0;
      if (v_.compare_exchange_weak(c, me, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
        return false;
      }
    }
    for (;;) {
      c = v_.load(std::memory_order_relaxed);
      if (c == 0) {
        if (v_.compare_exchange_weak(c, me, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
          return false;
        }
        continue;
      }
      // Publish intent to park, then wait on the exact marked value; a
      // stale expect just makes futex_wait return EAGAIN and we re-loop.
      const std::uint32_t marked = c | kWaitersBit;
      if (c != marked &&
          !v_.compare_exchange_weak(c, marked, std::memory_order_relaxed)) {
        continue;
      }
#if defined(__linux__)
      struct timespec ts{};
      ts.tv_sec = 0;
      ts.tv_nsec = 50 * 1000 * 1000;
      errno = 0;
      futex_wait(&v_, marked, &ts);
      if (errno == ETIMEDOUT) {
        const std::uint32_t owner = marked & ~kWaitersBit;
        if (owner != 0 &&
            ::kill(static_cast<pid_t>(owner), 0) == -1 && errno == ESRCH) {
          // Owner died holding the lock. Seize: swap our pid in while
          // keeping the waiters bit so our unlock wakes other parkers.
          std::uint32_t expect = marked;
          if (v_.compare_exchange_strong(expect, me | kWaitersBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
            return true;
          }
        }
      }
#else
      futex_wait(&v_, marked);
#endif
    }
  }

  void unlock() {
    if (v_.exchange(0, std::memory_order_release) & kWaitersBit) {
      futex_wake(&v_, 1);
    }
  }

 private:
  static constexpr std::uint32_t kWaitersBit = 0x80000000u;

  std::atomic<std::uint32_t> v_{0};
};

// Note: no RAII guard on purpose. lock() returns the seized-from-dead-owner
// flag, and every caller must decide what a seizure means for the state the
// lock protects (the arena runs an audit); a guard that discarded the flag
// would be a correctness trap.

}  // namespace flov::ipc
