// Futex primitives for the multi-process stepping transport.
//
// Everything in src/noc/ipc/ synchronizes across PROCESSES, not threads, so
// the usual std::mutex/condition_variable toolbox is off the table (glibc's
// default pthread objects are process-private). The portable POSIX answer
// is pthread_mutexattr_setpshared, but that drags robust-mutex semantics
// and priority-inheritance baggage into a hot per-cycle path; a raw Linux
// futex on a 32-bit word in the shared mapping is smaller, dependency-free
// and exactly as strong as the memory-model contract StepPool already
// documents (release on publish, acquire on observe).
//
// Deliberately NOT using FUTEX_PRIVATE_FLAG anywhere: the private variant
// skips the cross-process hash, which is precisely the part we need.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace flov::ipc {

#if defined(__linux__)

inline long futex_wait(std::atomic<std::uint32_t>* addr, std::uint32_t expect,
                       const struct timespec* timeout = nullptr) {
  return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
                   FUTEX_WAIT, expect, timeout, nullptr, 0);
}

inline long futex_wake(std::atomic<std::uint32_t>* addr, int nwaiters) {
  return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
                   FUTEX_WAKE, nwaiters, nullptr, nullptr, 0);
}

#else

// Non-Linux fallback: compile, but never park. ShmArena::create refuses to
// run on non-Linux hosts (see shm_arena.cpp), so these spins are only ever
// reachable from unit tests of the lock itself.
inline long futex_wait(std::atomic<std::uint32_t>*, std::uint32_t,
                       const void* = nullptr) {
  return 0;
}
inline long futex_wake(std::atomic<std::uint32_t>*, int) { return 0; }

#endif

/// Drepper-style three-state futex mutex (0 free / 1 locked / 2 locked with
/// waiters), usable from any process mapping the word. Guards the arena
/// allocator's free lists — a cold-ish path (the per-cycle stepping loop is
/// allocation-free once staging vectors reach steady-state capacity), so a
/// single lock for the whole arena is plenty.
class FutexLock {
 public:
  void lock() {
    std::uint32_t c = 0;
    if (v_.compare_exchange_strong(c, 1, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
      return;
    }
    // Short spin first: allocator critical sections are a handful of loads
    // and stores, so the holder is usually gone before we would park.
    for (int spin = 0; spin < 128; ++spin) {
      c = 0;
      if (v_.compare_exchange_weak(c, 1, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
        return;
      }
    }
    do {
      // Mark contended (1 -> 2) and park. If the word is 0 the cmpxchg
      // fails without storing and we skip straight to the acquisition
      // attempt below; a stale expect value just makes futex_wait return
      // EAGAIN immediately.
      std::uint32_t one = 1;
      if (c == 2 || v_.compare_exchange_strong(one, 2,
                                               std::memory_order_relaxed) ||
          one == 2) {
        futex_wait(&v_, 2);
      }
      c = 0;
    } while (!v_.compare_exchange_strong(c, 2, std::memory_order_acquire,
                                         std::memory_order_relaxed));
  }

  void unlock() {
    if (v_.exchange(0, std::memory_order_release) == 2) {
      futex_wake(&v_, 1);
    }
  }

 private:
  std::atomic<std::uint32_t> v_{0};
};

class FutexLockGuard {
 public:
  explicit FutexLockGuard(FutexLock& l) : l_(l) { l_.lock(); }
  ~FutexLockGuard() { l_.unlock(); }
  FutexLockGuard(const FutexLockGuard&) = delete;
  FutexLockGuard& operator=(const FutexLockGuard&) = delete;

 private:
  FutexLock& l_;
};

}  // namespace flov::ipc
