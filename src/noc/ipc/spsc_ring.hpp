// Fixed-slot single-producer / single-consumer ring over shared memory.
//
// In the zero-copy multi-process design (see shm_arena.hpp) flit payloads
// never travel through rings — the staged channel vectors in the shared
// arena ARE the cross-domain transport. What still needs an explicit queue
// is the small worker -> parent status plane: per-epoch busy-time records
// that the parent folds into the phase profiler without ever blocking the
// worker. That is a textbook SPSC shape (one worker writes, only the parent
// reads), so head/tail acquire-release on a power-of-two slot array is all
// the machinery required.
//
// The ring is deliberately lossy-by-coalescing at the producer's option:
// status records are monotone accumulators, so when the ring is full the
// producer folds the new record into the one it will write next rather than
// spinning — the stepping barrier must never wait on telemetry.
#pragma once

#include <atomic>
#include <cstddef>
#include <type_traits>

namespace flov::ipc {

template <typename T, std::size_t kSlots>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring slots are raw shared memory");
  static_assert(kSlots >= 2 && (kSlots & (kSlots - 1)) == 0,
                "slot count must be a power of two");

 public:
  /// Producer side. Returns false (without writing) when the ring is full.
  bool try_push(const T& v) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h - tail_.load(std::memory_order_acquire) == kSlots) return false;
    slots_[h & (kSlots - 1)] = v;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T* out) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (head_.load(std::memory_order_acquire) == t) return false;
    *out = slots_[t & (kSlots - 1)];
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) T slots_[kSlots];
};

}  // namespace flov::ipc
