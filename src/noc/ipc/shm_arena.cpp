#include "noc/ipc/shm_arena.hpp"
#ifdef FLOV_DEBUG_FREE_BT
#include <execinfo.h>
#endif

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "common/log.hpp"
#include "noc/ipc/futex.hpp"

namespace flov::ipc {

namespace {

constexpr std::size_t kCacheLine = 64;
/// Block sizes are powers of two from 128 bytes (64-byte header + payload)
/// up; class c holds blocks of 1 << (7 + c) bytes.
constexpr int kNumClasses = 30;
constexpr std::uint32_t kLiveMagic = 0x464c4f56;  // "FLOV"
constexpr std::uint32_t kFreeMagic = 0x564f4c46;
constexpr std::size_t kDefaultReserve = std::size_t{8} << 30;  // 8 GiB
/// Tail-canary seed; each block stores kCanary ^ its arena offset right
/// after the requested payload (when the size class leaves >= 8 bytes of
/// slack), so a buffer overrun into the slack — or a torn header — is
/// visible to audit().
constexpr std::uint64_t kCanary = 0xFEEDFACECAFEF00Dull;

/// Per-block header, one cache line so every payload is 64-byte aligned.
struct BlockHeader {
  std::uint32_t magic;
  std::uint32_t cls;
  std::uint64_t next;  ///< freelist link (arena offset; 0 = end) while free
  std::uint64_t req_size;  ///< requested payload bytes (canary placement)
};
static_assert(sizeof(BlockHeader) <= kCacheLine);

/// Arena control header at the mapping base (shared by every process).
struct ArenaHeader {
  FutexLock lock;
  std::size_t bump;  ///< offset of the next never-used byte (guarded by lock)
  std::size_t capacity;
  std::atomic<std::size_t> used_high;  ///< high-water mark (stats only)
  std::atomic<std::uint32_t> poisoned{0};  ///< audit failed; arena quarantined
  std::atomic<std::uint64_t> seizures{0};  ///< dead-owner locks healed
  std::uint64_t freelist[kNumClasses];  ///< head offsets (guarded by lock)
};

int class_of(std::size_t payload) {
  const std::size_t need = payload + kCacheLine;
  std::size_t block = 128;
  int cls = 0;
  while (block < need) {
    block <<= 1;
    ++cls;
  }
  return cls;
}

std::size_t class_bytes(int cls) { return std::size_t{128} << cls; }

/// Registry of live arenas so operator delete can route a pointer back to
/// the arena that produced it without any thread-local context. Slots are
/// claimed/released with atomics; the lookup is a short linear scan guarded
/// by a global count so malloc-only programs pay one relaxed load per free.
struct ArenaSlot {
  std::atomic<std::uintptr_t> base{0};
  std::atomic<std::uintptr_t> end{0};
  std::atomic<ShmArena*> arena{nullptr};
};
constexpr int kMaxArenas = 64;
ArenaSlot g_slots[kMaxArenas];
std::atomic<int> g_arena_count{0};

void register_arena(ShmArena* a, unsigned char* base, std::size_t cap) {
  for (int i = 0; i < kMaxArenas; ++i) {
    std::uintptr_t expected = 0;
    if (g_slots[i].base.compare_exchange_strong(
            expected, reinterpret_cast<std::uintptr_t>(base),
            std::memory_order_acq_rel)) {
      g_slots[i].arena.store(a, std::memory_order_relaxed);
      g_slots[i].end.store(reinterpret_cast<std::uintptr_t>(base) + cap,
                           std::memory_order_release);
      g_arena_count.fetch_add(1, std::memory_order_release);
      return;
    }
  }
  FLOV_CHECK(false, "too many live shared-memory arenas (max 64)");
}

void unregister_arena(unsigned char* base) {
  for (int i = 0; i < kMaxArenas; ++i) {
    if (g_slots[i].base.load(std::memory_order_acquire) ==
        reinterpret_cast<std::uintptr_t>(base)) {
      g_arena_count.fetch_sub(1, std::memory_order_release);
      g_slots[i].end.store(0, std::memory_order_relaxed);
      g_slots[i].arena.store(nullptr, std::memory_order_relaxed);
      g_slots[i].base.store(0, std::memory_order_release);
      return;
    }
  }
}

thread_local ShmArena* t_arena = nullptr;

ArenaHeader* header_of(unsigned char* base) {
  return reinterpret_cast<ArenaHeader*>(base);
}

}  // namespace

ShmArena* thread_arena() { return t_arena; }

ShmArena* arena_of(const void* p) {
  if (g_arena_count.load(std::memory_order_acquire) == 0) return nullptr;
  const auto u = reinterpret_cast<std::uintptr_t>(p);
  for (int i = 0; i < kMaxArenas; ++i) {
    const std::uintptr_t base = g_slots[i].base.load(std::memory_order_acquire);
    if (base == 0 || u < base) continue;
    if (u < g_slots[i].end.load(std::memory_order_acquire)) {
      return g_slots[i].arena.load(std::memory_order_relaxed);
    }
  }
  return nullptr;
}

ShmArenaScope::ShmArenaScope(ShmArena* arena) : prev_(t_arena) {
  t_arena = arena;
}

ShmArenaScope::~ShmArenaScope() { t_arena = prev_; }

std::shared_ptr<ShmArena> ShmArena::create(std::size_t reserve_bytes) {
#if !defined(__linux__)
  (void)reserve_bytes;
  FLOV_CHECK(false,
             "multi-process stepping (noc.step_procs > 1) needs Linux "
             "shared-anonymous mappings and futexes");
  return nullptr;
#else
  std::size_t cap = reserve_bytes;
  if (cap == 0) {
    if (const char* env = std::getenv("FLYOVER_SHM_BYTES")) {
      cap = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    }
    if (cap == 0) cap = kDefaultReserve;
  }
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  cap = (cap + page - 1) / page * page;
  void* base = ::mmap(nullptr, cap, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  FLOV_CHECK(base != MAP_FAILED,
             "mmap of the shared stepping arena failed (lower "
             "FLYOVER_SHM_BYTES?)");
  auto* b = static_cast<unsigned char*>(base);
  ArenaHeader* h = new (b) ArenaHeader();
  // First usable byte after the (cache-line-rounded) control header.
  h->bump = (sizeof(ArenaHeader) + kCacheLine - 1) / kCacheLine * kCacheLine;
  h->capacity = cap;
  // The arena object itself lives on the normal heap: create() runs before
  // any scope is installed, and the object must outlive the final TLS
  // binding (RunResult keepalive), not sit inside the mapping it frees.
  return std::shared_ptr<ShmArena>(new ShmArena(b, cap));
#endif
}

ShmArena::ShmArena(unsigned char* base, std::size_t capacity)
    : base_(base), capacity_(capacity) {
  register_arena(this, base_, capacity_);
}

ShmArena::~ShmArena() {
  unregister_arena(base_);
#if defined(__linux__)
  ::munmap(base_, capacity_);
#endif
}

void* ShmArena::allocate(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  bool align_ok = align <= kCacheLine;
  const int cls = class_of(size);
  bool cls_ok = cls < kNumClasses;
  ArenaHeader* h = header_of(base_);
  std::size_t off = 0;
  bool exhausted = false;
  bool poisoned = h->poisoned.load(std::memory_order_acquire) != 0;
  if (align_ok && cls_ok && !poisoned) {
    const std::size_t bytes = class_bytes(cls);
    // A seized lock means the previous owner died mid-critical-section:
    // audit before trusting the free lists. A passing audit continues
    // healed; a failing one quarantines the arena for everyone.
    if (h->lock.lock()) {
      if (audit_locked()) {
        h->seizures.fetch_add(1, std::memory_order_relaxed);
      } else {
        h->poisoned.store(1, std::memory_order_release);
      }
    }
    if (h->poisoned.load(std::memory_order_relaxed) != 0) {
      poisoned = true;
    } else if (h->freelist[cls] != 0) {
      off = h->freelist[cls];
      auto* bh = reinterpret_cast<BlockHeader*>(base_ + off);
      h->freelist[cls] = bh->next;
    } else if (h->bump + bytes <= h->capacity) {
      off = h->bump;
      h->bump += bytes;
      // Monotone under the lock; relaxed is fine for a stats gauge.
      h->used_high.store(h->bump, std::memory_order_relaxed);
    } else {
      exhausted = true;
    }
    h->lock.unlock();
  }
  // Failure paths run outside the lock: FLOV_CHECK formats a std::string
  // (it allocates), and re-entering allocate() while holding the futex
  // would deadlock the whole process tree. ArenaPoisoned construction is
  // allocation-free by design.
  if (poisoned) throw ArenaPoisoned();
  FLOV_CHECK(align_ok, "shm arena allocation alignment above 64 bytes");
  FLOV_CHECK(cls_ok, "shm arena allocation too large for any size class");
  FLOV_CHECK(!exhausted,
             "shared stepping arena exhausted; raise FLYOVER_SHM_BYTES");
  auto* bh = reinterpret_cast<BlockHeader*>(base_ + off);
  bh->magic = kLiveMagic;
  bh->cls = static_cast<std::uint32_t>(cls);
  bh->next = 0;
  bh->req_size = size;
  const std::size_t slack = class_bytes(cls) - kCacheLine - size;
  if (slack >= sizeof(std::uint64_t)) {
    const std::uint64_t canary = kCanary ^ static_cast<std::uint64_t>(off);
    std::memcpy(base_ + off + kCacheLine + size, &canary, sizeof(canary));
  }
  return base_ + off + kCacheLine;
}

void ShmArena::deallocate(void* p) {
  if (p == nullptr) return;
  ArenaHeader* h = header_of(base_);
  if (h->poisoned.load(std::memory_order_acquire) != 0) {
    // Quarantined: leak the block rather than touch suspect free lists.
    // The checkpoint layer is about to throw the whole image away anyway.
    return;
  }
  auto* payload = static_cast<unsigned char*>(p);
  auto* bh = reinterpret_cast<BlockHeader*>(payload - kCacheLine);
  const bool live = bh->magic == kLiveMagic;
  const std::uint32_t cls = bh->cls;
  const bool cls_ok = live && cls < kNumClasses;
#ifdef FLOV_DEBUG_FREE_BT
  if (!cls_ok) {
    void* bt[48];
    int n = backtrace(bt, 48);
    backtrace_symbols_fd(bt, n, 2);
  }
#endif
  FLOV_CHECK(cls_ok, "shm arena free of a corrupt or double-freed block");
  bh->magic = kFreeMagic;
  if (h->lock.lock()) {
    if (audit_locked()) {
      h->seizures.fetch_add(1, std::memory_order_relaxed);
    } else {
      // deallocate is noexcept all the way up through operator delete:
      // quarantine and leak instead of throwing.
      h->poisoned.store(1, std::memory_order_release);
      h->lock.unlock();
      return;
    }
  }
  if (h->poisoned.load(std::memory_order_relaxed) != 0) {
    h->lock.unlock();
    return;
  }
  bh->next = h->freelist[cls];
  h->freelist[cls] =
      static_cast<std::uint64_t>(reinterpret_cast<unsigned char*>(bh) - base_);
  h->lock.unlock();
}

std::size_t ShmArena::bytes_used() const {
  return header_of(base_)->used_high.load(std::memory_order_relaxed);
}

bool ShmArena::audit() {
  ArenaHeader* h = header_of(base_);
  const bool seized = h->lock.lock();
  const bool ok = audit_locked();
  if (!ok) {
    h->poisoned.store(1, std::memory_order_release);
  } else if (seized) {
    h->seizures.fetch_add(1, std::memory_order_relaxed);
  }
  h->lock.unlock();
  return ok;
}

bool ShmArena::audit_locked() {
  ArenaHeader* h = header_of(base_);
  const std::size_t first =
      (sizeof(ArenaHeader) + kCacheLine - 1) / kCacheLine * kCacheLine;
  const std::size_t bump = h->bump;
  if (bump < first || bump > capacity_) return false;
  std::size_t off = first;
  std::size_t blocks = 0;
  while (off < bump) {
    const auto* bh = reinterpret_cast<const BlockHeader*>(base_ + off);
    if (bh->magic != kLiveMagic && bh->magic != kFreeMagic) return false;
    if (bh->cls >= static_cast<std::uint32_t>(kNumClasses)) return false;
    const std::size_t bytes = class_bytes(static_cast<int>(bh->cls));
    if (bytes > bump - off) return false;
    if (bh->magic == kLiveMagic) {
      const std::size_t req = static_cast<std::size_t>(bh->req_size);
      if (req == 0 || req + kCacheLine > bytes) return false;
      const std::size_t slack = bytes - kCacheLine - req;
      if (slack >= sizeof(std::uint64_t)) {
        std::uint64_t canary = 0;
        std::memcpy(&canary, base_ + off + kCacheLine + req, sizeof(canary));
        if (canary != (kCanary ^ static_cast<std::uint64_t>(off))) {
          return false;
        }
      }
    }
    off += bytes;
    ++blocks;
  }
  if (off != bump) return false;
  // Freelists: every node in range, free-marked, the right class, and
  // cycle-free (a list longer than the total block count is a loop).
  for (int cls = 0; cls < kNumClasses; ++cls) {
    std::uint64_t node = h->freelist[cls];
    std::size_t seen = 0;
    while (node != 0) {
      if (node < first || class_bytes(cls) > bump - node) return false;
      const auto* bh = reinterpret_cast<const BlockHeader*>(base_ + node);
      if (bh->magic != kFreeMagic) return false;
      if (bh->cls != static_cast<std::uint32_t>(cls)) return false;
      if (++seen > blocks) return false;
      node = bh->next;
    }
  }
  return true;
}

bool ShmArena::poisoned() const {
  return header_of(base_)->poisoned.load(std::memory_order_acquire) != 0;
}

std::uint64_t ShmArena::seizures() const {
  return header_of(base_)->seizures.load(std::memory_order_relaxed);
}

std::size_t ShmArena::image_frontier() const {
  ArenaHeader* h = header_of(base_);
  (void)h->lock.lock();
  const std::size_t bump = h->bump;
  h->lock.unlock();
  return bump;
}

void ShmArena::lock_for_test() { (void)header_of(base_)->lock.lock(); }

void ShmArena::unlock_for_test() { header_of(base_)->lock.unlock(); }

}  // namespace flov::ipc

// ---------------------------------------------------------------------------
// Global allocation routing.
//
// Replacing the global operators is what lets the entire existing object
// graph (vectors, std::function closures, strings) land in the shared
// mapping without touching a single container: when the calling thread has
// an arena bound the bytes come from the mapping, otherwise this is plain
// malloc. Deletes route by ADDRESS (arena registry), not by thread state —
// memory allocated under a scope is routinely freed long after the scope
// ended (RunResult teardown) or by a different thread.
// ---------------------------------------------------------------------------

namespace {

/// May throw ArenaPoisoned (a quarantined arena refuses to hand out
/// possibly-torn state); returns nullptr only on plain heap exhaustion.
void* flov_route_new_impl(std::size_t n, std::size_t align) {
  if (flov::ipc::ShmArena* a = flov::ipc::thread_arena()) {
    return a->allocate(n, align);
  }
  if (align > alignof(std::max_align_t)) {
    void* p = nullptr;
    if (::posix_memalign(&p, align, n == 0 ? align : n) != 0) return nullptr;
    return p;
  }
  return std::malloc(n == 0 ? 1 : n);
}

void* flov_route_new(std::size_t n, std::size_t align) noexcept {
  try {
    return flov_route_new_impl(n, align);
  } catch (...) {
    return nullptr;
  }
}

void* flov_route_new_throwing(std::size_t n, std::size_t align) {
  // ArenaPoisoned propagates with its concrete type (it is a bad_alloc) so
  // the run layer can distinguish quarantine from heap exhaustion.
  void* p = flov_route_new_impl(n, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void flov_route_delete(void* p) noexcept {
  if (p == nullptr) return;
  if (flov::ipc::ShmArena* a = flov::ipc::arena_of(p)) {
    a->deallocate(p);
    return;
  }
  std::free(p);
}

}  // namespace

void* operator new(std::size_t n) {
  return flov_route_new_throwing(n, alignof(std::max_align_t));
}
void* operator new[](std::size_t n) {
  return flov_route_new_throwing(n, alignof(std::max_align_t));
}
void* operator new(std::size_t n, std::align_val_t a) {
  return flov_route_new_throwing(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return flov_route_new_throwing(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return flov_route_new(n, alignof(std::max_align_t));
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return flov_route_new(n, alignof(std::max_align_t));
}
void* operator new(std::size_t n, std::align_val_t a,
                   const std::nothrow_t&) noexcept {
  return flov_route_new(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a,
                     const std::nothrow_t&) noexcept {
  return flov_route_new(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { flov_route_delete(p); }
void operator delete[](void* p) noexcept { flov_route_delete(p); }
void operator delete(void* p, std::size_t) noexcept { flov_route_delete(p); }
void operator delete[](void* p, std::size_t) noexcept { flov_route_delete(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  flov_route_delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  flov_route_delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  flov_route_delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  flov_route_delete(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  flov_route_delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  flov_route_delete(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  flov_route_delete(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  flov_route_delete(p);
}
