// FLOV-capable virtual-channel router.
//
// Powered on, it is the paper's baseline 3-stage pipeline (RC -> VA+SA ->
// ST, one cycle each, +1 cycle link traversal). Power-gated, the baseline
// portion is off and the four FLOV output latches forward incoming flits
// straight across (1-cycle latch) while relaying credits upstream, exactly
// the Section III datapath. Router Parking parks the whole tile (kParked):
// nothing forwards, and the fabric manager guarantees no traffic arrives.
//
// The router never inspects global state: routing and allocation read only
// its NeighborhoodView (PSRs + output masks), which the handshake layer
// maintains. Cross-layer hooks (wakeup requests, credit handovers) are
// exposed as narrow methods used by the flov/rp glue.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/active_set.hpp"
#include "noc/arbiter.hpp"
#include "noc/channel.hpp"
#include "noc/flit.hpp"
#include "noc/hot_state.hpp"
#include "noc/input_unit.hpp"
#include "noc/noc_params.hpp"
#include "noc/output_unit.hpp"
#include "noc/power_state.hpp"
#include "noc/routing_iface.hpp"
#include "power/power_tracker.hpp"

namespace flov {

class Router {
 public:
  /// `hot` points at the mesh-wide SoA slab (noc/hot_state.hpp) this
  /// router's hot fields live in, indexed by `id`; null (standalone unit
  /// tests) binds a private single-slot slab instead.
  Router(NodeId id, const MeshGeometry& geom, const NocParams& params,
         RoutingFunction* routing, PowerTracker* power,
         MeshHotState* hot = nullptr);

  NodeId id() const { return id_; }
  RouterMode mode() const { return *mode_; }

  // --- wiring (called once by the Network; non-owning) ---
  void connect_flit_in(Direction port, Channel<Flit>* ch);
  void connect_flit_out(Direction port, Channel<Flit>* ch);
  /// Credits this router RETURNS for its input port `port`.
  void connect_credit_out(Direction port, Channel<Credit>* ch);
  /// Credits this router RECEIVES for its output port `port`.
  void connect_credit_in(Direction port, Channel<Credit>* ch);

  /// One clock edge. Safe to call routers in any order: all inter-router
  /// channels have latency >= 1.
  void step(Cycle now);

  /// Active-set hook: re-arms this router's liveness flag on mode changes
  /// (set once by the Network; null in router unit tests).
  void set_wake_target(WakeList* list, int index) {
    wake_ = list;
    wake_index_ = index;
  }

  /// True when stepping this router would be a no-op: no resident flits
  /// (input buffers or FLOV latches), no pending switch grants, and nothing
  /// in flight on any incoming flit/credit wire. Time-dependent work
  /// (pipeline stages, deadlock timeouts) always has a buffered flit behind
  /// it, so a quiescent router may be skipped until a send re-arms it; the
  /// skipped VA round-robin ticks are replayed on the next pipeline step
  /// (see step()), keeping results bit-identical to stepping every cycle.
  bool quiescent() const {
    if (*resident_ != 0 || !pending_st_.empty()) return false;
    for (int p = 0; p < kNumPorts; ++p) {
      if (in_flit_[p] && !in_flit_[p]->empty()) return false;
      if (credit_in_[p] && !credit_in_[p]->empty()) return false;
    }
    return true;
  }

  /// Switches the datapath mode; performs the associated state hygiene
  /// (asserts drained buffers, resets allocation state, informs the power
  /// tracker, charges the gating-overhead energy on entry to a gated mode).
  void set_mode(RouterMode m, Cycle now);

  /// Hard-fault entry point for pipeline (RP/baseline) routers. Death must
  /// be worm-coherent: an instant kDead switch would destroy the local
  /// remainder of worms whose heads this router already forwarded, leaving
  /// tail-less fragments downstream that hold their VC allocations forever.
  /// Instead the router turns fail-functional for a short grace: it keeps
  /// forwarding worms already in progress, eats every NEW worm whole
  /// (head-to-tail, credits refunded — the kDead black-hole contract), and
  /// switches to kDead on the first cycle its datapath is clean. An
  /// already-empty router dies instantly.
  void begin_death(Cycle now);

  NeighborhoodView& view() { return view_; }
  const NeighborhoodView& view() const { return view_; }

  // --- handshake / drain support ---
  bool input_buffers_empty() const;
  bool latches_empty() const;
  /// True when the FLOV output latch toward `d` holds no flit.
  bool latch_empty(Direction d) const {
    return !latch_[dir_index(d)].flit.has_value();
  }
  /// The flit (if any) currently held in the output latch toward `d`.
  const std::optional<Flit>& latch_flit(Direction d) const {
    return latch_[dir_index(d)].flit;
  }
  /// True when output port `d` has no allocated output VCs (no in-flight
  /// packet transmission toward that neighbor) — the drain_done condition.
  bool output_port_idle(Direction d) const;
  /// True when NO output port (local included) has an allocated output VC.
  /// An allocated output means a worm through this router has flits still
  /// upstream — gating now would orphan them mid-flight.
  bool all_outputs_idle() const;
  /// True when the bypass path has no worm in progress (every head that was
  /// latched through has seen its tail) and no flit is in flight on any
  /// incoming wire. A waking router must not switch to pipeline mode
  /// before this holds: an upstream that missed the WakeupNotify (lost
  /// signal) may still be streaming a worm through our latches, and
  /// power-on mid-worm would strand headless body flits in the input
  /// buffers.
  bool bypass_quiet() const;
  /// True when the router holds no flits at all (buffers, latches, pending
  /// switch grants).
  bool completely_empty() const;
  /// Cycle of the last local-port (core-side) flit activity.
  Cycle last_local_activity() const { return last_local_activity_; }

  /// Immediate credit refund for a flit this router sent on `out_port`
  /// that a fault destroyed ON the wire (dead link, transient drop): the
  /// downstream buffer never sees the flit, so its credit must not leak —
  /// a dead link would otherwise bleed the output VC dry and wedge the
  /// fabric behind it forever. Mirrors accept_credits: a pipeline router
  /// reclaims the output-VC credit, a bypass router relays it upstream on
  /// the same line. Called from the channel fault hook, i.e. inside this
  /// router's own step — same worker under domain-parallel stepping.
  void refund_output_credit(Direction out_port, VcId vc, Cycle now);

  // --- credit-handover support (see flov/credit_handover.cpp) ---
  /// Fills `out` with the free buffer slots per VC at `in_port` — the
  /// caller keeps a reusable scratch vector (per-cycle paths must not
  /// allocate).
  void input_free_slots(Direction in_port, std::vector<int>& out) const;
  void reload_output_credits(Direction out_port,
                             const std::vector<int>& free_counts);
  void reset_output_credits_full(Direction out_port);
  Channel<Credit>* credit_in(Direction d) { return credit_in_[dir_index(d)]; }
  Channel<Flit>* flit_in(Direction d) { return in_flit_[dir_index(d)]; }

  /// Hook invoked when a packet must wake a sleeping destination router
  /// before it can be forwarded (Section IV-A Wakeup trigger).
  void set_wakeup_callback(std::function<void(NodeId)> cb) {
    wakeup_cb_ = std::move(cb);
  }

  /// Hook invoked once per flit this router destroys while kDead (wired by
  /// the scheme layer to the fault injector's hard-kill accounting + the
  /// network's in-flight counter).
  void set_kill_callback(std::function<void(const Flit&)> cb) {
    kill_cb_ = std::move(cb);
  }

  /// Shared hard-fault fate mask (index = node id; non-null entries flip to
  /// true when the death cycle applies). A destination inside a sleeping
  /// run that is dead must NOT trigger hold-for-wakeup: the packet flies
  /// over instead and the dead router's bypass self-captures it into the
  /// always-on NI sink.
  void set_dead_mask(const std::vector<char>* mask) { dead_mask_ = mask; }

  // --- introspection for tests ---
  const InputPort& input_port(Direction d) const {
    return input_[dir_index(d)];
  }
  const OutputPort& output_port(Direction d) const {
    return output_[dir_index(d)];
  }
  std::uint64_t flits_traversed() const { return flits_traversed_; }
  /// Packets this router diverted into the escape sub-network (deadlock
  /// timeout fired); the escape-VC path's registry metric.
  std::uint64_t escape_diversions() const { return escape_diversions_; }
  /// Flits resident in this router right now (input VC buffers + FLOV
  /// latches); used by the verifier's conservation sum. Always a full
  /// ground-truth recount (the verifier must not trust cached counters).
  int buffered_flits() const;
  /// Self-destined flits captured to the NI while gated (faults only).
  std::uint64_t self_captures() const { return self_captures_; }
  /// Writes a human-readable description of every non-empty input VC and
  /// occupied latch to stderr (deadlock diagnostics).
  void dump_occupancy(Cycle now) const;
  std::uint64_t flits_flown_over() const { return flits_flown_over_; }
  const NocParams& params() const { return params_; }

 private:
  struct SwitchGrant {
    int in_port;
    VcId in_vc;
  };

  void accept_credits(Cycle now);
  void accept_flits(Cycle now);
  void accept_flits_bypass(Cycle now);
  void forward_latches(Cycle now);
  void do_switch_traversal(Cycle now);
  void do_timeout_checks(Cycle now);
  void do_vc_allocation(Cycle now);
  void do_switch_allocation(Cycle now);
  void do_route_computation(Cycle now);

  /// Full walk over input VCs and latches (debug cross-check + verifier).
  int recount_resident_flits() const;

  /// Distance from this router to `n` along direction `d` if `n` lies
  /// exactly along that axis; -1 otherwise.
  int distance_along(Direction d, NodeId n) const;
  /// The Section IV hold rule: the packet's destination router lies inside
  /// a sleeping run along the chosen direction, so it must be woken first.
  bool must_hold_for_wakeup(const InputVc& vc, const Flit& head);

  void count(EnergyEvent e, std::uint64_t n = 1) {
    // Per-node counting: domain workers may count concurrently, and the
    // per-node cells fold back deterministically (PowerTracker).
    if (power_) power_->count_node(id_, e, n);
  }

  NodeId id_;
  const MeshGeometry& geom_;
  NocParams params_;
  RoutingFunction* routing_;
  PowerTracker* power_;

  /// Private single-slot slab for standalone construction (unit tests);
  /// unused when the Network hands us its mesh slab.
  std::unique_ptr<MeshHotState> self_hot_;
  /// Hot fields in the SoA slab (this router's slots). mode_/resident_
  /// point at mode[id]/resident[id]; the port views cover the per-VC
  /// stripes; latch_ the FLOV latches.
  RouterMode* mode_ = nullptr;
  std::int32_t* resident_ = nullptr;

  NeighborhoodView view_;

  std::array<Channel<Flit>*, kNumPorts> in_flit_{};
  std::array<Channel<Flit>*, kNumPorts> out_flit_{};
  std::array<Channel<Credit>*, kNumPorts> credit_out_{};
  std::array<Channel<Credit>*, kNumPorts> credit_in_{};

  std::array<InputPort, kNumPorts> input_;
  std::array<OutputPort, kNumPorts> output_;
  Span<FlovLatch> latch_;

  std::vector<SwitchGrant> pending_st_;
  std::vector<RoundRobinArbiter> sa_input_arb_;   // one per input port
  std::vector<RoundRobinArbiter> sa_output_arb_;  // one per output port
  int va_rotate_ = 0;

  std::function<void(NodeId)> wakeup_cb_;
  std::function<void(const Flit&)> kill_cb_;
  const std::vector<char>* dead_mask_ = nullptr;
  WakeList* wake_ = nullptr;
  int wake_index_ = -1;
  /// Fail-functional death grace (begin_death): still kPipeline, finishing
  /// worms in progress; flips to kDead once the datapath is clean.
  bool dying_ = false;
  /// Per input port, a VC bitmask of worms being eaten whole while dying:
  /// set by an arriving head, cleared by its tail.
  std::array<std::uint32_t, kNumPorts> dying_eat_{};
  /// First cycle whose VA round-robin tick has not been applied yet; lets
  /// step() replay the ticks of skipped idle cycles so allocation order is
  /// identical to stepping every cycle. Only pipeline-mode cycles tick.
  Cycle va_tick_from_ = 0;
  Cycle last_local_activity_ = 0;
  /// Worms mid-flight on the bypass path: +1 when a head (of a multi-flit
  /// packet) arrives in bypass mode, -1 when its tail does.
  int bypass_worms_open_ = 0;
  std::uint64_t flits_traversed_ = 0;
  std::uint64_t flits_flown_over_ = 0;
  std::uint64_t self_captures_ = 0;
  std::uint64_t escape_diversions_ = 0;
};

}  // namespace flov
