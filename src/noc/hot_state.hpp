// Struct-of-arrays hot state for one mesh.
//
// Everything Router::step and NetworkInterface::step touch every cycle —
// datapath mode, resident-flit tallies, per-VC input/output records, FLOV
// bypass latches, NI credit counters — lives in contiguous per-mesh slabs
// indexed by router id, owned by the Network and handed to each component
// as raw pointers/Spans at construction. A 4096-router sweep then walks
// linear memory in node-id order instead of chasing 4096 heap objects each
// holding a dozen small vectors. Cold state (handshake episodes, fault
// bookkeeping, reliable-delivery maps, telemetry) stays object-resident.
//
// Components constructed WITHOUT a mesh slab (standalone unit tests) bind
// to a private single-slot MeshHotState instead — same code paths, no
// special cases on the hot path.
//
// Layout: per-VC records are grouped [node][port][vc] so one router's whole
// allocation state is one cache-friendly stripe, and consecutive routers'
// stripes are adjacent (domain workers step ascending ids). Writers are
// partitioned by node id under domain-parallel stepping, and a router only
// ever writes its own slots, so slab cells inherit the same no-race
// argument as the per-object fields they replace; stripes of routers in
// different domains can share a cache line only at domain boundaries —
// the same boundary the WakeList byte array already has.
//
// Multi-process stepping (noc.step_procs > 1) leans on the same layout:
// the slabs — like the rest of the network — are allocated from the
// MAP_SHARED arena (noc/ipc/shm_arena.hpp), so each forked worker writes
// its own domains' stripes in genuinely shared pages and the writer
// partition argument carries over unchanged from threads to processes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"
#include "noc/input_unit.hpp"
#include "noc/output_unit.hpp"

namespace flov {

/// Datapath operating mode (distinct from the protocol PowerState: a
/// Draining router still runs kPipeline; a Wakeup router still runs
/// kBypass until it turns Active).
enum class RouterMode : std::uint8_t {
  kPipeline = 0,  ///< baseline router operational
  kBypass,        ///< power-gated with FLOV latches active
  kParked,        ///< fully off (Router Parking)
  /// Hard-faulted (permanently dead, PROTOCOL.md §8). Unlike kParked —
  /// whose contract is that no traffic ever arrives — a dead router is a
  /// black hole that actively destroys arriving flits (reported through the
  /// kill callback for fault accounting) while still returning their
  /// credits upstream, so in-flight worms drain through the corpse instead
  /// of wedging their upstream VCs forever.
  kDead,
};

/// One FLOV bypass output latch (Section III): holds at most one flit for
/// exactly one cycle before forward_latches pushes it out.
struct FlovLatch {
  std::optional<Flit> flit;
  Cycle write_cycle = 0;
};

struct MeshHotState {
  int nodes = 0;
  int num_vcs = 0;

  std::vector<RouterMode> mode;           ///< [node]
  std::vector<std::int32_t> resident;     ///< [node] flits resident now
  std::vector<InputVc> in_vc;             ///< [node][port][vc]
  std::vector<OutputVcState> out_vc;      ///< [node][port][vc]
  std::vector<FlovLatch> latch;           ///< [node][mesh dir]
  std::vector<std::int32_t> ni_credits;   ///< [node][vc] free local slots
  std::vector<std::uint8_t> ni_vc_busy;   ///< [node][vc] mid-packet flag

  /// Sizes every slab. Must run before any component binds into it; the
  /// vectors never resize afterwards (bound pointers must stay put).
  void init(int num_nodes, int vcs, int buffer_depth) {
    nodes = num_nodes;
    num_vcs = vcs;
    const std::size_t nv = static_cast<std::size_t>(num_nodes) * vcs;
    mode.assign(static_cast<std::size_t>(num_nodes), RouterMode::kPipeline);
    resident.assign(static_cast<std::size_t>(num_nodes), 0);
    in_vc.assign(nv * kNumPorts, InputVc{});
    out_vc.assign(nv * kNumPorts, OutputVcState{});
    for (auto& v : out_vc) v.credits = buffer_depth;
    latch.assign(static_cast<std::size_t>(num_nodes) * kNumMeshDirs,
                 FlovLatch{});
    ni_credits.assign(nv, buffer_depth);
    ni_vc_busy.assign(nv, 0);
  }

  Span<InputVc> input_vcs(NodeId n, int port) {
    return {&in_vc[(static_cast<std::size_t>(n) * kNumPorts + port) * num_vcs],
            num_vcs};
  }
  Span<OutputVcState> output_vcs(NodeId n, int port) {
    return {
        &out_vc[(static_cast<std::size_t>(n) * kNumPorts + port) * num_vcs],
        num_vcs};
  }
  Span<FlovLatch> latches(NodeId n) {
    return {&latch[static_cast<std::size_t>(n) * kNumMeshDirs], kNumMeshDirs};
  }
  Span<std::int32_t> ni_credit_row(NodeId n) {
    return {&ni_credits[static_cast<std::size_t>(n) * num_vcs], num_vcs};
  }
  Span<std::uint8_t> ni_busy_row(NodeId n) {
    return {&ni_vc_busy[static_cast<std::size_t>(n) * num_vcs], num_vcs};
  }
};

}  // namespace flov
