// Persistent worker pool for domain-parallel cycle stepping.
//
// Network::step partitions the mesh into row-band domains; each cycle the
// pool releases every worker once (an epoch), each worker steps its domain,
// and the caller waits for all of them before running the barrier-side
// merges. Workers are created once per Network and parked between cycles on
// a spin-then-yield wait, so the per-cycle cost is two fences and a handful
// of atomic loads — no mutexes, condvars or allocations on the hot path.
//
// Memory-model contract (what TSan checks): the caller's epoch_ store is a
// release that publishes everything written before the cycle (merged
// channels, wake lists, cycle number) to workers, whose epoch load is an
// acquire; each worker's done-slot store is a release publishing its
// domain's writes back to the caller's acquire loads in run_cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "telemetry/ops/profile.hpp"

namespace flov {

class StepPool {
 public:
  /// Spawns `workers` threads; each epoch, worker i runs job(i, cycle).
  StepPool(int workers, std::function<void(int, Cycle)> job);
  ~StepPool();

  StepPool(const StepPool&) = delete;
  StepPool& operator=(const StepPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs one epoch: releases every worker with cycle `now`, runs
  /// `main_work` on the calling thread (its own domain), then waits for
  /// all workers to finish. Templated so the per-cycle call site does not
  /// materialize a std::function (no per-cycle allocation).
  template <typename F>
  void run_cycle(Cycle now, F&& main_work) {
    now_ = now;
    const std::uint64_t epoch =
        epoch_.fetch_add(1, std::memory_order_release) + 1;
    main_work();
    // Barrier wait, attributed to the control thread's profile slot: the
    // gap between its own domain finishing and the slowest worker's — the
    // tiles= imbalance signal the profile report surfaces.
    FLOV_PROFILE(kBarrier);
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      wait_done(i, epoch);
    }
  }

 private:
  struct alignas(64) DoneSlot {
    std::atomic<std::uint64_t> done{0};
  };

  void worker_loop(int index);
  /// Spin-then-yield wait until worker `i` finishes `epoch`.
  void wait_done(std::size_t i, std::uint64_t epoch);

  std::function<void(int, Cycle)> job_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
  Cycle now_ = 0;  ///< published by the epoch_ release/acquire pair
  std::unique_ptr<DoneSlot[]> done_;
  std::vector<std::thread> threads_;
};

}  // namespace flov
