// Active-set scheduling primitives shared by Network, Channel and the NIs.
//
// The simulator's hot loop used to step every router and NI every cycle,
// even the power-gated and empty ones — exactly the population FLOV
// maximizes. Instead, each steppable component carries a liveness flag in a
// WakeList; anything that can hand it new work (a channel send, a packet
// enqueue, a mode switch) re-arms the flag, and Network::step skips
// components whose flag is clear. A component may only clear its flag when
// stepping it would be a provable no-op (see docs/PERFORMANCE.md for the
// per-component invariants).
//
// FabricCounters are the incrementally maintained aggregates that replace
// the per-cycle O(n) in_network_flits()/idle() walks; the NIs update them
// at every injection/ejection event and Network exposes O(1) getters that
// FLOV_DCHECK against a full recount in debug builds.
#pragma once

#include <cstdint>
#include <vector>

namespace flov {

/// Per-component liveness flags. Marking is idempotent and cheap (one store)
/// so producers call it unconditionally on every send.
class WakeList {
 public:
  void init(int n, bool live = true) {
    live_.assign(static_cast<std::size_t>(n), live ? 1 : 0);
  }
  void mark(int i) { live_[static_cast<std::size_t>(i)] = 1; }
  void clear(int i) { live_[static_cast<std::size_t>(i)] = 0; }
  bool live(int i) const { return live_[static_cast<std::size_t>(i)] != 0; }
  int size() const { return static_cast<int>(live_.size()); }

  /// ORs every set flag into `dst` and clears this list. Used at the
  /// domain-parallel barrier to merge per-domain staged wake marks into the
  /// real liveness list (marks are idempotent, so merge order is free).
  void drain_into(WakeList& dst) {
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i]) {
        dst.live_[i] = 1;
        live_[i] = 0;
      }
    }
  }

 private:
  std::vector<std::uint8_t> live_;
};

/// Network-wide flit/packet aggregates, maintained by the NIs (and the
/// fault-drop hook) instead of being recounted by walking every component.
struct FabricCounters {
  std::uint64_t injected_flits = 0;  ///< NI -> local channel sends
  std::uint64_t ejected_flits = 0;   ///< NI consumptions
  std::uint64_t dropped_flits = 0;   ///< fault-injected drops on the wire
  std::uint64_t queued_packets = 0;  ///< descriptors waiting in NI queues
  std::uint64_t open_streams = 0;    ///< packets mid-injection (tail unsent)

  /// Flits currently inside the fabric (buffers + latches + channels).
  std::uint64_t in_network() const {
    return injected_flits - ejected_flits - dropped_flits;
  }
};

}  // namespace flov
