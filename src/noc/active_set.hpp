// Active-set scheduling primitives shared by Network, Channel and the NIs.
//
// The simulator's hot loop used to step every router and NI every cycle,
// even the power-gated and empty ones — exactly the population FLOV
// maximizes. Instead, each steppable component carries a liveness flag in a
// WakeList; anything that can hand it new work (a channel send, a packet
// enqueue, a mode switch) re-arms the flag, and Network::step skips
// components whose flag is clear. A component may only clear its flag when
// stepping it would be a provable no-op (see docs/PERFORMANCE.md for the
// per-component invariants).
//
// FabricCounters are the incrementally maintained aggregates that replace
// the per-cycle O(n) in_network_flits()/idle() walks; the NIs update them
// at every injection/ejection event and Network exposes O(1) getters that
// FLOV_DCHECK against a full recount in debug builds.
#pragma once

#include <cstdint>
#include <memory>
#include <new>

namespace flov {

/// Destructive-interference granularity used to keep per-domain shards
/// (counter cells, staged wake lists, tracer rings) off each other's cache
/// lines. A fixed 64 rather than std::hardware_destructive_interference_size:
/// the library constant is an ABI-affecting compile-time guess that GCC
/// warns about, and 64 is correct for every x86-64 / AArch64 target this
/// runs on (on the few 128-byte-line parts, two shards per line is a perf
/// wobble, not a correctness issue).
inline constexpr std::size_t kCacheLine = 64;

/// Per-component liveness flags. Marking is idempotent and cheap (one store)
/// so producers call it unconditionally on every send.
///
/// Storage is cache-line aligned and padded to a line multiple: each
/// per-domain staged WakeList owns whole lines, so two domains' stages (or
/// a stage and an unrelated heap neighbor) never false-share during the
/// parallel phase.
class WakeList {
 public:
  void init(int n, bool live = true) {
    size_ = n;
    const std::size_t bytes = round_up(static_cast<std::size_t>(n));
    buf_.reset(bytes != 0
                   ? new (std::align_val_t{kCacheLine}) std::uint8_t[bytes]
                   : nullptr);
    for (int i = 0; i < n; ++i) buf_[i] = live ? 1 : 0;
  }
  void mark(int i) { buf_[static_cast<std::size_t>(i)] = 1; }
  void clear(int i) { buf_[static_cast<std::size_t>(i)] = 0; }
  bool live(int i) const { return buf_[static_cast<std::size_t>(i)] != 0; }
  int size() const { return size_; }

  /// ORs every set flag into `dst` and clears this list. Used at the
  /// domain-parallel barrier to merge per-domain staged wake marks into the
  /// real liveness list (marks are idempotent, so merge order is free).
  void drain_into(WakeList& dst) {
    for (int i = 0; i < size_; ++i) {
      if (buf_[i]) {
        dst.buf_[i] = 1;
        buf_[i] = 0;
      }
    }
  }

 private:
  static std::size_t round_up(std::size_t n) {
    return (n + kCacheLine - 1) / kCacheLine * kCacheLine;
  }
  struct AlignedDelete {
    void operator()(std::uint8_t* p) const {
      ::operator delete[](p, std::align_val_t{kCacheLine});
    }
  };
  std::unique_ptr<std::uint8_t[], AlignedDelete> buf_;
  int size_ = 0;
};

/// Network-wide flit/packet aggregates, maintained by the NIs (and the
/// fault-drop hook) instead of being recounted by walking every component.
struct FabricCounters {
  std::uint64_t injected_flits = 0;  ///< NI -> local channel sends
  std::uint64_t ejected_flits = 0;   ///< NI consumptions
  std::uint64_t dropped_flits = 0;   ///< fault-injected drops on the wire
  std::uint64_t queued_packets = 0;  ///< descriptors waiting in NI queues
  std::uint64_t open_streams = 0;    ///< packets mid-injection (tail unsent)

  /// Flits currently inside the fabric (buffers + latches + channels).
  std::uint64_t in_network() const {
    return injected_flits - ejected_flits - dropped_flits;
  }
};

/// One domain's FabricCounters cell, padded to its own cache line(s):
/// adjacent domains' workers bump their counters every injection/ejection,
/// and FabricCounters itself is 40 bytes — unpadded, two shards share a
/// line and ping-pong it.
struct alignas(kCacheLine) CounterShard {
  FabricCounters c;
};

}  // namespace flov
