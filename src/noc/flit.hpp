// Flit, credit and packet descriptors.
//
// Wormhole switching: a packet is a head flit, zero or more body flits and a
// tail flit (a 1-flit packet is head+tail). Every flit carries the routing
// metadata it needs; per-hop state (current VC) is rewritten as it moves.
#pragma once

#include <cstdint>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace flov {

struct Flit {
  std::uint64_t packet_id = 0;
  std::int32_t flit_index = 0;   ///< position within the packet
  std::int32_t packet_size = 1;  ///< flits in the packet (serialization term)
  bool head = false;
  bool tail = false;

  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  VnetId vnet = 0;

  /// Cycle the packet was created at the source queue (includes queuing
  /// delay in end-to-end latency, as in BookSim).
  Cycle gen_cycle = 0;
  /// Cycle the flit entered the network (left the source queue).
  Cycle inject_cycle = 0;

  /// VC the flit occupies/will occupy at the (logical) downstream input
  /// port; computed by the upstream VA, preserved across fly-over hops.
  VcId vc = -1;

  /// True once the packet is committed to the escape sub-network (it then
  /// stays there until ejection — Section V).
  bool escape = false;

  /// Up*/down* phase bit for RP table routing (false until the path takes
  /// its first "down" link).
  bool updown_went_down = false;

  // --- end-to-end reliable delivery (noc.reliable; PROTOCOL.md §8) ---
  /// Per-(src,dest) flow sequence number; 0 = unsequenced (reliable layer
  /// off, or a control packet). Retransmitted copies keep their seq but get
  /// a fresh packet_id.
  std::uint32_t seq = 0;
  /// True for the 1-flit ack control packet class: never reported to the
  /// ejection callback, exists only to carry the ack fields below.
  bool ctrl = false;
  /// Piggybacked cumulative-free ack: "src acks your seq `ack_seq`" — valid
  /// on head flits when ack_valid is set (data head or ctrl flit).
  std::uint32_t ack_seq = 0;
  bool ack_valid = false;

  // --- latency-breakdown counters, accumulated on the head flit ---
  std::uint16_t router_hops = 0;  ///< powered-router pipeline traversals
  std::uint16_t link_hops = 0;    ///< inter-router link traversals
  std::uint16_t flov_hops = 0;    ///< FLOV latch traversals

  /// Opaque handle for higher layers (the CMP substrate stores message ids).
  std::uint64_t payload = 0;
};

/// Credit returned upstream when a flit leaves an input buffer slot.
struct Credit {
  VcId vc = -1;
};

/// Descriptor used by traffic generators / the CMP layer to request a packet
/// injection; the network interface turns it into flits.
struct PacketDescriptor {
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  VnetId vnet = 0;
  std::int32_t size_flits = 1;
  Cycle gen_cycle = 0;
  std::uint64_t payload = 0;

  /// Reliable-delivery metadata (see Flit): seq != 0 marks a descriptor
  /// already owned by the retransmit buffer; ctrl marks the ack packet
  /// class generated inside the NI.
  std::uint32_t seq = 0;
  bool ctrl = false;
  std::uint32_t ack_seq = 0;
  bool ack_valid = false;
};

}  // namespace flov
