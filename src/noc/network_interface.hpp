// Network interface (NI): the core-side endpoint of a router's local port.
//
// Injection: packet descriptors queue here, are flitized, and enter the
// router's local input port under credit flow control (one flit per cycle;
// concurrent packets may interleave across different VCs, as in BookSim).
// Ejection: flits arriving on the router's local output port are consumed
// immediately, credits are returned, and completed packets are reported to
// the ejection callback with their latency-breakdown counters.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "noc/active_set.hpp"
#include "noc/channel.hpp"
#include "noc/flit.hpp"
#include "noc/noc_params.hpp"
#include "telemetry/trace.hpp"

namespace flov {

/// Completed-packet report (one per ejected packet).
struct PacketRecord {
  std::uint64_t packet_id = 0;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  VnetId vnet = 0;
  int size_flits = 0;
  Cycle gen_cycle = 0;     ///< created at the source queue
  Cycle inject_cycle = 0;  ///< head flit left the source queue
  Cycle eject_cycle = 0;   ///< tail flit consumed at the destination
  int router_hops = 0;     ///< powered-router pipeline traversals (head)
  int link_hops = 0;       ///< link traversals (head)
  int flov_hops = 0;       ///< FLOV latch traversals (head)
  bool used_escape = false;
  std::uint64_t payload = 0;

  Cycle total_latency() const { return eject_cycle - gen_cycle; }
};

class NetworkInterface {
 public:
  NetworkInterface(NodeId node, const NocParams& params);

  // Wiring (non-owning), mirror of the router's local port.
  void connect_to_router(Channel<Flit>* ch) { to_router_ = ch; }
  void connect_from_router(Channel<Flit>* ch) { from_router_ = ch; }
  void connect_credit_from_router(Channel<Credit>* ch) { credit_from_ = ch; }
  void connect_credit_to_router(Channel<Credit>* ch) { credit_to_ = ch; }

  /// Installs THE primary ejection callback (replaces any previous one but
  /// keeps observers added with add_eject_callback).
  void set_eject_callback(std::function<void(const PacketRecord&)> cb) {
    eject_cb_ = std::move(cb);
  }
  /// Adds a passive observer notified after the primary callback (used by
  /// the invariant verifier; observers survive set_eject_callback).
  void add_eject_callback(std::function<void(const PacketRecord&)> cb) {
    eject_observers_.push_back(std::move(cb));
  }

  /// Network-level aggregates + liveness flag (set once by the Network;
  /// null for standalone NIs in unit tests).
  void set_fabric_hooks(FabricCounters* counters, WakeList* wake, int index) {
    counters_ = counters;
    wake_ = wake;
    wake_index_ = index;
  }

  /// Queues a packet for injection.
  void enqueue(const PacketDescriptor& pkt) {
    queue_.push_back(pkt);
    if (counters_) counters_->queued_packets++;
    if (wake_) wake_->mark(wake_index_);
    FLOV_TRACE(telemetry::kTraceFlit, telemetry::TraceEventType::kPacketGen,
               pkt.gen_cycle, node_, pkt.dest, pkt.size_flits);
  }

  /// When true the NI refuses to START new packets (used by RP's Phase-I
  /// reconfiguration stall; queued packets keep their gen_cycle so the
  /// stall shows up as queuing latency, as in Fig. 10).
  void set_injection_stalled(bool stalled) {
    stalled_ = stalled;
    if (wake_ && !stalled) wake_->mark(wake_index_);
  }
  bool injection_stalled() const { return stalled_; }

  void step(Cycle now);

  bool idle() const { return queue_.empty() && streams_.empty(); }
  /// True when stepping this NI would be a no-op: nothing queued, nothing
  /// mid-injection, and nothing (present or future) on the incoming wires.
  /// Network::step may park a quiescent NI until something re-arms it.
  bool quiescent() const {
    return queue_.empty() && streams_.empty() &&
           (!from_router_ || from_router_->empty()) &&
           (!credit_from_ || credit_from_->empty());
  }
  /// True while a packet is mid-injection (some flits sent, tail pending).
  bool streams_active() const { return !streams_.empty(); }
  /// Removes queued (not yet started) packets matching `pred`; returns the
  /// number removed. Used by RP to void packets whose destination was
  /// parked between generation and injection.
  template <typename Pred>
  std::size_t purge_queue(Pred&& pred) {
    const std::size_t before = queue_.size();
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(), pred),
                 queue_.end());
    const std::size_t removed = before - queue_.size();
    if (counters_) counters_->queued_packets -= removed;
    return removed;
  }
  std::size_t queued_packets() const { return queue_.size(); }
  std::uint64_t injected_flits() const { return injected_flits_; }
  std::uint64_t ejected_flits() const { return ejected_flits_; }
  std::uint64_t ejected_packets() const { return ejected_packets_; }

 private:
  struct Stream {
    PacketDescriptor pkt;
    std::uint64_t packet_id = 0;
    int next_flit = 0;
    Cycle inject_cycle = 0;
  };

  void eject(Cycle now);
  void inject(Cycle now);

  NodeId node_;
  NocParams params_;
  /// Per-NI packet id sequence. Ids are allocated in the interleaved space
  /// `1 + node + seq * num_nodes`, so they are unique across the mesh yet
  /// depend only on this NI's own injection count — never on the global
  /// order NIs happen to start packets in (which domain-parallel stepping
  /// must not observe).
  std::uint64_t next_packet_seq_ = 0;

  Channel<Flit>* to_router_ = nullptr;
  Channel<Flit>* from_router_ = nullptr;
  Channel<Credit>* credit_from_ = nullptr;
  Channel<Credit>* credit_to_ = nullptr;

  std::deque<PacketDescriptor> queue_;
  std::map<VcId, Stream> streams_;   ///< in-flight injection per local VC
  std::vector<int> credits_;         ///< free slots per local input VC
  std::vector<bool> vc_busy_;        ///< local VC mid-packet (until tail sent)
  int rr_vc_ = 0;

  std::map<std::uint64_t, Flit> pending_heads_;  ///< head held until tail
  std::function<void(const PacketRecord&)> eject_cb_;
  std::vector<std::function<void(const PacketRecord&)>> eject_observers_;
  bool stalled_ = false;

  FabricCounters* counters_ = nullptr;  ///< network aggregates (may be null)
  WakeList* wake_ = nullptr;
  int wake_index_ = -1;

  std::uint64_t injected_flits_ = 0;
  std::uint64_t ejected_flits_ = 0;
  std::uint64_t ejected_packets_ = 0;
};

}  // namespace flov
