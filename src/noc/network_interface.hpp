// Network interface (NI): the core-side endpoint of a router's local port.
//
// Injection: packet descriptors queue here, are flitized, and enter the
// router's local input port under credit flow control (one flit per cycle;
// concurrent packets may interleave across different VCs, as in BookSim).
// Ejection: flits arriving on the router's local output port are consumed
// immediately, credits are returned, and completed packets are reported to
// the ejection callback with their latency-breakdown counters.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "noc/active_set.hpp"
#include "noc/channel.hpp"
#include "noc/flit.hpp"
#include "noc/hot_state.hpp"
#include "noc/noc_params.hpp"
#include "telemetry/trace.hpp"

namespace flov {

/// Completed-packet report (one per ejected packet).
struct PacketRecord {
  std::uint64_t packet_id = 0;
  NodeId src = kInvalidNode;
  NodeId dest = kInvalidNode;
  VnetId vnet = 0;
  int size_flits = 0;
  Cycle gen_cycle = 0;     ///< created at the source queue
  Cycle inject_cycle = 0;  ///< head flit left the source queue
  Cycle eject_cycle = 0;   ///< tail flit consumed at the destination
  int router_hops = 0;     ///< powered-router pipeline traversals (head)
  int link_hops = 0;       ///< link traversals (head)
  int flov_hops = 0;       ///< FLOV latch traversals (head)
  bool used_escape = false;
  std::uint64_t payload = 0;

  Cycle total_latency() const { return eject_cycle - gen_cycle; }
};

/// A reliable-delivery flow that exhausted its retries (or lost its source
/// node) and was declared dead: surfaced by the experiment harness as a
/// structured incident instead of hanging the drain loop.
struct DeadPacket {
  PacketDescriptor pkt;
  std::uint32_t seq = 0;
  int retries = 0;
  Cycle declared_at = 0;
};

class NetworkInterface {
 public:
  /// `hot` points at the mesh-wide SoA slab holding this NI's per-VC credit
  /// counters and busy flags (indexed by `node`); null (standalone unit
  /// tests) binds a private single-slot slab.
  NetworkInterface(NodeId node, const NocParams& params,
                   MeshHotState* hot = nullptr);

  // Wiring (non-owning), mirror of the router's local port.
  void connect_to_router(Channel<Flit>* ch) { to_router_ = ch; }
  void connect_from_router(Channel<Flit>* ch) { from_router_ = ch; }
  void connect_credit_from_router(Channel<Credit>* ch) { credit_from_ = ch; }
  void connect_credit_to_router(Channel<Credit>* ch) { credit_to_ = ch; }

  /// Installs THE primary ejection callback (replaces any previous one but
  /// keeps observers added with add_eject_callback).
  void set_eject_callback(std::function<void(const PacketRecord&)> cb) {
    eject_cb_ = std::move(cb);
  }
  /// Adds a passive observer notified after the primary callback (used by
  /// the invariant verifier; observers survive set_eject_callback).
  void add_eject_callback(std::function<void(const PacketRecord&)> cb) {
    eject_observers_.push_back(std::move(cb));
  }

  /// Network-level aggregates + liveness flag (set once by the Network;
  /// null for standalone NIs in unit tests).
  void set_fabric_hooks(FabricCounters* counters, WakeList* wake, int index) {
    counters_ = counters;
    wake_ = wake;
    wake_index_ = index;
  }

  /// Queues a packet for injection. A dead (hard-faulted) NI silently
  /// destroys the request and accounts it in killed_at_source().
  void enqueue(const PacketDescriptor& pkt) {
    if (dead_) {
      killed_at_source_++;
      return;
    }
    queue_.push_back(pkt);
    if (counters_) counters_->queued_packets++;
    if (wake_) wake_->mark(wake_index_);
    FLOV_TRACE(telemetry::kTraceFlit, telemetry::TraceEventType::kPacketGen,
               pkt.gen_cycle, node_, pkt.dest, pkt.size_flits);
  }

  /// When true the NI refuses to START new packets (used by RP's Phase-I
  /// reconfiguration stall; queued packets keep their gen_cycle so the
  /// stall shows up as queuing latency, as in Fig. 10).
  void set_injection_stalled(bool stalled) {
    stalled_ = stalled;
    if (wake_ && !stalled) wake_->mark(wake_index_);
  }
  bool injection_stalled() const { return stalled_; }

  void step(Cycle now);

  bool idle() const { return queue_.empty() && streams_.empty(); }
  /// True when stepping this NI would be a no-op: nothing queued, nothing
  /// mid-injection, and nothing (present or future) on the incoming wires.
  /// Network::step may park a quiescent NI until something re-arms it.
  /// A reliable NI additionally stays live while its retransmit buffer or
  /// pending-ack list is non-empty (both are timer-driven).
  bool quiescent() const {
    return queue_.empty() && streams_.empty() &&
           (!from_router_ || from_router_->empty()) &&
           (!credit_from_ || credit_from_->empty()) &&
           (!params_.reliable || (tx_.empty() && acks_.empty()));
  }
  /// True while a packet is mid-injection (some flits sent, tail pending).
  bool streams_active() const { return !streams_.empty(); }
  /// Removes queued (not yet started) packets matching `pred` and — with
  /// the reliable layer on — fails tracked flows matching `pred` fast:
  /// queued retransmit copies and timed-out entries are declared dead
  /// immediately, mid-injection ones at tail send, and pending acks to
  /// matching targets are dropped. Returns the number of queued packets
  /// removed. Used by RP to void packets whose destination was parked or
  /// died between generation and injection.
  std::size_t purge_queue(const std::function<bool(const PacketDescriptor&)>& pred);
  std::size_t queued_packets() const { return queue_.size(); }
  std::uint64_t injected_flits() const { return injected_flits_; }
  std::uint64_t ejected_flits() const { return ejected_flits_; }
  std::uint64_t ejected_packets() const { return ejected_packets_; }

  // --- reliable-delivery introspection (all zero when noc.reliable off) ---
  std::uint64_t seq_allocated() const { return seq_allocated_; }
  std::uint64_t packets_acked() const { return acked_; }
  std::uint64_t packets_dead() const { return dead_declared_; }
  std::uint64_t packets_purged() const { return purged_; }
  std::uint64_t killed_at_source() const { return killed_at_source_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t dup_packets() const { return dup_packets_; }
  std::size_t tx_outstanding() const { return tx_.size(); }
  /// True when no reliable-delivery obligations remain (the drain phase
  /// ends when every NI reports this plus the usual idle conditions).
  bool reliable_quiescent() const { return tx_.empty() && acks_.empty(); }
  const std::vector<DeadPacket>& dead_log() const { return dead_log_; }

  /// Hard-fault fail-stop (PROTOCOL.md §8): the NI turns into a sink.
  /// Arriving flits are still consumed and credited (conservation intact)
  /// but never reported; the queue is destroyed; outstanding reliable flows
  /// are declared dead; open injection streams finish (a half-injected worm
  /// must not be left headless in the fabric); new enqueues are destroyed.
  void kill(Cycle now);
  bool dead() const { return dead_; }

 private:
  struct Stream {
    PacketDescriptor pkt;
    std::uint64_t packet_id = 0;
    int next_flit = 0;
    Cycle inject_cycle = 0;
  };
  /// Source-side state of one tracked (dest, seq) flow.
  struct TxEntry {
    PacketDescriptor pkt;
    int retries = 0;
    bool in_flight = true;  ///< queued or mid-injection (timer disarmed)
    bool doomed = false;    ///< destination unreachable: die at tail send
    Cycle deadline = 0;     ///< retransmit timer (valid when !in_flight)
  };
  struct PendingAck {
    NodeId to = kInvalidNode;
    std::uint32_t seq = 0;
    Cycle due = 0;  ///< promoted to a standalone ctrl packet at this cycle
  };

  static std::uint64_t flow_key(NodeId dest, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(dest) << 32) | seq;
  }

  void eject(Cycle now);
  void inject(Cycle now);
  void step_retx_timers(Cycle now);
  void declare_dead(const TxEntry& e, std::uint32_t seq, Cycle now);
  void schedule_ack(NodeId to, std::uint32_t seq, Cycle now);
  bool already_delivered(NodeId src, std::uint32_t seq) const;
  void mark_delivered(NodeId src, std::uint32_t seq);

  NodeId node_;
  NocParams params_;
  /// Per-NI packet id sequence. Ids are allocated in the interleaved space
  /// `1 + node + seq * num_nodes`, so they are unique across the mesh yet
  /// depend only on this NI's own injection count — never on the global
  /// order NIs happen to start packets in (which domain-parallel stepping
  /// must not observe).
  std::uint64_t next_packet_seq_ = 0;

  Channel<Flit>* to_router_ = nullptr;
  Channel<Flit>* from_router_ = nullptr;
  Channel<Credit>* credit_from_ = nullptr;
  Channel<Credit>* credit_to_ = nullptr;

  std::deque<PacketDescriptor> queue_;
  std::map<VcId, Stream> streams_;   ///< in-flight injection per local VC
  /// Private single-slot slab for standalone construction (unit tests).
  std::unique_ptr<MeshHotState> self_hot_;
  Span<std::int32_t> credits_;   ///< free slots per local input VC (slab)
  Span<std::uint8_t> vc_busy_;   ///< local VC mid-packet until tail (slab)
  int rr_vc_ = 0;

  std::map<std::uint64_t, Flit> pending_heads_;  ///< head held until tail
  std::function<void(const PacketRecord&)> eject_cb_;
  std::vector<std::function<void(const PacketRecord&)>> eject_observers_;
  bool stalled_ = false;

  FabricCounters* counters_ = nullptr;  ///< network aggregates (may be null)
  WakeList* wake_ = nullptr;
  int wake_index_ = -1;

  std::uint64_t injected_flits_ = 0;
  std::uint64_t ejected_flits_ = 0;
  std::uint64_t ejected_packets_ = 0;

  // --- reliable-delivery state (engaged only when params_.reliable) ---
  bool dead_ = false;
  std::map<NodeId, std::uint32_t> tx_next_seq_;  ///< last seq per dest (1-based)
  std::map<std::uint64_t, TxEntry> tx_;          ///< keyed by flow_key()
  std::map<NodeId, std::uint32_t> rx_floor_;     ///< all seqs <= floor seen
  std::map<NodeId, std::set<std::uint32_t>> rx_above_;  ///< seen above floor
  std::deque<PendingAck> acks_;
  std::vector<DeadPacket> dead_log_;
  std::uint64_t seq_allocated_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t dead_declared_ = 0;
  std::uint64_t purged_ = 0;
  std::uint64_t killed_at_source_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t dup_packets_ = 0;
};

}  // namespace flov
