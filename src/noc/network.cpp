#include "noc/network.hpp"

#include "common/log.hpp"
#include "telemetry/metrics.hpp"

namespace flov {

Network::Network(const NocParams& params, RoutingFunction* routing,
                 PowerTracker* power)
    : params_(params), geom_(params.width, params.height) {
  params_.validate();
  const int n = geom_.num_nodes();
  routers_.reserve(n);
  nis_.reserve(n);
  flit_out_.resize(n);
  router_live_.init(n);
  ni_live_.init(n);
  for (NodeId id = 0; id < n; ++id) {
    routers_.push_back(
        std::make_unique<Router>(id, geom_, params_, routing, power));
    nis_.push_back(
        std::make_unique<NetworkInterface>(id, params_, &packet_id_counter_));
    routers_[id]->set_wake_target(&router_live_, id);
    nis_[id]->set_fabric_hooks(&counters_, &ni_live_, id);
    flit_out_[id].fill(nullptr);
  }

  auto new_flit_channel = [&](Cycle latency) {
    flit_channels_.push_back(std::make_unique<Channel<Flit>>(latency));
    return flit_channels_.back().get();
  };
  auto new_credit_channel = [&](Cycle latency) {
    credit_channels_.push_back(std::make_unique<Channel<Credit>>(latency));
    return credit_channels_.back().get();
  };

  // Inter-router links: one flit channel and one credit back-channel per
  // directed edge. Every channel wakes its RECEIVER on send — the sender is
  // already live (it just stepped), and the receiver must not stay parked
  // while something is in flight toward it.
  for (NodeId a = 0; a < n; ++a) {
    for (Direction d : kMeshDirections) {
      const NodeId b = geom_.neighbor(a, d);
      if (b == kInvalidNode) continue;
      Channel<Flit>* fch = new_flit_channel(params_.link_latency);
      routers_[a]->connect_flit_out(d, fch);
      routers_[b]->connect_flit_in(opposite(d), fch);
      fch->set_wake_target(&router_live_, b);
      flit_out_[a][dir_index(d)] = fch;

      Channel<Credit>* cch = new_credit_channel(1);
      routers_[b]->connect_credit_out(opposite(d), cch);
      routers_[a]->connect_credit_in(d, cch);
      cch->set_wake_target(&router_live_, a);
    }
  }

  // Local ports: NI <-> router.
  for (NodeId id = 0; id < n; ++id) {
    Channel<Flit>* inj = new_flit_channel(1);
    nis_[id]->connect_to_router(inj);
    routers_[id]->connect_flit_in(Direction::Local, inj);
    inj->set_wake_target(&router_live_, id);
    flit_out_[id][dir_index(Direction::Local)] = nullptr;

    Channel<Flit>* ej = new_flit_channel(1);
    routers_[id]->connect_flit_out(Direction::Local, ej);
    nis_[id]->connect_from_router(ej);
    ej->set_wake_target(&ni_live_, id);

    Channel<Credit>* cr_up = new_credit_channel(1);
    routers_[id]->connect_credit_out(Direction::Local, cr_up);
    nis_[id]->connect_credit_from_router(cr_up);
    cr_up->set_wake_target(&ni_live_, id);

    Channel<Credit>* cr_down = new_credit_channel(1);
    nis_[id]->connect_credit_to_router(cr_down);
    routers_[id]->connect_credit_in(Direction::Local, cr_down);
    cr_down->set_wake_target(&router_live_, id);
  }
}

void Network::step(Cycle now) {
  // Node-id order, same as stepping everything: the only cross-router
  // ordering that is observable within a cycle is via shared callbacks
  // (e.g. the wakeup-trigger dedup), and skipping a quiescent router is
  // equivalent to stepping it (its step would be a pure no-op; its VA
  // round-robin tick is replayed when it next runs — Router::step).
  const int n = geom_.num_nodes();
  for (NodeId id = 0; id < n; ++id) {
    if (!router_live_.live(id)) continue;
    Router& r = *routers_[id];
    r.step(now);
    // A quiescent router stays parked until a send/mode-switch re-arms it.
    // Note this runs AFTER the step: anything the step produced went out
    // through channels (marking the receivers), so clearing here is safe.
    if (r.quiescent()) router_live_.clear(id);
  }
  for (NodeId id = 0; id < n; ++id) {
    if (!ni_live_.live(id)) continue;
    NetworkInterface& ni = *nis_[id];
    ni.step(now);
    if (ni.quiescent()) ni_live_.clear(id);
  }
}

void Network::set_eject_callback(
    std::function<void(const PacketRecord&)> cb) {
  for (auto& ni : nis_) ni->set_eject_callback(cb);
}

void Network::add_eject_callback(
    std::function<void(const PacketRecord&)> cb) {
  for (auto& ni : nis_) ni->add_eject_callback(cb);
}

std::uint64_t Network::in_network_flits() const {
  const std::uint64_t cached = counters_.in_network();
  FLOV_DCHECK(cached == recount_in_network_flits(),
              "cached in-network flit count drifted from recount");
  return cached;
}

bool Network::idle() const {
  const bool cached = counters_.in_network() == 0 &&
                      counters_.queued_packets == 0 &&
                      counters_.open_streams == 0;
  FLOV_DCHECK(cached == recount_idle(), "cached idle() drifted from recount");
  return cached;
}

bool Network::in_flight_empty() const {
  const bool cached =
      counters_.in_network() == 0 && counters_.open_streams == 0;
  FLOV_DCHECK(cached == recount_in_flight_empty(),
              "cached in_flight_empty() drifted from recount");
  return cached;
}

std::uint64_t Network::total_injected_flits() const {
  return counters_.injected_flits;
}

std::uint64_t Network::total_ejected_flits() const {
  return counters_.ejected_flits;
}

std::uint64_t Network::total_queued_packets() const {
  return counters_.queued_packets;
}

std::uint64_t Network::recount_in_network_flits() const {
  std::uint64_t n = 0;
  for (const auto& r : routers_) {
    n += static_cast<std::uint64_t>(r->buffered_flits());
  }
  for (const auto& ch : flit_channels_) n += ch->in_flight();
  return n;
}

bool Network::recount_idle() const {
  for (const auto& r : routers_) {
    if (!r->completely_empty()) return false;
  }
  for (const auto& ni : nis_) {
    if (!ni->idle()) return false;
  }
  for (const auto& ch : flit_channels_) {
    if (!ch->empty()) return false;
  }
  return true;
}

bool Network::recount_in_flight_empty() const {
  for (const auto& r : routers_) {
    if (!r->completely_empty()) return false;
  }
  for (const auto& ni : nis_) {
    if (ni->streams_active()) return false;
  }
  for (const auto& ch : flit_channels_) {
    if (!ch->empty()) return false;
  }
  return true;
}

void Network::publish_metrics(telemetry::MetricsRegistry& reg) const {
  reg.counter("net.injected_flits") += counters_.injected_flits;
  reg.counter("net.ejected_flits") += counters_.ejected_flits;
  reg.counter("net.dropped_flits") += counters_.dropped_flits;
  std::uint64_t traversed = 0, flown_over = 0, diversions = 0, captures = 0;
  for (const auto& r : routers_) {
    traversed += r->flits_traversed();
    flown_over += r->flits_flown_over();
    diversions += r->escape_diversions();
    captures += r->self_captures();
  }
  reg.counter("net.flits_traversed") += traversed;
  reg.counter("net.flits_flown_over") += flown_over;
  reg.counter("net.escape_diversions") += diversions;
  reg.counter("net.self_captures") += captures;
}

}  // namespace flov
