#include "noc/network.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "telemetry/metrics.hpp"

namespace flov {

Network::Network(const NocParams& params, RoutingFunction* routing,
                 PowerTracker* power)
    : params_(params), geom_(params.width, params.height) {
  params_.validate();
  const int n = geom_.num_nodes();

  // Row-band domain decomposition. Domains are contiguous node-id ranges
  // (ids are row-major), so "domain order" and "node-id order" agree —
  // every barrier-side replay below leans on that. Sized FIRST: the NIs
  // below capture pointers into counter_shards_.
  num_domains_ = std::min(params_.step_threads, params_.height);
  FLOV_CHECK(num_domains_ >= 1, "need at least one step domain");
  node_domain_.resize(static_cast<std::size_t>(n));
  domain_range_.resize(static_cast<std::size_t>(num_domains_));
  counter_shards_.resize(static_cast<std::size_t>(num_domains_));
  for (int d = 0; d < num_domains_; ++d) {
    const int row_lo = d * params_.height / num_domains_;
    const int row_hi = (d + 1) * params_.height / num_domains_;
    domain_range_[d] = {row_lo * params_.width, row_hi * params_.width};
    for (NodeId id = domain_range_[d].first; id < domain_range_[d].second;
         ++id) {
      node_domain_[id] = d;
    }
  }
  if (num_domains_ > 1) {
    wake_stages_.resize(static_cast<std::size_t>(num_domains_));
    for (auto& s : wake_stages_) s.init(n, /*live=*/false);
    eject_stage_.resize(static_cast<std::size_t>(num_domains_));
  }

  routers_.reserve(n);
  nis_.reserve(n);
  flit_out_.resize(n);
  router_live_.init(n);
  ni_live_.init(n);
  for (NodeId id = 0; id < n; ++id) {
    routers_.push_back(
        std::make_unique<Router>(id, geom_, params_, routing, power));
    nis_.push_back(std::make_unique<NetworkInterface>(id, params_));
    routers_[id]->set_wake_target(&router_live_, id);
    nis_[id]->set_fabric_hooks(&counter_shards_[node_domain_[id]], &ni_live_,
                               id);
    flit_out_[id].fill(nullptr);
  }

  auto new_flit_channel = [&](Cycle latency) {
    flit_channels_.push_back(std::make_unique<Channel<Flit>>(latency));
    return flit_channels_.back().get();
  };
  auto new_credit_channel = [&](Cycle latency) {
    credit_channels_.push_back(std::make_unique<Channel<Credit>>(latency));
    return credit_channels_.back().get();
  };

  // Inter-router links: one flit channel and one credit back-channel per
  // directed edge. Every channel wakes its RECEIVER on send — the sender is
  // already live (it just stepped), and the receiver must not stay parked
  // while something is in flight toward it. Edges whose endpoints lie in
  // different domains (only North/South links can — rows never split) are
  // put into staging mode: sends collect sender-side and the wake mark goes
  // to the sender's domain stage, both merged at the barrier.
  for (NodeId a = 0; a < n; ++a) {
    for (Direction d : kMeshDirections) {
      const NodeId b = geom_.neighbor(a, d);
      if (b == kInvalidNode) continue;
      Channel<Flit>* fch = new_flit_channel(params_.link_latency);
      routers_[a]->connect_flit_out(d, fch);
      routers_[b]->connect_flit_in(opposite(d), fch);
      flit_out_[a][dir_index(d)] = fch;

      Channel<Credit>* cch = new_credit_channel(1);
      routers_[b]->connect_credit_out(opposite(d), cch);
      routers_[a]->connect_credit_in(d, cch);

      if (node_domain_[a] != node_domain_[b]) {
        // Flit channel: sender a, receiver b. Credit channel: sender b.
        fch->set_staging(true);
        fch->set_wake_target(&wake_stages_[node_domain_[a]], b);
        boundary_flit_.push_back(fch);
        cch->set_staging(true);
        cch->set_wake_target(&wake_stages_[node_domain_[b]], a);
        boundary_credit_.push_back(cch);
      } else {
        fch->set_wake_target(&router_live_, b);
        cch->set_wake_target(&router_live_, a);
      }
    }
  }

  // Local ports: NI <-> router. Always node-local, never cross a domain.
  for (NodeId id = 0; id < n; ++id) {
    Channel<Flit>* inj = new_flit_channel(1);
    nis_[id]->connect_to_router(inj);
    routers_[id]->connect_flit_in(Direction::Local, inj);
    inj->set_wake_target(&router_live_, id);
    flit_out_[id][dir_index(Direction::Local)] = nullptr;

    Channel<Flit>* ej = new_flit_channel(1);
    routers_[id]->connect_flit_out(Direction::Local, ej);
    nis_[id]->connect_from_router(ej);
    ej->set_wake_target(&ni_live_, id);

    Channel<Credit>* cr_up = new_credit_channel(1);
    routers_[id]->connect_credit_out(Direction::Local, cr_up);
    nis_[id]->connect_credit_from_router(cr_up);
    cr_up->set_wake_target(&ni_live_, id);

    Channel<Credit>* cr_down = new_credit_channel(1);
    nis_[id]->connect_credit_to_router(cr_down);
    routers_[id]->connect_credit_in(Direction::Local, cr_down);
    cr_down->set_wake_target(&router_live_, id);
  }

  if (num_domains_ > 1) {
    // With >1 domain the NIs report ejections into per-domain stages; the
    // barrier replays them in node-id order through the stored callback +
    // observers (see set_eject_callback).
    for (NodeId id = 0; id < n; ++id) {
      const int dom = node_domain_[id];
      nis_[id]->set_eject_callback([this, dom](const PacketRecord& rec) {
        eject_stage_[dom].push_back(rec);
      });
    }
    pool_ = std::make_unique<StepPool>(
        num_domains_ - 1, [this](int w, Cycle now) {
#if defined(FLYOVER_TRACING) && FLYOVER_TRACING
          telemetry::Tracer* t = step_tracer_;
          telemetry::TraceScope scope(t ? t->shard(w + 1) : nullptr);
#endif
          step_domain(w + 1, now);
        });
  }
}

void Network::step_domain(int dom, Cycle now) {
  // Node-id order, same as stepping everything: the only cross-router
  // ordering that is observable within a cycle is via shared callbacks
  // (e.g. the wakeup-trigger dedup, which the FLOV layer stages and
  // replays in id order), and skipping a quiescent router is equivalent to
  // stepping it (its step would be a pure no-op; its VA round-robin tick
  // is replayed when it next runs — Router::step).
  const auto [lo, hi] = domain_range_[dom];
  for (NodeId id = lo; id < hi; ++id) {
    if (!router_live_.live(id)) continue;
    Router& r = *routers_[id];
    r.step(now);
    // A quiescent router stays parked until a send/mode-switch re-arms it.
    // Note this runs AFTER the step: anything the step produced went out
    // through channels (marking the receivers), so clearing here is safe.
    // Cross-domain arrivals the router cannot see yet (staged) re-mark it
    // via the wake-stage merge at the barrier.
    if (r.quiescent()) router_live_.clear(id);
  }
  for (NodeId id = lo; id < hi; ++id) {
    if (!ni_live_.live(id)) continue;
    NetworkInterface& ni = *nis_[id];
    ni.step(now);
    if (ni.quiescent()) ni_live_.clear(id);
  }
}

void Network::merge_domains() {
  // All merges below are deterministic folds in fixed (wiring or domain ==
  // node-id) order; none depend on worker timing.
  for (Channel<Flit>* ch : boundary_flit_) ch->merge_staged();
  for (Channel<Credit>* ch : boundary_credit_) ch->merge_staged();
  for (auto& stage : wake_stages_) stage.drain_into(router_live_);
  for (auto& stage : eject_stage_) {
    for (const PacketRecord& rec : stage) {
      if (user_eject_cb_) user_eject_cb_(rec);
      for (const auto& cb : eject_observers_) cb(rec);
    }
    stage.clear();
  }
}

void Network::step(Cycle now) {
  if (num_domains_ == 1) {
    step_domain(0, now);
    return;
  }
#if defined(FLYOVER_TRACING) && FLYOVER_TRACING
  telemetry::Tracer* parent = telemetry::thread_trace_state().tracer;
  if (parent != nullptr) parent->ensure_shards(num_domains_);
  step_tracer_ = parent;  // published to workers by the pool's epoch fence
  {
    telemetry::TraceScope scope(parent ? parent->shard(0) : nullptr);
    pool_->run_cycle(now, [this, now] { step_domain(0, now); });
  }
#else
  pool_->run_cycle(now, [this, now] { step_domain(0, now); });
#endif
  merge_domains();
}

void Network::set_eject_callback(
    std::function<void(const PacketRecord&)> cb) {
  if (num_domains_ > 1) {
    // The NIs keep their staging callback; the user callback runs at the
    // barrier replay instead.
    user_eject_cb_ = std::move(cb);
    return;
  }
  for (auto& ni : nis_) ni->set_eject_callback(cb);
}

void Network::add_eject_callback(
    std::function<void(const PacketRecord&)> cb) {
  if (num_domains_ > 1) {
    eject_observers_.push_back(std::move(cb));
    return;
  }
  for (auto& ni : nis_) ni->add_eject_callback(cb);
}

FabricCounters Network::counters() const {
  FabricCounters total;
  for (const FabricCounters& s : counter_shards_) {
    total.injected_flits += s.injected_flits;
    total.ejected_flits += s.ejected_flits;
    total.dropped_flits += s.dropped_flits;
    total.queued_packets += s.queued_packets;
    total.open_streams += s.open_streams;
  }
  return total;
}

std::uint64_t Network::in_network_flits() const {
  const std::uint64_t cached = counters().in_network();
  FLOV_DCHECK(cached == recount_in_network_flits(),
              "cached in-network flit count drifted from recount");
  return cached;
}

bool Network::idle() const {
  const FabricCounters c = counters();
  const bool cached =
      c.in_network() == 0 && c.queued_packets == 0 && c.open_streams == 0;
  FLOV_DCHECK(cached == recount_idle(), "cached idle() drifted from recount");
  return cached;
}

bool Network::in_flight_empty() const {
  const FabricCounters c = counters();
  const bool cached = c.in_network() == 0 && c.open_streams == 0;
  FLOV_DCHECK(cached == recount_in_flight_empty(),
              "cached in_flight_empty() drifted from recount");
  return cached;
}

std::uint64_t Network::total_injected_flits() const {
  return counters().injected_flits;
}

std::uint64_t Network::total_ejected_flits() const {
  return counters().ejected_flits;
}

std::uint64_t Network::total_queued_packets() const {
  return counters().queued_packets;
}

std::uint64_t Network::recount_in_network_flits() const {
  std::uint64_t n = 0;
  for (const auto& r : routers_) {
    n += static_cast<std::uint64_t>(r->buffered_flits());
  }
  for (const auto& ch : flit_channels_) n += ch->in_flight();
  return n;
}

bool Network::recount_idle() const {
  for (const auto& r : routers_) {
    if (!r->completely_empty()) return false;
  }
  for (const auto& ni : nis_) {
    if (!ni->idle()) return false;
  }
  for (const auto& ch : flit_channels_) {
    if (!ch->empty()) return false;
  }
  return true;
}

bool Network::recount_in_flight_empty() const {
  for (const auto& r : routers_) {
    if (!r->completely_empty()) return false;
  }
  for (const auto& ni : nis_) {
    if (ni->streams_active()) return false;
  }
  for (const auto& ch : flit_channels_) {
    if (!ch->empty()) return false;
  }
  return true;
}

void Network::publish_metrics(telemetry::MetricsRegistry& reg) const {
  const FabricCounters c = counters();
  reg.counter("net.injected_flits") += c.injected_flits;
  reg.counter("net.ejected_flits") += c.ejected_flits;
  reg.counter("net.dropped_flits") += c.dropped_flits;
  std::uint64_t traversed = 0, flown_over = 0, diversions = 0, captures = 0;
  for (const auto& r : routers_) {
    traversed += r->flits_traversed();
    flown_over += r->flits_flown_over();
    diversions += r->escape_diversions();
    captures += r->self_captures();
  }
  reg.counter("net.flits_traversed") += traversed;
  reg.counter("net.flits_flown_over") += flown_over;
  reg.counter("net.escape_diversions") += diversions;
  reg.counter("net.self_captures") += captures;
}

}  // namespace flov
