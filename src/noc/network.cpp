#include "noc/network.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "noc/ipc/shm_arena.hpp"
#include "telemetry/metrics.hpp"

namespace flov {

namespace {

/// Worker-process-private stepping pool for multi-process mode.
/// Deliberately NOT a Network member: a pool's threads belong to the
/// process that created them, and the Network object lives in the shared
/// arena — if the pool were stored there, the PARENT's Network destructor
/// would try to join another process's threads. Each forked worker serves
/// exactly one (network, proc-range) for its whole life, created lazily on
/// its first epoch and torn down by the kernel at _Exit.
struct ChildPool {
  const void* key = nullptr;  ///< the Network this pool was built for
  std::unique_ptr<StepPool> pool;
};
ChildPool g_child_pool;

}  // namespace

Network::Network(const NocParams& params, RoutingFunction* routing,
                 PowerTracker* power)
    : params_(params), geom_(params.width, params.height) {
  params_.validate();
  const int n = geom_.num_nodes();

  // Tile-grid domain decomposition. Explicit step_tiles_x/y wins; otherwise
  // auto-tile from the total worker budget step_procs x step_threads: row
  // bands first (only N/S links cross a row split), adding columns only
  // once the worker count exceeds the row count. Sized FIRST: the NIs
  // below capture pointers into counter_shards_, and nothing here may move
  // afterwards.
  const int step_workers =
      std::max(1, params_.step_procs) * std::max(1, params_.step_threads);
  if (params_.step_tiles_x > 0 || params_.step_tiles_y > 0) {
    tiles_x_ = std::clamp(std::max(params_.step_tiles_x, 1), 1, params_.width);
    tiles_y_ = std::clamp(std::max(params_.step_tiles_y, 1), 1, params_.height);
  } else {
    tiles_y_ = std::min(step_workers, params_.height);
    tiles_x_ = std::min(std::max(1, step_workers / tiles_y_), params_.width);
    // Never spin up more domains than requested workers.
    while (tiles_x_ > 1 && tiles_x_ * tiles_y_ > step_workers) {
      --tiles_x_;
    }
  }
  num_domains_ = tiles_x_ * tiles_y_;
  FLOV_CHECK(num_domains_ >= 1, "need at least one step domain");
  node_domain_.resize(static_cast<std::size_t>(n));
  domain_rect_.resize(static_cast<std::size_t>(num_domains_));
  counter_shards_.resize(static_cast<std::size_t>(num_domains_));
  for (int ty = 0; ty < tiles_y_; ++ty) {
    for (int tx = 0; tx < tiles_x_; ++tx) {
      const int dom = ty * tiles_x_ + tx;
      DomainRect& r = domain_rect_[dom];
      r.x0 = tx * params_.width / tiles_x_;
      r.x1 = (tx + 1) * params_.width / tiles_x_;
      r.y0 = ty * params_.height / tiles_y_;
      r.y1 = (ty + 1) * params_.height / tiles_y_;
      FLOV_CHECK(r.x0 < r.x1 && r.y0 < r.y1, "empty tile domain");
      for (int y = r.y0; y < r.y1; ++y) {
        for (int x = r.x0; x < r.x1; ++x) {
          node_domain_[y * params_.width + x] = dom;
        }
      }
    }
  }
  if (num_domains_ > 1) {
    wake_stages_.resize(static_cast<std::size_t>(num_domains_));
    for (auto& s : wake_stages_) s.init(n, /*live=*/false);
    eject_stage_.resize(static_cast<std::size_t>(num_domains_));
  }

  // The SoA slab every router/NI binds into — sized once, never resized.
  hot_.init(n, params_.total_vcs(), params_.buffer_depth);

  // Channels, routers and NIs live by value in exact-reserved vectors:
  // everything downstream holds raw pointers into them, so compute the
  // final counts up front and FLOV_CHECK them after wiring.
  const std::size_t edges = 2 * static_cast<std::size_t>(
      (params_.width - 1) * params_.height +
      (params_.height - 1) * params_.width);
  const std::size_t flit_cap = edges + 2 * static_cast<std::size_t>(n);
  const std::size_t credit_cap = edges + 2 * static_cast<std::size_t>(n);
  flit_channels_.reserve(flit_cap);
  credit_channels_.reserve(credit_cap);

  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  flit_out_.resize(static_cast<std::size_t>(n));
  router_live_.init(n);
  ni_live_.init(n);
  for (NodeId id = 0; id < n; ++id) {
    routers_.emplace_back(id, geom_, params_, routing, power, &hot_);
    nis_.emplace_back(id, params_, &hot_);
    routers_[id].set_wake_target(&router_live_, id);
    nis_[id].set_fabric_hooks(&counter_shards_[node_domain_[id]].c, &ni_live_,
                              id);
    flit_out_[id].fill(nullptr);
  }

  auto new_flit_channel = [&](Cycle latency) {
    FLOV_CHECK(flit_channels_.size() < flit_cap, "flit channel over-reserve");
    flit_channels_.emplace_back(latency);
    return &flit_channels_.back();
  };
  auto new_credit_channel = [&](Cycle latency) {
    FLOV_CHECK(credit_channels_.size() < credit_cap,
               "credit channel over-reserve");
    credit_channels_.emplace_back(latency);
    return &credit_channels_.back();
  };

  // Inter-router links: one flit channel and one credit back-channel per
  // directed edge. Every channel wakes its RECEIVER on send — the sender is
  // already live (it just stepped), and the receiver must not stay parked
  // while something is in flight toward it. Edges whose endpoints lie in
  // different domains (N/S links across a row split, E/W links across a
  // column split) are put into staging mode: sends collect sender-side and
  // the wake mark goes to the sender's domain stage, both merged at the
  // barrier.
  for (NodeId a = 0; a < n; ++a) {
    for (Direction d : kMeshDirections) {
      const NodeId b = geom_.neighbor(a, d);
      if (b == kInvalidNode) continue;
      Channel<Flit>* fch = new_flit_channel(params_.link_latency);
      routers_[a].connect_flit_out(d, fch);
      routers_[b].connect_flit_in(opposite(d), fch);
      flit_out_[a][dir_index(d)] = fch;

      Channel<Credit>* cch = new_credit_channel(1);
      routers_[b].connect_credit_out(opposite(d), cch);
      routers_[a].connect_credit_in(d, cch);

      if (node_domain_[a] != node_domain_[b]) {
        // Flit channel: sender a, receiver b. Credit channel: sender b.
        fch->set_staging(true);
        fch->set_wake_target(&wake_stages_[node_domain_[a]], b);
        boundary_flit_.push_back(fch);
        cch->set_staging(true);
        cch->set_wake_target(&wake_stages_[node_domain_[b]], a);
        boundary_credit_.push_back(cch);
      } else {
        fch->set_wake_target(&router_live_, b);
        cch->set_wake_target(&router_live_, a);
      }
    }
  }

  // Local ports: NI <-> router. Always node-local, never cross a domain.
  for (NodeId id = 0; id < n; ++id) {
    Channel<Flit>* inj = new_flit_channel(1);
    nis_[id].connect_to_router(inj);
    routers_[id].connect_flit_in(Direction::Local, inj);
    inj->set_wake_target(&router_live_, id);
    flit_out_[id][dir_index(Direction::Local)] = nullptr;

    Channel<Flit>* ej = new_flit_channel(1);
    routers_[id].connect_flit_out(Direction::Local, ej);
    nis_[id].connect_from_router(ej);
    ej->set_wake_target(&ni_live_, id);

    Channel<Credit>* cr_up = new_credit_channel(1);
    routers_[id].connect_credit_out(Direction::Local, cr_up);
    nis_[id].connect_credit_from_router(cr_up);
    cr_up->set_wake_target(&ni_live_, id);

    Channel<Credit>* cr_down = new_credit_channel(1);
    nis_[id].connect_credit_to_router(cr_down);
    routers_[id].connect_credit_in(Direction::Local, cr_down);
    cr_down->set_wake_target(&router_live_, id);
  }
  FLOV_CHECK(flit_channels_.size() == flit_cap, "flit channel under-reserve");
  FLOV_CHECK(credit_channels_.size() == credit_cap,
             "credit channel under-reserve");

  if (num_domains_ > 1) {
    // With >1 domain the NIs report ejections into per-domain stages
    // (tagged with the NI's node id); the barrier replays them in node-id
    // order through the stored callback + observers (see
    // set_eject_callback).
    for (NodeId id = 0; id < n; ++id) {
      const int dom = node_domain_[id];
      nis_[id].set_eject_callback([this, dom, id](const PacketRecord& rec) {
        eject_stage_[dom].emplace_back(id, rec);
      });
    }
  }

  build_pools(params_.step_procs);
}

void Network::build_pools(int procs) {
  // Multi-process partition: contiguous domain ranges, one per process,
  // parent first. Contiguity keeps every range a union of whole tiles, so
  // the generic boundary-channel staging already covers every
  // cross-PROCESS edge — a cross-process edge is just a cross-domain edge
  // whose merge happens to read another process's writes. The tile grid
  // itself (what determinism depends on) is fixed in the constructor;
  // recovery may rebuild here with FEWER procs (respawn downshift) without
  // disturbing results, because manifests are procs-independent by the
  // staging/merge argument.
  procs_ = std::clamp(procs, 1, num_domains_);
  proc_range_.clear();
  int parent_domains = num_domains_;
  if (procs_ > 1) {
    proc_range_.resize(static_cast<std::size_t>(procs_));
    for (int p = 0; p < procs_; ++p) {
      proc_range_[p] = {p * num_domains_ / procs_,
                        (p + 1) * num_domains_ / procs_};
      FLOV_CHECK(proc_range_[p].first < proc_range_[p].second,
                 "empty process domain range");
    }
    parent_domains = proc_range_[0].second;
  }

  // The parent's own thread pool steps the rest of ITS range (all domains
  // when single-process); domain 0 always runs on the calling thread.
  if (parent_domains > 1) {
    pool_ = std::make_unique<StepPool>(
        parent_domains - 1, [this](int w, Cycle now) {
#if defined(FLYOVER_TRACING) && FLYOVER_TRACING
          telemetry::Tracer* t = step_tracer_;
          telemetry::TraceScope scope(t ? t->shard(w + 1) : nullptr);
#endif
#if defined(FLYOVER_PROFILING) && FLYOVER_PROFILING
          telemetry::ProfileScope pscope(step_profiler_, w + 1);
#endif
          step_domain(w + 1, now);
        });
  }

  if (procs_ > 1) {
    // The workers read this object and everything it points at, so the
    // Network must itself live in the shared arena (builder.cpp allocates
    // the whole system under a ShmArenaScope when step_procs > 1).
    FLOV_CHECK(ipc::arena_of(this) != nullptr,
               "step_procs > 1 requires the Network to be built inside the "
               "shared arena (ShmArenaScope)");
    proc_pool_ = std::make_unique<ipc::ProcPool>(
        procs_ - 1, [this](int w, Cycle now) { step_proc_range(w + 1, now); });
  }
}

void Network::prepare_for_restore() {
  // SIGKILL + reap every worker process FIRST: once kill_workers returns
  // there are provably no other writers in the shared arena, so the
  // checkpoint restore memcpy cannot race anything. Then tear down the
  // parent's own pools while their objects are still the live ones (the
  // restore is about to rewrite this Network with capture-time bytes).
  if (proc_pool_) proc_pool_->kill_workers();
  proc_pool_.reset();
  pool_.reset();
}

void Network::resume_after_restore(int procs) {
  // The restore memcpy rewrote this object with its capture-time image,
  // including pool_/proc_pool_ again pointing at the pools that existed at
  // capture time — whose threads are joined and processes reaped. Running
  // their destructors would join dead threads (UB); release the pointers
  // and leak the stale objects (bounded arena garbage per recovery, freed
  // wholesale at unmap) before building fresh pools.
  (void)pool_.release();
  (void)proc_pool_.release();
  build_pools(procs);
}

void Network::step_domain(int dom, Cycle now) {
  // Node-id order within the domain (ids are row-major, so scanning the
  // tile rect row by row IS ascending-id order), same as stepping
  // everything serially: the only cross-router ordering observable within
  // a cycle is via shared callbacks (e.g. the wakeup-trigger dedup, which
  // the FLOV layer stages and replays in id order), and skipping a
  // quiescent router is equivalent to stepping it (its step would be a
  // pure no-op; its VA round-robin tick is replayed when it next runs —
  // Router::step).
  const DomainRect& rect = domain_rect_[dom];
  for (int y = rect.y0; y < rect.y1; ++y) {
    const NodeId row = y * params_.width;
    for (int x = rect.x0; x < rect.x1; ++x) {
      const NodeId id = row + x;
      if (!router_live_.live(id)) continue;
      Router& r = routers_[id];
      r.step(now);
      // A quiescent router stays parked until a send/mode-switch re-arms
      // it. Note this runs AFTER the step: anything the step produced went
      // out through channels (marking the receivers), so clearing here is
      // safe. Cross-domain arrivals the router cannot see yet (staged)
      // re-mark it via the wake-stage merge at the barrier.
      if (r.quiescent()) router_live_.clear(id);
    }
  }
  FLOV_PROFILE(kNi);  // covers the NI loop (the remainder of this domain)
  for (int y = rect.y0; y < rect.y1; ++y) {
    const NodeId row = y * params_.width;
    for (int x = rect.x0; x < rect.x1; ++x) {
      const NodeId id = row + x;
      if (!ni_live_.live(id)) continue;
      NetworkInterface& ni = nis_[id];
      ni.step(now);
      if (ni.quiescent()) ni_live_.clear(id);
    }
  }
}

void Network::merge_channels() {
  // Deterministic fold in wiring order; never depends on worker timing.
  // With procs > 1 this is the shared-memory "transport": the staged
  // vectors being folded were written by other processes, already visible
  // through the barrier's release/acquire chain.
  for (Channel<Flit>* ch : boundary_flit_) ch->merge_staged();
  for (Channel<Credit>* ch : boundary_credit_) ch->merge_staged();
}

void Network::merge_events() {
  // All merges below are deterministic folds in fixed (wiring or node-id)
  // order; none depend on worker timing.
  for (auto& stage : wake_stages_) stage.drain_into(router_live_);
  // Ejection replay: each domain's stage is already ascending by node id
  // (stepping order), and domains own disjoint id sets, so a k-way
  // min-front merge reproduces exactly the serial callback order. (With
  // tile grids, plain stage concatenation would NOT be id-sorted — a tile
  // in the top-right holds smaller ids than one in the bottom-left but a
  // larger domain index.)
  auto& pos = eject_merge_pos_;
  pos.assign(eject_stage_.size(), 0);
  for (;;) {
    int best = -1;
    NodeId best_id = 0;
    for (int d = 0; d < num_domains_; ++d) {
      if (pos[d] >= eject_stage_[d].size()) continue;
      const NodeId id = eject_stage_[d][pos[d]].first;
      if (best < 0 || id < best_id) {
        best = d;
        best_id = id;
      }
    }
    if (best < 0) break;
    const PacketRecord& rec = eject_stage_[best][pos[best]].second;
    if (user_eject_cb_) user_eject_cb_(rec);
    for (const auto& cb : eject_observers_) cb(rec);
    ++pos[best];
  }
  for (auto& stage : eject_stage_) stage.clear();
}

void Network::step_proc_range(int p, Cycle now) {
  if (p == 0) {
    // The parent's range always starts at domain 0; its pool (if any) was
    // sized for exactly this range in the constructor.
    if (pool_) {
      pool_->run_cycle(now, [this, now] { step_domain(0, now); });
    } else {
      step_domain(0, now);
    }
    return;
  }
  // Worker-process path. Build this process's own pool on first use (the
  // pool cannot be a Network member — see ChildPool above). The pool's
  // threads inherit the forking thread's arena binding via StepPool, so
  // even their staging-vector growth lands in the shared mapping.
  const int d0 = proc_range_[static_cast<std::size_t>(p)].first;
  const int d1 = proc_range_[static_cast<std::size_t>(p)].second;
  if (d1 - d0 == 1) {
    step_domain(d0, now);
    return;
  }
  if (g_child_pool.key != this) {
    g_child_pool.pool = std::make_unique<StepPool>(
        d1 - d0 - 1,
        [this, d0](int w, Cycle when) { step_domain(d0 + w + 1, when); });
    g_child_pool.key = this;
  }
  g_child_pool.pool->run_cycle(now, [this, d0, now] { step_domain(d0, now); });
}

void Network::step(Cycle now) {
  if (num_domains_ == 1) {
    step_domain(0, now);
    return;
  }
#if defined(FLYOVER_PROFILING) && FLYOVER_PROFILING
  telemetry::PhaseProfiler* prof = telemetry::thread_profile_state().profiler;
  if (prof != nullptr) prof->ensure_domains(num_domains_);
  step_profiler_ = prof;  // published to workers by the pool's epoch fence
#endif
#if defined(FLYOVER_TRACING) && FLYOVER_TRACING
  telemetry::Tracer* parent = telemetry::thread_trace_state().tracer;
  if (parent != nullptr) parent->ensure_shards(num_domains_);
  step_tracer_ = parent;  // published to workers by the pool's epoch fence
  {
    telemetry::TraceScope scope(parent ? parent->shard(0) : nullptr);
    if (proc_pool_) {
      proc_pool_->run_cycle(now, [this, now] { step_proc_range(0, now); });
    } else {
      pool_->run_cycle(now, [this, now] { step_domain(0, now); });
    }
  }
#else
  if (proc_pool_) {
    proc_pool_->run_cycle(now, [this, now] { step_proc_range(0, now); });
  } else {
    pool_->run_cycle(now, [this, now] { step_domain(0, now); });
  }
#endif
  {
    FLOV_PROFILE(kShmCopy);
    merge_channels();
  }
  {
    FLOV_PROFILE(kMerge);
    merge_events();
  }
}

void Network::set_eject_callback(
    std::function<void(const PacketRecord&)> cb) {
  if (num_domains_ > 1) {
    // The NIs keep their staging callback; the user callback runs at the
    // barrier replay instead.
    user_eject_cb_ = std::move(cb);
    return;
  }
  for (auto& ni : nis_) ni.set_eject_callback(cb);
}

void Network::add_eject_callback(
    std::function<void(const PacketRecord&)> cb) {
  if (num_domains_ > 1) {
    eject_observers_.push_back(std::move(cb));
    return;
  }
  for (auto& ni : nis_) ni.add_eject_callback(cb);
}

FabricCounters Network::counters() const {
  FabricCounters total;
  for (const CounterShard& s : counter_shards_) {
    total.injected_flits += s.c.injected_flits;
    total.ejected_flits += s.c.ejected_flits;
    total.dropped_flits += s.c.dropped_flits;
    total.queued_packets += s.c.queued_packets;
    total.open_streams += s.c.open_streams;
  }
  return total;
}

std::uint64_t Network::in_network_flits() const {
  const std::uint64_t cached = counters().in_network();
  FLOV_DCHECK(cached == recount_in_network_flits(),
              "cached in-network flit count drifted from recount");
  return cached;
}

bool Network::idle() const {
  const FabricCounters c = counters();
  const bool cached =
      c.in_network() == 0 && c.queued_packets == 0 && c.open_streams == 0;
  FLOV_DCHECK(cached == recount_idle(), "cached idle() drifted from recount");
  return cached;
}

bool Network::in_flight_empty() const {
  const FabricCounters c = counters();
  const bool cached = c.in_network() == 0 && c.open_streams == 0;
  FLOV_DCHECK(cached == recount_in_flight_empty(),
              "cached in_flight_empty() drifted from recount");
  return cached;
}

std::uint64_t Network::total_injected_flits() const {
  return counters().injected_flits;
}

std::uint64_t Network::total_ejected_flits() const {
  return counters().ejected_flits;
}

std::uint64_t Network::total_queued_packets() const {
  return counters().queued_packets;
}

std::uint64_t Network::recount_in_network_flits() const {
  std::uint64_t n = 0;
  for (const Router& r : routers_) {
    n += static_cast<std::uint64_t>(r.buffered_flits());
  }
  for (const auto& ch : flit_channels_) n += ch.in_flight();
  return n;
}

bool Network::recount_idle() const {
  for (const Router& r : routers_) {
    if (!r.completely_empty()) return false;
  }
  for (const NetworkInterface& ni : nis_) {
    if (!ni.idle()) return false;
  }
  for (const auto& ch : flit_channels_) {
    if (!ch.empty()) return false;
  }
  return true;
}

bool Network::recount_in_flight_empty() const {
  for (const Router& r : routers_) {
    if (!r.completely_empty()) return false;
  }
  for (const NetworkInterface& ni : nis_) {
    if (ni.streams_active()) return false;
  }
  for (const auto& ch : flit_channels_) {
    if (!ch.empty()) return false;
  }
  return true;
}

void Network::publish_metrics(telemetry::MetricsRegistry& reg) const {
  const FabricCounters c = counters();
  reg.counter("net.injected_flits") += c.injected_flits;
  reg.counter("net.ejected_flits") += c.ejected_flits;
  reg.counter("net.dropped_flits") += c.dropped_flits;
  std::uint64_t traversed = 0, flown_over = 0, diversions = 0, captures = 0;
  for (const Router& r : routers_) {
    traversed += r.flits_traversed();
    flown_over += r.flits_flown_over();
    diversions += r.escape_diversions();
    captures += r.self_captures();
  }
  reg.counter("net.flits_traversed") += traversed;
  reg.counter("net.flits_flown_over") += flown_over;
  reg.counter("net.escape_diversions") += diversions;
  reg.counter("net.self_captures") += captures;
}

}  // namespace flov
