#include "noc/network.hpp"

#include "common/log.hpp"

namespace flov {

Network::Network(const NocParams& params, RoutingFunction* routing,
                 PowerTracker* power)
    : params_(params), geom_(params.width, params.height) {
  params_.validate();
  const int n = geom_.num_nodes();
  routers_.reserve(n);
  nis_.reserve(n);
  flit_out_.resize(n);
  for (NodeId id = 0; id < n; ++id) {
    routers_.push_back(
        std::make_unique<Router>(id, geom_, params_, routing, power));
    nis_.push_back(
        std::make_unique<NetworkInterface>(id, params_, &packet_id_counter_));
    flit_out_[id].fill(nullptr);
  }

  auto new_flit_channel = [&](Cycle latency) {
    flit_channels_.push_back(std::make_unique<Channel<Flit>>(latency));
    return flit_channels_.back().get();
  };
  auto new_credit_channel = [&](Cycle latency) {
    credit_channels_.push_back(std::make_unique<Channel<Credit>>(latency));
    return credit_channels_.back().get();
  };

  // Inter-router links: one flit channel and one credit back-channel per
  // directed edge.
  for (NodeId a = 0; a < n; ++a) {
    for (Direction d : kMeshDirections) {
      const NodeId b = geom_.neighbor(a, d);
      if (b == kInvalidNode) continue;
      Channel<Flit>* fch = new_flit_channel(params_.link_latency);
      routers_[a]->connect_flit_out(d, fch);
      routers_[b]->connect_flit_in(opposite(d), fch);
      flit_out_[a][dir_index(d)] = fch;

      Channel<Credit>* cch = new_credit_channel(1);
      routers_[b]->connect_credit_out(opposite(d), cch);
      routers_[a]->connect_credit_in(d, cch);
    }
  }

  // Local ports: NI <-> router.
  for (NodeId id = 0; id < n; ++id) {
    Channel<Flit>* inj = new_flit_channel(1);
    nis_[id]->connect_to_router(inj);
    routers_[id]->connect_flit_in(Direction::Local, inj);
    flit_out_[id][dir_index(Direction::Local)] = nullptr;

    Channel<Flit>* ej = new_flit_channel(1);
    routers_[id]->connect_flit_out(Direction::Local, ej);
    nis_[id]->connect_from_router(ej);

    Channel<Credit>* cr_up = new_credit_channel(1);
    routers_[id]->connect_credit_out(Direction::Local, cr_up);
    nis_[id]->connect_credit_from_router(cr_up);

    Channel<Credit>* cr_down = new_credit_channel(1);
    nis_[id]->connect_credit_to_router(cr_down);
    routers_[id]->connect_credit_in(Direction::Local, cr_down);
  }
}

void Network::step(Cycle now) {
  for (auto& r : routers_) r->step(now);
  for (auto& ni : nis_) ni->step(now);
}

void Network::set_eject_callback(
    std::function<void(const PacketRecord&)> cb) {
  for (auto& ni : nis_) ni->set_eject_callback(cb);
}

void Network::add_eject_callback(
    std::function<void(const PacketRecord&)> cb) {
  for (auto& ni : nis_) ni->add_eject_callback(cb);
}

std::uint64_t Network::in_network_flits() const {
  std::uint64_t n = 0;
  for (const auto& r : routers_) {
    n += static_cast<std::uint64_t>(r->buffered_flits());
  }
  for (const auto& ch : flit_channels_) n += ch->in_flight();
  return n;
}

bool Network::idle() const {
  for (const auto& r : routers_) {
    if (!r->completely_empty()) return false;
  }
  for (const auto& ni : nis_) {
    if (!ni->idle()) return false;
  }
  for (const auto& ch : flit_channels_) {
    if (!ch->empty()) return false;
  }
  return true;
}

bool Network::in_flight_empty() const {
  for (const auto& r : routers_) {
    if (!r->completely_empty()) return false;
  }
  for (const auto& ni : nis_) {
    if (ni->streams_active()) return false;
  }
  for (const auto& ch : flit_channels_) {
    if (!ch->empty()) return false;
  }
  return true;
}

std::uint64_t Network::total_injected_flits() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->injected_flits();
  return t;
}

std::uint64_t Network::total_ejected_flits() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->ejected_flits();
  return t;
}

std::uint64_t Network::total_queued_packets() const {
  std::uint64_t t = 0;
  for (const auto& ni : nis_) t += ni->queued_packets();
  return t;
}

}  // namespace flov
