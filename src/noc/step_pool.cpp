#include "noc/step_pool.hpp"

#include "common/log.hpp"
#include "noc/ipc/shm_arena.hpp"

namespace flov {

namespace {
/// Spin iterations before falling back to yield while waiting for an
/// epoch/done transition. Cycles are short (tens of microseconds), so the
/// fast path should never leave the spin; yield only matters when the
/// machine is oversubscribed.
constexpr int kSpinBeforeYield = 4096;
}  // namespace

StepPool::StepPool(int workers, std::function<void(int, Cycle)> job)
    : job_(std::move(job)), done_(new DoneSlot[workers > 0 ? workers : 1]) {
  FLOV_CHECK(workers >= 1, "StepPool needs at least one worker");
  // Propagate the creator's shared-arena binding (if any) into the worker
  // threads: under procs= mode even a worker thread's incidental
  // allocations (staging-vector growth) must land in the shared mapping,
  // or the other processes would fault on private heap pointers.
  ipc::ShmArena* arena = ipc::thread_arena();
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i, arena] {
      ipc::ShmArenaScope scope(arena);
      worker_loop(i);
    });
  }
}

StepPool::~StepPool() {
  stop_.store(true, std::memory_order_relaxed);
  // Bump the epoch so parked workers re-check stop_.
  epoch_.fetch_add(1, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

void StepPool::wait_done(std::size_t i, std::uint64_t epoch) {
  int spins = 0;
  while (done_[i].done.load(std::memory_order_acquire) < epoch) {
    if (++spins > kSpinBeforeYield) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

void StepPool::worker_loop(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (++spins > kSpinBeforeYield) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    ++seen;
    if (stop_.load(std::memory_order_relaxed)) return;
    job_(index, now_);
    done_[index].done.store(seen, std::memory_order_release);
  }
}

}  // namespace flov
