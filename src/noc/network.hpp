// The k x k mesh: routers, network interfaces, and the channels that wire
// them. The Network is policy-free — power-gating schemes (flov/, rp/) wrap
// it and drive router modes, neighborhood views, and injection stalls.
//
// Hot state lives in a struct-of-arrays slab (noc/hot_state.hpp) owned
// here: routers, NIs and channels are stored by value in id-ordered
// vectors, and the fields Router::step touches every cycle are contiguous
// per-mesh arrays — a 64x64 sweep walks linear memory instead of chasing
// 4096 heap objects.
//
// With params.step_threads > 1 (or an explicit step_tiles_x/y grid) the
// mesh is statically partitioned into rectangular tile domains, each
// stepped by its own worker under a per-cycle barrier. Because every
// channel has latency >= 1, a send made at cycle t is only observable at
// t+1 (docs/PERFORMANCE.md, "The lookahead invariant"), so cross-domain
// traffic can be staged sender-side and merged at the barrier: the parallel
// schedule is bit-identical to serial by construction, not by sampling.
//
// With params.step_procs > 1 the same decomposition goes multi-process:
// the tile domains are partitioned into contiguous ranges, the parent
// keeps range 0 (stepping it with its StepPool exactly as above) and a
// forked worker process steps each remaining range with a process-private
// pool of its own, synchronized by a shared-memory per-cycle barrier
// (noc/ipc/proc_pool.hpp). The whole Network must then live inside the
// shared arena (noc/ipc/shm_arena.hpp) so a worker's staged sends are the
// same bytes the parent merges — nothing about the staging/merge protocol
// changes, so manifests stay byte-identical across any procs choice
// (docs/PERFORMANCE.md, "Multi-process stepping").
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/active_set.hpp"
#include "noc/channel.hpp"
#include "noc/hot_state.hpp"
#include "noc/network_interface.hpp"
#include "noc/ipc/proc_pool.hpp"
#include "noc/noc_params.hpp"
#include "noc/router.hpp"
#include "noc/routing_iface.hpp"
#include "noc/step_pool.hpp"
#include "power/power_tracker.hpp"
#include "telemetry/ops/profile.hpp"
#include "telemetry/trace.hpp"

namespace flov {

namespace telemetry {
class MetricsRegistry;
}

class Network {
 public:
  /// `routing` and `power` are borrowed (must outlive the network);
  /// `power` may be null for pure-functional tests.
  Network(const NocParams& params, RoutingFunction* routing,
          PowerTracker* power);

  const NocParams& params() const { return params_; }
  const MeshGeometry& geom() const { return geom_; }

  Router& router(NodeId id) { return routers_[id]; }
  const Router& router(NodeId id) const { return routers_[id]; }
  NetworkInterface& ni(NodeId id) { return nis_[id]; }
  const NetworkInterface& ni(NodeId id) const { return nis_[id]; }
  int num_nodes() const { return geom_.num_nodes(); }

  /// Tile-domain decomposition (1 domain == serial stepping).
  int num_domains() const { return num_domains_; }
  int domain_of(NodeId id) const { return node_domain_[id]; }
  int tiles_x() const { return tiles_x_; }
  int tiles_y() const { return tiles_y_; }

  /// Multi-process decomposition: processes actually stepping (the
  /// requested step_procs clamped to the domain count; 1 = single
  /// process).
  int step_procs() const { return procs_; }
  /// Per-process busy nanoseconds so far ([0] = the parent's range; empty
  /// when single-process). Thread-safe (the ops plane reads it mid-run).
  std::vector<std::uint64_t> proc_busy_ns() const {
    return proc_pool_ ? proc_pool_->busy_ns() : std::vector<std::uint64_t>{};
  }
  /// max/min busy ratio across processes (1.0 when single-process) — the
  /// procs= tuning signal surfaced on /healthz and in profile reports.
  double proc_busy_imbalance() const {
    return proc_pool_ ? proc_pool_->busy_imbalance() : 1.0;
  }

  /// Advances the fabric by one cycle. Active-set scheduled: routers and
  /// NIs whose step would provably be a no-op (power-gated with empty
  /// latches, or simply empty-handed — exactly the population FLOV
  /// maximizes) are skipped until an event re-arms them: a flit or credit
  /// send toward them, a packet enqueue, a mode switch, or a handshake-
  /// driven wake_router()/wake_ni(). Iteration stays in node-id order, and
  /// skipped VA ticks are replayed (Router::step), so results are
  /// bit-identical to stepping every component every cycle. With more than
  /// one domain, the domains run concurrently and the barrier then merges
  /// staged cross-domain sends, wake marks and ejection records — ejections
  /// via a k-way merge back into global node-id order, preserving
  /// bit-identity for any tile grid.
  void step(Cycle now);

  /// Re-arm hooks for scheme layers (FLOV credit handovers, recovery
  /// scrubs) that mutate router/NI state without going through a channel.
  /// Serial control-plane only (never from a domain worker).
  void wake_router(NodeId id) { router_live_.mark(id); }
  void wake_ni(NodeId id) { ni_live_.mark(id); }
  /// Counter hook for the fault layer: a flit was dropped on the wire after
  /// injection, so it will never reach an NI (keeps in_network_flits()
  /// exact under flit-drop faults). `sender` routes the increment to the
  /// sending router's domain shard — fault hooks run on the sender's
  /// worker during the parallel phase.
  void note_flit_dropped(NodeId sender) {
    counter_shards_[node_domain_[sender]].c.dropped_flits++;
  }

  void enqueue(const PacketDescriptor& pkt) { nis_[pkt.src].enqueue(pkt); }

  /// Installs THE primary ejection callback (replaces any previous one but
  /// keeps observers added with add_eject_callback). With multiple domains
  /// the callback runs at the barrier, replayed in node-id order — callers
  /// never need to be thread-safe.
  void set_eject_callback(std::function<void(const PacketRecord&)> cb);

  /// Adds a passive ejection observer notified after the primary callback
  /// (survives a later set_eject_callback; used by the invariant verifier).
  void add_eject_callback(std::function<void(const PacketRecord&)> cb);

  /// Flits currently inside the fabric: router buffers + FLOV latches +
  /// every flit channel (inter-router and local). With the NI counters this
  /// closes the conservation equation injected == ejected + in_network.
  /// O(1): incrementally maintained, FLOV_DCHECKed against the full walk.
  std::uint64_t in_network_flits() const;

  /// No flits anywhere: buffers, latches, channels, NI queues/streams. O(1).
  bool idle() const;

  /// No flits in flight (buffers/latches/channels/mid-injection streams);
  /// NI queues MAY hold packets — this is RP's drain condition, under
  /// which queued traffic accumulates (the Fig. 10 queuing delay). O(1).
  bool in_flight_empty() const;

  std::uint64_t total_injected_flits() const;
  std::uint64_t total_ejected_flits() const;
  std::uint64_t total_queued_packets() const;

  /// Ground-truth recounts by walking every component — what the O(1)
  /// getters above are debug-checked against. The invariant verifier MUST
  /// use these (a cached counter cannot witness its own drift).
  std::uint64_t recount_in_network_flits() const;
  bool recount_idle() const;
  bool recount_in_flight_empty() const;

  /// The cached aggregates (verifier drift check): an ordered fold of the
  /// per-domain shards. Integer addition in fixed domain order, so the
  /// result is exact and schedule-independent.
  FabricCounters counters() const;

  /// Registers/updates the fabric-level metrics ("net.*") in `reg`:
  /// the FabricCounters aggregates plus per-router sums (switch
  /// traversals, fly-overs, escape diversions, self-captures).
  void publish_metrics(telemetry::MetricsRegistry& reg) const;

  /// The inter-router flit channel leaving `node` toward `d` (null at mesh
  /// edges). Exposed for the FLOV credit-handover and for tests.
  Channel<Flit>* flit_channel(NodeId node, Direction d) {
    return flit_out_[node][dir_index(d)];
  }

  // --- checkpoint recovery (runstate.hpp; sim.snapshot_period > 0) ---
  /// Quarantines the fabric before a checkpoint restore: SIGKILLs + reaps
  /// every worker process (no writers remain in the shared arena) and
  /// tears down the parent's thread pool. The Network is unusable until
  /// resume_after_restore().
  void prepare_for_restore();
  /// Rebuilds stepping pools after the arena image was restored, possibly
  /// with a smaller `procs` (respawn downshift). The tile-domain grid is
  /// unchanged, so results stay byte-identical. Must be called with the
  /// shared arena scope bound (as during the run).
  void resume_after_restore(int procs);

 private:
  /// One rectangular tile domain: columns [x0, x1) x rows [y0, y1).
  struct DomainRect {
    int x0, x1, y0, y1;
  };

  /// Steps domain `dom`'s routers then NIs, in node-id order.
  void step_domain(int dom, Cycle now);
  /// Steps every domain in process `p`'s contiguous range using that
  /// process's own thread pool (the parent's pool_ for p == 0, a
  /// process-private pool for workers — see the ChildPool note in
  /// network.cpp).
  void step_proc_range(int p, Cycle now);
  /// Barrier-side merges, split so the two FLOV_PROFILE scopes stay leaf
  /// scopes: merge_channels folds the staged boundary channel sends (the
  /// shared-memory transport when procs > 1 — profiled as shm_copy) and
  /// merge_events drains wake marks and replays ejections (merge).
  void merge_channels();
  void merge_events();
  /// (Re)builds the procs partition and both stepping pools for `procs`
  /// processes over the fixed tile-domain grid (constructor + recovery).
  void build_pools(int procs);

  NocParams params_;
  MeshGeometry geom_;

  /// Struct-of-arrays hot state. Sized before any component is constructed
  /// and never resized afterwards (routers/NIs hold pointers into it).
  MeshHotState hot_;

  /// Channels by value, exact-reserved before wiring (components hold raw
  /// pointers — the vectors must never reallocate).
  std::vector<Channel<Flit>> flit_channels_;
  std::vector<Channel<Credit>> credit_channels_;
  std::vector<Router> routers_;
  std::vector<NetworkInterface> nis_;
  /// flit_out_[node][dir] aliases the channel owned by flit_channels_.
  std::vector<std::array<Channel<Flit>*, kNumPorts>> flit_out_;

  /// Active-set state: which routers/NIs must be stepped this cycle.
  /// Channel sends, enqueues, mode switches, and wake_*() re-arm entries;
  /// step() clears an entry once the component proves quiescent. During the
  /// parallel phase each domain only touches its own nodes' flags (distinct
  /// bytes — no race); cross-domain marks go through wake_stages_.
  WakeList router_live_;
  WakeList ni_live_;

  // --- domain decomposition (sized before any component is wired; the
  // --- shard pointers handed to NIs must never move) ---
  int num_domains_ = 1;
  int tiles_x_ = 1;
  int tiles_y_ = 1;
  std::vector<int> node_domain_;       ///< node -> domain
  std::vector<DomainRect> domain_rect_;
  /// Per-domain FabricCounters, each padded to its own cache line(s); each
  /// NI (and the fault-drop hook) writes only its own domain's shard.
  /// counters() folds them in domain order.
  std::vector<CounterShard> counter_shards_;
  /// Per-domain staged router wake marks for cross-domain channel sends;
  /// ORed into router_live_ at the barrier.
  std::vector<WakeList> wake_stages_;
  /// Channels whose sender and receiver live in different domains; they
  /// run in staging mode and are merged (in wiring == deterministic order)
  /// at the barrier. Row splits put N/S links on the boundary, column
  /// splits E/W links — the generic sender/receiver domain test catches
  /// both.
  std::vector<Channel<Flit>*> boundary_flit_;
  std::vector<Channel<Credit>*> boundary_credit_;
  /// Per-domain ejection-record staging, tagged with the ejecting NI's node
  /// id: with >1 domain the NIs' primary callback appends here and the
  /// barrier replays user_eject_cb_ + eject_observers_ through a k-way
  /// min-front merge back into global node-id order (LatencyStats
  /// accumulates doubles — replay order must match serial exactly; with
  /// tile grids, concatenating stages in domain order is no longer
  /// id-sorted, so the merge is what preserves bit-identity).
  std::vector<std::vector<std::pair<NodeId, PacketRecord>>> eject_stage_;
  std::vector<std::size_t> eject_merge_pos_;  ///< merge scratch (no alloc)
  std::function<void(const PacketRecord&)> user_eject_cb_;
  std::vector<std::function<void(const PacketRecord&)>> eject_observers_;
  /// Workers for the rest of the calling PROCESS's domain range (domain 0
  /// always steps on the calling thread). Single-process: the range is
  /// all domains; multi-process: the parent's range only, and each worker
  /// process builds its own pool for its range (process-private — see
  /// ChildPool in network.cpp).
  std::unique_ptr<StepPool> pool_;
  // --- multi-process stepping (step_procs > 1) ---
  int procs_ = 1;
  /// proc -> contiguous [first, last) domain range it steps.
  std::vector<std::pair<int, int>> proc_range_;
  /// Declared after pool_ so it is destroyed FIRST: stopping the worker
  /// processes (which have pools of their own) must precede joining the
  /// parent's threads.
  std::unique_ptr<ipc::ProcPool> proc_pool_;
#if defined(FLYOVER_TRACING) && FLYOVER_TRACING
  /// The run's tracer while a parallel step is in flight; workers bind
  /// their domain's shard ring from it (published by the pool's epoch
  /// release/acquire pair).
  telemetry::Tracer* step_tracer_ = nullptr;
#endif
#if defined(FLYOVER_PROFILING) && FLYOVER_PROFILING
  /// The run's phase profiler while a parallel step is in flight; workers
  /// bind (profiler, their domain) so FLOV_PROFILE scopes attribute
  /// per-domain (published by the pool's epoch release/acquire pair).
  telemetry::PhaseProfiler* step_profiler_ = nullptr;
#endif
};

}  // namespace flov
