// The k x k mesh: routers, network interfaces, and the channels that wire
// them. The Network is policy-free — power-gating schemes (flov/, rp/) wrap
// it and drive router modes, neighborhood views, and injection stalls.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/active_set.hpp"
#include "noc/channel.hpp"
#include "noc/network_interface.hpp"
#include "noc/noc_params.hpp"
#include "noc/router.hpp"
#include "noc/routing_iface.hpp"
#include "power/power_tracker.hpp"

namespace flov {

namespace telemetry {
class MetricsRegistry;
}

class Network {
 public:
  /// `routing` and `power` are borrowed (must outlive the network);
  /// `power` may be null for pure-functional tests.
  Network(const NocParams& params, RoutingFunction* routing,
          PowerTracker* power);

  const NocParams& params() const { return params_; }
  const MeshGeometry& geom() const { return geom_; }

  Router& router(NodeId id) { return *routers_[id]; }
  const Router& router(NodeId id) const { return *routers_[id]; }
  NetworkInterface& ni(NodeId id) { return *nis_[id]; }
  const NetworkInterface& ni(NodeId id) const { return *nis_[id]; }
  int num_nodes() const { return geom_.num_nodes(); }

  /// Advances the fabric by one cycle. Active-set scheduled: routers and
  /// NIs whose step would provably be a no-op (power-gated with empty
  /// latches, or simply empty-handed — exactly the population FLOV
  /// maximizes) are skipped until an event re-arms them: a flit or credit
  /// send toward them, a packet enqueue, a mode switch, or a handshake-
  /// driven wake_router()/wake_ni(). Iteration stays in node-id order, and
  /// skipped VA ticks are replayed (Router::step), so results are
  /// bit-identical to stepping every component every cycle.
  void step(Cycle now);

  /// Re-arm hooks for scheme layers (FLOV credit handovers, recovery
  /// scrubs) that mutate router/NI state without going through a channel.
  void wake_router(NodeId id) { router_live_.mark(id); }
  void wake_ni(NodeId id) { ni_live_.mark(id); }
  /// Counter hook for the fault layer: a flit was dropped on the wire after
  /// injection, so it will never reach an NI (keeps in_network_flits()
  /// exact under flit-drop faults).
  void note_flit_dropped() { counters_.dropped_flits++; }

  void enqueue(const PacketDescriptor& pkt) { nis_[pkt.src]->enqueue(pkt); }

  /// Installs the same ejection callback on every NI.
  void set_eject_callback(std::function<void(const PacketRecord&)> cb);

  /// Adds the same passive ejection observer on every NI (survives a later
  /// set_eject_callback; used by the invariant verifier).
  void add_eject_callback(std::function<void(const PacketRecord&)> cb);

  /// Flits currently inside the fabric: router buffers + FLOV latches +
  /// every flit channel (inter-router and local). With the NI counters this
  /// closes the conservation equation injected == ejected + in_network.
  /// O(1): incrementally maintained, FLOV_DCHECKed against the full walk.
  std::uint64_t in_network_flits() const;

  /// No flits anywhere: buffers, latches, channels, NI queues/streams. O(1).
  bool idle() const;

  /// No flits in flight (buffers/latches/channels/mid-injection streams);
  /// NI queues MAY hold packets — this is RP's drain condition, under
  /// which queued traffic accumulates (the Fig. 10 queuing delay). O(1).
  bool in_flight_empty() const;

  std::uint64_t total_injected_flits() const;
  std::uint64_t total_ejected_flits() const;
  std::uint64_t total_queued_packets() const;

  /// Ground-truth recounts by walking every component — what the O(1)
  /// getters above are debug-checked against. The invariant verifier MUST
  /// use these (a cached counter cannot witness its own drift).
  std::uint64_t recount_in_network_flits() const;
  bool recount_idle() const;
  bool recount_in_flight_empty() const;

  /// The cached aggregates (verifier drift check).
  const FabricCounters& counters() const { return counters_; }

  /// Registers/updates the fabric-level metrics ("net.*") in `reg`:
  /// the FabricCounters aggregates plus per-router sums (switch
  /// traversals, fly-overs, escape diversions, self-captures).
  void publish_metrics(telemetry::MetricsRegistry& reg) const;

  /// The inter-router flit channel leaving `node` toward `d` (null at mesh
  /// edges). Exposed for the FLOV credit-handover and for tests.
  Channel<Flit>* flit_channel(NodeId node, Direction d) {
    return flit_out_[node][dir_index(d)];
  }

 private:
  NocParams params_;
  MeshGeometry geom_;

  std::vector<std::unique_ptr<Channel<Flit>>> flit_channels_;
  std::vector<std::unique_ptr<Channel<Credit>>> credit_channels_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  /// flit_out_[node][dir] aliases the channel owned by flit_channels_.
  std::vector<std::array<Channel<Flit>*, kNumPorts>> flit_out_;

  /// Active-set state: which routers/NIs must be stepped this cycle.
  /// Channel sends, enqueues, mode switches, and wake_*() re-arm entries;
  /// step() clears an entry once the component proves quiescent.
  WakeList router_live_;
  WakeList ni_live_;
  /// Incrementally maintained fabric aggregates (see active_set.hpp).
  FabricCounters counters_;

  std::uint64_t packet_id_counter_ = 1;
};

}  // namespace flov
