// Output-side per-VC state of a router port: allocation (which input VC owns
// the downstream VC) and the credit counter tracking free buffer slots at
// the *logical* downstream router (the nearest powered-on one — Section III,
// Credit Control Logic).
#pragma once

#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace flov {

struct OutputVcState {
  bool allocated = false;
  int owner_port = -1;   ///< input port holding this output VC
  VcId owner_vc = -1;    ///< input VC holding this output VC
  int credits = 0;       ///< free slots at the logical downstream input VC
};

struct OutputPort {
  /// View into the mesh-wide SoA slab (noc/hot_state.hpp).
  Span<OutputVcState> vcs;

  /// Resets every record to fresh-allocation state with `depth` credits
  /// (wakeup re-init; real values follow via the credit handover).
  void init(int num_vcs, int depth) {
    FLOV_CHECK(num_vcs == vcs.size(), "output port VC count mismatch");
    for (auto& v : vcs) {
      v = OutputVcState{};
      v.credits = depth;
    }
  }

  bool any_allocated() const {
    for (const auto& v : vcs) {
      if (v.allocated) return true;
    }
    return false;
  }

  /// Reloads every credit counter (FLOV credit-copy at Sleep/Active
  /// transitions). `free_counts` is indexed by absolute VC.
  void reload_credits(const std::vector<int>& free_counts) {
    FLOV_CHECK(static_cast<std::int32_t>(free_counts.size()) == vcs.size(),
               "credit reload size");
    for (std::int32_t v = 0; v < vcs.size(); ++v) {
      vcs[v].credits = free_counts[static_cast<std::size_t>(v)];
    }
  }
};

}  // namespace flov
