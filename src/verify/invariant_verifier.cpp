#include "verify/invariant_verifier.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.hpp"
#include "fault/fault_injector.hpp"
#include "flov/flov_network.hpp"
#include "telemetry/json.hpp"
#include "telemetry/structured_sink.hpp"
#include "telemetry/trace.hpp"

namespace flov {

namespace {

const char* router_mode_name(RouterMode m) {
  switch (m) {
    case RouterMode::kPipeline: return "pipeline";
    case RouterMode::kBypass: return "bypass";
    case RouterMode::kParked: return "parked";
    case RouterMode::kDead: return "dead";
  }
  return "?";
}

}  // namespace

InvariantVerifier::InvariantVerifier(FlovNetwork& sys, VerifierOptions opts)
    : net_(sys.network()),
      flov_(&sys),
      fault_(sys.fault_injector()),
      opts_(opts) {
  FLOV_CHECK(opts_.check_interval >= 1, "verifier interval must be >= 1");
  const int n = net_.num_nodes();
  prev_state_.assign(n, PowerState::kActive);
  last_fsm_change_.assign(n, 0);
  psr_fail_streak_.assign(n, {0, 0, 0, 0});
  net_.add_eject_callback(
      [this](const PacketRecord& rec) { observe_eject(rec); });
}

InvariantVerifier::InvariantVerifier(Network& net, VerifierOptions opts,
                                     const FaultInjector* fault)
    : net_(net), fault_(fault), opts_(opts) {
  FLOV_CHECK(opts_.check_interval >= 1, "verifier interval must be >= 1");
  opts_.check_credits = false;  // meaningful only with the FLOV handover
  opts_.check_psr = false;
  net_.add_eject_callback(
      [this](const PacketRecord& rec) { observe_eject(rec); });
}

PowerState InvariantVerifier::state_of(NodeId id) const {
  return flov_->hsc(id).state();
}

void InvariantVerifier::violation(Cycle now, const std::string& what) {
  std::fprintf(stderr, "[verifier] cycle %llu: %s\n",
               static_cast<unsigned long long>(now), what.c_str());
  if (flov_) flov_->dump_state(now);
  if (opts_.sink) {
    // Machine-parseable mirror of the stderr dump: the violated invariant
    // plus the coordinates / datapath mode / protocol state of every router
    // that is not plainly powered (the interesting ones in any power-gating
    // incident).
    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("kind", "verifier_violation");
    w.kv("cycle", static_cast<std::uint64_t>(now));
    w.kv("what", what);
    w.key("gated_routers");
    w.begin_array();
    for (NodeId id = 0; id < net_.num_nodes(); ++id) {
      const RouterMode m = net_.router(id).mode();
      const PowerState ps = flov_ ? state_of(id) : PowerState::kActive;
      if (m == RouterMode::kPipeline && ps == PowerState::kActive) continue;
      const Coord c = net_.geom().coord(id);
      w.begin_object();
      w.kv("router", id);
      w.kv("x", c.x);
      w.kv("y", c.y);
      w.kv("mode", router_mode_name(m));
      if (flov_) w.kv("power_state", to_string(ps));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    opts_.sink->add(w.take());
  }
  FLOV_TRACE(telemetry::kTraceVerify,
             telemetry::TraceEventType::kVerifyViolation, now, -1,
             violations_ + 1, 0);
  last_violation_ = what;
  violations_++;
  FLOV_CHECK(!opts_.fatal, "invariant violation: " + what);
}

void InvariantVerifier::observe_eject(const PacketRecord& rec) {
  const int n = ++eject_counts_[rec.packet_id];
  if (n > 1) {
    std::ostringstream os;
    os << "packet " << rec.packet_id << " (src=" << rec.src
       << " dest=" << rec.dest << ") ejected " << n << " times";
    violation(rec.eject_cycle, os.str());
  }
}

void InvariantVerifier::track_fsm_changes(Cycle now) {
  const int n = net_.num_nodes();
  for (NodeId id = 0; id < n; ++id) {
    const PowerState s = state_of(id);
    if (s != prev_state_[id]) {
      prev_state_[id] = s;
      last_fsm_change_[id] = now;
    }
  }
}

void InvariantVerifier::step(Cycle now) {
  if (flov_) track_fsm_changes(now);
  if (now % opts_.check_interval != 0) return;
  checks_run_++;
  if (opts_.check_conservation) {
    check_conservation(now);
    if (net_.params().reliable) check_delivery(now);
  }
  if (opts_.check_credits) check_credits(now);
  if (opts_.check_psr) check_psr(now);
}

void InvariantVerifier::final_check(Cycle now) {
  checks_run_++;
  if (opts_.check_conservation) {
    check_conservation(now);
    if (net_.params().reliable) check_delivery(now);
  }
  if (opts_.check_credits) check_credits(now);
  if (opts_.check_psr) check_psr(now);
}

void InvariantVerifier::check_delivery(Cycle now) {
  for (NodeId id = 0; id < net_.num_nodes(); ++id) {
    const auto& ni = net_.ni(id);
    const std::uint64_t alloc = ni.seq_allocated();
    const std::uint64_t acked = ni.packets_acked();
    const std::uint64_t dead = ni.packets_dead();
    const std::uint64_t outstanding = ni.tx_outstanding();
    if (alloc != acked + dead + outstanding) {
      std::ostringstream os;
      os << "reliable-delivery accounting broken at NI " << id
         << ": seq_allocated=" << alloc << " acked=" << acked
         << " declared_dead=" << dead << " outstanding=" << outstanding;
      violation(now, os.str());
    }
  }
}

void InvariantVerifier::check_conservation(Cycle now) {
  // Ground truth only: per-NI counters summed directly and a full component
  // walk for the in-flight population. The network's O(1) cached aggregates
  // must NOT be used here — a cache that drifted would make the equation
  // tautologically true (the cache IS injected - ejected - dropped).
  std::uint64_t injected = 0, ejected = 0;
  for (NodeId id = 0; id < net_.num_nodes(); ++id) {
    injected += net_.ni(id).injected_flits();
    ejected += net_.ni(id).ejected_flits();
  }
  const std::uint64_t inside = net_.recount_in_network_flits();
  const std::uint64_t dropped = fault_ ? fault_->dropped_flits() : 0;
  if (injected != ejected + inside + dropped) {
    std::ostringstream os;
    os << "flit conservation broken: injected=" << injected
       << " ejected=" << ejected << " in_network=" << inside
       << " fault_dropped=" << dropped;
    violation(now, os.str());
    return;  // a cache-drift report would just restate the same loss
  }
  // Conservation holds on ground truth; now hold the cached aggregates the
  // active-set scheduler runs on to the same standard.
  const FabricCounters c = net_.counters();
  if (c.injected_flits != injected || c.ejected_flits != ejected ||
      c.dropped_flits != dropped || c.in_network() != inside) {
    std::ostringstream os;
    os << "cached fabric counters drifted: cached injected="
       << c.injected_flits << "/" << injected << " ejected="
       << c.ejected_flits << "/" << ejected << " dropped="
       << c.dropped_flits << "/" << dropped << " in_network="
       << c.in_network() << "/" << inside;
    violation(now, os.str());
  }
}

void InvariantVerifier::check_credits(Cycle now) {
  // Exact unless flit-drop or hard faults are armed: a dropped/killed
  // flit's credit is legitimately gone until the next handover
  // resynthesizes the counters, so only the upper bound survives.
  const bool exact = !fault_ || (fault_->params().flit_drop_rate <= 0.0 &&
                                 !fault_->params().hard_faults_armed());
  const MeshGeometry& g = net_.geom();
  const NocParams& p = net_.params();
  const int nvc = p.total_vcs();
  std::vector<int> flits_in_flight(nvc);
  std::vector<int> credits_in_flight(nvc);
  for (NodeId u = 0; u < net_.num_nodes(); ++u) {
    if (net_.router(u).mode() != RouterMode::kPipeline) continue;
    for (Direction d : kMeshDirections) {
      // Nearest powered (pipeline-datapath) router: the one whose input
      // buffer u's output credits track across the sleeping run.
      NodeId c = g.neighbor(u, d);
      if (c == kInvalidNode) continue;
      while (c != kInvalidNode &&
             net_.router(c).mode() != RouterMode::kPipeline) {
        c = g.neighbor(c, d);
      }
      if (c == kInvalidNode) continue;

      std::fill(flits_in_flight.begin(), flits_in_flight.end(), 0);
      std::fill(credits_in_flight.begin(), credits_in_flight.end(), 0);
      for (NodeId r = u; r != c; r = g.neighbor(r, d)) {
        if (auto* fch = net_.flit_channel(r, d)) {
          fch->for_each_in_flight(
              [&](const Flit& f) { flits_in_flight[f.vc]++; });
        }
        if (auto* cch = net_.router(r).credit_in(d)) {
          cch->for_each_in_flight(
              [&](const Credit& cr) { credits_in_flight[cr.vc]++; });
        }
        if (r != u) {
          const auto& latched = net_.router(r).latch_flit(d);
          if (latched.has_value()) flits_in_flight[latched->vc]++;
        }
      }
      net_.router(c).input_free_slots(opposite(d), free_slots_scratch_);
      const std::vector<int>& free = free_slots_scratch_;
      const OutputPort& out = net_.router(u).output_port(d);
      for (int v = 0; v < nvc; ++v) {
        const int occupied = p.buffer_depth - free[v];
        const int sum = out.vcs[v].credits + flits_in_flight[v] +
                        credits_in_flight[v] + occupied;
        const bool bad =
            exact ? sum != p.buffer_depth : sum > p.buffer_depth;
        if (bad || out.vcs[v].credits < 0 || occupied < 0) {
          std::ostringstream os;
          os << "credit conservation broken on segment " << u << " -> " << c
             << " dir=" << to_string(d) << " vc=" << v
             << ": credits=" << out.vcs[v].credits
             << " flits_in_flight=" << flits_in_flight[v]
             << " credits_in_flight=" << credits_in_flight[v]
             << " occupied=" << occupied << " (depth=" << p.buffer_depth
             << ", " << (exact ? "exact" : "bound") << ")";
          violation(now, os.str());
        }
      }
    }
  }
}

bool InvariantVerifier::segment_settled(NodeId from, Direction d, NodeId to,
                                        Cycle now) const {
  if (now < opts_.settle_window) return false;
  const MeshGeometry& g = net_.geom();
  NodeId cur = from;
  while (cur != kInvalidNode) {
    if (now - last_fsm_change_[cur] < opts_.settle_window) return false;
    if (cur == to) break;
    cur = g.neighbor(cur, d);
  }
  return true;
}

void InvariantVerifier::check_psr(Cycle now) {
  const MeshGeometry& g = net_.geom();
  const bool restricted = flov_->mode() == FlovMode::kRestricted;

  for (NodeId id = 0; id < net_.num_nodes(); ++id) {
    const PowerState s = state_of(id);

    // rFLOV adjacency: two physically adjacent gated routers can never
    // legitimately coexist, transients included (drain entry requires all
    // neighbors Active and arbitration serializes), so check instantly.
    if (restricted && (s == PowerState::kSleep || s == PowerState::kWakeup) &&
        !flov_->router_dead(id)) {
      for (Direction d : {Direction::East, Direction::South}) {
        const NodeId m = g.neighbor(id, d);
        if (m == kInvalidNode) continue;
        // Hard faults do not respect the adjacency rule: two neighbors can
        // die together, and a dead router sleeps forever regardless of who
        // is next to it.
        if (flov_->router_dead(m)) continue;
        const PowerState ms = state_of(m);
        if (ms == PowerState::kSleep || ms == PowerState::kWakeup) {
          std::ostringstream os;
          os << "rFLOV adjacency broken: routers " << id << " ("
             << to_string(s) << ") and " << m << " (" << to_string(ms)
             << ") are both gated";
          violation(now, os.str());
        }
      }
    }

    // Logical-pointer coherence (powered routers' views only; a gated
    // router's view is refreshed on wakeup).
    if (s != PowerState::kActive && s != PowerState::kDraining) continue;
    const NeighborhoodView& v = net_.router(id).view();
    for (Direction d : kMeshDirections) {
      const int di = dir_index(d);
      NodeId expected = g.neighbor(id, d);
      while (expected != kInvalidNode &&
             state_of(expected) == PowerState::kSleep) {
        expected = g.neighbor(expected, d);
      }
      if (!segment_settled(id, d, expected, now)) {
        psr_fail_streak_[id][di] = 0;
        continue;
      }
      if (v.logical[di] != expected) {
        // Two consecutive failing samples: a heal (retry / re-announce)
        // may be mid-flight on the first.
        if (++psr_fail_streak_[id][di] >= 2) {
          std::ostringstream os;
          os << "stale logical PSR at router " << id << " dir="
             << to_string(d) << ": points at " << v.logical[di]
             << ", true nearest powered router is " << expected;
          violation(now, os.str());
          psr_fail_streak_[id][di] = 0;
        }
        continue;
      }
      psr_fail_streak_[id][di] = 0;

      // gFLOV forbidden logical pairs, flagged only when persistent: both
      // FSMs stable a full settle window yet still paired means the
      // arbitration/priority signals were lost beyond recovery.
      if (!restricted && s == PowerState::kDraining &&
          expected != kInvalidNode && !flov_->router_dead(id) &&
          !flov_->router_dead(expected)) {
        const PowerState es = state_of(expected);
        if ((es == PowerState::kDraining || es == PowerState::kWakeup) &&
            now - last_fsm_change_[id] >= opts_.settle_window &&
            now - last_fsm_change_[expected] >= opts_.settle_window) {
          std::ostringstream os;
          os << "gFLOV forbidden pair stuck: router " << id
             << " Draining with logical neighbor " << expected << " "
             << to_string(es) << " dir=" << to_string(d);
          violation(now, os.str());
        }
      }
    }
  }
}

}  // namespace flov
