// Runtime invariant verifier: a per-cycle observer that proves the
// simulator's protocol-level conservation laws as it runs.
//
// Checks (each individually switchable):
//   * Flit conservation — every injected flit is either still inside the
//     fabric, ejected exactly once, or accounted to an injected flit-drop
//     fault. Checked as an exact per-cycle equation over NI counters,
//     channel occupancy and router buffers; packet-level duplicate ejection
//     is caught via an ejection observer.
//   * Credit conservation — for every powered router U and direction d,
//     per VC: U's output credits + flits in flight on the segment toward
//     the nearest powered router C + credits in flight back + C's occupied
//     input slots == buffer_depth. Holds exactly at every cycle boundary,
//     including across FLOV sleep/wake credit handovers; downgraded to an
//     upper bound when flit-drop faults are armed (a dropped flit's credit
//     is legitimately lost forever).
//   * PSR coherence — logical[d] points at the true nearest non-sleeping
//     router; rFLOV never gates two adjacent routers; gFLOV never keeps a
//     Draining–Draining or Draining–Wakeup logical pair. Pointer checks
//     respect signal latency: they only fire on neighborhoods whose power
//     FSMs have been stable for `settle_window` cycles, and require two
//     consecutive failing samples (handshake heals are in flight in
//     between).
//
// A violation dumps the offending neighborhood and either aborts via
// FLOV_CHECK (fatal=true, the default) or is counted (for tests that
// assert the verifier fires).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "noc/network.hpp"
#include "noc/power_state.hpp"

namespace flov {

namespace telemetry {
class StructuredSink;
}

class FlovNetwork;
class FaultInjector;

struct VerifierOptions {
  Cycle check_interval = 1;  ///< run the per-cycle checks every N cycles
  /// FSM-quiet time required before PSR pointer/pair checks may flag.
  Cycle settle_window = 64;
  bool check_conservation = true;
  bool check_credits = true;
  bool check_psr = true;
  bool fatal = true;  ///< abort on violation (else: count and continue)
  /// Structured incident sink (run manifest "incidents" section): every
  /// violation is also recorded as a JSON object with the coordinates and
  /// power mode of each non-powered router. Non-owning; may be null.
  telemetry::StructuredSink* sink = nullptr;

  static VerifierOptions from_config(const Config& cfg) {
    VerifierOptions o;
    o.check_interval = cfg.get_int("verify.check_interval", o.check_interval);
    o.settle_window = cfg.get_int("verify.settle_window", o.settle_window);
    o.check_conservation =
        cfg.get_bool("verify.check_conservation", o.check_conservation);
    o.check_credits = cfg.get_bool("verify.check_credits", o.check_credits);
    o.check_psr = cfg.get_bool("verify.check_psr", o.check_psr);
    o.fatal = cfg.get_bool("verify.fatal", o.fatal);
    return o;
  }
};

class InvariantVerifier {
 public:
  /// Full verifier for a FLOV system (conservation + credits + PSRs).
  /// Registers itself as an ejection observer on every NI.
  InvariantVerifier(FlovNetwork& sys, VerifierOptions opts = {});

  /// Conservation-only verifier for any bare Network (Baseline; RP parks
  /// routers and voids credits by design, so only flit conservation is a
  /// meaningful invariant there). `fault` (optional): the scheme's armed
  /// injector, so faulted flit drops balance the conservation equation.
  InvariantVerifier(Network& net, VerifierOptions opts = {},
                    const FaultInjector* fault = nullptr);

  /// Run the armed checks; call once per cycle after the system stepped.
  void step(Cycle now);

  /// Ejection observer (public so tests can replay records directly).
  void observe_eject(const PacketRecord& rec);

  /// One unconditional full sweep (used after quiescing a run).
  void final_check(Cycle now);

  std::uint64_t violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_run_; }
  const std::string& last_violation() const { return last_violation_; }

 private:
  void check_conservation(Cycle now);
  /// Reliable-delivery bookkeeping (noc.reliable only): per NI, every
  /// allocated sequence number is acked, declared dead, or still tracked in
  /// the retransmit buffer — no flow is ever silently forgotten.
  void check_delivery(Cycle now);
  void check_credits(Cycle now);
  void check_psr(Cycle now);
  void track_fsm_changes(Cycle now);
  bool segment_settled(NodeId from, Direction d, NodeId to, Cycle now) const;
  PowerState state_of(NodeId id) const;
  void violation(Cycle now, const std::string& what);

  Network& net_;
  FlovNetwork* flov_ = nullptr;  ///< null for the conservation-only form
  const FaultInjector* fault_ = nullptr;
  VerifierOptions opts_;

  std::unordered_map<std::uint64_t, int> eject_counts_;
  std::vector<int> free_slots_scratch_;  ///< Router::input_free_slots scratch
  std::vector<PowerState> prev_state_;
  std::vector<Cycle> last_fsm_change_;
  /// Consecutive failing samples per (node, dir) pointer check.
  std::vector<std::array<int, kNumMeshDirs>> psr_fail_streak_;

  std::uint64_t violations_ = 0;
  std::uint64_t checks_run_ = 0;
  std::string last_violation_;
};

}  // namespace flov
