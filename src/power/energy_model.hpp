// DSENT-substitute energy/power model.
//
// The paper uses DSENT at 32 nm, 2 GHz, 16-byte (128-bit) links, 50%
// switching activity. DSENT is an external tool, so we embed an
// event-energy + leakage model with constants calibrated to the same
// operating point: at this node static power is roughly half of total NoC
// power under nominal load (the paper cites 47.7% at 32 nm), per-flit
// datapath energies are in the low-pJ range, a FLOV latch traversal costs a
// small fraction of a full 3-stage pipeline pass, and a power-gating
// transition costs 17.7 pJ (Table I). Every constant is overridable through
// Config keys ("energy.<field>") so ablations can probe sensitivity.
#pragma once

#include <array>
#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"

namespace flov {

/// Dynamic energy event classes counted by the NoC components.
enum class EnergyEvent : int {
  kBufferWrite = 0,   ///< flit written into an input VC buffer
  kBufferRead,        ///< flit read out of an input VC buffer (at ST)
  kVcArb,             ///< a granted VC allocation
  kSwArb,             ///< a granted switch allocation
  kCrossbar,          ///< flit through the crossbar
  kLinkTraversal,     ///< flit over a 1 mm inter-router link
  kFlovLatch,         ///< flit through a FLOV output latch (fly-over hop)
  kCreditRelay,       ///< credit relayed across a sleeping router
  kHandshakeSignal,   ///< one HSC out-of-band signal hop
  kPgTransition,      ///< one power-gating transition (sleep->wake), 17.7 pJ
  kCount,
};

inline constexpr int kNumEnergyEvents = static_cast<int>(EnergyEvent::kCount);

inline const char* to_string(EnergyEvent e) {
  switch (e) {
    case EnergyEvent::kBufferWrite: return "buffer_write";
    case EnergyEvent::kBufferRead: return "buffer_read";
    case EnergyEvent::kVcArb: return "vc_arb";
    case EnergyEvent::kSwArb: return "sw_arb";
    case EnergyEvent::kCrossbar: return "crossbar";
    case EnergyEvent::kLinkTraversal: return "link_traversal";
    case EnergyEvent::kFlovLatch: return "flov_latch";
    case EnergyEvent::kCreditRelay: return "credit_relay";
    case EnergyEvent::kHandshakeSignal: return "handshake_signal";
    case EnergyEvent::kPgTransition: return "pg_transition";
    case EnergyEvent::kCount: break;
  }
  return "?";
}

/// Leakage-relevant operating mode of a router tile.
enum class RouterPowerMode : std::uint8_t {
  kOn = 0,       ///< baseline router powered (full leakage)
  kFlovSleep,    ///< baseline portion gated; FLOV latches + HSC remain on
  kRpParked,     ///< fully parked (RP): only a tiny retention residual
};

/// All model constants. Units: energies in pJ, leakage in mW, frequency GHz.
struct EnergyParams {
  // --- dynamic event energies (pJ) ---
  double buffer_write_pj = 1.8;
  double buffer_read_pj = 1.2;
  double vc_arb_pj = 0.20;
  double sw_arb_pj = 0.25;
  double crossbar_pj = 2.6;
  double link_pj = 2.0;          // 1 mm, 128-bit @ 50% activity
  double flov_latch_pj = 0.7;    // latch write+read, no RC/VA/SA/xbar
  double credit_relay_pj = 0.05;
  double handshake_pj = 0.01;
  double pg_transition_pj = 17.7;  // Table I power-gating overhead

  // --- leakage (mW) ---
  double router_leak_mw = 1.9;   // full 5-port 3-stage VC router @32nm
  double link_leak_mw = 0.05;    // per unidirectional 1 mm link driver

  // Residual leakage fractions relative to router_leak_mw.
  double flov_sleep_leak_fraction = 0.05;  // 4 latches + HSC + PSRs stay on
  double rp_park_leak_fraction = 0.02;     // retention/wake circuitry only
  // Extra leakage a FLOV-capable router pays while ACTIVE (muxes/HSC; the
  // latches themselves are power-gated when the router is on). The paper
  // quotes 3% area overhead; the always-on share of it is small.
  double flov_active_overhead_fraction = 0.01;

  double clock_freq_ghz = 2.0;

  /// Reads overrides from keys "energy.<field>" (e.g. "energy.link_pj").
  static EnergyParams from_config(const Config& cfg);

  /// Energy in pJ for one event.
  double event_pj(EnergyEvent e) const;

  /// Router leakage in mW for a mode (flov_hardware: pays latch overhead).
  double router_leak(RouterPowerMode mode, bool flov_hardware) const;

  /// Link driver leakage in mW for the mode of the driving router. FLOV
  /// links keep their drivers on while sleeping; RP parks them.
  double link_leak(RouterPowerMode mode) const;

  /// Converts (mW * cycles) to pJ given the clock frequency:
  /// E[pJ] = P[mW] * cycles / f[GHz].
  double leak_energy_pj(double mw, Cycle cycles) const {
    return mw * static_cast<double>(cycles) / clock_freq_ghz;
  }
};

}  // namespace flov
