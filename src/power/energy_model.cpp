#include "power/energy_model.hpp"

#include "common/log.hpp"

namespace flov {

EnergyParams EnergyParams::from_config(const Config& cfg) {
  EnergyParams p;
  p.buffer_write_pj = cfg.get_double("energy.buffer_write_pj", p.buffer_write_pj);
  p.buffer_read_pj = cfg.get_double("energy.buffer_read_pj", p.buffer_read_pj);
  p.vc_arb_pj = cfg.get_double("energy.vc_arb_pj", p.vc_arb_pj);
  p.sw_arb_pj = cfg.get_double("energy.sw_arb_pj", p.sw_arb_pj);
  p.crossbar_pj = cfg.get_double("energy.crossbar_pj", p.crossbar_pj);
  p.link_pj = cfg.get_double("energy.link_pj", p.link_pj);
  p.flov_latch_pj = cfg.get_double("energy.flov_latch_pj", p.flov_latch_pj);
  p.credit_relay_pj = cfg.get_double("energy.credit_relay_pj", p.credit_relay_pj);
  p.handshake_pj = cfg.get_double("energy.handshake_pj", p.handshake_pj);
  p.pg_transition_pj = cfg.get_double("energy.pg_transition_pj", p.pg_transition_pj);
  p.router_leak_mw = cfg.get_double("energy.router_leak_mw", p.router_leak_mw);
  p.link_leak_mw = cfg.get_double("energy.link_leak_mw", p.link_leak_mw);
  p.flov_sleep_leak_fraction =
      cfg.get_double("energy.flov_sleep_leak_fraction", p.flov_sleep_leak_fraction);
  p.rp_park_leak_fraction =
      cfg.get_double("energy.rp_park_leak_fraction", p.rp_park_leak_fraction);
  p.flov_active_overhead_fraction = cfg.get_double(
      "energy.flov_active_overhead_fraction", p.flov_active_overhead_fraction);
  p.clock_freq_ghz = cfg.get_double("energy.clock_freq_ghz", p.clock_freq_ghz);
  return p;
}

double EnergyParams::event_pj(EnergyEvent e) const {
  switch (e) {
    case EnergyEvent::kBufferWrite: return buffer_write_pj;
    case EnergyEvent::kBufferRead: return buffer_read_pj;
    case EnergyEvent::kVcArb: return vc_arb_pj;
    case EnergyEvent::kSwArb: return sw_arb_pj;
    case EnergyEvent::kCrossbar: return crossbar_pj;
    case EnergyEvent::kLinkTraversal: return link_pj;
    case EnergyEvent::kFlovLatch: return flov_latch_pj;
    case EnergyEvent::kCreditRelay: return credit_relay_pj;
    case EnergyEvent::kHandshakeSignal: return handshake_pj;
    case EnergyEvent::kPgTransition: return pg_transition_pj;
    case EnergyEvent::kCount: break;
  }
  FLOV_CHECK(false, "bad energy event");
  return 0.0;
}

double EnergyParams::router_leak(RouterPowerMode mode,
                                 bool flov_hardware) const {
  switch (mode) {
    case RouterPowerMode::kOn:
      return router_leak_mw *
             (1.0 + (flov_hardware ? flov_active_overhead_fraction : 0.0));
    case RouterPowerMode::kFlovSleep:
      return router_leak_mw * flov_sleep_leak_fraction;
    case RouterPowerMode::kRpParked:
      return router_leak_mw * rp_park_leak_fraction;
  }
  return router_leak_mw;
}

double EnergyParams::link_leak(RouterPowerMode mode) const {
  switch (mode) {
    case RouterPowerMode::kOn:
    case RouterPowerMode::kFlovSleep:
      return link_leak_mw;  // FLOV links keep driving flits while asleep
    case RouterPowerMode::kRpParked:
      return link_leak_mw * rp_park_leak_fraction;
  }
  return link_leak_mw;
}

}  // namespace flov
