#include "power/power_tracker.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace flov {

PowerTracker::PowerTracker(const MeshGeometry& geom,
                           const EnergyParams& params, bool flov_hardware)
    : params_(params),
      flov_hardware_(flov_hardware),
      modes_(geom.num_nodes(), RouterPowerMode::kOn),
      mode_since_(geom.num_nodes(), 0),
      static_energy_pj_(geom.num_nodes(), 0.0),
      out_links_(geom.num_nodes(), 0),
      node_event_counts_(geom.num_nodes()) {
  for (NodeId r = 0; r < geom.num_nodes(); ++r) {
    for (Direction d : kMeshDirections) {
      if (geom.neighbor(r, d) != kInvalidNode) ++out_links_[r];
    }
  }
}

double PowerTracker::tile_leak_mw(NodeId r, RouterPowerMode m) const {
  return params_.router_leak(m, flov_hardware_) +
         out_links_[r] * params_.link_leak(m);
}

void PowerTracker::set_mode(NodeId router, RouterPowerMode mode, Cycle now) {
  FLOV_DCHECK(router >= 0 && router < static_cast<NodeId>(modes_.size()),
              "bad router id");
  const Cycle since = std::max(mode_since_[router], window_start_);
  if (now > since) {
    static_energy_pj_[router] +=
        params_.leak_energy_pj(tile_leak_mw(router, modes_[router]),
                               now - since);
  }
  FLOV_TRACE(telemetry::kTracePower, telemetry::TraceEventType::kPowerMode,
             now, router, static_cast<std::uint64_t>(mode),
             static_cast<std::uint64_t>(modes_[router]));
  modes_[router] = mode;
  mode_since_[router] = now;
}

void PowerTracker::begin_window(Cycle now) {
  window_start_ = now;
  std::fill(static_energy_pj_.begin(), static_energy_pj_.end(), 0.0);
  for (auto& s : mode_since_) s = std::max(s, now);
  event_counts_.fill(0);
  for (auto& cell : node_event_counts_) cell.fill(0);
}

PowerTracker::Report PowerTracker::report(Cycle now) const {
  Report rep;
  FLOV_CHECK(now >= window_start_, "report before window start");
  rep.cycles = now - window_start_;

  double static_pj = 0.0;
  for (NodeId r = 0; r < static_cast<NodeId>(modes_.size()); ++r) {
    static_pj += static_energy_pj_[r];
    const Cycle since = std::max(mode_since_[r], window_start_);
    if (now > since) {
      static_pj += params_.leak_energy_pj(tile_leak_mw(r, modes_[r]),
                                          now - since);
    }
  }

  double dynamic_pj = 0.0;
  for (int e = 0; e < kNumEnergyEvents; ++e) {
    dynamic_pj += static_cast<double>(event_count(static_cast<EnergyEvent>(e))) *
                  params_.event_pj(static_cast<EnergyEvent>(e));
  }

  rep.static_energy_pj = static_pj;
  rep.dynamic_energy_pj = dynamic_pj;
  rep.total_energy_pj = static_pj + dynamic_pj;
  if (rep.cycles > 0) {
    // P[mW] = E[pJ] * f[GHz] / cycles.
    const double cycles = static_cast<double>(rep.cycles);
    rep.static_mw = static_pj * params_.clock_freq_ghz / cycles;
    rep.dynamic_mw = dynamic_pj * params_.clock_freq_ghz / cycles;
    rep.total_mw = rep.static_mw + rep.dynamic_mw;
  }
  return rep;
}

void PowerTracker::publish_metrics(telemetry::MetricsRegistry& reg,
                                   Cycle now) const {
  for (int e = 0; e < kNumEnergyEvents; ++e) {
    const EnergyEvent ev = static_cast<EnergyEvent>(e);
    reg.counter(std::string("power.events.") + to_string(ev)) +=
        event_count(ev);
  }
  const Report rep = report(now);
  reg.gauge("power.static_mw") = rep.static_mw;
  reg.gauge("power.dynamic_mw") = rep.dynamic_mw;
  reg.gauge("power.total_mw") = rep.total_mw;
  reg.gauge("power.static_energy_pj") = rep.static_energy_pj;
  reg.gauge("power.dynamic_energy_pj") = rep.dynamic_energy_pj;
  reg.gauge("power.total_energy_pj") = rep.total_energy_pj;
  reg.gauge("power.window_cycles") = static_cast<double>(rep.cycles);
}

}  // namespace flov
