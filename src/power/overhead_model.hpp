// Analytic area/wiring overhead model for the FLOV router additions
// (paper Section V-A). Reproduces the bookkeeping behind the quoted
// numbers: 16 PSR bits, 6 HSC wires per neighbor, ~3% router area overhead
// (2.8e-3 mm^2 at 32 nm).
#pragma once

namespace flov {

struct OverheadInputs {
  int flit_width_bits = 128;       // 16 B links
  int num_mesh_ports = 4;
  int psr_entries_per_set = 4;     // one entry per direction
  int psr_bits_per_entry = 2;      // 4 power states
  int psr_sets = 2;                // physical + logical neighbors
  double baseline_router_area_mm2 = 0.0933;  // 32 nm 5-port 3-stage VC router
  // Component area estimates at 32 nm (mm^2).
  double latch_area_per_bit_mm2 = 3.0e-6;
  double mux_area_per_bit_mm2 = 1.0e-6;
  double psr_area_per_bit_mm2 = 5.0e-6;
  double hsc_fsm_area_mm2 = 1.0e-4;
};

struct OverheadReport {
  int psr_bits = 0;                 // total PSR storage bits
  int hsc_wires_per_neighbor = 0;   // out-of-band control wires
  double latch_area_mm2 = 0.0;      // 4 output latches
  double mux_area_mm2 = 0.0;        // 4 muxes + 4 demuxes
  double psr_area_mm2 = 0.0;
  double hsc_area_mm2 = 0.0;
  double total_overhead_mm2 = 0.0;
  double overhead_fraction = 0.0;   // of baseline router area
};

/// Evaluates the analytic model.
OverheadReport compute_overhead(const OverheadInputs& in);

}  // namespace flov
