#include "power/overhead_model.hpp"

namespace flov {

OverheadReport compute_overhead(const OverheadInputs& in) {
  OverheadReport r;
  r.psr_bits = in.psr_sets * in.psr_entries_per_set * in.psr_bits_per_entry;
  // 4 bits for current + logical neighbor power-state change notifications,
  // 1 bit draining notification, 1 bit physical-neighbor assertion (§V-A).
  r.hsc_wires_per_neighbor = 6;

  r.latch_area_mm2 =
      in.num_mesh_ports * in.flit_width_bits * in.latch_area_per_bit_mm2;
  // A mux and a demux per mesh port, each spanning the flit width.
  r.mux_area_mm2 =
      2.0 * in.num_mesh_ports * in.flit_width_bits * in.mux_area_per_bit_mm2;
  r.psr_area_mm2 = r.psr_bits * in.psr_area_per_bit_mm2;
  r.hsc_area_mm2 = in.hsc_fsm_area_mm2;
  r.total_overhead_mm2 =
      r.latch_area_mm2 + r.mux_area_mm2 + r.psr_area_mm2 + r.hsc_area_mm2;
  r.overhead_fraction = r.total_overhead_mm2 / in.baseline_router_area_mm2;
  return r;
}

}  // namespace flov
