// Per-network power accounting.
//
// Tracks, per router tile: the leakage-relevant power mode over time
// (integrated into static energy) and global dynamic event counts
// (converted into dynamic energy). A measurement window can be (re)opened
// with begin_window() so warm-up activity is excluded, matching the paper's
// 10k-warmup / 100k-total methodology.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "power/energy_model.hpp"

namespace flov {

namespace telemetry {
class MetricsRegistry;
}

class PowerTracker {
 public:
  /// `flov_hardware` selects whether routers pay the FLOV area/leakage
  /// overhead (true for rFLOV/gFLOV networks, false for Baseline/RP).
  PowerTracker(const MeshGeometry& geom, const EnergyParams& params,
               bool flov_hardware);

  /// Declares a router's power mode starting at `now` (inclusive).
  void set_mode(NodeId router, RouterPowerMode mode, Cycle now);
  RouterPowerMode mode(NodeId router) const { return modes_[router]; }

  /// Counts `n` dynamic events of class `e` (global cell — control-plane
  /// callers only: signal fabric, HSCs; never from a domain worker).
  void count(EnergyEvent e, std::uint64_t n = 1) {
    event_counts_[static_cast<int>(e)] += n;
  }
  /// Counts `n` dynamic events attributed to `router`'s tile. Routers use
  /// this so domain-parallel stepping writes disjoint per-node cells; the
  /// readers below fold node cells + the global cell in fixed order, so
  /// totals are exact integers independent of the schedule.
  void count_node(NodeId router, EnergyEvent e, std::uint64_t n = 1) {
    node_event_counts_[router].v[static_cast<int>(e)] += n;
  }
  std::uint64_t event_count(EnergyEvent e) const {
    std::uint64_t n = event_counts_[static_cast<int>(e)];
    for (const auto& cell : node_event_counts_) {
      n += cell.v[static_cast<int>(e)];
    }
    return n;
  }

  /// Starts a fresh measurement window at `now` (drops all prior counts).
  void begin_window(Cycle now);

  struct Report {
    Cycle cycles = 0;            ///< window length
    double static_mw = 0.0;      ///< average leakage power over the window
    double dynamic_mw = 0.0;     ///< average switching power over the window
    double total_mw = 0.0;
    double static_energy_pj = 0.0;
    double dynamic_energy_pj = 0.0;
    double total_energy_pj = 0.0;
  };

  /// Computes power/energy over [window_start, now].
  Report report(Cycle now) const;

  /// Registers/updates this tracker's metrics in `reg`: one
  /// "power.events.<name>" counter per dynamic-event class plus the
  /// report(now) power/energy figures as "power.*" gauges.
  void publish_metrics(telemetry::MetricsRegistry& reg, Cycle now) const;

  const EnergyParams& params() const { return params_; }

 private:
  /// Leakage power (mW) of router `r` plus its outgoing link drivers in
  /// mode `m`.
  double tile_leak_mw(NodeId r, RouterPowerMode m) const;

  EnergyParams params_;
  bool flov_hardware_;
  std::vector<RouterPowerMode> modes_;
  std::vector<Cycle> mode_since_;        // cycle at which current mode began
  std::vector<double> static_energy_pj_; // per-router, flushed-to-date
  std::vector<int> out_links_;           // outgoing mesh links per router
  std::array<std::uint64_t, kNumEnergyEvents> event_counts_{};
  /// One router's event cell, padded to whole cache lines (64 matches
  /// every x86-64/AArch64 target this runs on): under domain-parallel
  /// stepping, routers at a tile boundary bump adjacent cells from
  /// different workers every switch traversal — unpadded, the boundary
  /// cells straddle a shared line and ping-pong it.
  struct alignas(64) NodeEventCell {
    std::array<std::uint64_t, kNumEnergyEvents> v{};
    void fill(std::uint64_t x) { v.fill(x); }
  };
  /// Per-router event cells (see count_node).
  std::vector<NodeEventCell> node_event_counts_;
  Cycle window_start_ = 0;
};

}  // namespace flov
