// Destination partitioning (paper Fig. 4(a)).
//
// Each router divides the mesh into 8 partitions relative to itself.
// Straight partitions (same column/row): 1 = North, 3 = West, 5 = South,
// 7 = East. Quadrants: 0 = NE, 2 = NW, 4 = SW, 6 = SE. (y grows southward;
// ids are row-major from the top-left, matching the Fig. 5 examples.)
#pragma once

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace flov {

/// Partition of `dest` relative to `me`; -1 when dest == me.
int partition_of(const MeshGeometry& geom, NodeId me, NodeId dest);

constexpr bool is_straight_partition(int p) {
  return p == 1 || p == 3 || p == 5 || p == 7;
}

/// Direction for a straight partition (1/3/5/7 -> N/W/S/E).
Direction straight_direction(int p);

/// Vertical component of a quadrant partition (0,2 -> North; 4,6 -> South).
Direction quadrant_y(int p);

/// Horizontal component of a quadrant partition (2,4 -> West; 0,6 -> East).
Direction quadrant_x(int p);

}  // namespace flov
