#include "routing/partition.hpp"

#include "common/log.hpp"

namespace flov {

int partition_of(const MeshGeometry& geom, NodeId me, NodeId dest) {
  const Coord a = geom.coord(me);
  const Coord b = geom.coord(dest);
  const int dx = b.x - a.x;
  const int dy = b.y - a.y;  // positive = South
  if (dx == 0 && dy == 0) return -1;
  if (dx == 0) return dy < 0 ? 1 : 5;
  if (dy == 0) return dx < 0 ? 3 : 7;
  if (dx > 0) return dy < 0 ? 0 : 6;  // NE / SE
  return dy < 0 ? 2 : 4;              // NW / SW
}

Direction straight_direction(int p) {
  switch (p) {
    case 1: return Direction::North;
    case 3: return Direction::West;
    case 5: return Direction::South;
    case 7: return Direction::East;
  }
  FLOV_CHECK(false, "not a straight partition");
  return Direction::Local;
}

Direction quadrant_y(int p) {
  switch (p) {
    case 0:
    case 2: return Direction::North;
    case 4:
    case 6: return Direction::South;
  }
  FLOV_CHECK(false, "not a quadrant partition");
  return Direction::Local;
}

Direction quadrant_x(int p) {
  switch (p) {
    case 2:
    case 4: return Direction::West;
    case 0:
    case 6: return Direction::East;
  }
  FLOV_CHECK(false, "not a quadrant partition");
  return Direction::Local;
}

}  // namespace flov
