// Up*/down* routes over the powered sub-graph (Router Parking substrate).
//
// RP's fabric manager computes deadlock-free routes on the sub-mesh of
// powered routers and distributes them as tables. We implement the classic
// up*/down* scheme: a BFS spanning tree roots the powered sub-graph; every
// link gets an up/down orientation (up = toward lower BFS level, ties by
// smaller id); a legal path never takes an up-link after a down-link, which
// makes the channel-dependency graph acyclic (deadlock-free with one VC).
// Shortest *legal* paths are computed exactly on the (node, went-down)
// product graph; packets carry the one-bit phase (Flit::updown_went_down).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace flov {

class UpDownRoutes {
 public:
  /// Builds routes over the routers with `powered[id] == true`. Nodes
  /// outside the powered set are unreachable endpoints.
  ///
  /// `dead_links` (optional): hard-faulted directed links, indexed by
  /// link_key = node * 4 + dir_index(dir). A mesh edge with EITHER
  /// direction dead is excluded entirely (conservative: up*/down* trees
  /// want symmetric edges, and a half-dead link would eat every
  /// credit/flit anyway).
  UpDownRoutes(const MeshGeometry& geom, const std::vector<bool>& powered,
               const std::vector<char>* dead_links = nullptr);

  struct Hop {
    Direction dir = Direction::Local;
    bool went_down_after = false;  ///< phase bit after taking this hop
  };

  /// Next hop of a shortest legal path from `from` to `dest` given the
  /// packet's current phase; nullopt if unreachable (or from == dest).
  std::optional<Hop> next_hop(NodeId from, NodeId dest, bool went_down) const;

  /// True if a legal path exists from a fresh (phase = up-allowed) packet.
  bool reachable(NodeId from, NodeId dest) const;

  /// Legal shortest path length in hops (-1 if unreachable).
  int path_len(NodeId from, NodeId dest) const;

  bool powered(NodeId n) const { return powered_[n]; }
  int bfs_level(NodeId n) const { return level_[n]; }
  NodeId root() const { return root_; }

  /// True when every powered node can reach every other powered node
  /// (the powered sub-graph is connected).
  bool all_powered_connected() const;

  /// True if the directed link from `a` toward `d` is an "up" link.
  bool is_up_link(NodeId a, Direction d) const;

 private:
  int state(NodeId n, bool went_down) const {
    return 2 * n + (went_down ? 1 : 0);
  }

  /// True when the mesh edge from `a` toward `d` survives (both directions
  /// alive); vacuously true without a dead-link mask.
  bool edge_ok(NodeId a, Direction d) const;

  const MeshGeometry& geom_;
  std::vector<bool> powered_;
  std::vector<char> dead_links_;  ///< empty = no hard link faults
  std::vector<int> level_;   ///< BFS level; -1 if unpowered/disconnected
  NodeId root_ = kInvalidNode;
  /// dist_[dest][state]: legal hops from (node, phase) to dest; -1 = none.
  std::vector<std::vector<std::int16_t>> dist_;
};

}  // namespace flov
