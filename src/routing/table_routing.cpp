#include "routing/table_routing.hpp"

#include "common/log.hpp"

namespace flov {

RouteDecision TableRouting::route(const RouteContext& ctx, const Flit& flit) {
  if (flit.dest == ctx.current) return {Direction::Local, false};
  FLOV_CHECK(routes_ != nullptr, "RP routing without installed tables");
  const auto hop =
      routes_->next_hop(ctx.current, flit.dest, flit.updown_went_down);
  FLOV_CHECK(hop.has_value(),
             "RP: no route from " + std::to_string(ctx.current) + " to " +
                 std::to_string(flit.dest));
  return {hop->dir, false};
}

void TableRouting::annotate(const RouteContext& ctx,
                            const RouteDecision& decision, Flit& flit) {
  if (decision.out == Direction::Local) return;
  FLOV_CHECK(routes_ != nullptr, "RP annotate without tables");
  // Recompute the hop to stamp the phase bit the packet will have after
  // traversing the chosen link.
  const auto hop =
      routes_->next_hop(ctx.current, flit.dest, flit.updown_went_down);
  FLOV_CHECK(hop.has_value() && hop->dir == decision.out,
             "RP annotate/route mismatch");
  flit.updown_went_down = hop->went_down_after;
}

}  // namespace flov
