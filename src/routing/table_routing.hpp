// Router Parking table routing.
//
// Routers forward per next-hop tables distributed by the fabric manager.
// The tables are up*/down* shortest legal paths (see updown.hpp); the
// 1-bit path phase rides in the flit (Flit::updown_went_down). The FM
// swaps in a new route set atomically at the end of a reconfiguration.
#pragma once

#include <memory>

#include "common/geometry.hpp"
#include "noc/routing_iface.hpp"
#include "routing/updown.hpp"

namespace flov {

class TableRouting final : public RoutingFunction {
 public:
  explicit TableRouting(const MeshGeometry& geom) : geom_(geom) {}

  /// Installs a new route set (reconfiguration Phase I completion).
  void install(std::shared_ptr<const UpDownRoutes> routes) {
    routes_ = std::move(routes);
  }

  const UpDownRoutes* routes() const { return routes_.get(); }

  RouteDecision route(const RouteContext& ctx, const Flit& flit) override;
  void annotate(const RouteContext& ctx, const RouteDecision& decision,
                Flit& flit) override;

 private:
  const MeshGeometry& geom_;
  std::shared_ptr<const UpDownRoutes> routes_;
};

}  // namespace flov
