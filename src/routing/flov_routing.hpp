// The FLOV partition-based dynamic routing algorithm (paper Section V).
//
// Regular VCs (YX-based, best-effort minimal):
//   * straight partitions (1/3/5/7) route directly N/W/S/E — FLOV links
//     guarantee delivery over sleeping intermediates;
//   * quadrants first try the Y-direction neighbor (YX order), then the
//     X-direction neighbor, each only if powered on; otherwise the packet
//     is forwarded East toward the always-on (AON) last column over FLOV
//     links — from there a turn toward the destination is guaranteed;
//   * a packet is never sent back out the port it arrived on (livelock
//     avoidance). If that rule leaves no productive regular output (both
//     turn candidates asleep and East is the arrival port), the packet is
//     diverted straight into the escape sub-network, which may legally
//     reverse (its channel-dependency graph stays acyclic).
//
// Escape sub-network (deadlock recovery, Duato-style): deterministic,
// partition-based — straight partitions go direct; quadrants go East until
// the AON column, then N/S to the destination row, then West. Allowed
// turns are exactly {E->N, E->S, N->W, S->W} (Fig. 4(b)), so the escape
// CDG is acyclic and the network is deadlock-free.
#pragma once

#include "common/geometry.hpp"
#include "noc/routing_iface.hpp"

namespace flov {

class FlovRouting final : public RoutingFunction {
 public:
  explicit FlovRouting(const MeshGeometry& geom) : geom_(geom) {}

  RouteDecision route(const RouteContext& ctx, const Flit& flit) override;
  RouteDecision escape_route(const RouteContext& ctx,
                             const Flit& flit) override;

 private:
  const MeshGeometry& geom_;
};

}  // namespace flov
