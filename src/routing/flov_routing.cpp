#include "routing/flov_routing.hpp"

#include "common/log.hpp"
#include "routing/partition.hpp"

namespace flov {

RouteDecision FlovRouting::route(const RouteContext& ctx, const Flit& flit) {
  const int p = partition_of(geom_, ctx.current, flit.dest);
  if (p < 0) return {Direction::Local, false};

  if (is_straight_partition(p)) {
    // FLOV links carry the flit over any sleeping intermediates; a sleeping
    // destination is woken by the hold-for-wakeup rule at allocation time.
    return {straight_direction(p), false};
  }

  const Direction ydir = quadrant_y(p);
  const Direction xdir = quadrant_x(p);
  const NeighborhoodView& view = *ctx.view;

  // YX preference: turn at the powered Y neighbor first, then X. A
  // poisoned (hard-faulted) outgoing link demotes its turn below the other
  // productive candidate — but remains usable as the only option, so the
  // packet keeps moving and its loss is charged to the dead link.
  const bool y_turn = ydir != ctx.in_dir && view.neighbor_powered(ydir);
  const bool x_turn = xdir != ctx.in_dir && view.neighbor_powered(xdir);
  if (y_turn &&
      !(view.dead_link(ydir) && x_turn && !view.dead_link(xdir))) {
    return {ydir, false};
  }
  if (x_turn) {
    return {xdir, false};
  }

  // Both turn candidates are power-gated: head East toward the AON column,
  // where a turn toward the destination is always possible. An AON-column
  // router never reaches here (its column neighbors are always powered).
  if (Direction::East != ctx.in_dir &&
      geom_.neighbor(ctx.current, Direction::East) != kInvalidNode) {
    return {Direction::East, false};
  }

  // The packet arrived from the East and both turns are asleep: the only
  // productive move is back East, which the regular network forbids.
  // Divert to the escape sub-network immediately (it may legally reverse).
  return escape_route(ctx, flit);
}

RouteDecision FlovRouting::escape_route(const RouteContext& ctx,
                                        const Flit& flit) {
  const int p = partition_of(geom_, ctx.current, flit.dest);
  if (p < 0) return {Direction::Local, true};
  if (is_straight_partition(p)) {
    return {straight_direction(p), true};
  }
  // Quadrant: march East to the AON column; once there, move vertically
  // toward the destination row (E->N / E->S are the allowed turns), after
  // which the partition becomes straight-West.
  if (geom_.is_aon_column(ctx.current)) {
    return {quadrant_y(p), true};
  }
  return {Direction::East, true};
}

}  // namespace flov
