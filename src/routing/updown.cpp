#include "routing/updown.hpp"

#include <deque>

#include "common/log.hpp"

namespace flov {

UpDownRoutes::UpDownRoutes(const MeshGeometry& geom,
                           const std::vector<bool>& powered,
                           const std::vector<char>* dead_links)
    : geom_(geom), powered_(powered), level_(geom.num_nodes(), -1) {
  FLOV_CHECK(static_cast<int>(powered.size()) == geom.num_nodes(),
             "powered mask size mismatch");
  if (dead_links != nullptr) {
    FLOV_CHECK(static_cast<int>(dead_links->size()) == geom.num_nodes() * 4,
               "dead-link mask size mismatch");
    dead_links_ = *dead_links;
  }
  const int n = geom.num_nodes();

  // Root the BFS tree at the smallest powered id.
  for (NodeId i = 0; i < n; ++i) {
    if (powered_[i]) {
      root_ = i;
      break;
    }
  }
  FLOV_CHECK(root_ != kInvalidNode, "no powered routers");

  std::deque<NodeId> q{root_};
  level_[root_] = 0;
  while (!q.empty()) {
    const NodeId a = q.front();
    q.pop_front();
    for (Direction d : kMeshDirections) {
      const NodeId b = geom.neighbor(a, d);
      if (b == kInvalidNode || !powered_[b] || level_[b] >= 0) continue;
      if (!edge_ok(a, d)) continue;
      level_[b] = level_[a] + 1;
      q.push_back(b);
    }
  }

  // Per-destination backward BFS on the (node, phase) product graph.
  dist_.assign(n, {});
  for (NodeId dest = 0; dest < n; ++dest) {
    if (!powered_[dest] || level_[dest] < 0) continue;
    auto& dist = dist_[dest];
    dist.assign(2 * n, -1);
    std::deque<int> bfs;
    dist[state(dest, false)] = 0;
    dist[state(dest, true)] = 0;
    bfs.push_back(state(dest, false));
    bfs.push_back(state(dest, true));
    while (!bfs.empty()) {
      const int s = bfs.front();
      bfs.pop_front();
      const NodeId b = s / 2;
      const bool phase_b = (s % 2) != 0;
      // Find predecessors (a, phase_a) with a legal edge a->b reaching
      // exactly (b, phase_b).
      for (Direction d : kMeshDirections) {
        const NodeId a = geom.neighbor(b, d);
        if (a == kInvalidNode || !powered_[a] || level_[a] < 0) continue;
        if (!edge_ok(b, d)) continue;
        const Direction a_to_b = opposite(d);
        const bool up = is_up_link(a, a_to_b);
        if (up) {
          // Legal only from phase_a == false, resulting phase stays false.
          if (phase_b) continue;
          const int sa = state(a, false);
          if (dist[sa] < 0) {
            dist[sa] = static_cast<std::int16_t>(dist[s] + 1);
            bfs.push_back(sa);
          }
        } else {
          // Down link: legal from either phase, resulting phase is true.
          if (!phase_b) continue;
          for (const bool pa : {false, true}) {
            const int sa = state(a, pa);
            if (dist[sa] < 0) {
              dist[sa] = static_cast<std::int16_t>(dist[s] + 1);
              bfs.push_back(sa);
            }
          }
        }
      }
    }
    // A destination also terminates paths that arrive in phase false via an
    // up link; the two start states above already cover both arrivals.
  }
}

bool UpDownRoutes::edge_ok(NodeId a, Direction d) const {
  if (dead_links_.empty()) return true;
  const NodeId b = geom_.neighbor(a, d);
  return !dead_links_[a * 4 + dir_index(d)] &&
         !dead_links_[b * 4 + dir_index(opposite(d))];
}

bool UpDownRoutes::is_up_link(NodeId a, Direction d) const {
  const NodeId b = geom_.neighbor(a, d);
  FLOV_DCHECK(b != kInvalidNode, "up-link query off edge");
  if (level_[b] != level_[a]) return level_[b] < level_[a];
  return b < a;
}

std::optional<UpDownRoutes::Hop> UpDownRoutes::next_hop(NodeId from,
                                                        NodeId dest,
                                                        bool went_down) const {
  if (from == dest) return std::nullopt;
  if (dist_[dest].empty()) return std::nullopt;
  const auto& dist = dist_[dest];
  const int here = dist[state(from, went_down)];
  if (here < 0) return std::nullopt;
  for (Direction d : kMeshDirections) {
    const NodeId b = geom_.neighbor(from, d);
    if (b == kInvalidNode || !powered_[b] || level_[b] < 0) continue;
    if (!edge_ok(from, d)) continue;
    const bool up = is_up_link(from, d);
    if (up && went_down) continue;  // illegal move
    const bool phase_after = went_down || !up;
    const int next = dist[state(b, phase_after)];
    if (next >= 0 && next == here - 1) {
      return Hop{d, phase_after};
    }
  }
  FLOV_CHECK(false, "inconsistent up*/down* distance table");
  return std::nullopt;
}

bool UpDownRoutes::reachable(NodeId from, NodeId dest) const {
  if (from == dest) return powered_[from];
  if (dist_[dest].empty()) return false;
  return dist_[dest][state(from, false)] >= 0;
}

int UpDownRoutes::path_len(NodeId from, NodeId dest) const {
  if (from == dest) return 0;
  if (dist_[dest].empty()) return -1;
  return dist_[dest][state(from, false)];
}

bool UpDownRoutes::all_powered_connected() const {
  for (NodeId i = 0; i < geom_.num_nodes(); ++i) {
    if (powered_[i] && level_[i] < 0) return false;
  }
  return true;
}

}  // namespace flov
