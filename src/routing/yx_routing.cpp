#include "routing/yx_routing.hpp"

namespace flov {

RouteDecision YxRouting::route(const RouteContext& ctx, const Flit& flit) {
  const Coord me = geom_.coord(ctx.current);
  const Coord d = geom_.coord(flit.dest);
  if (d.y < me.y) return {Direction::North, false};
  if (d.y > me.y) return {Direction::South, false};
  if (d.x < me.x) return {Direction::West, false};
  if (d.x > me.x) return {Direction::East, false};
  return {Direction::Local, false};
}

RouteDecision XyRouting::route(const RouteContext& ctx, const Flit& flit) {
  const Coord me = geom_.coord(ctx.current);
  const Coord d = geom_.coord(flit.dest);
  if (d.x < me.x) return {Direction::West, false};
  if (d.x > me.x) return {Direction::East, false};
  if (d.y < me.y) return {Direction::North, false};
  if (d.y > me.y) return {Direction::South, false};
  return {Direction::Local, false};
}

}  // namespace flov
