// Baseline dimension-order YX routing (Table I): traverse Y first, then X.
// Deadlock-free with a single VC class; the escape sub-network is unused.
#pragma once

#include "common/geometry.hpp"
#include "noc/routing_iface.hpp"

namespace flov {

class YxRouting final : public RoutingFunction {
 public:
  explicit YxRouting(const MeshGeometry& geom) : geom_(geom) {}

  RouteDecision route(const RouteContext& ctx, const Flit& flit) override;

 private:
  const MeshGeometry& geom_;
};

/// XY variant (X first), used by tests and ablations.
class XyRouting final : public RoutingFunction {
 public:
  explicit XyRouting(const MeshGeometry& geom) : geom_(geom) {}

  RouteDecision route(const RouteContext& ctx, const Flit& flit) override;

 private:
  const MeshGeometry& geom_;
};

}  // namespace flov
