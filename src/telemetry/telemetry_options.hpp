// Runtime telemetry knobs, parsed from the flat key=value config:
//   telemetry.trace          category mask ("all", "flit,power", "0x7f"; "" = off)
//   telemetry.trace_capacity ring-buffer capacity in events
//   telemetry.metrics_window time-series sample interval in cycles (0 = off)
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "common/types.hpp"
#include "telemetry/trace.hpp"

namespace flov::telemetry {

struct TelemetryOptions {
  /// Trace category mask (TraceCategory bits). 0 = tracing off; no Tracer
  /// is even allocated, so an untraced run pays nothing at runtime.
  std::uint32_t trace_mask = 0;
  std::size_t trace_capacity = 1u << 20;
  /// Sample interval for the fabric time-series metrics (0 = final
  /// snapshot only).
  Cycle metrics_window = 0;

  static TelemetryOptions from_config(const Config& cfg) {
    TelemetryOptions o;
    o.trace_mask =
        trace_mask_from_string(cfg.get_string("telemetry.trace", ""));
    o.trace_capacity = static_cast<std::size_t>(cfg.get_int(
        "telemetry.trace_capacity", static_cast<long long>(o.trace_capacity)));
    o.metrics_window =
        cfg.get_int("telemetry.metrics_window", o.metrics_window);
    return o;
  }
};

}  // namespace flov::telemetry
