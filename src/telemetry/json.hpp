// Minimal JSON support for the telemetry layer.
//
// JsonWriter is a streaming writer over a std::string: callers push
// objects/arrays/keys/values and the writer handles commas, quoting and
// escaping. Doubles are rendered with %.17g so a value round-trips
// bit-exactly — manifests produced by bit-identical runs must themselves be
// bit-identical (the sweep-determinism CI gate diffs them byte-for-byte).
//
// JsonValue is a small recursive-descent parser for the same dialect
// (objects, arrays, strings, numbers, bools, null). It exists so the trace
// round-trip test and tooling can re-read what the writers emit without an
// external dependency; it is not a general-purpose validating parser.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace flov::telemetry {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Starts a key inside an object; follow with exactly one value/container.
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();
  /// Splices pre-rendered JSON verbatim (caller guarantees validity).
  void raw(const std::string& json);

  // key+value shorthands
  template <typename T>
  void kv(const std::string& k, const T& v) {
    key(k);
    value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  void escape(const std::string& s);

  std::string out_;
  /// True when the next emission at the current nesting level needs a
  /// leading comma.
  std::vector<bool> need_comma_{false};
  bool after_key_ = false;
};

/// Parsed JSON value (tree form).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool has(const std::string& k) const { return obj.count(k) != 0; }
  const JsonValue& at(const std::string& k) const;
  double number_or(double dflt) const {
    return kind == Kind::kNumber ? num : dflt;
  }

  /// Parses `text`; aborts (FLOV_CHECK) on malformed input.
  static JsonValue parse(const std::string& text);

  /// Tolerant variant for inputs that may legitimately be damaged (e.g. a
  /// checkpoint file truncated by a crash): returns false instead of
  /// aborting, leaving `*out` unspecified.
  static bool try_parse(const std::string& text, JsonValue* out);
};

}  // namespace flov::telemetry
