#include "telemetry/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace flov::telemetry {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
}

void JsonWriter::escape(const std::string& s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_.push_back(false);
}

void JsonWriter::end_object() {
  FLOV_CHECK(need_comma_.size() > 1, "unbalanced end_object");
  need_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  need_comma_.push_back(false);
}

void JsonWriter::end_array() {
  FLOV_CHECK(need_comma_.size() > 1, "unbalanced end_array");
  need_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& k) {
  comma();
  escape(k);
  out_ += ':';
  after_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma();
  escape(v);
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  comma();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %.17g renders integral doubles without a decimal point ("3"); that is
  // valid JSON, and the parser reads it back as the same double.
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  comma();
  out_ += "null";
}

void JsonWriter::raw(const std::string& json) {
  comma();
  out_ += json;
}

namespace {

/// Thrown by the tolerant parse path instead of FLOV_CHECK-aborting.
struct ParseError {};

struct Parser {
  const std::string& s;
  std::size_t pos = 0;
  bool tolerant = false;

  [[noreturn]] void fail(const std::string& msg) {
    if (tolerant) throw ParseError{};
    FLOV_CHECK(false, msg);
    std::abort();  // unreachable; FLOV_CHECK(false) does not return
  }

  void check(bool cond, const std::string& msg) {
    if (!cond) fail(msg);
  }

  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      pos++;
  }

  char peek() {
    skip_ws();
    check(pos < s.size(), "json: unexpected end of input");
    return s[pos];
  }

  void expect(char c) {
    check(peek() == c, std::string("json: expected '") + c + "' at offset " +
                           std::to_string(pos));
    pos++;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      check(pos < s.size(), "json: unterminated string");
      char c = s[pos++];
      if (c == '"') break;
      if (c == '\\') {
        check(pos < s.size(), "json: bad escape");
        char e = s[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            check(pos + 4 <= s.size(), "json: bad \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::strtoul(s.substr(pos, 4).c_str(), nullptr, 16));
            pos += 4;
            // The writer only emits \u00xx for control bytes.
            out += static_cast<char>(code & 0xff);
            break;
          }
          default:
            fail(std::string("json: unknown escape \\") + e);
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_value() {
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      v.kind = JsonValue::Kind::kObject;
      pos++;
      if (peek() == '}') {
        pos++;
        return v;
      }
      while (true) {
        const std::string k = parse_string();
        expect(':');
        v.obj[k] = parse_value();
        if (peek() == ',') {
          pos++;
          continue;
        }
        expect('}');
        break;
      }
    } else if (c == '[') {
      v.kind = JsonValue::Kind::kArray;
      pos++;
      if (peek() == ']') {
        pos++;
        return v;
      }
      while (true) {
        v.arr.push_back(parse_value());
        if (peek() == ',') {
          pos++;
          continue;
        }
        expect(']');
        break;
      }
    } else if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
    } else if (c == 't') {
      check(s.compare(pos, 4, "true") == 0, "json: bad literal");
      pos += 4;
      v.kind = JsonValue::Kind::kBool;
      v.b = true;
    } else if (c == 'f') {
      check(s.compare(pos, 5, "false") == 0, "json: bad literal");
      pos += 5;
      v.kind = JsonValue::Kind::kBool;
      v.b = false;
    } else if (c == 'n') {
      check(s.compare(pos, 4, "null") == 0, "json: bad literal");
      pos += 4;
      v.kind = JsonValue::Kind::kNull;
    } else {
      v.kind = JsonValue::Kind::kNumber;
      char* end = nullptr;
      v.num = std::strtod(s.c_str() + pos, &end);
      check(end != s.c_str() + pos, "json: bad number");
      pos = static_cast<std::size_t>(end - s.c_str());
    }
    return v;
  }
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& k) const {
  auto it = obj.find(k);
  FLOV_CHECK(it != obj.end(), "json: missing key " + k);
  return it->second;
}

JsonValue JsonValue::parse(const std::string& text) {
  Parser p{text};
  JsonValue v = p.parse_value();
  p.skip_ws();
  FLOV_CHECK(p.pos == text.size(), "json: trailing garbage");
  return v;
}

bool JsonValue::try_parse(const std::string& text, JsonValue* out) {
  Parser p{text};
  p.tolerant = true;
  try {
    JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos != text.size()) return false;
    *out = std::move(v);
    return true;
  } catch (const ParseError&) {
    return false;
  }
}

}  // namespace flov::telemetry
