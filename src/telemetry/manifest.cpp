#include "telemetry/manifest.hpp"

#include <cstdio>

#include "common/log.hpp"
#include "telemetry/json.hpp"

namespace flov::telemetry {

std::string build_git_describe() {
#ifdef FLYOVER_GIT_DESCRIBE
  return FLYOVER_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

namespace {

void write_config(JsonWriter& w, const Config& cfg) {
  w.begin_object();
  for (const std::string& k : cfg.keys()) w.kv(k, cfg.get_string(k));
  w.end_object();
}

void write_to_file(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  FLOV_CHECK(f != nullptr, "cannot open manifest file " + path);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

std::string RunManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", schema);
  w.kv("name", name);
  w.kv("scheme", scheme);
  w.kv("git_describe", build_git_describe());
  w.kv("seed", seed);
  w.key("config");
  write_config(w, config);
  w.kv("wall_seconds", wall_seconds);
  w.kv("trace_path", trace_path);
  w.key("metrics");
  if (metrics) {
    metrics->write_json(w);
  } else {
    w.null();
  }
  w.key("incidents");
  if (incidents) {
    incidents->append_json(w);
  } else {
    w.begin_array();
    w.end_array();
  }
  w.end_object();
  return w.take();
}

void RunManifest::write(const std::string& path) const {
  write_to_file(path, to_json());
}

std::string SweepManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", schema);
  w.kv("name", name);
  w.kv("git_describe", build_git_describe());
  w.key("config");
  write_config(w, config);
  w.kv("jobs", static_cast<std::int64_t>(jobs));
  w.kv("wall_seconds", wall_seconds);
  w.key("points");
  w.begin_array();
  for (const SweepPointEntry& p : points) {
    w.begin_object();
    w.kv("scheme", p.scheme);
    w.kv("pattern", p.pattern);
    w.kv("inj", p.inj_rate);
    w.kv("gated", p.gated_fraction);
    w.kv("seed", p.seed);
    w.key("metrics");
    if (p.metrics) {
      p.metrics->write_json(w);
    } else {
      w.null();
    }
    w.end_object();
  }
  w.end_array();
  w.key("merged_metrics");
  if (merged) {
    merged->write_json(w);
  } else {
    w.null();
  }
  w.key("incidents");
  if (incidents) {
    incidents->append_json(w);
  } else {
    w.begin_array();
    w.end_array();
  }
  w.end_object();
  return w.take();
}

void SweepManifest::write(const std::string& path) const {
  write_to_file(path, to_json());
}

std::string CertificateManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", schema);
  w.kv("name", name);
  w.kv("git_describe", build_git_describe());
  w.key("config");
  write_config(w, config);
  w.kv("config_fingerprint", config_fingerprint);
  w.kv("seed_base", seed_base);
  w.kv("replications", replications);
  w.kv("max_replications", max_replications);
  w.kv("confidence", confidence);
  w.kv("target_metric", target_metric);
  w.kv("target", target);
  w.kv("stop_reason", stop_reason);
  w.kv("jobs", static_cast<std::int64_t>(jobs));
  w.kv("wall_seconds", wall_seconds);
  w.key("metrics");
  w.begin_array();
  for (const CertifiedMetric& m : metrics) {
    w.begin_object();
    w.kv("name", m.name);
    w.kv("successes", m.successes);
    w.kv("trials", m.trials);
    w.kv("point", m.point);
    w.kv("wilson_lower", m.wilson_lower);
    w.kv("wilson_upper", m.wilson_upper);
    w.kv("clopper_pearson_lower", m.clopper_pearson_lower);
    w.kv("clopper_pearson_upper", m.clopper_pearson_upper);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void CertificateManifest::write(const std::string& path) const {
  write_to_file(path, to_json());
}

}  // namespace flov::telemetry
