// Metrics registry: named counters / gauges / stats / histograms /
// windowed time-series, registered by the simulator's subsystems (Network,
// HSC aggregates, PowerTracker, FabricManager, the escape-VC router path,
// LatencyStats) and merged deterministically across sweep-runner threads.
//
// Determinism contract: iteration is always in sorted-name order
// (std::map), doubles serialize with %.17g, and merge() is a pure fold —
// run_sweep folds per-point registries in SUBMISSION order, so a jobs=N
// sweep produces byte-identical merged output to jobs=1 (the CI manifest
// diff enforces this).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace flov::telemetry {

class JsonWriter;

class MetricsRegistry {
 public:
  /// `series_window`: bucket width for time-series created by series();
  /// 0 defers to the per-series default (1024 cycles).
  explicit MetricsRegistry(Cycle series_window = 0)
      : series_window_(series_window) {}

  /// Monotonic counter (created at 0 on first use).
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  /// Point-in-time value (created at 0.0 on first use).
  double& gauge(const std::string& name) { return gauges_[name]; }
  /// Streaming accumulator (mean/min/max/stddev).
  StatAccumulator& stat(const std::string& name) { return stats_[name]; }
  /// Fixed-bin histogram; bounds are fixed on first use and must match on
  /// every later call (and across merged registries).
  Histogram& histogram(const std::string& name, double lo, double hi,
                       int bins);
  /// Windowed time-series; add samples with TimeSeries::add(cycle, value).
  TimeSeries& series(const std::string& name);
  /// As above but with an explicit bucket width on first use (sweep
  /// checkpoint restore, which must reproduce the original window rather
  /// than this registry's default). Must match if the series exists.
  TimeSeries& series(const std::string& name, Cycle window);

  bool has_counter(const std::string& name) const {
    return counters_.count(name) != 0;
  }
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, StatAccumulator>& stats() const {
    return stats_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return hists_;
  }
  const std::map<std::string, TimeSeries>& all_series() const {
    return series_;
  }

  /// Folds `other` into this registry: counters add, stats/histograms/
  /// time-series merge (StatAccumulator::merge under the hood), and each
  /// of other's GAUGES becomes one sample of this registry's stat of the
  /// same name (a per-run point value aggregates into a distribution —
  /// e.g. 36 runs' "power.total_mw" gauges merge into count/mean/min/max).
  void merge(const MetricsRegistry& other);

  /// Flat snapshot for manifest diffing / bench_compare: counters and
  /// gauges verbatim, stats as <name>.mean/.count.
  std::map<std::string, double> snapshot() const;

  /// Serializes the full registry as one JSON object.
  void write_json(JsonWriter& w) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && stats_.empty() &&
           hists_.empty() && series_.empty();
  }

 private:
  Cycle series_window_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, StatAccumulator> stats_;
  std::map<std::string, Histogram> hists_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace flov::telemetry
