#include "telemetry/structured_sink.hpp"

#include <cstdio>

#include "common/log.hpp"
#include "telemetry/json.hpp"

namespace flov::telemetry {

void StructuredSink::append_json(JsonWriter& w) const {
  w.begin_array();
  for (const std::string& r : records_) w.raw(r);
  w.end_array();
}

void StructuredSink::write(const std::string& path) const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "flyover-incidents-v1");
  w.key("incidents");
  append_json(w);
  w.end_object();
  std::FILE* f = std::fopen(path.c_str(), "w");
  FLOV_CHECK(f != nullptr, "cannot open incidents file " + path);
  const std::string& json = w.str();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace flov::telemetry
