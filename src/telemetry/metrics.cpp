#include "telemetry/metrics.hpp"

#include "common/log.hpp"
#include "telemetry/json.hpp"

namespace flov::telemetry {

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, int bins) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, Histogram(lo, hi, bins)).first;
  } else {
    FLOV_CHECK(it->second.bins().size() == static_cast<std::size_t>(bins) &&
                   it->second.bin_low(0) == lo,
               "histogram re-registered with different bounds: " + name);
  }
  return it->second;
}

TimeSeries& MetricsRegistry::series(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    const Cycle w = series_window_ ? series_window_ : 1024;
    it = series_.emplace(name, TimeSeries(w)).first;
  }
  return it->second;
}

TimeSeries& MetricsRegistry::series(const std::string& name, Cycle window) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(window)).first;
  } else {
    FLOV_CHECK(it->second.window() == window,
               "series re-registered with different window: " + name);
  }
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) stats_[name].add(v);
  for (const auto& [name, acc] : other.stats_) stats_[name].merge(acc);
  for (const auto& [name, h] : other.hists_) {
    auto it = hists_.find(name);
    if (it == hists_.end()) {
      hists_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
  for (const auto& [name, ts] : other.series_) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      series_.emplace(name, ts);
    } else {
      it->second.merge(ts);
    }
  }
}

std::map<std::string, double> MetricsRegistry::snapshot() const {
  std::map<std::string, double> out;
  for (const auto& [name, v] : counters_) {
    out[name] = static_cast<double>(v);
  }
  for (const auto& [name, v] : gauges_) out[name] = v;
  for (const auto& [name, acc] : stats_) {
    out[name + ".mean"] = acc.mean();
    out[name + ".count"] = static_cast<double>(acc.count());
  }
  return out;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : counters_) w.kv(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : gauges_) w.kv(name, v);
  w.end_object();
  w.key("stats");
  w.begin_object();
  for (const auto& [name, acc] : stats_) {
    w.key(name);
    w.begin_object();
    w.kv("count", acc.count());
    w.kv("mean", acc.mean());
    w.kv("min", acc.min());
    w.kv("max", acc.max());
    w.kv("stddev", acc.stddev());
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : hists_) {
    w.key(name);
    w.begin_object();
    w.kv("lo", h.bin_low(0));
    w.kv("hi", h.bin_low(static_cast<int>(h.bins().size())));
    w.kv("count", h.count());
    w.kv("clamped_low", h.clamped_low());
    w.kv("clamped_high", h.clamped_high());
    w.key("bins");
    w.begin_array();
    // Sparse encoding: [index, count] pairs for non-empty bins only.
    for (std::size_t i = 0; i < h.bins().size(); ++i) {
      if (h.bins()[i] == 0) continue;
      w.begin_array();
      w.value(static_cast<std::uint64_t>(i));
      w.value(h.bins()[i]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("series");
  w.begin_object();
  for (const auto& [name, ts] : series_) {
    w.key(name);
    w.begin_object();
    w.kv("window", static_cast<std::uint64_t>(ts.window()));
    w.key("points");
    w.begin_array();
    for (const TimeSeries::Point& p : ts.points()) {
      w.begin_array();
      w.value(static_cast<std::uint64_t>(p.window_start));
      w.value(p.mean);
      w.value(p.count);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace flov::telemetry
