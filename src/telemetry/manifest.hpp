// Structured run manifests: every experiment/bench can emit a JSON
// document describing what ran (config, seed, git describe), what it cost
// (wall time), and what it measured (metric snapshot, trace path,
// incidents) — so sweep outputs are self-describing artifacts that
// scripts/bench_compare.py and CI can consume without re-running anything.
//
// Two schemas share this writer:
//   flyover-run-manifest-v1    one simulation (flov_sim_cli, experiments)
//   flyover-sweep-manifest-v1  a sweep: per-point entries + merged metrics
//
// Volatile fields (wall_seconds, jobs, trace_path) are the ONLY fields
// allowed to differ between a serial and a parallel sweep of the same
// configuration; scripts/validate_telemetry.py --diff-manifests strips
// exactly those before comparing byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/structured_sink.hpp"

namespace flov::telemetry {

/// `git describe` of the build (captured at configure time), or "unknown".
std::string build_git_describe();

struct RunManifest {
  std::string schema = "flyover-run-manifest-v1";
  std::string name;           ///< experiment/bench identifier
  std::string scheme;         ///< Baseline/RP/rFLOV/gFLOV ("" for sweeps)
  Config config;              ///< flat resolved key=value configuration
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;  ///< volatile
  std::string trace_path;     ///< volatile ("" = no trace exported)
  const MetricsRegistry* metrics = nullptr;   ///< borrowed; may be null
  const StructuredSink* incidents = nullptr;  ///< borrowed; may be null

  std::string to_json() const;
  void write(const std::string& path) const;
};

/// One sweep point inside a SweepManifest.
struct SweepPointEntry {
  std::string scheme;
  std::string pattern;
  double inj_rate = 0.0;
  double gated_fraction = 0.0;
  std::uint64_t seed = 0;
  const MetricsRegistry* metrics = nullptr;  ///< borrowed; may be null
};

struct SweepManifest {
  std::string schema = "flyover-sweep-manifest-v1";
  std::string name;
  Config config;
  int jobs = 0;               ///< volatile
  double wall_seconds = 0.0;  ///< volatile
  std::vector<SweepPointEntry> points;
  const MetricsRegistry* merged = nullptr;    ///< borrowed; may be null
  const StructuredSink* incidents = nullptr;  ///< borrowed; may be null

  std::string to_json() const;
  void write(const std::string& path) const;
};

/// One certified metric inside a CertificateManifest: the Bernoulli counts
/// it was estimated from plus both interval families (Wilson for the
/// regression gate, Clopper-Pearson for the conservative claim).
struct CertifiedMetric {
  std::string name;
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;
  double point = 0.0;
  double wilson_lower = 0.0;
  double wilson_upper = 1.0;
  double clopper_pearson_lower = 0.0;
  double clopper_pearson_upper = 1.0;
};

/// Certification campaign output (schema flyover-certificate-v1): the
/// statistically certified reliability claim produced by src/sim/certify.
/// Deterministic by construction — every non-volatile field is a pure
/// function of (config, seed_base, stopping parameters), so two campaigns
/// over the same inputs emit byte-identical certificates regardless of
/// jobs= or kill-and-resume (validate_telemetry.py --diff-manifests strips
/// exactly jobs/wall_seconds before comparing).
struct CertificateManifest {
  std::string schema = "flyover-certificate-v1";
  std::string name;
  Config config;  ///< fully resolved base config (fault knobs echoed)
  /// hex16 sweep-point fingerprint of the base config at seed_base (the
  /// same fingerprint family the sweep checkpoints key on).
  std::string config_fingerprint;
  std::uint64_t seed_base = 0;
  std::uint64_t replications = 0;      ///< folded into the estimators
  std::uint64_t max_replications = 0;  ///< the campaign's hard cap
  double confidence = 0.0;
  std::string target_metric;
  double target = 0.0;  ///< SPRT reliability target (0 = none armed)
  std::string stop_reason;
  int jobs = 0;               ///< volatile
  double wall_seconds = 0.0;  ///< volatile
  std::vector<CertifiedMetric> metrics;

  std::string to_json() const;
  void write(const std::string& path) const;
};

}  // namespace flov::telemetry
