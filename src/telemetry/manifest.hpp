// Structured run manifests: every experiment/bench can emit a JSON
// document describing what ran (config, seed, git describe), what it cost
// (wall time), and what it measured (metric snapshot, trace path,
// incidents) — so sweep outputs are self-describing artifacts that
// scripts/bench_compare.py and CI can consume without re-running anything.
//
// Two schemas share this writer:
//   flyover-run-manifest-v1    one simulation (flov_sim_cli, experiments)
//   flyover-sweep-manifest-v1  a sweep: per-point entries + merged metrics
//
// Volatile fields (wall_seconds, jobs, trace_path) are the ONLY fields
// allowed to differ between a serial and a parallel sweep of the same
// configuration; scripts/validate_telemetry.py --diff-manifests strips
// exactly those before comparing byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/structured_sink.hpp"

namespace flov::telemetry {

/// `git describe` of the build (captured at configure time), or "unknown".
std::string build_git_describe();

struct RunManifest {
  std::string schema = "flyover-run-manifest-v1";
  std::string name;           ///< experiment/bench identifier
  std::string scheme;         ///< Baseline/RP/rFLOV/gFLOV ("" for sweeps)
  Config config;              ///< flat resolved key=value configuration
  std::uint64_t seed = 0;
  double wall_seconds = 0.0;  ///< volatile
  std::string trace_path;     ///< volatile ("" = no trace exported)
  const MetricsRegistry* metrics = nullptr;   ///< borrowed; may be null
  const StructuredSink* incidents = nullptr;  ///< borrowed; may be null

  std::string to_json() const;
  void write(const std::string& path) const;
};

/// One sweep point inside a SweepManifest.
struct SweepPointEntry {
  std::string scheme;
  std::string pattern;
  double inj_rate = 0.0;
  double gated_fraction = 0.0;
  std::uint64_t seed = 0;
  const MetricsRegistry* metrics = nullptr;  ///< borrowed; may be null
};

struct SweepManifest {
  std::string schema = "flyover-sweep-manifest-v1";
  std::string name;
  Config config;
  int jobs = 0;               ///< volatile
  double wall_seconds = 0.0;  ///< volatile
  std::vector<SweepPointEntry> points;
  const MetricsRegistry* merged = nullptr;    ///< borrowed; may be null
  const StructuredSink* incidents = nullptr;  ///< borrowed; may be null

  std::string to_json() const;
  void write(const std::string& path) const;
};

}  // namespace flov::telemetry
