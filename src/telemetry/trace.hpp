// Low-overhead event tracer: per-thread ring buffers of typed simulator
// events with a Chrome-trace-event JSON exporter (loads directly in
// Perfetto / chrome://tracing).
//
// Cost model (the zero-overhead rule, see docs/OBSERVABILITY.md):
//   * compiled out (FLYOVER_TRACING=0, the Release default): every
//     FLOV_TRACE site is an empty statement — no code, no data;
//   * compiled in but no tracer installed, or the event's category masked
//     off: one thread-local load + one branch;
//   * enabled: one bounds check + a 32-byte store into a preallocated ring
//     (the ring overwrites its oldest events when full, keeping the most
//     recent window — the useful one when diagnosing how a run ended).
//
// Each sweep-runner thread installs its own Tracer via TraceScope (the
// thread-local current-tracer pointer), so concurrent runs never share a
// buffer and traces are bit-identical to serial execution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace flov::telemetry {

/// Runtime category mask: an event is recorded iff its category bit is set
/// in the installed tracer's mask.
enum TraceCategory : std::uint32_t {
  kTraceFlit = 1u << 0,       ///< flit lifecycle: gen/inject/VA/SA/ST/latch/eject
  kTraceHandshake = 1u << 1,  ///< HSC episodes: begin/retry/abort/complete
  kTracePower = 1u << 2,      ///< router power-mode transitions
  kTraceEpoch = 1u << 3,      ///< RP fabric-manager reconfiguration epochs
  kTraceRecovery = 1u << 4,   ///< watchdog stalls and recovery attempts
  kTraceFault = 1u << 5,      ///< injected faults (signal/flit fates)
  kTraceVerify = 1u << 6,     ///< invariant-verifier violations
  kTraceAll = (1u << 7) - 1,
};

/// Parses a category-mask spec: "all", "none", a comma-separated category
/// list ("flit,power,handshake"), or a raw number ("0x7f"/"35").
std::uint32_t trace_mask_from_string(const std::string& spec);

enum class TraceEventType : std::uint8_t {
  // kTraceFlit
  kPacketGen = 0,     ///< descriptor entered the source NI queue
  kPacketInject,      ///< head flit left the source queue (stream opened)
  kVcAlloc,           ///< head flit won VC allocation
  kSwitchGrant,       ///< switch allocation granted (head flit at front)
  kSwitchTraversal,   ///< head flit crossed the switch (+link if non-local)
  kFlovLatch,         ///< head flit forwarded by a FLOV bypass latch
  kPacketEject,       ///< tail consumed at the destination NI
  kEscapeDivert,      ///< deadlock timeout diverted the packet to escape VCs
  // kTraceHandshake
  kHsDrainBegin,
  kHsWakeBegin,
  kHsRetry,
  kHsDrainAbort,
  kHsSleepEnter,      ///< drain episode completed -> Sleep
  kHsWakeComplete,    ///< wake episode completed -> Active
  // kTracePower
  kPowerMode,
  // kTraceEpoch
  kEpochBegin,
  kEpochApply,
  kEpochComplete,
  // kTraceRecovery
  kWatchdogStall,
  kRecoveryAttempt,
  // kTraceFault
  kFaultSignalDrop,
  kFaultSignalDelay,
  kFaultSignalDup,
  kFaultFlitDrop,
  kFaultFlitDelay,
  kFaultSpuriousWake,
  kFaultPayloadFlip,
  kFaultPsrFlip,
  // kTraceVerify
  kVerifyViolation,
  kNumTraceEventTypes
};

const char* trace_event_name(TraceEventType t);
TraceCategory trace_event_category(TraceEventType t);
const char* trace_category_name(TraceCategory c);
/// Per-type semantic names for the two payload words (shown in Perfetto).
const char* trace_event_arg0(TraceEventType t);
const char* trace_event_arg1(TraceEventType t);

/// 32-byte POD event record.
struct TraceEvent {
  Cycle cycle = 0;
  std::uint64_t a = 0;  ///< first payload word (meaning depends on type)
  std::uint64_t b = 0;  ///< second payload word
  std::int32_t node = -1;  ///< router/NI id; -1 = system-wide
  TraceEventType type = TraceEventType::kPacketGen;

  bool operator==(const TraceEvent& o) const {
    return cycle == o.cycle && a == o.a && b == o.b && node == o.node &&
           type == o.type;
  }
};

/// Cache-line aligned (64 bytes): per-domain shard tracers are written
/// concurrently by the domain workers (record() bumps head_/size_ and the
/// ring slot every traced event), so two shards' member blocks must never
/// share a line.
class alignas(64) Tracer {
 public:
  explicit Tracer(std::uint32_t mask, std::size_t capacity = 1u << 20);

  std::uint32_t mask() const { return mask_; }
  bool enabled(std::uint32_t category) const { return (mask_ & category) != 0; }

  void record(TraceEventType type, Cycle cycle, std::int32_t node,
              std::uint64_t a, std::uint64_t b) {
    if (size_ < ring_.size()) {
      ring_[(head_ + size_) % ring_.size()] =
          TraceEvent{cycle, a, b, node, type};
      size_++;
    } else {
      ring_[head_] = TraceEvent{cycle, a, b, node, type};
      head_ = (head_ + 1) % ring_.size();
      overwritten_++;
    }
  }

  /// Events in record order (oldest surviving first). When shards exist
  /// (domain-parallel stepping), returns the merge of every shard plus
  /// this ring, stable-sorted by cycle — within a cycle, domain order
  /// first, control-plane (parent-ring) events last, matching the serial
  /// intra-cycle order.
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  /// Events evicted because a ring wrapped (summed over shards).
  std::uint64_t overwritten() const;

  /// Lazily creates `n` per-domain shard rings (same mask; capacity split
  /// n ways, >= 1024 each) so each domain worker records into its own ring
  /// with zero synchronization. Export merges on demand (events()).
  void ensure_shards(int n);
  int num_shards() const { return static_cast<int>(shards_.size()); }
  Tracer* shard(int i) const { return shards_[static_cast<std::size_t>(i)].get(); }

  /// Chrome-trace-event JSON (object form, {"traceEvents": [...]}).
  /// Handshake episodes additionally emit async begin/end pairs so they
  /// render as spans; every recorded event appears as an instant event.
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  /// Re-parses the instant events of a chrome_trace_json() document back
  /// into TraceEvent records (the round-trip test's other half).
  static std::vector<TraceEvent> parse_chrome_trace(const std::string& json);

 private:
  void append_own(std::vector<TraceEvent>& out) const;

  std::uint32_t mask_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t overwritten_ = 0;
  std::vector<std::unique_ptr<Tracer>> shards_;  ///< per-domain sub-rings
};

/// Thread-local tracer binding. `mask` is 0 whenever no tracer is
/// installed, so the FLOV_TRACE fast path is a single masked branch.
struct ThreadTraceState {
  std::uint32_t mask = 0;
  Tracer* tracer = nullptr;
};
ThreadTraceState& thread_trace_state();

/// RAII installer: binds `t` as the calling thread's tracer for the scope
/// (restores the previous binding on destruction). Pass null for "off".
class TraceScope {
 public:
  explicit TraceScope(Tracer* t);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  ThreadTraceState prev_;
};

}  // namespace flov::telemetry

// Hook-point macro. Compiled to nothing unless the build defines
// FLYOVER_TRACING=1 (CMake option; ON by default except in Release).
#if defined(FLYOVER_TRACING) && FLYOVER_TRACING
#define FLOV_TRACE(category, type, cycle, node, a, b)                     \
  do {                                                                    \
    auto& _flov_tts = ::flov::telemetry::thread_trace_state();            \
    if (_flov_tts.mask & (category)) {                                    \
      _flov_tts.tracer->record((type), (cycle),                           \
                               static_cast<std::int32_t>(node),           \
                               static_cast<std::uint64_t>(a),             \
                               static_cast<std::uint64_t>(b));            \
    }                                                                     \
  } while (0)
#else
#define FLOV_TRACE(category, type, cycle, node, a, b) \
  do {                                                \
  } while (0)
#endif
