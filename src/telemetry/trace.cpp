#include "telemetry/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"
#include "telemetry/json.hpp"

namespace flov::telemetry {

namespace {

struct EventMeta {
  const char* name;
  TraceCategory category;
  const char* arg0;
  const char* arg1;
};

constexpr int kNumTypes = static_cast<int>(TraceEventType::kNumTraceEventTypes);

const EventMeta kEventMeta[kNumTypes] = {
    {"packet_gen", kTraceFlit, "dest", "size_flits"},
    {"packet_inject", kTraceFlit, "packet_id", "dest"},
    {"vc_alloc", kTraceFlit, "packet_id", "out_vc"},
    {"switch_grant", kTraceFlit, "packet_id", "in_port"},
    {"switch_traversal", kTraceFlit, "packet_id", "out_port"},
    {"flov_latch", kTraceFlit, "packet_id", "out_port"},
    {"packet_eject", kTraceFlit, "packet_id", "latency"},
    {"escape_divert", kTraceFlit, "packet_id", "waited_cycles"},
    {"hs_drain_begin", kTraceHandshake, "epoch", "partners"},
    {"hs_wake_begin", kTraceHandshake, "epoch", "partners"},
    {"hs_retry", kTraceHandshake, "partner", "resends"},
    {"hs_drain_abort", kTraceHandshake, "epoch", "aborts"},
    {"hs_sleep_enter", kTraceHandshake, "epoch", "drain_cycles"},
    {"hs_wake_complete", kTraceHandshake, "epoch", "wake_cycles"},
    {"power_mode", kTracePower, "mode", "prev_mode"},
    {"epoch_begin", kTraceEpoch, "reconfig", "unused"},
    {"epoch_apply", kTraceEpoch, "parked", "purged"},
    {"epoch_complete", kTraceEpoch, "reconfig", "duration"},
    {"watchdog_stall", kTraceRecovery, "stalled_cycles", "unused"},
    {"recovery_attempt", kTraceRecovery, "recovered", "unused"},
    {"fault_signal_drop", kTraceFault, "signal_type", "from"},
    {"fault_signal_delay", kTraceFault, "delay", "unused"},
    {"fault_signal_dup", kTraceFault, "signal_type", "from"},
    {"fault_flit_drop", kTraceFault, "packet_id", "unused"},
    {"fault_flit_delay", kTraceFault, "packet_id", "delay"},
    {"fault_spurious_wake", kTraceFault, "target", "unused"},
    {"fault_payload_flip", kTraceFault, "packet_id", "flit_index"},
    {"fault_psr_flip", kTraceFault, "type", "corrupted_value"},
    {"verify_violation", kTraceVerify, "check", "unused"},
};

const EventMeta& meta(TraceEventType t) {
  const int i = static_cast<int>(t);
  FLOV_CHECK(i >= 0 && i < kNumTypes, "bad trace event type");
  return kEventMeta[i];
}

}  // namespace

const char* trace_event_name(TraceEventType t) { return meta(t).name; }
TraceCategory trace_event_category(TraceEventType t) {
  return meta(t).category;
}
const char* trace_event_arg0(TraceEventType t) { return meta(t).arg0; }
const char* trace_event_arg1(TraceEventType t) { return meta(t).arg1; }

const char* trace_category_name(TraceCategory c) {
  switch (c) {
    case kTraceFlit: return "flit";
    case kTraceHandshake: return "handshake";
    case kTracePower: return "power";
    case kTraceEpoch: return "epoch";
    case kTraceRecovery: return "recovery";
    case kTraceFault: return "fault";
    case kTraceVerify: return "verify";
    default: return "?";
  }
}

std::uint32_t trace_mask_from_string(const std::string& spec) {
  if (spec.empty() || spec == "none") return 0;
  if (spec == "all") return kTraceAll;
  if (std::isdigit(static_cast<unsigned char>(spec[0]))) {
    return static_cast<std::uint32_t>(std::strtoul(spec.c_str(), nullptr, 0));
  }
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (tok == "flit") mask |= kTraceFlit;
    else if (tok == "handshake") mask |= kTraceHandshake;
    else if (tok == "power") mask |= kTracePower;
    else if (tok == "epoch") mask |= kTraceEpoch;
    else if (tok == "recovery") mask |= kTraceRecovery;
    else if (tok == "fault") mask |= kTraceFault;
    else if (tok == "verify") mask |= kTraceVerify;
    else FLOV_CHECK(false, "unknown trace category: " + tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return mask;
}

Tracer::Tracer(std::uint32_t mask, std::size_t capacity) : mask_(mask) {
  FLOV_CHECK(capacity > 0, "tracer needs a non-empty ring");
  ring_.resize(capacity);
}

void Tracer::append_own(std::vector<TraceEvent>& out) const {
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  for (const auto& s : shards_) s->append_own(out);
  append_own(out);
  if (!shards_.empty()) {
    // Shard rings interleave by cycle; a stable sort restores global cycle
    // order while keeping the deterministic [shard 0 .. shard n-1, parent]
    // intra-cycle order. Unsharded tracers keep raw record order (tests
    // record synthetic events with arbitrary cycles).
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.cycle < b.cycle;
                     });
  }
  return out;
}

std::size_t Tracer::size() const {
  std::size_t n = size_;
  for (const auto& s : shards_) n += s->size_;
  return n;
}

std::uint64_t Tracer::overwritten() const {
  std::uint64_t n = overwritten_;
  for (const auto& s : shards_) n += s->overwritten_;
  return n;
}

void Tracer::ensure_shards(int n) {
  if (static_cast<int>(shards_.size()) == n) return;
  FLOV_CHECK(shards_.empty(), "tracer shard count cannot change mid-run");
  const std::size_t cap =
      std::max<std::size_t>(1024, ring_.size() / static_cast<std::size_t>(n));
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Tracer>(mask_, cap));
  }
}

std::string Tracer::chrome_trace_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& e : events()) {
    const EventMeta& m = meta(e.type);
    // Every event as a thread-scoped instant event (ph "i"); ts is the
    // simulation cycle interpreted as microseconds, tid is the node.
    w.begin_object();
    w.kv("name", m.name);
    w.kv("cat", trace_category_name(m.category));
    w.kv("ph", "i");
    w.kv("s", "t");
    w.kv("ts", static_cast<std::uint64_t>(e.cycle));
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::int64_t>(e.node));
    w.key("args");
    w.begin_object();
    w.kv(m.arg0, e.a);
    w.kv(m.arg1, e.b);
    w.end_object();
    w.end_object();
    // Handshake episodes additionally as async spans so Perfetto renders
    // drain/wake episodes as bars per router (id = node).
    const bool span_begin = e.type == TraceEventType::kHsDrainBegin ||
                            e.type == TraceEventType::kHsWakeBegin;
    const bool span_end = e.type == TraceEventType::kHsDrainAbort ||
                          e.type == TraceEventType::kHsSleepEnter ||
                          e.type == TraceEventType::kHsWakeComplete;
    if (span_begin || span_end) {
      const bool drain = e.type == TraceEventType::kHsDrainBegin ||
                         e.type == TraceEventType::kHsDrainAbort ||
                         e.type == TraceEventType::kHsSleepEnter;
      w.begin_object();
      w.kv("name", drain ? "drain_episode" : "wake_episode");
      w.kv("cat", "handshake");
      w.kv("ph", span_begin ? "b" : "e");
      w.kv("ts", static_cast<std::uint64_t>(e.cycle));
      w.kv("pid", 0);
      w.kv("tid", static_cast<std::int64_t>(e.node));
      w.kv("id", static_cast<std::int64_t>(e.node));
      w.end_object();
    }
  }
  w.end_array();
  w.key("otherData");
  w.begin_object();
  w.kv("tool", "flyover");
  w.kv("mask", static_cast<std::uint64_t>(mask_));
  w.kv("overwritten", overwritten());
  w.end_object();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.take();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  FLOV_CHECK(f != nullptr, "cannot open trace file " + path);
  const std::string json = chrome_trace_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

std::vector<TraceEvent> Tracer::parse_chrome_trace(const std::string& json) {
  const JsonValue doc = JsonValue::parse(json);
  FLOV_CHECK(doc.is_object() && doc.has("traceEvents"),
             "not a chrome trace document");
  std::vector<TraceEvent> out;
  for (const JsonValue& ev : doc.at("traceEvents").arr) {
    if (ev.at("ph").str != "i") continue;  // async span mirrors are derived
    const std::string& name = ev.at("name").str;
    int type = -1;
    for (int i = 0; i < kNumTypes; ++i) {
      if (name == kEventMeta[i].name) {
        type = i;
        break;
      }
    }
    FLOV_CHECK(type >= 0, "unknown trace event name: " + name);
    const TraceEventType t = static_cast<TraceEventType>(type);
    TraceEvent e;
    e.type = t;
    e.cycle = static_cast<Cycle>(ev.at("ts").num);
    e.node = static_cast<std::int32_t>(ev.at("tid").num);
    e.a = static_cast<std::uint64_t>(ev.at("args").at(meta(t).arg0).num);
    e.b = static_cast<std::uint64_t>(ev.at("args").at(meta(t).arg1).num);
    out.push_back(e);
  }
  return out;
}

ThreadTraceState& thread_trace_state() {
  thread_local ThreadTraceState state;
  return state;
}

TraceScope::TraceScope(Tracer* t) {
  ThreadTraceState& s = thread_trace_state();
  prev_ = s;
  s.tracer = t;
  s.mask = t ? t->mask() : 0;
}

TraceScope::~TraceScope() { thread_trace_state() = prev_; }

}  // namespace flov::telemetry
