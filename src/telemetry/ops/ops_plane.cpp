#include "telemetry/ops/ops_plane.hpp"

#include <cstdio>

#include "common/config.hpp"
#include "noc/system_iface.hpp"
#include "telemetry/json.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/structured_sink.hpp"

namespace flov::ops {

OpsOptions OpsOptions::from_config(const Config& cfg) {
  OpsOptions o;
  if (cfg.has("serve")) o.serve_port = static_cast<int>(cfg.get_int("serve"));
  o.stream_path = cfg.get_string("ops_stream", "");
  o.profile = cfg.get_bool("profile", false);
  o.profile_out = cfg.get_string("profile_out", "");
  o.period =
      static_cast<std::uint64_t>(cfg.get_int("ops.period", 4096));
  if (o.period == 0) o.period = 1;
  return o;
}

OpsPlane::OpsPlane(OpsOptions opt) : opt_(std::move(opt)) {
  start_ns_ = telemetry::profile_now_ns();
  if (opt_.profile) {
    profiler_ = std::make_unique<telemetry::PhaseProfiler>();
  }
  if (!opt_.stream_path.empty()) {
    stream_ = std::fopen(opt_.stream_path.c_str(), "w");
    if (stream_ == nullptr) {
      std::fprintf(stderr, "[ops] cannot open ops_stream %s\n",
                   opt_.stream_path.c_str());
    }
  }
  if (opt_.serve_port >= 0) {
    const bool ok = server_.start(
        static_cast<std::uint16_t>(opt_.serve_port),
        [this](const std::string& path) { return handle(path); });
    if (ok) {
      std::fprintf(stderr, "[ops] serving http://127.0.0.1:%u\n",
                   static_cast<unsigned>(server_.port()));
    }
  }
}

OpsPlane::~OpsPlane() {
  server_.stop();
  if (stream_ != nullptr) std::fclose(stream_);
}

void OpsPlane::begin_run(const RunContext& ctx) {
  ctx_ = ctx;
  run_active_ = true;
  next_fold_ = 0;
  last_fold_cycle_ = 0;
  last_ejected_ = 0;
  have_last_ejected_ = false;
  incidents_seen_ = 0;
  incidents_hard_fault_ = 0;
  incidents_watchdog_ = 0;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_proc_imbalance_ = ctx.proc_imbalance;
  }
  const int n = ctx_.sys->network().num_nodes();
  node_latency_sum_.assign(static_cast<std::size_t>(n), 0);
  node_ejected_packets_.assign(static_cast<std::size_t>(n), 0);
  node_gated_cycles_.assign(static_cast<std::size_t>(n), 0);
  // Passive observer: fires between step barriers in node-id order, writes
  // only ops-owned accumulators — the sim cannot observe it.
  ctx_.sys->network().add_eject_callback([this](const PacketRecord& rec) {
    if (!run_active_) return;
    node_latency_sum_[rec.dest] +=
        static_cast<std::uint64_t>(rec.total_latency());
    node_ejected_packets_[rec.dest] += 1;
  });
}

void OpsPlane::tick(Cycle now) {
  fold(now);
  next_fold_ = now + opt_.period;
}

void OpsPlane::end_run(Cycle now) {
  if (!run_active_) return;
  // Final fold, even off-period: the last published snapshot always
  // reflects the run's end state (this is what ops_test byte-compares
  // across threads= / tiles=).
  if (now != last_fold_cycle_ || seq_ == 0) fold(now);
  run_active_ = false;
  {
    // Detach the health-surfaced callback before the system it reads is
    // destroyed; the HTTP thread takes the same lock in healthz_json.
    std::lock_guard<std::mutex> lock(health_mu_);
    health_proc_imbalance_ = nullptr;
  }
  ctx_ = RunContext{};
}

void OpsPlane::fold(Cycle now) {
  Network& net = ctx_.sys->network();
  const int n = net.num_nodes();

  OpsSnapshot s;
  s.seq = ++seq_;
  s.cycle = now;
  s.total_cycles = ctx_.total_cycles;
  s.scheme = ctx_.scheme;
  s.width = net.params().width;
  s.height = net.params().height;
  s.injected_flits = net.total_injected_flits();
  s.ejected_flits = net.total_ejected_flits();
  s.in_network_flits = net.in_network_flits();
  s.queued_packets = net.total_queued_packets();
  s.hist_overflow = ctx_.hist_overflow ? ctx_.hist_overflow() : 0;
  s.progress = ctx_.total_cycles == 0
                   ? 0.0
                   : static_cast<double>(now) /
                         static_cast<double>(ctx_.total_cycles);

  s.mode.resize(static_cast<std::size_t>(n));
  s.power_state.resize(static_cast<std::size_t>(n));
  s.occupancy.resize(static_cast<std::size_t>(n));
  s.queued.resize(static_cast<std::size_t>(n));
  const Cycle interval = now - last_fold_cycle_;
  for (NodeId id = 0; id < n; ++id) {
    const RouterMode m = net.router(id).mode();
    s.mode[id] = static_cast<std::uint8_t>(m);
    s.power_state[id] = ctx_.sys->power_state_code(id);
    s.occupancy[id] =
        static_cast<std::uint32_t>(net.router(id).buffered_flits());
    s.queued[id] = static_cast<std::uint32_t>(net.ni(id).queued_packets());
    if (m == RouterMode::kBypass || m == RouterMode::kParked) {
      s.gated_routers++;
      node_gated_cycles_[id] += interval;
    } else if (m != RouterMode::kPipeline) {
      // Dead routers are off too; the heatmap should show them dark.
      node_gated_cycles_[id] += interval;
    }
  }
  s.ejected_packets = node_ejected_packets_;
  s.latency_sum = node_latency_sum_;
  s.gated_cycles = node_gated_cycles_;

  if (ctx_.incidents != nullptr) {
    const auto& recs = ctx_.incidents->records();
    for (; incidents_seen_ < recs.size(); ++incidents_seen_) {
      telemetry::JsonValue v;
      if (!telemetry::JsonValue::try_parse(recs[incidents_seen_], &v) ||
          !v.is_object() || !v.has("kind")) {
        continue;
      }
      const std::string& kind = v.at("kind").str;
      if (kind == "hard_fault_summary") incidents_hard_fault_++;
      if (kind == "watchdog_stall") incidents_watchdog_++;
    }
    s.incidents_total = static_cast<std::uint64_t>(recs.size());
  }
  s.incidents_hard_fault = incidents_hard_fault_;
  s.incidents_watchdog_stall = incidents_watchdog_;

  // Liveness: no ejection progress since the previous fold while flits sit
  // in the fabric. Cycle-based, so the flag itself is deterministic.
  s.stalled = have_last_ejected_ && s.ejected_flits == last_ejected_ &&
              s.in_network_flits > 0;
  last_ejected_ = s.ejected_flits;
  have_last_ejected_ = true;
  last_fold_cycle_ = now;

  if (stream_ != nullptr) {
    const std::string line = s.to_json();
    std::fwrite(line.data(), 1, line.size(), stream_);
    std::fputc('\n', stream_);
    std::fflush(stream_);
  }
  publisher_.publish(std::move(s));
}

void OpsPlane::begin_campaign(const std::string& kind,
                              std::uint64_t points_total,
                              const std::string& checkpoint_path) {
  std::lock_guard<std::mutex> lock(campaign_mu_);
  campaign_active_ = true;
  campaign_kind_ = kind;
  campaign_total_ = points_total;
  campaign_checkpoint_ = checkpoint_path;
  campaign_last_done_ = 0;
  seq_ = 0;
  campaign_progress_locked_(0);
}

void OpsPlane::campaign_progress(std::uint64_t points_done) {
  std::lock_guard<std::mutex> lock(campaign_mu_);
  if (!campaign_active_) return;
  // Monotonic filter: under jobs=N completion callbacks may race; the
  // published sequence of done-counts only ever moves forward, and the
  // final snapshot (done == total) is identical for any job count.
  if (points_done < campaign_last_done_) return;
  campaign_progress_locked_(points_done);
}

void OpsPlane::campaign_progress_locked_(std::uint64_t points_done) {
  campaign_last_done_ = points_done;
  OpsSnapshot s;
  s.seq = ++seq_;
  s.campaign = true;
  s.scheme = campaign_kind_;
  s.points_done = points_done;
  s.points_total = campaign_total_;
  s.checkpoint_path = campaign_checkpoint_;
  s.progress = campaign_total_ == 0
                   ? 0.0
                   : static_cast<double>(points_done) /
                         static_cast<double>(campaign_total_);
  if (stream_ != nullptr) {
    const std::string line = s.to_json();
    std::fwrite(line.data(), 1, line.size(), stream_);
    std::fputc('\n', stream_);
    std::fflush(stream_);
  }
  publisher_.publish(std::move(s));
}

void OpsPlane::finish_profile(std::FILE* f) {
  if (!profiler_) return;
#if !defined(FLYOVER_PROFILING) || !FLYOVER_PROFILING
  std::fprintf(f,
               "[profile] note: FLOV_PROFILE hook points are compiled out "
               "(build with -DFLYOVER_PROFILING=ON); report is empty\n");
#endif
  profiler_->print(f);
  if (!opt_.profile_out.empty()) {
    std::FILE* out = std::fopen(opt_.profile_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "[ops] cannot open profile_out %s\n",
                   opt_.profile_out.c_str());
      return;
    }
    const std::string json = profiler_->report_json();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
  }
}

std::string OpsPlane::healthz_json() const {
  auto snap = publisher_.current();
  const OpsSnapshot empty;
  const OpsSnapshot& s = snap ? *snap : empty;
  const std::uint64_t recov = recoveries_.load(std::memory_order_relaxed);
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("schema", "flyover-healthz-v1");
  // Status precedence: stalled > degraded > ok. `degraded` = the run is
  // healthy NOW but self-healed at least once (lost worker / poisoned
  // arena recovered from a checkpoint).
  w.kv("status", s.stalled ? "stalled" : (recov > 0 ? "degraded" : "ok"));
  w.kv("build", telemetry::build_git_describe());
  w.kv("scheme", s.scheme);
  w.kv("campaign", s.campaign);
  w.kv("cycle", s.cycle);
  w.kv("total_cycles", s.total_cycles);
  w.kv("progress", s.progress);
  w.kv("snapshot_seq", s.seq);
  w.kv("stalled", s.stalled);
  w.kv("uptime_seconds",
       static_cast<double>(telemetry::profile_now_ns() - start_ns_) / 1e9);
  w.key("incidents");
  {
    telemetry::JsonWriter g;
    g.begin_object();
    g.kv("total", s.incidents_total);
    g.kv("hard_fault_summary", s.incidents_hard_fault);
    g.kv("watchdog_stall", s.incidents_watchdog_stall);
    g.end_object();
    w.raw(g.take());
  }
  w.kv("hist_overflow", s.hist_overflow);
  w.kv("recoveries", recov);
  w.kv("recovery_wall_seconds",
       static_cast<double>(recovery_wall_ns_.load(std::memory_order_relaxed)) /
           1e9);
  {
    // Live (wall-clock-derived, volatile like uptime) procs= imbalance:
    // 1.0 when single-process or between runs.
    double imbalance = 1.0;
    std::lock_guard<std::mutex> lock(health_mu_);
    if (health_proc_imbalance_) imbalance = health_proc_imbalance_();
    w.kv("proc_busy_imbalance", imbalance);
  }
  w.end_object();
  return w.take();
}

HttpResponse OpsPlane::handle(const std::string& path) const {
  auto snap = publisher_.current();
  const OpsSnapshot empty;
  const OpsSnapshot& s = snap ? *snap : empty;
  HttpResponse r;
  if (path == "/metrics") {
    r.content_type = "text/plain; version=0.0.4";
    r.body = s.prometheus_text();
  } else if (path == "/snapshot") {
    r.body = s.to_json();
  } else if (path == "/heatmap") {
    if (s.width <= 0 || s.height <= 0) {
      r.status = 404;
      r.body = "{\"error\":\"no spatial snapshot (campaign mode?)\"}";
    } else {
      r.body = s.heatmap_json();
    }
  } else if (path == "/healthz") {
    r.body = healthz_json();
  } else {
    r.status = 404;
    r.body = "{\"error\":\"unknown endpoint\",\"endpoints\":[\"/metrics\","
             "\"/snapshot\",\"/heatmap\",\"/healthz\"]}";
  }
  return r;
}

}  // namespace flov::ops
