#include "telemetry/ops/profile.hpp"

#include <algorithm>

#include "telemetry/json.hpp"

namespace flov::telemetry {

const char* profile_phase_name(ProfilePhase p) {
  switch (p) {
    case ProfilePhase::kRoute:
      return "route";
    case ProfilePhase::kVcAlloc:
      return "vc_alloc";
    case ProfilePhase::kSwitchAlloc:
      return "switch_alloc";
    case ProfilePhase::kLink:
      return "link";
    case ProfilePhase::kNi:
      return "ni";
    case ProfilePhase::kPower:
      return "power";
    case ProfilePhase::kBarrier:
      return "barrier";
    case ProfilePhase::kBarrierIpc:
      return "barrier_ipc";
    case ProfilePhase::kMerge:
      return "merge";
    case ProfilePhase::kShmCopy:
      return "shm_copy";
    case ProfilePhase::kOther:
      return "other";
    case ProfilePhase::kNumPhases:
      break;
  }
  return "?";
}

void PhaseProfiler::ensure_domains(int n) {
  while (static_cast<int>(slots_.size()) < n) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

ThreadProfileState& thread_profile_state() {
  thread_local ThreadProfileState state;
  return state;
}

ProfileScope::ProfileScope(PhaseProfiler* p, int domain) {
  ThreadProfileState& s = thread_profile_state();
  prev_ = s;
  s.profiler = p;
  s.domain = domain;
}

ProfileScope::~ProfileScope() { thread_profile_state() = prev_; }

double PhaseProfiler::Report::busy_imbalance() const {
  std::uint64_t max_busy = 0;
  std::uint64_t min_busy = 0;
  bool any = false;
  for (const DomainReport& d : domains) {
    const std::uint64_t b = d.busy_ns();
    if (b == 0) continue;
    if (!any) {
      max_busy = min_busy = b;
      any = true;
    } else {
      max_busy = std::max(max_busy, b);
      min_busy = std::min(min_busy, b);
    }
  }
  if (!any || min_busy == 0) return 1.0;
  return static_cast<double>(max_busy) / static_cast<double>(min_busy);
}

double PhaseProfiler::proc_busy_imbalance() const {
  std::uint64_t max_busy = 0;
  std::uint64_t min_busy = 0;
  bool any = false;
  for (const std::uint64_t b : proc_busy_) {
    if (b == 0) continue;
    if (!any) {
      max_busy = min_busy = b;
      any = true;
    } else {
      max_busy = std::max(max_busy, b);
      min_busy = std::min(min_busy, b);
    }
  }
  if (!any || min_busy == 0) return 1.0;
  return static_cast<double>(max_busy) / static_cast<double>(min_busy);
}

PhaseProfiler::Report PhaseProfiler::report() const {
  Report r;
  r.domains.resize(slots_.size());
  for (std::size_t d = 0; d < slots_.size(); ++d) {
    const Slot& s = *slots_[d];
    r.domains[d].ns = s.ns;
    r.domains[d].calls = s.calls;
    for (int p = 0; p < static_cast<int>(ProfilePhase::kNumPhases); ++p) {
      r.merged.ns[p] += s.ns[p];
      r.merged.calls[p] += s.calls[p];
    }
  }
  return r;
}

namespace {

void write_domain_report(JsonWriter& w, const PhaseProfiler::DomainReport& d) {
  w.begin_object();
  for (int p = 0; p < static_cast<int>(ProfilePhase::kNumPhases); ++p) {
    if (d.calls[p] == 0) continue;
    w.key(profile_phase_name(static_cast<ProfilePhase>(p)));
    JsonWriter pw;
    pw.begin_object();
    pw.kv("ns", d.ns[p]);
    pw.kv("calls", d.calls[p]);
    pw.end_object();
    w.raw(pw.take());
  }
  w.key("busy_ns");
  w.raw(std::to_string(d.busy_ns()));
  w.end_object();
}

}  // namespace

std::string PhaseProfiler::report_json() const {
  const Report r = report();
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "flyover-profile-v1");
  w.kv("num_domains", static_cast<std::uint64_t>(r.domains.size()));
  w.kv("busy_imbalance", r.busy_imbalance());
  w.key("merged");
  {
    JsonWriter mw;
    write_domain_report(mw, r.merged);
    w.raw(mw.take());
  }
  w.key("domains");
  {
    std::string arr = "[";
    for (std::size_t d = 0; d < r.domains.size(); ++d) {
      if (d != 0) arr += ",";
      JsonWriter dw;
      write_domain_report(dw, r.domains[d]);
      arr += dw.take();
    }
    arr += "]";
    w.raw(arr);
  }
  if (!proc_busy_.empty()) {
    w.kv("num_procs", static_cast<std::uint64_t>(proc_busy_.size()));
    w.key("proc_busy_ns");
    {
      std::string arr = "[";
      for (std::size_t p = 0; p < proc_busy_.size(); ++p) {
        if (p != 0) arr += ",";
        arr += std::to_string(proc_busy_[p]);
      }
      arr += "]";
      w.raw(arr);
    }
    w.kv("proc_busy_imbalance", proc_busy_imbalance());
  }
  w.end_object();
  return w.take();
}

void PhaseProfiler::print(std::FILE* f) const {
  const Report r = report();
  const std::uint64_t total = r.merged.total_ns();
  std::fprintf(f, "[profile] phase breakdown (%d domain%s)\n",
               static_cast<int>(r.domains.size()),
               r.domains.size() == 1 ? "" : "s");
  std::fprintf(f, "[profile] %-14s %12s %12s %7s\n", "phase", "ms", "calls",
               "share");
  for (int p = 0; p < static_cast<int>(ProfilePhase::kNumPhases); ++p) {
    if (r.merged.calls[p] == 0) continue;
    const double ms = static_cast<double>(r.merged.ns[p]) / 1e6;
    const double share =
        total == 0 ? 0.0
                   : static_cast<double>(r.merged.ns[p]) /
                         static_cast<double>(total) * 100.0;
    std::fprintf(f, "[profile] %-14s %12.3f %12llu %6.1f%%\n",
                 profile_phase_name(static_cast<ProfilePhase>(p)), ms,
                 static_cast<unsigned long long>(r.merged.calls[p]), share);
  }
  if (r.domains.size() > 1) {
    std::fprintf(f, "[profile] per-domain busy ms:");
    for (const DomainReport& d : r.domains) {
      std::fprintf(f, " %.3f", static_cast<double>(d.busy_ns()) / 1e6);
    }
    std::fprintf(f, "  (imbalance %.2fx)\n", r.busy_imbalance());
  }
  if (!proc_busy_.empty()) {
    std::fprintf(f, "[profile] per-process busy ms:");
    for (const std::uint64_t b : proc_busy_) {
      std::fprintf(f, " %.3f", static_cast<double>(b) / 1e6);
    }
    std::fprintf(f, "  (imbalance %.2fx)\n", proc_busy_imbalance());
  }
}

}  // namespace flov::telemetry
