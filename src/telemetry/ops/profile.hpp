// Wall-clock phase profiler for the cycle loop (the ops plane's answer to
// "where does the stepping time actually go?").
//
// FLOV_PROFILE(phase) opens an RAII scope that attributes its wall-clock
// duration to (current domain, phase). Scopes are placed at the pipeline
// phases of Router::step (route / VC allocation / switch allocation /
// link+switch traversal), the NI loop, the FLOV power/handshake machinery,
// and the step-pool barrier wait — so a profile report shows, per tile
// domain, how stepping time splits across phases and how long the control
// thread waited at the barrier (the tiles= imbalance signal).
//
// Cost model (same ladder as the event tracer, docs/OBSERVABILITY.md):
//   * compiled out (FLYOVER_PROFILING=0, the Release default): every
//     FLOV_PROFILE site is an empty statement — no code, no data. CI's
//     bench gate runs the Release build, so the benchmark configuration
//     never pays for profiling.
//   * compiled in, no profiler bound: one thread-local load + one branch.
//   * bound (profile=1): two steady_clock reads + one add per scope.
//
// Unlike everything else in the telemetry layer, the numbers here are
// WALL-CLOCK and therefore volatile by definition: a profile report is
// never embedded in a manifest — it goes to stderr and/or its own
// flyover-profile-v1 JSON document (profile_out=).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace flov::telemetry {

/// Phases the cycle loop is attributed to. Leaf scopes only: two phases
/// never nest, so per-domain phase times add up without double counting.
enum class ProfilePhase : std::uint8_t {
  kRoute = 0,      ///< Router route computation
  kVcAlloc,        ///< Router VC allocation
  kSwitchAlloc,    ///< Router switch allocation
  kLink,           ///< switch/link traversal + flit acceptance
  kNi,             ///< NetworkInterface stepping
  kPower,          ///< scheme power machinery (HSCs, signal fabric, RP mgr)
  kBarrier,        ///< control thread waiting on the step-pool barrier
  kBarrierIpc,     ///< parent waiting on the cross-process barrier (procs=)
  kMerge,          ///< barrier-side merges (wakes, ejections)
  kShmCopy,        ///< barrier-side channel merges (the shared-memory
                   ///< transport fold when procs > 1; same scope covers the
                   ///< in-process channel merge so procs=1 stays comparable)
  kOther,          ///< anything else a caller chooses to scope
  kNumPhases,
};

const char* profile_phase_name(ProfilePhase p);

inline std::uint64_t profile_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-domain, per-phase wall-clock accumulators. Each domain worker
/// writes only its own cache-line-padded slot (bound via ProfileScope),
/// so domain-parallel stepping profiles without synchronization.
class PhaseProfiler {
 public:
  PhaseProfiler() { ensure_domains(1); }

  /// Lazily grows the per-domain slot table to `n` rows. Must be called
  /// from the control thread while no workers are running (Network::step
  /// does this before releasing the pool each cycle).
  void ensure_domains(int n);
  int num_domains() const { return static_cast<int>(slots_.size()); }

  void add(int domain, ProfilePhase phase, std::uint64_t ns) {
    Slot& s = *slots_[static_cast<std::size_t>(domain)];
    s.ns[static_cast<int>(phase)] += ns;
    s.calls[static_cast<int>(phase)] += 1;
  }

  struct DomainReport {
    std::array<std::uint64_t, static_cast<int>(ProfilePhase::kNumPhases)> ns{};
    std::array<std::uint64_t, static_cast<int>(ProfilePhase::kNumPhases)>
        calls{};
    std::uint64_t total_ns() const {
      std::uint64_t t = 0;
      for (std::uint64_t v : ns) t += v;
      return t;
    }
    /// Stepping work only — the barrier/merge phases are control-thread
    /// bookkeeping, not per-domain busy time.
    std::uint64_t busy_ns() const {
      return total_ns() - ns[static_cast<int>(ProfilePhase::kBarrier)] -
             ns[static_cast<int>(ProfilePhase::kBarrierIpc)] -
             ns[static_cast<int>(ProfilePhase::kMerge)] -
             ns[static_cast<int>(ProfilePhase::kShmCopy)];
    }
  };

  struct Report {
    std::vector<DomainReport> domains;
    DomainReport merged;  ///< fold of every domain
    /// max/min per-domain busy_ns over domains that did any work — the
    /// barrier-wait imbalance signal guiding the tiles= auto policy
    /// (1.0 = perfectly balanced; 0 domains busy reports 1.0).
    double busy_imbalance() const;
  };

  Report report() const;

  /// Per-PROCESS busy nanoseconds for procs= runs, bridged from
  /// Network::proc_busy_ns at end of run ([0] = the parent's domain
  /// range). Empty (the default) means single-process: the report omits
  /// the proc_* fields entirely so procs=1 output is unchanged.
  void set_proc_busy(std::vector<std::uint64_t> busy_ns) {
    proc_busy_ = std::move(busy_ns);
  }

  /// max/min busy ratio across processes (1.0 when single-process or
  /// degenerate) — the procs= analogue of Report::busy_imbalance.
  double proc_busy_imbalance() const;

  /// {"schema":"flyover-profile-v1", ...}: per-domain and merged phase
  /// nanoseconds/calls plus the imbalance ratio; procs= runs add
  /// num_procs / proc_busy_ns / proc_busy_imbalance. Written by
  /// profile_out=.
  std::string report_json() const;

  /// Human-readable table (stderr at end of a profile=1 run).
  void print(std::FILE* f) const;

 private:
  struct alignas(64) Slot {
    std::array<std::uint64_t, static_cast<int>(ProfilePhase::kNumPhases)> ns{};
    std::array<std::uint64_t, static_cast<int>(ProfilePhase::kNumPhases)>
        calls{};
  };
  /// unique_ptr rows: growing the table must not move slots a bound
  /// ProfileScope already points at.
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::uint64_t> proc_busy_;  ///< see set_proc_busy

};

/// Thread-local profiler binding (mirrors ThreadTraceState): `profiler` is
/// null whenever profiling is off, so the FLOV_PROFILE fast path is one
/// thread-local load + branch.
struct ThreadProfileState {
  PhaseProfiler* profiler = nullptr;
  int domain = 0;
};
ThreadProfileState& thread_profile_state();

/// RAII binder: installs (profiler, domain) as the calling thread's
/// attribution target for the scope. Pass null to unbind.
class ProfileScope {
 public:
  ProfileScope(PhaseProfiler* p, int domain);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ThreadProfileState prev_;
};

/// The RAII timer behind FLOV_PROFILE. Usable directly from code that is
/// always compiled (tests), independent of the macro gating.
class PhaseTimer {
 public:
  explicit PhaseTimer(ProfilePhase phase) : phase_(phase) {
    const ThreadProfileState& s = thread_trace_profile_state_();
    profiler_ = s.profiler;
    domain_ = s.domain;
    if (profiler_ != nullptr) start_ns_ = profile_now_ns();
  }
  ~PhaseTimer() {
    if (profiler_ != nullptr) {
      profiler_->add(domain_, phase_, profile_now_ns() - start_ns_);
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  static const ThreadProfileState& thread_trace_profile_state_() {
    return thread_profile_state();
  }
  PhaseProfiler* profiler_;
  int domain_;
  ProfilePhase phase_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace flov::telemetry

// Phase-scope macro. Compiled to nothing unless the build defines
// FLYOVER_PROFILING=1 (CMake option; mirrors FLYOVER_TRACING: ON outside
// Release, OFF in Release so benches never pay).
#if defined(FLYOVER_PROFILING) && FLYOVER_PROFILING
#define FLOV_PROFILE_CAT2(a, b) a##b
#define FLOV_PROFILE_CAT(a, b) FLOV_PROFILE_CAT2(a, b)
#define FLOV_PROFILE(phase)                       \
  ::flov::telemetry::PhaseTimer FLOV_PROFILE_CAT( \
      _flov_profile_scope_, __LINE__)(::flov::telemetry::ProfilePhase::phase)
#else
#define FLOV_PROFILE(phase) \
  do {                      \
  } while (0)
#endif
