#include "telemetry/ops/snapshot.hpp"

#include <cstdio>

#include "telemetry/json.hpp"

namespace flov::ops {

namespace {

using telemetry::JsonWriter;

template <typename T>
std::string uint_array(const std::vector<T>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(static_cast<std::uint64_t>(v[i]));
  }
  out += "]";
  return out;
}

/// Formats a double the same way JsonWriter does (%.17g round-trip).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string OpsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "flyover-snapshot-v1");
  w.kv("seq", seq);
  w.kv("cycle", cycle);
  w.kv("total_cycles", total_cycles);
  w.kv("scheme", scheme);
  w.kv("width", width);
  w.kv("height", height);
  w.kv("progress", progress);
  w.kv("stalled", stalled);
  w.key("globals");
  {
    JsonWriter g;
    g.begin_object();
    g.kv("injected_flits", injected_flits);
    g.kv("ejected_flits", ejected_flits);
    g.kv("in_network_flits", in_network_flits);
    g.kv("queued_packets", queued_packets);
    g.kv("gated_routers", gated_routers);
    g.kv("hist_overflow", hist_overflow);
    g.end_object();
    w.raw(g.take());
  }
  w.key("incidents");
  {
    JsonWriter g;
    g.begin_object();
    g.kv("total", incidents_total);
    g.kv("hard_fault_summary", incidents_hard_fault);
    g.kv("watchdog_stall", incidents_watchdog_stall);
    g.end_object();
    w.raw(g.take());
  }
  if (campaign) {
    w.key("campaign");
    JsonWriter g;
    g.begin_object();
    g.kv("points_done", points_done);
    g.kv("points_total", points_total);
    g.kv("checkpoint_path", checkpoint_path);
    g.end_object();
    w.raw(g.take());
  }
  if (width > 0 && height > 0) {
    w.key("nodes");
    JsonWriter g;
    g.begin_object();
    g.key("mode");
    g.raw(uint_array(mode));
    g.key("power_state");
    g.raw(uint_array(power_state));
    g.key("occupancy");
    g.raw(uint_array(occupancy));
    g.key("queued");
    g.raw(uint_array(queued));
    g.key("ejected_packets");
    g.raw(uint_array(ejected_packets));
    g.key("latency_sum");
    g.raw(uint_array(latency_sum));
    g.key("gated_cycles");
    g.raw(uint_array(gated_cycles));
    g.end_object();
    w.raw(g.take());
  }
  w.end_object();
  return w.take();
}

std::string OpsSnapshot::heatmap_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "flyover-heatmap-v1");
  w.kv("cycle", cycle);
  w.kv("scheme", scheme);
  w.kv("width", width);
  w.kv("height", height);
  w.key("grids");
  {
    // Each grid is height rows of width values, row y = nodes
    // [y*width, (y+1)*width) — the render script indexes grid[y][x].
    auto emit_grid = [&](const char* name, auto value_at) {
      std::string out = "\"";
      out += name;
      out += "\":[";
      for (int y = 0; y < height; ++y) {
        if (y != 0) out += ",";
        out += "[";
        for (int x = 0; x < width; ++x) {
          if (x != 0) out += ",";
          out += value_at(y * width + x);
        }
        out += "]";
      }
      out += "]";
      return out;
    };
    std::string grids = "{";
    grids += emit_grid("mode", [&](int i) {
      return std::to_string(static_cast<int>(mode[i]));
    });
    grids += ",";
    grids += emit_grid("power_state", [&](int i) {
      return std::to_string(static_cast<int>(power_state[i]));
    });
    grids += ",";
    grids += emit_grid("occupancy", [&](int i) {
      return std::to_string(occupancy[i]);
    });
    grids += ",";
    grids += emit_grid("queued",
                       [&](int i) { return std::to_string(queued[i]); });
    grids += ",";
    grids += emit_grid("avg_latency", [&](int i) {
      return ejected_packets[i] == 0
                 ? std::string("0")
                 : fmt_double(static_cast<double>(latency_sum[i]) /
                              static_cast<double>(ejected_packets[i]));
    });
    grids += ",";
    grids += emit_grid("gated_cycles", [&](int i) {
      return std::to_string(gated_cycles[i]);
    });
    grids += "}";
    w.raw(grids);
  }
  w.end_object();
  return w.take();
}

std::string OpsSnapshot::prometheus_text() const {
  std::string out;
  out.reserve(2048);
  auto metric = [&out](const char* name, const char* type, const char* help,
                       const std::string& value) {
    out += "# HELP ";
    out += name;
    out += " ";
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " ";
    out += type;
    out += "\n";
    out += name;
    out += " ";
    out += value;
    out += "\n";
  };
  auto u = [](std::uint64_t v) { return std::to_string(v); };

  metric("flyover_snapshot_seq", "counter", "Snapshot publications", u(seq));
  metric("flyover_cycle", "gauge", "Current simulation cycle", u(cycle));
  metric("flyover_progress_ratio", "gauge", "Run/campaign progress in [0,1]",
         fmt_double(progress));
  if (!campaign) {
    metric("flyover_injected_flits_total", "counter",
           "Flits injected by all NIs", u(injected_flits));
    metric("flyover_ejected_flits_total", "counter",
           "Flits ejected by all NIs", u(ejected_flits));
    metric("flyover_in_network_flits", "gauge",
           "Flits currently inside the fabric", u(in_network_flits));
    metric("flyover_queued_packets", "gauge",
           "Packets waiting in NI source queues", u(queued_packets));
    metric("flyover_gated_routers", "gauge",
           "Routers currently power-gated (non-pipeline mode)",
           u(gated_routers));
  } else {
    metric("flyover_campaign_points_done", "counter",
           "Campaign points completed", u(points_done));
    metric("flyover_campaign_points_total", "gauge",
           "Campaign points planned", u(points_total));
  }
  metric("flyover_latency_hist_overflow_total", "counter",
         "Latency samples clamped into the histogram's top bucket",
         u(hist_overflow));
  metric("flyover_incidents_total", "counter",
         "Structured incidents recorded", u(incidents_total));
  metric("flyover_hard_fault_incidents_total", "counter",
         "hard_fault_summary incidents recorded", u(incidents_hard_fault));
  metric("flyover_watchdog_stall_incidents_total", "counter",
         "watchdog_stall incidents recorded", u(incidents_watchdog_stall));
  metric("flyover_stalled", "gauge",
         "1 when ejections made no progress since the previous snapshot",
         u(stalled ? 1 : 0));
  return out;
}

}  // namespace flov::ops
