// Deterministic ops snapshot: an immutable, versioned fold of the sim's
// observable state (flyover-snapshot-v1), published at a fixed cycle period
// and double-buffered behind a shared_ptr swap so HTTP readers and the
// JSONL flight recorder never touch live sim state.
//
// Determinism contract: every field is a pure function of (config, seed,
// publish cycle). No wall-clock values, no thread counts, no addresses —
// the final snapshot of a run compares byte-identical across threads=1/N,
// any tiles= grid, and jobs=1/N (ops_test.cpp locks this in). Wall-clock
// facts (uptime, stall detection age) live only in /healthz, which is
// volatile by definition and never diffed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace flov::ops {

/// One published snapshot. Node arrays are row-major width*height grids
/// (empty in campaign mode, where width == height == 0).
struct OpsSnapshot {
  std::uint64_t seq = 0;    ///< publication counter (1-based)
  std::uint64_t cycle = 0;  ///< sim cycle the fold was taken at
  std::uint64_t total_cycles = 0;
  std::string scheme;
  int width = 0;
  int height = 0;

  // --- fabric globals (run mode) ---
  std::uint64_t injected_flits = 0;
  std::uint64_t ejected_flits = 0;
  std::uint64_t in_network_flits = 0;
  std::uint64_t queued_packets = 0;
  std::uint64_t gated_routers = 0;
  std::uint64_t hist_overflow = 0;  ///< latency.hist_overflow (clamped highs)

  // --- incident counters (from the structured sink) ---
  std::uint64_t incidents_total = 0;
  std::uint64_t incidents_hard_fault = 0;      ///< kind == hard_fault_summary
  std::uint64_t incidents_watchdog_stall = 0;  ///< kind == watchdog_stall

  /// True when ejected_flits made no progress between the two most recent
  /// folds while flits were in the network — the /healthz liveness signal.
  bool stalled = false;
  /// cycle / total_cycles in run mode, points_done / points_total in
  /// campaign mode (0 when the denominator is unknown).
  double progress = 0.0;

  // --- campaign mode (sweep / certify) ---
  bool campaign = false;
  std::uint64_t points_done = 0;
  std::uint64_t points_total = 0;
  std::string checkpoint_path;

  // --- per-node grids, indexed by node id (row-major) ---
  std::vector<std::uint8_t> mode;          ///< RouterMode numeric value
  std::vector<std::uint8_t> power_state;   ///< scheme PowerState (0 if N/A)
  std::vector<std::uint32_t> occupancy;    ///< flits resident in the router
  std::vector<std::uint32_t> queued;       ///< packets waiting in the NI
  std::vector<std::uint64_t> ejected_packets;  ///< delivered at this node
  std::vector<std::uint64_t> latency_sum;      ///< sum of total_latency here
  std::vector<std::uint64_t> gated_cycles;     ///< cycles spent non-pipeline

  /// {"schema":"flyover-snapshot-v1", ...} — the /snapshot + JSONL payload.
  std::string to_json() const;
  /// {"schema":"flyover-heatmap-v1", ...} — height x width nested arrays
  /// per grid (mode, occupancy, queued, avg_latency, gated_cycles), the
  /// /heatmap payload consumed by scripts/render_heatmap.py.
  std::string heatmap_json() const;
  /// Prometheus text exposition (flyover_* families) — the /metrics payload.
  std::string prometheus_text() const;
};

/// Double buffer: the sim thread folds into a fresh snapshot and publishes
/// it with a pointer swap; readers take a shared_ptr copy and hold the
/// immutable snapshot for as long as they like.
class SnapshotPublisher {
 public:
  void publish(OpsSnapshot snap) {
    auto p = std::make_shared<const OpsSnapshot>(std::move(snap));
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(p);
  }

  /// Latest snapshot; null before the first publication.
  std::shared_ptr<const OpsSnapshot> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const OpsSnapshot> current_;
};

}  // namespace flov::ops
