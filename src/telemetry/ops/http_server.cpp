#include "telemetry/ops/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

namespace flov::ops {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

std::string render_response(const HttpResponse& r) {
  std::string out = "HTTP/1.0 " + std::to_string(r.status) + " " +
                    status_text(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

/// One in-flight connection: read until the header terminator, write the
/// response, close. Requests and responses are small (a snapshot JSON tops
/// out well under a megabyte), so per-connection buffers are plain strings.
struct Connection {
  int fd = -1;
  std::string in;
  std::string out;
  std::size_t out_pos = 0;
  bool responding = false;
};

}  // namespace

bool HttpServer::start(std::uint16_t port, Handler handler) {
  if (fd_ >= 0) return false;
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("[ops] socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("[ops] bind");
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    std::perror("[ops] listen");
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    std::perror("[ops] pipe");
    ::close(fd);
    return false;
  }
  set_nonblocking(fd);
  set_nonblocking(wake_pipe_[0]);

  fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  thread_.join();
  ::close(fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  fd_ = -1;
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void HttpServer::serve_loop() {
  std::vector<Connection> conns;
  std::vector<pollfd> pfds;

  while (!stopping_.load(std::memory_order_relaxed)) {
    pfds.clear();
    pfds.push_back({fd_, POLLIN, 0});
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const Connection& c : conns) {
      pfds.push_back(
          {c.fd, static_cast<short>(c.responding ? POLLOUT : POLLIN), 0});
    }

    const int rc = ::poll(pfds.data(), pfds.size(), 500);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    // New connections.
    if (pfds[0].revents & POLLIN) {
      for (;;) {
        const int cfd = ::accept(fd_, nullptr, nullptr);
        if (cfd < 0) break;
        set_nonblocking(cfd);
        Connection c;
        c.fd = cfd;
        conns.push_back(std::move(c));
      }
      // conns changed shape; re-poll with the fresh fd set.
      continue;
    }

    // Existing connections (pfds[i + 2] pairs with conns[i]).
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& c = conns[i];
      const short rev = pfds[i + 2].revents;
      if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
        ::close(c.fd);
        c.fd = -1;
        continue;
      }
      if (!c.responding && (rev & POLLIN)) {
        char buf[4096];
        const ssize_t n = ::read(c.fd, buf, sizeof(buf));
        if (n <= 0) {
          if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
            ::close(c.fd);
            c.fd = -1;
          }
          continue;
        }
        c.in.append(buf, static_cast<std::size_t>(n));
        const std::size_t hdr_end = c.in.find("\r\n\r\n");
        if (hdr_end == std::string::npos) {
          if (c.in.size() > 16384) {  // runaway header: drop
            ::close(c.fd);
            c.fd = -1;
          }
          continue;
        }
        // Request line: METHOD SP PATH SP VERSION
        HttpResponse resp;
        const std::size_t sp1 = c.in.find(' ');
        const std::size_t sp2 =
            sp1 == std::string::npos ? std::string::npos
                                     : c.in.find(' ', sp1 + 1);
        if (sp1 == std::string::npos || sp2 == std::string::npos ||
            c.in.substr(0, sp1) != "GET") {
          resp.status = 400;
          resp.body = "{\"error\":\"bad request\"}";
        } else {
          std::string path = c.in.substr(sp1 + 1, sp2 - sp1 - 1);
          const std::size_t q = path.find('?');
          if (q != std::string::npos) path.resize(q);
          resp = handler_(path);
        }
        c.out = render_response(resp);
        c.out_pos = 0;
        c.responding = true;
      }
      if (c.responding && (rev & POLLOUT || c.out_pos < c.out.size())) {
        const ssize_t n = ::write(c.fd, c.out.data() + c.out_pos,
                                  c.out.size() - c.out_pos);
        if (n > 0) {
          c.out_pos += static_cast<std::size_t>(n);
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          ::close(c.fd);
          c.fd = -1;
          continue;
        }
        if (c.out_pos >= c.out.size()) {
          ::close(c.fd);
          c.fd = -1;
        }
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const Connection& c) { return c.fd < 0; }),
                conns.end());
  }

  for (Connection& c : conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
}

}  // namespace flov::ops
