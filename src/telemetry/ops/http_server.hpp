// Tiny embedded HTTP/1.0 server for the ops plane.
//
// Deliberately minimal: one background thread multiplexing a poll() loop
// over the listen socket and a handful of short-lived connections, GET
// only, Connection: close, bound to 127.0.0.1. It exists so a long run,
// sweep, or certification campaign can be probed with curl — not to serve
// the public internet. The handler receives only the request path and
// returns a complete response; it runs on the server thread, so handlers
// must touch nothing but immutable published snapshots (SnapshotPublisher)
// — never live sim state. The sim thread itself never blocks on a socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace flov::ops {

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const std::string& path)>;

  HttpServer() = default;
  ~HttpServer() { stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral, see port()) and starts the
  /// server thread. Returns false (with a perror) if the bind fails.
  bool start(std::uint16_t port, Handler handler);

  /// Signals the thread via the self-pipe and joins it. Idempotent.
  void stop();

  bool running() const { return fd_ >= 0; }
  /// The actually-bound port (resolves port 0 after start()).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();

  int fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe to interrupt poll() on stop
  std::uint16_t port_ = 0;
  Handler handler_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace flov::ops
