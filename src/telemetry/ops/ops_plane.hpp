// OpsPlane: the live observability surface for runs and campaigns.
//
// Owns the pieces the CLIs wire together: the snapshot publisher (folds
// sim state into immutable flyover-snapshot-v1 documents at a fixed cycle
// period), the embedded HTTP server (/metrics, /snapshot, /heatmap,
// /healthz), the JSONL flight-recorder stream for headless runs, and the
// wall-clock phase profiler.
//
// Invariants (docs/OBSERVABILITY.md, "Ops plane"):
//   * Read-only: the ops plane never mutates sim state, the metrics
//     registry, or anything that lands in a manifest. Manifests are
//     byte-identical with the ops plane on or off (ops_test.cpp).
//   * Deterministic snapshots: folds happen at fixed cycle boundaries and
//     contain no wall-clock values, so the snapshot/JSONL stream of a run
//     is byte-identical across threads=/tiles=/jobs=. Wall-clock facts
//     live only in /healthz and the profile report, both volatile.
//   * Zero overhead when off: a disabled ops plane costs one null-pointer
//     branch per cycle in the run loop; the FLOV_PROFILE hook points are
//     compiled out entirely unless FLYOVER_PROFILING is on.
//
// Threading: begin_run/tick/end_run run on the sim thread between cycle
// barriers, so folds may read network state freely. campaign_progress may
// be called from sweep worker callbacks and takes a lock. The HTTP thread
// only ever touches published (immutable) snapshots.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/types.hpp"
#include "telemetry/ops/http_server.hpp"
#include "telemetry/ops/profile.hpp"
#include "telemetry/ops/snapshot.hpp"

namespace flov {
class Config;
class NocSystem;
namespace telemetry {
class StructuredSink;
}
}  // namespace flov

namespace flov::ops {

struct OpsOptions {
  /// serve=PORT: bind the HTTP server to 127.0.0.1:PORT (0 = ephemeral,
  /// the bound port is printed to stderr); < 0 = no server.
  int serve_port = -1;
  /// ops_stream=PATH: append one snapshot JSON object per fold (JSONL).
  std::string stream_path;
  /// profile=1: enable the phase profiler (needs FLYOVER_PROFILING builds
  /// to produce non-zero numbers; otherwise reports all-zero with a note).
  bool profile = false;
  /// profile_out=PATH: also write the flyover-profile-v1 report here.
  std::string profile_out;
  /// ops.period=N: cycles between snapshot folds.
  std::uint64_t period = 4096;

  /// Reads serve= / ops_stream= / profile= / profile_out= / ops.period=.
  static OpsOptions from_config(const Config& cfg);

  /// True when any surface is requested (the CLIs skip constructing an
  /// OpsPlane entirely otherwise — the disabled path costs nothing).
  bool any() const {
    return serve_port >= 0 || !stream_path.empty() || profile;
  }
};

class OpsPlane {
 public:
  explicit OpsPlane(OpsOptions opt);
  ~OpsPlane();
  OpsPlane(const OpsPlane&) = delete;
  OpsPlane& operator=(const OpsPlane&) = delete;

  const OpsOptions& options() const { return opt_; }

  // --- run mode (wired by run_synthetic via SyntheticExperimentConfig) ---
  struct RunContext {
    NocSystem* sys = nullptr;  ///< borrowed; valid until end_run
    std::string scheme;
    Cycle total_cycles = 0;
    /// latency.hist_overflow reader (LatencyStats); may be null.
    std::function<std::uint64_t()> hist_overflow;
    /// Incident sink to count kinds from; may be null. Borrowed.
    const telemetry::StructuredSink* incidents = nullptr;
    /// Multi-process busy-imbalance reader (Network::proc_busy_imbalance);
    /// null for single-process runs. Must be callable from the HTTP
    /// thread mid-run — it only reads ProcPool atomics.
    std::function<double()> proc_imbalance;
  };

  /// Sizes the per-node accumulators and registers a passive ejection
  /// observer on the network (per-node latency/delivery grids).
  void begin_run(const RunContext& ctx);
  /// Cheap per-cycle gate: true when `now` reached the next fold point.
  bool wants_tick(Cycle now) const { return run_active_ && now >= next_fold_; }
  /// Folds a snapshot at cycle `now`, publishes it, appends to the stream.
  void tick(Cycle now);
  /// Final fold at the run's end cycle; detaches from the (about to be
  /// destroyed) system.
  void end_run(Cycle now);
  /// Self-healing event (run_synthetic after a successful checkpoint
  /// restore + respawn): surfaces `degraded` status and the recovery
  /// counters on /healthz. Volatile by design — recovery facts never
  /// enter snapshots or manifests.
  void note_recovery(std::uint64_t recoveries, std::uint64_t wall_ns) {
    recoveries_.store(recoveries, std::memory_order_relaxed);
    recovery_wall_ns_.store(wall_ns, std::memory_order_relaxed);
  }

  // --- campaign mode (sweep / certify drivers) ---
  void begin_campaign(const std::string& kind, std::uint64_t points_total,
                      const std::string& checkpoint_path);
  /// Publishes a campaign snapshot; callable from worker callbacks.
  void campaign_progress(std::uint64_t points_done);

  // --- profiler ---
  /// Null unless opt.profile; bind with telemetry::ProfileScope around the
  /// run so the FLOV_PROFILE hook points attribute into it.
  telemetry::PhaseProfiler* profiler() { return profiler_.get(); }
  /// Prints the phase table to `f` and writes profile_out if configured.
  void finish_profile(std::FILE* f);

  // --- introspection (tests) ---
  std::shared_ptr<const OpsSnapshot> snapshot() const {
    return publisher_.current();
  }
  bool serving() const { return server_.running(); }
  std::uint16_t http_port() const { return server_.port(); }
  /// The HTTP dispatch, exposed so tests can exercise endpoint payloads
  /// without sockets.
  HttpResponse handle(const std::string& path) const;

 private:
  void fold(Cycle now);
  void campaign_progress_locked_(std::uint64_t points_done);
  std::string healthz_json() const;

  OpsOptions opt_;
  SnapshotPublisher publisher_;
  HttpServer server_;
  std::unique_ptr<telemetry::PhaseProfiler> profiler_;
  std::FILE* stream_ = nullptr;
  std::uint64_t start_ns_ = 0;  ///< wall clock at construction (/healthz)

  // --- run-mode fold state (sim thread only) ---
  bool run_active_ = false;
  RunContext ctx_;
  /// Guards health-surfaced callbacks the HTTP thread may invoke mid-run
  /// (currently ctx_.proc_imbalance). end_run clears them under this lock
  /// — the system they read dies right after.
  mutable std::mutex health_mu_;
  std::function<double()> health_proc_imbalance_;
  /// Self-healing counters (written by the sim thread between barriers,
  /// read by the HTTP thread): non-zero recoveries = `degraded` status.
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> recovery_wall_ns_{0};
  Cycle next_fold_ = 0;
  Cycle last_fold_cycle_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t last_ejected_ = 0;
  bool have_last_ejected_ = false;
  std::size_t incidents_seen_ = 0;
  std::uint64_t incidents_hard_fault_ = 0;
  std::uint64_t incidents_watchdog_ = 0;
  /// Per-node accumulators fed by the ejection observer (sim thread).
  std::vector<std::uint64_t> node_latency_sum_;
  std::vector<std::uint64_t> node_ejected_packets_;
  std::vector<std::uint64_t> node_gated_cycles_;

  // --- campaign-mode state (guarded: progress callbacks may be
  // --- concurrent under jobs=N) ---
  std::mutex campaign_mu_;
  bool campaign_active_ = false;
  std::string campaign_kind_;
  std::uint64_t campaign_total_ = 0;
  std::string campaign_checkpoint_;
  std::uint64_t campaign_last_done_ = 0;
};

}  // namespace flov::ops
