// Structured diagnostic sink: machine-parseable incident records.
//
// Watchdog stall dumps and invariant-verifier violations historically went
// to stderr as free-form text, which made a CI failure artifact useless to
// tooling. Subsystems now ALSO build each dump as a JSON object (router
// coordinates, power modes, occupancy, the violated invariant) and append
// it here; the experiment embeds the incidents in the run manifest and/or
// writes them to a standalone incidents file. The stderr text dumps remain
// for humans reading a terminal.
#pragma once

#include <string>
#include <vector>

namespace flov::telemetry {

class JsonWriter;

class StructuredSink {
 public:
  /// Appends one complete JSON object (caller renders it with JsonWriter).
  void add(std::string json_object) {
    records_.push_back(std::move(json_object));
  }

  const std::vector<std::string>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Splices the incidents as a JSON array into `w` (for manifest embeds).
  void append_json(JsonWriter& w) const;

  /// Writes {"schema":"flyover-incidents-v1","incidents":[...]} to `path`.
  void write(const std::string& path) const;

 private:
  std::vector<std::string> records_;
};

}  // namespace flov::telemetry
