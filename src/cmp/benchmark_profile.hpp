// PARSEC-like benchmark profiles (full-system substitution; see DESIGN.md).
//
// Each profile shapes the NoC-relevant behaviour of one PARSEC 2.1
// benchmark: per-core memory intensity, working-set size (=> L1/L2 miss
// rates), read/write mix, data sharing degree (=> coherence traffic), and
// load imbalance (=> cores finish early, idle, and get power-gated by the
// OS, which is what the power-gating schemes exploit). The *absolute*
// numbers are synthetic; the cross-benchmark diversity mirrors the PARSEC
// characterization (Bienia et al., PACT'08).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace flov {

struct BenchmarkProfile {
  std::string name;
  /// Probability an instruction is a memory access.
  double mem_access_rate = 0.05;
  /// Fraction of memory accesses that are stores.
  double write_fraction = 0.25;
  /// Fraction of accesses that target the globally shared region.
  double share_fraction = 0.10;
  /// Private working set per core, in 64B blocks.
  int private_blocks = 1024;
  /// Shared region size, in blocks.
  int shared_blocks = 512;
  /// Instructions for the most-loaded core.
  std::uint64_t base_instructions = 40000;
  /// Load imbalance in [0,1): core i executes
  /// base * (1 - imbalance * i / (n-1)) instructions, so high-imbalance
  /// benchmarks idle (and power-gate) many cores early.
  double imbalance = 0.3;
  /// Fraction of cores that have work at all. PARSEC workloads do not
  /// scale to 64 threads; unused cores are power-gated by the OS from the
  /// start — the low-average-utilization premise of the paper's Section I.
  double active_fraction = 0.7;

  /// The nine-benchmark suite used in the paper's Fig. 8(c,d).
  static std::vector<BenchmarkProfile> parsec_suite();
  static BenchmarkProfile by_name(const std::string& name);
};

}  // namespace flov
