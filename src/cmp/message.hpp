// Coherence message vocabulary for the CMP substrate (gem5+PARSEC
// substitute; see DESIGN.md).
//
// MESI directory protocol with memory-side directories: four L2+directory
// banks co-located with the memory controllers at the mesh corners
// (Table I: "8MB L2, MESI, 4 MCs at 4 corners"). Three virtual networks
// give protocol-deadlock freedom: requests (vnet 0), forwards/invalidations
// (vnet 1), responses/data (vnet 2).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace flov {

using Addr = std::uint64_t;

inline constexpr int kBlockBytes = 64;
inline constexpr int kFlitBytes = 16;
/// 64B data + header -> 5 flits; control messages -> 1 flit.
inline constexpr int kDataFlits = kBlockBytes / kFlitBytes + 1;
inline constexpr int kCtrlFlits = 1;

enum class MsgType : std::uint8_t {
  // requests (vnet 0): L1 -> directory
  kGetS = 0,   ///< read miss
  kGetM,       ///< write miss / upgrade
  kPutM,       ///< dirty eviction (carries data)
  kPutE,       ///< clean-exclusive eviction (control only; acked like PutM)
  kPutS,       ///< clean shared eviction notification
  // forwards (vnet 1): directory -> L1
  kFwdGetS,    ///< owner: send data to requester + dir, downgrade to S
  kFwdGetM,    ///< owner: send data to dir, invalidate
  kInv,        ///< sharer: invalidate, ack to dir
  // responses (vnet 2)
  kData,       ///< data to requester (grant S or M per transaction)
  kDataToDir,  ///< owner data back to the directory
  kInvAck,     ///< sharer invalidation ack to dir
  kPutAck,     ///< directory acks a PutM/PutS
};

const char* to_string(MsgType t);

constexpr VnetId vnet_of(MsgType t) {
  switch (t) {
    case MsgType::kGetS:
    case MsgType::kGetM:
    case MsgType::kPutM:
    case MsgType::kPutE:
    case MsgType::kPutS:
      return 0;
    case MsgType::kFwdGetS:
    case MsgType::kFwdGetM:
    case MsgType::kInv:
      return 1;
    case MsgType::kData:
    case MsgType::kDataToDir:
    case MsgType::kInvAck:
    case MsgType::kPutAck:
      return 2;
  }
  return 2;
}

constexpr int flits_of(MsgType t) {
  switch (t) {
    case MsgType::kPutM:
    case MsgType::kData:
    case MsgType::kDataToDir:
      return kDataFlits;
    default:
      return kCtrlFlits;
  }
}

/// Permission carried by a kData response (MESI).
enum class Grant : std::uint8_t { kS = 0, kE, kM };

struct CoherenceMsg {
  MsgType type = MsgType::kGetS;
  Addr addr = 0;
  NodeId src = kInvalidNode;        ///< sending tile
  NodeId dst = kInvalidNode;        ///< receiving tile
  NodeId requester = kInvalidNode;  ///< original requester (for forwards)
  Grant grant = Grant::kS;          ///< kData only
};

}  // namespace flov
