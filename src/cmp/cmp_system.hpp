// Full-system CMP model: 64 cores + private L1s + 4 corner L2/dir/MC banks
// over any of the four NoC schemes, running one PARSEC-like profile.
//
// This substitutes for the paper's gem5+PARSEC stack (see DESIGN.md): the
// cores execute profile-shaped instruction streams; coherence runs a real
// blocking-MESI directory protocol over 3 virtual networks; cores that
// finish their work flush their L1 and are power-gated by the "OS", which
// drives the router power-gating schemes. Energy = average power x runtime,
// so both power savings and performance degradation feed Fig. 8(c,d).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cmp/benchmark_profile.hpp"
#include "cmp/core.hpp"
#include "cmp/directory.hpp"
#include "cmp/l1_cache.hpp"
#include "cmp/message.hpp"
#include "noc/system_iface.hpp"
#include "sim/builder.hpp"
#include "sim/latency_stats.hpp"

namespace flov {

struct CmpConfig {
  Scheme scheme = Scheme::kBaseline;
  NocParams noc;             ///< overridden to 3 vnets internally
  EnergyParams energy;
  BenchmarkProfile profile;
  DirectoryConfig dir;
  std::uint64_t seed = 1;
  Cycle max_cycles = 2000000;  ///< hard safety bound
  /// RP reconfigures at most this often (epoch batching of core sleeps).
  Cycle rp_epoch_gap = 20000;
};

struct CmpResult {
  std::string benchmark;
  std::string scheme;
  Cycle runtime = 0;          ///< last core finished (performance metric)
  Cycle drained = 0;          ///< network fully drained
  PowerTracker::Report power; ///< over [0, drained]
  double avg_pkt_latency = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t dir_transactions = 0;
  std::uint64_t l2_misses = 0;
  int final_gated_cores = 0;
};

class CmpSystem {
 public:
  explicit CmpSystem(const CmpConfig& cfg);

  /// Runs to completion; returns the result record.
  CmpResult run();

  NocSystem& noc() { return *built_.system; }

 private:
  void send(const CoherenceMsg& msg);
  void deliver(const CoherenceMsg& msg);
  NodeId home_of(Addr a) const { return mc_tiles_[a % mc_tiles_.size()]; }
  bool is_mc_tile(NodeId n) const;
  int bank_of(NodeId tile) const;

  CmpConfig cfg_;
  BuiltSystem built_;
  std::vector<NodeId> mc_tiles_;
  std::vector<std::unique_ptr<L1Cache>> l1s_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<DirectoryBank>> banks_;
  /// Same-tile messages bypass the NoC with a 1-cycle local loop.
  std::deque<std::pair<Cycle, CoherenceMsg>> local_loop_;
  /// In-flight coherence messages keyed by packet payload id.
  std::vector<CoherenceMsg> msg_table_;
  std::deque<std::uint64_t> free_ids_;
  Cycle now_ = 0;
};

CmpResult run_cmp(const CmpConfig& cfg);

}  // namespace flov
