// Private L1 cache with MESI states and a single MSHR (blocking core).
//
// Capacity-managed as a block map with pseudo-random eviction (the NoC
// study cares about miss/eviction *traffic*, not replacement policy
// fidelity). Dirty evictions hold the block in a writeback-pending state
// until the directory acks, so forwards racing the writeback can still be
// served from the pending data — the standard MESI race resolution.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "cmp/message.hpp"

namespace flov {

enum class L1State : std::uint8_t { kS, kE, kM };

class L1Cache {
 public:
  using SendFn = std::function<void(const CoherenceMsg&)>;
  using HomeFn = std::function<NodeId(Addr)>;

  L1Cache(NodeId tile, int capacity_blocks, std::uint64_t seed, SendFn send,
          HomeFn home_of);

  /// Access from the core. Returns true on hit (no stall); false starts a
  /// miss transaction (core must stall until miss_outstanding() clears).
  bool access(Addr addr, bool is_store);

  bool miss_outstanding() const { return mshr_.has_value(); }

  /// Protocol message addressed to this L1.
  void on_message(const CoherenceMsg& msg);

  /// Begins flushing every cached block (core going idle). Call
  /// flush_step() once per cycle until flush_done().
  void begin_flush();
  void flush_step();
  bool flush_done() const {
    return flushing_ && flush_queue_.empty() && wb_pending_.empty() &&
           !mshr_.has_value();
  }
  bool flushing() const { return flushing_; }

  std::size_t cached_blocks() const { return blocks_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Mshr {
    Addr addr;
    bool is_store;
  };

  void evict_one();
  void evict(Addr addr, L1State st);

  NodeId tile_;
  int capacity_;
  Rng rng_;
  SendFn send_;
  HomeFn home_of_;

  std::unordered_map<Addr, L1State> blocks_;
  /// Dirty blocks with a PutM in flight (awaiting PutAck).
  std::unordered_map<Addr, bool> wb_pending_;
  std::optional<Mshr> mshr_;

  bool flushing_ = false;
  std::vector<Addr> flush_queue_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace flov
