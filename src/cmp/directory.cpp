#include "cmp/directory.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace flov {

DirectoryBank::DirectoryBank(NodeId tile, DirectoryConfig cfg, SendFn send)
    : tile_(tile), cfg_(cfg), send_(std::move(send)) {}

void DirectoryBank::send(MsgType t, Addr a, NodeId dst, NodeId requester,
                         Grant grant) {
  CoherenceMsg m;
  m.type = t;
  m.addr = a;
  m.src = tile_;
  m.dst = dst;
  m.requester = requester;
  m.grant = grant;
  send_(m);
}

void DirectoryBank::touch_l2(Addr addr) {
  if (l2_.emplace(addr, true).second) {
    l2_fifo_.push_back(addr);
    while (static_cast<int>(l2_.size()) > cfg_.l2_capacity_blocks) {
      const Addr victim = l2_fifo_.front();
      l2_fifo_.pop_front();
      l2_.erase(victim);  // dirty victims write to local DRAM, no NoC traffic
    }
  }
}

Cycle DirectoryBank::fetch_latency(Addr addr, Cycle now) {
  if (l2_.count(addr)) return now + cfg_.l2_latency;
  ++l2_misses_;
  touch_l2(addr);
  return now + cfg_.l2_latency + cfg_.dram_latency;
}

void DirectoryBank::start_transaction(Entry& e, const CoherenceMsg& msg,
                                      Cycle now) {
  e.busy = true;
  e.pending_type = msg.type;
  e.pending_requester = msg.requester;
  e.acks_needed = 0;
  e.waiting_memory = false;
  e.waiting_owner = false;

  switch (e.state) {
    case DirState::kI:
      e.waiting_memory = true;
      e.data_ready_at = fetch_latency(msg.addr, now);
      break;
    case DirState::kS:
      if (msg.type == MsgType::kGetS) {
        e.waiting_memory = true;
        e.data_ready_at = fetch_latency(msg.addr, now);
      } else {  // GetM over sharers: invalidate everyone else, then data
        for (NodeId s : e.sharers) {
          if (s == msg.requester) continue;
          if (gated_ && gated_(s)) continue;  // flushed core: no copy left
          send(MsgType::kInv, msg.addr, s, msg.requester, Grant::kS);
          ++e.acks_needed;
        }
        e.waiting_memory = true;
        e.data_ready_at = fetch_latency(msg.addr, now);
      }
      break;
    case DirState::kM:
      FLOV_CHECK(!(gated_ && gated_(e.owner)),
                 "directory owner is a gated core (flush must precede gate)");
      e.waiting_owner = true;
      send(msg.type == MsgType::kGetS ? MsgType::kFwdGetS : MsgType::kFwdGetM,
           msg.addr, e.owner, msg.requester, Grant::kS);
      break;
  }
  busy_blocks_.push_back(msg.addr);
}

void DirectoryBank::finish_transaction(Addr addr, Entry& e, Cycle now) {
  e.busy = false;
  ++transactions_;
  busy_blocks_.erase(
      std::remove(busy_blocks_.begin(), busy_blocks_.end(), addr),
      busy_blocks_.end());
  pump(addr, now);
}

void DirectoryBank::pump(Addr addr, Cycle now) {
  // Drain queued requests while the entry stays non-busy. Re-resolve the
  // entry each round: handle() may mutate the map indirectly.
  while (true) {
    Entry& e = dir_[addr];
    if (e.busy || e.waiting.empty()) return;
    const CoherenceMsg next = e.waiting.front();
    e.waiting.pop_front();
    handle(dir_[addr], next, now);
  }
}

void DirectoryBank::process(const CoherenceMsg& msg, Cycle now) {
  Entry& e = dir_[msg.addr];
  const bool is_request =
      msg.type == MsgType::kGetS || msg.type == MsgType::kGetM ||
      msg.type == MsgType::kPutM || msg.type == MsgType::kPutE ||
      msg.type == MsgType::kPutS;
  // Requests serialize per block: behind a live transaction AND behind any
  // already-waiting requests (FIFO).
  if (is_request && (e.busy || !e.waiting.empty())) {
    e.waiting.push_back(msg);
    return;
  }
  handle(e, msg, now);
  pump(msg.addr, now);
}

void DirectoryBank::handle(Entry& e, const CoherenceMsg& msg, Cycle now) {
  switch (msg.type) {
    case MsgType::kGetS:
    case MsgType::kGetM:
      start_transaction(e, msg, now);
      return;

    case MsgType::kPutM:
    case MsgType::kPutE:
      if (e.state == DirState::kM && e.owner == msg.src) {
        e.state = DirState::kI;
        e.owner = kInvalidNode;
        touch_l2(msg.addr);  // PutE data is clean; the L2 copy is current
      }
      // Stale PutM/PutE (ownership already moved on): ack, drop payload.
      send(MsgType::kPutAck, msg.addr, msg.src, msg.src, Grant::kS);
      return;

    case MsgType::kPutS:
      e.sharers.erase(msg.src);
      if (e.state == DirState::kS && e.sharers.empty()) {
        e.state = DirState::kI;
      }
      return;

    case MsgType::kDataToDir: {
      FLOV_CHECK(e.busy && e.waiting_owner, "DataToDir without transaction");
      touch_l2(msg.addr);
      const NodeId old_owner = e.owner;
      if (e.pending_type == MsgType::kGetS) {
        // Owner already supplied data to the requester directly.
        e.state = DirState::kS;
        e.owner = kInvalidNode;
        e.sharers.clear();
        e.sharers.insert(old_owner);
        e.sharers.insert(e.pending_requester);
      } else {
        send(MsgType::kData, msg.addr, e.pending_requester,
             e.pending_requester, Grant::kM);
        e.state = DirState::kM;
        e.owner = e.pending_requester;
        e.sharers.clear();
      }
      finish_transaction(msg.addr, e, now);
      return;
    }

    case MsgType::kInvAck:
      FLOV_CHECK(e.busy && e.acks_needed > 0, "unexpected InvAck");
      --e.acks_needed;
      return;  // completion is polled in step()

    default:
      FLOV_CHECK(false, "unexpected message at directory");
  }
}

void DirectoryBank::step(Cycle now) {
  // Timer / ack completions for memory-waiting transactions.
  for (std::size_t i = 0; i < busy_blocks_.size(); ++i) {
    const Addr a = busy_blocks_[i];
    Entry& e = dir_[a];
    if (!e.busy || !e.waiting_memory) continue;
    if (e.acks_needed > 0 || now < e.data_ready_at) continue;
    Grant grant;
    if (e.pending_type == MsgType::kGetM) {
      grant = Grant::kM;
    } else if (e.state == DirState::kI) {
      grant = Grant::kE;  // MESI: sole reader gets Exclusive
    } else {
      grant = Grant::kS;
    }
    send(MsgType::kData, a, e.pending_requester, e.pending_requester, grant);
    if (grant == Grant::kS) {
      e.state = DirState::kS;
      e.sharers.insert(e.pending_requester);
    } else {
      // M and E grants both track a single owner (an E owner may upgrade
      // to M silently, so the directory must forward either way).
      e.state = DirState::kM;
      e.owner = e.pending_requester;
      e.sharers.clear();
    }
    e.waiting_memory = false;
    finish_transaction(a, e, now);
    // finish_transaction may mutate busy_blocks_; restart the scan.
    i = static_cast<std::size_t>(-1);
  }

  // One incoming message per cycle (bank bandwidth).
  if (!incoming_.empty()) {
    const CoherenceMsg m = incoming_.front();
    incoming_.pop_front();
    process(m, now);
  }
}

bool DirectoryBank::idle() const {
  if (!incoming_.empty()) return false;
  return busy_blocks_.empty();
}

}  // namespace flov
