// L2 + directory + memory-controller bank (one per mesh corner).
//
// Blocking MESI directory: one transaction per block at a time; requests
// that hit a busy block queue behind it. The L2 data array is
// capacity-managed; a miss adds DRAM latency before the response. The bank
// processes one message per cycle (plus timer completions), so the corner
// tiles behave like real MC hotspots.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cmp/message.hpp"
#include "common/types.hpp"

namespace flov {

struct DirectoryConfig {
  int l2_capacity_blocks = 32768;  ///< 2 MB per bank (8 MB / 4, Table I)
  Cycle l2_latency = 10;
  Cycle dram_latency = 100;
};

class DirectoryBank {
 public:
  using SendFn = std::function<void(const CoherenceMsg&)>;

  DirectoryBank(NodeId tile, DirectoryConfig cfg, SendFn send);

  /// OS/FM oracle: cores that are power-gated have flushed their L1, so
  /// the directory skips them when invalidating/forwarding (a gated core
  /// provably holds no block; contacting it would needlessly wake its
  /// router, and Router Parking may have removed the route entirely).
  void set_gated_oracle(std::function<bool(NodeId)> fn) {
    gated_ = std::move(fn);
  }

  /// Message addressed to this bank (queued; processed by step()).
  void enqueue(const CoherenceMsg& msg) { incoming_.push_back(msg); }

  void step(Cycle now);

  bool idle() const;
  std::uint64_t transactions() const { return transactions_; }
  std::uint64_t l2_misses() const { return l2_misses_; }

 private:
  enum class DirState : std::uint8_t { kI, kS, kM };

  struct Entry {
    DirState state = DirState::kI;
    NodeId owner = kInvalidNode;
    std::unordered_set<NodeId> sharers;
    // --- transaction-in-progress bookkeeping ---
    bool busy = false;
    MsgType pending_type = MsgType::kGetS;
    NodeId pending_requester = kInvalidNode;
    int acks_needed = 0;
    Cycle data_ready_at = 0;   ///< L2/DRAM access completes
    bool waiting_memory = false;
    bool waiting_owner = false;
    std::deque<CoherenceMsg> waiting;  ///< requests queued behind busy
  };

  void process(const CoherenceMsg& msg, Cycle now);
  /// Executes a message against its entry (no queueing decisions).
  void handle(Entry& e, const CoherenceMsg& msg, Cycle now);
  /// Drains the entry's waiting queue while it remains non-busy.
  void pump(Addr addr, Cycle now);
  void start_transaction(Entry& e, const CoherenceMsg& msg, Cycle now);
  void finish_transaction(Addr addr, Entry& e, Cycle now);
  /// L2 lookup; returns the cycle the data is available.
  Cycle fetch_latency(Addr addr, Cycle now);
  void touch_l2(Addr addr);
  void send(MsgType t, Addr a, NodeId dst, NodeId requester, Grant grant);

  NodeId tile_;
  DirectoryConfig cfg_;
  SendFn send_;
  std::function<bool(NodeId)> gated_;

  std::unordered_map<Addr, Entry> dir_;
  std::unordered_map<Addr, bool> l2_;  ///< resident blocks (value unused)
  std::deque<Addr> l2_fifo_;           ///< FIFO eviction order
  std::deque<CoherenceMsg> incoming_;
  std::vector<Addr> busy_blocks_;      ///< blocks with timers to poll

  std::uint64_t transactions_ = 0;
  std::uint64_t l2_misses_ = 0;
};

}  // namespace flov
