#include "cmp/benchmark_profile.hpp"

#include "common/log.hpp"

namespace flov {

std::vector<BenchmarkProfile> BenchmarkProfile::parsec_suite() {
  // name, mem_rate, wr_frac, share_frac, priv_blocks, shared_blocks,
  // base_insts, imbalance. Diversity mirrors the PARSEC characterization:
  // canneal = large footprint / fine-grained sharing; swaptions = tiny
  // footprint / coarse units / heavy imbalance; ferret & dedup = pipeline
  // parallel with substantial sharing; blackscholes = data-parallel and
  // cache-friendly; etc.
  // Final column: active-core fraction (thread scalability on 64 cores).
  return {
      {"blackscholes", 0.030, 0.20, 0.02, 512, 128, 40000, 0.50, 0.75},
      {"bodytrack",    0.050, 0.25, 0.15, 1024, 512, 40000, 0.35, 0.62},
      {"canneal",      0.090, 0.30, 0.30, 4096, 2048, 36000, 0.25, 0.50},
      {"dedup",        0.070, 0.35, 0.20, 2048, 1024, 40000, 0.45, 0.56},
      {"ferret",       0.080, 0.30, 0.25, 2048, 1024, 44000, 0.40, 0.62},
      {"fluidanimate", 0.060, 0.30, 0.12, 1536, 384, 40000, 0.30, 0.75},
      {"swaptions",    0.025, 0.20, 0.03, 384, 96, 36000, 0.60, 0.44},
      {"vips",         0.055, 0.30, 0.10, 1536, 512, 40000, 0.40, 0.62},
      {"x264",         0.065, 0.35, 0.18, 1536, 768, 42000, 0.55, 0.50},
  };
}

BenchmarkProfile BenchmarkProfile::by_name(const std::string& name) {
  for (const auto& p : parsec_suite()) {
    if (p.name == name) return p;
  }
  FLOV_CHECK(false, "unknown benchmark profile: " + name);
  return {};
}

}  // namespace flov
