#include "cmp/cmp_system.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "flov/flov_network.hpp"
#include "rp/rp_network.hpp"

namespace flov {

CmpSystem::CmpSystem(const CmpConfig& cfg) : cfg_(cfg) {
  cfg_.noc.num_vnets = 3;  // request / forward / response (Table I)
  const MeshGeometry geom(cfg_.noc.width, cfg_.noc.height);
  mc_tiles_ = {geom.id(0, 0), geom.id(geom.width() - 1, 0),
               geom.id(0, geom.height() - 1),
               geom.id(geom.width() - 1, geom.height() - 1)};

  // RP must never park the MC routers.
  std::vector<bool> always_on(geom.num_nodes(), false);
  for (NodeId m : mc_tiles_) always_on[m] = true;
  built_ = build_system(cfg_.scheme, cfg_.noc, cfg_.energy, always_on);
  if (auto* rp = dynamic_cast<RpNetwork*>(built_.system.get())) {
    rp->fabric_manager().set_min_epoch_gap(cfg_.rp_epoch_gap);
  }

  Rng seeder(cfg_.seed * 1299721 + 17);
  const int n = geom.num_nodes();

  // Thread placement: only active_fraction of the cores have work (seeded
  // random placement); the rest are gated by the OS from the start.
  std::vector<NodeId> order(n);
  for (NodeId t = 0; t < n; ++t) order[t] = t;
  seeder.shuffle(order);
  const int workers =
      std::max(1, static_cast<int>(cfg_.profile.active_fraction * n + 0.5));
  std::vector<int> worker_rank(n, -1);
  for (int i = 0; i < workers; ++i) worker_rank[order[i]] = i;

  auto send_fn = [this](const CoherenceMsg& m) { send(m); };
  for (NodeId t = 0; t < n; ++t) {
    l1s_.push_back(std::make_unique<L1Cache>(
        t, /*capacity_blocks=*/512, seeder.next_u64(), send_fn,
        [this](Addr a) { return home_of(a); }));
    std::uint64_t insts = 0;
    if (worker_rank[t] >= 0) {
      const double frac = workers > 1 ? static_cast<double>(worker_rank[t]) /
                                            static_cast<double>(workers - 1)
                                      : 0.0;
      insts = static_cast<std::uint64_t>(cfg_.profile.base_instructions *
                                         (1.0 - cfg_.profile.imbalance * frac));
    }
    cores_.push_back(std::make_unique<Core>(t, cfg_.profile, insts,
                                            seeder.next_u64(),
                                            l1s_.back().get()));
  }
  for (NodeId m : mc_tiles_) {
    banks_.push_back(
        std::make_unique<DirectoryBank>(m, cfg_.dir, send_fn));
    banks_.back()->set_gated_oracle(
        [this](NodeId c) { return built_.system->core_gated(c); });
  }
}

bool CmpSystem::is_mc_tile(NodeId n) const {
  return std::find(mc_tiles_.begin(), mc_tiles_.end(), n) != mc_tiles_.end();
}

int CmpSystem::bank_of(NodeId tile) const {
  for (std::size_t i = 0; i < mc_tiles_.size(); ++i) {
    if (mc_tiles_[i] == tile) return static_cast<int>(i);
  }
  FLOV_CHECK(false, "not an MC tile");
  return -1;
}

void CmpSystem::send(const CoherenceMsg& msg) {
  if (msg.src == msg.dst) {
    local_loop_.emplace_back(now_ + 1, msg);
    return;
  }
  std::uint64_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.front();
    free_ids_.pop_front();
    msg_table_[id] = msg;
  } else {
    id = msg_table_.size();
    msg_table_.push_back(msg);
  }
  PacketDescriptor p;
  p.src = msg.src;
  p.dest = msg.dst;
  p.vnet = vnet_of(msg.type);
  p.size_flits = flits_of(msg.type);
  p.gen_cycle = now_;
  p.payload = id;
  built_.system->network().enqueue(p);
}

void CmpSystem::deliver(const CoherenceMsg& msg) {
  const VnetId vnet = vnet_of(msg.type);
  const bool to_dir = (vnet == 0) || msg.type == MsgType::kDataToDir ||
                      msg.type == MsgType::kInvAck;
  if (to_dir) {
    banks_[bank_of(msg.dst)]->enqueue(msg);
  } else {
    l1s_[msg.dst]->on_message(msg);
  }
}

CmpResult CmpSystem::run() {
  NocSystem& sys = *built_.system;
  Network& net = sys.network();

  LatencyStats pkt_stats(/*router_pipeline_cycles=*/3);
  net.set_eject_callback([this, &pkt_stats](const PacketRecord& r) {
    pkt_stats.record(r);
    const CoherenceMsg msg = msg_table_[r.payload];
    free_ids_.push_back(r.payload);
    deliver(msg);
  });

  const int n = net.num_nodes();
  Cycle runtime = 0;
  int cores_done = 0;
  for (now_ = 0; now_ < cfg_.max_cycles; ++now_) {
    // Local (same-tile) deliveries.
    while (!local_loop_.empty() && local_loop_.front().first <= now_) {
      const CoherenceMsg m = local_loop_.front().second;
      local_loop_.pop_front();
      deliver(m);
    }
    for (NodeId t = 0; t < n; ++t) {
      if (cores_[t]->step(now_)) {
        ++cores_done;
        // OS gates the finished core — unless its tile hosts an MC, whose
        // router must stay reachable.
        if (!is_mc_tile(t)) sys.set_core_gated(t, true, now_);
      }
    }
    for (auto& b : banks_) b->step(now_);
    sys.step(now_);

    if (cores_done == n && runtime == 0) runtime = now_;
    if (cores_done == n) {
      bool banks_idle = true;
      for (auto& b : banks_) banks_idle &= b->idle();
      if (banks_idle && local_loop_.empty() && net.idle()) break;
    }
  }
  if (now_ >= cfg_.max_cycles) {
    // Stall diagnostics: identify what is stuck before aborting.
    std::fprintf(stderr, "[cmp stall] %s on %s: %d/%d cores done\n",
                 cfg_.profile.name.c_str(), sys.name(), cores_done, n);
    for (NodeId t = 0; t < n; ++t) {
      if (cores_[t]->done()) continue;
      std::fprintf(stderr,
                   "  core %d state=%d retired=%llu/%llu mshr=%d flush=%d\n",
                   t, static_cast<int>(cores_[t]->state()),
                   static_cast<unsigned long long>(cores_[t]->retired()),
                   static_cast<unsigned long long>(cores_[t]->instructions()),
                   l1s_[t]->miss_outstanding(), l1s_[t]->flushing());
    }
    for (std::size_t b = 0; b < banks_.size(); ++b) {
      std::fprintf(stderr, "  bank %zu idle=%d\n", b, banks_[b]->idle());
    }
    std::fprintf(stderr, "  net in_flight_empty=%d idle=%d queued=%llu\n",
                 net.in_flight_empty(), net.idle(),
                 static_cast<unsigned long long>(net.total_queued_packets()));
    for (NodeId t = 0; t < n; ++t) net.router(t).dump_occupancy(now_);
    // Trace a few more cycles to expose livelock loops.
    for (int extra = 0; extra < 40; ++extra) {
      for (auto& b : banks_) b->step(now_);
      sys.step(now_);
      ++now_;
      std::fprintf(stderr, " --- cycle %llu ---\n",
                   static_cast<unsigned long long>(now_));
      for (NodeId t = 0; t < n; ++t) net.router(t).dump_occupancy(now_);
    }
    if (auto* f = dynamic_cast<FlovNetwork*>(&sys)) {
      for (NodeId t = 0; t < n; ++t) {
        const PowerState s = f->hsc(t).state();
        if (s != PowerState::kActive && s != PowerState::kSleep) {
          std::fprintf(stderr, "  router %d hsc=%s\n", t, to_string(s));
        }
      }
    }
    FLOV_CHECK(false, std::string("CMP run hit the cycle bound: ") +
                          cfg_.profile.name + " on " + sys.name());
  }

  CmpResult r;
  r.benchmark = cfg_.profile.name;
  r.scheme = sys.name();
  r.runtime = runtime;
  r.drained = now_;
  r.power = built_.power->report(now_);
  r.avg_pkt_latency = pkt_stats.avg_latency();
  r.packets = pkt_stats.packets();
  for (const auto& l1 : l1s_) {
    r.l1_misses += l1->misses();
    r.l1_hits += l1->hits();
  }
  for (const auto& b : banks_) {
    r.dir_transactions += b->transactions();
    r.l2_misses += b->l2_misses();
  }
  for (NodeId t = 0; t < n; ++t) {
    if (sys.core_gated(t)) ++r.final_gated_cores;
  }
  return r;
}

CmpResult run_cmp(const CmpConfig& cfg) { return CmpSystem(cfg).run(); }

}  // namespace flov
