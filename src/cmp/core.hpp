// In-order, blocking core model.
//
// Retires one instruction per cycle while running; a memory instruction
// that misses in L1 stalls the core until the coherence transaction
// completes. When its instruction budget is exhausted the core flushes its
// L1 (writebacks + share-list notifications) and reports itself idle — the
// OS then power-gates the core, which is what drives the router
// power-gating schemes in the full-system experiments.
#pragma once

#include <cstdint>

#include "cmp/benchmark_profile.hpp"
#include "cmp/l1_cache.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace flov {

class Core {
 public:
  Core(NodeId tile, const BenchmarkProfile& profile,
       std::uint64_t instructions, std::uint64_t seed, L1Cache* l1);

  enum class State : std::uint8_t {
    kRunning = 0,
    kFlushing,  ///< work done, L1 flush in progress
    kIdle,      ///< flushed; OS may gate the core
  };

  /// One cycle of execution; returns true if the core just became idle
  /// (gate me now).
  bool step(Cycle now);

  State state() const { return state_; }
  bool done() const { return state_ == State::kIdle; }
  std::uint64_t retired() const { return retired_; }
  std::uint64_t instructions() const { return instructions_; }
  Cycle finish_cycle() const { return finish_cycle_; }

 private:
  Addr pick_address();

  NodeId tile_;
  BenchmarkProfile profile_;
  std::uint64_t instructions_;
  Rng rng_;
  L1Cache* l1_;

  State state_ = State::kRunning;
  std::uint64_t retired_ = 0;
  Cycle finish_cycle_ = 0;
};

}  // namespace flov
