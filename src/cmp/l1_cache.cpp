#include "cmp/l1_cache.hpp"

#include "common/log.hpp"

namespace flov {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kGetS: return "GetS";
    case MsgType::kGetM: return "GetM";
    case MsgType::kPutM: return "PutM";
    case MsgType::kPutE: return "PutE";
    case MsgType::kPutS: return "PutS";
    case MsgType::kFwdGetS: return "FwdGetS";
    case MsgType::kFwdGetM: return "FwdGetM";
    case MsgType::kInv: return "Inv";
    case MsgType::kData: return "Data";
    case MsgType::kDataToDir: return "DataToDir";
    case MsgType::kInvAck: return "InvAck";
    case MsgType::kPutAck: return "PutAck";
  }
  return "?";
}

L1Cache::L1Cache(NodeId tile, int capacity_blocks, std::uint64_t seed,
                 SendFn send, HomeFn home_of)
    : tile_(tile), capacity_(capacity_blocks), rng_(seed),
      send_(std::move(send)), home_of_(std::move(home_of)) {
  FLOV_CHECK(capacity_ > 0, "L1 capacity must be positive");
}

bool L1Cache::access(Addr addr, bool is_store) {
  FLOV_CHECK(!mshr_.has_value(), "access while miss outstanding");
  FLOV_CHECK(!flushing_, "access while flushing");
  auto it = blocks_.find(addr);
  if (it != blocks_.end()) {
    if (!is_store || it->second != L1State::kS) {
      // Loads hit in any state; stores hit in M, and in E with a silent
      // E -> M upgrade (the MESI payoff: no GetM for private data).
      if (is_store) it->second = L1State::kM;
      ++hits_;
      return true;
    }
    // S -> M upgrade: treated as a GetM miss (directory invalidates the
    // other sharers and returns M). Drop our S copy; data comes back.
    blocks_.erase(it);
  }
  ++misses_;
  mshr_ = Mshr{addr, is_store};
  CoherenceMsg m;
  m.type = is_store ? MsgType::kGetM : MsgType::kGetS;
  m.addr = addr;
  m.src = tile_;
  m.dst = home_of_(addr);
  m.requester = tile_;
  send_(m);
  return false;
}

void L1Cache::evict(Addr addr, L1State st) {
  CoherenceMsg m;
  m.addr = addr;
  m.src = tile_;
  m.dst = home_of_(addr);
  m.requester = tile_;
  if (st == L1State::kM) {
    m.type = MsgType::kPutM;  // dirty data travels back
    wb_pending_[addr] = true;
  } else if (st == L1State::kE) {
    // Clean-exclusive eviction: control-only, but acked and held in the
    // writeback-pending set so a racing Fwd can still be served.
    m.type = MsgType::kPutE;
    wb_pending_[addr] = true;
  } else {
    m.type = MsgType::kPutS;
  }
  send_(m);
}

void L1Cache::evict_one() {
  // Pseudo-random victim: advance a rolling index into the hash map.
  FLOV_CHECK(!blocks_.empty(), "evict from empty cache");
  auto it = blocks_.begin();
  std::advance(it, static_cast<long>(rng_.next_below(blocks_.size())));
  const Addr victim = it->first;
  const L1State st = it->second;
  blocks_.erase(it);
  evict(victim, st);
}

void L1Cache::on_message(const CoherenceMsg& msg) {
  switch (msg.type) {
    case MsgType::kData: {
      FLOV_CHECK(mshr_.has_value() && mshr_->addr == msg.addr,
                 "Data without matching MSHR");
      if (static_cast<int>(blocks_.size()) >= capacity_) evict_one();
      switch (msg.grant) {
        case Grant::kS: blocks_[msg.addr] = L1State::kS; break;
        case Grant::kE: blocks_[msg.addr] = L1State::kE; break;
        case Grant::kM: blocks_[msg.addr] = L1State::kM; break;
      }
      mshr_.reset();
      break;
    }
    case MsgType::kFwdGetS: {
      // We own the block (or its writeback is in flight): supply data to
      // the requester and the directory, downgrade to S.
      CoherenceMsg d;
      d.type = MsgType::kData;
      d.addr = msg.addr;
      d.src = tile_;
      d.dst = msg.requester;
      d.requester = msg.requester;
      d.grant = Grant::kS;
      send_(d);
      CoherenceMsg wb;
      wb.type = MsgType::kDataToDir;
      wb.addr = msg.addr;
      wb.src = tile_;
      wb.dst = msg.src;
      send_(wb);
      auto it = blocks_.find(msg.addr);
      if (it != blocks_.end()) it->second = L1State::kS;
      break;
    }
    case MsgType::kFwdGetM: {
      CoherenceMsg wb;
      wb.type = MsgType::kDataToDir;
      wb.addr = msg.addr;
      wb.src = tile_;
      wb.dst = msg.src;
      send_(wb);
      blocks_.erase(msg.addr);
      break;
    }
    case MsgType::kInv: {
      blocks_.erase(msg.addr);
      CoherenceMsg ack;
      ack.type = MsgType::kInvAck;
      ack.addr = msg.addr;
      ack.src = tile_;
      ack.dst = msg.src;
      send_(ack);
      break;
    }
    case MsgType::kPutAck:
      wb_pending_.erase(msg.addr);
      break;
    default:
      FLOV_CHECK(false, "unexpected message at L1");
  }
}

void L1Cache::begin_flush() {
  FLOV_CHECK(!flushing_, "double flush");
  flushing_ = true;
  flush_queue_.reserve(blocks_.size());
  for (const auto& [a, _] : blocks_) flush_queue_.push_back(a);
}

void L1Cache::flush_step() {
  if (flush_queue_.empty()) return;
  const Addr a = flush_queue_.back();
  flush_queue_.pop_back();
  auto it = blocks_.find(a);
  if (it == blocks_.end()) return;  // already invalidated by the protocol
  const L1State st = it->second;
  blocks_.erase(it);
  evict(a, st);
}

}  // namespace flov
