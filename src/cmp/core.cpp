#include "cmp/core.hpp"

namespace flov {
namespace {

/// Disjoint address regions: shared region at the bottom, then per-core
/// private regions.
Addr shared_base() { return 0; }

}  // namespace

Core::Core(NodeId tile, const BenchmarkProfile& profile,
           std::uint64_t instructions, std::uint64_t seed, L1Cache* l1)
    : tile_(tile), profile_(profile), instructions_(instructions),
      rng_(seed), l1_(l1) {}

Addr Core::pick_address() {
  if (rng_.next_bool(profile_.share_fraction)) {
    return shared_base() + rng_.next_below(profile_.shared_blocks);
  }
  const Addr priv_base =
      profile_.shared_blocks +
      static_cast<Addr>(tile_) * profile_.private_blocks;
  return priv_base + rng_.next_below(profile_.private_blocks);
}

bool Core::step(Cycle now) {
  switch (state_) {
    case State::kRunning: {
      if (l1_->miss_outstanding()) return false;  // stalled on memory
      if (retired_ >= instructions_) {
        state_ = State::kFlushing;
        l1_->begin_flush();
        return false;
      }
      ++retired_;
      if (rng_.next_bool(profile_.mem_access_rate)) {
        const bool store = rng_.next_bool(profile_.write_fraction);
        l1_->access(pick_address(), store);  // hit or start a miss
      }
      return false;
    }
    case State::kFlushing:
      l1_->flush_step();
      if (l1_->flush_done()) {
        state_ = State::kIdle;
        finish_cycle_ = now;
        return true;  // gate me
      }
      return false;
    case State::kIdle:
      return false;
  }
  return false;
}

}  // namespace flov
