#include "traffic/gating_scenario.hpp"

#include <algorithm>
#include <numeric>

#include "common/log.hpp"

namespace flov {

std::vector<bool> GatingScenario::random_mask(const MeshGeometry& geom,
                                              double fraction, Rng& rng) {
  const int n = geom.num_nodes();
  const int count = static_cast<int>(fraction * n + 0.5);
  FLOV_CHECK(count >= 0 && count < n, "gated fraction must leave a core on");
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  rng.shuffle(ids);
  std::vector<bool> mask(n, false);
  for (int i = 0; i < count; ++i) mask[ids[i]] = true;
  return mask;
}

GatingScenario GatingScenario::uniform_fraction(const MeshGeometry& geom,
                                                double fraction,
                                                std::uint64_t seed) {
  Rng rng(seed);
  return GatingScenario({Event{0, random_mask(geom, fraction, rng)}});
}

GatingScenario GatingScenario::epochs(const MeshGeometry& geom,
                                      double fraction,
                                      const std::vector<Cycle>& change_points,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> evs;
  evs.push_back(Event{0, random_mask(geom, fraction, rng)});
  for (Cycle c : change_points) {
    evs.push_back(Event{c, random_mask(geom, fraction, rng)});
  }
  return GatingScenario(std::move(evs));
}

void GatingScenario::apply(NocSystem& sys, Cycle now) {
  while (next_event_ < events_.size() && events_[next_event_].at <= now) {
    const Event& e = events_[next_event_];
    for (NodeId n = 0; n < static_cast<NodeId>(e.gated.size()); ++n) {
      if (current_.empty() || current_[n] != e.gated[n]) {
        sys.set_core_gated(n, e.gated[n], now);
      }
    }
    current_ = e.gated;
    ++next_event_;
  }
}

}  // namespace flov
