#include "traffic/traffic_pattern.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace flov {
namespace {

/// Validated deterministic target: active and not the source.
NodeId checked(NodeId src, NodeId dst, const std::vector<bool>& active) {
  if (dst == src || dst == kInvalidNode || !active[dst]) return kInvalidNode;
  return dst;
}

}  // namespace

std::unique_ptr<TrafficPattern> TrafficPattern::create(
    const std::string& name, const MeshGeometry& geom) {
  if (name == "uniform") return std::make_unique<UniformPattern>(geom);
  if (name == "tornado") return std::make_unique<TornadoPattern>(geom);
  if (name == "transpose") return std::make_unique<TransposePattern>(geom);
  if (name == "bitcomplement") {
    return std::make_unique<BitComplementPattern>(geom);
  }
  if (name == "neighbor") return std::make_unique<NeighborPattern>(geom);
  if (name == "hotspot") return std::make_unique<HotspotPattern>(geom);
  FLOV_CHECK(false, "unknown traffic pattern: " + name);
  return nullptr;
}

NodeId UniformPattern::dest(NodeId src, const std::vector<bool>& active,
                            Rng& rng) const {
  int count = 0;
  for (NodeId n = 0; n < geom_.num_nodes(); ++n) {
    if (active[n] && n != src) ++count;
  }
  if (count == 0) return kInvalidNode;
  int pick = static_cast<int>(rng.next_below(count));
  for (NodeId n = 0; n < geom_.num_nodes(); ++n) {
    if (active[n] && n != src) {
      if (pick == 0) return n;
      --pick;
    }
  }
  return kInvalidNode;
}

NodeId TornadoPattern::dest(NodeId src, const std::vector<bool>& active,
                            Rng& /*rng*/) const {
  const Coord c = geom_.coord(src);
  const int k = geom_.width();
  const int dx = (k + 1) / 2 - 1;  // ceil(k/2) - 1
  if (dx == 0) return kInvalidNode;
  return checked(src, geom_.id((c.x + dx) % k, c.y), active);
}

NodeId TransposePattern::dest(NodeId src, const std::vector<bool>& active,
                              Rng& /*rng*/) const {
  const Coord c = geom_.coord(src);
  if (c.x >= geom_.height() || c.y >= geom_.width()) return kInvalidNode;
  return checked(src, geom_.id(c.y, c.x), active);
}

NodeId BitComplementPattern::dest(NodeId src,
                                  const std::vector<bool>& active,
                                  Rng& /*rng*/) const {
  const int n = geom_.num_nodes();
  FLOV_CHECK((n & (n - 1)) == 0, "bitcomplement needs power-of-two nodes");
  return checked(src, (~src) & (n - 1), active);
}

NodeId NeighborPattern::dest(NodeId src, const std::vector<bool>& active,
                             Rng& /*rng*/) const {
  const Coord c = geom_.coord(src);
  return checked(src, geom_.id((c.x + 1) % geom_.width(), c.y), active);
}

HotspotPattern::HotspotPattern(const MeshGeometry& geom, double hot_fraction)
    : geom_(geom), hot_fraction_(hot_fraction), uniform_(geom) {
  hotspots_ = {geom.id(0, 0), geom.id(geom.width() - 1, 0),
               geom.id(0, geom.height() - 1),
               geom.id(geom.width() - 1, geom.height() - 1)};
}

NodeId HotspotPattern::dest(NodeId src, const std::vector<bool>& active,
                            Rng& rng) const {
  if (rng.next_bool(hot_fraction_)) {
    const NodeId h = hotspots_[rng.next_below(hotspots_.size())];
    const NodeId ok = (h != src && active[h]) ? h : kInvalidNode;
    if (ok != kInvalidNode) return ok;
  }
  return uniform_.dest(src, active, rng);
}

}  // namespace flov
