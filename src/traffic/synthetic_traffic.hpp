// Bernoulli packet generation over a traffic pattern.
//
// Injection rate is specified in flits/cycle/node (Table I / BookSim
// convention): each active core starts a `packet_size`-flit packet with
// probability rate / packet_size per cycle. Packets are generated even
// while RP stalls injections — they queue at the NI and age (queuing
// delay), which is exactly what Fig. 10 measures.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "noc/system_iface.hpp"
#include "traffic/traffic_pattern.hpp"

namespace flov {

class SyntheticTraffic {
 public:
  SyntheticTraffic(NocSystem* sys, const TrafficPattern* pattern,
                   double inj_rate_flits, int packet_size,
                   std::uint64_t seed);

  /// Generates this cycle's packets into the NI queues.
  void step(Cycle now);

  std::uint64_t generated_packets() const { return generated_; }
  std::uint64_t skipped_inactive_dest() const { return skipped_; }

 private:
  NocSystem* sys_;
  const TrafficPattern* pattern_;
  double packet_prob_;
  int packet_size_;
  std::vector<Rng> rngs_;  ///< one independent stream per node
  std::vector<bool> active_;
  std::uint64_t generated_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace flov
