// Core power-gating scenarios — the "OS" of the experiments.
//
// A scenario is a timeline of full gated-set replacements. The synthetic
// sweeps gate a seeded random fraction of cores at cycle 0 (Figs. 6-9);
// the reconfiguration study re-randomizes the gated set mid-run
// (Fig. 10: changes at 50k and 60k cycles).
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/system_iface.hpp"

namespace flov {

class GatingScenario {
 public:
  struct Event {
    Cycle at = 0;
    std::vector<bool> gated;  ///< full per-core mask
  };

  GatingScenario() = default;
  explicit GatingScenario(std::vector<Event> events)
      : events_(std::move(events)) {}

  /// Gate `fraction` of the cores (seeded random subset) from cycle 0.
  static GatingScenario uniform_fraction(const MeshGeometry& geom,
                                         double fraction, std::uint64_t seed);

  /// Fig. 10 scenario: `fraction` gated, set re-randomized at each cycle
  /// in `change_points`.
  static GatingScenario epochs(const MeshGeometry& geom, double fraction,
                               const std::vector<Cycle>& change_points,
                               std::uint64_t seed);

  /// Applies all events due at `now` to the system (idempotent per event).
  void apply(NocSystem& sys, Cycle now);

  /// Current gated mask as of the last applied event (empty if none yet).
  const std::vector<bool>& current() const { return current_; }
  const std::vector<Event>& events() const { return events_; }

 private:
  static std::vector<bool> random_mask(const MeshGeometry& geom,
                                       double fraction, Rng& rng);

  std::vector<Event> events_;
  std::size_t next_event_ = 0;
  std::vector<bool> current_;
};

}  // namespace flov
