// Synthetic traffic patterns.
//
// A pattern maps a source to a destination. Destinations are restricted to
// ACTIVE cores (the paper's model: power-gated cores neither send nor
// receive synthetic traffic; "communication occurs between two power-on
// nodes"). Deterministic patterns (tornado, transpose, ...) return
// kInvalidNode when their fixed target is gated — the source simply does
// not generate that packet.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace flov {

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  /// Destination for a packet from `src`, or kInvalidNode to skip.
  /// `active[n]` marks cores that may receive traffic.
  virtual NodeId dest(NodeId src, const std::vector<bool>& active,
                      Rng& rng) const = 0;

  virtual const char* name() const = 0;

  /// Factory: "uniform", "tornado", "transpose", "bitcomplement",
  /// "neighbor", "hotspot".
  static std::unique_ptr<TrafficPattern> create(const std::string& name,
                                                const MeshGeometry& geom);
};

/// Uniform random over active cores other than the source.
class UniformPattern final : public TrafficPattern {
 public:
  explicit UniformPattern(const MeshGeometry& geom) : geom_(geom) {}
  NodeId dest(NodeId src, const std::vector<bool>& active,
              Rng& rng) const override;
  const char* name() const override { return "uniform"; }

 private:
  const MeshGeometry& geom_;
};

/// Tornado: (x, y) -> ((x + ceil(k/2) - 1) mod k, y) — same-row pressure.
class TornadoPattern final : public TrafficPattern {
 public:
  explicit TornadoPattern(const MeshGeometry& geom) : geom_(geom) {}
  NodeId dest(NodeId src, const std::vector<bool>& active,
              Rng& rng) const override;
  const char* name() const override { return "tornado"; }

 private:
  const MeshGeometry& geom_;
};

/// Transpose: (x, y) -> (y, x).
class TransposePattern final : public TrafficPattern {
 public:
  explicit TransposePattern(const MeshGeometry& geom) : geom_(geom) {}
  NodeId dest(NodeId src, const std::vector<bool>& active,
              Rng& rng) const override;
  const char* name() const override { return "transpose"; }

 private:
  const MeshGeometry& geom_;
};

/// Bit-complement on the node id (requires power-of-two node count).
class BitComplementPattern final : public TrafficPattern {
 public:
  explicit BitComplementPattern(const MeshGeometry& geom) : geom_(geom) {}
  NodeId dest(NodeId src, const std::vector<bool>& active,
              Rng& rng) const override;
  const char* name() const override { return "bitcomplement"; }

 private:
  const MeshGeometry& geom_;
};

/// Nearest-neighbor ring within the row: (x, y) -> ((x + 1) mod k, y).
class NeighborPattern final : public TrafficPattern {
 public:
  explicit NeighborPattern(const MeshGeometry& geom) : geom_(geom) {}
  NodeId dest(NodeId src, const std::vector<bool>& active,
              Rng& rng) const override;
  const char* name() const override { return "neighbor"; }

 private:
  const MeshGeometry& geom_;
};

/// A fraction of traffic targets the four corner nodes (MC-like hotspots);
/// the rest is uniform.
class HotspotPattern final : public TrafficPattern {
 public:
  HotspotPattern(const MeshGeometry& geom, double hot_fraction = 0.3);
  NodeId dest(NodeId src, const std::vector<bool>& active,
              Rng& rng) const override;
  const char* name() const override { return "hotspot"; }

 private:
  const MeshGeometry& geom_;
  double hot_fraction_;
  std::vector<NodeId> hotspots_;
  UniformPattern uniform_;
};

}  // namespace flov
