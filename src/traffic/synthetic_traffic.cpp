#include "traffic/synthetic_traffic.hpp"

#include "common/log.hpp"

namespace flov {

SyntheticTraffic::SyntheticTraffic(NocSystem* sys,
                                   const TrafficPattern* pattern,
                                   double inj_rate_flits, int packet_size,
                                   std::uint64_t seed)
    : sys_(sys),
      pattern_(pattern),
      packet_prob_(inj_rate_flits / packet_size),
      packet_size_(packet_size) {
  FLOV_CHECK(packet_prob_ <= 1.0, "injection rate exceeds 1 packet/cycle");
  Rng seeder(seed);
  const int n = sys_->network().num_nodes();
  rngs_.reserve(n);
  for (int i = 0; i < n; ++i) rngs_.push_back(seeder.split());
  active_.assign(n, true);
}

void SyntheticTraffic::step(Cycle now) {
  const int n = sys_->network().num_nodes();
  for (NodeId i = 0; i < n; ++i) active_[i] = !sys_->core_gated(i);
  for (NodeId src = 0; src < n; ++src) {
    if (!active_[src]) continue;
    if (!rngs_[src].next_bool(packet_prob_)) continue;
    const NodeId dst = pattern_->dest(src, active_, rngs_[src]);
    if (dst == kInvalidNode) {
      ++skipped_;
      continue;
    }
    PacketDescriptor p;
    p.src = src;
    p.dest = dst;
    p.vnet = 0;
    p.size_flits = packet_size_;
    p.gen_cycle = now;
    sys_->network().enqueue(p);
    ++generated_;
  }
}

}  // namespace flov
