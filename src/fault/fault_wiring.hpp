// Shared glue between a FaultInjector and a Network's link channels.
//
// Every scheme (FLOV, RP, Baseline) arms faults the same way: each
// inter-router flit channel gets a fate hook keyed by
// link_key = node * 4 + dir_index(dir) (the sender side of the directed
// link), and dropped flits are reported back to the network so its cached
// in-flight count stays truthful. Local NI channels and credit wires stay
// reliable: credit loss without a credit-recovery protocol would be an
// unrecoverable leak, not an interesting fault.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "fault/fault_injector.hpp"

namespace flov {

class Network;

/// Directed-link fate key of `node`'s outgoing channel toward `d`.
inline std::uint32_t link_fate_key(NodeId node, Direction d) {
  return static_cast<std::uint32_t>(node) * 4u +
         static_cast<std::uint32_t>(dir_index(d));
}

/// Installs the per-flit fault hook on every inter-router flit channel.
void arm_link_faults(Network& net, FaultInjector& fault);

/// Evaluates the hard-fault fate of every directed inter-router link and
/// writes the link_key-indexed mask (size num_nodes * 4). Returns the
/// number of dead directed links.
int mark_dead_links(const Network& net, const FaultInjector& fault,
                    std::vector<char>& mask);

}  // namespace flov
