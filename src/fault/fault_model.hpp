// Fault model for the FLOV control and data planes.
//
// The paper assumes perfectly reliable out-of-band handshake wires and
// links. This module relaxes that: every handshake-signal hop and every
// inter-router flit traversal can independently be dropped, delayed or
// (signals only) duplicated, and spurious WakeupTriggers can fire — all
// driven by a seeded deterministic RNG so any failing run replays exactly.
// Rates are per-event probabilities; everything defaults to 0 (disabled),
// and a disabled model installs no hooks at all (zero cost on hot paths).
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"

namespace flov {

struct FaultParams {
  // --- handshake-signal faults, applied per hop ---
  double signal_drop_rate = 0.0;
  double signal_delay_rate = 0.0;
  Cycle signal_delay_max = 4;  ///< extra cycles, uniform in [1, max]
  double signal_dup_rate = 0.0;

  // --- data-plane faults, applied per link traversal ---
  /// Flit loss is diagnostic-only: there is no retransmission layer, so a
  /// dropped flit loses its packet (the verifier exempts it from the
  /// conservation check instead of flagging a violation).
  double flit_drop_rate = 0.0;
  double flit_delay_rate = 0.0;
  Cycle flit_delay_max = 4;

  /// Per-cycle probability of a spurious WakeupTrigger at a random router.
  double spurious_wakeup_rate = 0.0;

  // --- soft errors (seeded bit flips; certification fault axis) ---
  /// Per-link-traversal probability that one bit of the flit's payload
  /// word flips in transit. Routing/protocol metadata is never touched —
  /// the payload is opaque to the NoC, so a flip is a pure data-integrity
  /// fault: the packet still delivers, but delivers CORRUPTED (tracked per
  /// packet; see RunResult::packets_corrupted and the certify harness's
  /// clean-delivery metric). Fates are stateless hashes of
  /// (seed, packet, flit, link): thread-schedule-independent.
  double soft_flit_flip_rate = 0.0;
  /// Per-signal-hop probability that the PSR-carrying field of a handshake
  /// message is corrupted in transit: kSleepNotify's logical_beyond or
  /// kWakeupTrigger's target is rewritten to a different (valid or
  /// invalid) node id. Protocol framing (type/epoch/travel) is never
  /// corrupted — that would model a broken router, not a noisy wire. The
  /// control plane's recovery layers (sleep re-announce, stale-block
  /// expiry, trigger retry) are what certification exercises here.
  double soft_psr_flip_rate = 0.0;

  // --- permanent (hard) faults ---
  /// At cycle `hard_at_cycle` a seeded subset of routers/links dies and
  /// stays dead for the rest of the run. Fates are pure hashes of
  /// (seed, router id) / (seed, link key), so they are identical across
  /// thread counts and across schemes sharing a seed. Rates are the
  /// per-router / per-directed-link death probabilities. hard_at_cycle == 0
  /// disarms hard faults entirely (cycle 0 never steps a death).
  double hard_router_pct = 0.0;
  double hard_link_pct = 0.0;
  Cycle hard_at_cycle = 0;

  std::uint64_t seed = 1;

  bool hard_faults_armed() const {
    return hard_at_cycle > 0 && (hard_router_pct > 0.0 || hard_link_pct > 0.0);
  }

  bool soft_errors_armed() const {
    return soft_flit_flip_rate > 0.0 || soft_psr_flip_rate > 0.0;
  }

  bool any() const {
    return signal_drop_rate > 0.0 || signal_delay_rate > 0.0 ||
           signal_dup_rate > 0.0 || flit_drop_rate > 0.0 ||
           flit_delay_rate > 0.0 || spurious_wakeup_rate > 0.0 ||
           soft_errors_armed() || hard_faults_armed();
  }

  static FaultParams from_config(const Config& cfg) {
    FaultParams p;
    p.signal_drop_rate =
        cfg.get_double("fault.signal_drop_rate", p.signal_drop_rate);
    p.signal_delay_rate =
        cfg.get_double("fault.signal_delay_rate", p.signal_delay_rate);
    p.signal_delay_max =
        cfg.get_int("fault.signal_delay_max", p.signal_delay_max);
    p.signal_dup_rate =
        cfg.get_double("fault.signal_dup_rate", p.signal_dup_rate);
    p.flit_drop_rate =
        cfg.get_double("fault.flit_drop_rate", p.flit_drop_rate);
    p.flit_delay_rate =
        cfg.get_double("fault.flit_delay_rate", p.flit_delay_rate);
    p.flit_delay_max = cfg.get_int("fault.flit_delay_max", p.flit_delay_max);
    p.spurious_wakeup_rate =
        cfg.get_double("fault.spurious_wakeup_rate", p.spurious_wakeup_rate);
    p.soft_flit_flip_rate =
        cfg.get_double("fault.soft_flit_flip_rate", p.soft_flit_flip_rate);
    p.soft_psr_flip_rate =
        cfg.get_double("fault.soft_psr_flip_rate", p.soft_psr_flip_rate);
    p.hard_router_pct =
        cfg.get_double("fault.hard_router_pct", p.hard_router_pct);
    p.hard_link_pct = cfg.get_double("fault.hard_link_pct", p.hard_link_pct);
    p.hard_at_cycle = cfg.get_int("fault.hard_at_cycle", p.hard_at_cycle);
    p.seed = static_cast<std::uint64_t>(cfg.get_int("fault.seed", 1));
    return p;
  }

  /// Writes every fault.* knob back into `cfg` with its resolved value, so
  /// run manifests carry the full fault configuration even for defaulted
  /// knobs (validate_telemetry.py --diff-manifests then catches a silently
  /// defaulted fault setting differing between two runs).
  void echo_to_config(Config& cfg) const {
    cfg.set("fault.signal_drop_rate", signal_drop_rate);
    cfg.set("fault.signal_delay_rate", signal_delay_rate);
    cfg.set("fault.signal_delay_max", static_cast<long long>(signal_delay_max));
    cfg.set("fault.signal_dup_rate", signal_dup_rate);
    cfg.set("fault.flit_drop_rate", flit_drop_rate);
    cfg.set("fault.flit_delay_rate", flit_delay_rate);
    cfg.set("fault.flit_delay_max", static_cast<long long>(flit_delay_max));
    cfg.set("fault.spurious_wakeup_rate", spurious_wakeup_rate);
    cfg.set("fault.soft_flit_flip_rate", soft_flit_flip_rate);
    cfg.set("fault.soft_psr_flip_rate", soft_psr_flip_rate);
    cfg.set("fault.hard_router_pct", hard_router_pct);
    cfg.set("fault.hard_link_pct", hard_link_pct);
    cfg.set("fault.hard_at_cycle", static_cast<long long>(hard_at_cycle));
    cfg.set("fault.seed", static_cast<long long>(seed));
  }
};

}  // namespace flov
