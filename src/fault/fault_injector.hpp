// Deterministic fault injector (see fault_model.hpp for the model).
//
// One instance per system, shared by the SignalFabric (signal fates) and
// the inter-router flit channels (flit fates, via Channel fault hooks).
// Distinct RNG substreams per fault class keep each class's decision
// sequence independent of how often the other classes are consulted.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault_model.hpp"
#include "noc/flit.hpp"

namespace flov {

struct HsMessage;

class FaultInjector {
 public:
  struct Counters {
    std::uint64_t signals_dropped = 0;
    std::uint64_t signals_delayed = 0;
    std::uint64_t signals_duplicated = 0;
    /// Flit-fate counters are atomic: the channel fault hooks run on the
    /// sending router's domain worker during parallel stepping. Relaxed
    /// increments suffice — each flit's fate is schedule-independent, so
    /// the totals are exact either way; the step barrier publishes them.
    std::atomic<std::uint64_t> flits_dropped{0};
    std::atomic<std::uint64_t> flits_delayed{0};
    std::uint64_t spurious_wakeups = 0;
    /// Subset of flits_dropped destroyed by hard faults (dead links on the
    /// wire + flits consumed by dead routers / dead NI queues).
    std::atomic<std::uint64_t> hard_killed{0};
    /// Soft errors: payload bit flips happen inside channel fault hooks
    /// (domain workers → atomic); PSR flips happen on the serial
    /// control-plane signal fabric (plain counter, like signals_*).
    std::atomic<std::uint64_t> payload_flips{0};
    std::uint64_t psr_flips = 0;
  };

  FaultInjector(const FaultParams& params, int num_nodes);

  const FaultParams& params() const { return params_; }
  const Counters& counters() const { return counters_; }

  // --- signal fates (one decision per hop) ---
  bool drop_signal(const HsMessage& msg);
  /// Extra delivery delay for this hop (0 = on time).
  Cycle signal_extra_delay();
  bool duplicate_signal(const HsMessage& msg);

  /// Flit fate for one traversal of the link identified by `link_key`
  /// (sender id * 4 + direction): nullopt = dropped on the wire, otherwise
  /// the extra delay in cycles (usually 0). Stateless by design: the fate
  /// is a pure hash of (seed, packet, link[, flit, cycle]), so it does not
  /// depend on the global order links consult the injector in — the
  /// property domain-parallel stepping needs. May be called concurrently
  /// from domain workers.
  std::optional<Cycle> flit_fate(const Flit& f, std::uint32_t link_key,
                                 Cycle now);

  /// Spurious wakeup roll for this cycle; kInvalidNode when none fires.
  NodeId spurious_wakeup_target(Cycle now);

  // --- soft errors (seeded bit flips) ---
  /// Payload-corruption fate for one traversal of `link_key`: 0 = clean,
  /// otherwise a single-bit XOR mask for the flit's payload word. Stateless
  /// hash of (seed, packet, flit, link) — safe from domain workers, like
  /// flit_fate. A non-zero return has already recorded the packet as
  /// corrupted and bumped the counter; the caller just applies the mask.
  std::uint64_t payload_flip_mask(const Flit& f, std::uint32_t link_key);

  /// PSR-corruption fate for one signal hop: rewrites msg.logical_beyond
  /// (kSleepNotify) or msg.target (kWakeupTrigger) to a different node id —
  /// possibly kInvalidNode — and returns true. Other message types never
  /// corrupt (they carry no PSR payload). Serial control-plane callers only.
  bool corrupt_signal(HsMessage& msg, Cycle now);

  /// Packets whose payload took at least one bit flip in transit: they
  /// deliver, but deliver corrupted (the certify harness's clean-delivery
  /// metric subtracts them). Serial control-plane callers only — runs
  /// between step barriers, which publish the workers' inserts.
  bool packet_corrupted(std::uint64_t packet_id) const {
    return corrupted_packets_.count(packet_id) != 0;
  }

  // --- hard-fault fates (pure hashes: thread-schedule-independent) ---
  /// True when hard faults are armed and router `id` is fated to die at
  /// params().hard_at_cycle. Scheme layers apply their own exemptions on
  /// top (FLOV never kills the always-on column; see flov_network.cpp).
  bool router_dies(NodeId id) const;
  /// Directed-link death fate, keyed like flit_fate (sender*4 + dir). A
  /// dead link silently eats every flit sent after hard_at_cycle.
  bool link_dies(std::uint32_t link_key) const;
  Cycle hard_at() const { return params_.hard_at_cycle; }

  /// Accounts one flit destroyed by a hard fault (dead router sinking an
  /// arriving flit, or a dead NI purging its queue). Packet-coherent
  /// bookkeeping: the whole packet is marked faulted so the verifier
  /// exempts it. Safe from domain workers.
  void note_hard_killed(const Flit& f);

  /// Packets that lost at least one flit to a drop fault (the verifier
  /// exempts them from exact conservation). Serial control-plane callers
  /// only — runs between step barriers, which publish the workers' inserts.
  bool packet_faulted(std::uint64_t packet_id) const {
    return dropped_packets_.count(packet_id) != 0;
  }
  std::uint64_t dropped_flits() const { return counters_.flits_dropped; }
  std::uint64_t hard_killed_flits() const { return counters_.hard_killed; }

 private:
  FaultParams params_;
  int num_nodes_;
  Rng signal_rng_;
  Rng spurious_rng_;
  std::uint64_t flit_drop_seed_;
  std::uint64_t flit_delay_seed_;
  std::uint64_t hard_seed_;
  std::uint64_t soft_flit_seed_;
  std::uint64_t soft_psr_seed_;
  Counters counters_;
  /// Guards dropped_packets_ against concurrent inserts from domain
  /// workers (head-drop bookkeeping only — never on the fault-free path).
  std::mutex dropped_packets_mu_;
  std::unordered_set<std::uint64_t> dropped_packets_;
  /// Guards corrupted_packets_ against concurrent inserts from domain
  /// workers (payload flips only — never on the fault-free path).
  std::mutex corrupted_packets_mu_;
  std::unordered_set<std::uint64_t> corrupted_packets_;
  /// Worm-coherence grace for dying links: (packet, link) pairs whose HEAD
  /// crossed the link before hard_at_cycle. Their body/tail flits pass even
  /// after the death cycle — eating them mid-worm would leave a tail-less
  /// fragment downstream that wedges every VC it holds forever. Entries are
  /// erased when the tail crosses; mutations for a given link all come from
  /// the sending router's own step, so the set is schedule-independent.
  std::mutex link_grace_mu_;
  std::unordered_set<std::uint64_t> link_grace_;
};

}  // namespace flov
