// Deterministic fault injector (see fault_model.hpp for the model).
//
// One instance per system, shared by the SignalFabric (signal fates) and
// the inter-router flit channels (flit fates, via Channel fault hooks).
// Distinct RNG substreams per fault class keep each class's decision
// sequence independent of how often the other classes are consulted.
#pragma once

#include <memory>
#include <optional>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault_model.hpp"
#include "noc/flit.hpp"

namespace flov {

struct HsMessage;

class FaultInjector {
 public:
  struct Counters {
    std::uint64_t signals_dropped = 0;
    std::uint64_t signals_delayed = 0;
    std::uint64_t signals_duplicated = 0;
    std::uint64_t flits_dropped = 0;
    std::uint64_t flits_delayed = 0;
    std::uint64_t spurious_wakeups = 0;
  };

  FaultInjector(const FaultParams& params, int num_nodes);

  const FaultParams& params() const { return params_; }
  const Counters& counters() const { return counters_; }

  // --- signal fates (one decision per hop) ---
  bool drop_signal(const HsMessage& msg);
  /// Extra delivery delay for this hop (0 = on time).
  Cycle signal_extra_delay();
  bool duplicate_signal(const HsMessage& msg);

  /// Flit fate for one link traversal: nullopt = dropped on the wire,
  /// otherwise the extra delay in cycles (usually 0).
  std::optional<Cycle> flit_fate(const Flit& f);

  /// Spurious wakeup roll for this cycle; kInvalidNode when none fires.
  NodeId spurious_wakeup_target(Cycle now);

  /// Packets that lost at least one flit to a drop fault (the verifier
  /// exempts them from exact conservation).
  bool packet_faulted(std::uint64_t packet_id) const {
    return dropped_packets_.count(packet_id) != 0;
  }
  std::uint64_t dropped_flits() const { return counters_.flits_dropped; }

 private:
  FaultParams params_;
  int num_nodes_;
  Rng signal_rng_;
  Rng flit_rng_;
  Rng spurious_rng_;
  Counters counters_;
  std::unordered_set<std::uint64_t> dropped_packets_;
};

}  // namespace flov
