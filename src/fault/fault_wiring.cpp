#include "fault/fault_wiring.hpp"

#include <optional>

#include "noc/network.hpp"
#include "telemetry/trace.hpp"

namespace flov {

void arm_link_faults(Network& net, FaultInjector& fault) {
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    for (Direction d : kMeshDirections) {
      auto* ch = net.flit_channel(id, d);
      if (!ch) continue;
      const std::uint32_t link_key = link_fate_key(id, d);
      // On a drop, tell the network (the flit was counted as injected but
      // will never eject, and the cached in-network count must not keep
      // carrying it) and refund the sender's credit — the downstream
      // buffer never sees the flit, and a dead link that leaked a credit
      // per kill would wedge its output VC permanently.
      ch->set_fault_hook([f = &fault, n = &net, id, d, link_key](
                             Cycle now, Flit& flit) -> std::optional<Cycle> {
        const std::optional<Cycle> fate = f->flit_fate(flit, link_key, now);
        if (!fate.has_value()) {
          n->note_flit_dropped(id);
          n->router(id).refund_output_credit(d, flit.vc, now);
          FLOV_TRACE(telemetry::kTraceFault,
                     telemetry::TraceEventType::kFaultFlitDrop, now, id,
                     flit.packet_id, flit.flit_index);
          return fate;
        }
        // Survivors can still take a soft error: one payload bit flips in
        // transit. Routing metadata is untouched — the flit delivers, the
        // packet is just marked corrupted.
        if (const std::uint64_t flip = f->payload_flip_mask(flit, link_key)) {
          flit.payload ^= flip;
          FLOV_TRACE(telemetry::kTraceFault,
                     telemetry::TraceEventType::kFaultPayloadFlip, now, id,
                     flit.packet_id, flit.flit_index);
        }
        if (*fate > 0) {
          FLOV_TRACE(telemetry::kTraceFault,
                     telemetry::TraceEventType::kFaultFlitDelay, now, id,
                     flit.packet_id, *fate);
        }
        return fate;
      });
    }
  }
}

int mark_dead_links(const Network& net, const FaultInjector& fault,
                    std::vector<char>& mask) {
  mask.assign(static_cast<std::size_t>(net.num_nodes()) * 4, 0);
  int dead = 0;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    for (Direction d : kMeshDirections) {
      if (net.geom().neighbor(id, d) == kInvalidNode) continue;
      const std::uint32_t key = link_fate_key(id, d);
      if (fault.link_dies(key)) {
        mask[key] = 1;
        dead++;
      }
    }
  }
  return dead;
}

}  // namespace flov
