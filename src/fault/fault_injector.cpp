#include "fault/fault_injector.hpp"

#include "common/log.hpp"
#include "flov/handshake_signals.hpp"

namespace flov {

FaultInjector::FaultInjector(const FaultParams& params, int num_nodes)
    : params_(params),
      num_nodes_(num_nodes),
      signal_rng_(params.seed * 0x9E3779B97F4A7C15ull + 1),
      spurious_rng_(params.seed * 0x94D049BB133111EBull + 3),
      flit_drop_seed_(mix_u64(params.seed * 0xBF58476D1CE4E5B9ull + 2)),
      flit_delay_seed_(mix_u64(params.seed * 0xBF58476D1CE4E5B9ull + 4)),
      hard_seed_(mix_u64(params.seed * 0x2545F4914F6CDD1Dull + 5)),
      soft_flit_seed_(mix_u64(params.seed * 0xD6E8FEB86659FD93ull + 6)),
      soft_psr_seed_(mix_u64(params.seed * 0xA24BAED4963EE407ull + 7)) {
  FLOV_CHECK(num_nodes_ > 0, "fault injector needs a non-empty mesh");
  FLOV_CHECK(params_.signal_delay_max >= 1 && params_.flit_delay_max >= 1,
             "fault delay maxima must be >= 1 cycle");
}

bool FaultInjector::drop_signal(const HsMessage& msg) {
  (void)msg;
  if (params_.signal_drop_rate <= 0.0) return false;
  if (!signal_rng_.next_bool(params_.signal_drop_rate)) return false;
  counters_.signals_dropped++;
  return true;
}

Cycle FaultInjector::signal_extra_delay() {
  if (params_.signal_delay_rate <= 0.0) return 0;
  if (!signal_rng_.next_bool(params_.signal_delay_rate)) return 0;
  counters_.signals_delayed++;
  return 1 + signal_rng_.next_below(params_.signal_delay_max);
}

bool FaultInjector::duplicate_signal(const HsMessage& msg) {
  (void)msg;
  if (params_.signal_dup_rate <= 0.0) return false;
  if (!signal_rng_.next_bool(params_.signal_dup_rate)) return false;
  counters_.signals_duplicated++;
  return true;
}

bool FaultInjector::router_dies(NodeId id) const {
  if (!params_.hard_faults_armed() || params_.hard_router_pct <= 0.0) {
    return false;
  }
  return hash_bool(hash_mix(hard_seed_, 0x52000000ull +
                                            static_cast<std::uint64_t>(id)),
                   params_.hard_router_pct);
}

bool FaultInjector::link_dies(std::uint32_t link_key) const {
  if (!params_.hard_faults_armed() || params_.hard_link_pct <= 0.0) {
    return false;
  }
  return hash_bool(hash_mix(hard_seed_, 0x4C000000ull + link_key),
                   params_.hard_link_pct);
}

void FaultInjector::note_hard_killed(const Flit& f) {
  counters_.flits_dropped.fetch_add(1, std::memory_order_relaxed);
  counters_.hard_killed.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(dropped_packets_mu_);
  dropped_packets_.insert(f.packet_id);
}

std::optional<Cycle> FaultInjector::flit_fate(const Flit& f,
                                              std::uint32_t link_key,
                                              Cycle now) {
  // A dead link eats everything sent after the death cycle — except the
  // remainder of a worm whose head already crossed before the link died.
  // Link death must be worm-coherent: eating only the rest of an in-flight
  // worm would strand a tail-less fragment downstream whose VC allocations
  // (and the destination's reassembly slot) never release. The grace set
  // records (packet, link) pairs earned by a pre-death head crossing and
  // is retired by the tail. Checked before the transient rolls so
  // transient streams stay aligned with a hard-fault-free run up to
  // hard_at_cycle (stateless hashes: consulting order never matters).
  if (params_.hard_faults_armed() && link_dies(link_key)) {
    const std::uint64_t gkey = f.packet_id * 0x10000ull + link_key;
    bool killed_here = false;
    {
      std::lock_guard<std::mutex> lock(link_grace_mu_);
      if (now >= params_.hard_at_cycle) {
        // No pre-death head crossing on record: the whole worm dies here
        // (its head either dies now or already died on this link). A
        // graced flit instead falls through to the transient rolls below,
        // which by packet-coherence repeat the verdict its head survived.
        killed_here = link_grace_.count(gkey) == 0;
        if (f.tail) link_grace_.erase(gkey);
      } else {
        if (f.head && !f.tail) link_grace_.insert(gkey);
        if (f.tail) link_grace_.erase(gkey);
      }
    }
    if (killed_here) {
      note_hard_killed(f);
      return std::nullopt;
    }
  }
  // Drops are packet-coherent per link: the fate is a pure hash of
  // (seed, packet, link), so EVERY flit of a worm rolls the same fate at a
  // given link — the head dies on the wire and the body flits that follow
  // it there are swallowed by the same roll. A mid-packet hole would wedge
  // wormhole VC state machines — a headless body has no route, a tail-less
  // worm never frees its VC — which is router corruption, not a wire fault.
  // (Flits of the packet pass earlier links because the head passed those
  // same per-link rolls too.)
  if (params_.flit_drop_rate > 0.0) {
    const std::uint64_t h =
        hash_mix(hash_mix(flit_drop_seed_, f.packet_id), link_key);
    if (hash_bool(h, params_.flit_drop_rate)) {
      counters_.flits_dropped.fetch_add(1, std::memory_order_relaxed);
      if (f.head) {
        std::lock_guard<std::mutex> lock(dropped_packets_mu_);
        dropped_packets_.insert(f.packet_id);
      }
      return std::nullopt;
    }
  }
  if (params_.flit_delay_rate > 0.0) {
    const std::uint64_t h = hash_mix(
        hash_mix(hash_mix(hash_mix(flit_delay_seed_, f.packet_id),
                          static_cast<std::uint64_t>(f.flit_index)),
                 link_key),
        static_cast<std::uint64_t>(now));
    if (hash_bool(h, params_.flit_delay_rate)) {
      counters_.flits_delayed.fetch_add(1, std::memory_order_relaxed);
      return 1 + static_cast<Cycle>(
                     mix_u64(h) %
                     static_cast<std::uint64_t>(params_.flit_delay_max));
    }
  }
  return Cycle{0};
}

std::uint64_t FaultInjector::payload_flip_mask(const Flit& f,
                                               std::uint32_t link_key) {
  if (params_.soft_flit_flip_rate <= 0.0) return 0;
  // Keyed per (packet, flit, link): a retransmitted copy has a fresh
  // packet_id, so it re-rolls — exactly what a wire-noise model should do.
  const std::uint64_t h =
      hash_mix(hash_mix(hash_mix(soft_flit_seed_, f.packet_id),
                        static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(f.flit_index))),
               link_key);
  if (!hash_bool(h, params_.soft_flit_flip_rate)) return 0;
  counters_.payload_flips.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(corrupted_packets_mu_);
    corrupted_packets_.insert(f.packet_id);
  }
  return 1ull << (mix_u64(h) & 63);
}

bool FaultInjector::corrupt_signal(HsMessage& msg, Cycle now) {
  if (params_.soft_psr_flip_rate <= 0.0) return false;
  // Only the PSR-carrying fields are corruptible; framing is sacred.
  NodeId* field = nullptr;
  switch (msg.type) {
    case HsType::kSleepNotify: field = &msg.logical_beyond; break;
    case HsType::kWakeupTrigger: field = &msg.target; break;
    default: return false;
  }
  // Keyed per hop: the same message forwarded across the mesh rolls a
  // fresh fate at every hop (`now` advances one cycle per hop), like the
  // physical wire segments it models.
  const std::uint64_t h = hash_mix(
      hash_mix(hash_mix(hash_mix(soft_psr_seed_,
                                 static_cast<std::uint64_t>(msg.from)),
                        static_cast<std::uint64_t>(msg.type)),
               hash_mix(static_cast<std::uint64_t>(msg.target),
                        static_cast<std::uint64_t>(msg.logical_beyond))),
      hash_mix(static_cast<std::uint64_t>(msg.epoch),
               static_cast<std::uint64_t>(now)));
  if (!hash_bool(h, params_.soft_psr_flip_rate)) return false;
  // Rewrite to a uniformly chosen DIFFERENT value from the node-id domain
  // plus kInvalidNode (a flip can turn a valid id into garbage the
  // receiver treats as "none").
  const std::uint64_t domain = static_cast<std::uint64_t>(num_nodes_) + 1;
  const NodeId original = *field;
  std::uint64_t pick = mix_u64(h) % domain;
  NodeId corrupted =
      pick == static_cast<std::uint64_t>(num_nodes_)
          ? kInvalidNode
          : static_cast<NodeId>(pick);
  if (corrupted == original) {
    pick = (pick + 1) % domain;
    corrupted = pick == static_cast<std::uint64_t>(num_nodes_)
                    ? kInvalidNode
                    : static_cast<NodeId>(pick);
  }
  *field = corrupted;
  counters_.psr_flips++;
  return true;
}

NodeId FaultInjector::spurious_wakeup_target(Cycle now) {
  (void)now;
  if (params_.spurious_wakeup_rate <= 0.0) return kInvalidNode;
  if (!spurious_rng_.next_bool(params_.spurious_wakeup_rate)) {
    return kInvalidNode;
  }
  counters_.spurious_wakeups++;
  return static_cast<NodeId>(
      spurious_rng_.next_below(static_cast<std::uint64_t>(num_nodes_)));
}

}  // namespace flov
