#include "fault/fault_injector.hpp"

#include "common/log.hpp"
#include "flov/handshake_signals.hpp"

namespace flov {

FaultInjector::FaultInjector(const FaultParams& params, int num_nodes)
    : params_(params),
      num_nodes_(num_nodes),
      signal_rng_(params.seed * 0x9E3779B97F4A7C15ull + 1),
      flit_rng_(params.seed * 0xBF58476D1CE4E5B9ull + 2),
      spurious_rng_(params.seed * 0x94D049BB133111EBull + 3) {
  FLOV_CHECK(num_nodes_ > 0, "fault injector needs a non-empty mesh");
  FLOV_CHECK(params_.signal_delay_max >= 1 && params_.flit_delay_max >= 1,
             "fault delay maxima must be >= 1 cycle");
}

bool FaultInjector::drop_signal(const HsMessage& msg) {
  (void)msg;
  if (params_.signal_drop_rate <= 0.0) return false;
  if (!signal_rng_.next_bool(params_.signal_drop_rate)) return false;
  counters_.signals_dropped++;
  return true;
}

Cycle FaultInjector::signal_extra_delay() {
  if (params_.signal_delay_rate <= 0.0) return 0;
  if (!signal_rng_.next_bool(params_.signal_delay_rate)) return 0;
  counters_.signals_delayed++;
  return 1 + signal_rng_.next_below(params_.signal_delay_max);
}

bool FaultInjector::duplicate_signal(const HsMessage& msg) {
  (void)msg;
  if (params_.signal_dup_rate <= 0.0) return false;
  if (!signal_rng_.next_bool(params_.signal_dup_rate)) return false;
  counters_.signals_duplicated++;
  return true;
}

std::optional<Cycle> FaultInjector::flit_fate(const Flit& f) {
  // Drops are packet-coherent: the drop roll happens on head flits only,
  // and the rest of the worm is then swallowed at the same link (flits of
  // one packet all traverse it, in order). A mid-packet hole would wedge
  // wormhole VC state machines — a headless body has no route, a tail-less
  // worm never frees its VC — which is router corruption, not a wire fault.
  if (params_.flit_drop_rate > 0.0) {
    if (dropped_packets_.count(f.packet_id) != 0) {
      counters_.flits_dropped++;
      return std::nullopt;
    }
    if (f.head && flit_rng_.next_bool(params_.flit_drop_rate)) {
      counters_.flits_dropped++;
      dropped_packets_.insert(f.packet_id);
      return std::nullopt;
    }
  }
  if (params_.flit_delay_rate > 0.0 &&
      flit_rng_.next_bool(params_.flit_delay_rate)) {
    counters_.flits_delayed++;
    return 1 + flit_rng_.next_below(params_.flit_delay_max);
  }
  return Cycle{0};
}

NodeId FaultInjector::spurious_wakeup_target(Cycle now) {
  (void)now;
  if (params_.spurious_wakeup_rate <= 0.0) return kInvalidNode;
  if (!spurious_rng_.next_bool(params_.spurious_wakeup_rate)) {
    return kInvalidNode;
  }
  counters_.spurious_wakeups++;
  return static_cast<NodeId>(
      spurious_rng_.next_below(static_cast<std::uint64_t>(num_nodes_)));
}

}  // namespace flov
