// flov_sim_cli — general-purpose simulation driver (BookSim-style).
//
// Runs one fully-configurable synthetic experiment and prints every metric
// the harness collects; optionally emits the latency-vs-time series.
// Example:
//   flov_sim_cli scheme=gflov pattern=tornado inj=0.04 gated=0.6
//                noc.width=16 noc.height=16 warmup=5000 cycles=50000
//                timeline=1000 seed=3
// Run with --help for the full knob list.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/config.hpp"
#include "fault/fault_model.hpp"
#include "sim/experiment.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/ops/ops_plane.hpp"

namespace {

void print_usage() {
  std::printf(
      "flov_sim_cli key=value ...\n"
      "\n"
      "Core:\n"
      "  scheme=baseline|rp|rflov|gflov   power-gating scheme (gflov)\n"
      "  pattern=uniform|tornado|...      synthetic traffic pattern\n"
      "  inj=<flits/node/cycle>           injection rate (0.02)\n"
      "  gated=<0..1>                     fraction of gateable routers off\n"
      "  warmup=<cycles> cycles=<cycles>  warm-up / measurement window\n"
      "  seed=<n>  timeline=<window>  changes=<c1,c2,...>\n"
      "  threads=<n>                      intra-run domain workers "
      "(volatile)\n"
      "  tiles=<TX>x<TY>                  explicit tile-domain grid, e.g.\n"
      "                                   tiles=2x4 (volatile; default "
      "auto)\n"
      "  procs=<n>                        forked stepping processes over a\n"
      "                                   shared-memory barrier (volatile;\n"
      "                                   each runs threads= workers; exit\n"
      "                                   code 3 if a worker dies mid-run)\n"
      "\n"
      "Simulation bounds (PROTOCOL.md \xc2\xa7" "8):\n"
      "  drain=<cycles>             post-run drain budget: keep stepping\n"
      "                             until every reliable flow is acked or\n"
      "                             declared dead (0 = off)\n"
      "  sim.max_cycles_hard=<n>    hard cycle cap; exceeding it aborts\n"
      "                             with a structured incident + partial\n"
      "                             stats instead of a process abort\n"
      "\n"
      "Self-healing (docs/RELIABILITY.md, \"Runtime self-healing\"):\n"
      "  sim.snapshot_period=<n>    in-run checkpoint period in cycles\n"
      "                             (0 = off); with procs= a lost worker\n"
      "                             or poisoned arena is healed from the\n"
      "                             last checkpoint — the recovered run's\n"
      "                             manifest is byte-identical to an\n"
      "                             undisturbed one (volatile knob)\n"
      "  runstate=<path>            also persist each checkpoint as a\n"
      "                             flyover-runstate-v1 blob (path.0/.1\n"
      "                             slots + JSONL index at <path>)\n"
      "  sim.max_recoveries=<n>     self-healing budget per run (3)\n"
      "\n"
      "Exit codes: 0 = clean run (including disturbed-but-recovered runs);\n"
      "  1 = usage/config error or ordinary failure; 3 = a stepping worker\n"
      "  died (or the arena was poisoned) and self-healing was off,\n"
      "  exhausted, or snapshotless — stats are partial, manifest records\n"
      "  the worker_lost/arena_poisoned incident.\n"
      "\n"
      "Reliable delivery (noc.reliable=1, PROTOCOL.md \xc2\xa7" "8):\n"
      "  noc.reliable=0|1           per-flow seq numbers, retransmit\n"
      "                             buffer, ack piggyback + 1-flit acks\n"
      "  noc.retx_timeout=<cycles>  base retransmit timeout (512)\n"
      "  noc.retx_backoff_cap=<n>   retry n waits timeout<<min(n,cap) (3)\n"
      "  noc.retx_limit=<n>         retries before declared dead (4)\n"
      "  noc.ack_delay=<cycles>     piggyback grace before a 1-flit ack "
      "(8)\n"
      "\n"
      "Fault injection (fault.*; all default 0 = fault-free):\n"
      "  fault.signal_drop_rate=<p>     drop a handshake signal per hop\n"
      "  fault.signal_delay_rate=<p>    delay a handshake signal per hop\n"
      "  fault.signal_delay_max=<c>     max extra signal delay (4)\n"
      "  fault.signal_dup_rate=<p>      duplicate a handshake signal\n"
      "  fault.flit_drop_rate=<p>       drop a flit per link traversal\n"
      "  fault.flit_delay_rate=<p>      delay a flit per link traversal\n"
      "  fault.flit_delay_max=<c>       max extra flit delay (4)\n"
      "  fault.spurious_wakeup_rate=<p> spurious WakeupTrigger per cycle\n"
      "  fault.hard_router_pct=<p>      routers that die at hard_at_cycle\n"
      "  fault.hard_link_pct=<p>        directed links that die there\n"
      "  fault.hard_at_cycle=<c>        death cycle (0 disarms hard "
      "faults)\n"
      "  fault.seed=<n>                 fate-hash seed (1)\n"
      "\n"
      "Also accepted: any NocParams (noc.*), EnergyParams (energy.*),\n"
      "VerifierOptions (verify.*) or telemetry (telemetry.*) key.\n"
      "\n"
      "Outputs:\n"
      "  telemetry.trace=all trace_out=run.trace.json  Perfetto trace\n"
      "  manifest=run.json             flyover-run-manifest-v1 (resolved\n"
      "                                fault.* knobs echoed into config)\n"
      "  incidents_out=run.incidents.json              incident log\n"
      "\n"
      "Ops plane (docs/OBSERVABILITY.md; never affects results/manifests):\n"
      "  serve=<port>               embedded HTTP server on 127.0.0.1\n"
      "                             (/metrics /snapshot /heatmap /healthz;\n"
      "                             0 = ephemeral, port printed to stderr)\n"
      "  ops_stream=<path>          JSONL flight recorder: one\n"
      "                             flyover-snapshot-v1 object per fold\n"
      "  ops.period=<cycles>        cycles between snapshot folds (4096)\n"
      "  profile=1                  wall-clock phase profiler (needs a\n"
      "                             FLYOVER_PROFILING build; report to\n"
      "                             stderr) profile_out=<path> for JSON\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flov;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0 || std::strcmp(argv[i], "help") == 0) {
      print_usage();
      return 0;
    }
  }
  Config cfg;
  cfg.parse_args(argc, argv);

  SyntheticExperimentConfig ex;
  ex.noc = NocParams::from_config(cfg);
  // threads= is shorthand for noc.step_threads=, tiles=TXxTY for
  // noc.step_tiles_x/y=, procs= for noc.step_procs= (intra-run domain
  // workers / explicit tile grid / forked stepping processes;
  // bit-identical results at any value — see docs/PERFORMANCE.md).
  ex.noc.step_threads =
      static_cast<int>(cfg.get_int("threads", ex.noc.step_threads));
  ex.noc.apply_tiles_shorthand(cfg.get_string("tiles", ""));
  ex.noc.step_procs = static_cast<int>(cfg.get_int("procs", ex.noc.step_procs));
  ex.energy = EnergyParams::from_config(cfg);
  ex.scheme = scheme_from_string(cfg.get_string("scheme", "gflov"));
  ex.pattern = cfg.get_string("pattern", "uniform");
  ex.inj_rate_flits = cfg.get_double("inj", 0.02);
  ex.gated_fraction = cfg.get_double("gated", 0.0);
  ex.warmup = cfg.get_int("warmup", 10000);
  ex.measure = cfg.get_int("cycles", 90000);
  ex.seed = cfg.get_int("seed", 1);
  ex.timeline_window = cfg.get_int("timeline", 0);
  ex.drain_max = cfg.get_int("drain", 0);
  ex.max_cycles_hard = cfg.get_int("sim.max_cycles_hard", 0);
  ex.snapshot_period = cfg.get_int("sim.snapshot_period", 0);
  ex.runstate_path = cfg.get_string("runstate", "");
  ex.max_recoveries =
      static_cast<int>(cfg.get_int("sim.max_recoveries", ex.max_recoveries));
  ex.faults = FaultParams::from_config(cfg);
  ex.verifier = VerifierOptions::from_config(cfg);
  ex.verify = cfg.get_bool("verify", ex.verify);
  ex.telemetry = telemetry::TelemetryOptions::from_config(cfg);
  const std::string trace_out = cfg.get_string("trace_out", "");
  const std::string manifest_out = cfg.get_string("manifest", "");
  const std::string incidents_out = cfg.get_string("incidents_out", "");
  if (!trace_out.empty() && ex.telemetry.trace_mask == 0) {
    ex.telemetry.trace_mask = telemetry::kTraceAll;  // implied by trace_out=
  }
  if (cfg.has("changes")) {
    // comma-separated gating change points, e.g. changes=50000,60000
    const std::string s = cfg.get_string("changes");
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t comma = s.find(',', pos);
      const std::string tok = s.substr(pos, comma - pos);
      ex.gating_changes.push_back(std::stoull(tok));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  // Ops plane: constructed only when requested — the disabled path adds a
  // single null check per cycle inside run_synthetic and nothing else.
  const ops::OpsOptions ops_opt = ops::OpsOptions::from_config(cfg);
  std::unique_ptr<ops::OpsPlane> ops_plane;
  if (ops_opt.any()) {
    ops_plane = std::make_unique<ops::OpsPlane>(ops_opt);
    ex.ops = ops_plane.get();
  }
  // Binds the phase profiler (if any) to this thread for the run; workers
  // inherit it per-domain through Network::step.
  telemetry::ProfileScope profile_scope(
      ops_plane ? ops_plane->profiler() : nullptr, 0);

  std::printf("flov_sim: %s | %dx%d mesh | %s | inj %.4f flits/node/cycle | "
              "%.0f%% gated | seed %llu\n",
              to_string(ex.scheme), ex.noc.width, ex.noc.height,
              ex.pattern.c_str(), ex.inj_rate_flits,
              100 * ex.gated_fraction,
              static_cast<unsigned long long>(ex.seed));

  const auto wall_start = std::chrono::steady_clock::now();
  const RunResult r = run_synthetic(ex);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (ops_plane) ops_plane->finish_profile(stderr);

  std::printf("\npackets measured      : %llu (generated %llu)\n",
              static_cast<unsigned long long>(r.packets_measured),
              static_cast<unsigned long long>(r.packets_generated));
  std::printf("flits injected/ejected: %llu / %llu\n",
              static_cast<unsigned long long>(r.injected_flits),
              static_cast<unsigned long long>(r.ejected_flits));
  std::printf("avg packet latency    : %.2f cycles (p50 %.1f, p99 %.1f)\n",
              r.avg_latency, r.p50_latency, r.p99_latency);
  std::printf("  router / link / serial / contention / FLOV = "
              "%.2f / %.2f / %.2f / %.2f / %.2f\n",
              r.breakdown.router, r.breakdown.link, r.breakdown.serialization,
              r.breakdown.contention, r.breakdown.flov);
  std::printf("power                 : %.2f mW static + %.2f mW dynamic = "
              "%.2f mW\n",
              r.power.static_mw, r.power.dynamic_mw, r.power.total_mw);
  std::printf("energy (window)       : %.3f uJ (%.3f uJ static)\n",
              r.power.total_energy_pj * 1e-6, r.power.static_energy_pj * 1e-6);
  std::printf("gated routers         : %d at end, %.2f time-average\n",
              r.gated_routers_end, r.avg_gated_routers);
  if (r.protocol_sleeps || r.protocol_wakeups) {
    std::printf("handshake activity    : %llu sleeps, %llu wakeups\n",
                static_cast<unsigned long long>(r.protocol_sleeps),
                static_cast<unsigned long long>(r.protocol_wakeups));
  }
  if (r.escape_packets) {
    std::printf("escape-network packets: %llu\n",
                static_cast<unsigned long long>(r.escape_packets));
  }
  if (ex.faults.any()) {
    std::printf("fault recovery        : %llu hs resends, %llu trigger "
                "re-fires, %llu watchdog recoveries, %llu self-captures, "
                "%llu flits dropped\n",
                static_cast<unsigned long long>(r.hs_resends),
                static_cast<unsigned long long>(r.trigger_resends),
                static_cast<unsigned long long>(r.watchdog_recoveries),
                static_cast<unsigned long long>(r.self_captures),
                static_cast<unsigned long long>(r.flits_dropped_by_faults));
  }
  if (ex.noc.reliable) {
    std::printf("reliable delivery     : %llu acked, %llu dead, %llu "
                "retransmits, %llu dup-suppressed, %llu purged, %llu "
                "killed-at-source\n",
                static_cast<unsigned long long>(r.packets_acked),
                static_cast<unsigned long long>(r.packets_dead),
                static_cast<unsigned long long>(r.retransmits),
                static_cast<unsigned long long>(r.dup_packets),
                static_cast<unsigned long long>(r.packets_purged),
                static_cast<unsigned long long>(r.killed_at_source));
  }
  if (r.dead_routers || r.dead_links) {
    std::printf("hard faults           : %d dead routers, %d dead links, "
                "%llu wake requests dropped\n",
                r.dead_routers, r.dead_links,
                static_cast<unsigned long long>(r.wake_requests_dropped));
  }
  if (r.recoveries > 0) {
    // Volatile, stderr-only: the run's stdout/manifest must stay
    // byte-identical to an undisturbed run.
    std::fprintf(stderr,
                 "[selfheal] run recovered %llu time(s); %.3f s spent in "
                 "restore+respawn\n",
                 static_cast<unsigned long long>(r.recoveries),
                 static_cast<double>(r.recovery_wall_ns) / 1e9);
  }
  if (r.worker_lost) {
    std::printf("ABORTED at cycle %llu (stepping worker process died; see "
                "the worker_lost incident); stats are partial\n",
                static_cast<unsigned long long>(r.cycles_run));
  } else if (r.aborted) {
    std::printf("ABORTED at cycle %llu (sim.max_cycles_hard); stats are "
                "partial\n",
                static_cast<unsigned long long>(r.cycles_run));
  }
  if (ex.verify) {
    std::printf("invariant verifier    : %llu checks, %llu violations\n",
                static_cast<unsigned long long>(r.verifier_checks),
                static_cast<unsigned long long>(r.verifier_violations));
  }
  if (!r.timeline.empty()) {
    std::printf("\nlatency timeline (window %llu):\n",
                static_cast<unsigned long long>(ex.timeline_window));
    for (const auto& p : r.timeline) {
      std::printf("  %8llu %10.2f  (%llu pkts)\n",
                  static_cast<unsigned long long>(p.window_start), p.mean,
                  static_cast<unsigned long long>(p.count));
    }
  }

  if (!trace_out.empty()) {
    if (r.trace) {
      r.trace->write_chrome_trace(trace_out);
      std::printf("\ntrace: %llu events -> %s (%llu overwritten)\n",
                  static_cast<unsigned long long>(r.trace->size()),
                  trace_out.c_str(),
                  static_cast<unsigned long long>(r.trace->overwritten()));
    } else {
      std::printf("\ntrace: not recorded (build has FLYOVER_TRACING off "
                  "or telemetry.trace empty)\n");
    }
  }
  if (!incidents_out.empty() && r.incidents) {
    r.incidents->write(incidents_out);
    std::printf("incidents: %llu -> %s\n",
                static_cast<unsigned long long>(r.incidents->size()),
                incidents_out.c_str());
  }
  if (!manifest_out.empty()) {
    telemetry::RunManifest m;
    m.name = "flov_sim_cli";
    m.scheme = r.scheme;
    // Echo every resolved fault.* knob (including defaulted ones) into the
    // manifest's config so two runs can never silently differ on one.
    // Ops-plane keys are stripped first: serving /metrics or profiling a
    // run must leave its manifest byte-identical to a plain run's.
    // Self-healing keys are volatile for the same reason: a disturbed run
    // that recovered must produce a byte-identical manifest to an
    // undisturbed run launched without them.
    Config mcfg;
    for (const std::string& k : cfg.keys()) {
      if (k == "serve" || k == "ops_stream" || k == "profile" ||
          k == "profile_out" || k == "ops.period" ||
          k == "sim.snapshot_period" || k == "runstate" ||
          k == "sim.max_recoveries") {
        continue;
      }
      mcfg.set(k, cfg.get_string(k));
    }
    ex.faults.echo_to_config(mcfg);
    m.config = mcfg;
    m.seed = ex.seed;
    m.wall_seconds = wall_seconds;
    m.trace_path = trace_out;
    m.metrics = r.metrics.get();
    m.incidents = r.incidents.get();
    m.write(manifest_out);
    std::printf("manifest: %s\n", manifest_out.c_str());
  }
  // A stepping worker process dying mid-run is an infrastructure failure,
  // not a simulation result: the stats above are partial and the manifest
  // (if any) records the worker_lost incident. Distinct exit code so
  // sweeping scripts can tell it from a clean run (0) or a usage error.
  if (r.worker_lost) return 3;
  return 0;
}
