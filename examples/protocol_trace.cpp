// Protocol walkthrough in the spirit of the paper's Fig. 3: gate a core on
// a small mesh, trace its router's power-state transitions, the neighbors'
// PSR views, and the credit handover; then wake it with a packet destined
// to the sleeping core and watch the wakeup handshake.
//
// Usage: protocol_trace [mode=gflov|rflov]
#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "flov/flov_network.hpp"

using namespace flov;

namespace {

const char* short_state(PowerState s) {
  switch (s) {
    case PowerState::kActive: return "A";
    case PowerState::kDraining: return "D";
    case PowerState::kSleep: return "S";
    case PowerState::kWakeup: return "W";
  }
  return "?";
}

void print_row(FlovNetwork& sys, Cycle now, NodeId focus) {
  const Router& r = sys.network().router(focus);
  const NeighborhoodView& v = r.view();
  std::printf("cycle %-5llu | router %d: %-8s | west nbr PSR[E]=%s "
              "logical[E]=%d credits[E][vc0]=%d\n",
              static_cast<unsigned long long>(now), focus,
              to_string(sys.hsc(focus).state()),
              to_string(sys.network()
                            .router(focus - 1)
                            .view()
                            .physical[dir_index(Direction::East)]),
              sys.network()
                  .router(focus - 1)
                  .view()
                  .logical[dir_index(Direction::East)],
              sys.network()
                  .router(focus - 1)
                  .output_port(Direction::East)
                  .vcs[0]
                  .credits);
  (void)v;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.parse_args(argc, argv);
  const std::string mode_s = cfg.get_string("mode", "gflov");
  const FlovMode mode =
      mode_s == "rflov" ? FlovMode::kRestricted : FlovMode::kGeneralized;

  NocParams p;
  p.width = 4;
  p.height = 4;
  p.drain_idle_threshold = 8;
  FlovNetwork sys(p, mode, EnergyParams{});
  int delivered = 0;
  sys.network().set_eject_callback([&](const PacketRecord& r) {
    std::printf("            >> packet delivered to node %d (latency %llu, "
                "flov hops %d)\n",
                r.dest, static_cast<unsigned long long>(r.total_latency()),
                r.flov_hops);
    ++delivered;
  });

  const NodeId focus = 5;  // interior router, like Fig. 3's router B
  Cycle now = 0;
  PowerState last = sys.hsc(focus).state();

  std::printf("== %s walkthrough: gating router %d (core goes idle) ==\n",
              mode_s.c_str(), focus);
  sys.set_core_gated(focus, true, now);
  for (int i = 0; i < 120; ++i) {
    sys.step(now++);
    if (sys.hsc(focus).state() != last) {
      last = sys.hsc(focus).state();
      print_row(sys, now, focus);
    }
  }

  std::printf("\n== traffic flying over the sleeping router (4 -> 6) ==\n");
  PacketDescriptor d;
  d.src = 4;
  d.dest = 6;
  d.size_flits = 4;
  d.gen_cycle = now;
  sys.network().enqueue(d);
  for (int i = 0; i < 60; ++i) sys.step(now++);

  std::printf("\n== waking the router with a packet destined to its core "
              "(6 -> 5) ==\n");
  d.src = 6;
  d.dest = focus;
  d.gen_cycle = now;
  sys.network().enqueue(d);
  for (int i = 0; i < 300; ++i) {
    sys.step(now++);
    if (sys.hsc(focus).state() != last) {
      last = sys.hsc(focus).state();
      print_row(sys, now, focus);
    }
  }

  std::printf("\n== core stays off: the router re-drains on its own ==\n");
  for (int i = 0; i < 200; ++i) {
    sys.step(now++);
    if (sys.hsc(focus).state() != last) {
      last = sys.hsc(focus).state();
      print_row(sys, now, focus);
    }
  }

  std::printf("\nrouter %d: %llu sleeps, %llu wakeups, %llu drain aborts; "
              "%d packets delivered\n",
              focus,
              static_cast<unsigned long long>(sys.hsc(focus).sleep_entries()),
              static_cast<unsigned long long>(
                  sys.hsc(focus).wake_completions()),
              static_cast<unsigned long long>(sys.hsc(focus).drain_aborts()),
              delivered);
  return 0;
}
