// Power-management design-space exploration: sweep the power-gated core
// fraction for one scheme/pattern and report latency, latency breakdown,
// power, and how many routers the scheme actually managed to gate.
//
// Usage: gating_sweep [scheme=gflov] [pattern=uniform] [inj=0.02]
//                     [steps=9] [seed=1]
#include <cstdio>

#include "common/config.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace flov;
  Config cfg;
  cfg.parse_args(argc, argv);

  SyntheticExperimentConfig ex;
  ex.noc = NocParams::from_config(cfg);
  ex.energy = EnergyParams::from_config(cfg);
  ex.scheme = scheme_from_string(cfg.get_string("scheme", "gflov"));
  ex.pattern = cfg.get_string("pattern", "uniform");
  ex.inj_rate_flits = cfg.get_double("inj", 0.02);
  ex.warmup = cfg.get_int("warmup", 10000);
  ex.measure = cfg.get_int("cycles", 40000);
  ex.seed = cfg.get_int("seed", 1);
  const int steps = static_cast<int>(cfg.get_int("steps", 9));

  std::printf("Gating sweep — %s, %s traffic, inj=%.3f flits/node/cycle\n\n",
              to_string(ex.scheme), ex.pattern.c_str(), ex.inj_rate_flits);
  std::printf("%-7s %9s | %7s %7s %7s %7s %7s | %9s %9s %6s %7s\n", "gated%",
              "latency", "router", "link", "serial", "cntn", "flov",
              "static_mW", "total_mW", "gated", "escapes");
  for (int i = 0; i < steps; ++i) {
    ex.gated_fraction = i * 0.1;
    const RunResult r = run_synthetic(ex);
    std::printf(
        "%-7.0f %9.2f | %7.2f %7.2f %7.2f %7.2f %7.2f | %9.2f %9.2f %6d "
        "%7llu\n",
        ex.gated_fraction * 100, r.avg_latency, r.breakdown.router,
        r.breakdown.link, r.breakdown.serialization, r.breakdown.contention,
        r.breakdown.flov, r.power.static_mw, r.power.total_mw,
        r.gated_routers_end,
        static_cast<unsigned long long>(r.escape_packets));
  }
  std::printf("\nColumns: latency breakdown per Fig. 8 (router pipeline, "
              "links incl. NI, serialization, contention, FLOV latches).\n");
  return 0;
}
