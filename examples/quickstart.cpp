// Quickstart: run all four schemes (Baseline, RP, rFLOV, gFLOV) on the
// paper's Table-I 8x8 mesh with uniform-random traffic and 50% of the
// cores power-gated, then print latency and power side by side.
//
// Usage: quickstart [key=value ...]
//   e.g. quickstart inj=0.04 gated=0.3 pattern=tornado cycles=50000
#include <cstdio>

#include "common/config.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace flov;
  Config cfg;
  cfg.parse_args(argc, argv);

  SyntheticExperimentConfig ex;
  ex.noc = NocParams::from_config(cfg);
  ex.energy = EnergyParams::from_config(cfg);
  ex.pattern = cfg.get_string("pattern", "uniform");
  ex.inj_rate_flits = cfg.get_double("inj", 0.02);
  ex.gated_fraction = cfg.get_double("gated", 0.5);
  ex.warmup = cfg.get_int("warmup", 10000);
  ex.measure = cfg.get_int("cycles", 90000);
  ex.seed = cfg.get_int("seed", 1);

  std::printf("FLOV quickstart: %dx%d mesh, %s traffic, inj=%.3f "
              "flits/node/cycle, %.0f%% cores gated\n\n",
              ex.noc.width, ex.noc.height, ex.pattern.c_str(),
              ex.inj_rate_flits, 100.0 * ex.gated_fraction);
  std::printf("%-10s %12s %12s %12s %12s %10s %8s\n", "scheme", "avg lat",
              "static mW", "dynamic mW", "total mW", "pkts", "gated");

  for (Scheme s : kAllSchemes) {
    ex.scheme = s;
    const RunResult r = run_synthetic(ex);
    std::printf("%-10s %12.2f %12.2f %12.2f %12.2f %10llu %8d\n",
                r.scheme.c_str(), r.avg_latency, r.power.static_mw,
                r.power.dynamic_mw, r.power.total_mw,
                static_cast<unsigned long long>(r.packets_measured),
                r.gated_routers_end);
  }
  std::printf("\nLatency breakdown (cycles): router / link / serialization / "
              "contention / FLOV — see bench_fig8_breakdown for the sweep.\n");
  return 0;
}
