// flov_sweep_cli — parallel, self-healing sweep driver.
//
// Runs the cross product of comma-separated lists over one base
// configuration, on a thread pool, with optional crash resilience: per-point
// retries with backoff, a lossless JSONL checkpoint appended after every
// completed point, and resume= to skip everything the checkpoint already
// holds. A resumed sweep's merged metrics — and its manifest — are
// byte-identical to the uninterrupted sweep (CI enforces this with a
// kill-and-resume diff).
//
//   flov_sweep_cli schemes=baseline,rp,rflov,gflov inj=0.02,0.06
//                  gated=0.0,0.4 cycles=20000 jobs=4
//                  checkpoint=sweep.ckpt.jsonl manifest=sweep.json
//   ...killed...
//   flov_sweep_cli <same args> resume=1      # re-runs only missing points
//
// Keys:
//   schemes=a,b,...  patterns=a,b,...  inj=x,y,...  gated=x,y,...
//   seeds=n,m,...                      (each list defaults to one value)
//   reps=N seed_base=S                 replication axis: N seeds derived
//                                      from S via derive_replication_seed
//                                      (overrides seeds=; what the certify
//                                      harness builds on)
//   warmup= cycles= timeline= drain= sim.max_cycles_hard= threads= procs=
//   jobs=N retries=N retry_backoff_ms=N checkpoint=path resume=0|1
//   manifest=path                      flyover-sweep-manifest-v1
//   progress=1                         deterministic stderr progress lines
//                                      (points done/total + checkpoint
//                                      path; off by default)
//   serve=port ops_stream=path         live ops plane (campaign mode; see
//                                      docs/OBSERVABILITY.md) — never
//                                      affects results or the manifest
//   plus any noc.* / energy.* / fault.* / verify.* / telemetry.* key.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "fault/fault_model.hpp"
#include "sim/certify.hpp"
#include "sim/sweep.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/ops/ops_plane.hpp"

namespace {

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    out.push_back(s.substr(pos, comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flov;
  Config cfg;
  cfg.parse_args(argc, argv);

  SyntheticExperimentConfig base;
  base.noc = NocParams::from_config(cfg);
  base.noc.step_threads =
      static_cast<int>(cfg.get_int("threads", base.noc.step_threads));
  base.noc.step_procs =
      static_cast<int>(cfg.get_int("procs", base.noc.step_procs));
  base.noc.apply_tiles_shorthand(cfg.get_string("tiles", ""));
  base.energy = EnergyParams::from_config(cfg);
  base.warmup = cfg.get_int("warmup", 10000);
  base.measure = cfg.get_int("cycles", 40000);
  base.timeline_window = cfg.get_int("timeline", 0);
  base.drain_max = cfg.get_int("drain", 0);
  base.max_cycles_hard = cfg.get_int("sim.max_cycles_hard", 0);
  // Self-healing knobs (volatile — excluded from point fingerprints, so a
  // sweep resumed with different values reuses its checkpoints).
  base.snapshot_period = cfg.get_int("sim.snapshot_period", 0);
  base.runstate_path = cfg.get_string("runstate", "");
  base.max_recoveries =
      static_cast<int>(cfg.get_int("sim.max_recoveries", base.max_recoveries));
  base.faults = FaultParams::from_config(cfg);
  base.verifier = VerifierOptions::from_config(cfg);
  base.verify = cfg.get_bool("verify", base.verify);
  base.telemetry = telemetry::TelemetryOptions::from_config(cfg);

  const auto schemes = split_list(cfg.get_string("schemes", "gflov"));
  const auto patterns = split_list(cfg.get_string("patterns", "uniform"));
  const auto injs = split_list(cfg.get_string("inj", "0.02"));
  const auto gateds = split_list(cfg.get_string("gated", "0.0"));
  // Replication axis: reps=N expands to N seeds derived from seed_base the
  // same way the certification harness derives them — a hand-run sweep
  // over reps= and a certify campaign over the same base hit identical
  // per-replication configs (and hence identical checkpoint fingerprints).
  std::vector<std::string> seeds;
  const auto reps = static_cast<std::uint64_t>(cfg.get_int("reps", 0));
  if (reps > 0) {
    const auto seed_base =
        static_cast<std::uint64_t>(cfg.get_int("seed_base", 1));
    for (std::uint64_t i = 0; i < reps; ++i) {
      seeds.push_back(std::to_string(derive_replication_seed(seed_base, i)));
    }
  } else {
    seeds = split_list(cfg.get_string("seeds", "1"));
  }

  std::vector<SyntheticExperimentConfig> points;
  for (const auto& sc : schemes) {
    for (const auto& pat : patterns) {
      for (const auto& inj : injs) {
        for (const auto& gf : gateds) {
          for (const auto& sd : seeds) {
            SyntheticExperimentConfig p = base;
            p.scheme = scheme_from_string(sc);
            p.pattern = pat;
            p.inj_rate_flits = std::stod(inj);
            p.gated_fraction = std::stod(gf);
            p.seed = std::stoull(sd);
            points.push_back(std::move(p));
          }
        }
      }
    }
  }

  SweepOptions opts;
  opts.jobs = static_cast<int>(cfg.get_int("jobs", 0));
  opts.retries = static_cast<int>(cfg.get_int("retries", 0));
  opts.retry_backoff_ms =
      static_cast<int>(cfg.get_int("retry_backoff_ms", 100));
  opts.checkpoint_path = cfg.get_string("checkpoint", "");
  opts.resume = cfg.get_bool("resume", false);

  // Campaign-mode ops plane: /metrics and /snapshot track points folded.
  const ops::OpsOptions ops_opt = ops::OpsOptions::from_config(cfg);
  std::unique_ptr<ops::OpsPlane> ops_plane;
  if (ops_opt.any()) {
    ops_plane = std::make_unique<ops::OpsPlane>(ops_opt);
    ops_plane->begin_campaign("sweep", points.size(), opts.checkpoint_path);
  }
  // Deterministic progress lines: full lines (no \r animation), identical
  // content for a given done/total, so logs diff cleanly across jobs= and
  // kill-and-resume runs. Off by default to keep batch stderr quiet.
  const bool show_progress = cfg.get_bool("progress", false);
  if (show_progress || ops_plane != nullptr) {
    ops::OpsPlane* plane = ops_plane.get();
    const std::string ckpt = opts.checkpoint_path;
    opts.progress = [show_progress, plane, ckpt](int done, int total) {
      if (plane != nullptr) {
        plane->campaign_progress(static_cast<std::uint64_t>(done));
      }
      if (show_progress) {
        std::fprintf(stderr, "[sweep] %d/%d points%s%s\n", done, total,
                     ckpt.empty() ? "" : " checkpoint=",
                     ckpt.empty() ? "" : ckpt.c_str());
      }
    };
  }

  std::printf("flov_sweep: %zu points (%zu schemes x %zu patterns x %zu inj "
              "x %zu gated x %zu seeds)%s\n",
              points.size(), schemes.size(), patterns.size(), injs.size(),
              gateds.size(), seeds.size(), opts.resume ? " [resume]" : "");

  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<RunResult> results = run_sweep(points, opts);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::printf("%-9s %-9s %6s %6s %5s | %9s %9s %9s %6s\n", "scheme",
              "pattern", "inj", "gated", "seed", "latency", "total_mW",
              "pkts", "dead");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const auto& r = results[i];
    std::printf("%-9s %-9s %6.3f %6.2f %5llu | %9.2f %9.2f %9llu %6llu%s\n",
                to_string(p.scheme), p.pattern.c_str(), p.inj_rate_flits,
                p.gated_fraction, static_cast<unsigned long long>(p.seed),
                r.avg_latency, r.power.total_mw,
                static_cast<unsigned long long>(r.packets_measured),
                static_cast<unsigned long long>(r.packets_dead),
                r.aborted ? " ABORTED" : "");
  }

  const std::string manifest_out = cfg.get_string("manifest", "");
  if (!manifest_out.empty()) {
    const telemetry::MetricsRegistry merged = merge_sweep_metrics(results);
    telemetry::StructuredSink all_incidents;
    for (const RunResult& r : results) {
      if (!r.incidents) continue;
      for (const std::string& rec : r.incidents->records()) {
        all_incidents.add(rec);
      }
    }
    telemetry::SweepManifest m;
    m.name = "flov_sweep_cli";
    // The manifest config must not carry the runner's own plumbing keys:
    // a resumed sweep (resume=1, checkpoint=...) must emit a manifest
    // byte-identical to the uninterrupted sweep's — and the ops plane /
    // progress lines must leave it byte-identical to an ops-free sweep.
    Config mcfg;
    for (const std::string& k : cfg.keys()) {
      if (k == "resume" || k == "checkpoint" || k == "retries" ||
          k == "retry_backoff_ms" || k == "jobs" || k == "progress" ||
          k == "serve" || k == "ops_stream" || k == "profile" ||
          k == "profile_out" || k == "ops.period") {
        continue;
      }
      mcfg.set(k, cfg.get_string(k));
    }
    base.faults.echo_to_config(mcfg);
    m.config = mcfg;
    m.jobs = opts.jobs;
    m.wall_seconds = wall_seconds;
    for (std::size_t i = 0; i < points.size(); ++i) {
      telemetry::SweepPointEntry e;
      e.scheme = to_string(points[i].scheme);
      e.pattern = points[i].pattern;
      e.inj_rate = points[i].inj_rate_flits;
      e.gated_fraction = points[i].gated_fraction;
      e.seed = points[i].seed;
      e.metrics = results[i].metrics.get();
      m.points.push_back(e);
    }
    m.merged = &merged;
    m.incidents = &all_incidents;
    m.write(manifest_out);
    std::printf("manifest: %s\n", manifest_out.c_str());
  }
  return 0;
}
