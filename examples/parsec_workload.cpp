// Full-system example: run one PARSEC-like benchmark profile over the CMP
// substrate (64 cores, MESI directory coherence, 3 vnets, 4 corner MCs) on
// a chosen power-gating scheme, and report runtime / energy / traffic.
//
// Usage: parsec_workload [bench=canneal] [scheme=gflov] [seed=1]
#include <cstdio>

#include "cmp/cmp_system.hpp"
#include "common/config.hpp"

int main(int argc, char** argv) {
  using namespace flov;
  Config cfg;
  cfg.parse_args(argc, argv);

  CmpConfig c;
  c.noc = NocParams::from_config(cfg);
  c.energy = EnergyParams::from_config(cfg);
  c.profile = BenchmarkProfile::by_name(cfg.get_string("bench", "canneal"));
  c.scheme = scheme_from_string(cfg.get_string("scheme", "gflov"));
  c.seed = cfg.get_int("seed", 1);

  std::printf("Running %s on %s (%dx%d mesh, 3 vnets, 4 corner MCs)...\n",
              c.profile.name.c_str(), to_string(c.scheme), c.noc.width,
              c.noc.height);
  const CmpResult r = run_cmp(c);

  std::printf("\n  runtime          : %llu cycles (drained at %llu)\n",
              (unsigned long long)r.runtime, (unsigned long long)r.drained);
  std::printf("  NoC power        : %.2f mW static, %.2f mW dynamic\n",
              r.power.static_mw, r.power.dynamic_mw);
  std::printf("  NoC energy       : %.2f uJ total (%.2f uJ static)\n",
              r.power.total_energy_pj * 1e-6, r.power.static_energy_pj * 1e-6);
  std::printf("  packets          : %llu, avg latency %.2f cycles\n",
              (unsigned long long)r.packets, r.avg_pkt_latency);
  std::printf("  L1 hits/misses   : %llu / %llu\n",
              (unsigned long long)r.l1_hits, (unsigned long long)r.l1_misses);
  std::printf("  dir transactions : %llu (L2 misses %llu)\n",
              (unsigned long long)r.dir_transactions,
              (unsigned long long)r.l2_misses);
  std::printf("  cores gated at end: %d\n", r.final_gated_cores);
  return 0;
}
