// flov_certify_cli — Monte-Carlo reliability certification driver.
//
// Replicates ONE experiment configuration across derived seeds until a
// sequential stopping rule resolves (SPRT against a target reliability
// and/or a CI half-width bound) or the hard replication cap is hit, then
// emits a flyover-certificate-v1 manifest with statistically certified
// bounds ("delivery >= 0.95 at 95% confidence under fault model F").
//
//   flov_certify_cli scheme=gflov k=8 gated=0.3 inj=0.05
//                    fault.hard_router_pct=0.03 fault.hard_at_cycle=1800
//                    fault.seed=17 vary_faults=0
//                    metric=delivery confidence=0.95 target=0.9
//                    max_reps=200 batch=20 jobs=4
//                    checkpoint=cert.ckpt.jsonl certificate=cert.json
//   ...killed...
//   flov_certify_cli <same args> resume=1   # continues the campaign
//
// Keys:
//   scheme= pattern= inj= gated= k= warmup= cycles= drain=
//   sim.max_cycles_hard= threads= procs= plus any noc.*/energy.*/fault.*/
//   verify.*/telemetry.* key (noc.reliable defaults ON here: delivery
//   certification needs the packet accounting).
//   metric=delivery|clean_delivery|run_survival confidence=0.95
//   target=P indifference=E half_width=W interval=wilson|clopper-pearson
//   min_reps= max_reps= batch= seed_base= vary_faults=0|1
//   jobs=N retries=N retry_backoff_ms=N checkpoint=path resume=0|1
//   certificate=path name=...
//   progress=1                  deterministic stderr progress lines (reps
//                               folded / cap + checkpoint; off by default)
//   serve=port ops_stream=path  live ops plane (campaign mode; see
//                               docs/OBSERVABILITY.md) — never affects
//                               results or the certificate
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "fault/fault_model.hpp"
#include "sim/certify.hpp"
#include "sim/checkpoint.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/ops/ops_plane.hpp"

int main(int argc, char** argv) {
  using namespace flov;
  Config cfg;
  cfg.parse_args(argc, argv);

  SyntheticExperimentConfig base;
  base.noc = NocParams::from_config(cfg);
  // Certification is about delivery: the reliable layer's packet
  // accounting (acked/dead/purged) IS the Bernoulli trial. Default it on;
  // an explicit noc.reliable=0 still wins (run_survival campaigns).
  if (!cfg.has("noc.reliable")) base.noc.reliable = true;
  base.noc.step_threads =
      static_cast<int>(cfg.get_int("threads", base.noc.step_threads));
  base.noc.step_procs =
      static_cast<int>(cfg.get_int("procs", base.noc.step_procs));
  base.noc.apply_tiles_shorthand(cfg.get_string("tiles", ""));
  if (cfg.has("k")) {
    base.noc.width = static_cast<int>(cfg.get_int("k"));
    base.noc.height = base.noc.width;
  }
  base.energy = EnergyParams::from_config(cfg);
  base.scheme = scheme_from_string(cfg.get_string("scheme", "gflov"));
  base.pattern = cfg.get_string("pattern", "uniform");
  base.inj_rate_flits = cfg.get_double("inj", 0.02);
  base.gated_fraction = cfg.get_double("gated", 0.0);
  base.warmup = cfg.get_int("warmup", 500);
  base.measure = cfg.get_int("cycles", 2500);
  base.drain_max = cfg.get_int("drain", 30000);
  base.max_cycles_hard = cfg.get_int("sim.max_cycles_hard", 200000);
  // Self-healing knobs (volatile — excluded from replication fingerprints).
  base.snapshot_period = cfg.get_int("sim.snapshot_period", 0);
  base.runstate_path = cfg.get_string("runstate", "");
  base.max_recoveries =
      static_cast<int>(cfg.get_int("sim.max_recoveries", base.max_recoveries));
  base.faults = FaultParams::from_config(cfg);
  base.verifier = VerifierOptions::from_config(cfg);
  // A fatal verifier would abort the whole campaign on one bad
  // replication; certification counts violations instead.
  if (!cfg.has("verify.fatal")) base.verifier.fatal = false;
  base.verify = cfg.get_bool("verify", base.verify);
  base.telemetry = telemetry::TelemetryOptions::from_config(cfg);

  CertifyOptions opts;
  opts.metric = cfg.get_string("metric", "delivery");
  opts.confidence = cfg.get_double("confidence", 0.95);
  opts.target = cfg.get_double("target", 0.0);
  opts.indifference = cfg.get_double("indifference", 0.01);
  opts.half_width_stop = cfg.get_double("half_width", 0.0);
  opts.interval = cfg.get_string("interval", "wilson");
  opts.min_replications =
      static_cast<std::uint64_t>(cfg.get_int("min_reps", 64));
  opts.max_replications =
      static_cast<std::uint64_t>(cfg.get_int("max_reps", 1024));
  if (opts.min_replications > opts.max_replications) {
    opts.min_replications = opts.max_replications;
  }
  opts.batch = static_cast<std::uint64_t>(cfg.get_int("batch", 32));
  opts.seed_base = static_cast<std::uint64_t>(cfg.get_int("seed_base", 1));
  opts.vary_faults = cfg.get_bool("vary_faults", true);
  opts.jobs = static_cast<int>(cfg.get_int("jobs", 1));
  opts.retries = static_cast<int>(cfg.get_int("retries", 0));
  opts.retry_backoff_ms =
      static_cast<int>(cfg.get_int("retry_backoff_ms", 100));
  opts.checkpoint_path = cfg.get_string("checkpoint", "");
  opts.resume = cfg.get_bool("resume", false);

  // Campaign-mode ops plane: /metrics and /snapshot track replications
  // folded into the stopping rule.
  const ops::OpsOptions ops_opt = ops::OpsOptions::from_config(cfg);
  std::unique_ptr<ops::OpsPlane> ops_plane;
  if (ops_opt.any()) {
    ops_plane = std::make_unique<ops::OpsPlane>(ops_opt);
    ops_plane->begin_campaign("certify", opts.max_replications,
                              opts.checkpoint_path);
  }
  // Deterministic progress lines (full lines, identical content for a
  // given done/cap) gated behind progress=; off by default.
  const bool show_progress = cfg.get_bool("progress", false);
  if (show_progress || ops_plane != nullptr) {
    ops::OpsPlane* plane = ops_plane.get();
    const std::string ckpt = opts.checkpoint_path;
    opts.progress = [show_progress, plane, ckpt](std::uint64_t done,
                                                 std::uint64_t cap) {
      if (plane != nullptr) plane->campaign_progress(done);
      if (show_progress) {
        std::fprintf(stderr, "[certify] %llu/%llu reps%s%s\n",
                     static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(cap),
                     ckpt.empty() ? "" : " checkpoint=",
                     ckpt.empty() ? "" : ckpt.c_str());
      }
    };
  }

  std::printf(
      "flov_certify: metric=%s confidence=%.3f target=%.4f cap=%llu "
      "batch=%llu%s\n",
      opts.metric.c_str(), opts.confidence, opts.target,
      static_cast<unsigned long long>(opts.max_replications),
      static_cast<unsigned long long>(opts.batch),
      opts.resume ? " [resume]" : "");

  const auto wall_start = std::chrono::steady_clock::now();
  const CertifyResult res = run_certification(base, opts);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::printf("%-15s %10s %10s %8s %18s %18s\n", "metric", "successes",
              "trials", "point", "wilson[lo,hi]", "cp[lo,hi]");
  for (const CertifyEstimate& e : res.estimates) {
    std::printf("%-15s %10llu %10llu %8.5f [%.5f, %.5f] [%.5f, %.5f]\n",
                e.metric.c_str(),
                static_cast<unsigned long long>(e.successes),
                static_cast<unsigned long long>(e.trials), e.point,
                e.wilson.lower, e.wilson.upper, e.clopper_pearson.lower,
                e.clopper_pearson.upper);
  }
  std::printf("stop: %s after %llu/%llu replications (%.1fs)\n",
              res.stop_reason.c_str(),
              static_cast<unsigned long long>(res.replications),
              static_cast<unsigned long long>(opts.max_replications),
              wall_seconds);

  const std::string cert_out = cfg.get_string("certificate", "");
  if (!cert_out.empty()) {
    telemetry::CertificateManifest m;
    m.name = cfg.get_string("name", "flov_certify_cli");
    // Strip the runner's own plumbing keys so jobs=N / kill-and-resume
    // emit byte-identical certificates (jobs and wall_seconds remain as
    // the schema's dedicated volatile fields).
    Config mcfg;
    for (const std::string& k : cfg.keys()) {
      if (k == "resume" || k == "checkpoint" || k == "retries" ||
          k == "retry_backoff_ms" || k == "jobs" || k == "certificate" ||
          k == "threads" || k == "progress" || k == "serve" ||
          k == "ops_stream" || k == "profile" || k == "profile_out" ||
          k == "ops.period") {
        continue;
      }
      mcfg.set(k, cfg.get_string(k));
    }
    base.faults.echo_to_config(mcfg);
    m.config = mcfg;
    char fp[17];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(
                      sweep_point_fingerprint(base)));
    m.config_fingerprint = fp;
    m.seed_base = opts.seed_base;
    m.replications = res.replications;
    m.max_replications = opts.max_replications;
    m.confidence = opts.confidence;
    m.target_metric = opts.metric;
    m.target = opts.target;
    m.stop_reason = res.stop_reason;
    m.jobs = opts.jobs;
    m.wall_seconds = wall_seconds;
    for (const CertifyEstimate& e : res.estimates) {
      telemetry::CertifiedMetric cm;
      cm.name = e.metric;
      cm.successes = e.successes;
      cm.trials = e.trials;
      cm.point = e.point;
      cm.wilson_lower = e.wilson.lower;
      cm.wilson_upper = e.wilson.upper;
      cm.clopper_pearson_lower = e.clopper_pearson.lower;
      cm.clopper_pearson_upper = e.clopper_pearson.upper;
      m.metrics.push_back(cm);
    }
    m.write(cert_out);
    std::printf("certificate: %s\n", cert_out.c_str());
  }
  return 0;
}
