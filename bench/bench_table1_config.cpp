// Prints the simulation testbed parameters (Table I) as realized by the
// default configuration, for verification against the paper.
#include <cstdio>

#include "noc/noc_params.hpp"
#include "power/energy_model.hpp"

int main() {
  using namespace flov;
  const NocParams p;
  const EnergyParams e;
  std::printf("Table I — simulation testbed parameters\n");
  std::printf("%-28s %dx%d mesh\n", "Network topology", p.width, p.height);
  std::printf("%-28s %d flits\n", "Input buffer depth", p.buffer_depth);
  std::printf("%-28s 3-stage (3 cycles) + 1-cycle link\n", "Router");
  std::printf("%-28s %d regular + %d escape VC per vnet\n", "Virtual channels",
              p.vcs_per_vnet - 1, 1);
  std::printf("%-28s %d (synthetic) / 3 (full-system)\n", "Virtual networks",
              p.num_vnets);
  std::printf("%-28s %d flits/packet (synthetic)\n", "Packet size",
              p.packet_size);
  std::printf("%-28s 32 KB L1, 8 MB L2 (4 corner banks), MESI, 4 MCs\n",
              "Memory hierarchy");
  std::printf("%-28s 32 nm\n", "Technology");
  std::printf("%-28s %.1f GHz\n", "Clock frequency", e.clock_freq_ghz);
  std::printf("%-28s 1 mm, %llu cycle, 16 B width\n", "Link",
              static_cast<unsigned long long>(p.link_latency));
  std::printf("%-28s overhead %.1f pJ, wakeup %llu cycles\n",
              "Power gating", e.pg_transition_pj,
              static_cast<unsigned long long>(p.wakeup_latency));
  std::printf("%-28s YX routing\n", "Baseline routing");
  std::printf("%-28s %llu-cycle head-of-line wait -> escape VC\n",
              "Deadlock recovery",
              static_cast<unsigned long long>(p.deadlock_timeout));
  return 0;
}
