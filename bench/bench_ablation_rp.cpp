// Router Parking ablations: parking policy (aggressive vs conservative)
// and Phase-I reconfiguration latency (how much of RP's Fig.-10 spike is
// the stall itself).
#include <algorithm>
#include <memory>

#include "bench_util.hpp"
#include "rp/rp_network.hpp"
#include "traffic/gating_scenario.hpp"
#include "traffic/synthetic_traffic.hpp"
#include "traffic/traffic_pattern.hpp"

namespace {

using namespace flov;

struct RpRun {
  double avg_latency = 0.0;
  double peak_window = 0.0;
  double static_mw = 0.0;
  int parked = 0;
};

RpRun run_rp(FabricManagerConfig fm, double gated, Cycle measure,
             const std::vector<Cycle>& changes) {
  NocParams p;
  RpNetwork sys(p, EnergyParams{}, fm);
  MeshGeometry g(p.width, p.height);
  auto pattern = TrafficPattern::create("uniform", g);
  SyntheticTraffic traffic(&sys, pattern.get(), 0.02, p.packet_size, 77);
  GatingScenario scen =
      changes.empty() ? GatingScenario::uniform_fraction(g, gated, 5)
                      : GatingScenario::epochs(g, gated, changes, 5);
  LatencyStats stats(3, 1000);
  stats.set_measure_from(10000);
  sys.network().set_eject_callback(
      [&](const PacketRecord& r) { stats.record(r); });
  const Cycle total = 10000 + measure;
  for (Cycle now = 0; now < total; ++now) {
    scen.apply(sys, now);
    traffic.step(now);
    sys.step(now);
    if (now == 10000) sys.power().begin_window(now);
  }
  RpRun out;
  out.avg_latency = stats.avg_latency();
  if (const TimeSeries* ts = stats.timeline()) {
    for (const auto& pt : ts->points()) {
      out.peak_window = std::max(out.peak_window, pt.mean);
    }
  }
  out.static_mw = sys.power().report(total).static_mw;
  out.parked = sys.parked_router_count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flov;
  using namespace flov::bench;
  flov::Config cfg;
  cfg.parse_args(argc, argv);
  const flov::Cycle measure = cfg.get_int("measure", 40000);
  const int jobs = cfg.get_int("jobs", 0);

  // Each run builds its own RpNetwork, so the cells are independent; run
  // them all on the pool, print in order afterwards.
  const RpPolicy policies[] = {RpPolicy::kAggressive, RpPolicy::kConservative};
  const Cycle phase1s[] = {200, 750, 1500, 3000};
  std::vector<RpRun> runs(2 + 4);
  parallel_run(static_cast<int>(runs.size()), jobs, [&](int i) {
    FabricManagerConfig fm;
    if (i < 2) {
      fm.policy = policies[i];
      runs[i] = run_rp(fm, 0.5, measure, {});
    } else {
      fm.phase1_latency = phase1s[i - 2];
      runs[i] = run_rp(fm, 0.1, measure, {20000, 30000});
    }
  });

  print_header("RP ablation — parking policy at 50% gated cores");
  std::printf("%-14s %12s %12s %8s\n", "policy", "avg latency", "static mW",
              "parked");
  for (int i = 0; i < 2; ++i) {
    const RpRun& r = runs[i];
    std::printf("%-14s %12.2f %12.2f %8d\n",
                policies[i] == RpPolicy::kAggressive ? "aggressive"
                                                     : "conservative",
                r.avg_latency, r.static_mw, r.parked);
  }

  print_header("RP ablation — Phase-I latency vs reconfiguration spike");
  std::printf("%-14s %12s %14s\n", "phase1", "avg latency", "peak window");
  for (int i = 0; i < 4; ++i) {
    const RpRun& r = runs[2 + i];
    std::printf("%-14llu %12.2f %14.2f\n",
                static_cast<unsigned long long>(phase1s[i]), r.avg_latency,
                r.peak_window);
  }
  return 0;
}
