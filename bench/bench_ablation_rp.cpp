// Router Parking ablations: parking policy (aggressive vs conservative)
// and Phase-I reconfiguration latency (how much of RP's Fig.-10 spike is
// the stall itself).
#include <algorithm>
#include <memory>

#include "bench_util.hpp"
#include "rp/rp_network.hpp"
#include "traffic/gating_scenario.hpp"
#include "traffic/synthetic_traffic.hpp"
#include "traffic/traffic_pattern.hpp"

namespace {

using namespace flov;

struct RpRun {
  double avg_latency = 0.0;
  double peak_window = 0.0;
  double static_mw = 0.0;
  int parked = 0;
};

RpRun run_rp(FabricManagerConfig fm, double gated, Cycle measure,
             const std::vector<Cycle>& changes) {
  NocParams p;
  RpNetwork sys(p, EnergyParams{}, fm);
  MeshGeometry g(p.width, p.height);
  auto pattern = TrafficPattern::create("uniform", g);
  SyntheticTraffic traffic(&sys, pattern.get(), 0.02, p.packet_size, 77);
  GatingScenario scen =
      changes.empty() ? GatingScenario::uniform_fraction(g, gated, 5)
                      : GatingScenario::epochs(g, gated, changes, 5);
  LatencyStats stats(3, 1000);
  stats.set_measure_from(10000);
  sys.network().set_eject_callback(
      [&](const PacketRecord& r) { stats.record(r); });
  const Cycle total = 10000 + measure;
  for (Cycle now = 0; now < total; ++now) {
    scen.apply(sys, now);
    traffic.step(now);
    sys.step(now);
    if (now == 10000) sys.power().begin_window(now);
  }
  RpRun out;
  out.avg_latency = stats.avg_latency();
  if (const TimeSeries* ts = stats.timeline()) {
    for (const auto& pt : ts->points()) {
      out.peak_window = std::max(out.peak_window, pt.mean);
    }
  }
  out.static_mw = sys.power().report(total).static_mw;
  out.parked = sys.parked_router_count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flov::bench;
  flov::Config cfg;
  cfg.parse_args(argc, argv);
  const flov::Cycle measure = cfg.get_int("measure", 40000);

  print_header("RP ablation — parking policy at 50% gated cores");
  std::printf("%-14s %12s %12s %8s\n", "policy", "avg latency", "static mW",
              "parked");
  for (auto policy : {flov::RpPolicy::kAggressive,
                      flov::RpPolicy::kConservative}) {
    flov::FabricManagerConfig fm;
    fm.policy = policy;
    const RpRun r = run_rp(fm, 0.5, measure, {});
    std::printf("%-14s %12.2f %12.2f %8d\n",
                policy == flov::RpPolicy::kAggressive ? "aggressive"
                                                      : "conservative",
                r.avg_latency, r.static_mw, r.parked);
  }

  print_header("RP ablation — Phase-I latency vs reconfiguration spike");
  std::printf("%-14s %12s %14s\n", "phase1", "avg latency", "peak window");
  for (flov::Cycle p1 : {200, 750, 1500, 3000}) {
    flov::FabricManagerConfig fm;
    fm.phase1_latency = p1;
    const RpRun r = run_rp(fm, 0.1, measure, {20000, 30000});
    std::printf("%-14llu %12.2f %14.2f\n",
                static_cast<unsigned long long>(p1), r.avg_latency,
                r.peak_window);
  }
  return 0;
}
