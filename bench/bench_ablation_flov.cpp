// Ablation studies for the FLOV design choices DESIGN.md calls out:
//   (a) wakeup latency (Table I: 10 cycles) under reconfiguration churn,
//   (b) deadlock-recovery timeout (escape-VC diversion threshold),
//   (c) escape sub-network disabled entirely (expected: possible deadlock,
//       caught by the harness watchdog — demonstrating why Duato recovery
//       is part of the design),
//   (d) input buffer depth,
//   (e) drain idle threshold (how eagerly routers chase their gated cores).
#include <exception>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flov;
  using namespace flov::bench;
  SyntheticExperimentConfig base = synthetic_from_args(argc, argv);
  base.scheme = Scheme::kGFlov;
  base.pattern = "uniform";
  base.inj_rate_flits = 0.04;
  base.gated_fraction = 0.5;
  if (base.measure > 30000) base.measure = 30000;

  const SweepOptions sweep = sweep_from_args(argc, argv);
  const Cycle wakeups[] = {5, 10, 20, 50};
  const Cycle timeouts[] = {16, 64, 128, 512};
  const int depths[] = {2, 4, 6, 8};
  const Cycle thresholds[] = {4, 16, 64, 256};

  // Ablations (a), (b), (d), (e) are one pooled sweep; (c) stays apart —
  // it EXPECTS a watchdog abort, and the point-order-deterministic rethrow
  // would otherwise mask or reorder that failure against real ones.
  std::vector<SyntheticExperimentConfig> points;
  for (Cycle w : wakeups) {
    SyntheticExperimentConfig c = base;
    c.noc.wakeup_latency = w;
    c.gating_changes = {15000, 20000, 25000, 30000};
    points.push_back(c);
  }
  for (Cycle t : timeouts) {
    SyntheticExperimentConfig c = base;
    c.noc.deadlock_timeout = t;
    c.inj_rate_flits = 0.08;
    c.gated_fraction = 0.6;
    points.push_back(c);
  }
  for (int d : depths) {
    SyntheticExperimentConfig c = base;
    c.noc.buffer_depth = d;
    points.push_back(c);
  }
  for (Cycle t : thresholds) {
    SyntheticExperimentConfig c = base;
    c.noc.drain_idle_threshold = t;
    points.push_back(c);
  }
  const std::vector<RunResult> results = run_sweep(points, sweep);
  std::size_t idx = 0;

  print_header("Ablation (a) — wakeup latency, gFLOV with gating churn");
  std::printf("%-16s %12s %12s\n", "wakeup (cycles)", "avg latency",
              "total mW");
  for (Cycle w : wakeups) {
    const RunResult& r = results[idx++];
    std::printf("%-16llu %12.2f %12.2f\n",
                static_cast<unsigned long long>(w), r.avg_latency,
                r.power.total_mw);
  }

  print_header("Ablation (b) — deadlock-recovery timeout (escape threshold)");
  std::printf("%-16s %12s %14s\n", "timeout", "avg latency", "escape pkts");
  for (Cycle t : timeouts) {
    const RunResult& r = results[idx++];
    std::printf("%-16llu %12.2f %14llu\n",
                static_cast<unsigned long long>(t), r.avg_latency,
                static_cast<unsigned long long>(r.escape_packets));
  }

  print_header("Ablation (c) — escape sub-network disabled");
  {
    SyntheticExperimentConfig c = base;
    c.noc.enable_escape_diversion = false;
    c.inj_rate_flits = 0.10;
    c.gated_fraction = 0.7;
    c.noc.buffer_depth = 2;
    c.watchdog = 20000;
    try {
      const RunResult r = run_synthetic(c);
      std::printf("survived without escape: latency %.2f (load too light "
                  "to deadlock this seed)\n",
                  r.avg_latency);
    } catch (const std::exception& e) {
      std::printf("DEADLOCK detected by watchdog, as expected — the escape "
                  "sub-network is load-bearing.\n  (%s)\n", e.what());
    }
  }

  print_header("Ablation (d) — input buffer depth");
  std::printf("%-16s %12s %12s\n", "depth (flits)", "avg latency",
              "static mW");
  for (int d : depths) {
    const RunResult& r = results[idx++];
    std::printf("%-16d %12.2f %12.2f\n", d, r.avg_latency,
                r.power.static_mw);
  }

  print_header("Ablation (e) — drain idle threshold");
  std::printf("%-16s %12s %12s %8s\n", "threshold", "avg latency",
              "static mW", "gated");
  for (Cycle t : thresholds) {
    const RunResult& r = results[idx++];
    std::printf("%-16llu %12.2f %12.2f %8d\n",
                static_cast<unsigned long long>(t), r.avg_latency,
                r.power.static_mw, r.gated_routers_end);
  }
  return 0;
}
