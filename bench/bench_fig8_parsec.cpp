// Reproduces Figure 8(c,d): full-system evaluation over the nine
// PARSEC-like benchmark profiles — NoC static/total energy and runtime for
// Baseline / RP / rFLOV / gFLOV, plus the paper's headline averages:
// FLOV ~ -43% static energy vs Baseline, ~ -22% static and ~ -18% total
// energy vs RP, with ~1% performance degradation.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cmp/cmp_system.hpp"
#include "common/config.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace flov;
  Config cfg;
  cfg.parse_args(argc, argv);
  const int jobs = cfg.get_int("jobs", 0);

  CmpConfig base;
  base.noc = NocParams::from_config(cfg);
  base.energy = EnergyParams::from_config(cfg);
  base.seed = cfg.get_int("seed", 1);

  const auto suite = BenchmarkProfile::parsec_suite();
  std::printf(
      "\n================================================================\n"
      "Fig. 8(c,d) — PARSEC-like full-system: energy & runtime (8x8, 3 "
      "vnets, MESI, 4 corner MCs)\n"
      "================================================================\n");
  std::printf("%-14s %-9s | %10s %12s %12s %9s\n", "benchmark", "scheme",
              "runtime", "static(uJ)", "total(uJ)", "gated@end");

  struct Norm {
    double static_e, total_e, runtime;
  };
  // [benchmark][scheme]
  std::vector<std::vector<Norm>> all;

  // 9 profiles x 4 schemes, each an independent full-system run.
  const int n_schemes = static_cast<int>(std::size(kAllSchemes));
  const int n_runs = static_cast<int>(suite.size()) * n_schemes;
  std::vector<CmpResult> results(static_cast<std::size_t>(n_runs));
  parallel_run(n_runs, jobs, [&](int i) {
    CmpConfig c = base;
    c.profile = suite[static_cast<std::size_t>(i / n_schemes)];
    c.scheme = kAllSchemes[i % n_schemes];
    results[static_cast<std::size_t>(i)] = run_cmp(c);
  });

  int idx = 0;
  for (const auto& prof : suite) {
    all.emplace_back();
    for (Scheme s : kAllSchemes) {
      (void)s;
      const CmpResult& r = results[static_cast<std::size_t>(idx++)];
      std::printf("%-14s %-9s | %10llu %12.2f %12.2f %9d\n",
                  prof.name.c_str(), r.scheme.c_str(),
                  static_cast<unsigned long long>(r.runtime),
                  r.power.static_energy_pj * 1e-6,
                  r.power.total_energy_pj * 1e-6, r.final_gated_cores);
      all.back().push_back(Norm{r.power.static_energy_pj,
                                r.power.total_energy_pj,
                                static_cast<double>(r.runtime)});
    }
    std::printf("\n");
  }

  // Scheme order: 0 Baseline, 1 RP, 2 rFLOV, 3 gFLOV. "FLOV" headline =
  // gFLOV (the paper's full-system FLOV configuration).
  auto geo_mean_ratio = [&](int a, int b, double Norm::*field) {
    double log_sum = 0;
    for (const auto& bench : all) {
      log_sum += std::log(bench[a].*field / bench[b].*field);
    }
    return std::exp(log_sum / all.size());
  };

  std::printf("---- headline averages (geometric mean over %zu benchmarks) "
              "----\n", all.size());
  std::printf("FLOV static energy vs Baseline : %+.1f%%  (paper: -43%%)\n",
              100.0 * (geo_mean_ratio(3, 0, &Norm::static_e) - 1.0));
  std::printf("FLOV static energy vs RP       : %+.1f%%  (paper: -22%%)\n",
              100.0 * (geo_mean_ratio(3, 1, &Norm::static_e) - 1.0));
  std::printf("FLOV total  energy vs RP       : %+.1f%%  (paper: -18%%)\n",
              100.0 * (geo_mean_ratio(3, 1, &Norm::total_e) - 1.0));
  std::printf("FLOV runtime vs Baseline       : %+.1f%%  (paper: ~+1%%)\n",
              100.0 * (geo_mean_ratio(3, 0, &Norm::runtime) - 1.0));
  std::printf("RP   runtime vs Baseline       : %+.1f%%\n",
              100.0 * (geo_mean_ratio(1, 0, &Norm::runtime) - 1.0));
  return 0;
}
