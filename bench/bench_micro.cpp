// Micro-benchmarks (google-benchmark): simulator throughput and the cost of
// the core building blocks. These are engineering benchmarks for the
// simulator itself, not paper figures.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "flov/flov_network.hpp"
#include "noc/arbiter.hpp"
#include "noc/network.hpp"
#include "routing/updown.hpp"
#include "routing/yx_routing.hpp"
#include "sim/experiment.hpp"

namespace flov {
namespace {

void BM_RoundRobinArbiter(benchmark::State& state) {
  RoundRobinArbiter arb(static_cast<int>(state.range(0)));
  std::vector<bool> req(state.range(0), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arb.arbitrate(req));
  }
}
BENCHMARK(BM_RoundRobinArbiter)->Arg(4)->Arg(16);

void BM_Rng(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_below(64));
  }
}
BENCHMARK(BM_Rng);

void BM_UpDownRouteBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  MeshGeometry g(k, k);
  Rng rng(5);
  std::vector<bool> powered(g.num_nodes(), true);
  for (int i = 0; i < g.num_nodes(); ++i) powered[i] = !rng.next_bool(0.3);
  powered[0] = true;
  for (auto _ : state) {
    UpDownRoutes r(g, powered);
    benchmark::DoNotOptimize(r.root());
  }
}
BENCHMARK(BM_UpDownRouteBuild)->Arg(8)->Arg(16);

/// Cycles/second of the whole mesh under load (the headline simulator
/// throughput number): one iteration = one network cycle.
void BM_NetworkCycle(benchmark::State& state) {
  NocParams p;
  p.width = 8;
  p.height = 8;
  MeshGeometry g(8, 8);
  YxRouting routing(g);
  Network net(p, &routing, nullptr);
  net.set_eject_callback([](const PacketRecord&) {});
  Rng rng(3);
  Cycle now = 0;
  for (auto _ : state) {
    // Keep ~0.05 flits/node/cycle of uniform traffic flowing.
    for (NodeId s = 0; s < 64; ++s) {
      if (!rng.next_bool(0.0125)) continue;
      PacketDescriptor d;
      d.src = s;
      d.dest = static_cast<NodeId>(rng.next_below(64));
      if (d.dest == s) continue;
      d.size_flits = 4;
      d.gen_cycle = now;
      net.enqueue(d);
    }
    net.step(now++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkCycle);

/// Full experiment throughput including gating machinery (gFLOV, 40% off).
void BM_GFlovCycle(benchmark::State& state) {
  NocParams p;
  p.width = 8;
  p.height = 8;
  FlovNetwork sys(p, FlovMode::kGeneralized, EnergyParams{});
  MeshGeometry g(8, 8);
  Rng rng(7);
  for (NodeId n = 0; n < 64; ++n) {
    if (rng.next_bool(0.4)) sys.set_core_gated(n, true, 0);
  }
  Cycle now = 0;
  sys.network().set_eject_callback([](const PacketRecord&) {});
  for (auto _ : state) {
    for (NodeId s = 0; s < 64; ++s) {
      if (sys.core_gated(s) || !rng.next_bool(0.005)) continue;
      NodeId d = static_cast<NodeId>(rng.next_below(64));
      if (d == s || sys.core_gated(d)) continue;
      PacketDescriptor pd;
      pd.src = s;
      pd.dest = d;
      pd.size_flits = 4;
      pd.gen_cycle = now;
      sys.network().enqueue(pd);
    }
    sys.step(now++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GFlovCycle);

}  // namespace
}  // namespace flov

BENCHMARK_MAIN();
