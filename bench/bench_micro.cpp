// Micro-benchmarks (google-benchmark): simulator throughput and the cost of
// the core building blocks. These are engineering benchmarks for the
// simulator itself, not paper figures.
//
// Besides the normal console output, `json=<path>` writes a machine-
// readable BENCH_sweep.json with per-benchmark throughput plus wall-clock
// and cycles/sec for a short figure-style sweep (see scripts/
// bench_compare.py for diffing two such files):
//   bench_micro json=BENCH_sweep.json sweep_measure=4000 jobs=2
// google-benchmark's own --benchmark_* flags pass through unchanged.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "flov/flov_network.hpp"
#include "noc/arbiter.hpp"
#include "noc/network.hpp"
#include "routing/updown.hpp"
#include "routing/yx_routing.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace flov {
namespace {

void BM_RoundRobinArbiter(benchmark::State& state) {
  RoundRobinArbiter arb(static_cast<int>(state.range(0)));
  std::vector<bool> req(state.range(0), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arb.arbitrate(req));
  }
}
BENCHMARK(BM_RoundRobinArbiter)->Arg(4)->Arg(16);

void BM_Rng(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_below(64));
  }
}
BENCHMARK(BM_Rng);

void BM_UpDownRouteBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  MeshGeometry g(k, k);
  Rng rng(5);
  std::vector<bool> powered(g.num_nodes(), true);
  for (int i = 0; i < g.num_nodes(); ++i) powered[i] = !rng.next_bool(0.3);
  powered[0] = true;
  for (auto _ : state) {
    UpDownRoutes r(g, powered);
    benchmark::DoNotOptimize(r.root());
  }
}
BENCHMARK(BM_UpDownRouteBuild)->Arg(8)->Arg(16);

/// Cycles/second of the whole mesh under load (the headline simulator
/// throughput number): one iteration = one network cycle.
void BM_NetworkCycle(benchmark::State& state) {
  NocParams p;
  p.width = 8;
  p.height = 8;
  MeshGeometry g(8, 8);
  YxRouting routing(g);
  Network net(p, &routing, nullptr);
  net.set_eject_callback([](const PacketRecord&) {});
  Rng rng(3);
  Cycle now = 0;
  for (auto _ : state) {
    // Keep ~0.05 flits/node/cycle of uniform traffic flowing.
    for (NodeId s = 0; s < 64; ++s) {
      if (!rng.next_bool(0.0125)) continue;
      PacketDescriptor d;
      d.src = s;
      d.dest = static_cast<NodeId>(rng.next_below(64));
      if (d.dest == s) continue;
      d.size_flits = 4;
      d.gen_cycle = now;
      net.enqueue(d);
    }
    net.step(now++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkCycle);

/// Full experiment throughput including gating machinery: one iteration =
/// one gFLOV cycle with `gate_pct`% of the cores off. The gated fraction is
/// exactly the population the active-set scheduler skips, so throughput
/// should GROW with the gating level.
void BM_GFlovCycle(benchmark::State& state) {
  const double gated_fraction = static_cast<double>(state.range(0)) / 100.0;
  NocParams p;
  p.width = 8;
  p.height = 8;
  FlovNetwork sys(p, FlovMode::kGeneralized, EnergyParams{});
  MeshGeometry g(8, 8);
  Rng rng(7);
  for (NodeId n = 0; n < 64; ++n) {
    if (rng.next_bool(gated_fraction)) sys.set_core_gated(n, true, 0);
  }
  Cycle now = 0;
  sys.network().set_eject_callback([](const PacketRecord&) {});
  for (auto _ : state) {
    for (NodeId s = 0; s < 64; ++s) {
      if (sys.core_gated(s) || !rng.next_bool(0.005)) continue;
      NodeId d = static_cast<NodeId>(rng.next_below(64));
      if (d == s || sys.core_gated(d)) continue;
      PacketDescriptor pd;
      pd.src = s;
      pd.dest = d;
      pd.size_flits = 4;
      pd.gen_cycle = now;
      sys.network().enqueue(pd);
    }
    sys.step(now++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GFlovCycle)->Arg(40)->Arg(50)->ArgName("gate_pct");

/// Console reporter that additionally captures every run so main() can
/// write the machine-readable JSON (works across google-benchmark versions
/// — only iterations + accumulated real time are consumed).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    std::int64_t iterations = 0;
    double real_time_s = 0.0;  ///< accumulated over all iterations
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      Entry e;
      e.name = r.benchmark_name();
      e.iterations = static_cast<std::int64_t>(r.iterations);
      e.real_time_s = r.real_accumulated_time;
      entries.push_back(std::move(e));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  std::vector<Entry> entries;
};

struct SweepPointTiming {
  std::string scheme;
  double gated = 0.0;
  double wall_s = 0.0;
  double cycles_per_sec = 0.0;
};

}  // namespace
}  // namespace flov

int main(int argc, char** argv) {
  using namespace flov;
  using Clock = std::chrono::steady_clock;

  // Split argv: our key=value settings vs google-benchmark's --flags
  // (Config ignores tokens without '=' and we only read our own keys, so
  // parsing everything once is safe).
  Config cfg;
  cfg.parse_args(argc, argv);
  std::vector<char*> bm_args;
  bm_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) bm_args.push_back(argv[i]);
  }
  const std::string json_path = cfg.get_string("json", "");
  const Cycle sweep_measure = cfg.get_int("sweep_measure", 4000);
  const Cycle sweep_warmup = cfg.get_int("sweep_warmup", 1000);
  const int jobs = cfg.get_int("jobs", 1);

  int bm_argc = static_cast<int>(bm_args.size());
  benchmark::Initialize(&bm_argc, bm_args.data());
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (json_path.empty()) return 0;

  // Short figure-style sweep, timed per point: 4 schemes x 3 gating levels
  // at the paper's low injection rate.
  std::vector<SyntheticExperimentConfig> points;
  std::vector<SweepPointTiming> timings;
  for (double f : {0.0, 0.4, 0.8}) {
    for (Scheme s : kAllSchemes) {
      SyntheticExperimentConfig ex;
      ex.scheme = s;
      ex.pattern = "uniform";
      ex.inj_rate_flits = 0.02;
      ex.gated_fraction = f;
      ex.warmup = sweep_warmup;
      ex.measure = sweep_measure;
      points.push_back(ex);
      timings.push_back({std::string(to_string(s)), f, 0.0, 0.0});
    }
  }
  const auto sweep_start = Clock::now();
  parallel_run(static_cast<int>(points.size()), jobs, [&](int i) {
    const auto t0 = Clock::now();
    (void)run_synthetic(points[static_cast<std::size_t>(i)]);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    timings[static_cast<std::size_t>(i)].wall_s = secs;
    timings[static_cast<std::size_t>(i)].cycles_per_sec =
        static_cast<double>(points[static_cast<std::size_t>(i)].warmup +
                            points[static_cast<std::size_t>(i)].measure) /
        secs;
  });
  const double sweep_wall =
      std::chrono::duration<double>(Clock::now() - sweep_start).count();

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < reporter.entries.size(); ++i) {
    const auto& e = reporter.entries[i];
    const double per_iter_ns =
        e.iterations > 0 ? e.real_time_s * 1e9 / static_cast<double>(e.iterations) : 0.0;
    const double items_per_sec =
        e.real_time_s > 0 ? static_cast<double>(e.iterations) / e.real_time_s : 0.0;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"iterations\": %lld, "
                 "\"per_iter_ns\": %.2f, \"items_per_second\": %.2f}%s\n",
                 e.name.c_str(), static_cast<long long>(e.iterations),
                 per_iter_ns, items_per_sec,
                 i + 1 < reporter.entries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"sweep\": {\n");
  std::fprintf(f, "    \"jobs\": %d,\n    \"warmup\": %llu,\n"
               "    \"measure\": %llu,\n    \"total_wall_s\": %.3f,\n",
               jobs, static_cast<unsigned long long>(sweep_warmup),
               static_cast<unsigned long long>(sweep_measure), sweep_wall);
  std::fprintf(f, "    \"points\": [\n");
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const auto& t = timings[i];
    std::fprintf(f,
                 "      {\"scheme\": \"%s\", \"gated\": %.2f, "
                 "\"wall_s\": %.3f, \"cycles_per_sec\": %.1f}%s\n",
                 t.scheme.c_str(), t.gated, t.wall_s, t.cycles_per_sec,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  benchmark::Shutdown();
  return 0;
}
