// Shared helpers for the figure-reproduction benches: argument handling and
// table printing. Every bench accepts "key=value" overrides, e.g.
//   bench_fig6_uniform measure=20000 width=8 seed=3 jobs=4
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "telemetry/manifest.hpp"

namespace flov::bench {

/// Thread-pool width for the sweep, from `jobs=<n>` (0/default = all
/// hardware threads; 1 = the serial reference path).
inline SweepOptions sweep_from_args(int argc, char** argv) {
  Config cfg;
  cfg.parse_args(argc, argv);
  SweepOptions opts;
  opts.jobs = cfg.get_int("jobs", 0);
  return opts;
}

/// Standard synthetic-experiment setup from CLI args (Table-I defaults,
/// paper methodology: 10k warm-up, 100k total cycles).
inline SyntheticExperimentConfig synthetic_from_args(int argc, char** argv) {
  Config cfg;
  cfg.parse_args(argc, argv);
  SyntheticExperimentConfig ex;
  ex.noc = NocParams::from_config(cfg);
  ex.energy = EnergyParams::from_config(cfg);
  ex.warmup = cfg.get_int("warmup", 10000);
  ex.measure = cfg.get_int("measure", 90000);
  ex.seed = cfg.get_int("seed", 1);
  ex.telemetry = telemetry::TelemetryOptions::from_config(cfg);
  return ex;
}

/// The gating fractions of Figs. 6/7/9 (0% .. 80%).
inline std::vector<double> gating_fractions() {
  return {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// Optional CSV sink: pass csv=<path> to any figure bench to also dump the
/// raw sweep data (one row per run) for external plotting.
class CsvSink {
 public:
  CsvSink(int argc, char** argv, const char* header) {
    Config cfg;
    cfg.parse_args(argc, argv);
    const std::string path = cfg.get_string("csv", "");
    if (path.empty()) return;
    file_ = std::fopen(path.c_str(), "w");
    if (file_) std::fprintf(file_, "%s\n", header);
  }
  ~CsvSink() {
    if (file_) std::fclose(file_);
  }
  CsvSink(const CsvSink&) = delete;
  CsvSink& operator=(const CsvSink&) = delete;

  /// Writes one printf-formatted row.
  template <typename... Args>
  void row(const char* fmt, Args... args) {
    if (!file_) return;
    std::fprintf(file_, fmt, args...);
    std::fprintf(file_, "\n");
  }

 private:
  std::FILE* file_ = nullptr;
};

/// Optional manifest sink: pass manifest=<path> to a figure bench to write
/// a flyover-sweep-manifest-v1 JSON artifact covering the whole sweep —
/// resolved config, per-point metric registries, the deterministic merged
/// registry, and all structured incidents in submission order. The CI
/// determinism gate diffs these between jobs=1 and jobs=4 runs.
class ManifestSink {
 public:
  ManifestSink(int argc, char** argv, const char* bench_name)
      : name_(bench_name), start_(std::chrono::steady_clock::now()) {
    cfg_.parse_args(argc, argv);
    path_ = cfg_.get_string("manifest", "");
    // json= is an accepted alias (used by benches whose primary output is
    // the human table and the manifest is a machine-readable side artifact).
    if (path_.empty()) path_ = cfg_.get_string("json", "");
  }

  bool enabled() const { return !path_.empty(); }

  /// Writes the manifest; call once after run_sweep. `points` and `results`
  /// must be index-aligned (run_sweep keeps submission order). No-op
  /// without manifest=<path>.
  void write(const std::vector<SyntheticExperimentConfig>& points,
             const std::vector<RunResult>& results, const SweepOptions& opts) {
    if (!enabled()) return;
    telemetry::SweepManifest m;
    m.name = name_;
    m.config = cfg_;
    m.jobs = opts.jobs;
    m.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    telemetry::MetricsRegistry merged = merge_sweep_metrics(results);
    m.merged = &merged;
    telemetry::StructuredSink incidents;
    for (std::size_t i = 0; i < results.size() && i < points.size(); ++i) {
      telemetry::SweepPointEntry e;
      e.scheme = results[i].scheme;
      e.pattern = points[i].pattern;
      e.inj_rate = points[i].inj_rate_flits;
      e.gated_fraction = points[i].gated_fraction;
      e.seed = points[i].seed;
      e.metrics = results[i].metrics.get();
      m.points.push_back(e);
      if (results[i].incidents) {
        for (const std::string& rec : results[i].incidents->records()) {
          incidents.add(rec);
        }
      }
    }
    m.incidents = &incidents;
    m.write(path_);
    std::printf("manifest written to %s\n", path_.c_str());
  }

 private:
  Config cfg_;
  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

/// Appends the standard per-run CSV fields for a synthetic sweep row.
inline void csv_run_row(CsvSink& csv, const char* figure,
                        const char* pattern, double inj, double gated,
                        const RunResult& r) {
  csv.row("%s,%s,%.3f,%.2f,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,"
          "%d,%llu",
          figure, pattern, inj, gated, r.scheme.c_str(), r.avg_latency,
          r.breakdown.router, r.breakdown.link, r.breakdown.serialization,
          r.breakdown.contention, r.breakdown.flov, r.power.static_mw,
          r.power.dynamic_mw, r.power.total_mw, r.gated_routers_end,
          static_cast<unsigned long long>(r.packets_measured));
}

inline constexpr const char* kCsvHeader =
    "figure,pattern,inj,gated,scheme,latency,router,link,serialization,"
    "contention,flov,static_mw,dynamic_mw,total_mw,gated_routers,packets";

}  // namespace flov::bench
