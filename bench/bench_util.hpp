// Shared helpers for the figure-reproduction benches: argument handling and
// table printing. Every bench accepts "key=value" overrides, e.g.
//   bench_fig6_uniform measure=20000 width=8 seed=3 jobs=4
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace flov::bench {

/// Thread-pool width for the sweep, from `jobs=<n>` (0/default = all
/// hardware threads; 1 = the serial reference path).
inline SweepOptions sweep_from_args(int argc, char** argv) {
  Config cfg;
  cfg.parse_args(argc, argv);
  SweepOptions opts;
  opts.jobs = cfg.get_int("jobs", 0);
  return opts;
}

/// Standard synthetic-experiment setup from CLI args (Table-I defaults,
/// paper methodology: 10k warm-up, 100k total cycles).
inline SyntheticExperimentConfig synthetic_from_args(int argc, char** argv) {
  Config cfg;
  cfg.parse_args(argc, argv);
  SyntheticExperimentConfig ex;
  ex.noc = NocParams::from_config(cfg);
  ex.energy = EnergyParams::from_config(cfg);
  ex.warmup = cfg.get_int("warmup", 10000);
  ex.measure = cfg.get_int("measure", 90000);
  ex.seed = cfg.get_int("seed", 1);
  return ex;
}

/// The gating fractions of Figs. 6/7/9 (0% .. 80%).
inline std::vector<double> gating_fractions() {
  return {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// Optional CSV sink: pass csv=<path> to any figure bench to also dump the
/// raw sweep data (one row per run) for external plotting.
class CsvSink {
 public:
  CsvSink(int argc, char** argv, const char* header) {
    Config cfg;
    cfg.parse_args(argc, argv);
    const std::string path = cfg.get_string("csv", "");
    if (path.empty()) return;
    file_ = std::fopen(path.c_str(), "w");
    if (file_) std::fprintf(file_, "%s\n", header);
  }
  ~CsvSink() {
    if (file_) std::fclose(file_);
  }
  CsvSink(const CsvSink&) = delete;
  CsvSink& operator=(const CsvSink&) = delete;

  /// Writes one printf-formatted row.
  template <typename... Args>
  void row(const char* fmt, Args... args) {
    if (!file_) return;
    std::fprintf(file_, fmt, args...);
    std::fprintf(file_, "\n");
  }

 private:
  std::FILE* file_ = nullptr;
};

/// Appends the standard per-run CSV fields for a synthetic sweep row.
inline void csv_run_row(CsvSink& csv, const char* figure,
                        const char* pattern, double inj, double gated,
                        const RunResult& r) {
  csv.row("%s,%s,%.3f,%.2f,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,"
          "%d,%llu",
          figure, pattern, inj, gated, r.scheme.c_str(), r.avg_latency,
          r.breakdown.router, r.breakdown.link, r.breakdown.serialization,
          r.breakdown.contention, r.breakdown.flov, r.power.static_mw,
          r.power.dynamic_mw, r.power.total_mw, r.gated_routers_end,
          static_cast<unsigned long long>(r.packets_measured));
}

inline constexpr const char* kCsvHeader =
    "figure,pattern,inj,gated,scheme,latency,router,link,serialization,"
    "contention,flov,static_mw,dynamic_mw,total_mw,gated_routers,packets";

}  // namespace flov::bench
