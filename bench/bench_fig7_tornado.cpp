// Reproduces Figure 7: the Fig. 6 panels under Tornado traffic. The paper's
// key observation here: rFLOV/gFLOV *beat even the Baseline* because a large
// share of tornado traffic travels within a row and FLOV links replace the
// 3-cycle router pipeline with a 1-cycle latch at gated intermediates.
#include <map>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flov;
  using namespace flov::bench;
  SyntheticExperimentConfig ex = synthetic_from_args(argc, argv);
  ex.pattern = "tornado";
  CsvSink csv(argc, argv, kCsvHeader);
  const SweepOptions sweep = sweep_from_args(argc, argv);

  for (double inj : {0.02, 0.08}) {
    ex.inj_rate_flits = inj;
    const auto fractions = gating_fractions();
    std::vector<SyntheticExperimentConfig> points;
    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      for (int si = 0; si < 4; ++si) {
        ex.scheme = kAllSchemes[si];
        ex.gated_fraction = fractions[fi];
        points.push_back(ex);
      }
    }
    const std::vector<RunResult> sweep_results = run_sweep(points, sweep);
    std::map<std::pair<int, int>, RunResult> results;
    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      for (int si = 0; si < 4; ++si) {
        const RunResult& r = sweep_results[fi * 4 + si];
        csv_run_row(csv, "fig7", "tornado", inj, fractions[fi], r);
        results[{static_cast<int>(fi), si}] = r;
      }
    }
    char title[160];
    std::snprintf(title, sizeof(title),
                  "Fig. 7 — Tornado traffic, injection %.2f flits/node/cycle",
                  inj);
    print_header(title);
    struct Metric {
      const char* name;
      double (*get)(const RunResult&);
    };
    const Metric metrics[] = {
        {"avg latency (cycles)",
         [](const RunResult& r) { return r.avg_latency; }},
        {"dynamic power (mW)",
         [](const RunResult& r) { return r.power.dynamic_mw; }},
        {"total power (mW)",
         [](const RunResult& r) { return r.power.total_mw; }},
    };
    for (const auto& m : metrics) {
      std::printf("\n%s\n", m.name);
      std::printf("%-8s %10s %10s %10s %10s\n", "gated%", "Baseline", "RP",
                  "rFLOV", "gFLOV");
      for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
        std::printf("%-8.0f", fractions[fi] * 100);
        for (int si = 0; si < 4; ++si) {
          std::printf(" %10.2f", m.get(results[{static_cast<int>(fi), si}]));
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
