// Scalability study (beyond the paper's 8x8, supporting its Section I/II
// argument): FLOV's distributed handshake reconfigures in O(neighborhood)
// time regardless of mesh size, while RP's centralized fabric manager
// stalls the whole network for a Phase-I that grows with the router count
// (route computation for N routers + table distribution across the mesh).
//
// For each mesh size we apply one gating change mid-run and report:
//   * RP reconfiguration duration and its latency-spike peak,
//   * gFLOV's spike peak (none expected) and its average transition time,
//   * steady-state average latency for both.
#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>

#include "bench_util.hpp"
#include "flov/flov_network.hpp"
#include "noc/ipc/shm_arena.hpp"
#include "rp/rp_network.hpp"
#include "traffic/gating_scenario.hpp"
#include "traffic/synthetic_traffic.hpp"
#include "traffic/traffic_pattern.hpp"

namespace {

using namespace flov;

struct Result {
  double avg_latency = 0;
  double peak_window = 0;
  Cycle reconfig_duration = 0;  // RP only
};

template <typename System>
Result drive(System& sys, const NocParams& p, Cycle change_at, Cycle total,
             std::uint64_t seed) {
  MeshGeometry g(p.width, p.height);
  auto pattern = TrafficPattern::create("uniform", g);
  SyntheticTraffic traffic(&sys, pattern.get(), 0.02, p.packet_size, seed);
  GatingScenario scen = GatingScenario::epochs(g, 0.15, {change_at}, seed);
  LatencyStats stats(3, 1000);
  stats.set_measure_from(5000);
  sys.network().set_eject_callback(
      [&](const PacketRecord& r) { stats.record(r); });
  for (Cycle now = 0; now < total; ++now) {
    scen.apply(sys, now);
    traffic.step(now);
    sys.step(now);
  }
  Result r;
  r.avg_latency = stats.avg_latency();
  if (const TimeSeries* ts = stats.timeline()) {
    for (const auto& pt : ts->points()) {
      r.peak_window = std::max(r.peak_window, pt.mean);
    }
  }
  return r;
}

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::stoi(s.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flov::bench;
  Config cfg;
  cfg.parse_args(argc, argv);
  const Cycle total = cfg.get_int("measure", 30000) + 10000;
  // threads= : per-run domain workers (noc.step_threads) for every cell.
  // tiles=TXxTY : explicit tile-domain grid (default: auto row bands).
  // procs= : comma list of forked stepping-process counts; each value adds
  //          a full row set (docs/PERFORMANCE.md, "Multi-process
  //          stepping"). Default "1" — single-process, no arena.
  // Results are bit-identical at any value; only wall time changes.
  const int threads = static_cast<int>(cfg.get_int("threads", 1));
  const std::string tiles = cfg.get_string("tiles", "");
  const std::vector<int> procs_list =
      parse_int_list(cfg.get_string("procs", "1"));
  const int nprocs = static_cast<int>(procs_list.size());
  // Budget the cell pool against the intra-run workers so the bench does
  // not oversubscribe (jobs x procs x threads ~ core count).
  const int max_procs =
      *std::max_element(procs_list.begin(), procs_list.end());
  const int jobs = resolve_jobs(static_cast<int>(cfg.get_int("jobs", 0)),
                                threads, max_procs);
  ManifestSink sink(argc, argv, "bench_scalability");

  // sizes= : comma list of mesh edge lengths. The 32/64 rows are the
  // "interactive large mesh" cells the SoA hot path + tile domains target;
  // trim the list (sizes=4,8,12,16) for a quick look.
  const std::vector<int> sizes =
      parse_int_list(cfg.get_string("sizes", "4,8,12,16,32,64"));
  const int nsizes = static_cast<int>(sizes.size());

  // One pooled task per (procs, mesh size, system) cell; each builds and
  // drives its own network end to end. procs>1 cells heap-allocate the
  // network under a shared-memory arena scope (the multi-process stepper
  // forks workers that must share the network's pages) and tear the
  // network down before the arena unmaps.
  struct Row {
    Result rp, gf;
    Cycle rp_reconfig = 0;
    double rp_wall = 0.0, gf_wall = 0.0;
  };
  std::vector<Row> rows(static_cast<std::size_t>(nprocs * nsizes));
  parallel_run(2 * nsizes * nprocs, jobs, [&](int i) {
    const int cell = i / 2;
    const int k = sizes[cell % nsizes];
    const int procs = procs_list[cell / nsizes];
    NocParams p;
    p.width = k;
    p.height = k;
    p.step_threads = threads;
    p.step_procs = procs;
    p.apply_tiles_shorthand(tiles);
    std::shared_ptr<ipc::ShmArena> arena;
    std::optional<ipc::ShmArenaScope> scope;
    if (procs > 1) {
      arena = ipc::ShmArena::create();
      scope.emplace(arena.get());
    }
    const auto start = std::chrono::steady_clock::now();
    if (i % 2 == 0) {
      // RP: Phase-I grows with the router count (route computation at the
      // FM plus per-router table distribution) — c1 + c2 * N.
      FabricManagerConfig fm;
      fm.phase1_latency = 400 + 5 * k * k;
      auto rp = std::make_unique<RpNetwork>(p, EnergyParams{}, fm);
      rows[cell].rp = drive(*rp, p, /*change_at=*/20000, total, 11);
      rows[cell].rp_reconfig = rp->fabric_manager().last_reconfig_duration();
      rp.reset();  // join worker procs before the arena unmaps
      rows[cell].rp_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    } else {
      auto gf = std::make_unique<FlovNetwork>(p, FlovMode::kGeneralized,
                                              EnergyParams{});
      rows[cell].gf = drive(*gf, p, 20000, total, 11);
      gf.reset();
      rows[cell].gf_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    }
  });

  print_header(
      "Scalability — one gating change mid-run, distributed gFLOV vs "
      "centralized RP");
  std::printf("(step threads per run: %d, tiles: %s)\n", threads,
              tiles.empty() ? "auto" : tiles.c_str());
  std::printf("%-8s %5s | %12s %12s %14s %9s | %12s %12s %9s\n", "mesh",
              "procs", "RP latency", "RP peak", "RP reconfig", "RP wall",
              "gFLOV lat", "gFLOV peak", "gF wall");

  for (int pi = 0; pi < nprocs; ++pi) {
    for (int i = 0; i < nsizes; ++i) {
      const Row& row = rows[static_cast<std::size_t>(pi * nsizes + i)];
      const int k = sizes[i];
      std::printf(
          "%-8s %5d | %12.2f %12.2f %14llu %8.2fs | %12.2f %12.2f %8.2fs\n",
          (std::to_string(k) + "x" + std::to_string(k)).c_str(),
          procs_list[pi], row.rp.avg_latency, row.rp.peak_window,
          static_cast<unsigned long long>(row.rp_reconfig), row.rp_wall,
          row.gf.avg_latency, row.gf.peak_window, row.gf_wall);
    }
  }
  std::printf("\nRP's stall (and the latency spike behind it) grows with the "
              "mesh; gFLOV's distributed handshake does not.\n");

  if (sink.enabled()) {
    // Reuse the sweep-manifest shape: one point per (procs, mesh, scheme)
    // cell, with the bench figures as per-point gauges (wall_seconds
    // included — this artifact records performance, it is not a
    // determinism gate).
    std::vector<SyntheticExperimentConfig> points;
    std::vector<RunResult> results;
    for (int pi = 0; pi < nprocs; ++pi) {
      for (int i = 0; i < nsizes; ++i) {
        const Row& row = rows[static_cast<std::size_t>(pi * nsizes + i)];
        for (int s = 0; s < 2; ++s) {
          SyntheticExperimentConfig ex;
          ex.noc.width = sizes[i];
          ex.noc.height = sizes[i];
          ex.noc.step_threads = threads;
          ex.noc.step_procs = procs_list[pi];
          ex.noc.apply_tiles_shorthand(tiles);
          ex.pattern = "uniform";
          ex.inj_rate_flits = 0.02;
          ex.seed = 11;
          points.push_back(ex);
          RunResult r;
          const Result& res = s == 0 ? row.rp : row.gf;
          r.scheme = s == 0 ? "RP" : "gFLOV";
          r.avg_latency = res.avg_latency;
          r.metrics = std::make_shared<telemetry::MetricsRegistry>();
          r.metrics->gauge("bench.avg_latency") = res.avg_latency;
          r.metrics->gauge("bench.peak_window") = res.peak_window;
          r.metrics->gauge("bench.step_threads") = threads;
          r.metrics->gauge("bench.step_procs") = procs_list[pi];
          r.metrics->gauge("bench.step_tiles_x") = ex.noc.step_tiles_x;
          r.metrics->gauge("bench.step_tiles_y") = ex.noc.step_tiles_y;
          r.metrics->gauge("bench.wall_seconds") =
              s == 0 ? row.rp_wall : row.gf_wall;
          if (s == 0) {
            r.metrics->gauge("bench.rp_reconfig_cycles") =
                static_cast<double>(row.rp_reconfig);
          }
          results.push_back(std::move(r));
        }
      }
    }
    SweepOptions so;
    so.jobs = jobs;
    sink.write(points, results, so);
  }
  return 0;
}
