// Scalability study (beyond the paper's 8x8, supporting its Section I/II
// argument): FLOV's distributed handshake reconfigures in O(neighborhood)
// time regardless of mesh size, while RP's centralized fabric manager
// stalls the whole network for a Phase-I that grows with the router count
// (route computation for N routers + table distribution across the mesh).
//
// For each mesh size we apply one gating change mid-run and report:
//   * RP reconfiguration duration and its latency-spike peak,
//   * gFLOV's spike peak (none expected) and its average transition time,
//   * steady-state average latency for both.
#include <algorithm>

#include "bench_util.hpp"
#include "flov/flov_network.hpp"
#include "rp/rp_network.hpp"
#include "traffic/gating_scenario.hpp"
#include "traffic/synthetic_traffic.hpp"
#include "traffic/traffic_pattern.hpp"

namespace {

using namespace flov;

struct Result {
  double avg_latency = 0;
  double peak_window = 0;
  Cycle reconfig_duration = 0;  // RP only
};

template <typename System>
Result drive(System& sys, const NocParams& p, Cycle change_at, Cycle total,
             std::uint64_t seed) {
  MeshGeometry g(p.width, p.height);
  auto pattern = TrafficPattern::create("uniform", g);
  SyntheticTraffic traffic(&sys, pattern.get(), 0.02, p.packet_size, seed);
  GatingScenario scen = GatingScenario::epochs(g, 0.15, {change_at}, seed);
  LatencyStats stats(3, 1000);
  stats.set_measure_from(5000);
  sys.network().set_eject_callback(
      [&](const PacketRecord& r) { stats.record(r); });
  for (Cycle now = 0; now < total; ++now) {
    scen.apply(sys, now);
    traffic.step(now);
    sys.step(now);
  }
  Result r;
  r.avg_latency = stats.avg_latency();
  if (const TimeSeries* ts = stats.timeline()) {
    for (const auto& pt : ts->points()) {
      r.peak_window = std::max(r.peak_window, pt.mean);
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flov::bench;
  Config cfg;
  cfg.parse_args(argc, argv);
  const Cycle total = cfg.get_int("measure", 30000) + 10000;
  const int jobs = cfg.get_int("jobs", 0);

  // One pooled task per (mesh size, system) cell; each builds and drives
  // its own network end to end.
  const int sizes[] = {4, 8, 12, 16};
  struct Row {
    Result rp, gf;
    Cycle rp_reconfig = 0;
  };
  std::vector<Row> rows(4);
  parallel_run(8, jobs, [&](int i) {
    const int k = sizes[i / 2];
    NocParams p;
    p.width = k;
    p.height = k;
    if (i % 2 == 0) {
      // RP: Phase-I grows with the router count (route computation at the
      // FM plus per-router table distribution) — c1 + c2 * N.
      FabricManagerConfig fm;
      fm.phase1_latency = 400 + 5 * k * k;
      RpNetwork rp(p, EnergyParams{}, fm);
      rows[i / 2].rp = drive(rp, p, /*change_at=*/20000, total, 11);
      rows[i / 2].rp_reconfig = rp.fabric_manager().last_reconfig_duration();
    } else {
      FlovNetwork gf(p, FlovMode::kGeneralized, EnergyParams{});
      rows[i / 2].gf = drive(gf, p, 20000, total, 11);
    }
  });

  print_header(
      "Scalability — one gating change mid-run, distributed gFLOV vs "
      "centralized RP");
  std::printf("%-8s | %12s %12s %14s | %12s %12s\n", "mesh", "RP latency",
              "RP peak", "RP reconfig", "gFLOV lat", "gFLOV peak");

  for (int i = 0; i < 4; ++i) {
    const int k = sizes[i];
    std::printf("%-8s | %12.2f %12.2f %14llu | %12.2f %12.2f\n",
                (std::to_string(k) + "x" + std::to_string(k)).c_str(),
                rows[i].rp.avg_latency, rows[i].rp.peak_window,
                static_cast<unsigned long long>(rows[i].rp_reconfig),
                rows[i].gf.avg_latency, rows[i].gf.peak_window);
  }
  std::printf("\nRP's stall (and the latency spike behind it) grows with the "
              "mesh; gFLOV's distributed handshake does not.\n");
  return 0;
}
