// Reproduces the Section V-A overhead analysis: PSR storage, HSC control
// wires, and the added area of the FLOV router modifications (paper:
// 2.8e-3 mm^2, ~3% of the baseline router at 32 nm).
#include <cstdio>

#include "power/overhead_model.hpp"

int main() {
  using namespace flov;
  const OverheadInputs in;
  const OverheadReport r = compute_overhead(in);
  std::printf("Section V-A — FLOV router overhead analysis (32 nm)\n\n");
  std::printf("PSR storage           : %d bits (2 sets x 4 entries x 2 bits)\n",
              r.psr_bits);
  std::printf("HSC wires per neighbor: %d (4 power-state + 1 drain + 1 "
              "assert)\n",
              r.hsc_wires_per_neighbor);
  std::printf("output latches        : %.4e mm^2 (4 x %d bits)\n",
              r.latch_area_mm2, in.flit_width_bits);
  std::printf("muxes + demuxes       : %.4e mm^2\n", r.mux_area_mm2);
  std::printf("PSRs                  : %.4e mm^2\n", r.psr_area_mm2);
  std::printf("HSC FSM               : %.4e mm^2\n", r.hsc_area_mm2);
  std::printf("total overhead        : %.4e mm^2 (paper: 2.8e-3 mm^2)\n",
              r.total_overhead_mm2);
  std::printf("fraction of router    : %.1f%% (paper: ~3%%)\n",
              100.0 * r.overhead_fraction);
  return 0;
}
