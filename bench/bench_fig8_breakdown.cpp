// Reproduces Figure 8(a,b): average packet latency broken into accumulated
// router latency (hops x 3-cycle pipeline), link latency, serialization,
// contention, and FLOV latency (latch hops), for Uniform Random and Tornado
// traffic as the fraction of power-gated cores grows.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flov;
  using namespace flov::bench;
  SyntheticExperimentConfig ex = synthetic_from_args(argc, argv);
  const SweepOptions sweep = sweep_from_args(argc, argv);
  ex.inj_rate_flits = 0.02;
  const double fractions[] = {0.2, 0.4, 0.6, 0.8};

  for (const char* pattern : {"uniform", "tornado"}) {
    ex.pattern = pattern;
    std::vector<SyntheticExperimentConfig> points;
    for (Scheme s : kAllSchemes) {
      ex.scheme = s;
      for (double f : fractions) {
        ex.gated_fraction = f;
        points.push_back(ex);
      }
    }
    const std::vector<RunResult> results = run_sweep(points, sweep);

    char title[160];
    std::snprintf(title, sizeof(title),
                  "Fig. 8(%s) — latency breakdown, %s traffic, inj 0.02",
                  std::string(pattern) == "uniform" ? "a" : "b", pattern);
    print_header(title);
    std::printf("%-10s %-8s | %8s %8s %8s %8s %8s | %8s\n", "scheme",
                "gated%", "router", "link", "serial", "content", "flov",
                "total");
    std::size_t idx = 0;
    for (Scheme s : kAllSchemes) {
      (void)s;
      for (double f : fractions) {
        const RunResult& r = results[idx++];
        const LatencyBreakdown& b = r.breakdown;
        std::printf("%-10s %-8.0f | %8.2f %8.2f %8.2f %8.2f %8.2f | %8.2f\n",
                    r.scheme.c_str(), f * 100, b.router, b.link,
                    b.serialization, b.contention, b.flov, r.avg_latency);
      }
      std::printf("\n");
    }
  }
  return 0;
}
