// Robustness sweep: FLOV schemes under an increasingly lossy control
// fabric. For each scheme x signal-drop-rate cell the fabric runs gating
// churn (epoch re-draws) with the recovery knobs enabled and the invariant
// verifier in counting mode; the table shows what the faults cost
// (latency, handshake retries) and that correctness held (violations,
// watchdog escalations).
//
//   bench_fault_sweep [measure=30000] [width=8] [seed=3] [csv=out.csv]
#include "bench_util.hpp"

namespace {

void run_fault_sweep(flov::SyntheticExperimentConfig ex,
                     flov::bench::CsvSink* csv,
                     const flov::SweepOptions& sweep) {
  using namespace flov;
  using namespace flov::bench;

  // Recovery hardening (off by default for paper fidelity).
  ex.noc.hs_retry_timeout = 32;
  ex.noc.hs_retry_limit = 16;
  ex.noc.trigger_retry_timeout = 64;
  ex.noc.sleep_reannounce_interval = 128;
  ex.noc.psr_block_timeout = 192;
  ex.verifier.fatal = false;  // count violations, report them in the table
  ex.verifier.settle_window = 512;
  ex.pattern = "uniform";
  ex.inj_rate_flits = 0.05;
  ex.gated_fraction = 0.4;
  // Gating churn: re-draw the gated set three times mid-run.
  const Cycle total = ex.warmup + ex.measure;
  ex.gating_changes = {total / 4, total / 2, (3 * total) / 4};

  const double drop_rates[] = {0.0, 0.001, 0.01, 0.05};

  std::vector<SyntheticExperimentConfig> points;
  for (Scheme s : {Scheme::kRFlov, Scheme::kGFlov}) {
    for (double rate : drop_rates) {
      ex.scheme = s;
      ex.faults = FaultParams{};
      if (rate > 0.0) {
        ex.faults.signal_drop_rate = rate;
        ex.faults.signal_delay_rate = rate;
        ex.faults.signal_dup_rate = rate / 2;
        ex.faults.seed = ex.seed;
      }
      points.push_back(ex);
    }
  }
  const std::vector<RunResult> results = run_sweep(points, sweep);

  print_header("Fault sweep — signal loss vs. FLOV recovery (uniform, "
               "40% gated, churn)");
  std::printf("%-8s %-10s %10s %10s %10s %10s %10s %10s\n", "scheme",
              "drop_rate", "latency", "hs_resend", "trig_rsnd", "recover",
              "violation", "delivered");
  std::size_t idx = 0;
  for (Scheme s : {Scheme::kRFlov, Scheme::kGFlov}) {
    (void)s;
    for (double rate : drop_rates) {
      const RunResult& r = results[idx++];
      std::printf("%-8s %-10.3f %10.2f %10llu %10llu %10llu %10llu %10llu\n",
                  r.scheme.c_str(), rate, r.avg_latency,
                  static_cast<unsigned long long>(r.hs_resends),
                  static_cast<unsigned long long>(r.trigger_resends),
                  static_cast<unsigned long long>(r.watchdog_recoveries),
                  static_cast<unsigned long long>(r.verifier_violations),
                  static_cast<unsigned long long>(r.packets_measured));
      if (csv) {
        csv->row("fault_sweep,%s,%.4f,%.4f,%llu,%llu,%llu,%llu,%llu",
                 r.scheme.c_str(), rate, r.avg_latency,
                 static_cast<unsigned long long>(r.hs_resends),
                 static_cast<unsigned long long>(r.trigger_resends),
                 static_cast<unsigned long long>(r.watchdog_recoveries),
                 static_cast<unsigned long long>(r.verifier_violations),
                 static_cast<unsigned long long>(r.packets_measured));
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  flov::SyntheticExperimentConfig ex =
      flov::bench::synthetic_from_args(argc, argv);
  ex.warmup = 5000;
  ex.measure = 25000;
  flov::Config cfg;
  cfg.parse_args(argc, argv);
  ex.measure = cfg.get_int("measure", ex.measure);
  flov::bench::CsvSink csv(
      argc, argv,
      "figure,scheme,drop_rate,latency,hs_resends,trigger_resends,"
      "recoveries,violations,packets");
  run_fault_sweep(ex, &csv, flov::bench::sweep_from_args(argc, argv));
  return 0;
}
