// Robustness sweep: FLOV schemes under an increasingly lossy control
// fabric, then under permanent hard faults (PROTOCOL.md §8).
//
// Table 1 — transient signal loss: for each scheme x signal-drop-rate cell
// the fabric runs gating churn (epoch re-draws) with the recovery knobs
// enabled and the invariant verifier in counting mode; the table shows what
// the faults cost (latency, handshake retries) and that correctness held
// (violations, watchdog escalations).
//
// Table 2 — hard faults: routers die mid-run (fault.hard_router_pct) with
// end-to-end reliable delivery on; the table shows the delivered fraction,
// the retransmit traffic the survival costs, and the packets the fabric had
// to declare dead because their destination no longer exists.
//
//   bench_fault_sweep [measure=30000] [width=8] [seed=3] [csv=out.csv]
//                     [json=out.json]      flyover-sweep-manifest-v1 rows
//
// Certification-convergence mode: certify=1 replaces the tables with a
// Monte-Carlo certification campaign on the hard-fault config and prints
// one row per batch — certified bound vs replications spent — showing the
// sequential stopping rule terminating before the cap.
//
//   bench_fault_sweep certify=1 [certify_max=200] [certify_target=0.9]
//                     [csv=out.csv]
#include "bench_util.hpp"
#include "sim/certify.hpp"

namespace {

void run_fault_sweep(flov::SyntheticExperimentConfig ex,
                     flov::bench::CsvSink* csv,
                     const flov::SweepOptions& sweep,
                     std::vector<flov::SyntheticExperimentConfig>* all_points,
                     std::vector<flov::RunResult>* all_results) {
  using namespace flov;
  using namespace flov::bench;

  // Recovery hardening (off by default for paper fidelity).
  ex.noc.hs_retry_timeout = 32;
  ex.noc.hs_retry_limit = 16;
  ex.noc.trigger_retry_timeout = 64;
  ex.noc.sleep_reannounce_interval = 128;
  ex.noc.psr_block_timeout = 192;
  ex.verifier.fatal = false;  // count violations, report them in the table
  ex.verifier.settle_window = 512;
  ex.pattern = "uniform";
  ex.inj_rate_flits = 0.05;
  ex.gated_fraction = 0.4;
  // Gating churn: re-draw the gated set three times mid-run.
  const Cycle total = ex.warmup + ex.measure;
  ex.gating_changes = {total / 4, total / 2, (3 * total) / 4};

  const double drop_rates[] = {0.0, 0.001, 0.01, 0.05};

  std::vector<SyntheticExperimentConfig> points;
  for (Scheme s : {Scheme::kRFlov, Scheme::kGFlov}) {
    for (double rate : drop_rates) {
      ex.scheme = s;
      ex.faults = FaultParams{};
      if (rate > 0.0) {
        ex.faults.signal_drop_rate = rate;
        ex.faults.signal_delay_rate = rate;
        ex.faults.signal_dup_rate = rate / 2;
        ex.faults.seed = ex.seed;
      }
      points.push_back(ex);
    }
  }
  const std::vector<RunResult> results = run_sweep(points, sweep);

  print_header("Fault sweep — signal loss vs. FLOV recovery (uniform, "
               "40% gated, churn)");
  std::printf("%-8s %-10s %10s %10s %10s %10s %10s %10s\n", "scheme",
              "drop_rate", "latency", "hs_resend", "trig_rsnd", "recover",
              "violation", "delivered");
  std::size_t idx = 0;
  for (Scheme s : {Scheme::kRFlov, Scheme::kGFlov}) {
    (void)s;
    for (double rate : drop_rates) {
      const RunResult& r = results[idx++];
      std::printf("%-8s %-10.3f %10.2f %10llu %10llu %10llu %10llu %10llu\n",
                  r.scheme.c_str(), rate, r.avg_latency,
                  static_cast<unsigned long long>(r.hs_resends),
                  static_cast<unsigned long long>(r.trigger_resends),
                  static_cast<unsigned long long>(r.watchdog_recoveries),
                  static_cast<unsigned long long>(r.verifier_violations),
                  static_cast<unsigned long long>(r.packets_measured));
      if (csv) {
        csv->row("fault_sweep,%s,%.4f,%.4f,%llu,%llu,%llu,%llu,%llu",
                 r.scheme.c_str(), rate, r.avg_latency,
                 static_cast<unsigned long long>(r.hs_resends),
                 static_cast<unsigned long long>(r.trigger_resends),
                 static_cast<unsigned long long>(r.watchdog_recoveries),
                 static_cast<unsigned long long>(r.verifier_violations),
                 static_cast<unsigned long long>(r.packets_measured));
      }
    }
  }
  all_points->insert(all_points->end(), points.begin(), points.end());
  all_results->insert(all_results->end(), results.begin(), results.end());
}

void run_hard_fault_sweep(
    flov::SyntheticExperimentConfig ex, flov::bench::CsvSink* csv,
    const flov::SweepOptions& sweep,
    std::vector<flov::SyntheticExperimentConfig>* all_points,
    std::vector<flov::RunResult>* all_results) {
  using namespace flov;
  using namespace flov::bench;

  // End-to-end reliability carries the traffic across the deaths; the
  // drain tail lets every flow resolve to acked-or-dead so the delivered
  // fraction below is exact, not racing the cutoff.
  ex.noc.reliable = true;
  ex.noc.retx_timeout = 256;
  ex.noc.sleep_reannounce_interval = 128;
  ex.noc.psr_block_timeout = 192;
  ex.verifier.fatal = false;
  ex.verifier.settle_window = 512;
  ex.pattern = "uniform";
  ex.inj_rate_flits = 0.05;
  ex.drain_max = 40000;
  ex.max_cycles_hard = 4 * (ex.warmup + ex.measure) + ex.drain_max;

  const double death_rates[] = {0.0, 0.03, 0.06, 0.12};

  std::vector<SyntheticExperimentConfig> points;
  for (Scheme s : {Scheme::kRFlov, Scheme::kGFlov}) {
    for (double pct : death_rates) {
      ex.scheme = s;
      // FLOV gating keeps exercising the survival paths while routers die.
      ex.gated_fraction = 0.3;
      ex.faults = FaultParams{};
      if (pct > 0.0) {
        ex.faults.hard_router_pct = pct;
        ex.faults.hard_link_pct = pct / 2;
        ex.faults.hard_at_cycle = ex.warmup + ex.measure / 4;
        ex.faults.seed = ex.seed;
      }
      points.push_back(ex);
    }
  }
  const std::vector<RunResult> results = run_sweep(points, sweep);

  print_header("Hard-fault sweep — routers die mid-run, reliable delivery "
               "(uniform, 30% gated)");
  std::printf("%-8s %-9s %5s %5s | %10s %9s %9s %9s %9s %9s\n", "scheme",
              "router%", "dead", "links", "latency", "acked", "dead_pkt",
              "retx", "deliv%", "violation");
  std::size_t idx = 0;
  for (Scheme s : {Scheme::kRFlov, Scheme::kGFlov}) {
    (void)s;
    for (double pct : death_rates) {
      const RunResult& r = results[idx++];
      const std::uint64_t settled = r.packets_acked + r.packets_dead;
      const double delivered =
          settled ? 100.0 * static_cast<double>(r.packets_acked) /
                        static_cast<double>(settled)
                  : 100.0;
      std::printf(
          "%-8s %-9.2f %5d %5d | %10.2f %9llu %9llu %9llu %8.2f%% %9llu\n",
          r.scheme.c_str(), 100 * pct, r.dead_routers, r.dead_links,
          r.avg_latency, static_cast<unsigned long long>(r.packets_acked),
          static_cast<unsigned long long>(r.packets_dead),
          static_cast<unsigned long long>(r.retransmits), delivered,
          static_cast<unsigned long long>(r.verifier_violations));
      if (csv) {
        csv->row("hard_fault,%s,%.4f,%.4f,%llu,%llu,%llu,%llu,%llu",
                 r.scheme.c_str(), pct, r.avg_latency,
                 static_cast<unsigned long long>(r.packets_acked),
                 static_cast<unsigned long long>(r.packets_dead),
                 static_cast<unsigned long long>(r.retransmits),
                 static_cast<unsigned long long>(r.verifier_violations),
                 static_cast<unsigned long long>(
                     static_cast<std::uint64_t>(r.dead_routers)));
      }
    }
  }
  all_points->insert(all_points->end(), points.begin(), points.end());
  all_results->insert(all_results->end(), results.begin(), results.end());
}

// certify=1: Monte-Carlo certification on the hard-fault survival config.
// One row per folded batch — the running Wilson bound on delivery vs the
// replications spent so far — so the convergence (and the sequential rule
// stopping before the cap) is visible in the output, not just asserted.
int run_certify_convergence(flov::SyntheticExperimentConfig ex,
                            const flov::Config& cfg, int jobs, int argc,
                            char** argv) {
  using namespace flov;
  using namespace flov::bench;

  // Same hardening as the hard-fault table, scaled down per replication:
  // a certification campaign buys its statistical power from replication
  // count, not from one long run.
  ex.scheme = Scheme::kGFlov;
  ex.noc.reliable = true;
  ex.noc.retx_timeout = 256;
  ex.noc.sleep_reannounce_interval = 128;
  ex.noc.psr_block_timeout = 192;
  ex.verifier.fatal = false;
  ex.verifier.settle_window = 512;
  ex.pattern = "uniform";
  ex.inj_rate_flits = 0.05;
  ex.gated_fraction = 0.3;
  ex.warmup = 500;
  ex.measure = cfg.get_int("certify_measure", 2500);
  ex.drain_max = 30000;
  ex.max_cycles_hard = 4 * (ex.warmup + ex.measure) + ex.drain_max;
  ex.faults = FaultParams{};
  ex.faults.hard_router_pct = 0.03;
  ex.faults.hard_link_pct = 0.015;
  ex.faults.hard_at_cycle = ex.warmup + ex.measure / 4;
  ex.faults.seed = ex.seed;

  CertifyOptions opts;
  opts.metric = "delivery";
  opts.confidence = 0.95;
  opts.target = cfg.get_double("certify_target", 0.9);
  opts.indifference = 0.02;
  opts.min_replications = 32;
  opts.max_replications =
      static_cast<std::uint64_t>(cfg.get_int("certify_max", 200));
  opts.batch = 16;
  opts.seed_base = ex.seed;
  opts.jobs = jobs;

  // Own sink with the convergence-row header — CsvSink fixes its header at
  // construction, so certify mode cannot reuse the table sink from main.
  CsvSink conv_csv(
      argc, argv,
      "reps,successes,trials,point,wilson_lower,wilson_upper,half_width");

  print_header(
      "Certification convergence — delivery bound vs replications "
      "(gFLOV 8x8, routers die mid-run)");
  std::printf("%6s %10s %8s %8s %14s %14s %11s\n", "reps", "successes",
              "trials", "point", "wilson_lower", "wilson_upper",
              "half_width");
  opts.batch_hook = [&conv_csv](std::uint64_t reps,
                                const CertifyEstimate& e) {
    std::printf("%6llu %10llu %8llu %8.5f %14.5f %14.5f %11.5f\n",
                static_cast<unsigned long long>(reps),
                static_cast<unsigned long long>(e.successes),
                static_cast<unsigned long long>(e.trials), e.point,
                e.wilson.lower, e.wilson.upper, e.wilson.half_width());
    conv_csv.row("%llu,%llu,%llu,%.6f,%.6f,%.6f,%.6f",
                 static_cast<unsigned long long>(reps),
                 static_cast<unsigned long long>(e.successes),
                 static_cast<unsigned long long>(e.trials), e.point,
                 e.wilson.lower, e.wilson.upper, e.wilson.half_width());
  };

  const CertifyResult res = run_certification(ex, opts);
  std::printf("stop: %s after %llu/%llu replications%s\n",
              res.stop_reason.c_str(),
              static_cast<unsigned long long>(res.replications),
              static_cast<unsigned long long>(opts.max_replications),
              res.stopped_early ? " (early)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  flov::SyntheticExperimentConfig ex =
      flov::bench::synthetic_from_args(argc, argv);
  ex.warmup = 5000;
  ex.measure = 25000;
  flov::Config cfg;
  cfg.parse_args(argc, argv);
  ex.measure = cfg.get_int("measure", ex.measure);
  if (cfg.get_bool("certify", false)) {
    const flov::SweepOptions sweep = flov::bench::sweep_from_args(argc, argv);
    return run_certify_convergence(ex, cfg, sweep.jobs, argc, argv);
  }
  flov::bench::CsvSink csv(
      argc, argv,
      "figure,scheme,drop_rate,latency,hs_resends,trigger_resends,"
      "recoveries,violations,packets");
  flov::bench::ManifestSink manifest(argc, argv, "bench_fault_sweep");
  const flov::SweepOptions sweep = flov::bench::sweep_from_args(argc, argv);
  std::vector<flov::SyntheticExperimentConfig> all_points;
  std::vector<flov::RunResult> all_results;
  run_fault_sweep(ex, &csv, sweep, &all_points, &all_results);
  run_hard_fault_sweep(ex, &csv, sweep, &all_points, &all_results);
  manifest.write(all_points, all_results, sweep);
  return 0;
}
