// Reproduces Figure 10: average packet latency across the execution
// timeline when the power-gating configuration changes at 50,000 and
// 60,000 cycles (Uniform Random, 0.02 flits/node/cycle, 10% cores gated).
// RP must show reconfiguration stalls (>700-cycle Phase I, seen as queuing
// spikes at the change points); gFLOV reconfigures distributedly and shows
// no such spikes.
#include <algorithm>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flov;
  using namespace flov::bench;
  SyntheticExperimentConfig ex = synthetic_from_args(argc, argv);
  ex.pattern = "uniform";
  ex.inj_rate_flits = 0.02;
  ex.gated_fraction = 0.10;
  ex.warmup = 10000;
  ex.measure = 80000;  // total 90k: changes at 50k and 60k are inside
  ex.gating_changes = {50000, 60000};
  ex.timeline_window = 1000;

  std::vector<SyntheticExperimentConfig> points;
  ex.scheme = Scheme::kRp;
  points.push_back(ex);
  ex.scheme = Scheme::kGFlov;
  points.push_back(ex);
  const std::vector<RunResult> results =
      run_sweep(points, sweep_from_args(argc, argv));
  const RunResult& rp = results[0];
  const RunResult& gf = results[1];

  print_header(
      "Fig. 10 — latency timeline around reconfigurations (changes at 50k, "
      "60k)");
  std::printf("%-12s %12s %12s\n", "cycle", "RP", "gFLOV");
  // Merge the two (identically windowed) series.
  std::size_t i = 0, j = 0;
  while (i < rp.timeline.size() || j < gf.timeline.size()) {
    const Cycle ci =
        i < rp.timeline.size() ? rp.timeline[i].window_start : kNeverCycle;
    const Cycle cj =
        j < gf.timeline.size() ? gf.timeline[j].window_start : kNeverCycle;
    const Cycle c = std::min(ci, cj);
    std::printf("%-12llu", static_cast<unsigned long long>(c));
    if (ci == c) {
      std::printf(" %12.2f", rp.timeline[i++].mean);
    } else {
      std::printf(" %12s", "-");
    }
    if (cj == c) {
      std::printf(" %12.2f", gf.timeline[j++].mean);
    } else {
      std::printf(" %12s", "-");
    }
    std::printf("\n");
  }

  double rp_peak = 0, gf_peak = 0;
  for (const auto& p : rp.timeline) rp_peak = std::max(rp_peak, p.mean);
  for (const auto& p : gf.timeline) gf_peak = std::max(gf_peak, p.mean);
  std::printf("\npeak windowed latency: RP %.1f cycles vs gFLOV %.1f cycles\n",
              rp_peak, gf_peak);
  std::printf("(RP Phase-I reconfiguration stall is >700 cycles; packets "
              "generated during the stall show it as queuing delay)\n");
  return 0;
}
