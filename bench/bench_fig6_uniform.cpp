// Reproduces Figure 6: average latency, dynamic power, and total power for
// Uniform Random traffic at injection rates 0.02 and 0.08 flits/node/cycle,
// sweeping the fraction of power-gated cores from 0% to 80%, for
// Baseline / RP / rFLOV / gFLOV on the Table-I 8x8 mesh.
#include <map>

#include "bench_util.hpp"

namespace {

void run_figure(flov::SyntheticExperimentConfig ex, const char* figure,
                flov::bench::CsvSink* csv, const flov::SweepOptions& sweep,
                std::vector<flov::SyntheticExperimentConfig>* all_points,
                std::vector<flov::RunResult>* all_results) {
  using namespace flov;
  using namespace flov::bench;
  for (double inj : {0.02, 0.08}) {
    ex.inj_rate_flits = inj;
    const auto fractions = gating_fractions();
    // One independent sweep point per (fraction, scheme); the pool runs
    // them concurrently, results come back in this submission order.
    std::vector<SyntheticExperimentConfig> points;
    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      for (int si = 0; si < 4; ++si) {
        ex.scheme = kAllSchemes[si];
        ex.gated_fraction = fractions[fi];
        points.push_back(ex);
      }
    }
    const std::vector<RunResult> sweep_results = run_sweep(points, sweep);
    all_points->insert(all_points->end(), points.begin(), points.end());
    all_results->insert(all_results->end(), sweep_results.begin(),
                        sweep_results.end());
    std::map<std::pair<int, int>, RunResult> results;
    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      for (int si = 0; si < 4; ++si) {
        const RunResult& r = sweep_results[fi * 4 + si];
        if (csv) {
          csv_run_row(*csv, figure, ex.pattern.c_str(), inj, fractions[fi],
                      r);
        }
        results[{static_cast<int>(fi), si}] = r;
      }
    }

    char title[160];
    std::snprintf(title, sizeof(title),
                  "%s — %s traffic, injection %.2f flits/node/cycle", figure,
                  ex.pattern.c_str(), inj);
    print_header(title);
    struct Metric {
      const char* name;
      double (*get)(const RunResult&);
    };
    const Metric metrics[] = {
        {"avg latency (cycles)",
         [](const RunResult& r) { return r.avg_latency; }},
        {"dynamic power (mW)",
         [](const RunResult& r) { return r.power.dynamic_mw; }},
        {"total power (mW)",
         [](const RunResult& r) { return r.power.total_mw; }},
    };
    for (const Metric& m : metrics) {
      std::printf("\n%s\n", m.name);
      std::printf("%-8s %10s %10s %10s %10s\n", "gated%", "Baseline", "RP",
                  "rFLOV", "gFLOV");
      for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
        std::printf("%-8.0f", fractions[fi] * 100);
        for (int si = 0; si < 4; ++si) {
          std::printf(" %10.2f", m.get(results[{static_cast<int>(fi), si}]));
        }
        std::printf("\n");
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  flov::SyntheticExperimentConfig ex =
      flov::bench::synthetic_from_args(argc, argv);
  ex.pattern = "uniform";
  flov::bench::CsvSink csv(argc, argv, flov::bench::kCsvHeader);
  flov::bench::ManifestSink manifest(argc, argv, "fig6");
  const flov::SweepOptions sweep = flov::bench::sweep_from_args(argc, argv);
  std::vector<flov::SyntheticExperimentConfig> points;
  std::vector<flov::RunResult> results;
  run_figure(ex, "fig6", &csv, sweep, &points, &results);
  manifest.write(points, results, sweep);
  return 0;
}
