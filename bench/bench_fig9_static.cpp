// Reproduces Figure 9: static power consumption vs the fraction of
// power-gated cores. Static power is workload-independent for rFLOV/gFLOV
// (the gated-router set depends only on the gating configuration and the
// protocol restrictions) and we compare against RP's aggressive policy, as
// the paper does. Expected shape: gFLOV lowest and diverging from RP as
// gating grows; rFLOV saturates (adjacency restriction) and crosses ABOVE
// RP at high fractions; Baseline flat.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace flov;
  using namespace flov::bench;
  SyntheticExperimentConfig ex = synthetic_from_args(argc, argv);
  ex.pattern = "uniform";
  // Static power does not depend on traffic; a light load settles the
  // handshakes quickly and keeps this bench fast.
  ex.inj_rate_flits = 0.005;
  if (ex.measure > 30000) ex.measure = 30000;

  CsvSink csv(argc, argv, kCsvHeader);
  const auto fractions = gating_fractions();
  std::vector<SyntheticExperimentConfig> points;
  for (double f : fractions) {
    ex.gated_fraction = f;
    for (int si = 0; si < 4; ++si) {
      ex.scheme = kAllSchemes[si];
      points.push_back(ex);
    }
  }
  const std::vector<RunResult> results =
      run_sweep(points, sweep_from_args(argc, argv));

  print_header("Fig. 9 — static power (mW) vs fraction of power-gated cores");
  std::printf("%-8s %10s %10s %10s %10s | %s\n", "gated%", "Baseline", "RP",
              "rFLOV", "gFLOV", "gated routers (RP/rFLOV/gFLOV)");
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    const double f = fractions[fi];
    double vals[4];
    int gated[4];
    for (int si = 0; si < 4; ++si) {
      const RunResult& r = results[fi * 4 + si];
      csv_run_row(csv, "fig9", ex.pattern.c_str(), ex.inj_rate_flits, f, r);
      vals[si] = r.power.static_mw;
      gated[si] = r.gated_routers_end;
    }
    std::printf("%-8.0f %10.2f %10.2f %10.2f %10.2f | %d / %d / %d\n",
                f * 100, vals[0], vals[1], vals[2], vals[3], gated[1],
                gated[2], gated[3]);
  }
  return 0;
}
