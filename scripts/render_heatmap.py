#!/usr/bin/env python3
"""Render a Fly-Over /heatmap document as terminal heatmaps.

Usage:
    curl -s http://127.0.0.1:8080/heatmap | scripts/render_heatmap.py
    scripts/render_heatmap.py heatmap.json [--grid occupancy,avg_latency]
    scripts/render_heatmap.py heatmap.json --no-color

Reads a flyover-heatmap-v1 document (from the ops plane's /heatmap
endpoint, or assembled from a /snapshot) and prints one grid per
selected metric, node (0,0) top-left, x east, y south — the mesh
orientation used throughout the docs.

The mode grid is categorical (RouterMode): P=pipeline, b=bypass,
p=parked, X=dead. The power_state grid is categorical too (HSC
PowerState): A=active, d=draining, S=sleep, w=wakeup. Numeric grids
(occupancy, queued, avg_latency, gated_cycles) are shaded on a
per-grid scale with the cell value printed when it fits.

No dependencies beyond the standard library; ANSI background colors are
used when stdout is a TTY (disable with --no-color).
"""
import argparse
import json
import sys

SCHEMA = "flyover-heatmap-v1"

MODE_GLYPHS = {0: "P", 1: "b", 2: "p", 3: "X"}
POWER_GLYPHS = {0: "A", 1: "d", 2: "S", 3: "w"}

# Low -> high shade ramp (256-color background codes).
RAMP = [236, 238, 240, 243, 246, 250, 178, 208, 202, 196]


def shade(value, lo, hi, text, color):
    if not color:
        return text
    if hi <= lo:
        idx = 0
    else:
        idx = int((value - lo) / (hi - lo) * (len(RAMP) - 1) + 0.5)
        idx = max(0, min(len(RAMP) - 1, idx))
    fg = 16 if idx >= 5 else 255
    return "\x1b[48;5;%dm\x1b[38;5;%dm%s\x1b[0m" % (RAMP[idx], fg, text)


def render_categorical(grid, glyphs, color):
    lines = []
    for row in grid:
        cells = []
        for v in row:
            g = glyphs.get(int(v), "?")
            # Highlight anything that is not the "normal" first state.
            cells.append(shade(1.0 if int(v) else 0.0, 0.0, 1.0,
                               " %s " % g, color and int(v) != 0))
        lines.append("".join(cells))
    return lines


def render_numeric(grid, color):
    flat = [float(v) for row in grid for v in row]
    lo, hi = min(flat), max(flat)
    width = max(len(fmt_cell(v)) for v in flat)
    lines = []
    for row in grid:
        cells = []
        for v in row:
            txt = fmt_cell(float(v)).rjust(width) + " "
            cells.append(shade(float(v), lo, hi, txt, color))
        lines.append("".join(cells))
    return lines, lo, hi


def fmt_cell(v):
    if v == int(v) and abs(v) < 1e6:
        return "%d" % int(v)
    if abs(v) < 100:
        return "%.1f" % v
    return "%.3g" % v


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("file", nargs="?", help="heatmap JSON (default: stdin)")
    ap.add_argument("--grid", metavar="NAME1,NAME2",
                    help="comma-separated grids to render (default: all)")
    ap.add_argument("--no-color", action="store_true",
                    help="plain text output (also the default when stdout "
                         "is not a TTY)")
    args = ap.parse_args()

    try:
        if args.file:
            with open(args.file) as f:
                doc = json.load(f)
        else:
            doc = json.load(sys.stdin)
    except (OSError, ValueError) as e:
        print("render_heatmap: %s" % e, file=sys.stderr)
        return 1

    if doc.get("schema") != SCHEMA:
        print("render_heatmap: schema is %r, want %r"
              % (doc.get("schema"), SCHEMA), file=sys.stderr)
        return 1

    color = sys.stdout.isatty() and not args.no_color
    grids = doc["grids"]
    wanted = (args.grid.split(",") if args.grid else list(grids))
    print("%s %dx%d @ cycle %d"
          % (doc.get("scheme", "?"), doc["width"], doc["height"],
             doc.get("cycle", 0)))
    for name in wanted:
        name = name.strip()
        if name not in grids:
            print("render_heatmap: no grid %r (have: %s)"
                  % (name, ", ".join(sorted(grids))), file=sys.stderr)
            return 1
        grid = grids[name]
        print()
        if name == "mode":
            print("mode (P=pipeline b=bypass p=parked X=dead):")
            out = render_categorical(grid, MODE_GLYPHS, color)
        elif name == "power_state":
            print("power_state (A=active d=draining S=sleep w=wakeup):")
            out = render_categorical(grid, POWER_GLYPHS, color)
        else:
            out, lo, hi = render_numeric(grid, color)
            print("%s (min %s, max %s):" % (name, fmt_cell(lo),
                                            fmt_cell(hi)))
        for line in out:
            print("  " + line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
