#!/usr/bin/env python3
"""Compare two BENCH_sweep.json files produced by bench_micro.

Usage:
    scripts/bench_compare.py baseline.json candidate.json [--threshold 5.0]

Diffs per-benchmark throughput (items/second) and per-sweep-point
simulation throughput (cycles/second). A drop larger than the threshold
(default 5%) is flagged as a regression and the script exits 1, so CI can
gate on it. Speedups and new/removed entries are reported but never fail
the comparison.
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def index_benchmarks(doc):
    return {b["name"]: b.get("items_per_second", 0.0)
            for b in doc.get("benchmarks", [])}


def index_sweep(doc):
    out = {}
    for p in doc.get("sweep", {}).get("points", []):
        key = "%s@%.2f" % (p["scheme"], p["gated"])
        out[key] = p.get("cycles_per_sec", 0.0)
    return out


def compare(kind, base, cand, threshold):
    regressions = []
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print("  %-40s NEW (%.1f/s)" % (name, cand[name]))
            continue
        if name not in cand:
            print("  %-40s REMOVED" % name)
            continue
        b, c = base[name], cand[name]
        if b <= 0:
            print("  %-40s baseline zero, skipped" % name)
            continue
        delta = 100.0 * (c - b) / b
        marker = ""
        if delta < -threshold:
            marker = "  <-- REGRESSION"
            regressions.append((kind, name, delta))
        print("  %-40s %12.1f -> %12.1f  (%+6.1f%%)%s"
              % (name, b, c, delta, marker))
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="regression threshold in percent (default 5)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    regressions = []
    print("micro-benchmarks (items/second):")
    regressions += compare("benchmark", index_benchmarks(base),
                           index_benchmarks(cand), args.threshold)
    print("\nsweep points (cycles/second):")
    regressions += compare("sweep", index_sweep(base), index_sweep(cand),
                           args.threshold)

    bs = base.get("sweep", {}).get("total_wall_s")
    cs = cand.get("sweep", {}).get("total_wall_s")
    if bs and cs:
        print("\nsweep wall-clock: %.3fs -> %.3fs" % (bs, cs))

    if regressions:
        print("\n%d regression(s) beyond %.1f%%:" %
              (len(regressions), args.threshold))
        for kind, name, delta in regressions:
            print("  [%s] %s: %+.1f%%" % (kind, name, delta))
        return 1
    print("\nno regressions beyond %.1f%%" % args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
