#!/usr/bin/env python3
"""Compare two benchmark/metric JSON documents.

Usage:
    scripts/bench_compare.py baseline.json candidate.json [--threshold 5.0]
                             [--allow-missing]

Accepts two input formats, auto-detected per file:
  * BENCH_sweep.json from bench_micro: per-benchmark throughput
    (items/second) and per-sweep-point simulation throughput
    (cycles/second);
  * flyover-run-manifest-v1 / flyover-sweep-manifest-v1 documents from
    flov_sim_cli / the figure benches (the "schema" field marks these):
    the embedded metrics registry is flattened to name -> value
    (counters and gauges verbatim, stats as <name>.mean).

A throughput drop larger than the threshold (default 5%) is flagged as a
regression and the script exits 1, so CI can gate on it.

Metric keys present in only ONE input are a hard failure: a silently
dropped (or renamed) counter is exactly the kind of regression a metrics
layer exists to catch, so NEW/REMOVED keys exit 1 with the offending
names listed. Pass --allow-missing when comparing across an intentional
schema change.

--require NAME1,NAME2 asserts that each listed benchmark is present in
BOTH inputs (prefix match, so "BM_GFlovCycle" covers
"BM_GFlovCycle/gate_pct:40" and "bench.wall_seconds" covers the merged
stat "bench.wall_seconds.mean") and was compared. A missing required
benchmark is a hard failure even under --allow-missing: the hot-path
benches the ops plane must not slow down (BM_NetworkCycle,
BM_GFlovCycle) cannot silently fall out of the comparison.
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def is_manifest(doc):
    return str(doc.get("schema", "")).startswith(
        ("flyover-run-manifest", "flyover-sweep-manifest"))


def index_benchmarks(doc):
    return {b["name"]: b.get("items_per_second", 0.0)
            for b in doc.get("benchmarks", [])}


def index_sweep(doc):
    out = {}
    for p in doc.get("sweep", {}).get("points", []):
        key = "%s@%.2f" % (p["scheme"], p["gated"])
        out[key] = p.get("cycles_per_sec", 0.0)
    return out


def flatten_registry(reg):
    """Metrics-registry JSON -> flat {name: value} (mirrors the C++
    MetricsRegistry::snapshot())."""
    out = {}
    if not reg:
        return out
    for name, v in reg.get("counters", {}).items():
        out[name] = float(v)
    for name, v in reg.get("gauges", {}).items():
        out[name] = float(v)
    for name, st in reg.get("stats", {}).items():
        out[name + ".mean"] = float(st.get("mean", 0.0))
        out[name + ".count"] = float(st.get("count", 0))
    return out


def index_manifest(doc):
    reg = doc.get("merged_metrics") or doc.get("metrics")
    return flatten_registry(reg)


def compare(kind, base, cand, threshold, missing):
    """Prints the per-key diff; returns throughput regressions and appends
    keys present in only one input to `missing`."""
    regressions = []
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            print("  %-40s NEW (%.6g)" % (name, cand[name]))
            missing.append((kind, name, "only in candidate"))
            continue
        if name not in cand:
            print("  %-40s REMOVED" % name)
            missing.append((kind, name, "only in baseline"))
            continue
        b, c = base[name], cand[name]
        if b == 0:
            mark = "" if c == 0 else "  (baseline zero)"
            print("  %-40s %12.6g -> %12.6g%s" % (name, b, c, mark))
            continue
        delta = 100.0 * (c - b) / b
        marker = ""
        # Only throughput-style sections treat a drop as a regression;
        # manifest metrics are value diffs (direction is metric-specific).
        if kind in ("benchmark", "sweep") and delta < -threshold:
            marker = "  <-- REGRESSION"
            regressions.append((kind, name, delta))
        print("  %-40s %12.6g -> %12.6g  (%+6.1f%%)%s"
              % (name, b, c, delta, marker))
    return regressions


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=5.0,
                    help="regression threshold in percent (default 5)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="tolerate metric keys present in only one input "
                         "(use across intentional schema changes)")
    ap.add_argument("--require", metavar="NAME1,NAME2",
                    help="comma-separated benchmark names that must be "
                         "present in both inputs (prefix match); missing "
                         "ones are a hard failure even with --allow-missing")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    regressions = []
    missing = []
    if is_manifest(base) or is_manifest(cand):
        if is_manifest(base) != is_manifest(cand):
            print("error: cannot compare a manifest against a "
                  "bench_micro document (%s vs %s)"
                  % (args.baseline, args.candidate))
            return 1
        print("manifest metrics (%s vs %s):"
              % (base.get("name", "?"), cand.get("name", "?")))
        regressions += compare("metric", index_manifest(base),
                               index_manifest(cand), args.threshold, missing)
    else:
        print("micro-benchmarks (items/second):")
        regressions += compare("benchmark", index_benchmarks(base),
                               index_benchmarks(cand), args.threshold,
                               missing)
        print("\nsweep points (cycles/second):")
        regressions += compare("sweep", index_sweep(base), index_sweep(cand),
                               args.threshold, missing)

        bs = base.get("sweep", {}).get("total_wall_s")
        cs = cand.get("sweep", {}).get("total_wall_s")
        if bs and cs:
            print("\nsweep wall-clock: %.3fs -> %.3fs" % (bs, cs))

    status = 0
    if args.require:
        base_names = set(index_benchmarks(base)) | set(index_manifest(base))
        cand_names = set(index_benchmarks(cand)) | set(index_manifest(cand))
        unmet = []
        for want in args.require.split(","):
            want = want.strip()
            if not want:
                continue
            for side, names in (("baseline", base_names),
                                ("candidate", cand_names)):
                if not any(n == want or n.startswith(want + "/")
                           or n.startswith(want + ".")
                           for n in names):
                    unmet.append((want, side))
        if unmet:
            print("\nrequired benchmark(s) missing:")
            for want, side in unmet:
                print("  %s (absent from %s)" % (want, side))
            print("this is a hard failure regardless of --allow-missing.")
            return 1
        print("\nrequired benchmarks present: %s" % args.require)

    if missing:
        print("\n%d key(s) present in only one input:" % len(missing))
        for kind, name, where in missing:
            print("  [%s] %s (%s)" % (kind, name, where))
        if args.allow_missing:
            print("tolerated (--allow-missing)")
        else:
            print("this is a hard failure: a dropped or renamed metric key "
                  "silently breaks every downstream consumer.\n"
                  "re-run with --allow-missing if the schema change is "
                  "intentional.")
            status = 1

    if regressions:
        print("\n%d regression(s) beyond %.1f%%:" %
              (len(regressions), args.threshold))
        for kind, name, delta in regressions:
            print("  [%s] %s: %+.1f%%" % (kind, name, delta))
        return 1
    if status == 0:
        print("\nno regressions beyond %.1f%%" % args.threshold)
    return status


if __name__ == "__main__":
    sys.exit(main())
