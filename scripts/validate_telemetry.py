#!/usr/bin/env python3
"""Validate Fly-Over telemetry artifacts (CI gate + local tooling).

Usage:
    scripts/validate_telemetry.py --trace run.trace.json
    scripts/validate_telemetry.py --manifest run.json
    scripts/validate_telemetry.py --diff-manifests serial.json parallel.json
    scripts/validate_telemetry.py --certificate cert.json \
        [--reference scripts/certify_reference.json] [--expect-early-stop]

--trace: checks the file is a Chrome-trace-event document Perfetto will
load: an object with a "traceEvents" array whose entries carry the
required ph/ts/pid/tid/name fields, instant events have cat + args, and
async begin/end pairs balance per (cat, id).

--manifest: checks a flyover-run-manifest-v1 / flyover-sweep-manifest-v1
document has its required fields and a well-formed embedded metrics
registry.

--certificate: checks a flyover-certificate-v1 document is well-formed
and internally consistent (counts, interval ordering, stop reason).
With --reference, additionally enforces the regression gate: the
certificate's certified lower bound on the reference's target metric
must not fall below the checked-in floor. With --expect-early-stop,
fails unless the sequential rule resolved before the replication cap.

--diff-manifests: strips the VOLATILE fields (wall_seconds, jobs,
trace_path, threads/tiles/procs, noc.step_threads, noc.step_tiles_x/y,
noc.step_procs — the only fields allowed to
differ between a serial and a parallel run/sweep of the same
configuration) recursively from both documents, then compares
byte-for-byte. Exit 1 on any other difference: this is the
serial-vs-parallel determinism gate, for sweep-level (jobs=),
intra-run (threads= domain workers) and multi-process (procs= forked
stepping workers) parallelism.

--snapshot: validates flyover-snapshot-v1 documents from the ops
plane's /snapshot endpoint or an ops_stream= JSONL flight recording
(auto-detected: one object, or one object per line). Checks the schema
tag, required scalar fields, and — for run-mode snapshots — that every
node array has exactly width*height entries. Also accepts
flyover-heatmap-v1 documents from /heatmap (grid shape check).

--runstate: validates a flyover-runstate-v1 checkpoint set written by
runstate=<path>: the JSONL index at <path> (schema tag, seq strictly
increasing from 1, strictly increasing cycles, constant config
fingerprint, slot = seq %% 2; a torn final line — crash mid-append —
is tolerated and reported) and the newest still-on-disk slot file
(magic, header consistency with its index line, FNV-1a checksum over
the arena + region images).

--prometheus: validates a Prometheus text-exposition (0.0.4) document
from /metrics: every sample line parses as `name value`, every sample
has a preceding # TYPE, and the core Fly-Over series (including
flyover_latency_hist_overflow_total and
flyover_hard_fault_incidents_total — the PR's incident surfacing) are
present.
"""
import argparse
import json
import re
import sys

VOLATILE_KEYS = {"wall_seconds", "jobs", "trace_path", "threads",
                 "noc.step_threads", "tiles", "noc.step_tiles_x",
                 "noc.step_tiles_y", "procs", "noc.step_procs",
                 "sim.snapshot_period", "runstate", "sim.max_recoveries"}

RUN_SCHEMA = "flyover-run-manifest-v1"
SWEEP_SCHEMA = "flyover-sweep-manifest-v1"
CERT_SCHEMA = "flyover-certificate-v1"
SNAPSHOT_SCHEMA = "flyover-snapshot-v1"
HEATMAP_SCHEMA = "flyover-heatmap-v1"

# Series every /metrics exposition must carry (run or campaign mode).
PROMETHEUS_REQUIRED = {
    "flyover_snapshot_seq",
    "flyover_progress_ratio",
    "flyover_latency_hist_overflow_total",
    "flyover_incidents_total",
    "flyover_hard_fault_incidents_total",
    "flyover_watchdog_stall_incidents_total",
    "flyover_stalled",
}

STOP_REASONS = {"target_certified", "target_refuted", "half_width",
                "max_replications"}


def fail(msg):
    print("validate_telemetry: FAIL: %s" % msg)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail("%s: %s" % (path, e))


def validate_trace(path):
    doc = load(path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("%s: not a Chrome-trace object (no traceEvents)" % path)
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("%s: traceEvents is not an array" % path)
    open_async = {}
    instants = 0
    spans = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail("%s: traceEvents[%d] is not an object" % (path, i))
        for field in ("ph", "ts", "pid", "tid", "name"):
            if field not in ev:
                fail("%s: traceEvents[%d] missing %r" % (path, i, field))
        ph = ev["ph"]
        if ph == "i":
            instants += 1
            if "cat" not in ev:
                fail("%s: instant event [%d] missing cat" % (path, i))
            if not isinstance(ev.get("args", {}), dict):
                fail("%s: instant event [%d] args not an object" % (path, i))
        elif ph in ("b", "e"):
            spans += 1
            key = (ev.get("cat"), ev.get("id"))
            open_async[key] = open_async.get(key, 0) + (1 if ph == "b" else -1)
        elif ph not in ("M",):
            fail("%s: traceEvents[%d] has unknown ph %r" % (path, i, ph))
    dangling = {k: v for k, v in open_async.items() if v != 0}
    if dangling:
        # Unbalanced spans are expected, not an error: episodes still open
        # when the run ended have no end event, and the ring may have
        # evicted a begin while its end survived.
        print("  note: %d async span track(s) unbalanced (episodes open at "
              "end of run or ring eviction)" % len(dangling))
    print("OK: %s: %d instant events, %d async span events"
          % (path, instants, spans))


def validate_registry(reg, where):
    if reg is None:
        return
    if not isinstance(reg, dict):
        fail("%s: metrics registry is not an object" % where)
    for section in ("counters", "gauges", "stats", "histograms", "series"):
        if section not in reg:
            fail("%s: metrics registry missing %r" % (where, section))
        if not isinstance(reg[section], dict):
            fail("%s: metrics registry %r is not an object"
                 % (where, section))
    for name, st in reg["stats"].items():
        for field in ("count", "mean", "min", "max", "stddev"):
            if field not in st:
                fail("%s: stat %r missing %r" % (where, name, field))
    for name, h in reg["histograms"].items():
        for field in ("lo", "hi", "count", "clamped_low", "clamped_high",
                      "bins"):
            if field not in h:
                fail("%s: histogram %r missing %r" % (where, name, field))


def validate_manifest(path):
    doc = load(path)
    schema = doc.get("schema")
    if schema == RUN_SCHEMA:
        required = ("name", "scheme", "git_describe", "seed", "config",
                    "wall_seconds", "trace_path", "metrics", "incidents")
    elif schema == SWEEP_SCHEMA:
        required = ("name", "git_describe", "config", "jobs", "wall_seconds",
                    "points", "merged_metrics", "incidents")
    else:
        fail("%s: unknown schema %r" % (path, schema))
    for field in required:
        if field not in doc:
            fail("%s: missing field %r" % (path, field))
    if not isinstance(doc["incidents"], list):
        fail("%s: incidents is not an array" % path)
    if schema == RUN_SCHEMA:
        validate_registry(doc["metrics"], path)
        n_points = None
    else:
        validate_registry(doc["merged_metrics"], "%s merged" % path)
        if not isinstance(doc["points"], list):
            fail("%s: points is not an array" % path)
        for i, p in enumerate(doc["points"]):
            for field in ("scheme", "pattern", "inj", "gated", "seed",
                          "metrics"):
                if field not in p:
                    fail("%s: points[%d] missing %r" % (path, i, field))
            validate_registry(p["metrics"], "%s points[%d]" % (path, i))
        n_points = len(doc["points"])
    extra = "" if n_points is None else ", %d points" % n_points
    print("OK: %s: %s%s, %d incident(s)"
          % (path, schema, extra, len(doc["incidents"])))


def validate_certificate(path, reference=None, expect_early_stop=False):
    doc = load(path)
    if doc.get("schema") != CERT_SCHEMA:
        fail("%s: schema is %r, want %r" % (path, doc.get("schema"),
                                            CERT_SCHEMA))
    required = ("name", "git_describe", "config", "config_fingerprint",
                "seed_base", "replications", "max_replications",
                "confidence", "target_metric", "target", "stop_reason",
                "jobs", "wall_seconds", "metrics")
    for field in required:
        if field not in doc:
            fail("%s: missing field %r" % (path, field))
    if not 0.0 < doc["confidence"] < 1.0:
        fail("%s: confidence %r not in (0, 1)" % (path, doc["confidence"]))
    if doc["stop_reason"] not in STOP_REASONS:
        fail("%s: unknown stop_reason %r" % (path, doc["stop_reason"]))
    if not 0 < doc["replications"] <= doc["max_replications"]:
        fail("%s: replications %r outside (0, max_replications=%r]"
             % (path, doc["replications"], doc["max_replications"]))
    if not isinstance(doc["metrics"], list) or not doc["metrics"]:
        fail("%s: metrics is not a non-empty array" % path)
    by_name = {}
    for i, m in enumerate(doc["metrics"]):
        for field in ("name", "successes", "trials", "point",
                      "wilson_lower", "wilson_upper",
                      "clopper_pearson_lower", "clopper_pearson_upper"):
            if field not in m:
                fail("%s: metrics[%d] missing %r" % (path, i, field))
        if m["successes"] > m["trials"]:
            fail("%s: metric %r has successes > trials"
                 % (path, m["name"]))
        for lo, hi in (("wilson_lower", "wilson_upper"),
                       ("clopper_pearson_lower", "clopper_pearson_upper")):
            if not (0.0 <= m[lo] <= m["point"] <= m[hi] <= 1.0):
                fail("%s: metric %r interval disordered: "
                     "%s=%r point=%r %s=%r"
                     % (path, m["name"], lo, m[lo], m["point"], hi, m[hi]))
        by_name[m["name"]] = m
    if doc["target_metric"] not in by_name:
        fail("%s: target_metric %r has no metrics entry"
             % (path, doc["target_metric"]))
    if expect_early_stop and doc["stop_reason"] == "max_replications":
        fail("%s: expected the sequential rule to stop before the cap, "
             "but the campaign ran all %r replications"
             % (path, doc["max_replications"]))
    print("OK: %s: %s, %d/%d replications, stop=%s"
          % (path, CERT_SCHEMA, doc["replications"],
             doc["max_replications"], doc["stop_reason"]))

    if reference is None:
        return
    ref = load(reference)
    metric_name = ref.get("target_metric", doc["target_metric"])
    if metric_name not in by_name:
        fail("%s: reference targets metric %r, absent from certificate"
             % (path, metric_name))
    m = by_name[metric_name]
    floor = ref.get("min_wilson_lower")
    if floor is None:
        fail("%s: no min_wilson_lower in reference" % reference)
    if "min_confidence" in ref and doc["confidence"] < ref["min_confidence"]:
        fail("%s: confidence %r below the reference's required %r"
             % (path, doc["confidence"], ref["min_confidence"]))
    if m["wilson_lower"] < floor:
        fail("reliability regression: certified %s lower bound %.6f fell "
             "below the reference floor %.6f (point %.6f over %d trials).\n"
             "  If the drop is intended, update %s with justification."
             % (metric_name, m["wilson_lower"], floor, m["point"],
                m["trials"], reference))
    print("OK: certified %s >= %.6f (floor %.6f, %d%% confidence)"
          % (metric_name, m["wilson_lower"], floor,
             round(doc["confidence"] * 100)))


def validate_snapshot_doc(doc, where):
    schema = doc.get("schema")
    if schema == HEATMAP_SCHEMA:
        for field in ("cycle", "scheme", "width", "height", "grids"):
            if field not in doc:
                fail("%s: missing field %r" % (where, field))
        w, h = doc["width"], doc["height"]
        grids = doc["grids"]
        if not isinstance(grids, dict) or not grids:
            fail("%s: grids is not a non-empty object" % where)
        for name, grid in grids.items():
            if len(grid) != h:
                fail("%s: grid %r has %d rows, want height=%d"
                     % (where, name, len(grid), h))
            for y, row in enumerate(grid):
                if len(row) != w:
                    fail("%s: grid %r row %d has %d cols, want width=%d"
                         % (where, name, y, len(row), w))
        return "%s %dx%d, %d grid(s)" % (schema, w, h, len(grids))
    if schema != SNAPSHOT_SCHEMA:
        fail("%s: schema is %r, want %r or %r"
             % (where, schema, SNAPSHOT_SCHEMA, HEATMAP_SCHEMA))
    for field in ("seq", "cycle", "total_cycles", "scheme", "width",
                  "height", "progress", "stalled", "globals", "incidents"):
        if field not in doc:
            fail("%s: missing field %r" % (where, field))
    for field in ("injected_flits", "ejected_flits", "in_network_flits",
                  "queued_packets", "gated_routers", "hist_overflow"):
        if field not in doc["globals"]:
            fail("%s: globals missing %r" % (where, field))
    for field in ("total", "hard_fault_summary", "watchdog_stall"):
        if field not in doc["incidents"]:
            fail("%s: incidents missing %r" % (where, field))
    if not 0.0 <= doc["progress"] <= 1.0 + 1e-9:
        fail("%s: progress %r outside [0, 1]" % (where, doc["progress"]))
    w, h = doc["width"], doc["height"]
    if "campaign" in doc:
        for field in ("points_done", "points_total", "checkpoint_path"):
            if field not in doc["campaign"]:
                fail("%s: campaign missing %r" % (where, field))
        if doc["campaign"]["points_done"] > doc["campaign"]["points_total"]:
            fail("%s: campaign points_done > points_total" % where)
        return "%s campaign seq=%d %d/%d" % (
            schema, doc["seq"], doc["campaign"]["points_done"],
            doc["campaign"]["points_total"])
    if w <= 0 or h <= 0:
        fail("%s: run-mode snapshot with non-positive %dx%d mesh"
             % (where, w, h))
    if "nodes" not in doc:
        fail("%s: run-mode snapshot missing 'nodes'" % where)
    for name in ("mode", "power_state", "occupancy", "queued",
                 "ejected_packets", "latency_sum", "gated_cycles"):
        arr = doc["nodes"].get(name)
        if arr is None:
            fail("%s: nodes missing %r" % (where, name))
        if len(arr) != w * h:
            fail("%s: nodes.%s has %d entries, want width*height=%d"
                 % (where, name, len(arr), w * h))
    return "%s seq=%d cycle=%d %dx%d" % (schema, doc["seq"], doc["cycle"],
                                         w, h)


def validate_snapshot(path):
    # Auto-detect: a single JSON document (from /snapshot or /heatmap) or
    # an ops_stream= JSONL flight recording (one snapshot per line).
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        fail("%s: %s" % (path, e))
    try:
        docs = [json.loads(text)]
    except ValueError:
        docs = []
        for i, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                docs.append(json.loads(line))
            except ValueError as e:
                fail("%s: line %d: %s" % (path, i + 1, e))
    if not docs:
        fail("%s: no snapshot documents" % path)
    last = None
    prev_seq = 0
    for i, doc in enumerate(docs):
        last = validate_snapshot_doc(doc, "%s[%d]" % (path, i))
        seq = doc.get("seq")
        if seq is not None:
            if seq <= prev_seq:
                fail("%s[%d]: seq %d not increasing (previous %d)"
                     % (path, i, seq, prev_seq))
            prev_seq = seq
    print("OK: %s: %d snapshot(s), last: %s" % (path, len(docs), last))


PROM_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? "
    r"(-?(?:[0-9.eE+-]+|NaN|Inf|\+Inf|-Inf))$")


def validate_prometheus(path):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail("%s: %s" % (path, e))
    typed = set()
    seen = set()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                fail("%s: line %d: malformed TYPE comment: %r"
                     % (path, i + 1, line))
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        m = PROM_SAMPLE_RE.match(line)
        if not m:
            fail("%s: line %d: not a valid sample line: %r"
                 % (path, i + 1, line))
        name = m.group(1)
        if name not in typed:
            fail("%s: line %d: sample %r has no preceding # TYPE"
                 % (path, i + 1, name))
        seen.add(name)
        float(m.group(3).replace("+Inf", "inf").replace("-Inf", "-inf"))
    absent = PROMETHEUS_REQUIRED - seen
    if absent:
        fail("%s: required series missing: %s" % (path, sorted(absent)))
    print("OK: %s: %d series, all required Fly-Over series present"
          % (path, len(seen)))


RUNSTATE_SCHEMA = "flyover-runstate-v1"
RUNSTATE_SLOT_MAGIC = b"FLOVRUN1"


def fnv1a(data, h=1469598103934665603):
    for byte in data:
        h = ((h ^ byte) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h


def validate_runstate(path):
    """Validate a runstate=<path> checkpoint set: JSONL index + newest slot."""
    try:
        with open(path, "rb") as f:
            raw_lines = f.read().split(b"\n")
    except OSError as e:
        fail("%s: cannot read runstate index: %s" % (path, e))
    entries = []
    torn = 0
    for i, raw in enumerate(raw_lines):
        if not raw.strip():
            continue
        try:
            entries.append((i + 1, json.loads(raw)))
        except ValueError:
            # Only the FINAL line may be torn (the writer appends whole
            # lines; a crash mid-append leaves at most one partial tail).
            if i == len(raw_lines) - 1 or all(
                    not l.strip() for l in raw_lines[i + 1:]):
                torn = 1
            else:
                fail("%s:%d: unparseable non-final index line" % (path, i + 1))
    if not entries:
        fail("%s: no intact index lines" % path)
    fingerprint = None
    prev_seq = 0
    prev_cycle = -1
    for lineno, e in entries:
        for field in ("schema", "seq", "cycle", "fingerprint", "slot",
                      "bytes", "checksum"):
            if field not in e:
                fail("%s:%d: missing field %r" % (path, lineno, field))
        if e["schema"] != RUNSTATE_SCHEMA:
            fail("%s:%d: schema %r, want %r"
                 % (path, lineno, e["schema"], RUNSTATE_SCHEMA))
        if e["seq"] != prev_seq + 1:
            fail("%s:%d: seq %s after %s (must increase by 1 from 1)"
                 % (path, lineno, e["seq"], prev_seq))
        prev_seq = e["seq"]
        if e["cycle"] <= prev_cycle and prev_cycle >= 0:
            fail("%s:%d: cycle %s not above previous %s"
                 % (path, lineno, e["cycle"], prev_cycle))
        prev_cycle = e["cycle"]
        if fingerprint is None:
            fingerprint = e["fingerprint"]
        elif e["fingerprint"] != fingerprint:
            fail("%s:%d: fingerprint changed mid-run (%s -> %s)"
                 % (path, lineno, fingerprint, e["fingerprint"]))
        if e["slot"] != e["seq"] % 2:
            fail("%s:%d: slot %s, want seq %% 2 = %s"
                 % (path, lineno, e["slot"], e["seq"] % 2))
    # The newest index entry's slot file is the one double-buffering
    # guarantees intact; verify it end-to-end.
    last = entries[-1][1]
    slot_path = "%s.%d" % (path, last["slot"])
    try:
        with open(slot_path, "rb") as f:
            blob = f.read()
    except OSError as e:
        fail("%s: cannot read newest slot: %s" % (slot_path, e))
    if blob[:8] != RUNSTATE_SLOT_MAGIC:
        fail("%s: bad slot magic %r" % (slot_path, blob[:8]))
    import struct
    if len(blob) < 8 + 6 * 8:
        fail("%s: truncated slot header" % slot_path)
    seq, cycle, fp, arena_bytes, region_bytes, checksum = struct.unpack(
        "<6Q", blob[8:8 + 48])
    if seq != last["seq"] or cycle != last["cycle"]:
        fail("%s: slot header (seq %d, cycle %d) disagrees with index "
             "(seq %d, cycle %d)"
             % (slot_path, seq, cycle, last["seq"], last["cycle"]))
    if "0x%016x" % fp != last["fingerprint"]:
        fail("%s: slot fingerprint 0x%016x != index %s"
             % (slot_path, fp, last["fingerprint"]))
    body = blob[8 + 48:]
    if len(body) != arena_bytes + region_bytes:
        fail("%s: %d image bytes on disk, header promises %d"
             % (slot_path, len(body), arena_bytes + region_bytes))
    if arena_bytes + region_bytes != last["bytes"]:
        fail("%s: image size %d != index bytes %d"
             % (slot_path, arena_bytes + region_bytes, last["bytes"]))
    actual = fnv1a(body)
    if actual != checksum or "0x%016x" % checksum != last["checksum"]:
        fail("%s: checksum mismatch (disk 0x%016x, header 0x%016x, "
             "index %s)" % (slot_path, actual, checksum, last["checksum"]))
    print("OK: %s: %d checkpoint(s) up to cycle %d, fingerprint %s, newest "
          "slot %s verified (%d bytes, checksum good)%s"
          % (path, len(entries), prev_cycle, fingerprint, slot_path,
             len(body), "; torn final line tolerated" if torn else ""))


def strip_volatile(node):
    if isinstance(node, dict):
        return {k: strip_volatile(v) for k, v in node.items()
                if k not in VOLATILE_KEYS}
    if isinstance(node, list):
        return [strip_volatile(v) for v in node]
    return node


def diff_manifests(path_a, path_b):
    a = strip_volatile(load(path_a))
    b = strip_volatile(load(path_b))
    # Byte-compare a canonical re-serialization: the writer itself is
    # deterministic, but stripping keys changes comma placement, so the
    # comparison re-renders both sides identically.
    sa = json.dumps(a, sort_keys=True, separators=(",", ":"))
    sb = json.dumps(b, sort_keys=True, separators=(",", ":"))
    if sa == sb:
        print("OK: %s == %s (modulo volatile fields %s)"
              % (path_a, path_b, sorted(VOLATILE_KEYS)))
        return
    # Locate the first differing path for a useful CI message.
    def first_diff(x, y, path="$"):
        if type(x) is not type(y):
            return path, "type %s vs %s" % (type(x).__name__,
                                            type(y).__name__)
        if isinstance(x, dict):
            for k in sorted(set(x) | set(y)):
                if k not in x:
                    return "%s.%s" % (path, k), "only in second"
                if k not in y:
                    return "%s.%s" % (path, k), "only in first"
                d = first_diff(x[k], y[k], "%s.%s" % (path, k))
                if d:
                    return d
            return None
        if isinstance(x, list):
            if len(x) != len(y):
                return path, "length %d vs %d" % (len(x), len(y))
            for i, (xi, yi) in enumerate(zip(x, y)):
                d = first_diff(xi, yi, "%s[%d]" % (path, i))
                if d:
                    return d
            return None
        if x != y:
            return path, "%r vs %r" % (x, y)
        return None

    where, what = first_diff(a, b)
    fail("manifests differ beyond volatile fields at %s: %s\n"
         "  first:  %s\n  second: %s" % (where, what, path_a, path_b))


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--trace", metavar="FILE",
                    help="validate a Chrome-trace-event JSON file")
    ap.add_argument("--manifest", metavar="FILE",
                    help="validate a run/sweep manifest")
    ap.add_argument("--diff-manifests", nargs=2, metavar=("A", "B"),
                    help="compare two manifests modulo volatile fields")
    ap.add_argument("--certificate", metavar="FILE",
                    help="validate a flyover-certificate-v1 document")
    ap.add_argument("--reference", metavar="FILE",
                    help="with --certificate: enforce the checked-in "
                         "certified-bound floor (regression gate)")
    ap.add_argument("--expect-early-stop", action="store_true",
                    help="with --certificate: fail unless the sequential "
                         "rule resolved before the replication cap")
    ap.add_argument("--snapshot", metavar="FILE",
                    help="validate a flyover-snapshot-v1 / heatmap document "
                         "or an ops_stream= JSONL recording")
    ap.add_argument("--prometheus", metavar="FILE",
                    help="validate a Prometheus text exposition from "
                         "/metrics")
    ap.add_argument("--runstate", metavar="FILE",
                    help="validate a flyover-runstate-v1 checkpoint index "
                         "(+ its newest slot file)")
    args = ap.parse_args()

    if not (args.trace or args.manifest or args.diff_manifests
            or args.certificate or args.snapshot or args.prometheus
            or args.runstate):
        ap.error("nothing to do: pass --trace, --manifest, --certificate, "
                 "--snapshot, --prometheus, --runstate and/or "
                 "--diff-manifests")
    if (args.reference or args.expect_early_stop) and not args.certificate:
        ap.error("--reference/--expect-early-stop require --certificate")
    if args.trace:
        validate_trace(args.trace)
    if args.manifest:
        validate_manifest(args.manifest)
    if args.certificate:
        validate_certificate(args.certificate, reference=args.reference,
                             expect_early_stop=args.expect_early_stop)
    if args.snapshot:
        validate_snapshot(args.snapshot)
    if args.prometheus:
        validate_prometheus(args.prometheus)
    if args.runstate:
        validate_runstate(args.runstate)
    if args.diff_manifests:
        diff_manifests(*args.diff_manifests)


if __name__ == "__main__":
    main()
