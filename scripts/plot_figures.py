#!/usr/bin/env python3
"""Plot the paper figures from bench CSV output.

Usage:
    build/bench/bench_fig6_uniform csv=results/fig6.csv
    build/bench/bench_fig7_tornado csv=results/fig7.csv
    build/bench/bench_fig9_static  csv=results/fig9.csv
    python3 scripts/plot_figures.py results/fig6.csv results/fig9.csv

Produces one PNG per (figure, injection-rate, metric) next to each CSV.
Requires matplotlib; the simulator itself never does.
"""
import csv
import os
import sys
from collections import defaultdict

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")

SCHEME_ORDER = ["Baseline", "RP", "rFLOV", "gFLOV"]
METRICS = {
    "latency": "average packet latency (cycles)",
    "dynamic_mw": "dynamic power (mW)",
    "total_mw": "total power (mW)",
    "static_mw": "static power (mW)",
}


def plot_file(path: str) -> None:
    rows = list(csv.DictReader(open(path)))
    if not rows:
        print(f"{path}: empty")
        return
    # Group by (figure, injection rate).
    groups = defaultdict(list)
    for r in rows:
        groups[(r["figure"], r["inj"])].append(r)
    base, _ = os.path.splitext(path)
    for (figure, inj), grp in groups.items():
        for metric, label in METRICS.items():
            if metric not in grp[0]:
                continue
            series = defaultdict(list)  # scheme -> [(gated, value)]
            for r in grp:
                series[r["scheme"]].append(
                    (100 * float(r["gated"]), float(r[metric]))
                )
            plt.figure(figsize=(5, 3.2))
            for scheme in SCHEME_ORDER:
                if scheme not in series:
                    continue
                pts = sorted(series[scheme])
                plt.plot([p[0] for p in pts], [p[1] for p in pts],
                         marker="o", markersize=3, label=scheme)
            plt.xlabel("power-gated cores (%)")
            plt.ylabel(label)
            plt.title(f"{figure}  inj={inj} flits/node/cycle")
            plt.legend(fontsize=8)
            plt.tight_layout()
            out = f"{base}_{figure}_inj{inj}_{metric}.png"
            plt.savefig(out, dpi=150)
            plt.close()
            print(f"wrote {out}")


def main() -> None:
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    for path in sys.argv[1:]:
        plot_file(path)


if __name__ == "__main__":
    main()
