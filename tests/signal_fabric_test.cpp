// SignalFabric tests: per-hop timing, absorption, relay, edge behaviour.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "flov/signal_fabric.hpp"

namespace flov {
namespace {

struct Fixture {
  Fixture() : geom(4, 4), fabric(geom, nullptr) {
    fabric.set_handler([this](NodeId at, const HsMessage& m) {
      log.push_back({at, m, now});
      return absorb_at.count(at) != 0;
    });
  }

  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) {
      fabric.step(now);
      ++now;
    }
  }

  HsMessage msg(NodeId from, Direction travel, NodeId target = kInvalidNode) {
    HsMessage m;
    m.type = HsType::kDrainReq;
    m.from = from;
    m.travel = travel;
    m.target = target;
    return m;
  }

  struct Entry {
    NodeId at;
    HsMessage m;
    Cycle when;
  };

  MeshGeometry geom;
  SignalFabric fabric;
  std::map<NodeId, bool> absorb_at;
  std::vector<Entry> log;
  Cycle now = 0;
};

TEST(SignalFabric, OneCyclePerHop) {
  Fixture f;
  f.absorb_at[7] = true;  // absorb at distance 3
  f.fabric.send(0, f.msg(4, Direction::East));
  f.run(10);
  ASSERT_EQ(f.log.size(), 3u);  // 5, 6, 7
  EXPECT_EQ(f.log[0].at, 5);
  EXPECT_EQ(f.log[0].when, 1u);
  EXPECT_EQ(f.log[1].at, 6);
  EXPECT_EQ(f.log[1].when, 2u);
  EXPECT_EQ(f.log[2].at, 7);
  EXPECT_EQ(f.log[2].when, 3u);
}

TEST(SignalFabric, AbsorptionStopsPropagation) {
  Fixture f;
  f.absorb_at[5] = true;
  f.fabric.send(0, f.msg(4, Direction::East));
  f.run(10);
  ASSERT_EQ(f.log.size(), 1u);
  EXPECT_EQ(f.log[0].at, 5);
  EXPECT_TRUE(f.fabric.idle());
}

TEST(SignalFabric, SignalDiesAtMeshEdge) {
  Fixture f;  // nobody absorbs
  f.fabric.send(0, f.msg(4, Direction::East));
  f.run(10);
  EXPECT_EQ(f.log.size(), 3u);  // 5, 6, 7, then off the edge
  EXPECT_TRUE(f.fabric.idle());
}

TEST(SignalFabric, SendOffEdgeIsNoOp) {
  Fixture f;
  f.fabric.send(0, f.msg(4, Direction::West));  // node 4 is at x=0
  f.run(5);
  EXPECT_TRUE(f.log.empty());
  EXPECT_TRUE(f.fabric.idle());
}

TEST(SignalFabric, VerticalTravel) {
  Fixture f;
  f.absorb_at[13] = true;
  f.fabric.send(0, f.msg(1, Direction::South));
  f.run(10);
  ASSERT_EQ(f.log.size(), 3u);  // 5, 9, 13
  EXPECT_EQ(f.log.back().at, 13);
  EXPECT_EQ(f.log.back().when, 3u);
}

TEST(SignalFabric, MultipleInFlightKeepTheirTimings) {
  Fixture f;
  f.absorb_at[6] = true;
  f.absorb_at[10] = true;
  f.fabric.send(0, f.msg(4, Direction::East));
  f.fabric.send(1, f.msg(8, Direction::East));
  f.run(10);
  ASSERT_EQ(f.log.size(), 4u);  // 5@1, {6,9}@2 in either order, 10@3
  std::map<NodeId, Cycle> when;
  for (const auto& e : f.log) when[e.at] = e.when;
  EXPECT_EQ(when[5], 1u);
  EXPECT_EQ(when[6], 2u);
  EXPECT_EQ(when[9], 2u);
  EXPECT_EQ(when[10], 3u);
}

TEST(SignalFabric, MessagePayloadPreservedAcrossRelay) {
  Fixture f;
  f.absorb_at[7] = true;
  HsMessage m = f.msg(4, Direction::East, /*target=*/7);
  m.type = HsType::kSleepNotify;
  m.logical_beyond = 42;
  f.fabric.send(0, m);
  f.run(10);
  ASSERT_FALSE(f.log.empty());
  EXPECT_EQ(f.log.back().m.logical_beyond, 42);
  EXPECT_EQ(f.log.back().m.type, HsType::kSleepNotify);
  EXPECT_EQ(f.log.back().m.from, 4);
}

TEST(SignalFabric, ForwardedCopyNotDeliveredSameCycle) {
  Fixture f;
  // A relay at node 5 must reach node 6 one cycle later, never same-cycle.
  f.absorb_at[7] = true;
  f.fabric.send(0, f.msg(4, Direction::East));
  f.run(2);  // cycles 0,1: delivered at 5 only
  ASSERT_EQ(f.log.size(), 1u);
  f.run(1);
  EXPECT_EQ(f.log.size(), 2u);
}

}  // namespace
}  // namespace flov
