// Gating-churn stress: cores randomly gate and un-gate while traffic is
// live. This drives every handshake race at once — drain/wakeup crossings,
// arbitration, re-sleep cycles, credit handovers mid-traffic — and checks
// the global invariants: no deadlock, no flit loss, eventual delivery.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "flov/flov_network.hpp"
#include "traffic/traffic_pattern.hpp"

namespace flov {
namespace {

using Param = std::tuple<FlovMode, int /*seed*/>;

class GatingChurn : public ::testing::TestWithParam<Param> {};

TEST_P(GatingChurn, SurvivesRandomToggleStorm) {
  const FlovMode mode = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());

  NocParams p;
  p.width = 6;
  p.height = 6;
  p.drain_idle_threshold = 8;
  FlovNetwork sys(p, mode, EnergyParams{});
  const MeshGeometry& g = sys.network().geom();

  std::uint64_t delivered = 0;
  sys.network().set_eject_callback(
      [&](const PacketRecord&) { ++delivered; });

  Rng rng(1000 + seed);
  UniformPattern pattern(g);
  std::vector<bool> gated(g.num_nodes(), false);
  std::uint64_t generated = 0;
  Cycle now = 0;
  Cycle last_delivery_check = 0;
  std::uint64_t last_delivered = 0;

  for (int step = 0; step < 30000; ++step) {
    // Random gating toggles: roughly one event every ~150 cycles.
    if (rng.next_bool(1.0 / 150.0)) {
      const NodeId n = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      gated[n] = !gated[n];
      sys.set_core_gated(n, gated[n], now);
    }
    // Traffic between currently active cores.
    std::vector<bool> active(g.num_nodes());
    for (NodeId n = 0; n < g.num_nodes(); ++n) active[n] = !gated[n];
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      if (gated[s] || !rng.next_bool(0.01)) continue;
      const NodeId d = pattern.dest(s, active, rng);
      if (d == kInvalidNode) continue;
      PacketDescriptor pd;
      pd.src = s;
      pd.dest = d;
      pd.size_flits = 4;
      pd.gen_cycle = now;
      sys.network().enqueue(pd);
      ++generated;
    }
    sys.step(now++);

    // Progress watchdog: deliveries must keep flowing.
    if (now - last_delivery_check >= 8000) {
      if (!sys.network().in_flight_empty()) {
        ASSERT_GT(delivered, last_delivered)
            << "no deliveries for 8000 cycles at " << now;
      }
      last_delivered = delivered;
      last_delivery_check = now;
    }
  }

  // Quiesce: stop gating changes and traffic; wake everything up.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (gated[n]) sys.set_core_gated(n, false, now);
  }
  for (int i = 0; i < 20000 && !sys.network().idle(); ++i) sys.step(now++);
  EXPECT_TRUE(sys.network().idle());
  EXPECT_EQ(sys.network().total_injected_flits(),
            sys.network().total_ejected_flits());
  EXPECT_EQ(delivered, generated);

  // After quiescing with all cores on, every router must be Active again.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(sys.hsc(n).state(), PowerState::kActive) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Storms, GatingChurn,
    ::testing::Combine(::testing::Values(FlovMode::kRestricted,
                                         FlovMode::kGeneralized),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<0>(info.param) == FlovMode::kRestricted
                             ? "rFLOV"
                             : "gFLOV") +
             "_s" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace flov
