// Statistical reliability certification (docs/RELIABILITY.md): interval
// and sequential-test numerics against closed-form values, the shared
// backoff helper's overflow edges, jobs-x-threads budgeting, replication
// seed derivation, and the campaign-level determinism contract — the
// folded estimates are byte-identical across jobs=1 vs jobs=N and across
// kill-and-resume, and the sequential rule actually stops before the cap.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/backoff.hpp"
#include "common/stats.hpp"
#include "sim/certify.hpp"
#include "sim/checkpoint.hpp"
#include "sim/sweep.hpp"

namespace flov {
namespace {

// --- interval math vs closed-form values --------------------------------

TEST(NormalQuantile, MatchesKnownValues) {
  // Phi^-1 at the standard confidence points (tabulated to 1e-9).
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-8);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829304, 1e-8);
  EXPECT_NEAR(normal_quantile(0.841344746068543), 1.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  // Symmetry: Phi^-1(1-p) == -Phi^-1(p).
  EXPECT_NEAR(normal_quantile(0.025), -normal_quantile(0.975), 1e-12);
  EXPECT_NEAR(normal_quantile(0.01), -normal_quantile(0.99), 1e-12);
}

TEST(WilsonInterval, MatchesClosedForm) {
  // 8 of 10 at 95%: the textbook Wilson interval is [0.49016, 0.94332].
  const BinomialInterval ci = wilson_interval(8, 10, 0.95);
  EXPECT_NEAR(ci.lower, 0.49016, 5e-4);
  EXPECT_NEAR(ci.upper, 0.94332, 5e-4);
  EXPECT_NEAR(ci.half_width(), (ci.upper - ci.lower) / 2.0, 1e-15);
}

TEST(WilsonInterval, EdgesAndMonotonicity) {
  // trials == 0: the vacuous interval.
  const BinomialInterval empty = wilson_interval(0, 0, 0.95);
  EXPECT_EQ(empty.lower, 0.0);
  EXPECT_EQ(empty.upper, 1.0);
  // All-failures / all-successes stay inside [0, 1] and pinned ends.
  const BinomialInterval none = wilson_interval(0, 20, 0.95);
  EXPECT_EQ(none.lower, 0.0);
  EXPECT_GT(none.upper, 0.0);
  EXPECT_LT(none.upper, 1.0);
  const BinomialInterval all = wilson_interval(20, 20, 0.95);
  EXPECT_EQ(all.upper, 1.0);
  EXPECT_GT(all.lower, 0.5);
  // More trials at the same rate tighten the bound.
  EXPECT_LT(wilson_interval(80, 100, 0.95).half_width(),
            wilson_interval(8, 10, 0.95).half_width());
  // Higher confidence widens it.
  EXPECT_GT(wilson_interval(8, 10, 0.99).half_width(),
            wilson_interval(8, 10, 0.95).half_width());
}

TEST(ClopperPearson, MatchesClosedForm) {
  // 8 of 10 at 95%: the exact interval is [0.44390, 0.97479].
  const BinomialInterval ci = clopper_pearson_interval(8, 10, 0.95);
  EXPECT_NEAR(ci.lower, 0.44390, 5e-4);
  EXPECT_NEAR(ci.upper, 0.97479, 5e-4);
  // Conservative: never tighter than Wilson on the same counts.
  const BinomialInterval w = wilson_interval(8, 10, 0.95);
  EXPECT_LE(ci.lower, w.lower + 1e-12);
  EXPECT_GE(ci.upper, w.upper - 1e-12);
}

TEST(ClopperPearson, Edges) {
  const BinomialInterval empty = clopper_pearson_interval(0, 0, 0.95);
  EXPECT_EQ(empty.lower, 0.0);
  EXPECT_EQ(empty.upper, 1.0);
  // s == 0 pins lower to exactly 0; the upper is the exact 1-(alpha/2)
  // bound 1 - (alpha/2)^(1/n): for n=10, 0.30850.
  const BinomialInterval none = clopper_pearson_interval(0, 10, 0.95);
  EXPECT_EQ(none.lower, 0.0);
  EXPECT_NEAR(none.upper, 1.0 - std::pow(0.025, 0.1), 5e-4);
  // s == n mirrors it.
  const BinomialInterval all = clopper_pearson_interval(10, 10, 0.95);
  EXPECT_EQ(all.upper, 1.0);
  EXPECT_NEAR(all.lower, std::pow(0.025, 0.1), 5e-4);
}

TEST(RegularizedBeta, ClosedFormIdentities) {
  // I_x(1, 1) == x.
  EXPECT_NEAR(regularized_beta(1.0, 1.0, 0.3), 0.3, 1e-12);
  // I_x(1, b) == 1 - (1-x)^b.
  EXPECT_NEAR(regularized_beta(1.0, 4.0, 0.2), 1.0 - std::pow(0.8, 4.0),
              1e-12);
  // Symmetry: I_x(a, b) == 1 - I_{1-x}(b, a).
  EXPECT_NEAR(regularized_beta(2.5, 3.5, 0.4),
              1.0 - regularized_beta(3.5, 2.5, 0.6), 1e-12);
  // I_{1/2}(a, a) == 1/2.
  EXPECT_NEAR(regularized_beta(7.0, 7.0, 0.5), 0.5, 1e-12);
}

TEST(Sprt, LlrAndThresholdsMatchHandComputation) {
  // H1 "p >= 0.9" vs H0 "p <= 0.8" at alpha = beta = 0.05.
  const SprtTest t(0.8, 0.9, 0.05, 0.05);
  EXPECT_NEAR(t.accept_threshold(), std::log(0.95 / 0.05), 1e-12);
  EXPECT_NEAR(t.reject_threshold(), std::log(0.05 / 0.95), 1e-12);
  // llr = s ln(p1/p0) + f ln((1-p1)/(1-p0)).
  EXPECT_NEAR(t.llr(10, 12),
              10.0 * std::log(0.9 / 0.8) + 2.0 * std::log(0.1 / 0.2), 1e-12);
  EXPECT_NEAR(t.llr(0, 0), 0.0, 1e-15);
}

TEST(Sprt, DecisionBoundaries) {
  const SprtTest t(0.8, 0.9, 0.05, 0.05);
  // ln(19) / ln(1.125) = 24.999... -> 25 straight successes certify,
  // 24 do not.
  EXPECT_EQ(t.decide(24, 24), SprtTest::Decision::kContinue);
  EXPECT_EQ(t.decide(25, 25), SprtTest::Decision::kAcceptH1);
  // ln(19) / ln(2) = 4.25 -> 5 straight failures refute, 4 do not.
  EXPECT_EQ(t.decide(0, 4), SprtTest::Decision::kContinue);
  EXPECT_EQ(t.decide(0, 5), SprtTest::Decision::kAcceptH0);
  // A mixed stream inside the indifference region keeps sampling.
  EXPECT_EQ(t.decide(17, 20), SprtTest::Decision::kContinue);
}

// --- shared capped exponential backoff ----------------------------------

TEST(BackoffShift, CapsAndSaturates) {
  EXPECT_EQ(backoff_shift(64, 0, 3), 64u);
  EXPECT_EQ(backoff_shift(64, 1, 3), 128u);
  EXPECT_EQ(backoff_shift(64, 3, 3), 512u);
  EXPECT_EQ(backoff_shift(64, 9, 3), 512u);   // capped at shift 3
  EXPECT_EQ(backoff_shift(64, 5, -1), 2048u);  // cap < 0: uncapped
  EXPECT_EQ(backoff_shift(64, -7, 3), 64u);    // negative attempt: shift 0
  EXPECT_EQ(backoff_shift(0, 5, 3), 0u);
  // Saturation instead of UB: shift >= 64 and multiply overflow both pin
  // to the maximum (an effectively-infinite deadline, not a tiny one).
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(backoff_shift(1, 64, -1), kMax);
  EXPECT_EQ(backoff_shift(1, 200, -1), kMax);
  EXPECT_EQ(backoff_shift(std::uint64_t{1} << 63, 1, -1), kMax);
  EXPECT_EQ(backoff_shift(std::uint64_t{3} << 62, 2, -1), kMax);
  static_assert(backoff_shift(64, 2, 10) == 256, "constexpr-evaluable");
}

// --- jobs x threads budgeting -------------------------------------------

TEST(ResolveJobs, ExplicitJobsAlwaysWin) {
  EXPECT_EQ(resolve_jobs(4), 4);
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(3, 8), 3);
  EXPECT_EQ(resolve_jobs(1, 1000), 1);
}

TEST(ResolveJobs, AutoBudgetsAgainstThreadsPerJob) {
  const int hw = resolve_jobs(0);
  ASSERT_GE(hw, 1);
  // threads_per_job == 1 (or nonsense <= 0) reduces to plain auto.
  EXPECT_EQ(resolve_jobs(0, 1), hw);
  EXPECT_EQ(resolve_jobs(0, 0), hw);
  EXPECT_EQ(resolve_jobs(0, -3), hw);
  // The budget divides the machine and never collapses below one job.
  EXPECT_EQ(resolve_jobs(0, 2), hw / 2 < 1 ? 1 : hw / 2);
  EXPECT_EQ(resolve_jobs(0, hw), 1);
  EXPECT_EQ(resolve_jobs(0, hw + 1), 1);
  EXPECT_EQ(resolve_jobs(0, 1 << 20), 1);
}

// --- replication seed derivation ----------------------------------------

TEST(ReplicationSeeds, NonZeroDistinctAndStable) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t rep = 0; rep < 1000; ++rep) {
    const std::uint64_t s = derive_replication_seed(42, rep);
    EXPECT_NE(s, 0u);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across the campaign
  // Pure function of (base, rep): stable across calls, distinct across
  // bases (checkpoint fingerprints depend on this).
  EXPECT_EQ(derive_replication_seed(42, 7), derive_replication_seed(42, 7));
  EXPECT_NE(derive_replication_seed(42, 7), derive_replication_seed(43, 7));
}

TEST(ReplicationSeeds, ConfigDerivationRespectsVaryFaults) {
  SyntheticExperimentConfig base;
  base.faults.hard_router_pct = 0.05;
  base.faults.seed = 99;

  CertifyOptions opts;
  opts.seed_base = 7;
  opts.vary_faults = false;
  const SyntheticExperimentConfig pinned = replication_config(base, opts, 3);
  EXPECT_EQ(pinned.seed, derive_replication_seed(7, 3));
  EXPECT_EQ(pinned.faults.seed, 99u);  // "THESE routers die" mode

  opts.vary_faults = true;
  const SyntheticExperimentConfig varied = replication_config(base, opts, 3);
  EXPECT_EQ(varied.seed, pinned.seed);
  EXPECT_NE(varied.faults.seed, 99u);
  // Distinct replications -> distinct checkpoint fingerprints: this is
  // what keeps batches sharing one campaign checkpoint file inert to each
  // other's lines.
  EXPECT_NE(sweep_point_fingerprint(replication_config(base, opts, 0)),
            sweep_point_fingerprint(replication_config(base, opts, 1)));
}

// --- campaign-level determinism -----------------------------------------

SyntheticExperimentConfig certify_config(std::uint64_t fault_seed) {
  SyntheticExperimentConfig ex;
  ex.noc.width = 4;
  ex.noc.height = 4;
  ex.scheme = Scheme::kGFlov;
  ex.pattern = "uniform";
  ex.inj_rate_flits = 0.05;
  ex.gated_fraction = 0.3;
  ex.warmup = 200;
  ex.measure = 600;
  ex.noc.reliable = true;
  ex.noc.retx_timeout = 64;
  ex.noc.sleep_reannounce_interval = 128;
  ex.noc.psr_block_timeout = 192;
  ex.drain_max = 20000;
  ex.max_cycles_hard = 100000;
  ex.verifier.fatal = false;
  ex.verifier.settle_window = 512;
  ex.faults.hard_router_pct = 0.06;
  ex.faults.hard_at_cycle = ex.warmup + 200;
  ex.faults.seed = fault_seed;
  return ex;
}

void expect_identical(const CertifyResult& a, const CertifyResult& b) {
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.stopped_early, b.stopped_early);
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (std::size_t i = 0; i < a.estimates.size(); ++i) {
    SCOPED_TRACE(a.estimates[i].metric);
    EXPECT_EQ(a.estimates[i].metric, b.estimates[i].metric);
    EXPECT_EQ(a.estimates[i].successes, b.estimates[i].successes);
    EXPECT_EQ(a.estimates[i].trials, b.estimates[i].trials);
    // Bit-exact, not NEAR: same counts through the same fixed-iteration
    // numerics must yield the same doubles (the certificate is diffed
    // byte-for-byte in CI).
    EXPECT_EQ(a.estimates[i].point, b.estimates[i].point);
    EXPECT_EQ(a.estimates[i].wilson.lower, b.estimates[i].wilson.lower);
    EXPECT_EQ(a.estimates[i].wilson.upper, b.estimates[i].wilson.upper);
    EXPECT_EQ(a.estimates[i].clopper_pearson.lower,
              b.estimates[i].clopper_pearson.lower);
    EXPECT_EQ(a.estimates[i].clopper_pearson.upper,
              b.estimates[i].clopper_pearson.upper);
  }
}

TEST(Certification, EstimatesAreIdenticalAcrossJobCounts) {
  const SyntheticExperimentConfig base = certify_config(11);
  CertifyOptions opts;
  opts.metric = "delivery";
  opts.min_replications = 4;
  opts.max_replications = 8;
  opts.batch = 4;
  opts.seed_base = 5;
  opts.vary_faults = true;

  opts.jobs = 1;
  const CertifyResult serial = run_certification(base, opts);
  opts.jobs = 2;
  const CertifyResult parallel = run_certification(base, opts);
  expect_identical(serial, parallel);

  // Sanity on the folded shape: all three metrics, fixed order, points
  // inside their own intervals, per-packet trials dwarf per-run trials.
  ASSERT_EQ(serial.estimates.size(), 3u);
  EXPECT_EQ(serial.estimates[0].metric, "delivery");
  EXPECT_EQ(serial.estimates[1].metric, "clean_delivery");
  EXPECT_EQ(serial.estimates[2].metric, "run_survival");
  for (const CertifyEstimate& e : serial.estimates) {
    ASSERT_GT(e.trials, 0u);
    EXPECT_GE(e.point, e.wilson.lower);
    EXPECT_LE(e.point, e.wilson.upper);
    EXPECT_GE(e.point, e.clopper_pearson.lower);
    EXPECT_LE(e.point, e.clopper_pearson.upper);
  }
  EXPECT_EQ(serial.estimates[2].trials, serial.replications);
  EXPECT_GT(serial.estimates[0].trials, serial.estimates[2].trials);
  EXPECT_EQ(serial.replications, 8u);
  EXPECT_EQ(serial.stop_reason, "max_replications");
}

TEST(Certification, KilledAndResumedCampaignReproducesTheCertificate) {
  const SyntheticExperimentConfig base = certify_config(13);
  CertifyOptions opts;
  opts.metric = "delivery";
  opts.min_replications = 4;
  opts.max_replications = 8;
  opts.batch = 4;
  opts.seed_base = 9;

  // Golden: the uninterrupted campaign, no checkpoint.
  opts.jobs = 1;
  const CertifyResult golden = run_certification(base, opts);

  // Full campaign with a shared checkpoint file (jobs=2 to also cross the
  // parallel/serial boundary), then simulate a kill by truncating the
  // file to its first five replication lines.
  const std::string path = ::testing::TempDir() + "/flov_cert_ckpt.jsonl";
  std::remove(path.c_str());
  opts.checkpoint_path = path;
  opts.resume = false;
  opts.jobs = 2;
  run_certification(base, opts);

  std::string all;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) all.append(buf, n);
    std::fclose(f);
  }
  std::vector<std::string> lines;
  for (std::size_t pos = 0; pos < all.size();) {
    const std::size_t nl = all.find('\n', pos);
    lines.push_back(all.substr(pos, nl - pos));
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 8u);  // every replication checkpointed
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (std::size_t i = 0; i < 5; ++i) {
      std::fprintf(f, "%s\n", lines[i].c_str());
    }
    // Torn final line: crash mid-write must be skipped, not fatal.
    std::fprintf(f, "%s", lines[5].substr(0, lines[5].size() / 2).c_str());
    std::fclose(f);
  }

  opts.resume = true;
  opts.jobs = 1;
  const CertifyResult resumed = run_certification(base, opts);
  expect_identical(golden, resumed);
  std::remove(path.c_str());
}

TEST(Certification, SequentialRuleStopsBeforeTheCap) {
  // Healthy fabric, modest target: the per-packet SPRT resolves on the
  // first decision boundary, far short of the cap.
  SyntheticExperimentConfig base = certify_config(0);
  base.faults = FaultParams{};
  CertifyOptions opts;
  opts.metric = "delivery";
  opts.target = 0.5;
  opts.indifference = 0.05;
  opts.min_replications = 2;
  opts.max_replications = 50;
  opts.batch = 2;
  opts.jobs = 1;
  const CertifyResult res = run_certification(base, opts);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_EQ(res.stop_reason, "target_certified");
  EXPECT_LT(res.replications, opts.max_replications);
  EXPECT_EQ(res.target_estimate.metric, "delivery");
  EXPECT_GT(res.target_estimate.point, 0.5);
}

TEST(Certification, ImpossibleTargetIsRefutedEarly) {
  // Routers die and the target demands near-perfect delivery: the SPRT
  // must refute, and just as early.
  const SyntheticExperimentConfig base = certify_config(17);
  CertifyOptions opts;
  opts.metric = "delivery";
  opts.target = 0.9995;
  opts.indifference = 0.0004;
  opts.min_replications = 2;
  opts.max_replications = 50;
  opts.batch = 2;
  opts.jobs = 1;
  const CertifyResult res = run_certification(base, opts);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_EQ(res.stop_reason, "target_refuted");
  EXPECT_LT(res.replications, opts.max_replications);
}

TEST(Certification, HalfWidthRuleStopsOnItsOwn) {
  // No SPRT target: the campaign runs until the Wilson half-width on
  // delivery tightens below the bound (per-packet counts get there fast).
  SyntheticExperimentConfig base = certify_config(0);
  base.faults = FaultParams{};
  CertifyOptions opts;
  opts.metric = "delivery";
  opts.half_width_stop = 0.02;
  opts.min_replications = 2;
  opts.max_replications = 50;
  opts.batch = 2;
  opts.jobs = 1;
  const CertifyResult res = run_certification(base, opts);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_EQ(res.stop_reason, "half_width");
  EXPECT_LE(res.target_estimate.wilson.half_width(), 0.02);
}

}  // namespace
}  // namespace flov
