// Traffic pattern / gating scenario / synthetic injection tests.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "sim/baseline_network.hpp"
#include "traffic/gating_scenario.hpp"
#include "traffic/synthetic_traffic.hpp"
#include "traffic/traffic_pattern.hpp"

namespace flov {
namespace {

TEST(TrafficPattern, FactoryKnowsAllNames) {
  MeshGeometry g(8, 8);
  for (const char* name : {"uniform", "tornado", "transpose", "bitcomplement",
                           "neighbor", "hotspot"}) {
    auto p = TrafficPattern::create(name, g);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_STREQ(p->name(), name);
  }
  EXPECT_THROW(TrafficPattern::create("bogus", g), std::logic_error);
}

TEST(TrafficPattern, UniformNeverPicksSelfOrInactive) {
  MeshGeometry g(8, 8);
  UniformPattern u(g);
  Rng rng(5);
  std::vector<bool> active(64, true);
  active[10] = active[20] = active[30] = false;
  for (int i = 0; i < 2000; ++i) {
    const NodeId d = u.dest(7, active, rng);
    ASSERT_NE(d, 7);
    ASSERT_NE(d, kInvalidNode);
    ASSERT_TRUE(active[d]);
  }
}

TEST(TrafficPattern, UniformCoversAllActiveDestinations) {
  MeshGeometry g(4, 4);
  UniformPattern u(g);
  Rng rng(7);
  std::vector<bool> active(16, true);
  std::set<NodeId> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(u.dest(0, active, rng));
  EXPECT_EQ(seen.size(), 15u);
}

TEST(TrafficPattern, UniformNoActiveDestReturnsInvalid) {
  MeshGeometry g(4, 4);
  UniformPattern u(g);
  Rng rng(1);
  std::vector<bool> active(16, false);
  active[3] = true;
  EXPECT_EQ(u.dest(3, active, rng), kInvalidNode);
}

TEST(TrafficPattern, TornadoHalfRingOffset) {
  MeshGeometry g(8, 8);
  TornadoPattern t(g);
  Rng rng(1);
  std::vector<bool> active(64, true);
  // (x, y) -> ((x + 3) mod 8, y) for k = 8.
  EXPECT_EQ(t.dest(g.id(0, 2), active, rng), g.id(3, 2));
  EXPECT_EQ(t.dest(g.id(6, 5), active, rng), g.id(1, 5));
}

TEST(TrafficPattern, TornadoSkipsGatedTarget) {
  MeshGeometry g(8, 8);
  TornadoPattern t(g);
  Rng rng(1);
  std::vector<bool> active(64, true);
  active[g.id(3, 2)] = false;
  EXPECT_EQ(t.dest(g.id(0, 2), active, rng), kInvalidNode);
}

TEST(TrafficPattern, TransposeAndBitComplement) {
  MeshGeometry g(8, 8);
  TransposePattern tr(g);
  BitComplementPattern bc(g);
  Rng rng(1);
  std::vector<bool> active(64, true);
  EXPECT_EQ(tr.dest(g.id(2, 5), active, rng), g.id(5, 2));
  EXPECT_EQ(bc.dest(5, active, rng), 58);  // ~5 & 63
  EXPECT_EQ(tr.dest(g.id(3, 3), active, rng), kInvalidNode);  // self
}

TEST(TrafficPattern, NeighborWrapsRow) {
  MeshGeometry g(4, 4);
  NeighborPattern n(g);
  Rng rng(1);
  std::vector<bool> active(16, true);
  EXPECT_EQ(n.dest(g.id(3, 1), active, rng), g.id(0, 1));
}

TEST(TrafficPattern, HotspotBiasesCorners) {
  MeshGeometry g(8, 8);
  HotspotPattern h(g, 0.5);
  Rng rng(3);
  std::vector<bool> active(64, true);
  int corner_hits = 0;
  const std::set<NodeId> corners{0, 7, 56, 63};
  for (int i = 0; i < 4000; ++i) {
    const NodeId d = h.dest(27, active, rng);
    corner_hits += corners.count(d);
  }
  // ~50% directed + uniform residue: far above the uniform 4/63 share.
  EXPECT_GT(corner_hits, 1500);
}

TEST(GatingScenario, FractionGatesExpectedCount) {
  MeshGeometry g(8, 8);
  for (double f : {0.0, 0.1, 0.5, 0.8}) {
    auto s = GatingScenario::uniform_fraction(g, f, 42);
    ASSERT_EQ(s.events().size(), 1u);
    int gated = 0;
    for (bool b : s.events()[0].gated) gated += b;
    EXPECT_EQ(gated, static_cast<int>(f * 64 + 0.5));
  }
}

TEST(GatingScenario, SeedDeterminism) {
  MeshGeometry g(8, 8);
  auto a = GatingScenario::uniform_fraction(g, 0.5, 9);
  auto b = GatingScenario::uniform_fraction(g, 0.5, 9);
  auto c = GatingScenario::uniform_fraction(g, 0.5, 10);
  EXPECT_EQ(a.events()[0].gated, b.events()[0].gated);
  EXPECT_NE(a.events()[0].gated, c.events()[0].gated);
}

TEST(GatingScenario, EpochsChangeTheSet) {
  MeshGeometry g(8, 8);
  auto s = GatingScenario::epochs(g, 0.1, {50000, 60000}, 1);
  ASSERT_EQ(s.events().size(), 3u);
  EXPECT_EQ(s.events()[1].at, 50000u);
  EXPECT_NE(s.events()[0].gated, s.events()[1].gated);
}

TEST(GatingScenario, ApplyDrivesSystem) {
  NocParams p;
  p.width = 4;
  p.height = 4;
  BaselineNetwork sys(p, EnergyParams{});
  MeshGeometry g(4, 4);
  auto s = GatingScenario::epochs(g, 0.25, {100}, 3);
  s.apply(sys, 0);
  int gated0 = 0;
  for (NodeId n = 0; n < 16; ++n) gated0 += sys.core_gated(n);
  EXPECT_EQ(gated0, 4);
  s.apply(sys, 100);
  int gated1 = 0;
  for (NodeId n = 0; n < 16; ++n) gated1 += sys.core_gated(n);
  EXPECT_EQ(gated1, 4);  // same fraction, different set
}

TEST(SyntheticTraffic, RateMatchesConfiguredInjection) {
  NocParams p;
  p.width = 4;
  p.height = 4;
  BaselineNetwork sys(p, EnergyParams{});
  MeshGeometry g(4, 4);
  UniformPattern u(g);
  SyntheticTraffic t(&sys, &u, /*inj_rate_flits=*/0.2, /*packet_size=*/4, 7);
  for (Cycle c = 0; c < 20000; ++c) t.step(c);
  // Expected packets: 16 nodes * 0.05 pkt/cyc * 20000 = 16000.
  EXPECT_NEAR(static_cast<double>(t.generated_packets()), 16000, 500);
}

TEST(SyntheticTraffic, GatedCoresGenerateNothing) {
  NocParams p;
  p.width = 4;
  p.height = 4;
  BaselineNetwork sys(p, EnergyParams{});
  for (NodeId n = 0; n < 15; ++n) sys.set_core_gated(n, true, 0);
  MeshGeometry g(4, 4);
  UniformPattern u(g);
  SyntheticTraffic t(&sys, &u, 0.2, 4, 7);
  for (Cycle c = 0; c < 5000; ++c) t.step(c);
  // Only node 15 is active, and it has no active destination.
  EXPECT_EQ(t.generated_packets(), 0u);
}

}  // namespace
}  // namespace flov
