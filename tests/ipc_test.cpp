// Unit tests for the ipc layer underneath multi-process stepping: the
// SPSC status ring's index arithmetic at its edges, and the shared arena's
// size-class recycling, canary/audit hardening and poisoning contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "noc/ipc/spsc_ring.hpp"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>

#include "noc/ipc/shm_arena.hpp"
#endif

namespace flov::ipc {
namespace {

struct Rec {
  std::uint64_t epoch;
  std::uint64_t busy_ns;
};

TEST(SpscRing, FifoAcrossIndexWrapAround) {
  // Head/tail are free-running counters masked into the slot array; march
  // enough records through a tiny ring that the physical index wraps many
  // times and FIFO order must survive every wrap.
  SpscRing<Rec, 4> ring;
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    const int burst = 1 + (round % 4);
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.try_push(Rec{next_push, next_push * 3}));
      ++next_push;
    }
    Rec r{};
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.try_pop(&r));
      EXPECT_EQ(r.epoch, next_pop);
      EXPECT_EQ(r.busy_ns, next_pop * 3);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRing, FullRingRefusesPushWithoutClobbering) {
  // Backpressure contract: a full ring returns false and leaves the queued
  // records untouched — the producer coalesces, it never overwrites.
  SpscRing<Rec, 4> ring;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push(Rec{i, i}));
  }
  EXPECT_FALSE(ring.try_push(Rec{99, 99}));
  EXPECT_FALSE(ring.try_push(Rec{100, 100}));
  Rec r{};
  ASSERT_TRUE(ring.try_pop(&r));
  EXPECT_EQ(r.epoch, 0u);  // rejected pushes clobbered nothing
  // One slot free again: the next push lands behind the survivors.
  ASSERT_TRUE(ring.try_push(Rec{4, 4}));
  for (std::uint64_t want = 1; want <= 4; ++want) {
    ASSERT_TRUE(ring.try_pop(&r));
    EXPECT_EQ(r.epoch, want);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MinimumCapacityTwoAlternatesEmptyAndFull) {
  // kSlots = 2 is the smallest legal ring; the full/empty predicates sit
  // one increment apart, the regime where off-by-one index bugs live.
  SpscRing<Rec, 2> ring;
  EXPECT_TRUE(ring.empty());
  Rec r{};
  EXPECT_FALSE(ring.try_pop(&r));
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(ring.try_push(Rec{2 * i, 0}));
    ASSERT_TRUE(ring.try_push(Rec{2 * i + 1, 0}));
    EXPECT_FALSE(ring.try_push(Rec{999, 0}));  // full at exactly kSlots
    ASSERT_TRUE(ring.try_pop(&r));
    EXPECT_EQ(r.epoch, 2 * i);
    ASSERT_TRUE(ring.try_pop(&r));
    EXPECT_EQ(r.epoch, 2 * i + 1);
    EXPECT_FALSE(ring.try_pop(&r));  // empty again
    EXPECT_TRUE(ring.empty());
  }
}

#if defined(__linux__)

TEST(ShmArena, SizeClassReuseAfterCrossScopeFrees) {
  // Free a block from OUTSIDE any arena scope (operator delete routes by
  // address, not by thread binding) and the size class must hand the same
  // block back on the next fitting allocation — the freelists are shared
  // across scopes and processes, not thread-local caches.
  auto arena = ShmArena::create(std::size_t{64} << 20);
  void* first = nullptr;
  {
    ShmArenaScope scope(arena.get());
    first = ::operator new(100);
    ASSERT_TRUE(arena->contains(first));
  }
  // No scope bound: the delete must still find the owning arena.
  ::operator delete(first);
  ASSERT_TRUE(arena->audit());
  {
    ShmArenaScope scope(arena.get());
    // Same 256-byte size class (64-byte header + payload) => recycled,
    // same address.
    void* again = ::operator new(150);
    EXPECT_EQ(again, first);
    // A different class must NOT take the recycled block.
    void* big = ::operator new(4096);
    EXPECT_NE(big, first);
    ASSERT_TRUE(arena->contains(big));
    ::operator delete(big);
    ::operator delete(again);
  }
  EXPECT_TRUE(arena->audit());
  EXPECT_FALSE(arena->poisoned());
}

TEST(ShmArena, FreelistCyclesThroughManyBlocksWithoutGrowth) {
  // Direct allocate/deallocate (no scope) so the test's own containers
  // stay on malloc and can't move the arena's high-water mark.
  auto arena = ShmArena::create(std::size_t{64} << 20);
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(arena->allocate(100, 8));
  const std::size_t high = arena->bytes_used();
  std::set<void*> seen(blocks.begin(), blocks.end());
  EXPECT_EQ(seen.size(), blocks.size());
  for (void* p : blocks) arena->deallocate(p);
  // Refilling the same class must come entirely from the freelist: the
  // high-water mark cannot move and every pointer is a recycled one.
  for (int round = 0; round < 8; ++round) {
    std::vector<void*> again;
    for (int i = 0; i < 64; ++i) again.push_back(arena->allocate(100, 8));
    for (void* p : again) EXPECT_EQ(seen.count(p), 1u);
    EXPECT_EQ(arena->bytes_used(), high);
    for (void* p : again) arena->deallocate(p);
  }
  EXPECT_TRUE(arena->audit());
}

TEST(ShmArena, AuditDetectsCanaryOverrunAndPoisons) {
  // Overrun a block's payload into its tail canary: audit must fail,
  // quarantine the arena, and every later allocation through the scope
  // must surface ArenaPoisoned instead of torn state.
  auto arena = ShmArena::create(std::size_t{64} << 20);
  void* p = arena->allocate(100, 8);
  ASSERT_TRUE(arena->audit());
  std::memset(p, 0xAB, 120);  // 20 bytes past the requested size
  EXPECT_FALSE(arena->audit());
  EXPECT_TRUE(arena->poisoned());
  EXPECT_THROW(arena->allocate(64, 8), ArenaPoisoned);
  // Quarantined deallocate leaks by contract (never touches freelists).
  arena->deallocate(p);
}

TEST(ShmArena, AuditTakesASeizedLockFromADeadOwnerBounded) {
  // Simulate a process dying inside the allocator: take the futex from a
  // *forked child* that exits while holding it, then audit from the
  // parent. The robust pid-owner lock must detect the dead owner via its
  // bounded wait (not hang), seize, and the audit must pass (the "owner"
  // died between, not during, list surgery here).
  auto arena = ShmArena::create(std::size_t{64} << 20);
  {
    ShmArenaScope scope(arena.get());
    void* p = ::operator new(100);
    ::operator delete(p);
  }
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    arena->lock_for_test();
    _Exit(0);  // dies as the lock's recorded owner
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  // audit() must seize the orphaned lock within its bounded futex wait.
  EXPECT_TRUE(arena->audit());
  EXPECT_GE(arena->seizures(), 1u);
  EXPECT_FALSE(arena->poisoned());
  // The arena is healed: normal allocation continues.
  ShmArenaScope scope(arena.get());
  void* q = ::operator new(100);
  EXPECT_TRUE(arena->contains(q));
  ::operator delete(q);
}

#endif  // defined(__linux__)

}  // namespace
}  // namespace flov::ipc
